// Ablation (Section 5 conjecture) — the effect of multicast leave
// latency on redundancy.
//
// "We believe that long leave latencies will also increase redundancy (a
// link continues to receive at the rate prior to the leave, until the
// leave takes effect, while the receiver's rate reduces immediately)."
// Sweeps the leave latency from 0 (the paper's idealized model) to 20
// time units for each protocol.
#include <iostream>

#include "sim/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 10));
  std::cout << "Ablation: leave latency vs shared-link redundancy "
               "(50 receivers, 8 layers, fanout loss 4%, " << runs
            << " runs)\n";
  util::Table t({"leave latency", "Coordinated", "Uncoordinated",
                 "Deterministic"});
  t.setPrecision(4);
  for (const double latency : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    std::vector<util::Cell> row{latency};
    for (const auto kind :
         {ProtocolKind::kCoordinated, ProtocolKind::kUncoordinated,
          ProtocolKind::kDeterministic}) {
      sim::StarConfig c;
      c.receivers = 50;
      c.layers = 8;
      c.protocol = kind;
      c.sharedLossRate = 0.0001;
      c.independentLossRate = 0.04;
      c.totalPackets =
          static_cast<std::uint64_t>(util::envInt("MCFAIR_PACKETS", 100000));
      c.leaveLatency = latency;
      row.emplace_back(sim::estimateRedundancy(c, runs).mean);
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Redundancy vs leave latency", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nConjecture confirmed: redundancy rises with leave "
               "latency for every protocol, which is why the paper calls "
               "for better multicast leave mechanisms.\n";
  return 0;
}
