// Engineering micro-benchmarks for the max-min solver (not a paper
// figure): scaling with network size, session types, and link-rate
// functions.
#include <benchmark/benchmark.h>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"

namespace {

using namespace mcfair;

net::Network makeRandom(std::uint64_t seed, std::size_t sessions,
                        double singleRateProb) {
  util::Rng rng(seed);
  net::RandomNetworkOptions opts;
  opts.nodes = 10 + sessions * 2;
  opts.extraLinks = sessions * 2;
  opts.sessions = sessions;
  opts.singleRateProbability = singleRateProb;
  return net::randomNetwork(rng, opts);
}

void BM_MaxMinMultiRate(benchmark::State& state) {
  const auto n = makeRandom(42, static_cast<std::size_t>(state.range(0)),
                            0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxMinMultiRate)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_MaxMinMixed(benchmark::State& state) {
  const auto n = makeRandom(43, static_cast<std::size_t>(state.range(0)),
                            0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinMixed)->RangeMultiplier(2)->Range(4, 64);

void BM_MaxMinBisectionPath(benchmark::State& state) {
  // RandomJoinExpected forces the nonlinear bisection path.
  auto n = makeRandom(44, static_cast<std::size_t>(state.range(0)), 0.0);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinBisectionPath)->RangeMultiplier(2)->Range(4, 32);

void BM_SingleBottleneckScaling(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_SingleBottleneckScaling)->RangeMultiplier(4)->Range(10, 640);

void BM_PropertyChecks(benchmark::State& state) {
  const auto n = makeRandom(45, 32, 0.3);
  const auto a = fairness::maxMinFairAllocation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::checkAllProperties(n, a));
  }
}
BENCHMARK(BM_PropertyChecks);

}  // namespace
