// Engineering micro-benchmarks for the max-min solver (not a paper
// figure): scaling with network size, session types, and link-rate
// functions.
//
// The *Reference benchmarks run the retained pre-refactor solver
// (per-round link-view rebuild) on the same inputs, so the incremental
// engine's speedup is recorded side by side in every run; see
// scripts/bench_baseline.sh for the JSON baseline capture.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <limits>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "fairness/sampled.hpp"
#include "net/topologies.hpp"
#include "serve/service.hpp"
#include "sim/closed_loop.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace mcfair;

net::Network makeRandom(std::uint64_t seed, std::size_t sessions,
                        double singleRateProb) {
  util::Rng rng(seed);
  net::RandomNetworkOptions opts;
  opts.nodes = 10 + sessions * 2;
  opts.extraLinks = sessions * 2;
  opts.sessions = sessions;
  opts.singleRateProbability = singleRateProb;
  return net::randomNetwork(rng, opts);
}

void BM_MaxMinMultiRate(benchmark::State& state) {
  const auto n = makeRandom(42, static_cast<std::size_t>(state.range(0)),
                            0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxMinMultiRate)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_MaxMinMixed(benchmark::State& state) {
  const auto n = makeRandom(43, static_cast<std::size_t>(state.range(0)),
                            0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinMixed)->RangeMultiplier(2)->Range(4, 256);

void BM_MaxMinBisectionPath(benchmark::State& state) {
  // RandomJoinExpected forces the nonlinear bisection path.
  auto n = makeRandom(44, static_cast<std::size_t>(state.range(0)), 0.0);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinBisectionPath)->RangeMultiplier(2)->Range(4, 32);

void BM_SingleBottleneckScaling(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleBottleneckScaling)
    ->RangeMultiplier(4)
    ->Range(10, 4096)
    ->Arg(640)
    ->Complexity();

void BM_SingleBottleneckScalingReference(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairness::solveMaxMinFairReference(n).allocation);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleBottleneckScalingReference)
    ->RangeMultiplier(4)
    ->Range(10, 4096)
    ->Arg(640)
    ->Complexity();

// Isolates the linear accumulator/saturation scan — the flat branch-free
// sweep over the dense (const, slope, threshold) mirrors. L parallel
// unicast bottlenecks with strictly increasing capacities freeze exactly
// one link per filling round, so one solve performs ~L^2/2 scan slots
// and little else; items/sec reports scan-slot throughput.
void BM_AccumScan(benchmark::State& state) {
  const auto links = static_cast<std::size_t>(state.range(0));
  net::Network n;
  for (std::size_t j = 0; j < links; ++j) {
    const auto l = n.addLink(1.0 + 0.001 * static_cast<double>(j));
    n.addSession(net::makeUnicastSession({l}));
  }
  fairness::MaxMinSolver solver;
  solver.bind(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(links * (links + 1) / 2));
}
BENCHMARK(BM_AccumScan)->Arg(1024)->Arg(4096);

// A bound solver re-solving an unchanged network: the zero-allocation
// steady-state path in isolation (no bind, no result copy).
void BM_BoundSolverResolve(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  fairness::MaxMinSolver solver;
  solver.bind(n);
  benchmark::DoNotOptimize(solver.solve());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation());
  }
}
BENCHMARK(BM_BoundSolverResolve)->RangeMultiplier(4)->Range(10, 4096);

// Closed-loop churn: receivers join/leave between solves, so every epoch
// re-solves a slightly different network. One persistent solver rides
// through the variants (its buffers stay warm); the reference twin below
// rebuilds everything per epoch like the pre-refactor code had to.
std::vector<net::Network> churnVariants(std::size_t sessions) {
  const auto base = makeRandom(45, sessions, 0.3);
  std::vector<net::Network> variants;
  variants.push_back(base);
  for (std::size_t i = 0; i < base.sessionCount(); ++i) {
    if (base.session(i).receivers.size() > 1) {
      variants.push_back(base.withoutReceiver({i, 0}));
    }
    if (variants.size() >= 16) break;
  }
  return variants;
}

void BM_ClosedLoopChurn(benchmark::State& state) {
  const auto variants = churnVariants(static_cast<std::size_t>(state.range(0)));
  fairness::MaxMinSolver solver;
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation(variants[next]));
    next = (next + 1) % variants.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosedLoopChurn)->RangeMultiplier(2)->Range(16, 128);

void BM_ClosedLoopChurnReference(benchmark::State& state) {
  const auto variants = churnVariants(static_cast<std::size_t>(state.range(0)));
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairness::solveMaxMinFairReference(variants[next]).allocation);
    next = (next + 1) % variants.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosedLoopChurnReference)->RangeMultiplier(2)->Range(16, 128);

// Serial-vs-parallel sweeps of the sharded solver mode. Arg 0 is the
// session count N of the single-bottleneck network, arg 1 the solver
// thread count (0 = serial path). The nonlinear variant applies
// RandomJoinExpected to every session, which makes the feasibleAt
// bisection sweep over active links the dominant per-round cost — the
// embarrassingly parallel work the pool shards. Wall-clock gains require
// real cores: on a single-CPU host the threaded rows measure pure
// coordination overhead (see scripts/check_bench.py notes).
void BM_ParallelNonlinearBottleneck(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  auto n = net::singleBottleneckNetwork(sessions, sessions / 10, 1000.0,
                                        2.0);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  fairness::MaxMinOptions options;
  options.threads = static_cast<int>(state.range(1));
  fairness::MaxMinSolver solver(options);
  solver.bind(n);
  benchmark::DoNotOptimize(solver.solve());  // warm-up: workspace + pool
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation());
  }
}
BENCHMARK(BM_ParallelNonlinearBottleneck)
    ->Args({640, 0})
    ->Args({640, 2})
    ->Args({640, 4})
    ->Args({4096, 0})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8});

// The single-bottleneck topology above is the honest worst case for
// sharding: one link holds every receiver, so its sweep cost is
// unsplittable (Amdahl-bound regardless of cores). This farm is the
// parallel-friendly counterpart — N receivers spread over N/4 bottleneck
// links (4-receiver multicast session per link, nonlinear v_i), so the
// load-aware chunking has many comparably-loaded links to balance.
net::Network nonlinearBottleneckFarm(std::size_t sessions) {
  net::Network n;
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  std::vector<graph::LinkId> links;
  for (std::size_t i = 0; i < sessions; ++i) {
    links.push_back(n.addLink(1000.0));
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    net::Session s;
    s.name = "F" + std::to_string(i);
    s.type = net::SessionType::kMultiRate;
    for (std::size_t k = 0; k < 4; ++k) {
      s.receivers.push_back(net::makeReceiver({links[i]}));
    }
    s.linkRateFn = fn;
    n.addSession(std::move(s));
  }
  return n;
}

void BM_ParallelNonlinearFarm(benchmark::State& state) {
  const auto n =
      nonlinearBottleneckFarm(static_cast<std::size_t>(state.range(0)));
  fairness::MaxMinOptions options;
  options.threads = static_cast<int>(state.range(1));
  fairness::MaxMinSolver solver(options);
  solver.bind(n);
  benchmark::DoNotOptimize(solver.solve());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation());
  }
}
BENCHMARK(BM_ParallelNonlinearFarm)
    ->Args({640, 0})
    ->Args({640, 2})
    ->Args({640, 4})
    ->Args({4096, 0})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8});

// Linear-v_i twin: here the sharded work is the per-link accumulator
// reset and the O(1)-per-link saturation scan.
void BM_ParallelLinearBottleneck(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const auto n = net::singleBottleneckNetwork(sessions, sessions / 10,
                                              1000.0, 2.0);
  fairness::MaxMinOptions options;
  options.threads = static_cast<int>(state.range(1));
  fairness::MaxMinSolver solver(options);
  solver.bind(n);
  benchmark::DoNotOptimize(solver.solve());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation());
  }
}
BENCHMARK(BM_ParallelLinearBottleneck)
    ->Args({640, 0})
    ->Args({640, 4})
    ->Args({4096, 0})
    ->Args({4096, 4});

// Churn with the parallel solver: same variant cycle as
// BM_ClosedLoopChurn, re-solving through one persistent threaded solver.
void BM_ParallelChurn(benchmark::State& state) {
  const auto variants =
      churnVariants(static_cast<std::size_t>(state.range(0)));
  fairness::MaxMinOptions options;
  options.threads = static_cast<int>(state.range(1));
  fairness::MaxMinSolver solver(options);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation(variants[next]));
    next = (next + 1) % variants.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelChurn)
    ->Args({64, 0})
    ->Args({64, 4})
    ->Args({128, 0})
    ->Args({128, 4});

// The fair-epoch timeline of the closed-loop simulator: session arrivals
// and departures create one re-solve per epoch.
void BM_FairEpochTimeline(benchmark::State& state) {
  const std::size_t sessions = static_cast<std::size_t>(state.range(0));
  const auto n = net::singleBottleneckNetwork(sessions, sessions / 10,
                                              1000.0, 2.0);
  sim::ClosedLoopConfig config;
  config.duration = 100.0;
  config.warmup = 10.0;
  config.computeFairEpochs = true;
  config.sessions.assign(sessions, sim::ClosedLoopSessionConfig{});
  for (std::size_t i = 0; i < sessions; ++i) {
    config.sessions[i].startTime = static_cast<double>(i % 8) * 10.0;
    config.sessions[i].stopTime = 90.0 + static_cast<double>(i % 4);
  }
  config.sessions[0].startTime = 0.0;  // keep at least one session live
  config.sessions[0].stopTime = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    const auto r = sim::runClosedLoopSimulation(n, config);
    benchmark::DoNotOptimize(r.fairEpochs.size());
  }
}
BENCHMARK(BM_FairEpochTimeline)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_PropertyChecks(benchmark::State& state) {
  const auto n = makeRandom(45, 32, 0.3);
  const auto a = fairness::maxMinFairAllocation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::checkAllProperties(n, a));
  }
}
BENCHMARK(BM_PropertyChecks);

// Sampled approximate solve + expansion at 25% of the receivers, against
// the full exact solve recorded by BM_SingleBottleneckScaling — the cost
// side of the docs/SWEEPS.md error-vs-sample-size trade-off.
void BM_SampledSolve(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  fairness::SampledOptions options;
  options.sampleFraction = 0.25;
  fairness::SampledSolver solver(options);
  solver.solve(n);  // warm the binding; the loop measures re-solves
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(n).rounds);
    benchmark::DoNotOptimize(&solver.estimateAllocation());
  }
}
BENCHMARK(BM_SampledSolve)->RangeMultiplier(4)->Range(64, 4096);

// One full Monte-Carlo sweep fleet: arg = replicas per cell over a
// 2-scenario x 3-fraction grid, serial so the baseline is thread-count
// independent (the fleet's own scaling is exercised by the tests).
void BM_SweepFleet(benchmark::State& state) {
  sim::SweepConfig config;
  sim::ScenarioSpec steady = *sim::findScenario("steady-bottleneck");
  steady.sessions = 24;
  sim::ScenarioSpec mesh = *sim::findScenario("meshed-backbone");
  mesh.sessions = 16;
  config.scenarios = {steady, mesh};
  config.sampleFractions = {0.1, 0.5, 1.0};
  config.runs = static_cast<std::size_t>(state.range(0));
  config.threads = 1;
  const sim::SweepDriver driver(config);
  for (auto _ : state) {
    const sim::SweepResult result = driver.run();
    benchmark::DoNotOptimize(result.cells.size());
  }
}
BENCHMARK(BM_SweepFleet)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Serving-layer benchmarks (serve::FairshareService). ---

serve::ServiceOptions serviceBenchOptions() {
  serve::ServiceOptions options;
  // Pinned cost estimate + non-latching hysteresis: the budget alone
  // decides the mode, so the exact and degraded rows measure exactly
  // the path their name claims.
  options.exactCostOverride = 1.0;
  options.degradeAfter = std::numeric_limits<std::size_t>::max();
  options.sampled.sampleFraction = 0.25;
  return options;
}

// One capacity delta + one budgeted query per iteration: the service's
// warm refresh-tier round trip (O(links) rebind, allocation-free).
// degraded:0 queries unbudgeted (always exact), degraded:1 queries with
// a blown budget (SampledSolver estimate). Each row also publishes the
// service's own streaming tail histogram — p50/p99/p999 per-query
// latency in microseconds — as benchmark counters.
void BM_ServiceQuery(benchmark::State& state) {
  const bool degradedPath = state.range(1) != 0;
  serve::FairshareService service(
      net::singleBottleneckNetwork(
          static_cast<std::size_t>(state.range(0)),
          static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0),
      serviceBenchOptions());
  const double budget = degradedPath ? 1e-9 : 0.0;
  (void)service.query(budget);  // warm both workspaces
  bool flip = false;
  for (auto _ : state) {
    service.applyDelta(
        serve::setCapacityDelta(graph::LinkId{0}, flip ? 900.0 : 1000.0));
    flip = !flip;
    const serve::QueryResult q = service.query(budget);
    benchmark::DoNotOptimize(q.rates);
  }
  const serve::ServiceMetrics m = service.metrics();
  const serve::LatencyHistogram& h =
      degradedPath ? m.degradedQuery : m.exactQuery;
  state.counters["p50_us"] = h.p50.value() * 1e6;
  state.counters["p99_us"] = h.p99.value() * 1e6;
  state.counters["p999_us"] = h.p999.value() * 1e6;
}
BENCHMARK(BM_ServiceQuery)
    ->ArgsProduct({{64, 512}, {0, 1}})
    ->ArgNames({"sessions", "degraded"});

// Crash-recovery cost: load the service snapshot and replay a journal
// of `deltas` capacity records through the normal apply path.
void BM_SnapshotReplay(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string snap =
      (fs::temp_directory_path() / "mcfair_bench_snap.bin").string();
  serve::ServiceOptions options;
  options.journalPath =
      (fs::temp_directory_path() / "mcfair_bench_journal.bin").string();
  serve::FairshareService live(
      net::singleBottleneckNetwork(128, 12, 1000.0, 2.0), options);
  live.saveSnapshot(snap);
  util::Rng rng(7);
  const std::size_t links = live.network().linkCount();
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    live.applyDelta(serve::setCapacityDelta(
        graph::LinkId{static_cast<std::uint32_t>(rng.below(links))},
        rng.uniform(10.0, 1000.0)));
  }
  for (auto _ : state) {
    const auto recovered = serve::FairshareService::recover(snap, options);
    benchmark::DoNotOptimize(recovered->revision());
  }
  state.counters["deltas"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SnapshotReplay)
    ->Arg(64)
    ->ArgName("deltas")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
