// Engineering micro-benchmarks for the max-min solver (not a paper
// figure): scaling with network size, session types, and link-rate
// functions.
//
// The *Reference benchmarks run the retained pre-refactor solver
// (per-round link-view rebuild) on the same inputs, so the incremental
// engine's speedup is recorded side by side in every run; see
// scripts/bench_baseline.sh for the JSON baseline capture.
#include <benchmark/benchmark.h>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"

namespace {

using namespace mcfair;

net::Network makeRandom(std::uint64_t seed, std::size_t sessions,
                        double singleRateProb) {
  util::Rng rng(seed);
  net::RandomNetworkOptions opts;
  opts.nodes = 10 + sessions * 2;
  opts.extraLinks = sessions * 2;
  opts.sessions = sessions;
  opts.singleRateProbability = singleRateProb;
  return net::randomNetwork(rng, opts);
}

void BM_MaxMinMultiRate(benchmark::State& state) {
  const auto n = makeRandom(42, static_cast<std::size_t>(state.range(0)),
                            0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxMinMultiRate)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_MaxMinMixed(benchmark::State& state) {
  const auto n = makeRandom(43, static_cast<std::size_t>(state.range(0)),
                            0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinMixed)->RangeMultiplier(2)->Range(4, 256);

void BM_MaxMinBisectionPath(benchmark::State& state) {
  // RandomJoinExpected forces the nonlinear bisection path.
  auto n = makeRandom(44, static_cast<std::size_t>(state.range(0)), 0.0);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
}
BENCHMARK(BM_MaxMinBisectionPath)->RangeMultiplier(2)->Range(4, 32);

void BM_SingleBottleneckScaling(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::maxMinFairAllocation(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleBottleneckScaling)
    ->RangeMultiplier(4)
    ->Range(10, 4096)
    ->Arg(640)
    ->Complexity();

void BM_SingleBottleneckScalingReference(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairness::solveMaxMinFairReference(n).allocation);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleBottleneckScalingReference)
    ->RangeMultiplier(4)
    ->Range(10, 4096)
    ->Arg(640)
    ->Complexity();

// A bound solver re-solving an unchanged network: the zero-allocation
// steady-state path in isolation (no bind, no result copy).
void BM_BoundSolverResolve(benchmark::State& state) {
  const auto n = net::singleBottleneckNetwork(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0) / 10), 1000.0, 2.0);
  fairness::MaxMinSolver solver;
  solver.bind(n);
  benchmark::DoNotOptimize(solver.solve());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation());
  }
}
BENCHMARK(BM_BoundSolverResolve)->RangeMultiplier(4)->Range(10, 4096);

// Closed-loop churn: receivers join/leave between solves, so every epoch
// re-solves a slightly different network. One persistent solver rides
// through the variants (its buffers stay warm); the reference twin below
// rebuilds everything per epoch like the pre-refactor code had to.
std::vector<net::Network> churnVariants(std::size_t sessions) {
  const auto base = makeRandom(45, sessions, 0.3);
  std::vector<net::Network> variants;
  variants.push_back(base);
  for (std::size_t i = 0; i < base.sessionCount(); ++i) {
    if (base.session(i).receivers.size() > 1) {
      variants.push_back(base.withoutReceiver({i, 0}));
    }
    if (variants.size() >= 16) break;
  }
  return variants;
}

void BM_ClosedLoopChurn(benchmark::State& state) {
  const auto variants = churnVariants(static_cast<std::size_t>(state.range(0)));
  fairness::MaxMinSolver solver;
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solveAllocation(variants[next]));
    next = (next + 1) % variants.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosedLoopChurn)->RangeMultiplier(2)->Range(16, 128);

void BM_ClosedLoopChurnReference(benchmark::State& state) {
  const auto variants = churnVariants(static_cast<std::size_t>(state.range(0)));
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairness::solveMaxMinFairReference(variants[next]).allocation);
    next = (next + 1) % variants.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosedLoopChurnReference)->RangeMultiplier(2)->Range(16, 128);

// The fair-epoch timeline of the closed-loop simulator: session arrivals
// and departures create one re-solve per epoch.
void BM_FairEpochTimeline(benchmark::State& state) {
  const std::size_t sessions = static_cast<std::size_t>(state.range(0));
  const auto n = net::singleBottleneckNetwork(sessions, sessions / 10,
                                              1000.0, 2.0);
  sim::ClosedLoopConfig config;
  config.duration = 100.0;
  config.warmup = 10.0;
  config.computeFairEpochs = true;
  config.sessions.assign(sessions, sim::ClosedLoopSessionConfig{});
  for (std::size_t i = 0; i < sessions; ++i) {
    config.sessions[i].startTime = static_cast<double>(i % 8) * 10.0;
    config.sessions[i].stopTime = 90.0 + static_cast<double>(i % 4);
  }
  config.sessions[0].startTime = 0.0;  // keep at least one session live
  config.sessions[0].stopTime = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    const auto r = sim::runClosedLoopSimulation(n, config);
    benchmark::DoNotOptimize(r.fairEpochs.size());
  }
}
BENCHMARK(BM_FairEpochTimeline)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_PropertyChecks(benchmark::State& state) {
  const auto n = makeRandom(45, 32, 0.3);
  const auto a = fairness::maxMinFairAllocation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::checkAllProperties(n, a));
  }
}
BENCHMARK(BM_PropertyChecks);

}  // namespace
