// Engineering micro-benchmarks for the packet-level simulator and the
// Markov analysis (not a paper figure).
#include <benchmark/benchmark.h>

#include "markov/protocol_chain.hpp"
#include "sim/star.hpp"

namespace {

using namespace mcfair;

void BM_StarSimulation(benchmark::State& state) {
  sim::StarConfig c;
  c.receivers = static_cast<std::size_t>(state.range(0));
  c.layers = 8;
  c.protocol = sim::ProtocolKind::kCoordinated;
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.04;
  c.totalPackets = 100000;
  for (auto _ : state) {
    c.seed++;
    benchmark::DoNotOptimize(sim::runStarSimulation(c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.totalPackets));
}
BENCHMARK(BM_StarSimulation)->Arg(2)->Arg(10)->Arg(100);

void BM_StarByProtocol(benchmark::State& state) {
  sim::StarConfig c;
  c.receivers = 100;
  c.layers = 8;
  c.protocol = static_cast<sim::ProtocolKind>(state.range(0));
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.04;
  c.totalPackets = 100000;
  for (auto _ : state) {
    c.seed++;
    benchmark::DoNotOptimize(sim::runStarSimulation(c));
  }
}
BENCHMARK(BM_StarByProtocol)->Arg(0)->Arg(1)->Arg(2);

void BM_MarkovUncoordinated(benchmark::State& state) {
  markov::ProtocolChainConfig c;
  c.layers = static_cast<std::size_t>(state.range(0));
  c.protocol = sim::ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.001;
  c.receiverLoss = {0.03, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::analyzeProtocolChain(c));
  }
}
BENCHMARK(BM_MarkovUncoordinated)->Arg(4)->Arg(6)->Arg(8);

void BM_MarkovDeterministic(benchmark::State& state) {
  markov::ProtocolChainConfig c;
  c.layers = static_cast<std::size_t>(state.range(0));
  c.protocol = sim::ProtocolKind::kDeterministic;
  c.sharedLoss = 0.001;
  c.receiverLoss = {0.03, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::analyzeProtocolChain(c));
  }
}
BENCHMARK(BM_MarkovDeterministic)->Arg(2)->Arg(3);

}  // namespace
