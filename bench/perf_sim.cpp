// Engineering micro-benchmarks for the packet-level simulator and the
// Markov analysis (not a paper figure).
//
// The BM_ClosedLoopMerge* pair measures what the event-driven session
// engine changed: merging N senders' packet streams costs O(log N) per
// packet in the engine (runClosedLoopSimulation) versus O(N) in the
// retained reference driver (runClosedLoopSimulationReference). Both run
// the identical mega-merge scenario, so the rows are directly
// comparable; scripts/bench_baseline.sh records them side by side in
// BENCH_sim.json.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/route_plan.hpp"
#include "markov/protocol_chain.hpp"
#include "net/fault.hpp"
#include "sim/partition.hpp"
#include "sim/scenario.hpp"
#include "sim/star.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcfair;

sim::Scenario mergeScenario(std::size_t sessions) {
  const sim::ScenarioSpec* base = sim::findScenario("mega-merge");
  MCFAIR_REQUIRE(base != nullptr, "mega-merge preset missing from catalog");
  sim::ScenarioSpec spec = *base;
  spec.sessions = sessions;
  return sim::buildScenario(spec);
}

// Packets per run: every session emits one single-layer stream of rate 1
// over the scenario horizon.
std::int64_t mergePackets(const sim::Scenario& s) {
  return static_cast<std::int64_t>(s.network.sessionCount()) *
         static_cast<std::int64_t>(s.config.duration);
}

void BM_ClosedLoopMergeEvent(benchmark::State& state) {
  const auto s = mergeScenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulation(s.network, s.config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          mergePackets(s));
}
BENCHMARK(BM_ClosedLoopMergeEvent)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ClosedLoopMergeReference(benchmark::State& state) {
  const auto s = mergeScenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulationReference(s.network, s.config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          mergePackets(s));
}
// No 100k row: the linear scan is quadratic-ish in wall clock there
// (100k sessions x 1M packets); the 10k rows already pin the ratio.
BENCHMARK(BM_ClosedLoopMergeReference)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The BM_ClosedLoopFluid* pair measures the fluid fast-forward engine on
// the steady-fluid catalog preset (born-absorbing sessions, amply
// provisioned backbone): the fluid engine certifies the run drop-free
// and accounts every packet in closed form — O(state changes) — while
// the per-packet baseline executes all sessions x 8 packets/time-unit x
// duration of them. Items processed counts the packets covered either
// way, so items/sec is directly comparable.
sim::Scenario steadyScenario(std::size_t sessions) {
  const sim::ScenarioSpec* base = sim::findScenario("steady-fluid");
  MCFAIR_REQUIRE(base != nullptr,
                 "steady-fluid preset missing from catalog");
  sim::ScenarioSpec spec = *base;
  spec.sessions = sessions;
  return sim::buildScenario(spec);
}

std::int64_t steadyPackets(const sim::Scenario& s) {
  // Aggregate rate 8 per session (4 exponential layers) over the horizon.
  return static_cast<std::int64_t>(s.network.sessionCount()) *
         static_cast<std::int64_t>(8.0 * s.config.duration);
}

void BM_ClosedLoopFluid(benchmark::State& state) {
  const auto s = steadyScenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulationFluid(s.network, s.config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          steadyPackets(s));
}
BENCHMARK(BM_ClosedLoopFluid)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_ClosedLoopFluidEventBaseline(benchmark::State& state) {
  auto s = steadyScenario(static_cast<std::size_t>(state.range(0)));
  s.config.fluidFastForward = false;  // force per-packet execution
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulation(s.network, s.config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          steadyPackets(s));
}
// No 1M row: at ~10^6 packets/s the per-packet engine would need ~5
// minutes for the 320M packets the fluid engine closes out in seconds;
// the 100k rows already pin the ratio.
BENCHMARK(BM_ClosedLoopFluidEventBaseline)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Catalog sweep: one row per named preset (downscaled horizon), so a
// regression in any scenario family — churn + fair epochs, bursty loss,
// heterogeneous mixes — shows up in the bench log.
void BM_ScenarioCatalog(benchmark::State& state) {
  const auto& catalog = sim::scenarioCatalog();
  const auto idx = static_cast<std::size_t>(state.range(0));
  if (idx >= catalog.size()) {
    state.SkipWithError("catalog index out of range");
    return;
  }
  sim::ScenarioSpec spec = catalog[idx];
  spec.sessions = std::min<std::size_t>(spec.sessions, 16);
  spec.duration = std::min(spec.duration, 500.0);
  spec.warmup = std::min(spec.warmup, spec.duration / 4.0);
  spec.arrivalWindow = std::min(spec.arrivalWindow, spec.duration / 2.0);
  const auto s = sim::buildScenario(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runScenario(s));
  }
  state.SetLabel(spec.name);
}
// Registered from the catalog size so a new preset gets its row
// automatically (the in-function guard covers only shrinkage).
BENCHMARK(BM_ScenarioCatalog)
    ->DenseRange(0, static_cast<int>(sim::scenarioCatalog().size()) - 1);

// Fault-path cost in the event engine: a dense seeded MTBF/MTTR
// schedule churns every link of the mega-merge population, and each
// event triggers the capacity refresh + incremental re-solve +
// accumulator flush. Items = fault events absorbed, so items/sec tracks
// the O(affected) fault path, not the packet loop around it.
void BM_FaultChurn(benchmark::State& state) {
  auto s = mergeScenario(static_cast<std::size_t>(state.range(0)));
  net::RandomFaultOptions opts;
  // Scale MTBF with the link count so the total event count stays
  // roughly constant (~2000) across population sizes.
  opts.mtbf = static_cast<double>(s.network.linkCount()) *
              s.config.duration / 1000.0;
  opts.mttr = opts.mtbf / 8.0;
  opts.degradeFactor = 0.5;
  s.config.faults = net::randomFaultSchedule(s.network.linkCount(),
                                             s.config.duration, opts, 9);
  MCFAIR_REQUIRE(!s.config.faults.events.empty(),
                 "churn schedule came out empty");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulation(s.network, s.config));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(s.config.faults.events.size()));
}
BENCHMARK(BM_FaultChurn)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Fluid hand-back cost: mild degrade/repair flaps on a certified
// steady-fluid run. Capacity stays ample through every event, so the
// engine re-certifies immediately after each fault — every event costs
// exactly one hand-back (token-bucket reconstruction, sender resync,
// queue re-seed) plus one re-engagement. Items = fault events, so
// items/sec is the price of a hand-back at this population size.
void BM_FluidHandback(benchmark::State& state) {
  auto s = steadyScenario(4096);
  const auto flaps = static_cast<std::size_t>(state.range(0));
  const graph::LinkId victim =
      s.network.session(0).receivers[0].dataPath.front();
  const double begin = s.config.duration / 4.0;
  const double spacing = (s.config.duration / 2.0) /
                         static_cast<double>(flaps);
  s.config.faults.events.reserve(2 * flaps);
  for (std::size_t f = 0; f < flaps; ++f) {
    const double t = begin + static_cast<double>(f) * spacing;
    s.config.faults.events.push_back(
        {t, net::FaultKind::kDegrade, victim, 0.9});
    s.config.faults.events.push_back(
        {t + 0.5 * spacing, net::FaultKind::kLinkUp, victim});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::runClosedLoopSimulationFluid(s.network, s.config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * flaps));
}
BENCHMARK(BM_FluidHandback)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Component-parallel engine on the sharded-bottlenecks preset (64
// disjoint bottleneck groups -> 64 independent components). The second
// arg is the thread count: 0 runs the serial event engine on the same
// scenario as the baseline row (matching the solver's BM_Parallel*/0
// convention), T >= 1 runs the partitioned engine with engineThreads=T
// (T=1 measures pure partition/lane overhead). On a 1-CPU container the
// threaded rows measure coordination overhead, not speedup — see
// docs/BENCHMARKS.md. Items = sessions per run.
sim::Scenario shardedScenario(std::size_t sessions) {
  const sim::ScenarioSpec* base = sim::findScenario("sharded-bottlenecks");
  MCFAIR_REQUIRE(base != nullptr,
                 "sharded-bottlenecks preset missing from catalog");
  sim::ScenarioSpec spec = *base;
  spec.sessions = sessions;
  return sim::buildScenario(spec);
}

void BM_ClosedLoopParallel(benchmark::State& state) {
  auto s = shardedScenario(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<int>(state.range(1));
  if (threads == 0) {
    s.config.engineThreads = 1;  // serial event-engine baseline row
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          sim::runClosedLoopSimulation(s.network, s.config));
    }
  } else {
    s.config.engineThreads = threads;
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          sim::runClosedLoopSimulationParallel(s.network, s.config));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(s.network.sessionCount()));
}
BENCHMARK(BM_ClosedLoopParallel)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({1000, 8})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

// Speculative intra-component engine on the mega-merge preset — the
// single-dominant-component population the component-parallel lanes
// cannot split. The second arg is the worker count: 0 runs the serial
// event engine on the same scenario as the baseline row (matching the
// BM_ClosedLoopParallel convention), T >= 1 runs the speculative engine
// with speculationThreads=T (T=1 measures pure epoch/snapshot/sort
// overhead). On a 1-CPU container the threaded rows measure
// coordination overhead, not speedup — see docs/BENCHMARKS.md. Items =
// packets merged per run.
void BM_ClosedLoopSpeculative(benchmark::State& state) {
  auto s = mergeScenario(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<int>(state.range(1));
  if (threads == 0) {
    s.config.engineThreads = 1;  // serial event-engine baseline row
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          sim::runClosedLoopSimulation(s.network, s.config));
    }
  } else {
    s.config.speculationThreads = threads;
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          sim::runClosedLoopSimulationSpeculative(s.network, s.config));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          mergePackets(s));
}
BENCHMARK(BM_ClosedLoopSpeculative)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({1000, 8})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

// Cold partition cost: union-find over every session's routed link
// union plus the CSR component index, on a fresh partitioner each
// iteration (the engine itself pays this once per network structure —
// partitionRebuilds is pinned at 1 by the zero-alloc suite). Items =
// sessions unioned.
void BM_Partition(benchmark::State& state) {
  const auto s = shardedScenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sim::SessionPartitioner partitioner;
    benchmark::DoNotOptimize(partitioner.ensure(s.network).componentCount);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(s.network.sessionCount()));
}
BENCHMARK(BM_Partition)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Routing-layer cost: building per-source shortest-path trees (weighted
// Dijkstra with the deterministic tie-break) on a BA m=2 mesh. Each
// iteration builds a fresh plan and routes from 16 spread-out sources,
// so items/sec tracks the O(E log V)-per-source construction itself,
// not the cache.
void BM_RoutePlan(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const graph::Graph g = graph::scaleFreeGraph(rng, {nodes, 2, 1.0});
  std::vector<double> weights;
  weights.reserve(g.linkCount());
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    weights.push_back(rng.uniform(1.0, 2.0));
  }
  constexpr std::size_t kSources = 16;
  for (auto _ : state) {
    graph::RoutePlan plan(
        g, graph::RouteOptions{graph::RoutePolicy::kWeighted, weights});
    for (std::size_t s = 0; s < kSources; ++s) {
      plan.ensureSource(graph::NodeId{
          static_cast<std::uint32_t>(s * nodes / kSources)});
    }
    benchmark::DoNotOptimize(plan.builtSourceCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSources));
}
BENCHMARK(BM_RoutePlan)
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

// Mesh-scenario expansion vs the tree baseline at matching population
// sizes (sessions x 2 receivers; 50000 -> a 100k-receiver mesh). The
// mesh row routes every receiver through the RoutePlan and provisions
// capacities from routed loads; the baseline row is the kScaleFreeTree
// topology whose paths are forced root paths. Items = receivers placed.
void BM_ScenarioMesh(benchmark::State& state) {
  const sim::ScenarioSpec* base = sim::findScenario("meshed-backbone");
  MCFAIR_REQUIRE(base != nullptr,
                 "meshed-backbone preset missing from catalog");
  sim::ScenarioSpec spec = *base;
  spec.sessions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::buildScenario(spec));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.sessions * spec.receiversPerSession));
}
BENCHMARK(BM_ScenarioMesh)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioMeshTreeBaseline(benchmark::State& state) {
  const sim::ScenarioSpec* base = sim::findScenario("scale-free-backbone");
  MCFAIR_REQUIRE(base != nullptr,
                 "scale-free-backbone preset missing from catalog");
  sim::ScenarioSpec spec = *base;
  spec.sessions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::buildScenario(spec));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.sessions * spec.receiversPerSession));
}
BENCHMARK(BM_ScenarioMeshTreeBaseline)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_StarSimulation(benchmark::State& state) {
  sim::StarConfig c;
  c.receivers = static_cast<std::size_t>(state.range(0));
  c.layers = 8;
  c.protocol = sim::ProtocolKind::kCoordinated;
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.04;
  c.totalPackets = 100000;
  for (auto _ : state) {
    c.seed++;
    benchmark::DoNotOptimize(sim::runStarSimulation(c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.totalPackets));
}
BENCHMARK(BM_StarSimulation)->Arg(2)->Arg(10)->Arg(100);

void BM_StarByProtocol(benchmark::State& state) {
  sim::StarConfig c;
  c.receivers = 100;
  c.layers = 8;
  c.protocol = static_cast<sim::ProtocolKind>(state.range(0));
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.04;
  c.totalPackets = 100000;
  for (auto _ : state) {
    c.seed++;
    benchmark::DoNotOptimize(sim::runStarSimulation(c));
  }
}
BENCHMARK(BM_StarByProtocol)->Arg(0)->Arg(1)->Arg(2);

void BM_MarkovUncoordinated(benchmark::State& state) {
  markov::ProtocolChainConfig c;
  c.layers = static_cast<std::size_t>(state.range(0));
  c.protocol = sim::ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.001;
  c.receiverLoss = {0.03, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::analyzeProtocolChain(c));
  }
}
BENCHMARK(BM_MarkovUncoordinated)->Arg(4)->Arg(6)->Arg(8);

void BM_MarkovDeterministic(benchmark::State& state) {
  markov::ProtocolChainConfig c;
  c.layers = static_cast<std::size_t>(state.range(0));
  c.protocol = sim::ProtocolKind::kDeterministic;
  c.sharedLoss = 0.001;
  c.receiverLoss = {0.03, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::analyzeProtocolChain(c));
  }
}
BENCHMARK(BM_MarkovDeterministic)->Arg(2)->Arg(3);

}  // namespace
