// Ablation (Section 5 open question) — can sessions on different
// fairness timescales share a link cleanly?
//
// Two quantum-scheduled sessions, each entitled to half of a c=2 link
// (average rate 1 from a rate-2 layer, duty cycle 1/2). The table sweeps
// their quantum ratio and phase relationship and reports the fraction of
// offered volume arriving while the link is instantaneously overloaded.
#include <iostream>
#include <numbers>

#include "layering/timescale.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Ablation: fairness timescales and instantaneous "
               "interference (two sessions, c = 2, average 1 each)\n";

  util::Table t({"configuration", "overload time fraction",
                 "excess volume fraction", "peak rate"});
  t.setPrecision(4);
  const layering::QuantumShare base{1.0, 2.0, 1.0, 0.0};

  auto addRow = [&](const char* label, const layering::QuantumShare& other) {
    const auto r =
        layering::computeInterference({base, other}, 2.0, 4000.0, 1e-3);
    t.addRow({std::string(label), r.overloadTimeFraction,
              r.excessVolumeFraction, r.peakRate});
  };

  addRow("same quantum, coordinated phases (TDM)",
         layering::QuantumShare{1.0, 2.0, 1.0, 0.5});
  addRow("same quantum, colliding phases",
         layering::QuantumShare{1.0, 2.0, 1.0, 0.0});
  addRow("quanta ratio sqrt(2)",
         layering::QuantumShare{1.0, 2.0, std::numbers::sqrt2, 0.0});
  addRow("quanta ratio 10*sqrt(2)",
         layering::QuantumShare{1.0, 2.0, 10 * std::numbers::sqrt2, 0.0});
  addRow("quanta ratio 100*sqrt(2)",
         layering::QuantumShare{1.0, 2.0, 100 * std::numbers::sqrt2, 0.0});

  util::printTitled("Interference by timescale relationship", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nRandom-phase closed form for any incommensurate pair: "
            << layering::expectedExcessVolumeFractionRandomPhases(
                   base, {1.0, 2.0, std::numbers::sqrt2, 0.0}, 2.0)
            << "\nReading: equal quanta admit a coordinated time-division "
               "schedule with zero interference; once timescales differ, "
               "a quarter of the\noffered volume arrives during overload "
               "regardless of the ratio — answering Section 5's question "
               "in the negative: different-quanta\nsessions cannot share "
               "the link cleanly without buffering, however the quanta "
               "are chosen.\n";
  return 0;
}
