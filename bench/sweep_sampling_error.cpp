// Error-vs-sample-fraction report — the docs/SWEEPS.md tables.
//
// Runs the Monte-Carlo sweep fleet (sim::SweepDriver) over four catalog
// presets — the shared-link control, the scale-free-tree hub stress, the
// routed BA mesh, and the fault-injected link-flap population — at five
// sample fractions, and publishes one table per error metric: mean over
// replicas, the streaming P50/P90, and the worst case. The fraction-1.0
// column is the built-in control: the sampled solve is bit-identical to
// the exact oracle there, so all its error statistics print as exactly 0.
//
// Environment knobs (catalogued in the README):
//   MCFAIR_RUNS           replicas per grid cell (default 30)
//   MCFAIR_SWEEP_THREADS  fleet executors (default: serial; results are
//                         bit-identical for every value)
//   MCFAIR_CSV            also emit every table as CSV
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;

  const auto runs = static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 30));

  // Grid rows. steady-bottleneck stays unmodified as the *symmetry
  // control*: on a homogeneous single-bottleneck population the
  // Horvitz-Thompson capacity scaling is exact at every fraction (the
  // sampled fill saturates at the same level), so its rows print 0
  // everywhere — see docs/SWEEPS.md. The other presets get heterogeneous
  // private tails (1..16, the heterogeneous-mix setting) where sampling
  // genuinely loses information; link-flap adds the mid-fault re-solve.
  struct Row {
    const char* preset;
    const char* label;
    bool addTails;
  };
  const Row rows[] = {
      {"steady-bottleneck", "steady-symmetric", false},
      {"scale-free-backbone", "scale-free-tailed", true},
      {"meshed-backbone", "mesh-tailed", true},
      {"waxman-regional", "waxman-regional", false},  // already tailed
      {"link-flap", "link-flap-tailed", true},
  };
  sim::SweepConfig config;
  for (const Row& row : rows) {
    const sim::ScenarioSpec* preset = sim::findScenario(row.preset);
    if (preset == nullptr) {
      std::cerr << "missing catalog preset: " << row.preset << "\n";
      return 1;
    }
    sim::ScenarioSpec spec = *preset;
    spec.name = row.label;
    spec.sessions = 24;           // comparable population across presets
    spec.receiversPerSession = 8;  // room below the 1-per-session floor
    if (row.addTails) {
      spec.tailCapacityMin = 1.0;
      spec.tailCapacityMax = 16.0;
    }
    config.scenarios.push_back(std::move(spec));
  }
  config.sampleFractions = {0.05, 0.1, 0.25, 0.5, 1.0};
  config.runs = runs;
  config.seedBase = 1;

  const sim::SweepDriver driver(config);
  std::cout << "Monte-Carlo sampling-error sweep: "
            << config.scenarios.size() << " scenarios x "
            << config.sampleFractions.size() << " fractions x " << runs
            << " replicas (" << driver.threadCount() << " thread"
            << (driver.threadCount() == 1 ? "" : "s")
            << "; fault presets score steady + mid-fault)\n";
  const sim::SweepResult result = driver.run();

  const bool csv = util::envFlag("MCFAIR_CSV");
  for (const sim::SweepMetric metric :
       {sim::SweepMetric::kMeanReceiverError,
        sim::SweepMetric::kMaxReceiverError, sim::SweepMetric::kMaxLinkError,
        sim::SweepMetric::kSampledShare}) {
    util::Table t({"scenario", "fraction", "obs", "mean", "p50", "p90",
                   "worst"});
    t.setPrecision(5);
    for (std::size_t si = 0; si < result.scenarioCount; ++si) {
      for (std::size_t fi = 0; fi < result.fractionCount; ++fi) {
        const sim::SweepCell& cell = result.cell(si, fi);
        const sim::MetricStream& stream = cell.metric(metric);
        t.addRow({cell.scenario, cell.sampleFraction,
                  static_cast<double>(cell.observations), stream.stats.mean(),
                  stream.p50.value(), stream.p90.value(),
                  stream.stats.max()});
      }
    }
    util::printTitled(std::string(sim::sweepMetricName(metric)) +
                          " vs sample fraction",
                      t, csv);
  }

  // The acceptance gate of the methodology page. "Monotone in
  // expectation" cannot be a strict per-pair inequality at finite
  // replicas — adjacent fractions like 0.05 vs 0.10 differ by less than
  // their Monte-Carlo noise — so the gate checks three things:
  //  1. the fraction-1.0 control column is *exactly* zero,
  //  2. adjacent fractions never increase by more than two combined
  //     standard errors of the mean (noise-tolerant monotonicity),
  //  3. the endpoints hold outright: mean error at the largest sampled
  //     (non-control) fraction <= mean error at the smallest fraction.
  const auto meanStream = [&](std::size_t si, std::size_t fi)
      -> const sim::MetricStream& {
    return result.cell(si, fi).metric(sim::SweepMetric::kMeanReceiverError);
  };
  const auto stderrOf = [](const sim::MetricStream& s) {
    return std::sqrt(s.stats.variance() /
                     static_cast<double>(s.stats.count()));
  };
  bool ok = true;
  for (std::size_t si = 0; si < result.scenarioCount; ++si) {
    const sim::SweepCell& control =
        result.cell(si, result.fractionCount - 1);
    if (control.metric(sim::SweepMetric::kMaxReceiverError).stats.max() !=
            0.0 ||
        control.metric(sim::SweepMetric::kMaxLinkError).stats.max() != 0.0) {
      std::printf("FAIL: nonzero error at fraction 1.0 on %s\n",
                  control.scenario.c_str());
      ok = false;
    }
    for (std::size_t fi = 0; fi + 1 < result.fractionCount; ++fi) {
      const sim::MetricStream& lo = meanStream(si, fi);
      const sim::MetricStream& hi = meanStream(si, fi + 1);
      const double slack = 2.0 * (stderrOf(lo) + stderrOf(hi));
      if (hi.stats.mean() > lo.stats.mean() + slack) {
        std::printf(
            "FAIL: mean receiver error increased beyond noise on %s "
            "(%.4f -> %.4f at fraction %.2f -> %.2f, slack %.4f)\n",
            result.cell(si, fi).scenario.c_str(), lo.stats.mean(),
            hi.stats.mean(), result.cell(si, fi).sampleFraction,
            result.cell(si, fi + 1).sampleFraction, slack);
        ok = false;
      }
    }
    if (result.fractionCount >= 3) {
      const double smallest = meanStream(si, 0).stats.mean();
      const double largest =
          meanStream(si, result.fractionCount - 2).stats.mean();
      if (largest > smallest) {
        std::printf(
            "FAIL: mean receiver error at fraction %.2f (%.4f) exceeds "
            "fraction %.2f (%.4f) on %s\n",
            result.cell(si, result.fractionCount - 2).sampleFraction,
            largest, result.cell(si, 0).sampleFraction, smallest,
            result.cell(si, 0).scenario.c_str());
        ok = false;
      }
    }
  }
  std::cout << (ok ? "\nPASS: fraction 1.0 is exactly zero-error and mean "
                     "error decreases with sample size (within noise on "
                     "adjacent fractions, outright between endpoints).\n"
                   : "\nsweep acceptance checks FAILED\n");
  return ok ? 0 : 1;
}
