// Section 3 example — with fixed layer subscriptions, a max-min fair
// allocation need not exist.
//
// Enumerates the feasible set of the paper's single-link example (S1:
// three layers of c/3, S2: two layers of c/2) and shows each allocation's
// max-min violation, then contrasts with the continuous max-min rates
// that joins/leaves can average to.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "layering/fixed_layer.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  const double c = 6.0;
  std::cout << "Section 3: fixed-layer max-min non-existence "
               "(single link, c = " << c << ")\n";
  const auto ex = layering::sec3NonexistenceExample(c);
  const auto analysis =
      layering::analyzeFixedLayerAllocations(ex.network, ex.schemes);

  util::Table t({"a1 (S1)", "a2 (S2)", "max-min fair within set?"});
  t.setPrecision(3);
  for (std::size_t i = 0; i < analysis.feasible.size(); ++i) {
    const auto& f = analysis.feasible[i];
    t.addRow({f.rates.rate({0, 0}), f.rates.rate({1, 0}),
              std::string(analysis.maxMinFairIndex == i ? "yes" : "no")});
  }
  util::printTitled("Feasible fixed-layer allocations", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nMax-min fair allocation exists in the feasible set: "
            << (analysis.maxMinFairIndex ? "yes" : "NO (paper's claim)")
            << "\n";

  const auto continuous = fairness::maxMinFairAllocation(ex.network);
  std::cout << "Continuous max-min rates (achievable as long-term "
               "averages via joins/leaves): a1 = "
            << continuous.rate({0, 0}) << ", a2 = "
            << continuous.rate({1, 0}) << "\n";
  return 0;
}
