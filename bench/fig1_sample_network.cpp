// Figure 1 — the sample network of Section 2.1.
//
// Regenerates the figure's multi-rate max-min fair allocation
// (a = 1,1,2,1,2) and the session link rates printed next to each link
// ((0:0:2), (1:2:0), (0:2:2), (1:1:1)), and confirms all four fairness
// properties hold (Theorem 1).
#include "bench_common.hpp"
#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Figure 1: sample multi-rate network (links c = 5,7,4,3)\n";
  const net::Network n = net::fig1Network();
  const auto a = fairness::maxMinFairAllocation(n);
  bench::printAllocationReport("Fig. 1", n, a);
  std::cout << "\nPaper values: a11=a21=a31=1, a22=a32=2; l3 and l4 fully "
               "utilized;\nsession link rates l1 (0:0:2), l2 (1:2:0), "
               "l3 (0:2:2), l4 (1:1:1).\n";
  return 0;
}
