// Shared helpers for the figure-regeneration binaries.
//
// Environment knobs honored by the simulation benches:
//   MCFAIR_RUNS      replicas per data point (default: the paper's 30)
//   MCFAIR_PACKETS   packets per replica (default: the paper's 100000)
//   MCFAIR_RECEIVERS session size for Figure 8 (default: the paper's 100)
//   MCFAIR_CSV       also emit CSV after each table when set
#pragma once

#include <iostream>
#include <string>

#include "fairness/report.hpp"
#include "util/table.hpp"

namespace mcfair::bench {

inline bool csvWanted() { return util::envFlag("MCFAIR_CSV"); }

/// Prints receiver rates, per-link session rates / utilization, and the
/// four fairness-property verdicts for one solved network.
inline void printAllocationReport(const std::string& title,
                                  const net::Network& n,
                                  const fairness::Allocation& a) {
  fairness::ReportOptions options;
  options.csv = csvWanted();
  fairness::printAllocationReport(std::cout, title, n, a, options);
}

}  // namespace mcfair::bench
