// Figure 6 — the impact of redundancy on fair rates.
//
// n sessions share one bottleneck of capacity c; m are multi-rate with
// redundancy v. Normalized fair rate = (c / ((n-m) + m v)) / (c/n) for
// m/n in {0.01, 0.05, 0.1, 1} and v in 1..10. Each point is produced by
// the actual max-min solver on the corresponding network and checked
// against the closed form.
#include <cmath>
#include <iostream>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Figure 6: normalized fair rate vs redundancy "
               "(shared bottleneck, c = 1000)\n";
  const double c = 1000.0;
  const std::size_t n = 100;  // 100 sessions so m/n = 0.01 is one session
  const std::vector<double> ratios{0.01, 0.05, 0.1, 1.0};

  std::vector<std::string> headers{"v"};
  for (const double r : ratios) {
    headers.push_back("m/n=" + std::to_string(r).substr(0, 4));
  }
  util::Table t(headers);
  t.setPrecision(4);

  double worstSolverError = 0.0;
  for (double v = 1.0; v <= 10.0 + 1e-9; v += 1.0) {
    std::vector<util::Cell> row{v};
    for (const double ratio : ratios) {
      const auto m = static_cast<std::size_t>(
          std::llround(ratio * static_cast<double>(n)));
      const double formula =
          c / (static_cast<double>(n - m) + static_cast<double>(m) * v);
      const net::Network net = net::singleBottleneckNetwork(n, m, c, v);
      const auto a = fairness::maxMinFairAllocation(net);
      const double solver = a.rate({0, 0});
      worstSolverError =
          std::max(worstSolverError, std::fabs(solver - formula) / formula);
      row.emplace_back(solver / (c / static_cast<double>(n)));
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Fig. 6 — normalized fair rate (solver)", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nWorst solver-vs-closed-form relative error: "
            << worstSolverError << "\n";
  std::cout << "Paper shape: even modest redundancy depresses everyone's "
               "fair rate; when multi-rate sessions are <= 5% of traffic "
               "the damage is small.\n";
  return 0;
}
