// Ablation (beyond the paper's star topologies) — redundancy on the root
// link of deep multicast trees.
//
// The paper studies "large-scale multicast networks" through a star
// model; this ablation varies distribution-tree depth at (roughly) fixed
// receiver count and fixed end-to-end loss, separating two effects the
// star cannot: (a) deeper trees correlate siblings through shared
// ancestor links, (b) loss spread over more hops behaves like
// independent loss. Redundancy is measured at the root link (the
// sender's access link — the paper's shared link).
#include <cmath>
#include <iostream>

#include "sim/tree_sim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 10));
  const double endToEnd = 0.06;  // target end-to-end loss past the root
  std::cout << "Ablation: multicast tree depth vs root-link redundancy "
               "(~64 receivers, 8 layers, end-to-end loss "
            << endToEnd << ", " << runs << " runs)\n";

  struct Row {
    std::size_t branching;
    std::size_t depth;
  };
  // ~64 leaves in every configuration: 64^1, 8^2, 4^3, 2^6.
  const std::vector<Row> shapes{{64, 2}, {8, 3}, {4, 4}, {2, 7}};

  util::Table t({"branching", "depth", "receivers", "per-link loss",
                 "Coordinated", "Uncoordinated", "Deterministic"});
  t.setPrecision(4);
  for (const auto& [branching, depth] : shapes) {
    // Solve (1-p)^(depth-1) = 1-endToEnd for the per-link rate.
    const double p =
        1.0 - std::pow(1.0 - endToEnd, 1.0 / static_cast<double>(depth - 1));
    std::vector<util::Cell> row{static_cast<double>(branching),
                                static_cast<double>(depth),
                                std::pow(static_cast<double>(branching),
                                         static_cast<double>(depth - 1)),
                                p};
    for (const auto kind :
         {ProtocolKind::kCoordinated, ProtocolKind::kUncoordinated,
          ProtocolKind::kDeterministic}) {
      util::RunningStats stats;
      for (std::uint64_t s = 1; s <= runs; ++s) {
        sim::TreeConfig c;
        c.branching = branching;
        c.depth = depth;
        c.layers = 8;
        c.protocol = kind;
        c.rootLossRate = 0.0001;
        c.perLinkLossRate = p;
        c.totalPackets = static_cast<std::uint64_t>(
            util::envInt("MCFAIR_PACKETS", 100000));
        c.seed = s;
        stats.add(sim::runTreeSimulation(c).rootRedundancy);
      }
      row.emplace_back(stats.mean());
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Root-link redundancy by tree shape", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nReading: at fixed end-to-end loss, deeper trees move "
               "loss onto links shared by sibling subtrees, which acts "
               "like the paper's correlated\nshared loss. Coordinated "
               "redundancy falls modestly with depth (the star, depth 2, "
               "is its worst case), while Uncoordinated is insensitive — "
               "its\ndesynchronization comes from random join timing, not "
               "from where the loss sits. The paper's star-based bounds "
               "therefore carry over to real trees.\n";
  return 0;
}
