// Ablation — Bernoulli vs bursty (Gilbert-Elliott) shared-link loss.
//
// Section 4 justifies Bernoulli loss by appeal to aggregation [21]; this
// ablation quantifies how much the conclusions depend on that choice by
// holding the long-run average loss fixed and varying burstiness.
#include <iostream>

#include "sim/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 10));
  const double avgLoss = 0.02;
  std::cout << "Ablation: shared-loss burstiness at fixed average loss "
            << avgLoss << " (50 receivers, 8 layers, fanout loss 2%, "
            << runs << " runs)\n";

  // Burst configurations with identical stationary loss 0.02: fraction of
  // time bad = avg/lossBad, tuned via goodToBad at fixed badToGood.
  struct Config {
    const char* label;
    std::optional<sim::StarConfig::BurstLoss> burst;
  };
  std::vector<Config> configs;
  configs.push_back({"Bernoulli", std::nullopt});
  for (const double lossBad : {0.1, 0.3, 0.6}) {
    sim::StarConfig::BurstLoss b;
    b.badToGood = 0.05;
    b.lossGood = 0.0;
    b.lossBad = lossBad;
    // fracBad = g/(g+0.05) = avg/lossBad  =>  g = 0.05*f/(1-f).
    const double f = avgLoss / lossBad;
    b.goodToBad = 0.05 * f / (1.0 - f);
    static char label[3][48];
    static int i = 0;
    snprintf(label[i], sizeof(label[i]), "GE bad-loss %.1f", lossBad);
    configs.push_back({label[i++], b});
  }

  util::Table t({"shared loss model", "Coordinated", "Uncoordinated",
                 "Deterministic", "mean level (Coord.)"});
  t.setPrecision(4);
  for (const auto& cfg : configs) {
    std::vector<util::Cell> row{std::string(cfg.label)};
    double coordLevel = 0.0;
    for (const auto kind :
         {ProtocolKind::kCoordinated, ProtocolKind::kUncoordinated,
          ProtocolKind::kDeterministic}) {
      sim::StarConfig c;
      c.receivers = 50;
      c.layers = 8;
      c.protocol = kind;
      c.sharedLossRate = avgLoss;
      c.sharedBurstLoss = cfg.burst;
      c.independentLossRate = 0.02;
      c.totalPackets =
          static_cast<std::uint64_t>(util::envInt("MCFAIR_PACKETS", 100000));
      row.emplace_back(sim::estimateRedundancy(c, runs).mean);
      if (kind == ProtocolKind::kCoordinated) {
        coordLevel = sim::runStarSimulation(c).meanLevel;
      }
    }
    row.emplace_back(coordLevel);
    t.addRow(std::move(row));
  }
  util::printTitled("Redundancy under increasingly bursty shared loss", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nReading: burstier shared loss clusters congestion events "
               "that all receivers see together, so subscriptions ride "
               "higher between bursts;\nthe protocols' relative ordering "
               "is insensitive to the loss model, supporting the paper's "
               "Bernoulli simplification.\n";
  return 0;
}
