// Figure 3 — removing a receiver can move the remaining max-min fair
// rates in either direction (Section 2.5).
//
// The two networks are reconstructions (the original figure's labels are
// not recoverable from the available scan) that preserve the phenomenon:
// in (a) r3,1's rate DROPS when its sibling r3,2 leaves; in (b) it RISES.
#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

#include <iostream>

namespace {

void runCase(const char* label, const mcfair::net::Network& before,
             const mcfair::net::Network& after) {
  using namespace mcfair;
  const auto ab = fairness::maxMinFairAllocation(before);
  const auto aa = fairness::maxMinFairAllocation(after);
  util::Table t({"receiver", "before removal", "after removal", "change"});
  t.setPrecision(3);
  for (const auto ref : before.allReceivers()) {
    const auto& r = before.session(ref.session).receivers[ref.receiver];
    const bool removed = ref == net::fig3RemovedReceiver();
    const double b = ab.rate(ref);
    if (removed) {
      t.addRow({r.name, b, std::string("-"), std::string("(removed)")});
      continue;
    }
    const double a = aa.rate(ref);
    t.addRow({r.name, b, a,
              std::string(a > b + 1e-9   ? "UP"
                          : a < b - 1e-9 ? "DOWN"
                                         : "same")});
  }
  util::printTitled(label, t, util::envFlag("MCFAIR_CSV"));
}

}  // namespace

int main() {
  using namespace mcfair;
  std::cout << "Figure 3: receiver removal moves remaining fair rates in "
               "either direction\n";
  runCase("Fig. 3(a) — intra-session DECREASE for r3,1",
          net::fig3aNetwork(false), net::fig3aNetwork(true));
  runCase("Fig. 3(b) — intra-session INCREASE for r3,1",
          net::fig3bNetwork(false), net::fig3bNetwork(true));
  std::cout << "\nPaper: \"removing receivers from sessions can have a "
               "non-obvious impact on the max-min fair rates of the "
               "remaining receivers\" — both directions occur.\n";
  return 0;
}
