// Figure 8(b) — protocol redundancy vs independent link loss with high
// shared loss (0.05), 100 receivers, 8 layers.
#include "fig8_common.hpp"

int main() {
  return mcfair::bench::runFigure8(
      "Figure 8(b): redundancy vs independent loss, high shared loss",
      0.05);
}
