// Session-dynamics experiment (Section 5: "a session's fair allocation
// may vary due to startup and/or termination of other sessions within
// the network") — how quickly do the layered protocols re-converge when
// the competing load changes?
//
// Session A runs for the whole experiment on a shared c=12 link; session
// B is active only in the middle third. The timeline of A's delivered
// rate shows adaptation toward the changing max-min fair share (A's fair
// rate: 8* alone, 6 while sharing; *limited by the discrete top layers).
//
// The setup comes from the scenario engine: buildScenario() generates
// the two-session backbone population, then B's lifetime is pinned to
// the middle third (ClosedLoopConfig is a value — scenario edits like
// this are the supported way to specialize a generated population).
#include <iostream>

#include "sim/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  std::cout << "Session dynamics on one c=12 link: B active only in "
               "t = [1000, 2000)\n";

  const double binWidth = 250.0;
  util::Table t({"time bin", "A (Coordinated)", "B (Coordinated)",
                 "A (Deterministic)", "B (Deterministic)"});
  t.setPrecision(2);
  std::vector<std::vector<double>> aRates, bRates;
  for (const auto kind :
       {ProtocolKind::kCoordinated, ProtocolKind::kDeterministic}) {
    sim::ScenarioSpec spec;
    spec.name = "session-dynamics";
    spec.sessions = 2;
    spec.backbonePerSession = 6.0;  // one shared c = 12 backbone
    spec.duration = 3000.0;
    spec.warmup = 0.0;
    spec.rateBinWidth = binWidth;
    spec.mix = {sim::SessionMix{{kind, 5, 1},
                                net::SessionType::kMultiRate, 1.0}};
    sim::Scenario scenario = sim::buildScenario(spec);
    scenario.config.sessions[1].startTime = 1000.0;
    scenario.config.sessions[1].stopTime = 2000.0;

    std::vector<double> a, b;
    const int seeds = static_cast<int>(util::envInt("MCFAIR_RUNS", 10));
    for (int s = 1; s <= seeds; ++s) {
      scenario.config.seed = static_cast<std::uint64_t>(s);
      const auto r = sim::runScenario(scenario);
      if (a.empty()) {
        a.assign(r.binRates[0][0].size(), 0.0);
        b.assign(r.binRates[1][0].size(), 0.0);
      }
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] += r.binRates[0][0][i] / seeds;
        b[i] += r.binRates[1][0][i] / seeds;
      }
    }
    aRates.push_back(std::move(a));
    bRates.push_back(std::move(b));
  }
  for (std::size_t bin = 0; bin < aRates[0].size(); ++bin) {
    t.addRow({std::string("[") +
                  std::to_string(static_cast<int>(bin * binWidth)) + "," +
                  std::to_string(static_cast<int>((bin + 1) * binWidth)) +
                  ")",
              aRates[0][bin], bRates[0][bin], aRates[1][bin],
              bRates[1][bin]});
  }
  util::printTitled("Seed-averaged delivered rate per 250-unit bin", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nReading: A rides at the top layers while alone, backs "
               "off within one bin of B's arrival, and re-claims the "
               "freed bandwidth within a\nbin of B's departure — the "
               "allocation tracks the time-varying max-min fair share.\n";
  return 0;
}
