// Figure 8(a) — protocol redundancy vs independent link loss with very
// low shared loss (0.0001), 100 receivers, 8 layers.
#include "fig8_common.hpp"

int main() {
  return mcfair::bench::runFigure8(
      "Figure 8(a): redundancy vs independent loss, low shared loss",
      0.0001);
}
