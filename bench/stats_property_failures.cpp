// Statistical study (beyond the paper's figures, quantifying Theorems
// 1-2) — how often does each fairness property fail in the max-min fair
// allocation of a random network, as a function of the session-type mix?
//
// The paper proves the multi-rate column must be all zeros (Theorem 1)
// and that per-session-link-fairness holds for any mix (Theorem 2c); the
// single-rate/mixed columns quantify how commonly the other properties
// break in practice — the empirical size of the fairness benefit.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  const auto trials =
      static_cast<std::size_t>(util::envInt("MCFAIR_TRIALS", 400));
  std::cout << "Fairness-property failure rates over " << trials
            << " random networks per session-type mix\n";

  util::Table t({"single-rate fraction", "fully-utilized-receiver",
                 "same-path-receiver", "per-receiver-link",
                 "per-session-link"});
  t.setPrecision(3);

  for (const double singleRateProb : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::array<std::size_t, 4> failures{};
    util::Rng rng(987654321);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      net::RandomNetworkOptions opts;
      opts.singleRateProbability = singleRateProb;
      opts.sessions = 5;
      const net::Network n = net::randomNetwork(rng, opts);
      const auto a = fairness::maxMinFairAllocation(n);
      const auto checks = fairness::checkAllProperties(n, a);
      for (std::size_t p = 0; p < 4; ++p) {
        if (!checks[p].second.holds) ++failures[p];
      }
    }
    std::vector<util::Cell> row{singleRateProb};
    for (std::size_t p = 0; p < 4; ++p) {
      row.emplace_back(static_cast<double>(failures[p]) /
                       static_cast<double>(trials));
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Failure rate by property (0 = never fails)", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nTheorem 1 predicts the first row is identically zero; "
               "Theorem 2(c) predicts the last column is identically "
               "zero.\nThe interior quantifies how much fairness "
               "single-rate sessions give up on random topologies.\n";
  return 0;
}
