// Shared driver for the Figure 8 simulation sweeps.
#pragma once

#include <iostream>
#include <vector>

#include "sim/star.hpp"
#include "util/table.hpp"

namespace mcfair::bench {

/// Runs one Figure 8 panel: redundancy vs independent fanout loss for the
/// three protocols at a fixed shared-link loss rate. Scale knobs come
/// from the environment (MCFAIR_RUNS / MCFAIR_PACKETS / MCFAIR_RECEIVERS)
/// and default to the paper's 30 x 100,000 packets x 100 receivers.
inline int runFigure8(const char* title, double sharedLoss) {
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 30));
  const auto packets =
      static_cast<std::uint64_t>(util::envInt("MCFAIR_PACKETS", 100000));
  const auto receivers =
      static_cast<std::size_t>(util::envInt("MCFAIR_RECEIVERS", 100));

  std::cout << title << "\n"
            << "(" << receivers << " receivers, 8 layers, shared loss "
            << sharedLoss << ", " << runs << " runs x " << packets
            << " packets)\n";

  const std::vector<double> lossPoints{0.001, 0.02, 0.04, 0.06, 0.08, 0.1};
  util::Table t({"independent loss", "Coordinated", "ci95", "Uncoordinated",
                 "ci95 ", "Deterministic", "ci95  "});
  t.setPrecision(4);
  for (const double p : lossPoints) {
    std::vector<util::Cell> row{p};
    for (const auto kind :
         {sim::ProtocolKind::kCoordinated, sim::ProtocolKind::kUncoordinated,
          sim::ProtocolKind::kDeterministic}) {
      sim::StarConfig c;
      c.receivers = receivers;
      c.layers = 8;
      c.protocol = kind;
      c.sharedLossRate = sharedLoss;
      c.independentLossRate = p;
      c.totalPackets = packets;
      c.seed = 1000 + static_cast<std::uint64_t>(p * 10000);
      const auto est = sim::estimateRedundancy(c, runs);
      row.emplace_back(est.mean);
      row.emplace_back(est.ci95);
    }
    t.addRow(std::move(row));
  }
  util::printTitled(title, t, util::envFlag("MCFAIR_CSV"));
  std::cout << "\nPaper shape: redundancy grows with independent loss, "
               "stays below ~5 for all protocols at reasonable loss "
               "rates,\nand the sender-Coordinated protocol stays below "
               "~2.5 throughout.\n";
  return 0;
}

}  // namespace mcfair::bench
