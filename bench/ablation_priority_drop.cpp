// Ablation (Section 5 / reference [1]) — does priority dropping help
// layered receivers?
//
// "One question that comes to mind is whether priority dropping schemes
// for layered approaches [1] might aid in reducing redundancy by
// increasing coordination among receivers." Under priority dropping the
// shared link discards enhancement-layer packets first; under uniform
// dropping every packet is equally at risk. Both configurations carry
// the same bandwidth-weighted average loss.
#include <iostream>

#include "sim/star.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 10));
  std::cout << "Ablation: uniform vs priority dropping on the shared link "
               "(50 receivers, 8 layers, shared loss 0.03, no fanout "
               "loss, " << runs << " runs)\n";

  util::Table t({"protocol", "dropping", "redundancy", "mean level",
                 "max delivered/pkt"});
  t.setPrecision(4);
  for (const auto kind :
       {ProtocolKind::kCoordinated, ProtocolKind::kUncoordinated,
        ProtocolKind::kDeterministic}) {
    for (const bool priority : {false, true}) {
      util::RunningStats red, lvl, del;
      for (std::uint64_t s = 1; s <= runs; ++s) {
        sim::StarConfig c;
        c.receivers = 50;
        c.layers = 8;
        c.protocol = kind;
        c.sharedLossRate = 0.03;
        c.independentLossRate = 0.0;
        c.prioritySharedDropping = priority;
        c.totalPackets = static_cast<std::uint64_t>(
            util::envInt("MCFAIR_PACKETS", 100000));
        c.seed = s;
        const auto r = sim::runStarSimulation(c);
        red.add(r.redundancy);
        lvl.add(r.meanLevel);
        del.add(static_cast<double>(r.maxDelivered) /
                static_cast<double>(c.totalPackets));
      }
      t.addRow({std::string(protocolName(kind)),
                std::string(priority ? "priority" : "uniform"), red.mean(),
                lvl.mean(), del.mean()});
    }
  }
  util::printTitled("Uniform vs priority dropping", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nReading: priority dropping protects the base layers, so "
               "receivers hold higher subscriptions and deliver more; "
               "because the surviving\nlosses hit receivers subscribed to "
               "the same top layers simultaneously, their back-offs stay "
               "synchronized — the coordination benefit the\npaper "
               "speculated about.\n";
  return 0;
}
