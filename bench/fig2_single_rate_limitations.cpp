// Figure 2 — where a single-rate session fails all but one of the
// fairness properties (Section 2.3).
//
// Solves the same topology twice: with S1 single-rate (the figure's
// configuration: a1 = 2, a2 = 3, three of four properties fail) and with
// S1 multi-rate (all properties hold), demonstrating the paper's core
// theoretical claim on its own example.
#include "bench_common.hpp"
#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Figure 2: single-rate vs multi-rate S1 "
               "(links c = 5,2,3,6; sigma = 100)\n";
  {
    const net::Network n = net::fig2Network(/*s1MultiRate=*/false);
    const auto a = fairness::maxMinFairAllocation(n);
    bench::printAllocationReport("Fig. 2, S1 single-rate", n, a);
  }
  {
    const net::Network n = net::fig2Network(/*s1MultiRate=*/true);
    const auto a = fairness::maxMinFairAllocation(n);
    bench::printAllocationReport("Fig. 2, S1 multi-rate", n, a);
  }
  std::cout << "\nPaper: single-rate allocation (2,2,2 | 3) fails "
               "same-path-, fully-utilized-receiver- and per-receiver-"
               "link-fairness;\nmulti-rate allocation (2.5, 2, 3 | 2.5) "
               "satisfies all four (Theorem 1).\n";
  return 0;
}
