// Section 4 analysis on the Figure 7(a) model — exact Markov results for
// two receivers behind a shared link.
//
// Sweeps shared and independent loss and reports each protocol's
// stationary redundancy, reproducing the paper's analytical finding:
// "redundancy is highest when receivers experience the same end-to-end
// loss rates".
#include <iostream>

#include "markov/protocol_chain.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  std::cout << "Figure 7(a) model: exact Markov analysis, 2 receivers, "
               "4 layers\n";

  // Part 1: redundancy vs (p1, p2) split with p1 + p2 fixed — the
  // equal-loss maximum.
  {
    util::Table t({"p1", "p2", "Uncoordinated", "Deterministic",
                   "Coordinated"});
    t.setPrecision(4);
    const double total = 0.08;
    for (const double p1 : {0.04, 0.03, 0.02, 0.01, 0.005}) {
      const double p2 = total - p1;
      std::vector<util::Cell> row{p1, p2};
      for (const auto kind :
           {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
            ProtocolKind::kCoordinated}) {
        markov::ProtocolChainConfig c;
        c.layers = kind == ProtocolKind::kDeterministic ? 3 : 4;
        c.protocol = kind;
        c.sharedLoss = 0.0001;
        c.receiverLoss = {p1, p2};
        row.emplace_back(markov::analyzeProtocolChain(c).redundancy);
      }
      t.addRow(std::move(row));
    }
    util::printTitled(
        "Redundancy vs loss split (p1 + p2 = 0.08, shared = 1e-4)", t,
        util::envFlag("MCFAIR_CSV"));
  }

  // Part 2: redundancy vs shared loss at equal independent loss.
  {
    util::Table t({"shared loss", "independent", "Uncoordinated",
                   "Coordinated"});
    t.setPrecision(4);
    for (const double ps : {0.0001, 0.01, 0.05}) {
      for (const double pi : {0.01, 0.05}) {
        std::vector<util::Cell> row{ps, pi};
        for (const auto kind :
             {ProtocolKind::kUncoordinated, ProtocolKind::kCoordinated}) {
          markov::ProtocolChainConfig c;
          c.layers = 4;
          c.protocol = kind;
          c.sharedLoss = ps;
          c.receiverLoss = {pi, pi};
          row.emplace_back(markov::analyzeProtocolChain(c).redundancy);
        }
        t.addRow(std::move(row));
      }
    }
    util::printTitled("Redundancy vs shared loss (equal fanout loss)", t,
                      util::envFlag("MCFAIR_CSV"));
  }

  std::cout << "\nPaper finding reproduced: for every protocol the "
               "equal-split row dominates the skewed rows — redundancy is "
               "highest when receivers\nsee the same end-to-end loss "
               "rates. (Deterministic runs with 3 layers instead of 4 to "
               "bound its counter state space,\nso its column is not "
               "directly comparable across protocols.)\n";
  return 0;
}
