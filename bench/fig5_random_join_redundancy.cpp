// Figure 5 — redundancy of a single layer with random joins.
//
// The Appendix B closed form evaluated over 1..100 receivers for the
// paper's five curves (All 0.1 / All 0.5 / All 0.9 / 1st .5 rest .1 /
// 1st .9 rest .1), sigma = 1. A Monte-Carlo column (MCFAIR_MC=1) can
// cross-check the expectation.
#include <iostream>
#include <vector>

#include "layering/quantum.hpp"
#include "util/table.hpp"

namespace {

struct Curve {
  const char* label;
  double first;
  double rest;
};

}  // namespace

int main() {
  using namespace mcfair;
  std::cout << "Figure 5: redundancy of a single layer with random joins "
               "(sigma = 1)\n";
  const std::vector<Curve> curves{
      {"All 0.1", 0.1, 0.1},
      {"All 0.5", 0.5, 0.5},
      {"1st .5 rest .1", 0.5, 0.1},
      {"All 0.9", 0.9, 0.9},
      {"1st .9 rest .1", 0.9, 0.1},
  };
  const std::vector<std::size_t> receiverCounts{1,  2,  3,  5,  7,  10,
                                                15, 20, 30, 50, 70, 100};
  std::vector<std::string> headers{"receivers"};
  for (const auto& c : curves) headers.emplace_back(c.label);
  util::Table t(headers);
  t.setPrecision(4);
  for (const std::size_t r : receiverCounts) {
    std::vector<util::Cell> row{static_cast<double>(r)};
    for (const auto& c : curves) {
      std::vector<double> rates(r, c.rest);
      rates[0] = c.first;
      row.emplace_back(layering::singleLayerRandomJoinRedundancy(rates, 1.0));
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Fig. 5 — redundancy vs receivers per curve", t,
                    util::envFlag("MCFAIR_CSV"));

  if (util::envFlag("MCFAIR_MC")) {
    util::Rng rng(12345);
    util::Table mc({"receivers", "curve", "closed form", "Monte Carlo"});
    mc.setPrecision(4);
    for (const std::size_t r : {10u, 50u, 100u}) {
      for (const auto& c : curves) {
        std::vector<double> rates(r, c.rest);
        rates[0] = c.first;
        const double cf =
            layering::singleLayerRandomJoinExpectedUsage(rates, 1.0);
        const double sim = layering::simulateRandomJoinUsage(
            rates, 1.0, /*packetsPerQuantum=*/100, /*quanta=*/2000, rng);
        mc.addRow({static_cast<double>(r), std::string(c.label), cf, sim});
      }
    }
    util::printTitled("Fig. 5 — Appendix B validation", mc, true);
  }

  std::cout << "\nPaper shape: redundancy is bounded by sigma/max(a) "
               "(10 for the 0.1 curves), grows fastest when all receivers "
               "share one rate,\nand saturates as receivers multiply.\n";
  return 0;
}
