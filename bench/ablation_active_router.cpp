// Ablation (Section 5 conjecture) — active-router join/leave
// coordination.
//
// "Placing the decision to add and drop layers at the active nodes,
// rather than at receivers, should increase the coordination of the
// joins and leaves of layers by downstream receivers, thereby reducing
// redundancy. Such an approach would make a redundancy of one feasible."
// Compares the three receiver-driven protocols against the ActiveRouter
// extension across independent loss rates.
#include <iostream>

#include "sim/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;
  const auto runs =
      static_cast<std::size_t>(util::envInt("MCFAIR_RUNS", 10));
  std::cout << "Ablation: active-router coordination "
               "(100 receivers, 8 layers, shared loss 1e-4, " << runs
            << " runs)\n";
  util::Table t({"independent loss", "ActiveRouter", "Coordinated",
                 "Uncoordinated", "Deterministic"});
  t.setPrecision(4);
  for (const double p : {0.001, 0.02, 0.05, 0.1}) {
    std::vector<util::Cell> row{p};
    for (const auto kind :
         {ProtocolKind::kActiveRouter, ProtocolKind::kCoordinated,
          ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic}) {
      sim::StarConfig c;
      c.receivers = 100;
      c.layers = 8;
      c.protocol = kind;
      c.sharedLossRate = 0.0001;
      c.independentLossRate = p;
      c.totalPackets =
          static_cast<std::uint64_t>(util::envInt("MCFAIR_PACKETS", 100000));
      row.emplace_back(sim::estimateRedundancy(c, runs).mean);
    }
    t.addRow(std::move(row));
  }
  util::printTitled("Redundancy by coordination mechanism", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nConjecture confirmed: with the subscription decision at "
               "the router, the shared link forwards exactly one "
               "subscription's worth of\npackets — redundancy collapses to "
               "the loss-inflation floor 1/(1-q), independent of receiver "
               "count.\n";
  return 0;
}
