// Convergence experiment (beyond the paper's figures, validating its
// Section 4 premise) — do the layered congestion-control protocols
// actually drive receiver rates to the max-min fair allocation when loss
// is *endogenous* (real capacity-limited links) instead of the paper's
// exogenous Bernoulli model?
//
// Runs each protocol closed-loop on the Figure 2 multi-rate network and
// on a 4-session shared bottleneck, reporting measured vs max-min fair
// rates and the mean relative fairness gap. Both setups are expressed as
// sim::Scenario values: the bottleneck comes straight from the scenario
// engine (buildScenario), the Fig 2 case wraps the hand-built paper
// topology — the two ways every closed-loop experiment is assembled.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/report.hpp"
#include "net/topologies.hpp"
#include "sim/scenario.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace mcfair;

void runScenarioTable(const sim::Scenario& base) {
  const net::Network& n = base.network;
  const auto fair = fairness::maxMinFairAllocation(n);
  const auto seeds =
      static_cast<std::uint64_t>(util::envInt("MCFAIR_RUNS", 10));

  std::vector<std::string> headers{"receiver", "max-min fair"};
  for (const auto kind :
       {sim::ProtocolKind::kCoordinated, sim::ProtocolKind::kDeterministic,
        sim::ProtocolKind::kUncoordinated}) {
    headers.emplace_back(protocolName(kind));
  }
  util::Table t(headers);
  t.setPrecision(3);

  std::vector<std::vector<double>> meanRates;  // [protocol][flat receiver]
  std::vector<double> gaps;
  for (const auto kind :
       {sim::ProtocolKind::kCoordinated, sim::ProtocolKind::kDeterministic,
        sim::ProtocolKind::kUncoordinated}) {
    std::vector<double> acc(n.receiverCount(), 0.0);
    double gap = 0.0;
    // Only the config varies per protocol/seed; the network is read in
    // place (a Scenario copy would duplicate the whole topology).
    sim::ClosedLoopConfig cfg = base.config;
    for (auto& sc : cfg.sessions) sc.protocol = kind;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      cfg.seed = s;
      const auto r = sim::runClosedLoopSimulation(n, cfg);
      std::size_t flat = 0;
      for (const auto ref : n.allReceivers()) {
        acc[flat++] += r.measuredRate[ref.session][ref.receiver];
      }
      gap += sim::fairnessGap(n, r, fair);
    }
    for (double& v : acc) v /= static_cast<double>(seeds);
    meanRates.push_back(std::move(acc));
    gaps.push_back(gap / static_cast<double>(seeds));
  }

  std::size_t flat = 0;
  for (const auto ref : n.allReceivers()) {
    std::vector<util::Cell> row{fairness::receiverDisplayName(n, ref),
                                fair.rate(ref)};
    for (const auto& rates : meanRates) row.emplace_back(rates[flat]);
    ++flat;
    t.addRow(std::move(row));
  }
  std::vector<util::Cell> gapRow{std::string("mean relative gap"),
                                 std::string("-")};
  for (double g : gaps) gapRow.emplace_back(g);
  t.addRow(std::move(gapRow));
  util::printTitled(base.name, t, util::envFlag("MCFAIR_CSV"));
}

}  // namespace

int main() {
  using namespace mcfair;
  std::cout << "Closed-loop convergence toward max-min fair rates "
               "(endogenous loss, seed-averaged)\n";

  // Hand-built paper topology wrapped as a scenario.
  sim::Scenario fig2;
  fig2.name = "Figure 2 network, S1 multi-rate (fair: 2.5, 2, 3 | 2.5)";
  fig2.network = net::fig2Network(true);
  fig2.config.sessions.assign(
      fig2.network.sessionCount(),
      sim::ClosedLoopSessionConfig{sim::ProtocolKind::kCoordinated, 6, 1});
  fig2.config.duration = 4000.0;
  fig2.config.warmup = 1000.0;
  runScenarioTable(fig2);

  // Generated population: 4 unicast sessions on one c = 16 backbone.
  sim::ScenarioSpec spec;
  spec.name = "4 sessions on one c=16 link (fair: 4 each)";
  spec.sessions = 4;
  spec.backbonePerSession = 4.0;
  spec.duration = 4000.0;
  spec.warmup = 1000.0;
  spec.mix = {sim::SessionMix{{sim::ProtocolKind::kCoordinated, 6, 1},
                              net::SessionType::kMultiRate, 1.0}};
  runScenarioTable(sim::buildScenario(spec));

  // Routed-mesh population: the meshed-backbone preset downscaled — the
  // same convergence question on a BA m = 2 graph where the routing
  // layer (not the topology) picked each session's distribution tree
  // and capacities are proportional to routed load.
  const sim::ScenarioSpec* meshBase = sim::findScenario("meshed-backbone");
  MCFAIR_REQUIRE(meshBase != nullptr,
                 "meshed-backbone preset missing from catalog");
  sim::ScenarioSpec mesh = *meshBase;
  mesh.name = "meshed-backbone, 8 sessions on a routed BA m=2 graph";
  mesh.sessions = 8;
  mesh.backboneNodes = 24;
  mesh.duration = 4000.0;
  mesh.warmup = 1000.0;
  runScenarioTable(sim::buildScenario(mesh));

  std::cout << "\nReading: private tail bottlenecks converge to their "
               "exact fair rates; receivers contending on shared links "
               "oscillate across the\ndiscrete layer levels around their "
               "fair share (mean relative gap ~0.2), matching the paper's "
               "\"close to max-min fair\" characterization.\n";
  return 0;
}
