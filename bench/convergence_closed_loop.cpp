// Convergence experiment (beyond the paper's figures, validating its
// Section 4 premise) — do the layered congestion-control protocols
// actually drive receiver rates to the max-min fair allocation when loss
// is *endogenous* (real capacity-limited links) instead of the paper's
// exogenous Bernoulli model?
//
// Runs each protocol closed-loop on the Figure 2 multi-rate network and
// on a 4-session shared bottleneck, reporting measured vs max-min fair
// rates and the mean relative fairness gap.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/report.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "util/table.hpp"

namespace {

using namespace mcfair;

void runScenario(const char* title, const net::Network& n,
                 std::size_t layers) {
  const auto fair = fairness::maxMinFairAllocation(n);
  const auto seeds =
      static_cast<std::uint64_t>(util::envInt("MCFAIR_RUNS", 10));

  std::vector<std::string> headers{"receiver", "max-min fair"};
  for (const auto kind :
       {sim::ProtocolKind::kCoordinated, sim::ProtocolKind::kDeterministic,
        sim::ProtocolKind::kUncoordinated}) {
    headers.emplace_back(protocolName(kind));
  }
  util::Table t(headers);
  t.setPrecision(3);

  std::vector<std::vector<double>> meanRates;  // [protocol][flat receiver]
  std::vector<double> gaps;
  for (const auto kind :
       {sim::ProtocolKind::kCoordinated, sim::ProtocolKind::kDeterministic,
        sim::ProtocolKind::kUncoordinated}) {
    std::vector<double> acc(n.receiverCount(), 0.0);
    double gap = 0.0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      sim::ClosedLoopConfig c;
      c.sessions.assign(n.sessionCount(),
                        sim::ClosedLoopSessionConfig{kind, layers, 1});
      c.duration = 4000.0;
      c.warmup = 1000.0;
      c.seed = s;
      const auto r = sim::runClosedLoopSimulation(n, c);
      std::size_t flat = 0;
      for (const auto ref : n.allReceivers()) {
        acc[flat++] += r.measuredRate[ref.session][ref.receiver];
      }
      gap += sim::fairnessGap(n, r, fair);
    }
    for (double& v : acc) v /= static_cast<double>(seeds);
    meanRates.push_back(std::move(acc));
    gaps.push_back(gap / static_cast<double>(seeds));
  }

  std::size_t flat = 0;
  for (const auto ref : n.allReceivers()) {
    std::vector<util::Cell> row{fairness::receiverDisplayName(n, ref),
                                fair.rate(ref)};
    for (const auto& rates : meanRates) row.emplace_back(rates[flat]);
    ++flat;
    t.addRow(std::move(row));
  }
  std::vector<util::Cell> gapRow{std::string("mean relative gap"),
                                 std::string("-")};
  for (double g : gaps) gapRow.emplace_back(g);
  t.addRow(std::move(gapRow));
  util::printTitled(title, t, util::envFlag("MCFAIR_CSV"));
}

}  // namespace

int main() {
  using namespace mcfair;
  std::cout << "Closed-loop convergence toward max-min fair rates "
               "(endogenous loss, seed-averaged)\n";
  runScenario("Figure 2 network, S1 multi-rate (fair: 2.5, 2, 3 | 2.5)",
              net::fig2Network(true), 6);

  net::Network bottleneck;
  const auto l = bottleneck.addLink(16.0);
  for (int i = 0; i < 4; ++i) {
    bottleneck.addSession(net::makeUnicastSession({l}));
  }
  runScenario("4 sessions on one c=16 link (fair: 4 each)", bottleneck, 6);

  std::cout << "\nReading: private tail bottlenecks converge to their "
               "exact fair rates; receivers contending on shared links "
               "oscillate across the\ndiscrete layer levels around their "
               "fair share (mean relative gap ~0.2), matching the paper's "
               "\"close to max-min fair\" characterization.\n";
  return 0;
}
