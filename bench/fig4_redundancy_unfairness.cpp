// Figure 4 — redundancy breaks the session-perspective fairness
// properties (Section 3).
//
// The Figure 2 topology with S1 multi-rate but carrying redundancy 2 on
// the shared first hop: every receiver lands at rate 2, u_{1,4} = 4, and
// per-session-link-fairness fails for session S2 even though the
// allocation is max-min fair. The receiver-perspective properties
// survive.
#include "bench_common.hpp"
#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Figure 4: redundancy 2 on the shared link of S1 "
               "(links c = 5,2,3,6)\n";
  const net::Network n = net::fig4Network();
  const auto a = fairness::maxMinFairAllocation(n);
  bench::printAllocationReport("Fig. 4", n, a);
  std::cout << "\nPaper: all receivers at rate 2 with u_{1,4} = 4 > "
               "u_{2,4} = 2 on the fully utilized shared hop, so "
               "per-session-link-fairness\n(and hence per-receiver-link-"
               "fairness) fail for S2, while the receiver-perspective "
               "properties continue to hold.\n";
  return 0;
}
