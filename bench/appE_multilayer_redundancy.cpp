// Appendix E claim — additional layers reduce random-join redundancy and
// never increase it beyond the single-layer case.
//
// For the All-z receiver populations of Figure 5, compares the expected
// redundancy of a single layer of rate sigma against exponential schemes
// with 2..6 layers covering the same aggregate rate.
#include <iostream>
#include <vector>

#include "layering/quantum.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  std::cout << "Appendix E: multi-layer vs single-layer random-join "
               "redundancy\n";
  const layering::LayerScheme six = layering::LayerScheme::exponential(6);
  const double sigma = six.cumulativeRate(6);  // 32

  util::Table t({"receivers", "rate/receiver", "1 layer", "2 layers",
                 "4 layers", "6 layers"});
  t.setPrecision(4);
  for (const double frac : {0.1, 0.3, 0.7}) {
    for (const std::size_t r : {2u, 10u, 50u}) {
      const std::vector<double> rates(r, frac * sigma);
      std::vector<util::Cell> row{static_cast<double>(r), frac * sigma};
      row.emplace_back(
          layering::singleLayerRandomJoinRedundancy(rates, sigma));
      for (const std::size_t layers : {2u, 4u, 6u}) {
        // Exponential scheme scaled so its aggregate equals sigma.
        layering::LayerScheme base =
            layering::LayerScheme::exponential(layers);
        std::vector<double> scaled;
        for (std::size_t k = 1; k <= layers; ++k) {
          scaled.push_back(base.layerRate(k) * sigma /
                           base.cumulativeRate(layers));
        }
        row.emplace_back(layering::multiLayerRandomJoinRedundancy(
            rates, layering::LayerScheme(scaled)));
      }
      t.addRow(std::move(row));
    }
  }
  util::printTitled("Redundancy by layer count (sigma = 32)", t,
                    util::envFlag("MCFAIR_CSV"));
  std::cout << "\nPaper claim reproduced: each added layer weakly lowers "
               "redundancy; the single-layer column is the upper bound.\n";
  return 0;
}
