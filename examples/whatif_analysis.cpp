// Scenario: capacity-planning what-ifs on a fixed topology.
//
// Network operators often ask "what happens to everyone's fair share if
// ...?". This example uses the immutable what-if copies on net::Network
// (withCapacity / withSessionType / withoutReceiver /
// withLinkRateFunction) to answer four such questions on one network,
// including the paper's counter-intuitive receiver-removal effect
// (Section 2.5) and the redundancy penalty (Lemma 4).
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

namespace {

void report(const char* label, const mcfair::net::Network& n) {
  const auto a = mcfair::fairness::maxMinFairAllocation(n);
  std::cout << label << ": ";
  for (const auto ref : n.allReceivers()) {
    const auto& r = n.session(ref.session).receivers[ref.receiver];
    const std::string name =
        r.name.empty() ? "r" + std::to_string(ref.session + 1) + "," +
                             std::to_string(ref.receiver + 1)
                       : r.name;
    std::cout << name << "=" << a.rate(ref) << "  ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcfair;

  // Base network: the paper's Figure 3(a) before-removal configuration.
  const net::Network base = net::fig3aNetwork(false);
  std::cout << "Base network (Figure 3(a)):\n";
  report("  base allocation", base);

  std::cout << "\nQ1: a receiver churns away — who wins, who loses?\n";
  report("  without r3,2", base.withoutReceiver(net::fig3RemovedReceiver()));
  std::cout << "  (r3,1 LOSES bandwidth when its own session shrinks — "
               "the paper's Section 2.5 surprise.)\n";

  std::cout << "\nQ2: we upgrade the contested 4-capacity link to 8.\n";
  report("  with lA upgraded", base.withCapacity(graph::LinkId{0}, 8.0));

  std::cout << "\nQ3: session S3 must become single-rate "
               "(application constraint).\n";
  const auto singleRate =
      base.withSessionType(2, net::SessionType::kSingleRate);
  report("  S3 single-rate", singleRate);
  const bool degraded = fairness::strictlyMinUnfavorable(
      fairness::maxMinFairAllocation(singleRate).orderedRates(),
      fairness::maxMinFairAllocation(base).orderedRates(), 1e-9);
  std::cout << "  Lemma 3 in action: the single-rate variant is "
            << (degraded ? "strictly less" : "equally") << " max-min fair.\n";

  std::cout << "\nQ4: a layered session whose receivers share a link runs "
               "uncoordinated (redundancy 1.5) — what does that cost "
               "everyone?\n";
  // Three sessions behind one 12-capacity bottleneck; the first is a
  // 2-receiver layered session. Efficient vs redundancy 1.5:
  report("  efficient  ", net::singleBottleneckNetwork(3, 1, 12.0, 1.0));
  report("  redundant  ", net::singleBottleneckNetwork(3, 1, 12.0, 1.5));
  std::cout << "  (Lemma 4: the inflated link usage of the layered session "
               "depresses every session's fair rate, including its own.)\n";
  return 0;
}
