// Scenario: capacity-planning what-ifs served by the always-on
// fairshare service.
//
// Network operators often ask "what happens to everyone's fair share if
// ...?". Earlier revisions of this example built immutable what-if
// copies by hand; the serving layer (serve::FairshareService) now owns
// that logic: one warm solver bound to the live network answers the
// same four questions — including the paper's counter-intuitive
// receiver-removal effect (Section 2.5) and the redundancy penalty
// (Lemma 4) — plus live deltas, budget-driven degradation and tail
// metrics.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "net/topologies.hpp"
#include "serve/service.hpp"

namespace {

using namespace mcfair;

void report(const char* label, const net::Network& n,
            const serve::QueryResult& q) {
  std::cout << label << (q.degraded ? " [degraded]" : "") << ": ";
  for (const auto ref : n.allReceivers()) {
    const auto& r = n.session(ref.session).receivers[ref.receiver];
    const std::string name =
        r.name.empty() ? "r" + std::to_string(ref.session + 1) + "," +
                             std::to_string(ref.receiver + 1)
                       : r.name;
    std::cout << name << "=" << q.rates->rate(ref) << "  ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcfair;

  // Base network: the paper's Figure 3(a) before-removal configuration,
  // wrapped in a long-lived service.
  serve::ServiceOptions options;
  options.sampled.sampleFraction = 0.5;
  serve::FairshareService service(net::fig3aNetwork(false), options);
  const double unbudgeted = 0.0;  // <= 0 = no deadline, always exact

  std::cout << "Base network (Figure 3(a)):\n";
  report("  base allocation", service.network(), service.query(unbudgeted));

  std::cout << "\nQ1: a receiver churns away — who wins, who loses?\n";
  {
    const auto q = service.whatIfWithoutReceiver(net::fig3RemovedReceiver());
    const net::Network shrunk =
        service.network().withoutReceiver(net::fig3RemovedReceiver());
    report("  without r3,2", shrunk, q);
  }
  std::cout << "  (r3,1 LOSES bandwidth when its own session shrinks — "
               "the paper's Section 2.5 surprise.)\n";

  std::cout << "\nQ2: we upgrade the contested 4-capacity link to 8.\n";
  report("  with lA upgraded", service.network(),
         service.whatIfCapacity(graph::LinkId{0}, 8.0, unbudgeted));

  std::cout << "\nQ3: session S3 must become single-rate "
               "(application constraint).\n";
  const auto base = fairness::maxMinFairAllocation(service.network());
  const auto single =
      service.whatIfSessionType(2, net::SessionType::kSingleRate);
  report("  S3 single-rate",
         service.network().withSessionType(2, net::SessionType::kSingleRate),
         single);
  const bool degraded = fairness::strictlyMinUnfavorable(
      single.rates->orderedRates(), base.orderedRates(), 1e-9);
  std::cout << "  Lemma 3 in action: the single-rate variant is "
            << (degraded ? "strictly less" : "equally") << " max-min fair.\n";

  std::cout << "\nQ4: a layered session whose receivers share a link runs "
               "uncoordinated (redundancy 1.5) — what does that cost "
               "everyone?\n";
  {
    // Three sessions behind one 12-capacity bottleneck; the first is a
    // 2-receiver layered session. Efficient vs redundancy 1.5, answered
    // by a second service without rebuilding anything per question:
    serve::FairshareService bottleneck(
        net::singleBottleneckNetwork(3, 1, 12.0, 1.0));
    report("  efficient  ", bottleneck.network(),
           bottleneck.query(unbudgeted));
    report("  redundant  ", bottleneck.network(),
           bottleneck.whatIfLinkRate(
               0, std::make_shared<const net::ConstantFactor>(1.5)));
  }
  std::cout << "  (Lemma 4: the inflated link usage of the layered session "
               "depresses every session's fair rate, including its own.)\n";

  std::cout << "\nLive operation: the same service absorbs deltas and "
               "degrades under deadline pressure.\n";
  service.applyDelta(serve::faultDelta(
      net::FaultEvent{0.0, net::FaultKind::kDegrade, graph::LinkId{0}, 0.5}));
  report("  after lA degrades to 50%", service.network(),
         service.query(unbudgeted));
  const auto metrics = service.metrics();
  std::cout << "  served " << metrics.exactAnswers << " exact / "
            << metrics.degradedAnswers << " degraded answers, applied "
            << metrics.appliedDeltas << " delta(s); exact-query p99 "
            << metrics.exactQuery.p99.value() * 1e6 << " us\n";
  return 0;
}
