// Scenario: debugging a layered protocol with event traces.
//
// Attaches trace sinks to a star simulation to (1) print the first few
// join/leave/congestion events of a Coordinated session, (2) summarize
// event counts per protocol, and (3) dump a full CSV trace to a file
// when MCFAIR_TRACE_FILE is set — the workflow a protocol developer
// would use with this library.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "sim/star.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;

  sim::StarConfig config;
  config.receivers = 4;
  config.layers = 5;
  config.sharedLossRate = 0.001;
  config.independentLossRate = 0.02;
  config.totalPackets = 30000;
  config.seed = 7;

  // 1. First events of a Coordinated run, human-readable.
  {
    sim::RecordingTraceSink recorder(/*limit=*/15);
    sim::StarConfig c = config;
    c.protocol = ProtocolKind::kCoordinated;
    c.trace = &recorder;
    sim::runStarSimulation(c);
    std::cout << "First " << recorder.events().size()
              << " protocol events (Coordinated, 4 receivers):\n";
    for (const auto& e : recorder.events()) {
      std::cout << "  t=" << e.time << "  r" << e.receiver << "  "
                << sim::traceKindName(e.kind) << " -> level " << e.level
                << " (packet " << e.packet << ")\n";
    }
  }

  // 2. Event-rate summary per protocol.
  {
    util::Table t({"protocol", "joins", "leaves", "congestion events",
                   "events/1000 packets"});
    t.setPrecision(1);
    for (const auto kind :
         {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
          ProtocolKind::kCoordinated, ProtocolKind::kActiveRouter}) {
      sim::CountingTraceSink counter;
      sim::StarConfig c = config;
      c.protocol = kind;
      c.trace = &counter;
      sim::runStarSimulation(c);
      const double total = static_cast<double>(
          counter.joins() + counter.leaves() + counter.congestions());
      t.addRow({std::string(protocolName(kind)),
                static_cast<double>(counter.joins()),
                static_cast<double>(counter.leaves()),
                static_cast<double>(counter.congestions()),
                total / (static_cast<double>(config.totalPackets) / 1000.0)});
    }
    util::printTitled("Protocol event summary (30k packets)", t);
  }

  // 3. Optional CSV dump for offline analysis.
  if (const char* path = std::getenv("MCFAIR_TRACE_FILE")) {
    std::ofstream file(path);
    if (file) {
      sim::CsvTraceSink csv(file);
      sim::StarConfig c = config;
      c.protocol = ProtocolKind::kCoordinated;
      c.trace = &csv;
      sim::runStarSimulation(c);
      std::cout << "\nFull CSV trace written to " << path << "\n";
    }
  } else {
    std::cout << "\n(Set MCFAIR_TRACE_FILE=/tmp/trace.csv to dump a full "
                 "CSV trace.)\n";
  }
  return 0;
}
