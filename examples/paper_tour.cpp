// A guided tour of the paper's argument, section by section, using the
// library's public API on the paper's own examples. Run it top to
// bottom; each act prints what the paper claims and what the code
// computes.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "fairness/properties.hpp"
#include "fairness/verify.hpp"
#include "layering/fixed_layer.hpp"
#include "layering/quantum.hpp"
#include "markov/protocol_chain.hpp"
#include "net/topologies.hpp"
#include "sim/star.hpp"

namespace {

void act(int number, const char* title) {
  std::cout << "\n--- Act " << number << ": " << title << " ---\n";
}

}  // namespace

int main() {
  using namespace mcfair;
  std::cout << "The Impact of Multicast Layering on Network Fairness "
               "(SIGCOMM '99) — a tour in code\n";

  act(1, "single-rate sessions break fairness (Section 2.3, Fig. 2)");
  {
    const net::Network single = net::fig2Network(false);
    const auto a = fairness::maxMinFairAllocation(single);
    std::cout << "Single-rate S1: every receiver pinned to "
              << a.rate({0, 0}) << " by the slowest branch; the unicast "
              << "flow sharing r1,1's exact path gets " << a.rate({1, 0})
              << ".\nProperties failing: ";
    for (const auto& [name, check] :
         fairness::checkAllProperties(single, a)) {
      if (!check.holds) std::cout << name << "  ";
    }
    std::cout << "\n";
  }

  act(2, "multi-rate (layered) sessions restore all of them (Theorem 1)");
  {
    const net::Network multi = net::fig2Network(true);
    const auto a = fairness::maxMinFairAllocation(multi);
    std::cout << "Multi-rate S1 rates: " << a.rate({0, 0}) << ", "
              << a.rate({0, 1}) << ", " << a.rate({0, 2})
              << "; unicast: " << a.rate({1, 0}) << ".\n";
    bool allHold = true;
    for (const auto& [name, check] :
         fairness::checkAllProperties(multi, a)) {
      allHold = allHold && check.holds;
    }
    std::cout << "All four fairness properties hold: "
              << (allHold ? "yes" : "no")
              << "; certified max-min fair by the Definition-1 verifier: "
              << (fairness::isMaxMinFair(multi, a) ? "yes" : "no") << "\n";
  }

  act(3, "\"more max-min fair\" is a real ordering (Lemma 3/Corollary 1)");
  {
    const auto single =
        fairness::maxMinFairAllocation(net::fig2Network(false))
            .orderedRates();
    const auto multi =
        fairness::maxMinFairAllocation(net::fig2Network(true))
            .orderedRates();
    std::cout << "ordered(single) <_m ordered(multi): "
              << (fairness::strictlyMinUnfavorable(single, multi)
                      ? "yes"
                      : "no")
              << " — replacing the single-rate session strictly improved "
                 "the allocation.\n";
  }

  act(4, "fixed layers break max-min fairness entirely (Section 3)");
  {
    const auto ex = layering::sec3NonexistenceExample(6.0);
    const auto analysis =
        layering::analyzeFixedLayerAllocations(ex.network, ex.schemes);
    std::cout << analysis.feasible.size()
              << " feasible fixed-layer allocations; max-min fair among "
                 "them: "
              << (analysis.maxMinFairIndex ? "exists" : "NONE") << "\n";
    const auto sched = layering::simulatePrefixSchedule({3.0}, 6.0, 60, 500);
    std::cout << "...but timed joins/leaves average "
              << sched.averageRates[0]
              << " (the continuous fair rate 3) with redundancy "
              << sched.redundancy << ".\n";
  }

  act(5, "uncoordinated joins waste bandwidth: redundancy (Definition 3)");
  {
    const std::vector<double> rates(20, 0.1);
    std::cout << "20 receivers each taking 10% of a layer at random: the "
                 "link carries "
              << layering::singleLayerRandomJoinRedundancy(rates, 1.0)
              << "x the efficient rate (Appendix B).\n";
    const net::Network eff = net::singleBottleneckNetwork(10, 2, 100, 1.0);
    const net::Network red = net::singleBottleneckNetwork(10, 2, 100, 4.0);
    std::cout << "On a 10-session bottleneck, redundancy 4 in two "
                 "sessions cuts everyone's fair rate from "
              << fairness::maxMinFairAllocation(eff).rate({0, 0}) << " to "
              << fairness::maxMinFairAllocation(red).rate({0, 0})
              << " (Figure 6 / Lemma 4).\n";
  }

  act(6, "coordination keeps redundancy low (Section 4, Figs. 7-8)");
  {
    markov::ProtocolChainConfig mc;
    mc.layers = 4;
    mc.sharedLoss = 0.0001;
    mc.receiverLoss = {0.04, 0.04};
    mc.protocol = sim::ProtocolKind::kUncoordinated;
    const double unco = markov::analyzeProtocolChain(mc).redundancy;
    mc.protocol = sim::ProtocolKind::kCoordinated;
    const double coord = markov::analyzeProtocolChain(mc).redundancy;
    std::cout << "Exact 2-receiver Markov analysis: Uncoordinated "
              << unco << " vs Coordinated " << coord << ".\n";

    sim::StarConfig sc;
    sc.receivers = 100;
    sc.layers = 8;
    sc.sharedLossRate = 0.0001;
    sc.independentLossRate = 0.04;
    sc.totalPackets = 100000;
    sc.protocol = sim::ProtocolKind::kUncoordinated;
    const double simU = sim::estimateRedundancy(sc, 5).mean;
    sc.protocol = sim::ProtocolKind::kCoordinated;
    const double simC = sim::estimateRedundancy(sc, 5).mean;
    std::cout << "100-receiver simulation (Fig. 8a point): Uncoordinated "
              << simU << " vs Coordinated " << simC
              << " — sender coordination keeps layered multicast's "
                 "bandwidth waste small enough\nthat its fairness "
                 "benefits survive in practice, the paper's bottom "
                 "line.\n";
  }
  return 0;
}
