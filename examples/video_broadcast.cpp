// Scenario: a live video broadcast over an ISP backbone.
//
// A content source multicasts a layered video stream to receivers spread
// across a two-level ISP topology with heterogeneous access links, while
// unicast web sessions share the backbone. The example contrasts
// single-rate delivery (everyone pinned to the worst access link) with
// layered multi-rate delivery, quantifies how much each receiver gains,
// and verifies the Theorem 1 / Theorem 2 fairness properties.
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "fairness/properties.hpp"
#include "graph/graph.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using graph::NodeId;

  // Backbone: source pop -> core -> two regional pops -> access nodes.
  graph::Graph g;
  const NodeId source = g.addNode("source-pop");
  const NodeId core = g.addNode("core");
  const NodeId west = g.addNode("west-pop");
  const NodeId east = g.addNode("east-pop");
  const NodeId dsl = g.addNode("dsl-home");
  const NodeId cable = g.addNode("cable-home");
  const NodeId office = g.addNode("office");
  const NodeId campus = g.addNode("campus");
  g.addLink(source, core, 100.0);
  g.addLink(core, west, 40.0);
  g.addLink(core, east, 60.0);
  g.addLink(west, dsl, 2.0);     // slow DSL access
  g.addLink(west, cable, 12.0);  // cable access
  g.addLink(east, office, 20.0);
  g.addLink(east, campus, 45.0);

  auto broadcastSpec = [&](net::SessionType type) {
    net::RoutedSessionSpec video;
    video.sender = source;
    video.receivers = {dsl, cable, office, campus};
    video.type = type;
    video.name = "video";
    return video;
  };
  // Unicast cross traffic: two web transfers into each region.
  std::vector<net::RoutedSessionSpec> specs;
  for (const auto& [dst, name] :
       {std::pair{cable, "web-west"}, std::pair{campus, "web-east"}}) {
    net::RoutedSessionSpec web;
    web.sender = core;
    web.receivers = {dst};
    web.name = name;
    specs.push_back(web);
  }

  util::Table t({"receiver", "single-rate", "multi-rate (layered)",
                 "gain"});
  t.setPrecision(2);

  auto specsSingle = specs;
  specsSingle.insert(specsSingle.begin(),
                     broadcastSpec(net::SessionType::kSingleRate));
  auto specsMulti = specs;
  specsMulti.insert(specsMulti.begin(),
                    broadcastSpec(net::SessionType::kMultiRate));

  const net::Network nSingle = net::fromGraph(g, specsSingle);
  const net::Network nMulti = net::fromGraph(g, specsMulti);
  const auto aSingle = fairness::maxMinFairAllocation(nSingle);
  const auto aMulti = fairness::maxMinFairAllocation(nMulti);

  const char* names[] = {"dsl-home", "cable-home", "office", "campus"};
  for (std::size_t k = 0; k < 4; ++k) {
    const double s = aSingle.rate({0, k});
    const double m = aMulti.rate({0, k});
    t.addRow({std::string(names[k]), s, m,
              std::string(m > s + 1e-9 ? "x" + std::to_string(m / s)
                                       : "-")});
  }
  util::printTitled("Video receiver rates: single-rate vs layered", t);

  // The DSL viewer pins the whole single-rate session to ~2 Mbps; with
  // layering the campus viewer streams at its own bottleneck instead.
  std::cout << "\nOrdered-rate comparison (Corollary 1): layered is ";
  const bool moreFair = fairness::strictlyMinUnfavorable(
      aSingle.orderedRates(), aMulti.orderedRates(), 1e-6);
  std::cout << (moreFair ? "strictly more max-min fair" : "not worse")
            << " than single-rate.\n";

  std::cout << "\nFairness properties under layered delivery:\n";
  for (const auto& [name, check] :
       fairness::checkAllProperties(nMulti, aMulti)) {
    std::cout << "  " << name << ": " << (check.holds ? "holds" : "FAILS")
              << "\n";
  }
  return 0;
}
