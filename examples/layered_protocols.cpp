// Scenario: choosing a join-coordination strategy for a layered
// congestion-control protocol.
//
// Runs the three Section 4 protocols (Uncoordinated / Deterministic /
// Coordinated) on the Figure 7(b) star with 50 receivers, reports their
// shared-link redundancy and mean subscription level, cross-checks two
// receivers against the exact Markov analysis, and translates the
// measured redundancy into the fair-rate penalty it would impose on a
// shared bottleneck (the Section 3 <-> Section 4 connection).
#include <iostream>

#include "fairness/maxmin.hpp"
#include "markov/protocol_chain.hpp"
#include "net/topologies.hpp"
#include "sim/star.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcfair;
  using sim::ProtocolKind;

  const double sharedLoss = 0.0001;
  const double fanoutLoss = 0.03;

  util::Table t({"protocol", "redundancy", "ci95", "mean level",
                 "joins/leave ratio"});
  t.setPrecision(3);
  double coordinatedRedundancy = 1.0;
  double uncoordinatedRedundancy = 1.0;
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
        ProtocolKind::kCoordinated}) {
    sim::StarConfig c;
    c.receivers = 50;
    c.layers = 8;
    c.protocol = kind;
    c.sharedLossRate = sharedLoss;
    c.independentLossRate = fanoutLoss;
    c.totalPackets = 100000;
    const auto est = sim::estimateRedundancy(c, 10);
    const auto one = sim::runStarSimulation(c);
    t.addRow({std::string(protocolName(kind)), est.mean, est.ci95,
              one.meanLevel,
              one.totalLeaves
                  ? static_cast<double>(one.totalJoins) /
                        static_cast<double>(one.totalLeaves)
                  : 0.0});
    if (kind == ProtocolKind::kCoordinated) {
      coordinatedRedundancy = est.mean;
    }
    if (kind == ProtocolKind::kUncoordinated) {
      uncoordinatedRedundancy = est.mean;
    }
  }
  util::printTitled(
      "Shared-link redundancy, 50 receivers, 8 layers, fanout loss 3%", t);

  // Exact 2-receiver analysis for the same operating point.
  std::cout << "\nExact Markov analysis (2 receivers, 4 layers):\n";
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kCoordinated}) {
    markov::ProtocolChainConfig mc;
    mc.layers = 4;
    mc.protocol = kind;
    mc.sharedLoss = sharedLoss;
    mc.receiverLoss = {fanoutLoss, fanoutLoss};
    const auto a = markov::analyzeProtocolChain(mc);
    std::cout << "  " << protocolName(kind) << ": redundancy "
              << a.redundancy << " over " << a.stateCount << " states\n";
  }

  // What does that redundancy cost in fair rates? Place 5 such sessions
  // among 100 on a shared bottleneck (the paper expects <5% of sessions
  // to be multi-rate) and compare allocations.
  std::cout << "\nFair-rate impact on a 100-session bottleneck with 5 "
               "layered sessions:\n";
  for (const auto& [label, v] :
       {std::pair{"Coordinated", coordinatedRedundancy},
        std::pair{"Uncoordinated", uncoordinatedRedundancy}}) {
    const net::Network n = net::singleBottleneckNetwork(100, 5, 1000.0, v);
    const auto a = fairness::maxMinFairAllocation(n);
    std::cout << "  redundancy " << v << " (" << label
              << "): every receiver gets " << a.rate({0, 0})
              << " (efficient ideal: 10)\n";
  }
  std::cout << "\nConclusion (paper Section 4): sender-coordinated joins "
               "keep redundancy low enough that layered multicast achieves "
               "its fairness benefits at negligible cost to other "
               "sessions.\n";
  return 0;
}
