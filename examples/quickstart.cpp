// Quickstart: build a small multicast network, compute its max-min fair
// allocation, and check the fairness properties.
//
//   $ ./example_quickstart
//
// Walks through the library's three core steps:
//   1. describe links and sessions (net::Network),
//   2. solve for the max-min fair allocation (fairness::solveMaxMinFair),
//   3. interrogate the result (rates, link usage, fairness properties).
#include <iostream>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/network.hpp"

int main() {
  using namespace mcfair;

  // 1. A tiny network: one bottleneck shared by a 2-receiver layered
  //    (multi-rate) video session and a unicast file transfer, plus a
  //    slow tail link in front of one of the video receivers.
  net::Network network;
  const auto backbone = network.addLink(/*capacity=*/10.0);
  const auto fastTail = network.addLink(8.0);
  const auto slowTail = network.addLink(1.0);

  net::Session video;
  video.name = "video";
  video.type = net::SessionType::kMultiRate;  // layered delivery
  video.receivers = {net::makeReceiver({backbone, fastTail}, "video/fast"),
                     net::makeReceiver({backbone, slowTail}, "video/slow")};
  network.addSession(std::move(video));
  network.addSession(
      net::makeUnicastSession({backbone}, net::kUnlimitedRate, "ftp"));

  // 2. Solve.
  const auto result = fairness::solveMaxMinFair(network);

  // 3. Inspect.
  std::cout << "Max-min fair receiver rates:\n";
  for (const auto ref : network.allReceivers()) {
    const auto& r = network.session(ref.session).receivers[ref.receiver];
    std::cout << "  " << (r.name.empty() ? "receiver" : r.name) << " = "
              << result.allocation.rate(ref) << "\n";
  }
  // Because the video session is multi-rate, the slow receiver's 1.0
  // tail does not drag the fast receiver down: fast and ftp split the
  // backbone equally at 5 each.
  std::cout << "\nBackbone utilization: " << result.usage.linkRate[0]
            << " / " << network.capacity(backbone) << "\n";

  std::cout << "\nFairness properties of the allocation:\n";
  for (const auto& [name, check] :
       fairness::checkAllProperties(network, result.allocation)) {
    std::cout << "  " << name << ": " << (check.holds ? "holds" : "FAILS")
              << "\n";
  }

  // What if the video session had to be single-rate? Everyone in it gets
  // the slow receiver's rate, and the spare bandwidth goes to ftp.
  const auto singleRate = fairness::solveMaxMinFair(
      network.withSessionType(0, net::SessionType::kSingleRate));
  std::cout << "\nIf the video session were single-rate:\n"
            << "  video/fast drops to "
            << singleRate.allocation.rate({0, 0}) << ", ftp rises to "
            << singleRate.allocation.rate({1, 0}) << "\n";
  return 0;
}
