// fairshare — a command-line max-min fairness calculator.
//
// Reads a network description (see src/net/netfile.hpp for the format)
// from a file or stdin, computes the max-min fair allocation, and prints
// receiver rates, link usage and the fairness-property verdicts.
//
//   $ ./example_fairshare_tool network.txt
//   $ cat network.txt | ./example_fairshare_tool -
//   $ ./example_fairshare_tool --demo          # built-in sample
//   $ ./example_fairshare_tool --csv network.txt
#include <fstream>
#include <iostream>
#include <sstream>

#include "fairness/maxmin.hpp"
#include "fairness/report.hpp"
#include "net/netfile.hpp"

namespace {

constexpr const char* kDemo = R"(# fairshare demo: one bottleneck, three sessions
link backbone 12
link dsl 1
link lan 100
session video multi sigma=8
receiver video home backbone,dsl
receiver video office backbone,lan
session audio single
receiver audio a1 backbone
receiver audio a2 backbone,lan
session web multi
receiver web w1 backbone weight=2
)";

int usage() {
  std::cerr << "usage: fairshare_tool [--csv] [--no-properties] "
               "<network-file | - | --demo>\n"
            << "The network file format is documented in "
               "src/net/netfile.hpp.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcfair;
  fairness::ReportOptions options;
  std::string source;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--no-properties") {
      options.skipProperties = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!source.empty()) {
      return usage();
    } else {
      source = arg;
    }
  }
  if (source.empty()) return usage();

  try {
    net::Network network;
    if (source == "--demo") {
      std::cout << "Using the built-in demo network:\n" << kDemo;
      network = net::parseNetworkString(kDemo);
    } else if (source == "-") {
      network = net::parseNetworkFile(std::cin);
    } else {
      std::ifstream file(source);
      if (!file) {
        std::cerr << "fairshare: cannot open '" << source << "'\n";
        return 1;
      }
      network = net::parseNetworkFile(file);
    }
    const auto allocation = fairness::maxMinFairAllocation(network);
    fairness::printAllocationReport(std::cout, "max-min fair allocation",
                                    network, allocation, options);
  } catch (const net::NetfileError& e) {
    std::cerr << "fairshare: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fairshare: error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
