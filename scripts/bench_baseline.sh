#!/usr/bin/env bash
# Captures the benchmark baselines (google-benchmark JSON format) at the
# repository root:
#   BENCH_maxmin.json — the max-min solver: incremental engine vs the
#     retained reference solver, plus the serial-vs-parallel sweeps.
#   BENCH_sim.json — the closed-loop simulator: event-driven session
#     engine vs the retained linear-scan driver (packet-merge scaling).
# Each run records engine and reference side by side, so the perf
# trajectory across PRs is a diff of these files.
#
# Usage: scripts/bench_baseline.sh [build-dir] [min-time-seconds]
#                                  [out-file] [sim-out-file]
#
# The out-file arguments redirect the JSON (defaults: BENCH_maxmin.json /
# BENCH_sim.json at the repo root) — scripts/check_bench.py uses them to
# capture fresh runs without clobbering the committed baselines.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
min_time="${2:-0.2}"
out_file="${3:-$repo_root/BENCH_maxmin.json}"
sim_out_file="${4:-$repo_root/BENCH_sim.json}"

if [ ! -x "$build_dir/bench_perf_maxmin" ] || \
   [ ! -x "$build_dir/bench_perf_sim" ]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DMCFAIR_BENCH=ON >/dev/null
  cmake --build "$build_dir" --target bench_perf_maxmin bench_perf_sim \
        -j >/dev/null
fi

"$build_dir/bench_perf_maxmin" \
  --benchmark_filter='BM_SingleBottleneckScaling|BM_ClosedLoopChurn|BM_BoundSolverResolve|BM_Parallel|BM_AccumScan|BM_SampledSolve|BM_SweepFleet|BM_Service|BM_SnapshotReplay' \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json >/dev/null

echo "wrote $out_file" >&2

"$build_dir/bench_perf_sim" \
  --benchmark_filter='BM_ClosedLoopMerge|BM_ClosedLoopFluid|BM_RoutePlan|BM_ScenarioMesh|BM_FaultChurn|BM_FluidHandback|BM_ClosedLoopParallel|BM_ClosedLoopSpeculative|BM_Partition' \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json \
  --benchmark_out="$sim_out_file" \
  --benchmark_out_format=json >/dev/null

echo "wrote $sim_out_file" >&2

python3 - "$out_file" "$sim_out_file" <<'EOF'
import json, sys

def load(path):
    """name -> (real_time, time_unit), aggregates skipped (the same
    shape scripts/check_bench.py parses)."""
    data = json.load(open(path))
    return {b["name"]: (b["real_time"], b.get("time_unit", "ns"))
            for b in data["benchmarks"]
            if b.get("run_type") != "aggregate" and "real_time" in b}

times = load(sys.argv[1])
print(f"{'benchmark':<44}{'engine':>12}{'reference':>12}{'speedup':>9}")
for name, (t, unit) in sorted(times.items()):
    if "Reference" in name or "/" not in name:
        continue
    refname = name.replace("Scaling/", "ScalingReference/") \
                  .replace("Churn/", "ChurnReference/")
    ref = times.get(refname)
    if refname == name or ref is None:
        continue
    print(f"{name:<44}{t:>10.0f}{unit}{ref[0]:>10.0f}{ref[1]}"
          f"{ref[0] / t:>8.1f}x")
print()
print(f"{'parallel benchmark':<44}{'threads':>12}{'serial':>12}{'speedup':>9}")
for name, (t, unit) in sorted(times.items()):
    if "BM_Parallel" not in name:
        continue
    base, _, threads = name.rpartition("/")
    if threads == "0":
        continue
    serial = times.get(f"{base}/0")
    if serial is None:
        continue
    print(f"{name:<44}{t:>10.0f}{unit}{serial[0]:>10.0f}{serial[1]}"
          f"{serial[0] / t:>8.2f}x")

print()
print(f"{'sampled/sweep benchmark':<44}{'time':>12}")
for name, (t, unit) in sorted(times.items()):
    if name.startswith(("BM_SampledSolve/", "BM_SweepFleet/")):
        print(f"{name:<44}{t:>10.2f}{unit}")

print()
print(f"{'service benchmark':<44}{'time':>12}{'p50':>10}{'p99':>10}"
      f"{'p999':>10}")
for b in sorted(json.load(open(sys.argv[1]))["benchmarks"],
                key=lambda b: b["name"]):
    name = b["name"]
    if (b.get("run_type") == "aggregate" or
            not name.startswith(("BM_ServiceQuery/", "BM_SnapshotReplay/"))):
        continue
    t, unit = b["real_time"], b.get("time_unit", "ns")
    # BM_ServiceQuery rows carry the service's own P2 tail histogram
    # (microseconds) as counters; BM_SnapshotReplay has none.
    if b.get("p50_us") is not None:
        tail = (f"{b['p50_us']:>8.2f}us{b['p99_us']:>8.2f}us"
                f"{b['p999_us']:>8.2f}us")
    else:
        tail = f"{'-':>10}{'-':>10}{'-':>10}"
    print(f"{name:<44}{t:>10.2f}{unit}{tail}")

sim = load(sys.argv[2])
print()
print(f"{'merge benchmark':<44}{'event':>12}{'reference':>12}{'speedup':>9}")
for name, (t, unit) in sorted(sim.items()):
    if not name.startswith("BM_ClosedLoopMergeEvent/"):
        continue
    ref = sim.get(name.replace("MergeEvent/", "MergeReference/"))
    if ref is None:
        # Event-only rows (e.g. N=100k, where the linear scan is too
        # slow to bench) still show up in the summary.
        print(f"{name:<44}{t:>10.2f}{unit}{'-':>12}{'':>9}")
        continue
    print(f"{name:<44}{t:>10.2f}{unit}{ref[0]:>10.2f}{ref[1]}"
          f"{ref[0] / t:>8.1f}x")

print()
print(f"{'fluid benchmark':<44}{'fluid':>12}{'per-packet':>12}{'speedup':>9}")
for name, (t, unit) in sorted(sim.items()):
    if not name.startswith("BM_ClosedLoopFluid/"):
        continue
    ev = sim.get(name.replace("Fluid/", "FluidEventBaseline/"))
    if ev is None:
        # Fluid-only rows (N=1M: the per-packet engine would take
        # minutes) still show up in the summary.
        print(f"{name:<44}{t:>10.2f}{unit}{'-':>12}{'':>9}")
        continue
    print(f"{name:<44}{t:>10.2f}{unit}{ev[0]:>10.2f}{ev[1]}"
          f"{ev[0] / t:>8.1f}x")

print()
print(f"{'parallel engine benchmark':<44}{'threads':>12}{'serial':>12}{'speedup':>9}")
for name, (t, unit) in sorted(sim.items()):
    # Note: the solver summary's "BM_Parallel" filter above reads the
    # maxmin file, so BM_ClosedLoopParallel rows cannot leak into it.
    if not name.startswith("BM_ClosedLoopParallel/"):
        continue
    base, _, threads = name.rpartition("/")
    if threads == "0":
        continue
    serial = sim.get(f"{base}/0")
    if serial is None:
        continue
    print(f"{name:<44}{t:>10.2f}{unit}{serial[0]:>10.2f}{serial[1]}"
          f"{serial[0] / t:>8.2f}x")
for name, (t, unit) in sorted(sim.items()):
    if name.startswith("BM_Partition/"):
        print(f"{name:<44}{t:>10.2f}{unit}{'-':>12}{'':>9}")

print()
print(f"{'speculative engine benchmark':<44}{'workers':>12}{'serial':>12}"
      f"{'speedup':>9}")
for name, (t, unit) in sorted(sim.items()):
    if not name.startswith("BM_ClosedLoopSpeculative/"):
        continue
    base, _, threads = name.rpartition("/")
    if threads == "0":
        continue
    serial = sim.get(f"{base}/0")
    if serial is None:
        continue
    print(f"{name:<44}{t:>10.2f}{unit}{serial[0]:>10.2f}{serial[1]}"
          f"{serial[0] / t:>8.2f}x")

print()
print(f"{'mesh benchmark':<44}{'mesh':>12}{'tree':>12}{'ratio':>9}")
for name, (t, unit) in sorted(sim.items()):
    if not name.startswith("BM_ScenarioMesh/"):
        continue
    tree = sim.get(name.replace("Mesh/", "MeshTreeBaseline/"))
    if tree is None:
        print(f"{name:<44}{t:>10.2f}{unit}{'-':>12}{'':>9}")
        continue
    # ratio ~1 = mesh scenarios build in the tree ballpark.
    print(f"{name:<44}{t:>10.2f}{unit}{tree[0]:>10.2f}{tree[1]}"
          f"{t / tree[0]:>8.2f}x")
for name, (t, unit) in sorted(sim.items()):
    if name.startswith("BM_RoutePlan/"):
        print(f"{name:<44}{t:>10.2f}{unit}{'-':>12}{'':>9}")

print()
print(f"{'fault benchmark':<44}{'time':>12}")
for name, (t, unit) in sorted(sim.items()):
    if name.startswith(("BM_FaultChurn/", "BM_FluidHandback/")):
        print(f"{name:<44}{t:>10.2f}{unit}")
EOF
