#!/usr/bin/env bash
# Captures the max-min solver benchmark baseline into BENCH_maxmin.json
# (google-benchmark JSON format) at the repository root. Each run records
# the incremental engine, the retained reference solver, and the
# serial-vs-parallel sweeps side by side, so the perf trajectory across
# PRs is a diff of this file.
#
# Usage: scripts/bench_baseline.sh [build-dir] [min-time-seconds] [out-file]
#
# The third argument redirects the JSON (default: BENCH_maxmin.json at the
# repo root) — scripts/check_bench.py uses it to capture a fresh run
# without clobbering the committed baseline.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
min_time="${2:-0.2}"
out_file="${3:-$repo_root/BENCH_maxmin.json}"

if [ ! -x "$build_dir/bench_perf_maxmin" ]; then
  echo "building benchmarks in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DMCFAIR_BENCH=ON >/dev/null
  cmake --build "$build_dir" --target bench_perf_maxmin -j >/dev/null
fi

"$build_dir/bench_perf_maxmin" \
  --benchmark_filter='BM_SingleBottleneckScaling|BM_ClosedLoopChurn|BM_BoundSolverResolve|BM_Parallel' \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json >/dev/null

echo "wrote $out_file" >&2

python3 - "$out_file" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
times = {b["name"]: b["real_time"] for b in data["benchmarks"]
         if b.get("run_type") != "aggregate" and "real_time" in b}
print(f"{'benchmark':<44}{'engine':>12}{'reference':>12}{'speedup':>9}")
for name, t in sorted(times.items()):
    if "Reference" in name or "/" not in name:
        continue
    refname = name.replace("Scaling/", "ScalingReference/") \
                  .replace("Churn/", "ChurnReference/")
    ref = times.get(refname)
    if refname == name or ref is None:
        continue
    print(f"{name:<44}{t:>10.0f}ns{ref:>10.0f}ns{ref / t:>8.1f}x")
print()
print(f"{'parallel benchmark':<44}{'threads':>12}{'serial':>12}{'speedup':>9}")
for name, t in sorted(times.items()):
    if "BM_Parallel" not in name:
        continue
    base, _, threads = name.rpartition("/")
    if threads == "0":
        continue
    serial = times.get(f"{base}/0")
    if serial is None:
        continue
    print(f"{name:<44}{t:>10.0f}ns{serial:>10.0f}ns{serial / t:>8.2f}x")
EOF
