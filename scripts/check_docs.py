#!/usr/bin/env python3
"""Documentation gate: broken relative links and rotten code snippets.

Scans the repo's user-facing markdown (README.md, PAPER.md, docs/*.md)
and fails when

  * a relative markdown link points at a file or directory that does not
    exist (http(s)/mailto/anchor-only links are ignored; a trailing
    #anchor is stripped before the check), or
  * a fenced ```cpp code block does not compile against the library
    headers, or
  * a public knob of the user-facing option structs (MaxMinOptions,
    SampledOptions, ClosedLoopConfig, ScenarioSpec, SweepConfig,
    ServiceOptions) is not mentioned anywhere in README.md — every
    tunable must be documented by its greppable field name.

Snippet convention: a ```cpp block is either a statement sequence (it is
wrapped in a function body under a standard prelude of library includes
plus `using namespace mcfair;`) or, when it contains an #include line or
`int main`, a top-level translation unit emitted verbatim after the
prelude includes. Blocks that are not meant to compile must use a
different fence language (```text, ```bash, or plain ```).

Usage:
    scripts/check_docs.py                  # link check + extraction only
    scripts/check_docs.py --compile        # also compile each snippet
    scripts/check_docs.py --compile --keep build-docs

Exit status: 0 = clean, 1 = broken links or failed snippets,
2 = usage/environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = ["README.md", "PAPER.md", "PAPERS.md", "ROADMAP.md",
             "CHANGES.md"]
DOC_DIRS = ["docs"]

# Library headers every snippet may rely on (include guards make
# duplicates with a snippet's own #include lines harmless).
PRELUDE = """\
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "fairness/report.hpp"
#include "fairness/sampled.hpp"
#include "net/topologies.hpp"
#include "serve/service.hpp"
#include "sim/closed_loop.hpp"
#include "sim/scenario.hpp"
#include "sim/star.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

using namespace mcfair;
"""

# (header, struct) pairs whose public data members are user-facing knobs;
# every member name must appear verbatim in README.md.
KNOB_STRUCTS = [
    ("src/fairness/maxmin.hpp", "MaxMinOptions"),
    ("src/fairness/sampled.hpp", "SampledOptions"),
    ("src/sim/closed_loop.hpp", "ClosedLoopConfig"),
    ("src/sim/scenario.hpp", "ScenarioSpec"),
    ("src/sim/sweep.hpp", "SweepConfig"),
    ("src/serve/service.hpp", "ServiceOptions"),
]

# A data-member declaration with the default initializer already cut
# off: type tokens then one identifier. No '(' — that excludes methods.
MEMBER_RE = re.compile(
    r"^\s*(?!using\b|static\b|typedef\b|return\b|friend\b)"
    r"[A-Za-z_][\w:<>,.\s*&]*[\s&*>]"
    r"([A-Za-z_]\w*)\s*$")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def docFiles():
    files = [os.path.join(REPO_ROOT, f) for f in DOC_FILES]
    for d in DOC_DIRS:
        root = os.path.join(REPO_ROOT, d)
        if os.path.isdir(root):
            for name in sorted(os.listdir(root)):
                if name.endswith(".md"):
                    files.append(os.path.join(root, name))
    return [f for f in files if os.path.isfile(f)]


def checkLinks(path):
    """Returns a list of (line, target) broken relative links."""
    broken = []
    base = os.path.dirname(path)
    inFence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line.strip()):
                inFence = not inFence
                continue
            if inFence:
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                if target.startswith("#"):  # intra-document anchor
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if not os.path.exists(os.path.join(base, rel)):
                    broken.append((lineno, target))
    return broken


def extractSnippets(path):
    """Returns a list of (startLine, code) for ```cpp fences."""
    snippets = []
    lines = open(path, encoding="utf-8").read().splitlines()
    i = 0
    while i < len(lines):
        m = FENCE_RE.match(lines[i].strip())
        if m and m.group(1) == "cpp":
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            snippets.append((start, "\n".join(body)))
        i += 1
    return snippets


def stripTemplateArgs(decl):
    """Removes <...> spans (depth-counted, so nesting works) from a
    declaration. Template arguments may legally contain '(' — e.g.
    std::function<R(Arg)> — which would otherwise be mistaken for a
    method's parameter list."""
    out = []
    depth = 0
    for ch in decl:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def structMembers(headerPath, structName):
    """Public data-member names of `struct structName` in headerPath.

    Tracks brace depth so nested enums/structs and method bodies do not
    contribute members; only declarations at the struct's own depth
    count."""
    text = open(headerPath, encoding="utf-8").read()
    m = re.search(r"^struct\s+" + re.escape(structName) + r"\s*\{",
                  text, re.M)
    if m is None:
        return None
    members = []
    depth = 1
    for line in text[m.end():].splitlines():
        stripped = line.split("//", 1)[0]
        if depth == 1 and stripped.rstrip().endswith(";"):
            # Cut the default initializer (`= ...;` or `{...};`) so
            # defaults containing parens/braces don't hide the member,
            # then the trailing ';' an initializer-less member keeps,
            # then template arguments (whose '(' is not a method's).
            decl = re.split(r"[={]", stripped, 1)[0]
            decl = stripTemplateArgs(decl.rstrip().rstrip(";"))
            mm = MEMBER_RE.match(decl)
            if mm and "(" not in decl:
                members.append(mm.group(1))
        depth += stripped.count("{") - stripped.count("}")
        if depth <= 0:
            break
    return members


def checkKnobDocs():
    """Every public knob of the option structs must appear in README.md.

    Returns a list of 'Struct::member (header)' strings for the missing
    ones."""
    readme = open(os.path.join(REPO_ROOT, "README.md"),
                  encoding="utf-8").read()
    missing = []
    for header, struct in KNOB_STRUCTS:
        path = os.path.join(REPO_ROOT, header)
        members = structMembers(path, struct)
        if members is None:
            missing.append(f"{struct} (struct not found in {header})")
            continue
        if not members:
            missing.append(f"{struct} (no members parsed from {header})")
            continue
        for name in members:
            if not re.search(r"\b" + re.escape(name) + r"\b", readme):
                missing.append(f"{struct}::{name} ({header})")
    return missing


def emitSnippet(code, sourceLabel, outPath):
    topLevel = re.search(r"^\s*#include|int main\s*\(", code, re.M)
    with open(outPath, "w", encoding="utf-8") as fh:
        fh.write(f"// Extracted from {sourceLabel} by check_docs.py\n")
        fh.write(PRELUDE)
        if topLevel:
            fh.write(code + "\n")
        else:
            fh.write("void docSnippet() {\n")
            fh.write(code + "\n")
            fh.write("}\n")


def compileSnippet(cxx, path):
    cmd = [cxx, "-std=c++20", "-fsyntax-only",
           "-I", os.path.join(REPO_ROOT, "src"), path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode == 0, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile", action="store_true",
                        help="compile extracted ```cpp snippets "
                             "($CXX, default g++, -fsyntax-only)")
    parser.add_argument("--keep", metavar="DIR",
                        help="write extracted snippets to DIR "
                             "(default: a temp dir, removed afterwards)")
    args = parser.parse_args()

    outDir = args.keep or tempfile.mkdtemp(prefix="mcfair-docs-")
    os.makedirs(outDir, exist_ok=True)

    failures = 0
    snippetCount = 0
    cxx = os.environ.get("CXX", "g++")
    if args.compile and shutil.which(cxx) is None:
        print(f"check_docs: compiler '{cxx}' not found", file=sys.stderr)
        return 2

    for path in docFiles():
        rel = os.path.relpath(path, REPO_ROOT)
        for lineno, target in checkLinks(path):
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
        for start, code in extractSnippets(path):
            snippetCount += 1
            label = f"{rel}:{start}"
            stem = re.sub(r"[^A-Za-z0-9]+", "_", f"{rel}_{start}")
            out = os.path.join(outDir, f"snippet_{stem}.cpp")
            emitSnippet(code, label, out)
            if args.compile:
                ok, err = compileSnippet(cxx, out)
                if not ok:
                    print(f"{label}: snippet fails to compile\n{err}")
                    failures += 1

    knobsMissing = checkKnobDocs()
    for item in knobsMissing:
        print(f"README.md: undocumented knob {item}")
    failures += len(knobsMissing)
    knobsChecked = sum(
        len(structMembers(os.path.join(REPO_ROOT, h), s) or [])
        for h, s in KNOB_STRUCTS)

    mode = "compiled" if args.compile else "extracted"
    print(f"check_docs: {len(docFiles())} files, {snippetCount} cpp "
          f"snippets {mode}, {knobsChecked} knobs checked, "
          f"{failures} failure(s)")
    if not args.keep and outDir.startswith(tempfile.gettempdir()):
        shutil.rmtree(outDir, ignore_errors=True)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
