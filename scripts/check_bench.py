#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against the committed
baseline (BENCH_maxmin.json) with a tolerance band.

Usage:
    scripts/bench_baseline.sh build 0.2 /tmp/fresh.json
    scripts/check_bench.py --fresh /tmp/fresh.json [--baseline BENCH_maxmin.json]
                           [--tolerance 1.6]

A benchmark regresses when its fresh real_time exceeds the baseline
real_time by more than the tolerance factor. A benchmark present in the
baseline but missing from the fresh run also fails (bench rot must not
pass silently). New benchmarks that the baseline does not know yet are
reported but never fail — the baseline is updated by re-running
scripts/bench_baseline.sh and committing the JSON.

--require PREFIX (repeatable) additionally demands that at least one
benchmark with that name prefix exists in BOTH the baseline and the
fresh run. This guards whole families against silent filter drift: a
capture script that stops matching e.g. BM_ClosedLoopFluid* would
otherwise shrink the baseline and the gate alike, and the regression
check would pass green over an empty set.

Micro-benchmark timings are noisy across machines (the committed baseline
was captured on a single-core 2.1 GHz VM), so the default band is wide;
the CI job wiring this script is advisory (non-blocking) and exists to
surface order-of-magnitude regressions, not single-digit percentages.

Exit status: 0 = within band, 1 = regression or missing benchmark,
2 = usage/IO error.
"""

import argparse
import json
import sys


def load_times(path):
    """benchmark name -> (real_time, time_unit), aggregates skipped."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    return {
        b["name"]: (b["real_time"], b.get("time_unit", "ns"))
        for b in data.get("benchmarks", [])
        if b.get("run_type") != "aggregate" and "real_time" in b
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_maxmin.json",
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--fresh", required=True,
                        help="freshly captured JSON to compare")
    parser.add_argument("--tolerance", type=float, default=1.6,
                        help="allowed slowdown factor (default: %(default)s)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a benchmark with this name prefix "
                             "exists in both baseline and fresh run "
                             "(repeatable)")
    args = parser.parse_args()
    if args.tolerance <= 0:
        print("check_bench: --tolerance must be positive", file=sys.stderr)
        return 2

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)
    if not baseline:
        print(f"check_bench: no benchmarks in {args.baseline}",
              file=sys.stderr)
        return 2

    failures = 0
    for prefix in args.require:
        for label, times in (("baseline", baseline), ("fresh", fresh)):
            if not any(name.startswith(prefix) for name in times):
                print(f"check_bench: required family {prefix}* missing "
                      f"from {label} run", file=sys.stderr)
                failures += 1
    print(f"{'benchmark':<48}{'baseline':>12}{'fresh':>12}{'ratio':>8}")
    for name in sorted(baseline):
        base, unit = baseline[name]
        if name not in fresh:
            print(f"{name:<48}{base:>10.0f}{unit}{'MISSING':>12}{'':>8}")
            failures += 1
            continue
        if fresh[name][1] != unit:
            # A ratio across units (ms vs ns) would be off by 1e6 and
            # could mask a real regression as an improvement.
            print(f"{name:<48}{base:>10.0f}{unit}"
                  f"{fresh[name][0]:>10.0f}{fresh[name][1]}"
                  f"{'UNIT MISMATCH':>16}")
            failures += 1
            continue
        ratio = fresh[name][0] / base if base > 0 else float("inf")
        flag = "  REGRESSED" if ratio > args.tolerance else ""
        print(f"{name:<48}{base:>10.0f}{unit}{fresh[name][0]:>10.0f}"
              f"{fresh[name][1]}{ratio:>7.2f}x{flag}")
        if ratio > args.tolerance:
            failures += 1
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<48}{'(new)':>12}{fresh[name][0]:>10.0f}"
              f"{fresh[name][1]}{'':>8}")

    if failures:
        print(f"\ncheck_bench: {failures} benchmark(s) regressed beyond "
              f"{args.tolerance:.2f}x or went missing", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: all {len(baseline)} benchmarks within "
          f"{args.tolerance:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
