// Determinism fuzz for shortestPathWeighted / RoutePlan's weighted
// policy: on graphs deliberately riddled with equal-cost paths (small
// integer weights, parallel links, dense random topologies), the chosen
// path must be invariant across repeated runs and must match the
// documented tie-break — every node on the path takes the lowest-node-id
// optimal predecessor, lowest link id between parallel links.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "graph/route_plan.hpp"
#include "graph/routing.hpp"
#include "util/rng.hpp"

namespace mcfair::graph {
namespace {

// Dense random multigraph with integer weights in {1, 2, 3} — exact in
// double arithmetic, so equal-cost paths are *exactly* equal-cost and
// ties are everywhere.
struct FuzzCase {
  Graph g;
  std::vector<double> weights;
};

FuzzCase makeCase(util::Rng& rng) {
  FuzzCase c;
  const std::size_t n = 6 + rng.below(10);
  c.g.addNodes(n);
  // Spanning chain for connectivity, then a thick layer of random
  // extras including parallel links.
  for (std::uint32_t v = 1; v < n; ++v) {
    c.g.addLink(NodeId{v}, NodeId{static_cast<std::uint32_t>(rng.below(v))},
                1.0);
  }
  const std::size_t extras = 2 * n;
  for (std::size_t e = 0; e < extras; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    c.g.addLink(NodeId{a}, NodeId{b}, 1.0);
  }
  for (std::uint32_t l = 0; l < c.g.linkCount(); ++l) {
    c.weights.push_back(1.0 + static_cast<double>(rng.below(3)));
  }
  return c;
}

// Exact single-source distances by Bellman-Ford — an implementation
// wholly independent of the Dijkstra under test.
std::vector<double> bellmanFord(const Graph& g, NodeId src,
                                const std::vector<double>& w) {
  std::vector<double> dist(g.nodeCount(),
                           std::numeric_limits<double>::infinity());
  dist[src.value] = 0.0;
  for (std::size_t round = 0; round + 1 < g.nodeCount(); ++round) {
    bool changed = false;
    for (std::uint32_t v = 0; v < g.nodeCount(); ++v) {
      for (const Adjacency& adj : g.neighbors(NodeId{v})) {
        const double nd = dist[v] + w[adj.link.value];
        if (nd < dist[adj.neighbor.value]) {
          dist[adj.neighbor.value] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

// Asserts the documented tie-break along a returned path: each step
// (u -> v over link l) must satisfy dist[u] + w[l] == dist[v], and no
// adjacency (u', l') of v on a shortest path may precede (u, l) in
// (node id, link id) order.
void expectLowestIdPredecessors(const Graph& g, const Path& p,
                                const std::vector<double>& dist,
                                const std::vector<double>& w) {
  for (std::size_t step = 0; step < p.links.size(); ++step) {
    const NodeId u = p.nodes[step];
    const NodeId v = p.nodes[step + 1];
    const LinkId l = p.links[step];
    ASSERT_EQ(dist[u.value] + w[l.value], dist[v.value])
        << "path step is not on a shortest path";
    for (const Adjacency& adj : g.neighbors(v)) {
      if (dist[adj.neighbor.value] + w[adj.link.value] != dist[v.value]) {
        continue;
      }
      const bool precedes =
          adj.neighbor.value < u.value ||
          (adj.neighbor.value == u.value && adj.link.value < l.value);
      EXPECT_FALSE(precedes)
          << "node " << v.value << " took predecessor (" << u.value << ", l"
          << l.value << ") but (" << adj.neighbor.value << ", l"
          << adj.link.value << ") is optimal and lower";
    }
  }
}

TEST(RoutingDeterminism, FuzzWeightedShortestPath) {
  util::Rng rng(20260731);
  for (int trial = 0; trial < 60; ++trial) {
    const FuzzCase c = makeCase(rng);
    const auto from =
        NodeId{static_cast<std::uint32_t>(rng.below(c.g.nodeCount()))};
    const auto to =
        NodeId{static_cast<std::uint32_t>(rng.below(c.g.nodeCount()))};
    const auto first = shortestPathWeighted(c.g, from, to, c.weights);
    ASSERT_TRUE(first.has_value()) << "fuzz graphs are connected";
    // Invariant across repeated runs (fresh internal state each time).
    for (int rep = 0; rep < 3; ++rep) {
      const auto again = shortestPathWeighted(c.g, from, to, c.weights);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(first->links, again->links) << "trial " << trial;
      EXPECT_EQ(first->nodes, again->nodes) << "trial " << trial;
    }
    const auto dist = bellmanFord(c.g, from, c.weights);
    expectLowestIdPredecessors(c.g, *first, dist, c.weights);
  }
}

TEST(RoutingDeterminism, PlanPathsAreInvariantAcrossPlans) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const FuzzCase c = makeCase(rng);
    RoutePlan a(c.g, {RoutePolicy::kWeighted, c.weights});
    RoutePlan b(c.g, {RoutePolicy::kWeighted, c.weights});
    for (std::uint32_t src = 0; src < c.g.nodeCount(); ++src) {
      for (std::uint32_t dst = 0; dst < c.g.nodeCount(); ++dst) {
        EXPECT_EQ(a.path(NodeId{src}, NodeId{dst}),
                  b.path(NodeId{src}, NodeId{dst}));
      }
    }
  }
}

TEST(RoutingDeterminism, UnitWeightDijkstraIsHopOptimal) {
  // With unit weights the weighted policy must return hop-minimal paths
  // (the tie-break changes *which* shortest path, never its length).
  util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const FuzzCase c = makeCase(rng);
    const std::vector<double> unit(c.g.linkCount(), 1.0);
    const auto from =
        NodeId{static_cast<std::uint32_t>(rng.below(c.g.nodeCount()))};
    const auto to =
        NodeId{static_cast<std::uint32_t>(rng.below(c.g.nodeCount()))};
    const auto weighted = shortestPathWeighted(c.g, from, to, unit);
    const auto bfs = shortestPath(c.g, from, to);
    ASSERT_TRUE(weighted && bfs);
    EXPECT_EQ(weighted->hopCount(), bfs->hopCount());
  }
}

}  // namespace
}  // namespace mcfair::graph
