// Property-based verification of Lemma 3, Corollary 1, Lemma 4, the
// single-session type-switch monotonicity (Lemma 9 of the TR), and the
// Figure 6 closed form.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using net::Network;
using net::SessionType;

class LemmaSeeds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Network mixed(double singleRateProb = 0.7) const {
    util::Rng rng(GetParam());
    net::RandomNetworkOptions opts;
    opts.singleRateProbability = singleRateProb;
    opts.sessions = 5;
    return net::randomNetwork(rng, opts);
  }
};

TEST_P(LemmaSeeds, Lemma3ReplacingSingleRateIncreasesFairness) {
  // Nbar has a subset of N's multi-rate sessions => Abar <=_m A.
  const Network nbar = mixed();
  Network n = nbar;
  // Promote every single-rate session to multi-rate, one at a time, and
  // check monotonicity at each step.
  auto prev = maxMinFairAllocation(nbar).orderedRates();
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    if (n.session(i).type != SessionType::kSingleRate) continue;
    n = n.withSessionType(i, SessionType::kMultiRate);
    auto cur = maxMinFairAllocation(n).orderedRates();
    EXPECT_TRUE(minUnfavorable(prev, cur, 1e-6))
        << "promoting session " << i << " decreased max-min fairness";
    prev = std::move(cur);
  }
}

TEST_P(LemmaSeeds, Corollary1AllMultiRateIsMostFair) {
  const Network nbar = mixed();
  Network n = nbar;
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withSessionType(i, SessionType::kMultiRate);
  }
  const auto b = maxMinFairAllocation(nbar).orderedRates();
  const auto a = maxMinFairAllocation(n).orderedRates();
  EXPECT_TRUE(minUnfavorable(b, a, 1e-6));
}

TEST_P(LemmaSeeds, Lemma4HigherRedundancyDecreasesFairness) {
  // Same sessions, point-wise larger v_i => allocation is <=_m smaller.
  Network base = mixed(0.0);
  Network low = base;
  Network high = base;
  const auto v1 = std::make_shared<const net::ConstantFactor>(1.3);
  const auto v2 = std::make_shared<const net::ConstantFactor>(2.0);
  for (std::size_t i = 0; i < base.sessionCount(); ++i) {
    low = low.withLinkRateFunction(i, v1);
    high = high.withLinkRateFunction(i, v2);
  }
  const auto aLow = maxMinFairAllocation(low).orderedRates();
  const auto aHigh = maxMinFairAllocation(high).orderedRates();
  EXPECT_TRUE(minUnfavorable(aHigh, aLow, 1e-5));
  // And efficient (v=1) dominates both.
  const auto aBase = maxMinFairAllocation(base).orderedRates();
  EXPECT_TRUE(minUnfavorable(aLow, aBase, 1e-5));
}

TEST_P(LemmaSeeds, SingleSessionSwitchNeverHurtsOwnReceivers) {
  // TR Lemma 9: with all other types fixed, switching one session from
  // single-rate to multi-rate leaves each of ITS receivers no worse off.
  const Network base = mixed();
  for (std::size_t i = 0; i < base.sessionCount(); ++i) {
    if (base.session(i).type != SessionType::kSingleRate) continue;
    if (base.session(i).receivers.size() < 2) continue;
    const Network flipped = base.withSessionType(i, SessionType::kMultiRate);
    const auto before = maxMinFairAllocation(base);
    const auto after = maxMinFairAllocation(flipped);
    for (std::size_t k = 0; k < base.session(i).receivers.size(); ++k) {
      EXPECT_GE(after.rate({i, k}), before.rate({i, k}) - 1e-6)
          << "session " << i << " receiver " << k;
    }
  }
}

struct Fig6Case {
  std::size_t n;
  std::size_t m;
  double v;
};

class Fig6Formula : public ::testing::TestWithParam<Fig6Case> {};

TEST_P(Fig6Formula, SolverMatchesClosedForm) {
  // n sessions behind one bottleneck of capacity c; m multi-rate with
  // redundancy v: every receiver's fair rate is c / ((n-m) + m v).
  const auto [n, m, v] = GetParam();
  const double c = 100.0;
  const Network net = net::singleBottleneckNetwork(n, m, c, v);
  const auto a = maxMinFairAllocation(net);
  const double expected = c / (static_cast<double>(n - m) +
                               static_cast<double>(m) * v);
  for (net::ReceiverRef r : net.allReceivers()) {
    EXPECT_NEAR(a.rate(r), expected, 1e-6 * expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Fig6Formula,
    ::testing::Values(Fig6Case{10, 1, 1.0}, Fig6Case{10, 1, 2.0},
                      Fig6Case{10, 1, 10.0}, Fig6Case{20, 1, 5.0},
                      Fig6Case{20, 2, 3.0}, Fig6Case{10, 10, 2.0},
                      Fig6Case{100, 5, 4.0}, Fig6Case{100, 1, 10.0}));

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaSeeds,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcfair::fairness
