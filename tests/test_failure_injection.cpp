// Failure injection: adversarial user-provided components and extreme
// parameters must produce clean errors (or graceful degradation), never
// crashes, hangs, or silent corruption.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fairness/maxmin.hpp"
#include "markov/chain.hpp"
#include "net/topologies.hpp"
#include "util/error.hpp"

namespace mcfair {
namespace {

using fairness::solveMaxMinFair;
using net::LinkRateFunction;

// v(X) below max(X): violates the model contract (u_{i,j} >= a_{i,k}).
class UnderReportingFn final : public LinkRateFunction {
 public:
  double linkRate(std::span<const double> rates) const override {
    double m = 0.0;
    for (double r : rates) m = std::max(m, r);
    return 0.5 * m;
  }
};

// Non-monotone v(X): feasibility is not a monotone predicate, breaking
// the bisection's assumptions.
class NonMonotoneFn final : public LinkRateFunction {
 public:
  double linkRate(std::span<const double> rates) const override {
    double m = 0.0;
    for (double r : rates) m = std::max(m, r);
    // Oscillates with rate; still >= max so feasibility stays sane.
    return m * (1.5 + 0.5 * std::sin(10.0 * m));
  }
};

// Explodes for any non-trivial rate: every positive level is infeasible.
class ExplodingFn final : public LinkRateFunction {
 public:
  double linkRate(std::span<const double> rates) const override {
    double m = 0.0;
    for (double r : rates) m = std::max(m, r);
    return m > 1e-9 ? 1e18 : m;
  }
};

net::Network bottleneck(net::LinkRateFunctionPtr fn) {
  net::Network n;
  const auto l = n.addLink(10.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  s.linkRateFn = std::move(fn);
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({l}));
  return n;
}

TEST(FailureInjection, UnderReportingFunctionTerminates) {
  // The solver may produce a larger-than-usual allocation (the function
  // claims less usage than the contract allows) but must terminate
  // without throwing or hanging.
  const auto n = bottleneck(std::make_shared<const UnderReportingFn>());
  const auto result = solveMaxMinFair(n);
  EXPECT_LE(result.rounds, n.receiverCount() + 2);
  for (const auto ref : n.allReceivers()) {
    EXPECT_GE(result.allocation.rate(ref), 0.0);
    EXPECT_LE(result.allocation.rate(ref), 20.0 + 1e-6);
  }
}

TEST(FailureInjection, NonMonotoneFunctionTerminates) {
  const auto n = bottleneck(std::make_shared<const NonMonotoneFn>());
  // Either a clean NumericError or a terminating (possibly suboptimal)
  // allocation is acceptable; crashes and hangs are not.
  try {
    const auto result = solveMaxMinFair(n);
    EXPECT_LE(result.rounds, n.receiverCount() + 2);
  } catch (const NumericError&) {
    SUCCEED();
  }
}

TEST(FailureInjection, ExplodingFunctionDegradesGracefully) {
  const auto n = bottleneck(std::make_shared<const ExplodingFn>());
  const auto result = solveMaxMinFair(n);
  // Any positive rate makes the exploding session claim 1e18 on the
  // link, so the link is effectively unusable: the solver must terminate
  // with (near-)zero rates for everyone rather than crash or hang.
  for (const auto ref : n.allReceivers()) {
    EXPECT_LT(result.allocation.rate(ref), 1e-3);
  }
  EXPECT_LE(result.rounds, n.receiverCount() + 2);
}

TEST(FailureInjection, SolverOptionValidation) {
  const net::Network n = net::fig1Network();
  fairness::MaxMinOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(solveMaxMinFair(n, bad), PreconditionError);
}

TEST(FailureInjection, MarkovKernelThatLosesMass) {
  EXPECT_THROW(
      markov::MarkovChain::build(
          0,
          [](markov::MarkovChain::State) {
            return std::vector<std::pair<markov::MarkovChain::State,
                                         double>>{{1, 0.7}};
          }),
      ModelError);
}

TEST(FailureInjection, MarkovKernelWithNegativeProbability) {
  EXPECT_THROW(
      markov::MarkovChain::build(
          0,
          [](markov::MarkovChain::State) {
            return std::vector<std::pair<markov::MarkovChain::State,
                                         double>>{{0, 1.5}, {1, -0.5}};
          }),
      PreconditionError);
}

TEST(FailureInjection, ExtremeCapacityScales) {
  // Very large and very small capacities on one path: the solver's
  // relative tolerances must cope with 12 orders of magnitude.
  net::Network n;
  const auto big = n.addLink(1e9);
  const auto tiny = n.addLink(1e-3);
  n.addSession(net::makeUnicastSession({big, tiny}));
  n.addSession(net::makeUnicastSession({big}));
  const auto result = solveMaxMinFair(n);
  EXPECT_NEAR(result.allocation.rate({0, 0}), 1e-3, 1e-6);
  EXPECT_NEAR(result.allocation.rate({1, 0}), 1e9 - 1e-3, 1.0);
}

TEST(FailureInjection, ManyReceiversSingleLink) {
  // Stress: 2000 unicast sessions on one link; equal split, one round
  // of filling, no quadratic blowup in rounds.
  net::Network n;
  const auto l = n.addLink(2000.0);
  for (int i = 0; i < 2000; ++i) n.addSession(net::makeUnicastSession({l}));
  const auto result = solveMaxMinFair(n);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_NEAR(result.allocation.rate({1234, 0}), 1.0, 1e-9);
}

TEST(FailureInjection, DeepPathNetwork) {
  // A 400-link chain shared by one session; capacities descending so the
  // last link binds.
  net::Network n;
  std::vector<graph::LinkId> path;
  for (int j = 0; j < 400; ++j) {
    path.push_back(n.addLink(1000.0 - j));
  }
  n.addSession(net::makeUnicastSession(path));
  const auto a = fairness::maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 601.0, 1e-6);
}

}  // namespace
}  // namespace mcfair
