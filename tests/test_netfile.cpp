// Tests for the network description parser.
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "net/netfile.hpp"

namespace mcfair::net {
namespace {

TEST(Netfile, ParsesMinimalNetwork) {
  const Network n = parseNetworkString(R"(
link a 5
session s multi
receiver s r1 a
)");
  EXPECT_EQ(n.linkCount(), 1u);
  EXPECT_EQ(n.sessionCount(), 1u);
  EXPECT_DOUBLE_EQ(n.capacity(graph::LinkId{0}), 5.0);
  EXPECT_EQ(n.session(0).name, "s");
  EXPECT_EQ(n.session(0).receivers[0].name, "r1");
}

TEST(Netfile, CommentsAndBlankLines) {
  const Network n = parseNetworkString(R"(
# a comment
link a 5   # trailing comment

session s multi
receiver s r1 a
)");
  EXPECT_EQ(n.linkCount(), 1u);
}

TEST(Netfile, MultiLinkPathsAndOptions) {
  const Network n = parseNetworkString(R"(
link a 5
link b 3
session video multi sigma=4 redundancy=1.5
receiver video r1 a,b weight=2
receiver video r2 b
session bulk single
receiver bulk r1 a
receiver bulk r2 b
)");
  EXPECT_EQ(n.session(0).type, SessionType::kMultiRate);
  EXPECT_DOUBLE_EQ(n.session(0).maxRate, 4.0);
  EXPECT_DOUBLE_EQ(n.session(0).receivers[0].weight, 2.0);
  EXPECT_EQ(n.session(0).receivers[0].dataPath.size(), 2u);
  const auto* cf =
      dynamic_cast<const ConstantFactor*>(n.session(0).linkRateFn.get());
  ASSERT_NE(cf, nullptr);
  EXPECT_DOUBLE_EQ(cf->factor(), 1.5);
  EXPECT_EQ(n.session(1).type, SessionType::kSingleRate);
}

TEST(Netfile, SolvableEndToEnd) {
  const Network n = parseNetworkString(R"(
link shared 9
session a multi
receiver a r1 shared
session b multi
receiver b r1 shared weight=2
)");
  const auto alloc = fairness::maxMinFairAllocation(n);
  EXPECT_NEAR(alloc.rate({0, 0}), 3.0, 1e-9);
  EXPECT_NEAR(alloc.rate({1, 0}), 6.0, 1e-9);
}

TEST(Netfile, ErrorsCarryLineNumbers) {
  try {
    parseNetworkString("link a 5\nbogus directive\n");
    FAIL() << "expected NetfileError";
  } catch (const NetfileError& e) {
    EXPECT_NE(std::string(e.what()).find("netfile:2"), std::string::npos);
  }
}

TEST(Netfile, RejectsMalformedDirectives) {
  EXPECT_THROW(parseNetworkString("link a\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("link a five\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("link a -2\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("session s sorta\nlink a 1\n"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("link a 1\nsession s multi nope=1\n"),
               NetfileError);
}

TEST(Netfile, RejectsDuplicateNames) {
  EXPECT_THROW(parseNetworkString("link a 1\nlink a 2\n"), NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
link a 1
session s multi
session s multi
)"),
               NetfileError);
}

TEST(Netfile, RejectsDanglingReferences) {
  EXPECT_THROW(parseNetworkString(R"(
link a 1
receiver ghost r1 a
)"),
               NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
link a 1
session s multi
receiver s r1 missing
)"),
               NetfileError);
}

TEST(Netfile, RejectsEmptySessions) {
  EXPECT_THROW(parseNetworkString("link a 1\nsession s multi\n"),
               NetfileError);
}

TEST(Netfile, RejectsBadOptions) {
  EXPECT_THROW(parseNetworkString(R"(
link a 1
session s multi sigma=0
receiver s r1 a
)"),
               NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
link a 1
session s multi redundancy=0.5
receiver s r1 a
)"),
               NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
link a 1
session s multi
receiver s r1 a weight=-1
)"),
               NetfileError);
}

TEST(Netfile, SingleRateWithMixedWeightsRejectedAtSessionLine) {
  try {
    parseNetworkString(R"(
link a 1
session s single
receiver s r1 a weight=1
receiver s r2 a weight=2
)");
    FAIL() << "expected NetfileError";
  } catch (const NetfileError& e) {
    // The error is detected when the session is assembled and points at
    // the session declaration line (3).
    EXPECT_NE(std::string(e.what()).find("netfile:3"), std::string::npos);
  }
}

}  // namespace
}  // namespace mcfair::net
