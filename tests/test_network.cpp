// Tests for the net::Network model: validation, indexes, what-if copies.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "util/error.hpp"

namespace mcfair::net {
namespace {

using graph::LinkId;

Network twoSessionNetwork() {
  Network n;
  const LinkId a = n.addLink(5.0);  // l0
  const LinkId b = n.addLink(3.0);  // l1
  Session s1;
  s1.name = "S1";
  s1.type = SessionType::kMultiRate;
  s1.receivers = {makeReceiver({a, b}, "r1,1"), makeReceiver({a}, "r1,2")};
  n.addSession(std::move(s1));
  n.addSession(makeUnicastSession({b}, kUnlimitedRate, "S2"));
  return n;
}

TEST(Network, LinkAccounting) {
  const Network n = twoSessionNetwork();
  EXPECT_EQ(n.linkCount(), 2u);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{0}), 5.0);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{1}), 3.0);
  EXPECT_THROW(n.capacity(LinkId{7}), ModelError);
}

TEST(Network, RejectsBadLinks) {
  Network n;
  EXPECT_THROW(n.addLink(0.0), PreconditionError);
  EXPECT_THROW(n.addLink(-1.0), PreconditionError);
}

TEST(Network, SessionValidation) {
  Network n;
  const LinkId a = n.addLink(1.0);
  Session empty;
  EXPECT_THROW(n.addSession(empty), PreconditionError);
  Session badPath;
  badPath.receivers = {makeReceiver({LinkId{9}})};
  EXPECT_THROW(n.addSession(badPath), ModelError);
  Session badSigma;
  badSigma.maxRate = 0.0;
  badSigma.receivers = {makeReceiver({a})};
  EXPECT_THROW(n.addSession(badSigma), PreconditionError);
  Session emptyPath;
  emptyPath.receivers = {Receiver{}};
  EXPECT_THROW(n.addSession(emptyPath), PreconditionError);
}

TEST(Network, DataPathNormalized) {
  Network n;
  const LinkId a = n.addLink(1.0);
  const LinkId b = n.addLink(1.0);
  Session s;
  s.receivers = {makeReceiver({b, a, b})};  // unsorted with duplicate
  n.addSession(std::move(s));
  const auto& path = n.session(0).receivers[0].dataPath;
  EXPECT_EQ(path, (std::vector<LinkId>{a, b}));
}

TEST(Network, NullLinkRateFnDefaultsToEfficientMax) {
  Network n;
  const LinkId a = n.addLink(1.0);
  Session s;
  s.receivers = {makeReceiver({a})};
  n.addSession(std::move(s));
  EXPECT_NE(n.session(0).linkRateFn, nullptr);
}

TEST(Network, ReceiversOnLink) {
  const Network n = twoSessionNetwork();
  const auto& r0 = n.receiversOnLink(LinkId{0});
  ASSERT_EQ(r0.size(), 2u);  // r1,1 and r1,2
  EXPECT_EQ(r0[0], (ReceiverRef{0, 0}));
  EXPECT_EQ(r0[1], (ReceiverRef{0, 1}));
  const auto& r1 = n.receiversOnLink(LinkId{1});
  ASSERT_EQ(r1.size(), 2u);  // r1,1 and r2,1
  EXPECT_EQ(r1[0], (ReceiverRef{0, 0}));
  EXPECT_EQ(r1[1], (ReceiverRef{1, 0}));
}

TEST(Network, SessionReceiversOnLink) {
  const Network n = twoSessionNetwork();
  const auto r = n.sessionReceiversOnLink(0, LinkId{1});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (ReceiverRef{0, 0}));
  EXPECT_TRUE(n.sessionReceiversOnLink(1, LinkId{0}).empty());
}

TEST(Network, OnLink) {
  const Network n = twoSessionNetwork();
  EXPECT_TRUE(n.onLink({0, 0}, LinkId{0}));
  EXPECT_TRUE(n.onLink({0, 0}, LinkId{1}));
  EXPECT_FALSE(n.onLink({0, 1}, LinkId{1}));
}

TEST(Network, SessionDataPath) {
  const Network n = twoSessionNetwork();
  EXPECT_EQ(n.sessionDataPath(0),
            (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
  EXPECT_EQ(n.sessionDataPath(1), (std::vector<LinkId>{LinkId{1}}));
}

TEST(Network, AllReceivers) {
  const Network n = twoSessionNetwork();
  const auto all = n.allReceivers();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(n.receiverCount(), 3u);
  EXPECT_EQ(all[2], (ReceiverRef{1, 0}));
}

TEST(Network, WithSessionType) {
  const Network n = twoSessionNetwork();
  const Network m = n.withSessionType(0, SessionType::kSingleRate);
  EXPECT_EQ(m.session(0).type, SessionType::kSingleRate);
  EXPECT_EQ(n.session(0).type, SessionType::kMultiRate);  // original intact
}

TEST(Network, WithLinkRateFunction) {
  const Network n = twoSessionNetwork();
  auto fn = std::make_shared<const ConstantFactor>(2.0);
  const Network m = n.withLinkRateFunction(0, fn);
  EXPECT_EQ(m.session(0).linkRateFn.get(), fn.get());
  EXPECT_THROW(n.withLinkRateFunction(0, nullptr), PreconditionError);
}

TEST(Network, WithoutReceiverReindexes) {
  const Network n = twoSessionNetwork();
  const Network m = n.withoutReceiver({0, 0});
  EXPECT_EQ(m.receiverCount(), 2u);
  // Link 1 now carries only S2's receiver.
  const auto& r1 = m.receiversOnLink(LinkId{1});
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0], (ReceiverRef{1, 0}));
  // Removing the last receiver of a session is rejected.
  EXPECT_THROW(m.withoutReceiver({1, 0}), PreconditionError);
}

TEST(Network, WithCapacity) {
  const Network n = twoSessionNetwork();
  const Network m = n.withCapacity(LinkId{0}, 9.0);
  EXPECT_DOUBLE_EQ(m.capacity(LinkId{0}), 9.0);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{0}), 5.0);
}

TEST(Network, UnicastHelper) {
  Network n;
  const LinkId a = n.addLink(1.0);
  const std::size_t i = n.addSession(makeUnicastSession({a}, 2.5, "U"));
  EXPECT_EQ(n.session(i).receivers.size(), 1u);
  EXPECT_DOUBLE_EQ(n.session(i).maxRate, 2.5);
}

}  // namespace
}  // namespace mcfair::net
