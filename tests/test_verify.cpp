// Tests for the Definition 1 verifier, including cross-validation of the
// solver on random networks.
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "fairness/verify.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

VerifyOptions loose() {
  VerifyOptions o;
  o.delta = 1e-4;
  o.tol = 1e-7;
  return o;
}

TEST(Verify, AcceptsSolverOutputOnPaperExamples) {
  for (const auto& n :
       {net::fig1Network(), net::fig2Network(false), net::fig2Network(true),
        net::fig3aNetwork(false), net::fig3bNetwork(false),
        net::fig4Network()}) {
    const auto a = maxMinFairAllocation(n);
    EXPECT_TRUE(isMaxMinFair(n, a, loose()));
  }
}

TEST(Verify, RejectsUniformlyScaledDownAllocation) {
  const net::Network n = net::fig1Network();
  Allocation a = maxMinFairAllocation(n);
  for (const auto ref : n.allReceivers()) {
    a.setRate(ref, a.rate(ref) * 0.9);
  }
  const auto violations = findMaxMinViolations(n, a, loose());
  EXPECT_FALSE(violations.empty());
}

TEST(Verify, RejectsSingleStarvedReceiver) {
  const net::Network n = net::fig1Network();
  Allocation a = maxMinFairAllocation(n);
  a.setRate({1, 1}, 0.5);  // r2,2 below its fair 2.0
  const auto violations = findMaxMinViolations(n, a, loose());
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    if (v.receiver == net::ReceiverRef{1, 1}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Verify, ReportsInfeasibleAllocations) {
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({0, 0}, 100.0);
  const auto violations = findMaxMinViolations(n, a, loose());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].reason.find("not feasible"), std::string::npos);
}

TEST(Verify, AcceptsSigmaPinnedEverything) {
  // All receivers at sigma on an uncongested link: max-min fair.
  net::Network n;
  const auto l = n.addLink(100.0);
  n.addSession(net::makeUnicastSession({l}, 1.0));
  n.addSession(net::makeUnicastSession({l}, 2.0));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({1, 0}, 2.0);
  EXPECT_TRUE(isMaxMinFair(n, a, loose()));
  // But below sigma with slack it is not.
  a.setRate({1, 0}, 1.5);
  EXPECT_FALSE(isMaxMinFair(n, a, loose()));
}

TEST(Verify, DistinguishesSessionTypes) {
  // The single-rate max-min allocation of Fig 2 (2,2,2|3) is max-min
  // fair for the single-rate network, but NOT for the multi-rate one
  // (where (2.5, 2, 3 | 2.5) dominates it).
  const net::Network single = net::fig2Network(false);
  const net::Network multi = net::fig2Network(true);
  const auto a = maxMinFairAllocation(single);
  EXPECT_TRUE(isMaxMinFair(single, a, loose()));
  EXPECT_FALSE(isMaxMinFair(multi, a, loose()));
}

TEST(Verify, SingleRateRaiseMovesWholeSession) {
  // In a single-rate network the verifier must raise sessions as a unit:
  // the allocation (1,1) for a 2-receiver single-rate session whose
  // second receiver crosses a saturated link is max-min fair even though
  // receiver 1's own path has slack.
  net::Network n;
  const auto wide = n.addLink(10.0);
  const auto tight = n.addLink(1.0);
  net::Session s;
  s.type = net::SessionType::kSingleRate;
  s.receivers = {net::makeReceiver({wide}), net::makeReceiver({tight})};
  n.addSession(std::move(s));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({0, 1}, 1.0);
  EXPECT_TRUE(isMaxMinFair(n, a, loose()));
}

TEST(Verify, RedundantSessionsVerify) {
  const net::Network n = net::singleBottleneckNetwork(5, 2, 50.0, 2.0);
  const auto a = maxMinFairAllocation(n);
  EXPECT_TRUE(isMaxMinFair(n, a, loose()));
}

class VerifyRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyRandom, SolverOutputIsMaxMinFair) {
  util::Rng rng(GetParam());
  net::RandomNetworkOptions opts;
  opts.singleRateProbability = 0.4;
  const net::Network n = net::randomNetwork(rng, opts);
  const auto a = maxMinFairAllocation(n);
  const auto violations = findMaxMinViolations(n, a, loose());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: "
      << (violations.empty() ? "" : violations.front().reason);
}

TEST_P(VerifyRandom, PerturbationsAreCaught) {
  util::Rng rng(GetParam() + 5000);
  net::RandomNetworkOptions opts;
  opts.singleRateProbability = 0.0;  // free to perturb individual rates
  const net::Network n = net::randomNetwork(rng, opts);
  Allocation a = maxMinFairAllocation(n);
  // Halve one random receiver's rate: that receiver can be re-raised
  // without hurting anyone (its old allocation was feasible).
  const auto all = n.allReceivers();
  const auto victim = all[rng.below(all.size())];
  if (a.rate(victim) < 1e-6) return;  // degenerate
  a.setRate(victim, a.rate(victim) / 2.0);
  EXPECT_FALSE(isMaxMinFair(n, a, loose()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyRandom,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcfair::fairness
