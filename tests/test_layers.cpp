// Tests for LayerScheme.
#include <gtest/gtest.h>

#include <cmath>

#include "layering/layers.hpp"
#include "util/error.hpp"

namespace mcfair::layering {
namespace {

TEST(LayerScheme, ExponentialCumulativeRates) {
  const LayerScheme s = LayerScheme::exponential(8);
  EXPECT_EQ(s.layerCount(), 8u);
  for (std::size_t i = 1; i <= 8; ++i) {
    EXPECT_DOUBLE_EQ(s.cumulativeRate(i),
                     std::pow(2.0, static_cast<double>(i - 1)))
        << "level " << i;
  }
  EXPECT_DOUBLE_EQ(s.cumulativeRate(0), 0.0);
}

TEST(LayerScheme, ExponentialLayerRates) {
  const LayerScheme s = LayerScheme::exponential(4);
  EXPECT_DOUBLE_EQ(s.layerRate(1), 1.0);
  EXPECT_DOUBLE_EQ(s.layerRate(2), 1.0);
  EXPECT_DOUBLE_EQ(s.layerRate(3), 2.0);
  EXPECT_DOUBLE_EQ(s.layerRate(4), 4.0);
}

TEST(LayerScheme, SingleLayerExponential) {
  const LayerScheme s = LayerScheme::exponential(1);
  EXPECT_EQ(s.layerCount(), 1u);
  EXPECT_DOUBLE_EQ(s.cumulativeRate(1), 1.0);
}

TEST(LayerScheme, Uniform) {
  const LayerScheme s = LayerScheme::uniform(3, 2.0);
  EXPECT_DOUBLE_EQ(s.cumulativeRate(3), 6.0);
  EXPECT_DOUBLE_EQ(s.layerRate(2), 2.0);
}

TEST(LayerScheme, LevelForRate) {
  const LayerScheme s = LayerScheme::exponential(4);  // cum: 0,1,2,4,8
  EXPECT_EQ(s.levelForRate(0.0), 0u);
  EXPECT_EQ(s.levelForRate(0.99), 0u);
  EXPECT_EQ(s.levelForRate(1.0), 1u);
  EXPECT_EQ(s.levelForRate(3.5), 2u);
  EXPECT_EQ(s.levelForRate(4.0), 3u);
  EXPECT_EQ(s.levelForRate(100.0), 4u);
}

TEST(LayerScheme, AvailableRates) {
  const LayerScheme s = LayerScheme::uniform(2, 3.0);
  EXPECT_EQ(s.availableRates(), (std::vector<double>{0.0, 3.0, 6.0}));
}

TEST(LayerScheme, CustomRates) {
  const LayerScheme s({0.5, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(s.cumulativeRate(2), 2.0);
  EXPECT_DOUBLE_EQ(s.cumulativeRate(3), 4.0);
}

TEST(LayerScheme, Validation) {
  EXPECT_THROW(LayerScheme({}), PreconditionError);
  EXPECT_THROW(LayerScheme({1.0, 0.0}), PreconditionError);
  EXPECT_THROW(LayerScheme::uniform(0, 1.0), PreconditionError);
  EXPECT_THROW(LayerScheme::exponential(0), PreconditionError);
  const LayerScheme s({1.0});
  EXPECT_THROW(s.layerRate(0), PreconditionError);
  EXPECT_THROW(s.layerRate(2), PreconditionError);
  EXPECT_THROW(s.cumulativeRate(2), PreconditionError);
  EXPECT_THROW(s.levelForRate(-1.0), PreconditionError);
}

}  // namespace
}  // namespace mcfair::layering
