// Robustness fuzzing for the netfile parser: randomly mutated inputs
// must either parse or throw NetfileError — never crash, hang, or throw
// anything else.
#include <gtest/gtest.h>

#include <string>

#include "net/netfile.hpp"
#include "util/rng.hpp"

namespace mcfair::net {
namespace {

const std::string kSeedInput = R"(# demo
link backbone 12
link dsl 1
session video multi sigma=8 redundancy=1.5
receiver video home backbone,dsl weight=2
session web single
receiver web w1 backbone
receiver web w2 backbone,dsl
fault 600 down backbone
fault 900 degrade dsl 0.5
fault 1200 up backbone
)";

// The PR 5 graph+routing dialect, exercising every directive it has:
// nodes/edge/routing, the link-rate registry spellings, senders,
// members, and a fault schedule on named edges.
const std::string kGraphSeedInput = R"(# routed mesh
nodes 5
edge e0 0 1 10
edge e1 1 2 7 weight=0.5
edge e2 0 2 4
edge e3 2 3 5
edge e4 3 4 5 weight=2
routing weighted
session video multi sigma=8 linkrate=randomjoin:8
sender video 0
member video home 3
member video office 4 weight=2
session web single redundancy=1.25
sender web 2
member web w1 0
fault 600 down e3
fault 900.5 degrade e1 0.5
fault 1200 up e3
)";

// Hostile numeric literals: std::stod happily parses "inf"/"nan", so
// every numeric field must be rejected by an explicit finiteness guard,
// not by accident. Mutations of this seed drive those guards through
// the same never-crash contract.
const std::string kHostileSeedInput = R"(# hostile numerics
link backbone inf
link dsl nan
link tail -1e308
session video multi sigma=inf redundancy=inf
receiver video home backbone,dsl weight=inf
session web single linkrate=constant:nan
receiver web w1 tail weight=nan
fault inf down backbone
fault 900 degrade dsl nan
)";

class NetfileFuzz : public ::testing::TestWithParam<std::uint64_t> {};

void fuzzSeed(const std::string& seedInput, util::Rng& rng, int trials) {
  for (int trial = 0; trial < trials; ++trial) {
    std::string input = seedInput;
    const std::size_t mutations = 1 + rng.below(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (input.empty()) break;
      const std::size_t pos = rng.below(input.size());
      switch (rng.below(4)) {
        case 0:  // flip to random printable / control char
          input[pos] = static_cast<char>(rng.between(9, 126));
          break;
        case 1:  // delete
          input.erase(pos, 1 + rng.below(4));
          break;
        case 2:  // duplicate a chunk
          input.insert(pos, input.substr(pos, 1 + rng.below(12)));
          break;
        case 3:  // inject separators
          input.insert(pos, rng.bernoulli(0.5) ? "\n" : " ");
          break;
      }
    }
    try {
      FaultSchedule faults;
      const Network n = parseNetworkString(input, faults);
      // If it parsed, the result must be a structurally valid network
      // and the schedule must be canonical (normalized has already
      // validated times, links and factors).
      for (std::size_t i = 0; i < n.sessionCount(); ++i) {
        EXPECT_GE(n.session(i).receivers.size(), 1u);
      }
      for (const FaultEvent& ev : faults.events) {
        EXPECT_GE(ev.time, 0.0);
        EXPECT_LT(ev.link.value, n.linkCount());
      }
    } catch (const NetfileError&) {
      // Expected failure mode.
    }
  }
}

TEST_P(NetfileFuzz, MutatedInputsNeverCrash) {
  util::Rng rng(GetParam());
  fuzzSeed(kSeedInput, rng, 400);
}

TEST_P(NetfileFuzz, MutatedGraphInputsNeverCrash) {
  util::Rng rng(GetParam() + 555);
  fuzzSeed(kGraphSeedInput, rng, 400);
}

TEST_P(NetfileFuzz, MutatedHostileNumericsNeverCrash) {
  util::Rng rng(GetParam() + 777);
  fuzzSeed(kHostileSeedInput, rng, 400);
}

TEST_P(NetfileFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(GetParam() + 999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const std::size_t len = rng.below(300);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.between(9, 126)));
    }
    try {
      parseNetworkString(input);
    } catch (const NetfileError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetfileFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

// Directed probes: each hostile value must produce a structured
// NetfileError (with the offending line number in the message), never a
// successfully parsed network carrying a non-finite parameter.
TEST(NetfileHardening, RejectsNonFiniteNumericFields) {
  const auto expectReject = [](const std::string& input) {
    EXPECT_THROW((void)parseNetworkString(input), NetfileError) << input;
  };
  // Flat-dialect link capacities.
  expectReject("link l inf\nsession s multi\nreceiver s r l\n");
  expectReject("link l nan\nsession s multi\nreceiver s r l\n");
  expectReject("link l -5\nsession s multi\nreceiver s r l\n");
  // Graph-dialect edge capacities and weights.
  expectReject("nodes 2\nedge e 0 1 inf\nrouting shortest\n"
               "session s multi\nsender s 0\nmember s r 1\n");
  expectReject("nodes 2\nedge e 0 1 5 weight=inf\nrouting weighted\n"
               "session s multi\nsender s 0\nmember s r 1\n");
  // Session redundancy / link-rate registry parameters.
  expectReject("link l 5\nsession s multi redundancy=inf\n"
               "receiver s r l\n");
  expectReject("link l 5\nsession s multi linkrate=constant:inf\n"
               "receiver s r l\n");
  expectReject("link l 5\nsession s multi linkrate=randomjoin:nan\n"
               "receiver s r l\n");
  // Receiver weights.
  expectReject("link l 5\nsession s multi\nreceiver s r l weight=inf\n");
  expectReject("link l 5\nsession s multi\nreceiver s r l weight=nan\n");
  // Fault schedule times and factors.
  expectReject("link l 5\nsession s multi\nreceiver s r l\n"
               "fault inf down l\n");
  expectReject("link l 5\nsession s multi\nreceiver s r l\n"
               "fault 10 degrade l nan\n");
}

TEST(NetfileHardening, ErrorsNameTheOffendingLine) {
  try {
    (void)parseNetworkString(
        "link good 5\nlink bad inf\nsession s multi\nreceiver s r good\n");
    FAIL() << "expected NetfileError";
  } catch (const NetfileError& e) {
    EXPECT_NE(std::string(e.what()).find("netfile:2:"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace mcfair::net
