// Robustness fuzzing for the netfile parser: randomly mutated inputs
// must either parse or throw NetfileError — never crash, hang, or throw
// anything else.
#include <gtest/gtest.h>

#include <string>

#include "net/netfile.hpp"
#include "util/rng.hpp"

namespace mcfair::net {
namespace {

const std::string kSeedInput = R"(# demo
link backbone 12
link dsl 1
session video multi sigma=8 redundancy=1.5
receiver video home backbone,dsl weight=2
session web single
receiver web w1 backbone
receiver web w2 backbone,dsl
)";

class NetfileFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetfileFuzz, MutatedInputsNeverCrash) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string input = kSeedInput;
    const std::size_t mutations = 1 + rng.below(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (input.empty()) break;
      const std::size_t pos = rng.below(input.size());
      switch (rng.below(4)) {
        case 0:  // flip to random printable / control char
          input[pos] = static_cast<char>(rng.between(9, 126));
          break;
        case 1:  // delete
          input.erase(pos, 1 + rng.below(4));
          break;
        case 2:  // duplicate a chunk
          input.insert(pos, input.substr(pos, 1 + rng.below(12)));
          break;
        case 3:  // inject separators
          input.insert(pos, rng.bernoulli(0.5) ? "\n" : " ");
          break;
      }
    }
    try {
      const Network n = parseNetworkString(input);
      // If it parsed, the result must be a structurally valid network.
      for (std::size_t i = 0; i < n.sessionCount(); ++i) {
        EXPECT_GE(n.session(i).receivers.size(), 1u);
      }
    } catch (const NetfileError&) {
      // Expected failure mode.
    }
  }
}

TEST_P(NetfileFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(GetParam() + 999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const std::size_t len = rng.below(300);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.between(9, 126)));
    }
    try {
      parseNetworkString(input);
    } catch (const NetfileError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetfileFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace mcfair::net
