// Tests for the fixed-layer enumeration and the Section 3 non-existence
// example.
#include <gtest/gtest.h>

#include <set>

#include "layering/fixed_layer.hpp"
#include "util/error.hpp"

namespace mcfair::layering {
namespace {

TEST(Sec3Example, FeasibleSetMatchesPaper) {
  // Feasible allocations must be exactly
  // {(0,0),(0,c/2),(0,c),(c/3,0),(c/3,c/2),(2c/3,0),(c,0)}.
  const double c = 6.0;
  const auto ex = sec3NonexistenceExample(c);
  const auto analysis = analyzeFixedLayerAllocations(ex.network, ex.schemes);
  std::set<std::pair<double, double>> got;
  for (const auto& f : analysis.feasible) {
    got.emplace(f.rates.rate({0, 0}), f.rates.rate({1, 0}));
  }
  const std::set<std::pair<double, double>> expected{
      {0, 0},     {0, c / 2},     {0, c},      {c / 3, 0},
      {c / 3, c / 2}, {2 * c / 3, 0}, {c, 0}};
  EXPECT_EQ(got, expected);
}

TEST(Sec3Example, NoMaxMinFairAllocationExists) {
  const auto ex = sec3NonexistenceExample();
  const auto analysis = analyzeFixedLayerAllocations(ex.network, ex.schemes);
  EXPECT_FALSE(analysis.maxMinFairIndex.has_value());
}

TEST(FixedLayer, MaxMinExistsWhenLayersMatchFairRates) {
  // Two sessions, link capacity 2, each with a single layer of rate 1:
  // (1,1) is feasible and max-min fair within the feasible set.
  net::Network n;
  const auto l = n.addLink(2.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  const std::vector<LayerScheme> schemes{LayerScheme::uniform(1, 1.0),
                                         LayerScheme::uniform(1, 1.0)};
  const auto analysis = analyzeFixedLayerAllocations(n, schemes);
  ASSERT_TRUE(analysis.maxMinFairIndex.has_value());
  const auto& best = analysis.feasible[*analysis.maxMinFairIndex];
  EXPECT_DOUBLE_EQ(best.rates.rate({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(best.rates.rate({1, 0}), 1.0);
}

TEST(FixedLayer, SigmaExcludesHighLevels) {
  net::Network n;
  const auto l = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({l}, /*maxRate=*/1.5));
  const std::vector<LayerScheme> schemes{LayerScheme::uniform(3, 1.0)};
  const auto analysis = analyzeFixedLayerAllocations(n, schemes);
  // Levels 0 and 1 are admissible (rates 0, 1); level 2 (rate 2) exceeds
  // sigma = 1.5.
  EXPECT_EQ(analysis.feasible.size(), 2u);
}

TEST(FixedLayer, MultiRateSessionSharedLinkUsesMax) {
  // A 2-receiver multi-rate session behind one link: levels (2,1) need
  // only cumulative(2) on the link, so capacity 2 admits it with the
  // uniform(2, 1.0) scheme.
  net::Network n;
  const auto l = n.addLink(2.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  n.addSession(std::move(s));
  const std::vector<LayerScheme> schemes{LayerScheme::uniform(2, 1.0)};
  const auto analysis = analyzeFixedLayerAllocations(n, schemes);
  bool sawAsymmetricFull = false;
  for (const auto& f : analysis.feasible) {
    if (f.rates.rate({0, 0}) == 2.0 && f.rates.rate({0, 1}) == 1.0) {
      sawAsymmetricFull = true;
    }
  }
  EXPECT_TRUE(sawAsymmetricFull);
  // Max-min fair within the set: (2,2).
  ASSERT_TRUE(analysis.maxMinFairIndex.has_value());
  const auto& best = analysis.feasible[*analysis.maxMinFairIndex];
  EXPECT_DOUBLE_EQ(best.rates.rate({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(best.rates.rate({0, 1}), 2.0);
}

TEST(FixedLayer, RejectsMismatchedSchemes) {
  const auto ex = sec3NonexistenceExample();
  EXPECT_THROW(analyzeFixedLayerAllocations(ex.network, {}),
               PreconditionError);
}

TEST(FixedLayer, RejectsHugeEnumerations) {
  net::Network n;
  const auto l = n.addLink(1.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  for (int i = 0; i < 15; ++i) s.receivers.push_back(net::makeReceiver({l}));
  n.addSession(std::move(s));
  EXPECT_THROW(
      analyzeFixedLayerAllocations(n, {LayerScheme::uniform(1, 0.01)}),
      PreconditionError);
}

}  // namespace
}  // namespace mcfair::layering
