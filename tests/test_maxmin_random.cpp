// Property-based solver tests on random networks: feasibility, Lemma 1
// (every feasible allocation is min-unfavorable to the max-min fair one),
// determinism, and robustness of the bisection path.
#include <gtest/gtest.h>

#include <memory>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using net::Network;
using net::ReceiverRef;

// Greedy randomized feasible allocation: repeatedly pick a receiver (or a
// whole single-rate session) and push its rate up to the feasibility
// boundary in random order. Produces Pareto-ish allocations that differ
// from progressive filling.
Allocation randomGreedyFeasible(const Network& n, util::Rng& rng) {
  Allocation a(n);
  const auto receivers = n.allReceivers();
  std::vector<std::size_t> order(receivers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Fisher-Yates shuffle.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t idx : order) {
    const ReceiverRef ref = receivers[idx];
    const auto& sess = n.session(ref.session);
    // Binary search the largest extra rate this receiver (or its whole
    // single-rate session) can take.
    double lo = 0.0;
    double hi = sess.maxRate;
    for (graph::LinkId l : sess.receivers[ref.receiver].dataPath) {
      hi = std::min(hi, n.capacity(l));
    }
    auto trial = [&](double rate) {
      Allocation b = a;
      if (sess.type == net::SessionType::kSingleRate) {
        for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
          b.setRate({ref.session, k},
                    std::max(rate, b.rate({ref.session, k})));
        }
      } else {
        b.setRate(ref, std::max(rate, b.rate(ref)));
      }
      return b;
    };
    if (!isFeasible(n, trial(hi))) {
      for (int step = 0; step < 40; ++step) {
        const double mid = 0.5 * (lo + hi);
        (isFeasible(n, trial(mid)) ? lo : hi) = mid;
      }
    } else {
      lo = hi;
    }
    // Back off by a random fraction so allocations are diverse, not just
    // greedy-maximal.
    a = trial(lo * rng.uniform(0.3, 1.0));
  }
  return a;
}

class MaxMinRandom : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Network makeNetwork(double singleRateProb) const {
    util::Rng rng(GetParam());
    net::RandomNetworkOptions opts;
    opts.singleRateProbability = singleRateProb;
    return net::randomNetwork(rng, opts);
  }
};

TEST_P(MaxMinRandom, ResultIsFeasible) {
  const Network n = makeNetwork(0.5);
  const auto result = solveMaxMinFair(n);
  EXPECT_TRUE(isFeasible(n, result.allocation, 1e-6));
}

TEST_P(MaxMinRandom, Deterministic) {
  const Network n = makeNetwork(0.5);
  const auto a = maxMinFairAllocation(n);
  const auto b = maxMinFairAllocation(n);
  for (ReceiverRef r : n.allReceivers()) {
    EXPECT_DOUBLE_EQ(a.rate(r), b.rate(r));
  }
}

TEST_P(MaxMinRandom, Lemma1FeasibleAllocationsAreMinUnfavorable) {
  const Network n = makeNetwork(0.5);
  const auto fair = maxMinFairAllocation(n).orderedRates();
  util::Rng rng(GetParam() * 977 + 13);
  for (int trial = 0; trial < 8; ++trial) {
    const Allocation alt = randomGreedyFeasible(n, rng);
    ASSERT_TRUE(isFeasible(n, alt, 1e-6));
    EXPECT_TRUE(minUnfavorable(alt.orderedRates(), fair, 1e-5));
  }
}

TEST_P(MaxMinRandom, SigmaRespected) {
  const Network n = makeNetwork(0.3);
  const auto a = maxMinFairAllocation(n);
  for (ReceiverRef r : n.allReceivers()) {
    EXPECT_LE(a.rate(r), n.session(r.session).maxRate + 1e-7);
    EXPECT_GE(a.rate(r), 0.0);
  }
}

TEST_P(MaxMinRandom, SingleRateSessionsHaveUniformRates) {
  const Network n = makeNetwork(1.0);
  const auto a = maxMinFairAllocation(n);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    const auto& rates = a.sessionRates(i);
    for (double r : rates) EXPECT_NEAR(r, rates.front(), 1e-9);
  }
}

TEST_P(MaxMinRandom, EveryReceiverPinnedBySigmaOrSaturation) {
  // In any max-min fair allocation, each receiver is at sigma or crosses
  // a fully utilized link (otherwise its session could be inflated).
  const Network n = makeNetwork(0.5);
  const auto result = solveMaxMinFair(n);
  for (ReceiverRef r : n.allReceivers()) {
    const auto& sess = n.session(r.session);
    bool pinned = result.allocation.rate(r) >= sess.maxRate - 1e-6;
    if (!pinned) {
      // For single-rate sessions the binding link may be on a sibling's
      // path; search the session data-path.
      const auto links = sess.type == net::SessionType::kSingleRate
                             ? n.sessionDataPath(r.session)
                             : sess.receivers[r.receiver].dataPath;
      for (graph::LinkId l : links) {
        if (result.usage.linkRate[l.value] >= n.capacity(l) - 1e-5) {
          pinned = true;
          break;
        }
      }
    }
    EXPECT_TRUE(pinned);
  }
}

TEST_P(MaxMinRandom, BisectionPathAgreesWithLinearPath) {
  // Wrap every session's EfficientMax in an opaque subclass the solver
  // cannot recognize, forcing the bisection path; results must agree.
  class OpaqueMax final : public net::LinkRateFunction {
   public:
    double linkRate(std::span<const double> rates) const override {
      return net::EfficientMax().linkRate(rates);
    }
  };
  Network n = makeNetwork(0.5);
  Network opaque = n;
  const auto fn = std::make_shared<const OpaqueMax>();
  for (std::size_t i = 0; i < opaque.sessionCount(); ++i) {
    opaque = opaque.withLinkRateFunction(i, fn);
  }
  const auto exact = maxMinFairAllocation(n);
  const auto bisected = maxMinFairAllocation(opaque);
  for (ReceiverRef r : n.allReceivers()) {
    EXPECT_NEAR(exact.rate(r), bisected.rate(r), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

}  // namespace
}  // namespace mcfair::fairness
