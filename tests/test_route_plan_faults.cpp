// Fault-injection tests for RoutePlan::applyEdgeMask — the incremental
// re-route that backs the fault layer. The contract under test: after any
// sequence of mask changes, every cached tree is bit-identical to the
// tree a from-scratch plan would build under the same mask (same
// builders, same tie-breaks), severed destinations lose reachability
// cleanly (ModelError, no crash), and untouched trees are genuinely not
// rebuilt when the delta cannot affect them.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/route_plan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::graph {
namespace {

// 0 - 1 - 2 - 3 plus a two-hop shortcut 0 - 4 - 3 and a chord 1 - 3.
Graph diamond() {
  Graph g;
  g.addNodes(5);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);  // l0
  g.addLink(NodeId{1}, NodeId{2}, 1.0);  // l1
  g.addLink(NodeId{2}, NodeId{3}, 1.0);  // l2
  g.addLink(NodeId{0}, NodeId{4}, 1.0);  // l3
  g.addLink(NodeId{4}, NodeId{3}, 1.0);  // l4
  g.addLink(NodeId{1}, NodeId{3}, 1.0);  // l5
  return g;
}

void expectMatchesFreshPlan(RoutePlan& plan, const Graph& g,
                            const RouteOptions& options,
                            const std::vector<char>& mask,
                            const std::vector<NodeId>& sources,
                            const std::string& label) {
  RoutePlan fresh(g, options);
  fresh.applyEdgeMask(mask);
  for (NodeId src : sources) {
    const std::uint32_t* got = plan.predecessors(src);
    const std::uint32_t* want = fresh.predecessors(src);
    for (std::uint32_t v = 0; v < g.nodeCount(); ++v) {
      ASSERT_EQ(got[v], want[v])
          << label << ": src " << src.value << " node " << v;
    }
  }
}

TEST(RoutePlanFaults, MaskedEdgeLeavesTreeAndPathsRerouted) {
  const Graph g = diamond();
  RoutePlan plan(g);
  EXPECT_EQ(plan.path(NodeId{0}, NodeId{3}),
            (std::vector<LinkId>{LinkId{0}, LinkId{5}}));

  std::vector<char> mask(g.linkCount(), 0);
  mask[5] = 1;  // fail the 1 - 3 chord
  plan.applyEdgeMask(mask);
  EXPECT_EQ(plan.path(NodeId{0}, NodeId{3}),
            (std::vector<LinkId>{LinkId{3}, LinkId{4}}));

  mask[3] = 1;  // and the 0 - 4 shortcut: only 0-1-2-3 survives
  plan.applyEdgeMask(mask);
  EXPECT_EQ(plan.path(NodeId{0}, NodeId{3}),
            (std::vector<LinkId>{LinkId{0}, LinkId{1}, LinkId{2}}));

  plan.applyEdgeMask(std::vector<char>(g.linkCount(), 0));  // full repair
  EXPECT_EQ(plan.path(NodeId{0}, NodeId{3}),
            (std::vector<LinkId>{LinkId{0}, LinkId{5}}));
}

TEST(RoutePlanFaults, SeveredDestinationDegradesCleanly) {
  const Graph g = diamond();
  RoutePlan plan(g);
  ASSERT_TRUE(plan.reachable(NodeId{0}, NodeId{4}));

  std::vector<char> mask(g.linkCount(), 0);
  mask[3] = 1;  // 0 - 4
  mask[4] = 1;  // 4 - 3: node 4 is now isolated
  plan.applyEdgeMask(mask);
  EXPECT_FALSE(plan.reachable(NodeId{0}, NodeId{4}));
  EXPECT_THROW((void)plan.path(NodeId{0}, NodeId{4}), ModelError);
  EXPECT_THROW(
      (void)plan.distributionTree(NodeId{0}, {NodeId{2}, NodeId{4}}),
      ModelError);
  // The rest of the mesh still routes.
  EXPECT_TRUE(plan.reachable(NodeId{0}, NodeId{3}));

  plan.applyEdgeMask(std::vector<char>(g.linkCount(), 0));
  EXPECT_TRUE(plan.reachable(NodeId{0}, NodeId{4}));
}

TEST(RoutePlanFaults, MaskSizeIsValidated) {
  const Graph g = diamond();
  RoutePlan plan(g);
  EXPECT_THROW(plan.applyEdgeMask(std::vector<char>(2, 0)),
               PreconditionError);
  EXPECT_NO_THROW(plan.applyEdgeMask({}));  // empty = everything up
  EXPECT_TRUE(plan.edgeMask().empty());
}

// The core determinism fuzz: random meshes, both policies, random
// fail/repair churn — the incrementally maintained plan must stay
// bit-identical to a from-scratch plan under every intermediate mask.
TEST(RoutePlanFaults, IncrementalRerouteMatchesFreshRebuildUnderChurn) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g =
        trial % 2 == 0
            ? scaleFreeGraph(rng, {10 + rng.below(14), 2 + rng.below(2), 1.0})
            : waxmanGraph(rng, {10 + rng.below(14), 0.6, 0.4, 1.0});

    RouteOptions options;
    if (trial % 4 >= 2) {
      options.policy = RoutePolicy::kWeighted;
      options.weights.reserve(g.linkCount());
      for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
        // Include exact ties (integer weights) to exercise tie-breaks.
        options.weights.push_back(1.0 + rng.below(3));
      }
    }

    RoutePlan plan(g, options);
    std::vector<NodeId> sources;
    for (std::uint32_t s = 0; s < g.nodeCount(); s += 1 + rng.below(4)) {
      sources.push_back(NodeId{s});
      plan.ensureSource(NodeId{s});
    }

    std::vector<char> mask(g.linkCount(), 0);
    for (int step = 0; step < 6; ++step) {
      // Flip a random handful of links; repair everything on the last
      // step so the churn ends where it began.
      if (step == 5) {
        mask.assign(g.linkCount(), 0);
      } else {
        const std::size_t flips = 1 + rng.below(3);
        for (std::size_t f = 0; f < flips; ++f) {
          const std::size_t l = rng.below(g.linkCount());
          mask[l] = mask[l] ? 0 : 1;
        }
      }
      plan.applyEdgeMask(mask);
      expectMatchesFreshPlan(plan, g, options, mask, sources,
                             "trial " + std::to_string(trial) + " step " +
                                 std::to_string(step));
    }
  }
}

// Sanity on the "untouched trees are not rebuilt" claim: failing an edge
// no cached tree uses, or restoring one that cannot shorten or tie any
// path, must leave the predecessor storage byte-identical (pointer-level
// check: the arrays are rebuilt in place, so we snapshot and compare).
TEST(RoutePlanFaults, IrrelevantDeltasLeaveTreesByteIdentical) {
  const Graph g = diamond();
  RoutePlan plan(g);
  (void)plan.predecessors(NodeId{2});
  // From node 2 the tree is 2-1, 2-3, 1-0, 3-4 (BFS adjacency order);
  // the chord 0-4 (l3) carries nothing: d(0)=2, d(4)=2, so neither
  // d(0)+1 <= d(4) nor d(4)+1 <= d(0).
  std::vector<std::uint32_t> before(
      plan.predecessors(NodeId{2}),
      plan.predecessors(NodeId{2}) + g.nodeCount());

  std::vector<char> mask(g.linkCount(), 0);
  mask[3] = 1;
  plan.applyEdgeMask(mask);  // fail l3: unused by the tree
  std::vector<std::uint32_t> afterFail(
      plan.predecessors(NodeId{2}),
      plan.predecessors(NodeId{2}) + g.nodeCount());
  EXPECT_EQ(before, afterFail);

  plan.applyEdgeMask(std::vector<char>(g.linkCount(), 0));  // restore l3
  std::vector<std::uint32_t> afterRepair(
      plan.predecessors(NodeId{2}),
      plan.predecessors(NodeId{2}) + g.nodeCount());
  EXPECT_EQ(before, afterRepair);
}

}  // namespace
}  // namespace mcfair::graph
