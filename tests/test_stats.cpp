// Tests for util::RunningStats and friends.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mcfair::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95HalfWidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(7);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95HalfWidth(), large.ci95HalfWidth());
  EXPECT_GT(small.ci95HalfWidth(), 0.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(tCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(tCritical95(10), 2.228, 1e-3);
  EXPECT_NEAR(tCritical95(29), 2.045, 1e-3);
  EXPECT_NEAR(tCritical95(1000), 1.960, 1e-3);
}

TEST(Mean, EmptyAndValues) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Quantile, NearestRank) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile({1.0}, 1.5), PreconditionError);
}

TEST(P2Quantile, RejectsBadOrder) {
  EXPECT_THROW(P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(P2Quantile(1.0), PreconditionError);
  EXPECT_THROW(P2Quantile(-0.2), PreconditionError);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.value(), 0.0);
  EXPECT_EQ(q.order(), 0.5);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  // The warm-up path must match util::quantile's nearest-rank convention
  // exactly, whatever the insertion order.
  const std::vector<double> xs = {7.0, 1.0, 5.0, 3.0};
  P2Quantile q(0.5);
  std::vector<double> seen;
  for (double x : xs) {
    q.add(x);
    seen.push_back(x);
    EXPECT_EQ(q.value(), quantile(seen, 0.5)) << seen.size();
  }
}

TEST(P2Quantile, MedianOfUniformStream) {
  Rng rng(42);
  P2Quantile q(0.5);
  for (int i = 0; i < 20000; ++i) q.add(rng.uniform01());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
  EXPECT_EQ(q.count(), 20000u);
}

TEST(P2Quantile, TailQuantileOfUniformStream) {
  Rng rng(7);
  P2Quantile q(0.9);
  for (int i = 0; i < 20000; ++i) q.add(rng.uniform01());
  EXPECT_NEAR(q.value(), 0.9, 0.02);
}

TEST(P2Quantile, MatchesExactQuantileOnSkewedStream) {
  // Exponential-ish skew via -log(u): the P^2 estimate must stay within
  // a few percent of the retained-sample quantile.
  Rng rng(3);
  P2Quantile q50(0.5);
  P2Quantile q90(0.9);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = -std::log(1.0 - rng.uniform01());
    q50.add(x);
    q90.add(x);
    all.push_back(x);
  }
  EXPECT_NEAR(q50.value(), quantile(all, 0.5), 0.05);
  EXPECT_NEAR(q90.value(), quantile(all, 0.9), 0.12);
}

TEST(P2Quantile, DeterministicAcrossInstances) {
  Rng a(11), b(11);
  P2Quantile qa(0.9), qb(0.9);
  for (int i = 0; i < 1000; ++i) {
    const double xa = a.uniform01();
    const double xb = b.uniform01();
    ASSERT_EQ(xa, xb);
    qa.add(xa);
    qb.add(xb);
  }
  EXPECT_EQ(qa.value(), qb.value());
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.add(3.25);
  EXPECT_EQ(q.value(), 3.25);
}

}  // namespace
}  // namespace mcfair::util
