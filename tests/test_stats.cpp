// Tests for util::RunningStats and friends.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mcfair::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95HalfWidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(7);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95HalfWidth(), large.ci95HalfWidth());
  EXPECT_GT(small.ci95HalfWidth(), 0.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(tCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(tCritical95(10), 2.228, 1e-3);
  EXPECT_NEAR(tCritical95(29), 2.045, 1e-3);
  EXPECT_NEAR(tCritical95(1000), 1.960, 1e-3);
}

TEST(Mean, EmptyAndValues) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Quantile, NearestRank) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile({1.0}, 1.5), PreconditionError);
}

}  // namespace
}  // namespace mcfair::util
