// Tests for canonical topologies and the random-network generator.
#include <gtest/gtest.h>

#include "net/topologies.hpp"
#include "util/error.hpp"

namespace mcfair::net {
namespace {

using graph::LinkId;
using graph::NodeId;

TEST(Fig1, Shape) {
  const Network n = fig1Network();
  EXPECT_EQ(n.linkCount(), 4u);
  EXPECT_EQ(n.sessionCount(), 3u);
  EXPECT_EQ(n.receiverCount(), 5u);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{0}), 5.0);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{1}), 7.0);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{2}), 4.0);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{3}), 3.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(n.session(i).type, SessionType::kMultiRate);
  }
}

TEST(Fig1, SamePathPair) {
  // r1,1 and r2,1 share an identical data-path (the Section 2.1 example).
  const Network n = fig1Network();
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            n.session(1).receivers[0].dataPath);
}

TEST(Fig2, TypeSwitch) {
  EXPECT_EQ(fig2Network(false).session(0).type, SessionType::kSingleRate);
  EXPECT_EQ(fig2Network(true).session(0).type, SessionType::kMultiRate);
  const Network n = fig2Network(false);
  EXPECT_DOUBLE_EQ(n.session(0).maxRate, 100.0);
  EXPECT_EQ(n.receiverCount(), 4u);
  // r1,1 and r2,1 share the same data-path {l4, l1}.
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            n.session(1).receivers[0].dataPath);
}

TEST(Fig3, BeforeAfterShapes) {
  EXPECT_EQ(fig3aNetwork(false).receiverCount(), 4u);
  EXPECT_EQ(fig3aNetwork(true).receiverCount(), 3u);
  EXPECT_EQ(fig3bNetwork(false).receiverCount(), 4u);
  EXPECT_EQ(fig3bNetwork(true).receiverCount(), 3u);
  const auto ref = fig3RemovedReceiver();
  EXPECT_EQ(ref.session, 2u);
  EXPECT_EQ(ref.receiver, 1u);
  // The "after" network equals the "before" network minus r3,2 (same
  // shape as withoutReceiver).
  const Network before = fig3aNetwork(false);
  const Network after = before.withoutReceiver(ref);
  EXPECT_EQ(after.receiverCount(), fig3aNetwork(true).receiverCount());
}

TEST(Fig4, RedundantSession) {
  const Network n = fig4Network();
  EXPECT_EQ(n.session(0).type, SessionType::kMultiRate);
  const auto* cf =
      dynamic_cast<const ConstantFactor*>(n.session(0).linkRateFn.get());
  ASSERT_NE(cf, nullptr);
  EXPECT_DOUBLE_EQ(cf->factor(), 2.0);
}

TEST(SingleBottleneck, Shape) {
  const Network n = singleBottleneckNetwork(10, 3, 100.0, 2.0);
  EXPECT_EQ(n.sessionCount(), 10u);
  // 3 multi-rate sessions with 2 receivers + 7 unicast.
  EXPECT_EQ(n.receiverCount(), 3u * 2 + 7u);
  // Every receiver crosses the shared link 0.
  EXPECT_EQ(n.receiversOnLink(LinkId{0}).size(), n.receiverCount());
}

TEST(SingleBottleneck, Validation) {
  EXPECT_THROW(singleBottleneckNetwork(2, 3, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(singleBottleneckNetwork(2, 1, 1.0, 1.0, 1), PreconditionError);
}

TEST(FromGraph, RoutesSessions) {
  graph::Graph g;
  g.addNodes(4);
  g.addLink(NodeId{0}, NodeId{1}, 10.0);
  g.addLink(NodeId{1}, NodeId{2}, 5.0);
  g.addLink(NodeId{1}, NodeId{3}, 3.0);
  RoutedSessionSpec spec;
  spec.sender = NodeId{0};
  spec.receivers = {NodeId{2}, NodeId{3}};
  spec.name = "S1";
  const Network n = fromGraph(g, {spec});
  EXPECT_EQ(n.linkCount(), 3u);
  EXPECT_EQ(n.sessionCount(), 1u);
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
  EXPECT_EQ(n.session(0).receivers[1].dataPath,
            (std::vector<LinkId>{LinkId{0}, LinkId{2}}));
}

class RandomNetworkSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkSeeds, ProducesValidNetworks) {
  util::Rng rng(GetParam());
  RandomNetworkOptions opts;
  const Network n = randomNetwork(rng, opts);
  EXPECT_EQ(n.sessionCount(), opts.sessions);
  EXPECT_GE(n.receiverCount(), opts.sessions);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    const auto& s = n.session(i);
    EXPECT_GE(s.receivers.size(), 1u);
    EXPECT_LE(s.receivers.size(), opts.maxReceiversPerSession);
    EXPECT_GT(s.maxRate, 0.0);
    for (const auto& r : s.receivers) {
      EXPECT_FALSE(r.dataPath.empty());
      for (graph::LinkId l : r.dataPath) {
        EXPECT_LT(l.value, n.linkCount());
        EXPECT_GE(n.capacity(l), opts.minCapacity);
        EXPECT_LE(n.capacity(l), opts.maxCapacity);
      }
    }
  }
}

TEST_P(RandomNetworkSeeds, Deterministic) {
  util::Rng a(GetParam()), b(GetParam());
  const Network n1 = randomNetwork(a);
  const Network n2 = randomNetwork(b);
  ASSERT_EQ(n1.receiverCount(), n2.receiverCount());
  for (std::size_t i = 0; i < n1.sessionCount(); ++i) {
    ASSERT_EQ(n1.session(i).receivers.size(),
              n2.session(i).receivers.size());
    for (std::size_t k = 0; k < n1.session(i).receivers.size(); ++k) {
      EXPECT_EQ(n1.session(i).receivers[k].dataPath,
                n2.session(i).receivers[k].dataPath);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mcfair::net
