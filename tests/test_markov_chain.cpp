// Tests for the generic Markov chain builder and stationary solvers.
#include <gtest/gtest.h>

#include "markov/chain.hpp"
#include "util/error.hpp"

namespace mcfair::markov {
namespace {

TEST(MarkovChain, TwoStateExact) {
  // 0 -> 1 w.p. 0.1, stays otherwise; 1 -> 0 w.p. 0.5.
  const auto chain = MarkovChain::build(0, [](MarkovChain::State s) {
    std::vector<std::pair<MarkovChain::State, double>> out;
    if (s == 0) {
      out = {{0, 0.9}, {1, 0.1}};
    } else {
      out = {{0, 0.5}, {1, 0.5}};
    }
    return out;
  });
  EXPECT_EQ(chain.stateCount(), 2u);
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-10);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-10);
}

TEST(MarkovChain, DiscoversReachableStatesOnly) {
  // Ring over even numbers 0,2,4 starting from 0; odd states unreachable.
  const auto chain = MarkovChain::build(0, [](MarkovChain::State s) {
    return std::vector<std::pair<MarkovChain::State, double>>{
        {(s + 2) % 6, 1.0}};
  });
  EXPECT_EQ(chain.stateCount(), 3u);
}

TEST(MarkovChain, AggregatesDuplicateSuccessors) {
  const auto chain = MarkovChain::build(0, [](MarkovChain::State) {
    return std::vector<std::pair<MarkovChain::State, double>>{
        {0, 0.3}, {0, 0.7}};
  });
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 1.0, 1e-12);
}

TEST(MarkovChain, RejectsNonStochasticKernel) {
  EXPECT_THROW(MarkovChain::build(0,
                                  [](MarkovChain::State) {
                                    return std::vector<
                                        std::pair<MarkovChain::State,
                                                  double>>{{0, 0.5}};
                                  }),
               ModelError);
}

TEST(MarkovChain, RejectsStateExplosion) {
  EXPECT_THROW(MarkovChain::build(0,
                                  [](MarkovChain::State s) {
                                    return std::vector<
                                        std::pair<MarkovChain::State,
                                                  double>>{{s + 1, 1.0}};
                                  },
                                  /*maxStates=*/100),
               ModelError);
}

TEST(MarkovChain, PowerIterationMatchesDense) {
  // A periodic 3-cycle: dense solve gives uniform; power iteration must
  // agree thanks to damping.
  const auto kernel = [](MarkovChain::State s) {
    return std::vector<std::pair<MarkovChain::State, double>>{
        {(s + 1) % 3, 1.0}};
  };
  const auto chain = MarkovChain::build(0, kernel);
  const auto dense = chain.stationary(/*denseLimit=*/10);
  const auto iterative = chain.stationary(/*denseLimit=*/0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(dense[i], 1.0 / 3.0, 1e-10);
    EXPECT_NEAR(iterative[i], 1.0 / 3.0, 1e-8);
  }
}

TEST(MarkovChain, Expectation) {
  const auto chain = MarkovChain::build(0, [](MarkovChain::State s) {
    std::vector<std::pair<MarkovChain::State, double>> out;
    if (s == 0) {
      out = {{1, 1.0}};
    } else {
      out = {{0, 1.0}};
    }
    return out;
  });
  const auto pi = chain.stationary();
  const double e = chain.expectation(
      pi, [](MarkovChain::State s) { return static_cast<double>(s * 10); });
  EXPECT_NEAR(e, 5.0, 1e-10);
}

TEST(MarkovChain, ExpectationSizeMismatch) {
  const auto chain = MarkovChain::build(0, [](MarkovChain::State) {
    return std::vector<std::pair<MarkovChain::State, double>>{{0, 1.0}};
  });
  EXPECT_THROW(chain.expectation({0.5, 0.5}, [](MarkovChain::State) {
    return 1.0;
  }),
               PreconditionError);
}

}  // namespace
}  // namespace mcfair::markov
