// Tests for the star-topology simulation driver (Section 4 experiments).
#include <gtest/gtest.h>

#include "sim/star.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

StarConfig smallConfig(ProtocolKind kind) {
  StarConfig c;
  c.receivers = 10;
  c.layers = 6;
  c.protocol = kind;
  c.totalPackets = 30000;
  c.seed = 7;
  return c;
}

TEST(StarSim, ZeroLossClimbsToTopAndIsEfficient) {
  StarConfig c = smallConfig(ProtocolKind::kDeterministic);
  c.sharedLossRate = 0.0;
  c.independentLossRate = 0.0;
  const StarResult r = runStarSimulation(c);
  // With no losses every receiver reaches the top layer and stays; all
  // receivers subscribe identically, so redundancy is exactly 1 (every
  // forwarded packet is delivered to the top receiver).
  EXPECT_NEAR(r.meanLevel, 6.0, 0.2);
  EXPECT_DOUBLE_EQ(r.redundancy,
                   static_cast<double>(r.sharedLinkPackets) /
                       static_cast<double>(r.maxDelivered));
  EXPECT_NEAR(r.redundancy, 1.0, 1e-9);
  EXPECT_EQ(r.totalCongestionEvents, 0u);
}

TEST(StarSim, ReproducibleWithSameSeed) {
  const StarConfig c = smallConfig(ProtocolKind::kUncoordinated);
  const StarResult a = runStarSimulation(c);
  const StarResult b = runStarSimulation(c);
  EXPECT_EQ(a.sharedLinkPackets, b.sharedLinkPackets);
  EXPECT_EQ(a.deliveredPackets, b.deliveredPackets);
  EXPECT_DOUBLE_EQ(a.redundancy, b.redundancy);
}

TEST(StarSim, DifferentSeedsDiffer) {
  StarConfig c = smallConfig(ProtocolKind::kUncoordinated);
  c.independentLossRate = 0.02;
  const StarResult a = runStarSimulation(c);
  c.seed = 8;
  const StarResult b = runStarSimulation(c);
  EXPECT_NE(a.sharedLinkPackets, b.sharedLinkPackets);
}

TEST(StarSim, RedundancyAtLeastOne) {
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
        ProtocolKind::kCoordinated}) {
    StarConfig c = smallConfig(kind);
    c.independentLossRate = 0.03;
    c.sharedLossRate = 0.001;
    const StarResult r = runStarSimulation(c);
    EXPECT_GE(r.redundancy, 1.0) << protocolName(kind);
  }
}

TEST(StarSim, SharedOnlyLossKeepsDeterministicReceiversInSync) {
  // With loss only on the shared link, Deterministic receivers see
  // identical loss patterns and behave identically: the forwarded packets
  // equal each receiver's subscription, so redundancy = 1/(1-p) (the
  // delivered denominator loses p of them).
  StarConfig c = smallConfig(ProtocolKind::kDeterministic);
  c.sharedLossRate = 0.02;
  c.independentLossRate = 0.0;
  const StarResult r = runStarSimulation(c);
  EXPECT_NEAR(r.redundancy, 1.0 / 0.98, 0.01);
  // All receivers delivered identical counts.
  for (std::uint64_t d : r.deliveredPackets) {
    EXPECT_EQ(d, r.deliveredPackets.front());
  }
}

TEST(StarSim, IndependentLossDesynchronizesUncoordinated) {
  StarConfig c = smallConfig(ProtocolKind::kUncoordinated);
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.02;
  const StarResult r = runStarSimulation(c);
  EXPECT_GT(r.redundancy, 1.1);
}

TEST(StarSim, CoordinatedBeatsUncoordinated) {
  // The paper's central Section 4 result, at one operating point.
  StarConfig cu = smallConfig(ProtocolKind::kUncoordinated);
  StarConfig cc = smallConfig(ProtocolKind::kCoordinated);
  cu.receivers = cc.receivers = 30;
  cu.sharedLossRate = cc.sharedLossRate = 0.0001;
  cu.independentLossRate = cc.independentLossRate = 0.04;
  const double ru = estimateRedundancy(cu, 5).mean;
  const double rc = estimateRedundancy(cc, 5).mean;
  EXPECT_LT(rc, ru);
}

TEST(StarSim, PerReceiverLossOverride) {
  StarConfig c = smallConfig(ProtocolKind::kDeterministic);
  c.receivers = 2;
  c.perReceiverLossRate = {0.0, 0.2};
  const StarResult r = runStarSimulation(c);
  // The lossless receiver must deliver more.
  EXPECT_GT(r.deliveredPackets[0], r.deliveredPackets[1]);
}

TEST(StarSim, Validation) {
  StarConfig c;
  c.receivers = 0;
  EXPECT_THROW(runStarSimulation(c), PreconditionError);
  c = StarConfig{};
  c.perReceiverLossRate = {0.1};  // size mismatch with 100 receivers
  EXPECT_THROW(runStarSimulation(c), PreconditionError);
  c = StarConfig{};
  c.totalPackets = 0;
  EXPECT_THROW(runStarSimulation(c), PreconditionError);
}

TEST(StarSim, DurationMatchesPacketBudget) {
  // 6 layers => aggregate rate 32 packets per time unit.
  StarConfig c = smallConfig(ProtocolKind::kDeterministic);
  const StarResult r = runStarSimulation(c);
  EXPECT_NEAR(r.duration, 30000.0 / 32.0, 2.0);
}

TEST(EstimateRedundancy, AggregatesRuns) {
  StarConfig c = smallConfig(ProtocolKind::kUncoordinated);
  c.totalPackets = 5000;
  c.independentLossRate = 0.05;
  const RedundancyEstimate e = estimateRedundancy(c, 6);
  EXPECT_EQ(e.runs, 6u);
  EXPECT_GE(e.mean, 1.0);
  EXPECT_GT(e.ci95, 0.0);
  EXPECT_THROW(estimateRedundancy(c, 0), PreconditionError);
}

TEST(StarSim, JoinsBalanceLeavesApproximately) {
  // In steady state each join is eventually matched by a leave; totals
  // should be within the receiver count times the layer count.
  StarConfig c = smallConfig(ProtocolKind::kDeterministic);
  c.independentLossRate = 0.05;
  const StarResult r = runStarSimulation(c);
  const auto slack =
      static_cast<std::uint64_t>(c.receivers * c.layers);
  EXPECT_LE(r.totalJoins, r.totalLeaves + slack);
  EXPECT_LE(r.totalLeaves, r.totalJoins + slack);
}

}  // namespace
}  // namespace mcfair::sim
