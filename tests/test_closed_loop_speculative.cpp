// Tests for the speculative intra-component closed-loop engine: the
// dispatch boundary inside the component-parallel driver (mega-merge
// populations reroute, everything else stays on per-component lanes),
// the zero-rollback guarantee on certified-steady presets, the epoch
// knob, and bit-identity of both the direct entry point and the
// dispatched path against the reference linear-scan driver. The broad
// randomized parity grid lives in test_engine_parity_fuzz.cpp; this
// file pins the deliberate, named behaviours.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "sim/closed_loop.hpp"
#include "sim/scenario.hpp"

namespace mcfair::sim {
namespace {

// Full trajectory comparison — EXPECT_EQ on every observable field the
// engines promise to reproduce bit-identically.
void expectSame(const ClosedLoopResult& got, const ClosedLoopResult& want,
                const std::string& label) {
  EXPECT_EQ(got.measuredRate, want.measuredRate) << label;
  EXPECT_EQ(got.linkThroughput, want.linkThroughput) << label;
  EXPECT_EQ(got.linkDropRate, want.linkDropRate) << label;
  EXPECT_EQ(got.sessionLinkRate, want.sessionLinkRate) << label;
  EXPECT_EQ(got.meanLevel, want.meanLevel) << label;
  EXPECT_EQ(got.binRates, want.binRates) << label;
}

Scenario presetScenario(const char* name, std::size_t sessions) {
  const ScenarioSpec* base = findScenario(name);
  EXPECT_NE(base, nullptr) << name;
  ScenarioSpec spec = *base;
  spec.sessions = sessions;
  return buildScenario(spec);
}

ClosedLoopResult referenceRun(const Scenario& s) {
  ClosedLoopConfig serial = s.config;
  serial.engineThreads = 1;
  return runClosedLoopSimulationReference(s.network, serial);
}

TEST(ClosedLoopSpeculative, CertifiedSteadyPresetsCommitEveryEpoch) {
  // mega-merge: single-layer Deterministic sessions — a receiver that
  // can never change level can never invalidate the frozen prediction.
  // steady-fluid: born-absorbing 4-layer Deterministic sessions on an
  // amply provisioned backbone — drop-free, so no downward moves, and
  // already at the top layer, so no upward ones. Both shapes must
  // commit every epoch with zero rollbacks at any worker count and any
  // epoch grain, while staying bit-identical to the reference.
  for (const char* preset : {"mega-merge", "steady-fluid"}) {
    const Scenario s = presetScenario(preset, 300);
    const auto reference = referenceRun(s);
    for (const int threads : {1, 2, 4, 8}) {
      for (const std::size_t epochs : {std::size_t{0}, std::size_t{8}}) {
        ClosedLoopConfig c = s.config;
        c.speculationThreads = threads;
        c.speculativeEpochs = epochs;
        const auto r = runClosedLoopSimulationSpeculative(s.network, c);
        const std::string label = std::string(preset) + " T=" +
                                  std::to_string(threads) + " E=" +
                                  std::to_string(epochs);
        expectSame(r, reference, label);
        EXPECT_GE(r.speculationEpochs, 1u) << label;
        EXPECT_EQ(r.speculationRollbacks, 0u)
            << label << ": certified-steady presets must never roll back";
      }
    }
  }
}

TEST(ClosedLoopSpeculative, EpochKnobControlsGranularity) {
  // mega-merge has no faults and no session churn, so the epoch count
  // is exactly the uniform grid the knob requests.
  const Scenario s = presetScenario("mega-merge", 300);
  for (const std::size_t epochs : {std::size_t{1}, std::size_t{8},
                                   std::size_t{32}}) {
    ClosedLoopConfig c = s.config;
    c.speculationThreads = 4;
    c.speculativeEpochs = epochs;
    const auto r = runClosedLoopSimulationSpeculative(s.network, c);
    EXPECT_EQ(r.speculationEpochs, epochs);
  }
}

TEST(ClosedLoopSpeculative, ParallelDriverDispatchesAboveTheFloor) {
  // 300 single-component sessions clear the 256-session dispatch floor:
  // the component-parallel driver must reroute to the speculative
  // engine at every multi-worker count and stay bit-identical.
  const Scenario s = presetScenario("mega-merge", 300);
  const auto reference = referenceRun(s);
  for (const int threads : {2, 4, 8}) {
    ClosedLoopConfig c = s.config;
    c.engineThreads = threads;
    const auto r = runClosedLoopSimulationParallel(s.network, c);
    expectSame(r, reference, "dispatch T=" + std::to_string(threads));
    EXPECT_EQ(r.engineComponents, 1u);
    EXPECT_GE(r.speculationEpochs, 1u)
        << "mega-merge above the floor must take the speculative path";
    EXPECT_EQ(r.speculationRollbacks, 0u);
  }
}

TEST(ClosedLoopSpeculative, DispatchRespectsThePopulationFloor) {
  // 200 sessions sit below the 256-session floor: the dominant
  // component is too small for epoch speculation to pay for its
  // snapshot/sort overhead, so the driver must stay on lanes.
  const Scenario s = presetScenario("mega-merge", 200);
  const auto reference = referenceRun(s);
  ClosedLoopConfig c = s.config;
  c.engineThreads = 4;
  const auto r = runClosedLoopSimulationParallel(s.network, c);
  expectSame(r, reference, "below-floor");
  EXPECT_EQ(r.speculationEpochs, 0u)
      << "below the floor the lanes engine must run";
}

TEST(ClosedLoopSpeculative, SpeculationThreadsZeroDisablesDispatch) {
  const Scenario s = presetScenario("mega-merge", 300);
  const auto reference = referenceRun(s);
  ClosedLoopConfig c = s.config;
  c.engineThreads = 4;
  c.speculationThreads = 0;  // explicit opt-out
  const auto r = runClosedLoopSimulationParallel(s.network, c);
  expectSame(r, reference, "opt-out");
  EXPECT_EQ(r.speculationEpochs, 0u)
      << "speculationThreads == 0 must pin the lanes engine";
}

TEST(ClosedLoopSpeculative, MultiComponentPopulationsStayOnLanes) {
  // sharded-bottlenecks splits 512 sessions across 64 disjoint
  // components — no component dominates, so the per-component lanes
  // remain the right engine even though the total population is large.
  const Scenario s = presetScenario("sharded-bottlenecks", 512);
  ClosedLoopConfig c = s.config;
  c.engineThreads = 4;
  const auto r = runClosedLoopSimulationParallel(s.network, c);
  EXPECT_GT(r.engineComponents, 1u);
  EXPECT_EQ(r.speculationEpochs, 0u)
      << "multi-component populations must not dispatch";
}

TEST(ClosedLoopSpeculative, DirectEntryReportsCounters) {
  // The direct entry point runs the speculative engine regardless of
  // population shape and must surface its diagnostics.
  const Scenario s = presetScenario("mega-merge", 64);
  const auto reference = referenceRun(s);
  ClosedLoopConfig c = s.config;
  c.speculationThreads = 2;
  c.speculativeEpochs = 4;
  const auto r = runClosedLoopSimulationSpeculative(s.network, c);
  expectSame(r, reference, "direct-entry");
  EXPECT_EQ(r.speculationEpochs, 4u);
  EXPECT_EQ(r.speculationRollbacks, 0u);
}

}  // namespace
}  // namespace mcfair::sim
