// Tests for the min-unfavorable ordering (Definition 2) and Lemma 2.
#include <gtest/gtest.h>

#include <algorithm>

#include "fairness/ordering.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::fairness {
namespace {

TEST(MinUnfavorable, Reflexive) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_TRUE(minUnfavorable(x, x));
  EXPECT_FALSE(strictlyMinUnfavorable(x, x));
}

TEST(MinUnfavorable, SimpleDominance) {
  EXPECT_TRUE(minUnfavorable({1.0, 2.0}, {1.5, 2.0}));
  EXPECT_FALSE(minUnfavorable({1.5, 2.0}, {1.0, 2.0}));
}

TEST(MinUnfavorable, TradeHigherForLowerMinimum) {
  // X = (1, 10), Y = (2, 3): x2 > y2 but x1 < y1 earlier, so X <=_m Y.
  EXPECT_TRUE(minUnfavorable({1.0, 10.0}, {2.0, 3.0}));
  EXPECT_FALSE(minUnfavorable({2.0, 3.0}, {1.0, 10.0}));
}

TEST(MinUnfavorable, LexicographicIntuition) {
  // Alphabetization analogy from the paper: equal prefixes defer to the
  // first differing entry.
  EXPECT_TRUE(minUnfavorable({1.0, 2.0, 5.0}, {1.0, 3.0, 4.0}));
  EXPECT_FALSE(minUnfavorable({1.0, 3.0, 4.0}, {1.0, 2.0, 5.0}));
}

TEST(MinUnfavorable, RejectsUnsortedOrMismatched) {
  EXPECT_THROW(minUnfavorable({2.0, 1.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(minUnfavorable({1.0}, {1.0, 2.0}), PreconditionError);
}

TEST(CompareMinUnfavorable, Classification) {
  EXPECT_EQ(compareMinUnfavorable({1.0, 2.0}, {1.0, 2.0}),
            MinUnfavorableOrder::kEqual);
  EXPECT_EQ(compareMinUnfavorable({1.0, 2.0}, {1.0, 3.0}),
            MinUnfavorableOrder::kLess);
  EXPECT_EQ(compareMinUnfavorable({1.0, 3.0}, {1.0, 2.0}),
            MinUnfavorableOrder::kGreater);
}

TEST(Lemma2, ThresholdExistsForStrictPairs) {
  // X <_m Y: threshold must exist; reversed: must not.
  const std::vector<double> x{1.0, 2.0, 5.0};
  const std::vector<double> y{1.0, 3.0, 4.0};
  EXPECT_TRUE(lemma2Threshold(x, y).has_value());
  EXPECT_FALSE(lemma2Threshold(y, x).has_value());
  EXPECT_FALSE(lemma2Threshold(x, x).has_value());
}

TEST(Lemma2, ThresholdWitnessesCounts) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{2.0, 3.0};
  const auto x0 = lemma2Threshold(x, y);
  ASSERT_TRUE(x0.has_value());
  EXPECT_GT(countAtOrBelow(x, *x0), countAtOrBelow(y, *x0));
}

TEST(CountAtOrBelow, Basics) {
  const std::vector<double> v{1.0, 2.0, 2.0, 5.0};
  EXPECT_EQ(countAtOrBelow(v, 0.5), 0u);
  EXPECT_EQ(countAtOrBelow(v, 2.0), 3u);
  EXPECT_EQ(countAtOrBelow(v, 9.0), 4u);
}

class OrderingRandom : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> randomOrdered(util::Rng& rng, std::size_t n) const {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(0.0, 10.0);
    std::sort(v.begin(), v.end());
    return v;
  }
};

TEST_P(OrderingRandom, Totality) {
  // For any pair of equal-length ordered vectors, X <=_m Y or Y <=_m X
  // (or both) — stated right after Definition 2.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = randomOrdered(rng, 6);
    const auto y = randomOrdered(rng, 6);
    EXPECT_TRUE(minUnfavorable(x, y, 0.0) || minUnfavorable(y, x, 0.0));
  }
}

TEST_P(OrderingRandom, Antisymmetry) {
  util::Rng rng(GetParam() + 101);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = randomOrdered(rng, 5);
    const auto y = randomOrdered(rng, 5);
    if (minUnfavorable(x, y, 0.0) && minUnfavorable(y, x, 0.0)) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_DOUBLE_EQ(x[i], y[i]);
      }
    }
  }
}

TEST_P(OrderingRandom, Transitivity) {
  util::Rng rng(GetParam() + 202);
  for (int trial = 0; trial < 200; ++trial) {
    auto x = randomOrdered(rng, 4);
    auto y = randomOrdered(rng, 4);
    auto z = randomOrdered(rng, 4);
    // Sort the triple into a chain if possible and verify the implied
    // relation.
    if (minUnfavorable(x, y, 0.0) && minUnfavorable(y, z, 0.0)) {
      EXPECT_TRUE(minUnfavorable(x, z, 0.0));
    }
  }
}

TEST_P(OrderingRandom, Lemma2EquivalenceWithStrictOrdering) {
  // Lemma 2: X <_m Y <=> a threshold exists.
  util::Rng rng(GetParam() + 303);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = randomOrdered(rng, 5);
    const auto y = randomOrdered(rng, 5);
    const bool strict = strictlyMinUnfavorable(x, y, 0.0);
    const bool threshold = lemma2Threshold(x, y).has_value();
    EXPECT_EQ(strict, threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingRandom,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace mcfair::fairness
