// Verifies the serving layer's allocation-free request path: once a
// FairshareService has answered one query per mode (exact + degraded)
// and applied one delta, subsequent capacity/fault deltas and queries
// perform no heap allocation at all — the solvers stay on their warm
// refresh tiers, the latency histograms stream in place, and queryInto
// reuses the caller's buffer.
//
// The check instruments the global allocator for this test binary, the
// same counting-allocator harness as tests/test_maxmin_zero_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/topologies.hpp"
#include "serve/service.hpp"

namespace {
// Atomic: operator new can run on pool worker threads too.
std::atomic<std::size_t> g_allocations{0};

// C11 aligned_alloc requires size to be a multiple of the alignment
// (glibc is lenient, macOS is not).
std::size_t roundUp(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  return (size + a - 1) / a * a;
}
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mcfair::serve {
namespace {

// The MCFAIR_VALIDATE harness re-solves with the (allocating) reference
// oracle; the allocation contract under test is the service's own, so
// this binary pins validation off at every layer regardless of the
// environment. The pinned exact-cost estimate makes the degradation
// decision deterministic: unbudgeted queries answer exact, tiny budgets
// answer degraded, and the huge degradeAfter keeps the mode from
// latching so each query decides independently.
ServiceOptions zeroAllocOptions() {
  ServiceOptions options;
  options.exactCostOverride = 1.0;
  options.degradeAfter = 1000;
  options.solver.validate.enabled = 0;
  options.sampled.solver.validate.enabled = 0;
  options.validate.enabled = 0;
  options.sampled.sampleFraction = 0.5;
  options.sampled.seed = 3;
  return options;
}

TEST(ServiceZeroAlloc, WarmDeltaAndBothQueryModesAllocateNothing) {
  FairshareService service(net::singleBottleneckNetwork(32, 4, 500.0, 1.5),
                           zeroAllocOptions());
  const graph::LinkId l0{0};
  const Delta bump = setCapacityDelta(l0, 450.0);
  const Delta restore = setCapacityDelta(l0, 500.0);
  const Delta fault = faultDelta(
      net::FaultEvent{0.0, net::FaultKind::kDegrade, l0, 0.5});
  const Delta clear = faultDelta(
      net::FaultEvent{0.0, net::FaultKind::kLinkUp, l0, 1.0});

  // Warm-up: one pass through the delta path and each answer mode
  // builds every workspace and histogram marker.
  EXPECT_FALSE(service.query(0.0).degraded);
  ASSERT_EQ(service.applyDelta(bump), ServiceStatus::kOk);
  EXPECT_TRUE(service.query(1e-9).degraded);
  ASSERT_EQ(service.applyDelta(fault), ServiceStatus::kOk);
  EXPECT_FALSE(service.query(0.0).degraded);
  ASSERT_EQ(service.applyDelta(clear), ServiceStatus::kOk);

  // Capacity delta + exact re-solve: zero allocations.
  std::size_t before = g_allocations;
  ASSERT_EQ(service.applyDelta(restore), ServiceStatus::kOk);
  const QueryResult exact = service.query(0.0);
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_FALSE(exact.degraded);

  // Fault delta + degraded re-solve: zero allocations.
  before = g_allocations;
  ASSERT_EQ(service.applyDelta(fault), ServiceStatus::kOk);
  const QueryResult degraded = service.query(1e-9);
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_TRUE(degraded.degraded);

  // Cached (clean-state) answers are free too.
  before = g_allocations;
  (void)service.query(1e-9);
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST(ServiceZeroAlloc, WarmQueryIntoReusesTheCallerBuffer) {
  FairshareService service(net::singleBottleneckNetwork(32, 4, 500.0, 1.5),
                           zeroAllocOptions());
  const Delta bump = setCapacityDelta(graph::LinkId{0}, 420.0);
  const Delta restore = setCapacityDelta(graph::LinkId{0}, 500.0);
  std::vector<double> rates;
  (void)service.queryInto(0.0, rates);  // warm-up sizes the buffer
  ASSERT_EQ(service.applyDelta(bump), ServiceStatus::kOk);
  (void)service.queryInto(1e-9, rates);

  const std::size_t before = g_allocations;
  ASSERT_EQ(service.applyDelta(restore), ServiceStatus::kOk);
  const QueryResult exact = service.queryInto(0.0, rates);
  ASSERT_EQ(service.applyDelta(bump), ServiceStatus::kOk);
  const QueryResult degraded = service.queryInto(1e-9, rates);
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_FALSE(exact.degraded);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(rates.size(), service.network().receiverCount());
}

}  // namespace
}  // namespace mcfair::serve
