// Tests for the loss models.
#include <gtest/gtest.h>

#include "sim/loss.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

TEST(BernoulliLoss, Extremes) {
  util::Rng rng(1);
  BernoulliLoss never(0.0);
  BernoulliLoss always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.lose(rng));
    EXPECT_TRUE(always.lose(rng));
  }
}

TEST(BernoulliLoss, Frequency) {
  util::Rng rng(2);
  BernoulliLoss loss(0.05);
  int losses = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) losses += loss.lose(rng);
  EXPECT_NEAR(static_cast<double>(losses) / n, 0.05, 0.003);
  EXPECT_DOUBLE_EQ(loss.averageLossRate(), 0.05);
}

TEST(BernoulliLoss, Validation) {
  EXPECT_THROW(BernoulliLoss(-0.1), PreconditionError);
  EXPECT_THROW(BernoulliLoss(1.1), PreconditionError);
}

TEST(GilbertElliott, StationaryLossRate) {
  // g->b = 0.01, b->g = 0.1: fraction bad = 0.01/0.11 = 1/11.
  // Loss: good 0.001, bad 0.3 -> avg = (10*0.001 + 1*0.3)/11.
  GilbertElliottLoss loss(0.01, 0.1, 0.001, 0.3);
  const double expected = (10.0 * 0.001 + 0.3) / 11.0;
  EXPECT_NEAR(loss.averageLossRate(), expected, 1e-12);
  util::Rng rng(3);
  int losses = 0;
  const int n = 1000000;
  for (int i = 0; i < n; ++i) losses += loss.lose(rng);
  EXPECT_NEAR(static_cast<double>(losses) / n, expected, 0.005);
}

TEST(GilbertElliott, BurstsAreCorrelated) {
  // Consecutive losses should be far more likely than under Bernoulli
  // with the same average rate.
  GilbertElliottLoss ge(0.001, 0.05, 0.0, 0.5);
  util::Rng rng(4);
  int losses = 0, pairs = 0;
  bool prev = false;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const bool l = ge.lose(rng);
    losses += l;
    pairs += (l && prev);
    prev = l;
  }
  const double rate = static_cast<double>(losses) / n;
  const double pairRate = static_cast<double>(pairs) / n;
  EXPECT_GT(pairRate, 3.0 * rate * rate);  // strongly super-Bernoulli
}

TEST(GilbertElliott, Validation) {
  EXPECT_THROW(GilbertElliottLoss(-0.1, 0.5, 0.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 1.5, 0.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.5, -1.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.5, 0.0, 1.5), PreconditionError);
}

TEST(GilbertElliott, DegenerateNoTransitions) {
  GilbertElliottLoss stuck(0.0, 0.0, 0.2, 0.9);
  EXPECT_DOUBLE_EQ(stuck.averageLossRate(), 0.2);  // stays in good state
  EXPECT_FALSE(stuck.inBadState());
}

}  // namespace
}  // namespace mcfair::sim
