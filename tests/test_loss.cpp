// Tests for the loss models.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/loss.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {
namespace {

TEST(BernoulliLoss, Extremes) {
  util::Rng rng(1);
  BernoulliLoss never(0.0);
  BernoulliLoss always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.lose(rng));
    EXPECT_TRUE(always.lose(rng));
  }
}

TEST(BernoulliLoss, Frequency) {
  util::Rng rng(2);
  BernoulliLoss loss(0.05);
  int losses = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) losses += loss.lose(rng);
  EXPECT_NEAR(static_cast<double>(losses) / n, 0.05, 0.003);
  EXPECT_DOUBLE_EQ(loss.averageLossRate(), 0.05);
}

TEST(BernoulliLoss, Validation) {
  EXPECT_THROW(BernoulliLoss(-0.1), PreconditionError);
  EXPECT_THROW(BernoulliLoss(1.1), PreconditionError);
}

TEST(GilbertElliott, StationaryLossRate) {
  // g->b = 0.01, b->g = 0.1: fraction bad = 0.01/0.11 = 1/11.
  // Loss: good 0.001, bad 0.3 -> avg = (10*0.001 + 1*0.3)/11.
  GilbertElliottLoss loss(0.01, 0.1, 0.001, 0.3);
  const double expected = (10.0 * 0.001 + 0.3) / 11.0;
  EXPECT_NEAR(loss.averageLossRate(), expected, 1e-12);
  util::Rng rng(3);
  int losses = 0;
  const int n = 1000000;
  for (int i = 0; i < n; ++i) losses += loss.lose(rng);
  EXPECT_NEAR(static_cast<double>(losses) / n, expected, 0.005);
}

TEST(GilbertElliott, BurstsAreCorrelated) {
  // Consecutive losses should be far more likely than under Bernoulli
  // with the same average rate.
  GilbertElliottLoss ge(0.001, 0.05, 0.0, 0.5);
  util::Rng rng(4);
  int losses = 0, pairs = 0;
  bool prev = false;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const bool l = ge.lose(rng);
    losses += l;
    pairs += (l && prev);
    prev = l;
  }
  const double rate = static_cast<double>(losses) / n;
  const double pairRate = static_cast<double>(pairs) / n;
  EXPECT_GT(pairRate, 3.0 * rate * rate);  // strongly super-Bernoulli
}

TEST(GilbertElliott, Validation) {
  EXPECT_THROW(GilbertElliottLoss(-0.1, 0.5, 0.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 1.5, 0.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.5, -1.0, 0.5), PreconditionError);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.5, 0.0, 1.5), PreconditionError);
}

TEST(GilbertElliott, DegenerateNoTransitions) {
  GilbertElliottLoss stuck(0.0, 0.0, 0.2, 0.9);
  EXPECT_DOUBLE_EQ(stuck.averageLossRate(), 0.2);  // stays in good state
  EXPECT_FALSE(stuck.inBadState());
}

TEST(SplitLossStreams, MatchesManualSplitChain) {
  // The layout contract: exactly one split() per link, in ascending
  // link-id order, advancing the root exactly as the manual chain does.
  util::Rng root(97);
  util::Rng manualRoot(97);
  auto streams = splitLossStreams(root, 4);
  ASSERT_EQ(streams.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    util::Rng manual = manualRoot.split();
    for (int d = 0; d < 16; ++d) {
      EXPECT_EQ(streams[j](), manual()) << "stream " << j << " draw " << d;
    }
  }
  // Root state after the helper equals the manual chain's.
  EXPECT_EQ(root(), manualRoot());
}

TEST(SplitLossStreams, StreamsAreIndependentOfInterleaving) {
  // A link's n-th draw is a function of the link and n only — drawing
  // the streams in any interleaved order yields the same per-link
  // sequences. This is the property that makes exogenous loss immune to
  // cross-component packet interleaving in the parallel engine.
  util::Rng rootA(1234);
  util::Rng rootB(1234);
  auto a = splitLossStreams(rootA, 3);
  auto b = splitLossStreams(rootB, 3);
  std::vector<std::vector<std::uint64_t>> drawsA(3);
  std::vector<std::vector<std::uint64_t>> drawsB(3);
  // A: round-robin. B: link-major.
  for (int d = 0; d < 8; ++d) {
    for (std::size_t j = 0; j < 3; ++j) drawsA[j].push_back(a[j]());
  }
  for (std::size_t j = 0; j < 3; ++j) {
    for (int d = 0; d < 8; ++d) drawsB[j].push_back(b[j]());
  }
  EXPECT_EQ(drawsA, drawsB);
}

TEST(SplitLossStreams, PinnedHeadValues) {
  // Hardcoded raw xoshiro256** outputs: the per-link loss streams are a
  // reproducibility surface (equal seeds must replay equal experiments
  // across library versions), so any change to the split layout or the
  // generator shows up here as a hard failure.
  util::Rng root(0x5eed);
  auto streams = splitLossStreams(root, 3);
  ASSERT_EQ(streams.size(), 3u);
  const std::uint64_t expected[3][2] = {
      {0x27b545844ff46746ull, 0xa773de604056b314ull},
      {0x41f60c0a158fe7c0ull, 0xf005ff18d966fbc6ull},
      {0x056e297ab87b362cull, 0x3407a98be0392a42ull},
  };
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(streams[j](), expected[j][0]) << "stream " << j;
    EXPECT_EQ(streams[j](), expected[j][1]) << "stream " << j;
  }
  EXPECT_EQ(root(), 0xf985e1f2fb897b03ull);
}

TEST(SplitLossStreams, EmptyNetwork) {
  util::Rng root(5);
  EXPECT_TRUE(splitLossStreams(root, 0).empty());
}

}  // namespace
}  // namespace mcfair::sim
