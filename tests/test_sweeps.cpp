// Parameterized grid sweeps: solver invariants across network-shape
// space, and simulator invariants across the protocol x loss grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fairness/maxmin.hpp"
#include "fairness/verify.hpp"
#include "markov/protocol_chain.hpp"
#include "net/topologies.hpp"
#include "sim/star.hpp"

namespace mcfair {
namespace {

// ---- Solver sweep over (seed, sessions, single-rate fraction) ----------

using SolverCase = std::tuple<std::uint64_t, std::size_t, double>;

class SolverSweep : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverSweep, InvariantsHold) {
  const auto [seed, sessions, singleProb] = GetParam();
  util::Rng rng(seed);
  net::RandomNetworkOptions opts;
  opts.sessions = sessions;
  opts.nodes = 8 + sessions * 2;
  opts.extraLinks = sessions * 2;
  opts.singleRateProbability = singleProb;
  opts.finiteMaxRateProbability = 0.3;
  const net::Network n = net::randomNetwork(rng, opts);
  const auto result = fairness::solveMaxMinFair(n);

  // Feasible, sigma-respecting, single-rate-uniform.
  EXPECT_TRUE(fairness::isFeasible(n, result.allocation, 1e-6));
  // Certified max-min fair by the independent Definition-1 verifier.
  fairness::VerifyOptions vo;
  vo.delta = 1e-4;
  vo.tol = 1e-7;
  EXPECT_TRUE(fairness::isMaxMinFair(n, result.allocation, vo));
  // Rounds bounded by receiver count + 2.
  EXPECT_LE(result.rounds, n.receiverCount() + 2);
  // Usage consistent: recomputing from the allocation matches.
  const auto usage = fairness::computeLinkUsage(n, result.allocation);
  for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
    EXPECT_NEAR(usage.linkRate[j], result.usage.linkRate[j], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<std::size_t>(2, 5, 9),
                       ::testing::Values(0.0, 0.5, 1.0)));

// ---- Star-simulator sweep over (protocol, shared loss, fanout loss) ----

using StarCase = std::tuple<sim::ProtocolKind, double, double>;

class StarSweep : public ::testing::TestWithParam<StarCase> {};

TEST_P(StarSweep, InvariantsHold) {
  const auto [kind, shared, fanout] = GetParam();
  sim::StarConfig c;
  c.receivers = 15;
  c.layers = 6;
  c.protocol = kind;
  c.sharedLossRate = shared;
  c.independentLossRate = fanout;
  c.totalPackets = 30000;
  c.seed = 77;
  const sim::StarResult r = sim::runStarSimulation(c);

  EXPECT_GE(r.redundancy, 1.0 - 1e-12);
  // Redundancy cannot exceed (aggregate rate / layer-1 delivered rate)
  // scaled by loss; a crude but guaranteed bound: 2^(layers-1) / (1-q).
  const double q = shared + (1.0 - shared) * fanout;
  EXPECT_LE(r.redundancy, std::pow(2.0, 5.0) / (1.0 - q) + 1e-9);
  EXPECT_GE(r.meanLevel, 1.0);
  EXPECT_LE(r.meanLevel, 6.0);
  EXPECT_LE(r.maxDelivered, c.totalPackets);
  EXPECT_LE(r.sharedLinkPackets, c.totalPackets);
  // Loss accounting: congestion events happen only on subscribed
  // packets.
  EXPECT_LE(r.totalCongestionEvents,
            static_cast<std::uint64_t>(c.receivers) * c.totalPackets);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StarSweep,
    ::testing::Combine(::testing::Values(sim::ProtocolKind::kUncoordinated,
                                         sim::ProtocolKind::kDeterministic,
                                         sim::ProtocolKind::kCoordinated,
                                         sim::ProtocolKind::kActiveRouter),
                       ::testing::Values(0.0001, 0.02),
                       ::testing::Values(0.0, 0.03, 0.08)));

// ---- Markov-chain sweep: redundancy monotone in independent loss -------

class ChainSweep
    : public ::testing::TestWithParam<sim::ProtocolKind> {};

TEST_P(ChainSweep, RedundancyMonotoneInIndependentLoss) {
  double prev = 0.0;
  for (const double p : {0.005, 0.02, 0.05, 0.09}) {
    markov::ProtocolChainConfig c;
    c.layers = GetParam() == sim::ProtocolKind::kDeterministic ? 3 : 4;
    c.protocol = GetParam();
    c.sharedLoss = 0.0001;
    c.receiverLoss = {p, p};
    const double red = markov::analyzeProtocolChain(c).redundancy;
    EXPECT_GT(red, prev) << "p = " << p;
    prev = red;
  }
}

TEST_P(ChainSweep, SubscriptionFallsWithLoss) {
  double prev = 1e18;
  for (const double p : {0.01, 0.05, 0.15}) {
    markov::ProtocolChainConfig c;
    c.layers = GetParam() == sim::ProtocolKind::kDeterministic ? 3 : 4;
    c.protocol = GetParam();
    c.sharedLoss = 0.0001;
    c.receiverLoss = {p, p};
    const auto a = markov::analyzeProtocolChain(c);
    EXPECT_LT(a.subscriptionRate[0], prev);
    prev = a.subscriptionRate[0];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ChainSweep,
    ::testing::Values(sim::ProtocolKind::kUncoordinated,
                      sim::ProtocolKind::kDeterministic,
                      sim::ProtocolKind::kCoordinated));

}  // namespace
}  // namespace mcfair
