// Trajectory-parity tests for the event-driven closed-loop session
// engine: runClosedLoopSimulation (EventQueue merge, O(log sessions) per
// packet) must reproduce runClosedLoopSimulationReference (linear scan,
// the original driver) EXACTLY — both drivers share the per-packet
// machinery, so any divergence means the merge orders disagree.
//
// Exact equality (EXPECT_EQ on the full result, not EXPECT_NEAR) is the
// right bar: every layer stream carries a random phase offset, so packet
// times are distinct across sessions almost surely and the merge order
// is unique. A tie would surface here as a hard failure.
#include <gtest/gtest.h>

#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {
namespace {

void expectIdentical(const ClosedLoopResult& a, const ClosedLoopResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.measuredRate, b.measuredRate) << label;
  EXPECT_EQ(a.linkThroughput, b.linkThroughput) << label;
  EXPECT_EQ(a.linkDropRate, b.linkDropRate) << label;
  EXPECT_EQ(a.sessionLinkRate, b.sessionLinkRate) << label;
  EXPECT_EQ(a.meanLevel, b.meanLevel) << label;
  EXPECT_EQ(a.binRates, b.binRates) << label;
  ASSERT_EQ(a.fairEpochs.size(), b.fairEpochs.size()) << label;
  for (std::size_t e = 0; e < a.fairEpochs.size(); ++e) {
    EXPECT_EQ(a.fairEpochs[e].begin, b.fairEpochs[e].begin) << label;
    EXPECT_EQ(a.fairEpochs[e].end, b.fairEpochs[e].end) << label;
    EXPECT_EQ(a.fairEpochs[e].sessions, b.fairEpochs[e].sessions) << label;
    EXPECT_EQ(a.fairEpochs[e].fairRate, b.fairEpochs[e].fairRate) << label;
  }
}

void expectParity(const net::Network& n, const ClosedLoopConfig& c,
                  const std::string& label) {
  const auto reference = runClosedLoopSimulationReference(n, c);
  expectIdentical(runClosedLoopSimulation(n, c), reference, label);
  // The fluid engine must agree whether or not its fast-forward
  // certificate engages on this configuration: engaged means the
  // closed-form advance reproduced per-packet execution exactly, not
  // engaged means it WAS per-packet execution.
  expectIdentical(runClosedLoopSimulationFluid(n, c), reference,
                  label + " [fluid]");
}

TEST(ClosedLoopParity, RandomizedNetworks) {
  // 24 randomized routed topologies with randomized protocol mixes,
  // layer counts, lifetimes, bin timelines, and exogenous loss.
  constexpr ProtocolKind kKinds[] = {ProtocolKind::kUncoordinated,
                                     ProtocolKind::kDeterministic,
                                     ProtocolKind::kCoordinated};
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    util::Rng rng(seed * 977);
    net::RandomNetworkOptions opts;
    opts.sessions = 1 + seed % 5;
    opts.maxReceiversPerSession = 3;
    const net::Network n = net::randomNetwork(rng, opts);

    ClosedLoopConfig c;
    c.duration = 200.0;
    c.warmup = 50.0;
    c.seed = seed;
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      ClosedLoopSessionConfig sc;
      sc.protocol = kKinds[rng.below(3)];
      sc.layers = 2 + rng.below(4);
      if (rng.bernoulli(0.3)) {
        sc.startTime = rng.uniform(0.0, 80.0);
        sc.stopTime = sc.startTime + rng.uniform(60.0, 150.0);
      }
      c.sessions.push_back(sc);
    }
    if (seed % 3 == 0) c.rateBinWidth = 40.0;
    if (seed % 4 == 0) {
      c.linkLoss = [](graph::LinkId) -> std::unique_ptr<LossModel> {
        return std::make_unique<BernoulliLoss>(0.03);
      };
    }
    expectParity(n, c, "seed " + std::to_string(seed));
  }
}

TEST(ClosedLoopParity, PaperTopologyWithFairEpochs) {
  const net::Network n = net::fig2Network(true);
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1});
  c.sessions[1].startTime = 100.0;
  c.sessions[1].stopTime = 400.0;
  c.duration = 600.0;
  c.warmup = 50.0;
  c.computeFairEpochs = true;
  c.seed = 7;
  expectParity(n, c, "fig2 + epochs");
}

TEST(ClosedLoopParity, SingleSession) {
  net::Network n;
  const auto l = n.addLink(3.0);
  n.addSession(net::makeUnicastSession({l}));
  ClosedLoopConfig c;
  c.sessions = {{ProtocolKind::kDeterministic, 4, 1}};
  c.duration = 500.0;
  c.warmup = 100.0;
  c.seed = 11;
  expectParity(n, c, "single session");
}

TEST(ClosedLoopParity, LargePopulationViaScenario) {
  // A mid-sized population from the scenario engine: exercises the heap
  // at a size where a merge-order bug could not hide behind one or two
  // sessions' worth of slack.
  const ScenarioSpec* base = findScenario("mega-merge");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 500;
  spec.duration = 8.0;
  spec.warmup = 2.0;
  const Scenario s = buildScenario(spec);
  expectIdentical(runScenario(s),
                  runClosedLoopSimulationReference(s.network, s.config),
                  "mega-merge N=500");
  expectIdentical(runClosedLoopSimulationFluid(s.network, s.config),
                  runClosedLoopSimulationReference(s.network, s.config),
                  "mega-merge N=500 [fluid]");
}

TEST(ClosedLoopParity, ChurnScenarioWithBurstyLoss) {
  const ScenarioSpec* base = findScenario("churn");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 6;
  spec.duration = 400.0;
  spec.arrivalWindow = 200.0;
  spec.meanLifetime = 150.0;
  spec.loss.kind = LossSpec::Kind::kGilbertElliott;
  spec.loss.rate = 0.02;
  const Scenario s = buildScenario(spec);
  expectIdentical(runScenario(s),
                  runClosedLoopSimulationReference(s.network, s.config),
                  "churn + GE loss");
}

}  // namespace
}  // namespace mcfair::sim
