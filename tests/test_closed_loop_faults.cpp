// Fault-injection acceptance tests for the closed-loop engines: a
// deterministic FaultSchedule (down -> degrade -> repair) must leave the
// reference, event-driven and fluid engines bit-identical — same
// trajectories, bins and fair epochs, compared with EXPECT_EQ — on tree
// and routed-mesh topologies, with the fluid engine provably
// fast-forwarding both before the fault and again after recovery, and
// receivers on severed paths degrading to their surviving layers
// instead of crashing.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "sim/scenario.hpp"

namespace mcfair::sim {
namespace {

void expectIdentical(const ClosedLoopResult& a, const ClosedLoopResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.measuredRate, b.measuredRate) << label;
  EXPECT_EQ(a.linkThroughput, b.linkThroughput) << label;
  EXPECT_EQ(a.linkDropRate, b.linkDropRate) << label;
  EXPECT_EQ(a.sessionLinkRate, b.sessionLinkRate) << label;
  EXPECT_EQ(a.meanLevel, b.meanLevel) << label;
  EXPECT_EQ(a.binRates, b.binRates) << label;
}

void expectSameEpochs(const std::vector<FairEpoch>& a,
                      const std::vector<FairEpoch>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].begin, b[e].begin) << label << " epoch " << e;
    EXPECT_EQ(a[e].end, b[e].end) << label << " epoch " << e;
    EXPECT_EQ(a[e].sessions, b[e].sessions) << label << " epoch " << e;
    EXPECT_EQ(a[e].fairRate, b[e].fairRate) << label << " epoch " << e;
  }
}

// The pinned acceptance scenario: a BA m=2 routed mesh with enough
// headroom that the fluid certificate holds in steady state, hit by
// down@700 -> degrade 0.5@900 -> repair@1100 on a link the routed
// paths actually use.
TEST(ClosedLoopFaults, PinnedScheduleKeepsAllThreeEnginesIdentical) {
  ScenarioSpec spec;
  spec.name = "fault-parity";
  spec.sessions = 12;
  spec.receiversPerSession = 2;
  spec.topology = ScenarioSpec::Topology::kScaleFreeGraph;
  spec.backboneNodes = 24;
  spec.meshEdgesPerNode = 2;
  // Deterministic 4-layer sessions (aggregate rate 8) against capacity
  // 12 * crossing: ample headroom, so the population is drop-free and
  // absorbing once every receiver has climbed to the top layer.
  spec.backbonePerSession = 12.0;
  spec.mix = {SessionMix{{ProtocolKind::kDeterministic, 4, 1},
                         net::SessionType::kMultiRate, 1.0}};
  spec.duration = 2000.0;
  spec.warmup = 100.0;
  spec.rateBinWidth = 101.0;
  spec.computeFairEpochs = true;
  spec.seed = 7;
  Scenario s = buildScenario(spec);

  // Fault a backbone link some session actually crosses.
  const graph::LinkId victim =
      s.network.session(0).receivers[0].dataPath.front();
  s.config.faults.events = {
      {700.0, net::FaultKind::kLinkDown, victim},
      {900.0, net::FaultKind::kDegrade, victim, 0.5},
      {1100.0, net::FaultKind::kLinkUp, victim},
  };

  const auto ref = runClosedLoopSimulationReference(s.network, s.config);
  const auto event = runClosedLoopSimulation(s.network, s.config);
  const auto fluid = runClosedLoopSimulationFluid(s.network, s.config);

  expectIdentical(event, ref, "event vs reference");
  expectIdentical(fluid, event, "fluid vs event");
  expectSameEpochs(event.fairEpochs, ref.fairEpochs, "event vs reference");
  expectSameEpochs(fluid.fairEpochs, event.fairEpochs, "fluid vs event");

  // The fair reference splits at every fault boundary.
  ASSERT_FALSE(event.fairEpochs.empty());
  bool boundaryAt700 = false;
  for (const FairEpoch& e : event.fairEpochs) {
    if (e.begin == 700.0) boundaryAt700 = true;
  }
  EXPECT_TRUE(boundaryAt700);

  // The fluid engine fast-forwarded up to the fault, ran per-packet
  // through the disruption, and engaged AGAIN after repair.
  EXPECT_GT(fluid.fluidTime, 0.0);
  EXPECT_GT(fluid.fluidPackets, 0u);
  ASSERT_EQ(fluid.fluidIntervals.size(), 2u)
      << "expected one interval before the fault and one after repair";
  EXPECT_LT(fluid.fluidIntervals[0].begin, 700.0);
  EXPECT_EQ(fluid.fluidIntervals[0].end, 700.0)
      << "the first fast-forward must stop exactly at the fault";
  EXPECT_GT(fluid.fluidIntervals[1].begin, 1100.0);
  EXPECT_EQ(fluid.fluidIntervals[1].end, 2000.0);

  // The per-packet engines report no analytic coverage.
  EXPECT_EQ(ref.fluidTime, 0.0);
  EXPECT_EQ(ref.fluidIntervals.size(), 0u);
}

// A receiver whose only path crosses a dead link sees every packet
// dropped, degrades to layer 1, and the run completes identically in
// all three engines; the fair-epoch oracle zeroes the severed receiver
// for the outage epochs.
TEST(ClosedLoopFaults, SeveredReceiverDegradesToSurvivingLayers) {
  net::Network n;
  const auto backbone = n.addLink(64.0);
  const auto tail = n.addLink(64.0);
  net::Session session;
  session.receivers.push_back(net::makeReceiver({backbone}, "safe"));
  session.receivers.push_back(net::makeReceiver({backbone, tail}, "cut"));
  n.addSession(std::move(session));
  n.addSession(net::makeUnicastSession({backbone}));

  ClosedLoopConfig c;
  c.sessions.assign(
      2, ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 4, 1});
  c.duration = 1000.0;
  c.warmup = 0.0;
  c.rateBinWidth = 100.0;
  c.computeFairEpochs = true;
  c.seed = 3;
  c.faults.events = {{500.0, net::FaultKind::kLinkDown, tail}};

  const auto ref = runClosedLoopSimulationReference(n, c);
  const auto event = runClosedLoopSimulation(n, c);
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  expectIdentical(event, ref, "event vs reference");
  expectIdentical(fluid, event, "fluid vs event");
  expectSameEpochs(event.fairEpochs, ref.fairEpochs, "epochs");

  // After t = 500 the cut receiver gets nothing; the safe receiver and
  // the competing session keep their bins.
  const auto& cutBins = event.binRates[0][1];
  const auto& safeBins = event.binRates[0][0];
  ASSERT_EQ(cutBins.size(), 10u);
  for (std::size_t b = 5; b < 10; ++b) {
    EXPECT_EQ(cutBins[b], 0.0) << "bin " << b;
    EXPECT_GT(safeBins[b], 0.0) << "bin " << b;
  }

  // Fair epochs: the severed receiver's reference rate is 0 during the
  // outage, the surviving receivers' rates stay positive.
  bool sawOutageEpoch = false;
  for (const FairEpoch& e : event.fairEpochs) {
    if (e.begin < 500.0) continue;
    sawOutageEpoch = true;
    ASSERT_EQ(e.fairRate.size(), 2u);
    EXPECT_EQ(e.fairRate[0][1], 0.0) << "severed receiver";
    EXPECT_GT(e.fairRate[0][0], 0.0);
    EXPECT_GT(e.fairRate[1][0], 0.0);
  }
  EXPECT_TRUE(sawOutageEpoch);
}

// Edge cases of the fault-before-packet ordering: an event at t = 0
// precedes every packet, and events at/after the duration never fire —
// identically in all three engines.
TEST(ClosedLoopFaults, BoundaryFaultTimesStayInParity) {
  net::Network n;
  const auto a = n.addLink(24.0);
  const auto b = n.addLink(24.0);
  n.addSession(net::makeUnicastSession({a}));
  n.addSession(net::makeUnicastSession({a, b}));

  ClosedLoopConfig c;
  c.sessions.assign(
      2, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 1});
  c.duration = 400.0;
  c.warmup = 50.0;
  c.seed = 11;
  c.faults.events = {
      {0.0, net::FaultKind::kDegrade, b, 0.25},
      {150.0, net::FaultKind::kLinkUp, b},
      {400.0, net::FaultKind::kLinkDown, a},   // at the horizon: no effect
      {5000.0, net::FaultKind::kLinkDown, a},  // beyond it: no effect
  };

  const auto ref = runClosedLoopSimulationReference(n, c);
  const auto event = runClosedLoopSimulation(n, c);
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  expectIdentical(event, ref, "event vs reference");
  expectIdentical(fluid, event, "fluid vs event");
  for (const auto& perSession : event.measuredRate) {
    for (const double r : perSession) EXPECT_GT(r, 0.0);
  }
}

// A seeded random MTBF/MTTR process produces a dense schedule; the
// engines must stay in lockstep through arbitrary churn, and the
// schedule itself must be reproducible from its seed.
TEST(ClosedLoopFaults, RandomChurnKeepsEnginesInParity) {
  net::Network n;
  const auto backbone = n.addLink(48.0);
  for (int i = 0; i < 4; ++i) {
    n.addSession(net::makeUnicastSession({backbone, n.addLink(16.0)}));
  }

  net::RandomFaultOptions opts;
  opts.mtbf = 120.0;
  opts.mttr = 40.0;
  opts.degradeFactor = 0.5;  // partial failures
  const auto schedule =
      net::randomFaultSchedule(n.linkCount(), 600.0, opts, 42);
  const auto again =
      net::randomFaultSchedule(n.linkCount(), 600.0, opts, 42);
  ASSERT_EQ(schedule.events.size(), again.events.size());
  EXPECT_FALSE(schedule.events.empty());

  ClosedLoopConfig c;
  c.sessions.assign(
      4, ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 4, 1});
  c.duration = 600.0;
  c.warmup = 100.0;
  c.rateBinWidth = 60.0;
  c.seed = 5;
  c.faults = schedule;

  const auto ref = runClosedLoopSimulationReference(n, c);
  const auto event = runClosedLoopSimulation(n, c);
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  expectIdentical(event, ref, "event vs reference");
  expectIdentical(fluid, event, "fluid vs event");
}

// The paranoid validator must pass on a faulted run (conservation and
// windowed-bucket cross-checks hold), and its flags must be overridable
// in code regardless of the environment.
TEST(ClosedLoopFaults, ValidateModeAcceptsFaultedRuns) {
  net::Network n;
  const auto backbone = n.addLink(64.0);
  for (int i = 0; i < 3; ++i) {
    n.addSession(net::makeUnicastSession({backbone}));
  }
  ClosedLoopConfig c;
  c.sessions.assign(
      3, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1});
  c.duration = 800.0;
  c.warmup = 100.0;
  c.seed = 13;
  c.faults.events = {
      {300.0, net::FaultKind::kDegrade, backbone, 0.75},
      {500.0, net::FaultKind::kLinkUp, backbone},
  };
  c.validate.enabled = 1;

  ClosedLoopConfig plain = c;
  plain.validate.enabled = 0;
  const auto checked = runClosedLoopSimulationFluid(n, c);
  const auto unchecked = runClosedLoopSimulationFluid(n, plain);
  expectIdentical(checked, unchecked, "validate must not change results");
  expectIdentical(checked, runClosedLoopSimulation(n, c), "vs event");
}

}  // namespace
}  // namespace mcfair::sim
