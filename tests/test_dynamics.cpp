// Tests for session lifetimes and rate timelines in the closed loop.
#include <gtest/gtest.h>

#include "sim/closed_loop.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

net::Network sharedLink(double capacity, std::size_t sessions) {
  net::Network n;
  const auto l = n.addLink(capacity);
  for (std::size_t i = 0; i < sessions; ++i) {
    n.addSession(net::makeUnicastSession({l}));
  }
  return n;
}

TEST(Dynamics, SilentBeforeStartAndAfterStop) {
  const net::Network n = sharedLink(100.0, 1);
  ClosedLoopConfig c;
  c.sessions = {
      ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1,
                              /*start=*/500.0, /*stop=*/1500.0}};
  c.duration = 2000.0;
  c.warmup = 0.0;
  c.rateBinWidth = 250.0;
  const auto r = runClosedLoopSimulation(n, c);
  const auto& bins = r.binRates[0][0];
  ASSERT_EQ(bins.size(), 8u);
  EXPECT_DOUBLE_EQ(bins[0], 0.0);  // [0,250): before start
  EXPECT_DOUBLE_EQ(bins[1], 0.0);  // [250,500)
  EXPECT_GT(bins[3], 1.0);         // active
  EXPECT_DOUBLE_EQ(bins[7], 0.0);  // after stop
}

TEST(Dynamics, DepartureFreesBandwidth) {
  // B stops at t=1500; A's post-departure rate must exceed its
  // contention-period rate.
  const net::Network n = sharedLink(12.0, 2);
  ClosedLoopConfig c;
  c.sessions = {
      ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 5, 1},
      ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 5, 1, 0.0,
                              1500.0}};
  c.duration = 3000.0;
  c.warmup = 0.0;
  c.rateBinWidth = 500.0;
  double contended = 0.0, alone = 0.0;
  const int seeds = 5;
  for (int s = 1; s <= seeds; ++s) {
    c.seed = static_cast<std::uint64_t>(s);
    const auto r = runClosedLoopSimulation(n, c);
    const auto& bins = r.binRates[0][0];
    contended += (bins[1] + bins[2]) / 2.0;  // [500,1500)
    alone += (bins[4] + bins[5]) / 2.0;      // [2000,3000)
  }
  EXPECT_GT(alone / seeds, contended / seeds + 1.0);
}

TEST(Dynamics, ArrivalForcesBackoff) {
  const net::Network n = sharedLink(12.0, 2);
  ClosedLoopConfig c;
  c.sessions = {
      ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1},
      ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1, 1500.0,
                              1e18}};
  c.duration = 3000.0;
  c.warmup = 0.0;
  c.rateBinWidth = 500.0;
  double before = 0.0, after = 0.0;
  const int seeds = 5;
  for (int s = 1; s <= seeds; ++s) {
    c.seed = static_cast<std::uint64_t>(s);
    const auto r = runClosedLoopSimulation(n, c);
    const auto& bins = r.binRates[0][0];
    before += (bins[1] + bins[2]) / 2.0;
    after += (bins[4] + bins[5]) / 2.0;
  }
  EXPECT_LT(after / seeds, before / seeds - 1.0);
}

TEST(Dynamics, BinRatesConsistentWithWindowAverage) {
  const net::Network n = sharedLink(6.0, 1);
  ClosedLoopConfig c;
  c.sessions = {ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1}};
  c.duration = 2000.0;
  c.warmup = 1000.0;
  c.rateBinWidth = 100.0;
  const auto r = runClosedLoopSimulation(n, c);
  // Mean of the bins covering [warmup, duration) equals measuredRate.
  const auto& bins = r.binRates[0][0];
  double sum = 0.0;
  for (std::size_t b = 10; b < 20; ++b) sum += bins[b];
  EXPECT_NEAR(sum / 10.0, r.measuredRate[0][0], 0.05);
}

TEST(Dynamics, NoBinsWhenWidthZero) {
  const net::Network n = sharedLink(6.0, 1);
  ClosedLoopConfig c;
  c.sessions = {ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1}};
  c.duration = 500.0;
  c.warmup = 100.0;
  const auto r = runClosedLoopSimulation(n, c);
  EXPECT_TRUE(r.binRates.empty());
}

TEST(Dynamics, Validation) {
  const net::Network n = sharedLink(6.0, 1);
  ClosedLoopConfig c;
  c.sessions = {ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1,
                                        /*start=*/10.0, /*stop=*/5.0}};
  c.duration = 500.0;
  c.warmup = 100.0;
  EXPECT_THROW(runClosedLoopSimulation(n, c), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
