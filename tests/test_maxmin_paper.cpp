// The paper's worked examples, solved exactly (Figures 1-4).
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using net::ReceiverRef;

TEST(Fig1, MultiRateMaxMinAllocation) {
  const net::Network n = net::fig1Network();
  const auto result = solveMaxMinFair(n);
  const auto& a = result.allocation;
  EXPECT_NEAR(a.rate({0, 0}), 1.0, 1e-9);  // r1,1
  EXPECT_NEAR(a.rate({1, 0}), 1.0, 1e-9);  // r2,1
  EXPECT_NEAR(a.rate({1, 1}), 2.0, 1e-9);  // r2,2
  EXPECT_NEAR(a.rate({2, 0}), 1.0, 1e-9);  // r3,1
  EXPECT_NEAR(a.rate({2, 1}), 2.0, 1e-9);  // r3,2
}

TEST(Fig1, SessionLinkRatesMatchFigure) {
  const net::Network n = net::fig1Network();
  const auto result = solveMaxMinFair(n);
  const auto& u = result.usage.sessionLinkRate;
  // l1: (0:0:2), l2: (1:2:0), l3: (0:2:2), l4: (1:1:1).
  EXPECT_NEAR(u[2][0], 2.0, 1e-9);
  EXPECT_NEAR(u[0][1], 1.0, 1e-9);
  EXPECT_NEAR(u[1][1], 2.0, 1e-9);
  EXPECT_NEAR(u[1][2], 2.0, 1e-9);
  EXPECT_NEAR(u[2][2], 2.0, 1e-9);
  EXPECT_NEAR(u[0][3], 1.0, 1e-9);
  EXPECT_NEAR(u[1][3], 1.0, 1e-9);
  EXPECT_NEAR(u[2][3], 1.0, 1e-9);
  // l3 and l4 fully utilized; l1, l2 not.
  EXPECT_NEAR(result.usage.linkRate[2], 4.0, 1e-9);
  EXPECT_NEAR(result.usage.linkRate[3], 3.0, 1e-9);
  EXPECT_LT(result.usage.linkRate[0], 5.0 - 1e-6);
  EXPECT_LT(result.usage.linkRate[1], 7.0 - 1e-6);
}

TEST(Fig1, AllFourPropertiesHold) {
  const net::Network n = net::fig1Network();
  const auto a = maxMinFairAllocation(n);
  for (const auto& [name, check] : checkAllProperties(n, a)) {
    EXPECT_TRUE(check.holds) << name;
  }
}

TEST(Fig2, SingleRateAllocation) {
  // S1 single-rate: a1 = 2 (l2 saturates); unicast S2: a2 = 3 (l1
  // saturates at 2+3=5).
  const net::Network n = net::fig2Network(/*s1MultiRate=*/false);
  const auto result = solveMaxMinFair(n);
  const auto& a = result.allocation;
  EXPECT_NEAR(a.rate({0, 0}), 2.0, 1e-9);
  EXPECT_NEAR(a.rate({0, 1}), 2.0, 1e-9);
  EXPECT_NEAR(a.rate({0, 2}), 2.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 3.0, 1e-9);
  EXPECT_NEAR(result.usage.linkRate[0], 5.0, 1e-9);  // l1 full
  EXPECT_NEAR(result.usage.linkRate[1], 2.0, 1e-9);  // l2 full
}

TEST(Fig2, MultiRateAllocation) {
  // With S1 multi-rate: r1,1 = r2,1 = 2.5 (l1), r1,2 = 2 (l2),
  // r1,3 = 3 (l3).
  const net::Network n = net::fig2Network(/*s1MultiRate=*/true);
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 2.5, 1e-9);
  EXPECT_NEAR(a.rate({0, 1}), 2.0, 1e-9);
  EXPECT_NEAR(a.rate({0, 2}), 3.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 2.5, 1e-9);
}

TEST(Fig2, SingleRateFailsThreeProperties) {
  const net::Network n = net::fig2Network(false);
  const auto a = maxMinFairAllocation(n);
  EXPECT_FALSE(checkSamePathReceiverFairness(n, a).holds);
  EXPECT_FALSE(checkFullyUtilizedReceiverFairness(n, a).holds);
  EXPECT_FALSE(checkPerReceiverLinkFairness(n, a).holds);
  // Per-session-link-fairness always holds in a single-rate max-min
  // allocation ([18]; Section 2.3 of the paper).
  EXPECT_TRUE(checkPerSessionLinkFairness(n, a).holds);
}

TEST(Fig2, MultiRateSatisfiesAllProperties) {
  const net::Network n = net::fig2Network(true);
  const auto a = maxMinFairAllocation(n);
  for (const auto& [name, check] : checkAllProperties(n, a)) {
    EXPECT_TRUE(check.holds) << name;
  }
}

TEST(Fig3a, RemovalDecreasesSiblingRate) {
  const net::Network before = net::fig3aNetwork(false);
  const net::Network after = net::fig3aNetwork(true);
  const auto ab = maxMinFairAllocation(before);
  EXPECT_NEAR(ab.rate({0, 0}), 2.0, 1e-9);  // r1,1
  EXPECT_NEAR(ab.rate({1, 0}), 5.0, 1e-9);  // r2,1
  EXPECT_NEAR(ab.rate({2, 0}), 5.0, 1e-9);  // r3,1
  EXPECT_NEAR(ab.rate({2, 1}), 2.0, 1e-9);  // r3,2
  const auto aa = maxMinFairAllocation(after);
  EXPECT_NEAR(aa.rate({0, 0}), 4.0, 1e-9);
  EXPECT_NEAR(aa.rate({1, 0}), 4.0, 1e-9);
  EXPECT_NEAR(aa.rate({2, 0}), 4.0, 1e-9);
  // The phenomenon: r3,1's fair rate DEcreased when its sibling left.
  EXPECT_LT(aa.rate({2, 0}), ab.rate({2, 0}));
  // And r1,1's increased.
  EXPECT_GT(aa.rate({0, 0}), ab.rate({0, 0}));
}

TEST(Fig3b, RemovalIncreasesSiblingRate) {
  const net::Network before = net::fig3bNetwork(false);
  const net::Network after = net::fig3bNetwork(true);
  const auto ab = maxMinFairAllocation(before);
  EXPECT_NEAR(ab.rate({0, 0}), 3.0, 1e-9);  // r1,1
  EXPECT_NEAR(ab.rate({1, 0}), 1.0, 1e-9);  // r2,1
  EXPECT_NEAR(ab.rate({2, 0}), 9.0, 1e-9);  // r3,1
  EXPECT_NEAR(ab.rate({2, 1}), 1.0, 1e-9);  // r3,2
  const auto aa = maxMinFairAllocation(after);
  EXPECT_NEAR(aa.rate({0, 0}), 2.0, 1e-9);
  EXPECT_NEAR(aa.rate({1, 0}), 2.0, 1e-9);
  EXPECT_NEAR(aa.rate({2, 0}), 10.0, 1e-9);
  // The phenomenon: r3,1's fair rate INcreased when its sibling left.
  EXPECT_GT(aa.rate({2, 0}), ab.rate({2, 0}));
  // And r1,1's decreased.
  EXPECT_LT(aa.rate({0, 0}), ab.rate({0, 0}));
}

TEST(Fig3, WithoutReceiverMatchesRebuiltNetwork) {
  const net::Network before = net::fig3aNetwork(false);
  const net::Network removed =
      before.withoutReceiver(net::fig3RemovedReceiver());
  const auto a1 = maxMinFairAllocation(removed);
  const auto a2 = maxMinFairAllocation(net::fig3aNetwork(true));
  for (ReceiverRef r : removed.allReceivers()) {
    EXPECT_NEAR(a1.rate(r), a2.rate(r), 1e-9);
  }
}

TEST(Fig4, RedundancyTwoAllocation) {
  // All receivers at rate 2; u_{1,l4} = 4, l4 fully utilized at 6.
  const net::Network n = net::fig4Network();
  const auto result = solveMaxMinFair(n);
  for (ReceiverRef r : n.allReceivers()) {
    EXPECT_NEAR(result.allocation.rate(r), 2.0, 1e-9);
  }
  EXPECT_NEAR(result.usage.sessionLinkRate[0][3], 4.0, 1e-9);
  EXPECT_NEAR(result.usage.sessionLinkRate[1][3], 2.0, 1e-9);
  EXPECT_NEAR(result.usage.linkRate[3], 6.0, 1e-9);
}

TEST(Fig4, SessionPerspectivePropertiesFail) {
  const net::Network n = net::fig4Network();
  const auto a = maxMinFairAllocation(n);
  // Session-perspective fairness breaks for S2 (u_{1,4}=4 > u_{2,4}=2 on
  // the only fully utilized link of S2's path)...
  EXPECT_FALSE(checkPerSessionLinkFairness(n, a).holds);
  EXPECT_FALSE(checkPerReceiverLinkFairness(n, a).holds);
  // ...but the receiver-perspective properties survive redundancy
  // (Section 3: "trivial to show").
  EXPECT_TRUE(checkSamePathReceiverFairness(n, a).holds);
  EXPECT_TRUE(checkFullyUtilizedReceiverFairness(n, a).holds);
}

TEST(Fig4, LowerRedundancyRaisesRates) {
  // Replacing the redundancy-2 function with the efficient one raises
  // fair rates (Lemma 4 corollary on this instance).
  const net::Network redundant = net::fig4Network();
  const net::Network efficient =
      redundant.withLinkRateFunction(0, net::efficientMax());
  const auto ar = maxMinFairAllocation(redundant).orderedRates();
  const auto ae = maxMinFairAllocation(efficient).orderedRates();
  for (std::size_t i = 0; i < ar.size(); ++i) {
    EXPECT_LE(ar[i], ae[i] + 1e-9);
  }
}

}  // namespace
}  // namespace mcfair::fairness
