// Trajectory-parity tests for the component-parallel closed-loop engine:
// runClosedLoopSimulationParallel must reproduce the serial engines
// EXACTLY (EXPECT_EQ, not EXPECT_NEAR) at every thread count — the
// per-component lanes replay the serial pop order restricted to each
// link-set component, so any divergence is a partitioning or data-race
// bug, not noise. Also covers the engineThreads / MCFAIR_SIM_THREADS
// dispatch and the engineComponents / partitionRebuilds telemetry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/session.hpp"
#include "sim/closed_loop.hpp"
#include "sim/loss.hpp"
#include "sim/scenario.hpp"

namespace mcfair::sim {
namespace {

void expectIdentical(const ClosedLoopResult& a, const ClosedLoopResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.measuredRate, b.measuredRate) << label;
  EXPECT_EQ(a.linkThroughput, b.linkThroughput) << label;
  EXPECT_EQ(a.linkDropRate, b.linkDropRate) << label;
  EXPECT_EQ(a.sessionLinkRate, b.sessionLinkRate) << label;
  EXPECT_EQ(a.meanLevel, b.meanLevel) << label;
  EXPECT_EQ(a.binRates, b.binRates) << label;
  ASSERT_EQ(a.fairEpochs.size(), b.fairEpochs.size()) << label;
  for (std::size_t e = 0; e < a.fairEpochs.size(); ++e) {
    EXPECT_EQ(a.fairEpochs[e].begin, b.fairEpochs[e].begin) << label;
    EXPECT_EQ(a.fairEpochs[e].end, b.fairEpochs[e].end) << label;
    EXPECT_EQ(a.fairEpochs[e].sessions, b.fairEpochs[e].sessions) << label;
    EXPECT_EQ(a.fairEpochs[e].fairRate, b.fairEpochs[e].fairRate) << label;
  }
}

// Serial-engine oracle plus the parallel engine at 1/2/4/8 threads —
// the ISSUE's acceptance grid. Returns the parallel result for extra
// assertions.
ClosedLoopResult expectParallelParity(const net::Network& n,
                                      const ClosedLoopConfig& c,
                                      const std::string& label) {
  const auto reference = runClosedLoopSimulationReference(n, c);
  expectIdentical(runClosedLoopSimulation(n, c), reference,
                  label + " [event]");
  ClosedLoopResult last;
  for (const int threads : {1, 2, 4, 8}) {
    ClosedLoopConfig pc = c;
    pc.engineThreads = threads;
    last = runClosedLoopSimulationParallel(n, pc);
    expectIdentical(last, reference,
                    label + " [parallel T=" + std::to_string(threads) + "]");
    EXPECT_EQ(last.partitionRebuilds, 1u) << label;
    EXPECT_GE(last.engineComponents, 1u) << label;
  }
  return last;
}

// Three independent bottlenecks with mixed protocols per component: the
// canonical multi-component workload. Session layout (9 sessions):
// component k owns links {3k, 3k+1, 3k+2} with a shared bottleneck plus
// two tails, carrying one multicast and two unicast sessions.
net::Network threeComponentNetwork() {
  net::Network n;
  for (int comp = 0; comp < 3; ++comp) {
    const auto shared = n.addLink(6.0 + comp);
    const auto tailA = n.addLink(4.0);
    const auto tailB = n.addLink(5.0);
    net::Session multicast;
    multicast.receivers.push_back(net::makeReceiver({shared, tailA}));
    multicast.receivers.push_back(net::makeReceiver({shared, tailB}));
    n.addSession(std::move(multicast));
    n.addSession(net::makeUnicastSession({shared, tailA}));
    n.addSession(net::makeUnicastSession({tailB}));
  }
  return n;
}

ClosedLoopConfig threeComponentConfig() {
  ClosedLoopConfig c;
  constexpr ProtocolKind kKinds[] = {ProtocolKind::kCoordinated,
                                     ProtocolKind::kUncoordinated,
                                     ProtocolKind::kDeterministic};
  for (std::size_t i = 0; i < 9; ++i) {
    ClosedLoopSessionConfig sc;
    sc.protocol = kKinds[i % 3];
    sc.layers = 3 + i % 3;
    c.sessions.push_back(sc);
  }
  c.duration = 300.0;
  c.warmup = 50.0;
  c.rateBinWidth = 60.0;
  c.computeFairEpochs = true;
  c.seed = 41;
  return c;
}

TEST(ClosedLoopParallel, ThreeComponentsStayIdenticalAcrossThreadCounts) {
  const net::Network n = threeComponentNetwork();
  const ClosedLoopConfig c = threeComponentConfig();
  const auto result = expectParallelParity(n, c, "3-component");
  EXPECT_EQ(result.engineComponents, 3u);
}

TEST(ClosedLoopParallel, ChurnAndFaultsAcrossComponents) {
  // Start/stop churn in every component plus a down -> repair pair on
  // component 1's bottleneck and a degrade on component 2's tail: lane
  // sub-schedules must keep fault-before-packet ordering per component.
  const net::Network n = threeComponentNetwork();
  ClosedLoopConfig c = threeComponentConfig();
  c.sessions[1].startTime = 40.0;
  c.sessions[1].stopTime = 200.0;
  c.sessions[4].startTime = 10.0;
  c.sessions[4].stopTime = 120.0;
  c.sessions[8].stopTime = 250.0;
  c.faults.events = {
      {80.0, net::FaultKind::kLinkDown, graph::LinkId{3}},
      {90.0, net::FaultKind::kDegrade, graph::LinkId{7}, 0.5},
      {160.0, net::FaultKind::kLinkUp, graph::LinkId{3}},
  };
  expectParallelParity(n, c, "churn+faults");
}

TEST(ClosedLoopParallel, ExogenousLossStaysPinnedAcrossThreadCounts) {
  // Per-link loss streams (splitLossStreams) make each link's draws a
  // function of its own admitted-packet sequence only, so loss parity
  // across thread counts is exactly what pins them.
  const net::Network n = threeComponentNetwork();
  ClosedLoopConfig c = threeComponentConfig();
  c.computeFairEpochs = false;
  c.linkLoss = [](graph::LinkId l) -> std::unique_ptr<LossModel> {
    if (l.value % 3 == 1) {
      return std::make_unique<GilbertElliottLoss>(0.05, 0.4, 0.01, 0.3);
    }
    return std::make_unique<BernoulliLoss>(0.04);
  };
  expectParallelParity(n, c, "exogenous loss");
}

TEST(ClosedLoopParallel, SingleComponentMeshDegradesGracefully) {
  // A fully-shared bottleneck collapses to one component: the parallel
  // engine must still match (one lane = the serial merge).
  net::Network n;
  const auto shared = n.addLink(9.0);
  const auto a = n.addLink(6.0);
  const auto b = n.addLink(6.0);
  n.addSession(net::makeUnicastSession({shared, a}));
  n.addSession(net::makeUnicastSession({shared, b}));
  n.addSession(net::makeUnicastSession({shared}));

  ClosedLoopConfig c;
  c.sessions.assign(
      3, ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 4, 1});
  c.duration = 300.0;
  c.warmup = 50.0;
  c.seed = 13;
  const auto result = expectParallelParity(n, c, "single component");
  EXPECT_EQ(result.engineComponents, 1u);
}

TEST(ClosedLoopParallel, RunIsRepeatable) {
  // Same config, same threads, run twice: bit-identical (no dependence
  // on scheduling noise).
  const net::Network n = threeComponentNetwork();
  ClosedLoopConfig c = threeComponentConfig();
  c.engineThreads = 4;
  expectIdentical(runClosedLoopSimulationParallel(n, c),
                  runClosedLoopSimulationParallel(n, c), "repeat T=4");
}

TEST(ClosedLoopParallel, DispatchRoutesThroughEngineThreads) {
  const net::Network n = threeComponentNetwork();
  ClosedLoopConfig c = threeComponentConfig();

  // engineThreads > 1 routes runClosedLoopSimulation to the partitioned
  // engine (telemetry becomes visible)...
  c.engineThreads = 2;
  const auto routed = runClosedLoopSimulation(n, c);
  EXPECT_EQ(routed.engineComponents, 3u);
  EXPECT_EQ(routed.partitionRebuilds, 1u);

  // ... 0/1 stay serial ...
  c.engineThreads = 1;
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);
  c.engineThreads = 0;
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);

  // ... and the fluid engine takes precedence over the parallel one.
  c.engineThreads = 4;
  c.fluidFastForward = true;
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);
  c.fluidFastForward = false;

  // Either route produces the same trajectories.
  c.engineThreads = 2;
  const auto viaDispatch = runClosedLoopSimulation(n, c);
  c.engineThreads = 1;
  expectIdentical(viaDispatch, runClosedLoopSimulation(n, c), "dispatch");
}

TEST(ClosedLoopParallel, EnvironmentVariableDrivesDefault) {
  const net::Network n = threeComponentNetwork();
  ClosedLoopConfig c = threeComponentConfig();
  ASSERT_EQ(c.engineThreads, -1) << "default must defer to the env var";

  ::setenv("MCFAIR_SIM_THREADS", "4", 1);
  const auto viaEnv = runClosedLoopSimulation(n, c);
  EXPECT_EQ(viaEnv.engineComponents, 3u);

  ::setenv("MCFAIR_SIM_THREADS", "1", 1);
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);

  ::unsetenv("MCFAIR_SIM_THREADS");
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);

  // An explicit engineThreads wins over the env var.
  ::setenv("MCFAIR_SIM_THREADS", "8", 1);
  c.engineThreads = 1;
  EXPECT_EQ(runClosedLoopSimulation(n, c).engineComponents, 0u);
  ::unsetenv("MCFAIR_SIM_THREADS");
}

TEST(ClosedLoopParallel, ScenarioEngineForwardsEngineThreads) {
  // The sharded-bottlenecks catalog preset fans sessions across disjoint
  // backbone links, giving the parallel engine real components.
  const ScenarioSpec* base = findScenario("sharded-bottlenecks");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 64;
  spec.bottleneckGroups = 16;
  spec.duration = 6.0;
  spec.warmup = 1.0;
  spec.engineThreads = 4;
  const Scenario s = buildScenario(spec);
  EXPECT_EQ(s.config.engineThreads, 4);

  const auto parallel = runScenario(s);
  EXPECT_EQ(parallel.engineComponents, 16u);
  ClosedLoopConfig serial = s.config;
  serial.engineThreads = 1;
  expectIdentical(parallel, runClosedLoopSimulation(s.network, serial),
                  "sharded-bottlenecks");
}

}  // namespace
}  // namespace mcfair::sim
