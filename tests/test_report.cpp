// Tests for the allocation report printer.
#include <gtest/gtest.h>

#include <sstream>

#include "fairness/maxmin.hpp"
#include "fairness/report.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

TEST(Report, DisplayNames) {
  const net::Network n = net::fig1Network();
  EXPECT_EQ(receiverDisplayName(n, {1, 1}), "r2,2");
  EXPECT_EQ(sessionDisplayName(n, 2), "S3");
  net::Network anon;
  const auto l = anon.addLink(1.0);
  net::Session s;
  s.receivers = {net::makeReceiver({l})};
  anon.addSession(std::move(s));
  EXPECT_EQ(receiverDisplayName(anon, {0, 0}), "r1,1");
  EXPECT_EQ(sessionDisplayName(anon, 0), "S1");
}

TEST(Report, ContainsRatesLinksAndProperties) {
  const net::Network n = net::fig2Network(false);
  const auto a = maxMinFairAllocation(n);
  std::ostringstream os;
  printAllocationReport(os, "title", n, a);
  const std::string out = os.str();
  EXPECT_NE(out.find("title — receiver rates"), std::string::npos);
  EXPECT_NE(out.find("title — link usage"), std::string::npos);
  EXPECT_NE(out.find("title — fairness properties"), std::string::npos);
  EXPECT_NE(out.find("r1,3"), std::string::npos);
  EXPECT_NE(out.find("u_S1"), std::string::npos);
  // Fig 2 single-rate: same-path fairness fails and the report says NO.
  EXPECT_NE(out.find("NO"), std::string::npos);
}

TEST(Report, SkipPropertiesOmitsTable) {
  const net::Network n = net::fig1Network();
  const auto a = maxMinFairAllocation(n);
  ReportOptions opt;
  opt.skipProperties = true;
  std::ostringstream os;
  printAllocationReport(os, "t", n, a, opt);
  EXPECT_EQ(os.str().find("fairness properties"), std::string::npos);
}

TEST(Report, CsvMode) {
  const net::Network n = net::fig1Network();
  const auto a = maxMinFairAllocation(n);
  ReportOptions opt;
  opt.csv = true;
  std::ostringstream os;
  printAllocationReport(os, "t", n, a, opt);
  EXPECT_NE(os.str().find("-- CSV --"), std::string::npos);
  // The rate header contains a comma, so the CSV writer quotes it.
  EXPECT_NE(os.str().find("receiver,\"rate a_{i,k}\""), std::string::npos);
}

TEST(Report, PrecisionApplied) {
  net::Network n;
  const auto l = n.addLink(1.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  const auto a = maxMinFairAllocation(n);  // thirds
  ReportOptions opt;
  opt.precision = 6;
  std::ostringstream os;
  printAllocationReport(os, "t", n, a, opt);
  EXPECT_NE(os.str().find("0.333333"), std::string::npos);
}

}  // namespace
}  // namespace mcfair::fairness
