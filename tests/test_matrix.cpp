// Tests for linalg: matrix ops, LU solve, stationary distributions.
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace mcfair::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Multiply) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix p = a.multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, MultiplyDimensionMismatch) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiply(b), PreconditionError);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(SolveLinear, Simple2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solveLinear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solveLinear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solveLinear(a, {1.0, 2.0}), NumericError);
}

TEST(SolveLinear, Bigger) {
  // Random-ish 5x5 with known solution: b = A * ones.
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      a(r, c) = static_cast<double>((r * 7 + c * 3) % 11) + (r == c ? 10 : 0);
    }
  }
  std::vector<double> b(5, 0.0);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) b[r] += a(r, c);
  const auto x = solveLinear(a, b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(Stationary, TwoStateChain) {
  // P = [[0.9, 0.1], [0.5, 0.5]] -> pi = (5/6, 1/6).
  Matrix p(2, 2);
  p(0, 0) = 0.9;
  p(0, 1) = 0.1;
  p(1, 0) = 0.5;
  p(1, 1) = 0.5;
  const auto pi = stationaryDistribution(p);
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-12);
}

TEST(Stationary, UniformOnSymmetricChain) {
  Matrix p(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    p(i, (i + 1) % 3) = 0.5;
    p(i, (i + 2) % 3) = 0.5;
  }
  const auto pi = stationaryDistribution(p);
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Stationary, RejectsNonStochastic) {
  Matrix p(2, 2, 0.3);
  EXPECT_THROW(stationaryDistribution(p), PreconditionError);
}

TEST(Stationary, SumsToOne) {
  Matrix p(4, 4, 0.25);
  const auto pi = stationaryDistribution(p);
  double s = 0.0;
  for (double v : pi) s += v;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

}  // namespace
}  // namespace mcfair::linalg
