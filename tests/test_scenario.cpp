// Tests for the scenario engine (sim/scenario.hpp): catalog integrity,
// deterministic expansion, the arrival/departure processes, session-mix
// validation, and the exogenous-loss plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/scenario.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

TEST(Scenario, CatalogHasUniqueNamedPresets) {
  const auto& catalog = scenarioCatalog();
  ASSERT_GE(catalog.size(), 6u);
  std::set<std::string> names;
  for (const auto& spec : catalog) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate scenario name " << spec.name;
    // Every preset must expand without throwing.
    const Scenario s = buildScenario(spec);
    EXPECT_EQ(s.network.sessionCount(), spec.sessions) << spec.name;
    EXPECT_EQ(s.config.sessions.size(), spec.sessions) << spec.name;
  }
  EXPECT_NE(findScenario("mega-merge"), nullptr);
  EXPECT_NE(findScenario("churn"), nullptr);
  EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
}

TEST(Scenario, ScaleFreeTreeBackboneStructure) {
  const ScenarioSpec* base = findScenario("scale-free-backbone");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->topology, ScenarioSpec::Topology::kScaleFreeTree);
  ScenarioSpec spec = *base;
  spec.sessions = 40;
  spec.backboneNodes = 64;
  const Scenario s = buildScenario(spec);
  // 63 tree edges, no tails.
  EXPECT_EQ(s.network.linkCount(), spec.backboneNodes - 1);
  // Every data-path is a root path: non-empty, within the backbone, and
  // capacities are load-proportional (>= one session's worth, and at
  // least one hub edge carries several sessions at 64 nodes / 40x2
  // receivers almost surely).
  double maxCapacity = 0.0;
  for (std::uint32_t j = 0; j < s.network.linkCount(); ++j) {
    const double c = s.network.capacity(graph::LinkId{j});
    EXPECT_GE(c, spec.backbonePerSession);
    maxCapacity = std::max(maxCapacity, c);
  }
  EXPECT_GE(maxCapacity, 2.0 * spec.backbonePerSession)
      << "expected at least one shared (hub) edge";
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    EXPECT_EQ(s.network.session(i).receivers.size(),
              spec.receiversPerSession);
    for (const auto& r : s.network.session(i).receivers) {
      EXPECT_FALSE(r.dataPath.empty());
    }
  }
  // Deterministic expansion, like every other preset.
  const Scenario t = buildScenario(spec);
  ASSERT_EQ(t.network.linkCount(), s.network.linkCount());
  for (std::uint32_t j = 0; j < s.network.linkCount(); ++j) {
    EXPECT_EQ(s.network.capacity(graph::LinkId{j}),
              t.network.capacity(graph::LinkId{j}));
  }
  // The closed-loop engines agree on it end to end (routed multi-link
  // paths through the fluid driver's certificate machinery included).
  ScenarioSpec small = spec;
  small.sessions = 10;
  small.backboneNodes = 16;
  small.duration = 120.0;
  small.warmup = 30.0;
  const Scenario mini = buildScenario(small);
  const auto a = runClosedLoopSimulation(mini.network, mini.config);
  const auto b = runClosedLoopSimulationFluid(mini.network, mini.config);
  EXPECT_EQ(a.measuredRate, b.measuredRate);
  EXPECT_EQ(a.linkThroughput, b.linkThroughput);
}

TEST(Scenario, ScaleFreeValidatesNodeCount) {
  ScenarioSpec spec;
  spec.topology = ScenarioSpec::Topology::kScaleFreeTree;
  spec.backboneNodes = 1;
  EXPECT_THROW(buildScenario(spec), PreconditionError);
}

TEST(Scenario, ExpansionIsDeterministic) {
  const ScenarioSpec* base = findScenario("heterogeneous-mix");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 6;
  spec.duration = 300.0;
  spec.warmup = 100.0;
  const Scenario a = buildScenario(spec);
  const Scenario b = buildScenario(spec);
  ASSERT_EQ(a.network.sessionCount(), b.network.sessionCount());
  ASSERT_EQ(a.network.linkCount(), b.network.linkCount());
  for (std::uint32_t j = 0; j < a.network.linkCount(); ++j) {
    EXPECT_EQ(a.network.capacity(graph::LinkId{j}),
              b.network.capacity(graph::LinkId{j}));
  }
  for (std::size_t i = 0; i < a.config.sessions.size(); ++i) {
    EXPECT_EQ(a.config.sessions[i].protocol, b.config.sessions[i].protocol);
    EXPECT_EQ(a.config.sessions[i].layers, b.config.sessions[i].layers);
    EXPECT_EQ(a.config.sessions[i].startTime,
              b.config.sessions[i].startTime);
    EXPECT_EQ(a.config.sessions[i].stopTime, b.config.sessions[i].stopTime);
  }
  // End-to-end: two runs of the same scenario are bit-identical.
  const auto ra = runScenario(a);
  const auto rb = runScenario(b);
  EXPECT_EQ(ra.measuredRate, rb.measuredRate);
  EXPECT_EQ(ra.linkThroughput, rb.linkThroughput);
}

TEST(Scenario, SeedChangesThePopulation) {
  const ScenarioSpec* base = findScenario("churn");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 8;
  const Scenario a = buildScenario(spec);
  spec.seed = 99;
  const Scenario b = buildScenario(spec);
  bool anyDifferent = false;
  for (std::size_t i = 0; i < spec.sessions; ++i) {
    anyDifferent = anyDifferent ||
                   a.config.sessions[i].startTime !=
                       b.config.sessions[i].startTime;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Scenario, ArrivalAndLifetimeProcessesRespectBounds) {
  ScenarioSpec spec;
  spec.sessions = 40;
  spec.arrivalWindow = 500.0;
  spec.meanLifetime = 300.0;
  spec.minLifetime = 80.0;
  spec.duration = 2000.0;
  const Scenario s = buildScenario(spec);
  for (const auto& sc : s.config.sessions) {
    EXPECT_GE(sc.startTime, 0.0);
    EXPECT_LT(sc.startTime, spec.arrivalWindow);
    // -1e-9: startTime + lifetime can round the difference just below.
    EXPECT_GE(sc.stopTime - sc.startTime, spec.minLifetime - 1e-9);
    EXPECT_TRUE(std::isfinite(sc.stopTime));
  }
}

TEST(Scenario, BackboneScalesWithPopulation) {
  ScenarioSpec spec;
  spec.sessions = 32;
  spec.backbonePerSession = 1.5;
  const Scenario s = buildScenario(spec);
  EXPECT_DOUBLE_EQ(s.network.capacity(graph::LinkId{0}), 48.0);
}

TEST(Scenario, TailsAreDrawnInsideTheConfiguredRange) {
  ScenarioSpec spec;
  spec.sessions = 10;
  spec.receiversPerSession = 2;
  spec.tailCapacityMin = 2.0;
  spec.tailCapacityMax = 9.0;
  const Scenario s = buildScenario(spec);
  // One backbone + one tail per receiver.
  ASSERT_EQ(s.network.linkCount(), 1u + 10u * 2u);
  for (std::uint32_t j = 1; j < s.network.linkCount(); ++j) {
    const double c = s.network.capacity(graph::LinkId{j});
    EXPECT_GE(c, 2.0);
    EXPECT_LE(c, 9.0);
  }
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    EXPECT_EQ(s.network.session(i).receivers.size(), 2u);
  }
}

TEST(Scenario, LossModelsMatchRequestedAverages) {
  LossSpec bern;
  bern.kind = LossSpec::Kind::kBernoulli;
  bern.rate = 0.05;
  const auto b = makeLossModel(bern);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->averageLossRate(), 0.05);

  LossSpec ge;
  ge.kind = LossSpec::Kind::kGilbertElliott;
  ge.rate = 0.02;
  ge.meanBurst = 12.0;
  ge.badLossRate = 0.5;
  const auto g = makeLossModel(ge);
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->averageLossRate(), 0.02, 1e-12);

  LossSpec none;
  EXPECT_EQ(makeLossModel(none), nullptr);
}

TEST(Scenario, LossPlumbingReachesTheLinks) {
  // With heavy exogenous loss the measured drop rate must be at least
  // the exogenous rate even on an uncongested backbone.
  ScenarioSpec spec;
  spec.sessions = 2;
  spec.backbonePerSession = 100.0;  // 200 >> 2 * 16: no endogenous drops
  spec.mix = {SessionMix{{ProtocolKind::kCoordinated, 5, 1},
                         net::SessionType::kMultiRate, 1.0}};
  spec.duration = 500.0;
  spec.warmup = 100.0;
  spec.loss.kind = LossSpec::Kind::kBernoulli;
  spec.loss.rate = 0.2;
  const Scenario s = buildScenario(spec);
  const auto r = runScenario(s);
  EXPECT_GT(r.linkDropRate[0], 0.1);

  spec.loss.kind = LossSpec::Kind::kNone;
  const auto clean = runScenario(buildScenario(spec));
  EXPECT_DOUBLE_EQ(clean.linkDropRate[0], 0.0);
  EXPECT_GT(clean.measuredRate[0][0], r.measuredRate[0][0]);
}

TEST(Scenario, ChurnPresetProducesFairEpochs) {
  const ScenarioSpec* base = findScenario("churn");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 4;
  spec.duration = 400.0;
  spec.arrivalWindow = 150.0;
  spec.meanLifetime = 200.0;
  const Scenario s = buildScenario(spec);
  const auto r = runScenario(s);
  // Staggered arrivals and departures: strictly more epochs than the
  // trivial single interval, covering [0, duration].
  EXPECT_GT(r.fairEpochs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.fairEpochs.front().begin, 0.0);
  EXPECT_DOUBLE_EQ(r.fairEpochs.back().end, spec.duration);
}

TEST(Scenario, Validation) {
  ScenarioSpec spec;
  spec.sessions = 0;
  EXPECT_THROW(buildScenario(spec), PreconditionError);

  spec = ScenarioSpec{};
  spec.tailCapacityMax = 4.0;  // min left at 0
  EXPECT_THROW(buildScenario(spec), PreconditionError);

  spec = ScenarioSpec{};
  spec.arrivalWindow = spec.duration;
  EXPECT_THROW(buildScenario(spec), PreconditionError);

  // Single-rate entries with several receivers must be non-adaptive
  // (layers == 1): a layered single-rate session has no uniform rate.
  spec = ScenarioSpec{};
  spec.receiversPerSession = 2;
  spec.mix = {SessionMix{{ProtocolKind::kCoordinated, 4, 1},
                         net::SessionType::kSingleRate, 1.0}};
  EXPECT_THROW(buildScenario(spec), PreconditionError);

  // Gilbert-Elliott with badLossRate <= rate is unsatisfiable.
  LossSpec ge;
  ge.kind = LossSpec::Kind::kGilbertElliott;
  ge.rate = 0.6;
  ge.badLossRate = 0.5;
  EXPECT_THROW(makeLossModel(ge), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
