// Randomized cross-engine parity fuzz: a seeded generator sweeps
// topology family x protocol mix x loss model x fault preset x thread
// count and asserts that all five closed-loop drivers — reference
// linear-scan, event-driven, fluid fast-forward, component-parallel
// (at 1/2/4/8 threads), and speculative intra-component (at 1/2/4/8
// workers, with seed-varied epoch grains that force both committed and
// rolled-back epochs) — produce EXACTLY the same results (EXPECT_EQ on
// every trajectory field; fair epochs on a subset). The engines share
// one per-packet core, so the fuzz surface is precisely the code that
// differs: merge order, fluid certificates and hand-backs, session
// partitioning, lane fault sub-schedules, per-lane scratch, and the
// speculative epoch split / frozen-prediction / rollback machinery.
// Every case is a fixed function of its seed — a failure reproduces
// from the seed printed in the assertion label.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "sim/loss.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {
namespace {

void expectIdentical(const ClosedLoopResult& a, const ClosedLoopResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.measuredRate, b.measuredRate) << label;
  EXPECT_EQ(a.linkThroughput, b.linkThroughput) << label;
  EXPECT_EQ(a.linkDropRate, b.linkDropRate) << label;
  EXPECT_EQ(a.sessionLinkRate, b.sessionLinkRate) << label;
  EXPECT_EQ(a.meanLevel, b.meanLevel) << label;
  EXPECT_EQ(a.binRates, b.binRates) << label;
  ASSERT_EQ(a.fairEpochs.size(), b.fairEpochs.size()) << label;
  for (std::size_t e = 0; e < a.fairEpochs.size(); ++e) {
    EXPECT_EQ(a.fairEpochs[e].begin, b.fairEpochs[e].begin) << label;
    EXPECT_EQ(a.fairEpochs[e].end, b.fairEpochs[e].end) << label;
    EXPECT_EQ(a.fairEpochs[e].sessions, b.fairEpochs[e].sessions) << label;
    EXPECT_EQ(a.fairEpochs[e].fairRate, b.fairEpochs[e].fairRate) << label;
  }
}

// One fuzz case: a network + config pair, fully derived from the seed.
struct FuzzCase {
  std::string label;
  net::Network network;
  ClosedLoopConfig config;
};

constexpr ProtocolKind kKinds[] = {ProtocolKind::kCoordinated,
                                   ProtocolKind::kUncoordinated,
                                   ProtocolKind::kDeterministic};

// Randomized per-session protocol mix, layer counts, and lifetime churn.
void fuzzSessions(util::Rng& rng, std::size_t nSessions,
                  ClosedLoopConfig& c) {
  c.sessions.clear();
  for (std::size_t i = 0; i < nSessions; ++i) {
    ClosedLoopSessionConfig sc;
    sc.protocol = kKinds[rng.below(3)];
    sc.layers = 2 + rng.below(4);
    sc.initialLevel = 1 + rng.below(sc.layers);
    if (rng.bernoulli(0.35)) {
      sc.startTime = rng.uniform(0.0, 60.0);
      sc.stopTime = sc.startTime + rng.uniform(40.0, 120.0);
    }
    c.sessions.push_back(sc);
  }
}

// Randomized loss model family: none / Bernoulli / Gilbert-Elliott,
// mixed per link when both are in play.
void fuzzLoss(util::Rng& rng, ClosedLoopConfig& c) {
  const std::size_t kind = rng.below(3);
  if (kind == 0) return;
  const double p = rng.uniform(0.01, 0.08);
  if (kind == 1) {
    c.linkLoss = [p](graph::LinkId) -> std::unique_ptr<LossModel> {
      return std::make_unique<BernoulliLoss>(p);
    };
  } else {
    c.linkLoss = [p](graph::LinkId l) -> std::unique_ptr<LossModel> {
      if (l.value % 2 == 0) {
        return std::make_unique<GilbertElliottLoss>(0.04, 0.5, 0.005,
                                                    5.0 * p);
      }
      return std::make_unique<BernoulliLoss>(p);
    };
  }
}

// Randomized fault preset on links sessions actually cross: none, a
// down -> repair flap, or a degrade staircase — plus boundary events at
// t = 0 and beyond the horizon now and then.
void fuzzFaults(util::Rng& rng, const net::Network& n,
                ClosedLoopConfig& c) {
  const std::size_t kind = rng.below(3);
  if (kind == 0) return;
  const auto victimOf = [&](std::size_t session) {
    const auto& receivers = n.session(session % n.sessionCount()).receivers;
    const auto& path = receivers[rng.below(receivers.size())].dataPath;
    return path[rng.below(path.size())];
  };
  const graph::LinkId a = victimOf(rng.below(n.sessionCount()));
  const graph::LinkId b = victimOf(rng.below(n.sessionCount()));
  const double t0 = rng.uniform(30.0, 80.0);
  if (kind == 1) {
    c.faults.events = {
        {t0, net::FaultKind::kLinkDown, a},
        {t0 + rng.uniform(10.0, 40.0), net::FaultKind::kLinkUp, a},
    };
  } else {
    c.faults.events = {
        {t0, net::FaultKind::kDegrade, a, rng.uniform(0.2, 0.7)},
        {t0 + 15.0, net::FaultKind::kDegrade, b, 0.5},
        {t0 + rng.uniform(30.0, 60.0), net::FaultKind::kLinkUp, a},
        {t0 + 90.0, net::FaultKind::kLinkUp, b},
    };
  }
  if (rng.bernoulli(0.25)) {
    c.faults.events.push_back({0.0, net::FaultKind::kDegrade, b, 0.8});
  }
  if (rng.bernoulli(0.25)) {
    c.faults.events.push_back(
        {c.duration + 50.0, net::FaultKind::kLinkDown, a});
  }
}

// Builds the seed's case: topology family rotates through disjoint
// shared bottlenecks, hand-wired multicast components, random routed
// meshes (BA m=2 and Waxman — cycles, so the routing layer picks the
// trees), the scale-free tree, and unstructured random networks.
FuzzCase buildCase(std::uint64_t seed) {
  util::Rng rng(seed * 1000003 + 17);
  FuzzCase fc;
  fc.label = "fuzz seed " + std::to_string(seed);
  fc.config.duration = 120.0 + rng.uniform(0.0, 60.0);
  fc.config.warmup = rng.bernoulli(0.5) ? 20.0 : 0.0;
  if (rng.bernoulli(0.5)) fc.config.rateBinWidth = rng.uniform(15.0, 45.0);
  fc.config.seed = seed * 31 + 7;
  fc.config.computeFairEpochs = seed % 4 == 0;

  switch (seed % 5) {
    case 0: {
      // Disjoint shared bottlenecks via the scenario engine.
      ScenarioSpec spec;
      spec.name = "fuzz-sharded";
      spec.sessions = 4 + rng.below(5);
      spec.bottleneckGroups = 1 + rng.below(4);
      spec.backbonePerSession = rng.uniform(0.8, 3.0);
      spec.duration = fc.config.duration;
      spec.warmup = fc.config.warmup;
      spec.seed = seed;
      Scenario s = buildScenario(spec);
      fc.network = std::move(s.network);
      break;
    }
    case 1: {
      // Hand-wired multi-component multicast: per component one shared
      // bottleneck with private tails.
      const std::size_t comps = 2 + rng.below(3);
      for (std::size_t k = 0; k < comps; ++k) {
        const auto shared = fc.network.addLink(rng.uniform(4.0, 10.0));
        const auto tailA = fc.network.addLink(rng.uniform(2.0, 8.0));
        const auto tailB = fc.network.addLink(rng.uniform(2.0, 8.0));
        net::Session multicast;
        multicast.receivers.push_back(net::makeReceiver({shared, tailA}));
        multicast.receivers.push_back(net::makeReceiver({shared, tailB}));
        fc.network.addSession(std::move(multicast));
        fc.network.addSession(net::makeUnicastSession({shared, tailB}));
      }
      break;
    }
    case 2: {
      // Routed BA m=2 mesh (cycles: paths come from the routing layer).
      ScenarioSpec spec;
      spec.name = "fuzz-mesh";
      spec.sessions = 4 + rng.below(4);
      spec.receiversPerSession = 1 + rng.below(2);
      spec.topology = ScenarioSpec::Topology::kScaleFreeGraph;
      spec.backboneNodes = 12 + rng.below(8);
      spec.meshEdgesPerNode = 2;
      spec.backbonePerSession = rng.uniform(1.5, 4.0);
      spec.duration = fc.config.duration;
      spec.warmup = fc.config.warmup;
      spec.seed = seed;
      Scenario s = buildScenario(spec);
      fc.network = std::move(s.network);
      break;
    }
    case 3: {
      // Waxman mesh with heterogeneous private tails.
      ScenarioSpec spec;
      spec.name = "fuzz-waxman";
      spec.sessions = 4 + rng.below(4);
      spec.receiversPerSession = 1 + rng.below(2);
      spec.topology = ScenarioSpec::Topology::kWaxman;
      spec.backboneNodes = 14 + rng.below(8);
      spec.tailCapacityMin = 1.0;
      spec.tailCapacityMax = 8.0;
      spec.duration = fc.config.duration;
      spec.warmup = fc.config.warmup;
      spec.seed = seed;
      Scenario s = buildScenario(spec);
      fc.network = std::move(s.network);
      break;
    }
    default: {
      // Unstructured random multicast network.
      net::RandomNetworkOptions opts;
      opts.sessions = 2 + rng.below(5);
      opts.maxReceiversPerSession = 3;
      fc.network = net::randomNetwork(rng, opts);
      break;
    }
  }

  fuzzSessions(rng, fc.network.sessionCount(), fc.config);
  fuzzLoss(rng, fc.config);
  fuzzFaults(rng, fc.network, fc.config);
  return fc;
}

TEST(EngineParityFuzz, AllFiveEnginesAgreeAcrossTheGrid) {
  constexpr std::uint64_t kCases = 36;
  std::size_t multiComponent = 0;
  std::size_t withFaults = 0;
  std::size_t withLoss = 0;
  std::size_t specMultiEpoch = 0;
  std::size_t specRollbacks = 0;
  for (std::uint64_t seed = 1; seed <= kCases; ++seed) {
    const FuzzCase fc = buildCase(seed);
    if (!fc.config.faults.events.empty()) ++withFaults;
    if (fc.config.linkLoss) ++withLoss;

    ClosedLoopConfig serial = fc.config;
    serial.engineThreads = 1;  // immune to MCFAIR_SIM_THREADS in the env
    const auto reference =
        runClosedLoopSimulationReference(fc.network, serial);
    expectIdentical(runClosedLoopSimulation(fc.network, serial), reference,
                    fc.label + " [event]");
    expectIdentical(runClosedLoopSimulationFluid(fc.network, serial),
                    reference, fc.label + " [fluid]");
    for (const int threads : {1, 2, 4, 8}) {
      ClosedLoopConfig pc = fc.config;
      pc.engineThreads = threads;
      const auto parallel =
          runClosedLoopSimulationParallel(fc.network, pc);
      expectIdentical(parallel, reference,
                      fc.label + " [parallel T=" + std::to_string(threads) +
                          "]");
      EXPECT_EQ(parallel.partitionRebuilds, 1u) << fc.label;
      if (threads == 8 && parallel.engineComponents > 1) ++multiComponent;

      // Fifth column: the speculative engine at the same worker grid.
      // The epoch grain rotates with the seed so single-epoch,
      // multi-epoch, and rollback-heavy executions all appear.
      ClosedLoopConfig sc = fc.config;
      sc.speculationThreads = threads;
      sc.speculativeEpochs = (seed % 3) * 8;  // 0 (auto), 8, or 16
      const auto speculative =
          runClosedLoopSimulationSpeculative(fc.network, sc);
      expectIdentical(speculative, reference,
                      fc.label + " [speculative T=" +
                          std::to_string(threads) + "]");
      if (threads == 8) {
        if (speculative.speculationEpochs > 1) ++specMultiEpoch;
        specRollbacks +=
            static_cast<std::size_t>(speculative.speculationRollbacks);
      }
    }
    if (HasFatalFailure()) break;  // one seed's dump is enough
  }
  // The grid must actually exercise the interesting axes, not dodge
  // them: multi-component partitions, fault schedules, loss models,
  // multi-epoch speculative runs, and speculative rollbacks all have to
  // appear.
  EXPECT_GE(multiComponent, 5u);
  EXPECT_GE(withFaults, 10u);
  EXPECT_GE(withLoss, 10u);
  EXPECT_GE(specMultiEpoch, 10u);
  EXPECT_GE(specRollbacks, 10u);
}

// Mega-merge-shaped cases: one component holding the whole population,
// above the parallel engine's speculative dispatch floor. The parallel
// column must reroute (speculationEpochs >= 1 proves it) and agree with
// the reference; the direct speculative entry sweeps the worker grid.
// Single-layer populations (the certified-steady shape) must commit
// every epoch without a rollback; multi-layer mixes exercise divergence
// under dispatch.
TEST(EngineParityFuzz, SpeculativeMegaMergeDispatchAgrees) {
  std::size_t dispatched = 0;
  std::size_t zeroRollbackRuns = 0;
  for (std::uint64_t seed = 101; seed <= 106; ++seed) {
    util::Rng rng(seed * 7919 + 3);
    ScenarioSpec spec;
    spec.name = "fuzz-mega";
    spec.sessions = 256 + rng.below(64);
    spec.bottleneckGroups = 1;
    spec.backbonePerSession = rng.uniform(0.4, 0.8);
    spec.duration = 6.0;
    spec.warmup = 1.0;
    spec.seed = seed;
    const bool multiLayer = seed % 2 == 0;
    if (!multiLayer) {
      // The certified-steady shape: single-layer receivers never change
      // level (the catalog's mega-merge mix).
      spec.mix = {SessionMix{{ProtocolKind::kDeterministic, 1, 1},
                             net::SessionType::kMultiRate, 1.0}};
    }
    Scenario s = buildScenario(spec);
    if (multiLayer) {
      fuzzSessions(rng, s.network.sessionCount(), s.config);
      for (auto& sess : s.config.sessions) {
        // Keep every session alive for the whole (short) horizon; the
        // churn times fuzzSessions draws suit the long-duration grid.
        sess.startTime = 0.0;
        sess.stopTime = std::numeric_limits<double>::infinity();
      }
    }
    const std::string label = "mega seed " + std::to_string(seed);
    ClosedLoopConfig serial = s.config;
    serial.engineThreads = 1;
    const auto reference =
        runClosedLoopSimulationReference(s.network, serial);
    for (const int threads : {1, 2, 4, 8}) {
      ClosedLoopConfig sc = s.config;
      sc.speculationThreads = threads;
      sc.speculativeEpochs = seed % 2 == 0 ? 4 : 0;
      const auto speculative =
          runClosedLoopSimulationSpeculative(s.network, sc);
      expectIdentical(speculative, reference,
                      label + " [speculative T=" + std::to_string(threads) +
                          "]");
      EXPECT_GE(speculative.speculationEpochs, 1u) << label;
      if (!multiLayer) {
        // Certified-steady population: single-layer receivers never
        // change level, so the frozen prediction cannot diverge.
        EXPECT_EQ(speculative.speculationRollbacks, 0u) << label;
        ++zeroRollbackRuns;
      }

      ClosedLoopConfig pc = s.config;
      pc.engineThreads = threads;
      const auto parallel = runClosedLoopSimulationParallel(s.network, pc);
      expectIdentical(parallel, reference,
                      label + " [dispatch T=" + std::to_string(threads) +
                          "]");
      EXPECT_EQ(parallel.engineComponents, 1u) << label;
      if (threads > 1) {
        EXPECT_GE(parallel.speculationEpochs, 1u)
            << label << " expected the mega-merge dispatch to engage";
        ++dispatched;
      }
    }
    if (HasFatalFailure()) break;
  }
  EXPECT_GE(dispatched, 18u);      // 6 seeds x {2,4,8}
  EXPECT_GE(zeroRollbackRuns, 12u);  // 3 single-layer seeds x 4 counts
}

}  // namespace
}  // namespace mcfair::sim
