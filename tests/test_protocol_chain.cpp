// Tests for the Figure 7(a) protocol Markov analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/protocol_chain.hpp"
#include "sim/star.hpp"
#include "util/error.hpp"

namespace mcfair::markov {
namespace {

using sim::ProtocolKind;

TEST(ProtocolChain, SingleReceiverRedundancyIsLossInflation) {
  // With one receiver, forwarded = subscription and delivered =
  // subscription * (1 - q): redundancy must be exactly 1/(1-q).
  ProtocolChainConfig c;
  c.layers = 4;
  c.protocol = ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.02;
  c.receiverLoss = {0.03};
  const auto a = analyzeProtocolChain(c);
  const double q = 0.02 + 0.98 * 0.03;
  EXPECT_NEAR(a.redundancy, 1.0 / (1.0 - q), 1e-9);
}

TEST(ProtocolChain, ZeroLossDeterministicSitsAtTop) {
  ProtocolChainConfig c;
  c.layers = 3;
  c.protocol = ProtocolKind::kDeterministic;
  c.sharedLoss = 0.0;
  c.receiverLoss = {0.0, 0.0};
  const auto a = analyzeProtocolChain(c);
  // Absorbing at (top, top): subscription rate = 2^(3-1) = 4.
  EXPECT_NEAR(a.subscriptionRate[0], 4.0, 1e-6);
  EXPECT_NEAR(a.subscriptionRate[1], 4.0, 1e-6);
  EXPECT_NEAR(a.redundancy, 1.0, 1e-6);
}

TEST(ProtocolChain, SymmetricReceiversSymmetricRates) {
  ProtocolChainConfig c;
  c.layers = 4;
  c.protocol = ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.01;
  c.receiverLoss = {0.05, 0.05};
  const auto a = analyzeProtocolChain(c);
  EXPECT_NEAR(a.subscriptionRate[0], a.subscriptionRate[1], 1e-9);
  EXPECT_NEAR(a.meanLevel[0], a.meanLevel[1], 1e-9);
  EXPECT_GE(a.redundancy, 1.0);
}

TEST(ProtocolChain, EqualLossMaximizesRedundancy) {
  // The paper's key analytical finding: holding the total fanout loss
  // fixed, redundancy peaks when the two receivers' loss rates are equal.
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kCoordinated}) {
    ProtocolChainConfig c;
    c.layers = 4;
    c.protocol = kind;
    c.sharedLoss = 0.001;
    c.receiverLoss = {0.04, 0.04};
    const double equal = analyzeProtocolChain(c).redundancy;
    c.receiverLoss = {0.02, 0.06};
    const double skew1 = analyzeProtocolChain(c).redundancy;
    c.receiverLoss = {0.01, 0.07};
    const double skew2 = analyzeProtocolChain(c).redundancy;
    EXPECT_GE(equal, skew1 - 1e-9) << protocolName(kind);
    EXPECT_GE(skew1, skew2 - 1e-9) << protocolName(kind);
  }
}

TEST(ProtocolChain, CoordinatedBelowUncoordinated) {
  ProtocolChainConfig c;
  c.layers = 5;
  c.sharedLoss = 0.0001;
  c.receiverLoss = {0.03, 0.03};
  c.protocol = ProtocolKind::kUncoordinated;
  const double unco = analyzeProtocolChain(c).redundancy;
  c.protocol = ProtocolKind::kCoordinated;
  const double coord = analyzeProtocolChain(c).redundancy;
  EXPECT_LT(coord, unco);
}

TEST(ProtocolChain, MatchesSimulatorForUncoordinated) {
  // The chain randomizes the layer schedule; the simulator interleaves it
  // deterministically. Cross-validate with a generous tolerance.
  ProtocolChainConfig mc;
  mc.layers = 4;
  mc.protocol = ProtocolKind::kUncoordinated;
  mc.sharedLoss = 0.001;
  mc.receiverLoss = {0.05, 0.05};
  const auto analysis = analyzeProtocolChain(mc);

  sim::StarConfig sc;
  sc.receivers = 2;
  sc.layers = 4;
  sc.protocol = ProtocolKind::kUncoordinated;
  sc.sharedLossRate = 0.001;
  sc.independentLossRate = 0.05;
  sc.totalPackets = 200000;
  const auto sim = sim::estimateRedundancy(sc, 8);
  EXPECT_NEAR(sim.mean, analysis.redundancy,
              0.25 * analysis.redundancy);
}

TEST(ProtocolChain, StateCountsReasonable) {
  ProtocolChainConfig c;
  c.layers = 4;
  c.protocol = ProtocolKind::kUncoordinated;
  c.receiverLoss = {0.1, 0.1};
  c.sharedLoss = 0.0;
  EXPECT_LE(analyzeProtocolChain(c).stateCount, 16u);
  c.protocol = ProtocolKind::kCoordinated;
  EXPECT_LE(analyzeProtocolChain(c).stateCount, 64u);
}

TEST(ProtocolChain, Validation) {
  ProtocolChainConfig c;
  c.receiverLoss = {};
  EXPECT_THROW(analyzeProtocolChain(c), PreconditionError);
  c.receiverLoss = {0.1, 0.1, 0.1, 0.1, 0.1};
  EXPECT_THROW(analyzeProtocolChain(c), PreconditionError);
  c.receiverLoss = {1.0};
  EXPECT_THROW(analyzeProtocolChain(c), PreconditionError);
  c.receiverLoss = {0.1};
  c.sharedLoss = -0.1;
  EXPECT_THROW(analyzeProtocolChain(c), PreconditionError);
  c.sharedLoss = 0.0;
  c.layers = 0;
  EXPECT_THROW(analyzeProtocolChain(c), PreconditionError);
}

TEST(ProtocolChain, LevelDistributionsAreConsistent) {
  ProtocolChainConfig c;
  c.layers = 4;
  c.protocol = ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.001;
  c.receiverLoss = {0.03, 0.06};
  const auto a = analyzeProtocolChain(c);
  // Rows sum to 1.
  for (const auto& dist : a.levelDistribution) {
    double sum = 0.0;
    for (double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  double maxSum = 0.0, forwarded = 0.0, mean0 = 0.0, sub0 = 0.0;
  for (std::size_t l = 1; l <= 4; ++l) {
    maxSum += a.maxLevelDistribution[l - 1];
    forwarded +=
        a.maxLevelDistribution[l - 1] * std::ldexp(1.0, int(l) - 1);
    mean0 += a.levelDistribution[0][l - 1] * static_cast<double>(l);
    sub0 += a.levelDistribution[0][l - 1] * std::ldexp(1.0, int(l) - 1);
  }
  EXPECT_NEAR(maxSum, 1.0, 1e-9);
  EXPECT_NEAR(forwarded, a.forwardedRate, 1e-9);
  EXPECT_NEAR(mean0, a.meanLevel[0], 1e-9);
  EXPECT_NEAR(sub0, a.subscriptionRate[0], 1e-9);
}

TEST(ProtocolChain, HigherLossShiftsLevelsDownStochastically) {
  // First-order stochastic dominance: at higher loss, P(level <= l)
  // grows for every l.
  ProtocolChainConfig lo, hi;
  lo.layers = hi.layers = 4;
  lo.protocol = hi.protocol = ProtocolKind::kDeterministic;
  lo.layers = hi.layers = 3;
  lo.sharedLoss = hi.sharedLoss = 0.0;
  lo.receiverLoss = {0.02, 0.02};
  hi.receiverLoss = {0.08, 0.08};
  const auto aLo = analyzeProtocolChain(lo);
  const auto aHi = analyzeProtocolChain(hi);
  double cdfLo = 0.0, cdfHi = 0.0;
  for (std::size_t l = 0; l < 3; ++l) {
    cdfLo += aLo.levelDistribution[0][l];
    cdfHi += aHi.levelDistribution[0][l];
    EXPECT_GE(cdfHi, cdfLo - 1e-12) << "level " << l + 1;
  }
}

TEST(ProtocolChain, ThreeReceiversSupported) {
  ProtocolChainConfig c;
  c.layers = 3;
  c.protocol = ProtocolKind::kUncoordinated;
  c.sharedLoss = 0.01;
  c.receiverLoss = {0.02, 0.02, 0.02};
  const auto a = analyzeProtocolChain(c);
  EXPECT_GE(a.redundancy, 1.0);
  EXPECT_EQ(a.subscriptionRate.size(), 3u);
}

}  // namespace
}  // namespace mcfair::markov
