// Handcrafted positive/negative cases for each of the four fairness
// properties, exercising the predicates independently of the solver.
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using graph::LinkId;
using net::Network;
using net::ReceiverRef;

TEST(FullyUtilizedReceiverFair, HoldsWhenTopRatedOnSaturatedLink) {
  Network n;
  const LinkId l = n.addLink(3.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  Allocation a(n);
  a.setRate({0, 0}, 2.0);
  a.setRate({1, 0}, 1.0);  // link saturated: 3.0
  const auto usage = computeLinkUsage(n, a);
  EXPECT_TRUE(isReceiverFullyUtilizedFair(n, a, usage, {0, 0}));
  // The receiver at rate 1 is NOT top-rated on the saturated link.
  EXPECT_FALSE(isReceiverFullyUtilizedFair(n, a, usage, {1, 0}));
}

TEST(FullyUtilizedReceiverFair, SigmaPinnedReceiverIsFair) {
  Network n;
  const LinkId l = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({l}, 1.0));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);  // at sigma; link far from full
  const auto usage = computeLinkUsage(n, a);
  EXPECT_TRUE(isReceiverFullyUtilizedFair(n, a, usage, {0, 0}));
}

TEST(FullyUtilizedReceiverFair, FailsWithSlackEverywhere) {
  Network n;
  const LinkId l = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({l}));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  const auto usage = computeLinkUsage(n, a);
  EXPECT_FALSE(isReceiverFullyUtilizedFair(n, a, usage, {0, 0}));
}

TEST(SamePathFair, EqualRatesHold) {
  const Network n = net::fig2Network(true);
  Allocation a(n);
  a.setRate({0, 0}, 2.5);
  a.setRate({1, 0}, 2.5);
  EXPECT_TRUE(arePairSamePathFair(n, a, {0, 0}, {1, 0}));
}

TEST(SamePathFair, UnequalWithoutSigmaFails) {
  const Network n = net::fig2Network(false);
  Allocation a(n);
  a.setRate({0, 0}, 2.0);
  a.setRate({1, 0}, 3.0);  // sigma = 100, not pinned
  EXPECT_FALSE(arePairSamePathFair(n, a, {0, 0}, {1, 0}));
}

TEST(SamePathFair, LowerReceiverPinnedAtSigmaHolds) {
  Network n;
  const LinkId l = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({l}, 1.0, "capped"));
  n.addSession(net::makeUnicastSession({l}, net::kUnlimitedRate, "free"));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({1, 0}, 5.0);
  EXPECT_TRUE(arePairSamePathFair(n, a, {0, 0}, {1, 0}));
  // Reversed magnitudes: the lower one is no longer at ITS sigma.
  a.setRate({0, 0}, 0.5);
  EXPECT_FALSE(arePairSamePathFair(n, a, {0, 0}, {1, 0}));
}

TEST(SamePathFair, DifferentPathsVacuouslyFair) {
  const Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({1, 1}, 9.0);
  a.setRate({2, 1}, 1.0);
  // r2,2 and r3,2 share l3 but have different first hops.
  EXPECT_TRUE(arePairSamePathFair(n, a, {1, 1}, {2, 1}));
}

TEST(PerReceiverLinkFair, Fig2SingleRateS1Fails) {
  const Network n = net::fig2Network(false);
  const auto result = solveMaxMinFair(n);
  EXPECT_FALSE(isSessionPerReceiverLinkFair(n, result.allocation,
                                            result.usage, 0));
  // S2 (the unicast session) IS per-receiver-link-fair: l1 full, u2 >= u1.
  EXPECT_TRUE(isSessionPerReceiverLinkFair(n, result.allocation,
                                           result.usage, 1));
}

TEST(PerSessionLinkFair, Fig2BothHold) {
  const Network n = net::fig2Network(false);
  const auto result = solveMaxMinFair(n);
  EXPECT_TRUE(isSessionPerSessionLinkFair(n, result.allocation,
                                          result.usage, 0));
  EXPECT_TRUE(isSessionPerSessionLinkFair(n, result.allocation,
                                          result.usage, 1));
}

TEST(PerSessionLinkFair, WeakerThanPerReceiver) {
  // Any per-receiver-link-fair session allocation is also
  // per-session-link-fair (checked on the Fig 1 allocation).
  const Network n = net::fig1Network();
  const auto result = solveMaxMinFair(n);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    const bool perReceiver = isSessionPerReceiverLinkFair(
        n, result.allocation, result.usage, i);
    const bool perSession = isSessionPerSessionLinkFair(
        n, result.allocation, result.usage, i);
    EXPECT_TRUE(!perReceiver || perSession);
  }
}

TEST(PerSessionLinkFair, AllReceiversAtSigmaHolds) {
  Network n;
  const LinkId l = n.addLink(100.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.maxRate = 1.0;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  n.addSession(std::move(s));
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({0, 1}, 1.0);
  const auto usage = computeLinkUsage(n, a);
  EXPECT_TRUE(isSessionPerSessionLinkFair(n, a, usage, 0));
  EXPECT_TRUE(isSessionPerReceiverLinkFair(n, a, usage, 0));
}

TEST(WholeNetworkChecks, ReportViolations) {
  const Network n = net::fig2Network(false);
  const auto a = maxMinFairAllocation(n);
  const auto samePath = checkSamePathReceiverFairness(n, a);
  EXPECT_FALSE(samePath.holds);
  EXPECT_FALSE(samePath.violations.empty());
  // The violation message names the receivers.
  EXPECT_NE(samePath.violations.front().find("r1,1"), std::string::npos);
  EXPECT_NE(samePath.violations.front().find("r2,1"), std::string::npos);
}

TEST(CheckAllProperties, ReturnsFourInPaperOrder) {
  const Network n = net::fig1Network();
  const auto a = maxMinFairAllocation(n);
  const auto all = checkAllProperties(n, a);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].first, "fully-utilized-receiver-fairness");
  EXPECT_EQ(all[1].first, "same-path-receiver-fairness");
  EXPECT_EQ(all[2].first, "per-receiver-link-fairness");
  EXPECT_EQ(all[3].first, "per-session-link-fairness");
}

}  // namespace
}  // namespace mcfair::fairness
