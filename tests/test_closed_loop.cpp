// Tests for the closed-loop (capacity-enforcing) simulator.
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

ClosedLoopConfig quick(ProtocolKind kind, std::size_t sessions,
                       std::size_t layers = 6) {
  ClosedLoopConfig c;
  c.sessions.assign(sessions, ClosedLoopSessionConfig{kind, layers, 1});
  c.duration = 3000.0;
  c.warmup = 1000.0;
  c.seed = 3;
  return c;
}

TEST(ClosedLoop, SingleReceiverConvergesToCapacity) {
  net::Network n;
  const auto l = n.addLink(3.0);
  n.addSession(net::makeUnicastSession({l}));
  const auto r = runClosedLoopSimulation(
      n, quick(ProtocolKind::kDeterministic, 1));
  // Fair rate = capacity = 3; the protocol oscillates between levels 2
  // and 3 and delivers essentially the whole link.
  EXPECT_GT(r.measuredRate[0][0], 2.7);
  EXPECT_LE(r.measuredRate[0][0], 3.05);
  EXPECT_GT(r.meanLevel[0][0], 2.0);
  EXPECT_LT(r.linkDropRate[0], 0.15);
}

TEST(ClosedLoop, UncongestedSessionReachesTopLayer) {
  net::Network n;
  const auto l = n.addLink(100.0);
  n.addSession(net::makeUnicastSession({l}));
  const auto r = runClosedLoopSimulation(
      n, quick(ProtocolKind::kCoordinated, 1, 6));
  // Cumulative top rate with 6 layers is 32 < 100: no drops, top level.
  EXPECT_NEAR(r.measuredRate[0][0], 32.0, 1.0);
  EXPECT_NEAR(r.meanLevel[0][0], 6.0, 0.1);
  EXPECT_DOUBLE_EQ(r.linkDropRate[0], 0.0);
}

TEST(ClosedLoop, CapacityIsRespectedEverywhere) {
  const net::Network n = net::fig2Network(true);
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
        ProtocolKind::kCoordinated}) {
    const auto r = runClosedLoopSimulation(n, quick(kind, 2));
    for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
      // Long-run forwarded rate cannot exceed capacity (small slack for
      // the bucket emptying during the window).
      EXPECT_LE(r.linkThroughput[j],
                n.capacity(graph::LinkId{j}) * 1.02)
          << "link " << j << " under " << protocolName(kind);
    }
  }
}

TEST(ClosedLoop, TailBottlenecksConvergeExactly) {
  // Fig 2 multi-rate: r1,2 (tail c=2) and r1,3 (tail c=3) have clean
  // private bottlenecks matching layer rates; the protocols settle on
  // their exact fair rates.
  const net::Network n = net::fig2Network(true);
  const auto r = runClosedLoopSimulation(
      n, quick(ProtocolKind::kCoordinated, 2));
  EXPECT_NEAR(r.measuredRate[0][1], 2.0, 0.15);
  EXPECT_NEAR(r.measuredRate[0][2], 3.0, 0.25);
}

TEST(ClosedLoop, ApproachesMaxMinFairness) {
  // The paper's qualitative claim: receiver rates end up close to the
  // max-min fair allocation. Seed-averaged mean relative gap < 0.35 for
  // every protocol on the Fig 2 network.
  const net::Network n = net::fig2Network(true);
  const auto fair = fairness::maxMinFairAllocation(n);
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
        ProtocolKind::kCoordinated}) {
    double gap = 0.0;
    const int seeds = 5;
    for (int s = 1; s <= seeds; ++s) {
      ClosedLoopConfig c = quick(kind, 2);
      c.seed = static_cast<std::uint64_t>(s);
      gap += fairnessGap(n, runClosedLoopSimulation(n, c), fair);
    }
    EXPECT_LT(gap / seeds, 0.35) << protocolName(kind);
  }
}

TEST(ClosedLoop, MultiRateReceiversGetHeterogeneousRates) {
  // One layered session, two receivers behind very different tails: the
  // closed loop realizes the multi-rate benefit end to end.
  net::Network n;
  const auto shared = n.addLink(50.0);
  const auto slow = n.addLink(2.0);
  const auto fast = n.addLink(16.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, slow}, "slow"),
                 net::makeReceiver({shared, fast}, "fast")};
  n.addSession(std::move(s));
  const auto r = runClosedLoopSimulation(
      n, quick(ProtocolKind::kCoordinated, 1));
  EXPECT_NEAR(r.measuredRate[0][0], 2.0, 0.3);
  EXPECT_GT(r.measuredRate[0][1], 10.0);  // fair = 16
}

TEST(ClosedLoop, EqualSplitOnSharedBottleneck) {
  // Two identical unicast sessions on c=8: seed-averaged rates near 4.
  net::Network n;
  const auto l = n.addLink(8.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  double r1 = 0.0, r2 = 0.0;
  const int seeds = 6;
  for (int s = 1; s <= seeds; ++s) {
    ClosedLoopConfig c = quick(ProtocolKind::kDeterministic, 2);
    c.seed = static_cast<std::uint64_t>(s);
    const auto r = runClosedLoopSimulation(n, c);
    r1 += r.measuredRate[0][0];
    r2 += r.measuredRate[1][0];
  }
  r1 /= seeds;
  r2 /= seeds;
  EXPECT_LE(r1 + r2, 8.2);
  EXPECT_GT(r1 + r2, 6.0);       // the link is well used
  EXPECT_NEAR(r1, 4.0, 1.6);     // within the discrete-level oscillation
  EXPECT_NEAR(r2, 4.0, 1.6);
}

TEST(ClosedLoop, SessionLinkRatesAccounted) {
  const net::Network n = net::fig2Network(true);
  const auto r = runClosedLoopSimulation(
      n, quick(ProtocolKind::kCoordinated, 2));
  // Per-link throughput equals the sum of session link rates.
  for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      sum += r.sessionLinkRate[i][j];
    }
    EXPECT_NEAR(sum, r.linkThroughput[j], 1e-9);
  }
}

TEST(ClosedLoop, DeterministicGivenSeed) {
  const net::Network n = net::fig2Network(true);
  const auto a = runClosedLoopSimulation(n, quick(ProtocolKind::kUncoordinated, 2));
  const auto b = runClosedLoopSimulation(n, quick(ProtocolKind::kUncoordinated, 2));
  EXPECT_EQ(a.measuredRate, b.measuredRate);
  EXPECT_EQ(a.linkThroughput, b.linkThroughput);
}

TEST(ClosedLoop, FairnessGapZeroOnExactMatch) {
  net::Network n;
  const auto l = n.addLink(4.0);
  n.addSession(net::makeUnicastSession({l}));
  ClosedLoopResult r;
  r.measuredRate = {{4.0}};
  fairness::Allocation a(n);
  a.setRate({0, 0}, 4.0);
  EXPECT_DOUBLE_EQ(fairnessGap(n, r, a), 0.0);
}

TEST(ClosedLoop, FairEpochsTrackSessionLifetimes) {
  // Two unicast sessions sharing one link of capacity 6; session 1 lives
  // only in [1000, 2000), so the fair reference is 6 / 3 / 6 across the
  // three epochs.
  net::Network n;
  const auto l = n.addLink(6.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  ClosedLoopConfig c = quick(ProtocolKind::kCoordinated, 2);
  c.computeFairEpochs = true;
  c.sessions[1].startTime = 1000.0;
  c.sessions[1].stopTime = 2000.0;
  const auto r = runClosedLoopSimulation(n, c);

  ASSERT_EQ(r.fairEpochs.size(), 3u);
  EXPECT_DOUBLE_EQ(r.fairEpochs[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(r.fairEpochs[0].end, 1000.0);
  EXPECT_DOUBLE_EQ(r.fairEpochs[1].end, 2000.0);
  EXPECT_DOUBLE_EQ(r.fairEpochs[2].end, c.duration);

  ASSERT_EQ(r.fairEpochs[0].sessions, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(r.fairEpochs[0].fairRate[0][0], 6.0, 1e-9);
  ASSERT_EQ(r.fairEpochs[1].sessions, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(r.fairEpochs[1].fairRate[0][0], 3.0, 1e-9);
  EXPECT_NEAR(r.fairEpochs[1].fairRate[1][0], 3.0, 1e-9);
  ASSERT_EQ(r.fairEpochs[2].sessions, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(r.fairEpochs[2].fairRate[0][0], 6.0, 1e-9);
}

TEST(ClosedLoop, FairEpochsAbsentByDefault) {
  net::Network n;
  const auto l = n.addLink(4.0);
  n.addSession(net::makeUnicastSession({l}));
  const auto r =
      runClosedLoopSimulation(n, quick(ProtocolKind::kCoordinated, 1));
  EXPECT_TRUE(r.fairEpochs.empty());
}

TEST(ClosedLoop, Validation) {
  net::Network n;
  const auto l = n.addLink(4.0);
  n.addSession(net::makeUnicastSession({l}));
  ClosedLoopConfig c = quick(ProtocolKind::kCoordinated, 1);
  c.sessions.push_back(ClosedLoopSessionConfig{});  // wrong count
  EXPECT_THROW(runClosedLoopSimulation(n, c), PreconditionError);
  c = quick(ProtocolKind::kCoordinated, 1);
  c.warmup = c.duration;
  EXPECT_THROW(runClosedLoopSimulation(n, c), PreconditionError);
  c = quick(ProtocolKind::kCoordinated, 1);
  c.tokenBurst = 0.0;
  EXPECT_THROW(runClosedLoopSimulation(n, c), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
