// Parity and allocation tests for the parallel (sharded) solver mode.
//
// The parallel path promises results BIT-IDENTICAL to the serial path:
// every per-link computation is the same arithmetic on the same inputs,
// and every shard merge happens in active-list order, so no tolerance is
// needed — rates must compare equal with ==. The corpus mirrors the
// serial-vs-reference parity families (routed, arbitrary link-set,
// weighted, nonlinear-v_i bisection) and runs each network at 1, 2, 4,
// and 8 threads with parallelGrain = 1, forcing the sharded sweeps even
// on tiny networks. A large single-bottleneck instance additionally
// exercises sharding past the default grain.
//
// The counting global allocator (same instrumentation as
// test_maxmin_zero_alloc) then pins the allocation contract for BOTH
// modes: a bound solver's steady-state re-solves allocate nothing,
// whether the sweeps run serial (threads = 0) or sharded across the
// worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
// Atomic: operator new can run on pool worker threads too.
std::atomic<std::size_t> g_allocations{0};

// C11 aligned_alloc requires size to be a multiple of the alignment
// (glibc is lenient, macOS is not).
std::size_t roundUp(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  return (size + a - 1) / a * a;
}
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mcfair::fairness {
namespace {

using net::Network;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

MaxMinSolver makeParallelSolver(int threads) {
  MaxMinOptions options;
  options.threads = threads;
  options.parallelGrain = 1;  // force sharding even on tiny networks
  return MaxMinSolver(options);
}

// Serial and parallel solves of the same network must agree bit for bit.
void expectBitIdentical(const Network& n, MaxMinSolver& serial,
                        MaxMinSolver parallel[4], const std::string& label) {
  const MaxMinResult& want = serial.solve(n);
  for (std::size_t t = 0; t < 4; ++t) {
    const MaxMinResult& got = parallel[t].solve(n);
    std::string ctx = label;
    ctx += " @ ";
    ctx += std::to_string(kThreadCounts[t]);
    ctx += " threads";
    EXPECT_EQ(got.rounds, want.rounds) << ctx;
    for (const auto ref : n.receiverRefs()) {
      EXPECT_EQ(got.allocation.rate(ref), want.allocation.rate(ref))
          << ctx << ": receiver (" << ref.session << "," << ref.receiver
          << ")";
    }
    for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
      EXPECT_EQ(got.usage.linkRate[j], want.usage.linkRate[j])
          << ctx << ": link " << j;
    }
  }
}

// Arbitrary link-set data-paths (not tree-routed), optional non-unit
// weights and finite sigma — same family as the serial parity corpus.
Network randomLinkSetNetwork(util::Rng& rng, bool randomWeights) {
  Network n;
  const std::size_t links = 3 + rng.below(8);
  std::vector<graph::LinkId> ids;
  for (std::size_t j = 0; j < links; ++j) {
    ids.push_back(n.addLink(rng.uniform(1.0, 12.0)));
  }
  const std::size_t sessions = 1 + rng.below(5);
  for (std::size_t i = 0; i < sessions; ++i) {
    net::Session s;
    s.type = rng.bernoulli(0.4) ? net::SessionType::kSingleRate
                                : net::SessionType::kMultiRate;
    if (rng.bernoulli(0.3)) s.maxRate = rng.uniform(0.5, 6.0);
    const std::size_t receivers = 1 + rng.below(4);
    const double sharedWeight = rng.uniform(0.25, 4.0);
    for (std::size_t k = 0; k < receivers; ++k) {
      std::vector<graph::LinkId> path;
      const std::size_t hops = 1 + rng.below(std::min<std::size_t>(links, 4));
      for (std::size_t h = 0; h < hops; ++h) {
        path.push_back(ids[rng.below(links)]);
      }
      auto r = net::makeReceiver(std::move(path));
      if (randomWeights) {
        r.weight = s.type == net::SessionType::kSingleRate
                       ? sharedWeight
                       : rng.uniform(0.25, 4.0);
      }
      s.receivers.push_back(std::move(r));
    }
    n.addSession(std::move(s));
  }
  return n;
}

class ParallelCorpus : public ::testing::Test {
 protected:
  ParallelCorpus()
      : parallel_{makeParallelSolver(1), makeParallelSolver(2),
                  makeParallelSolver(4), makeParallelSolver(8)} {
    serialOptions_.threads = 0;
    serial_ = MaxMinSolver(serialOptions_);
  }

  MaxMinOptions serialOptions_;
  MaxMinSolver serial_;
  MaxMinSolver parallel_[4];
};

TEST_F(ParallelCorpus, RoutedRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    net::RandomNetworkOptions opts;
    opts.sessions = 2 + seed % 5;
    opts.singleRateProbability = 0.4;
    const Network n = net::randomNetwork(rng, opts);
    expectBitIdentical(n, serial_, parallel_,
                       "routed seed " + std::to_string(seed));
  }
}

TEST_F(ParallelCorpus, LinkSetNetworks) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    util::Rng rng(seed);
    const Network n = randomLinkSetNetwork(rng, /*randomWeights=*/false);
    expectBitIdentical(n, serial_, parallel_,
                       "linkset seed " + std::to_string(seed));
  }
}

TEST_F(ParallelCorpus, WeightedNetworks) {
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    util::Rng rng(seed);
    const Network n = randomLinkSetNetwork(rng, /*randomWeights=*/true);
    expectBitIdentical(n, serial_, parallel_,
                       "weighted seed " + std::to_string(seed));
  }
}

TEST_F(ParallelCorpus, NonlinearBisectionPath) {
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    util::Rng rng(seed);
    net::RandomNetworkOptions opts;
    opts.sessions = 2 + seed % 4;
    opts.singleRateProbability = 0.3;
    Network n = net::randomNetwork(rng, opts);
    // RandomJoinExpected is monotone but not rate-linear: it forces the
    // sharded bisection sweep on every session it is applied to.
    const auto fn = std::make_shared<const net::RandomJoinExpected>(50.0);
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      if (i % 2 == 0) n = n.withLinkRateFunction(i, fn);
    }
    expectBitIdentical(n, serial_, parallel_,
                       "nonlinear seed " + std::to_string(seed));
  }
}

TEST_F(ParallelCorpus, WeightedNonlinearNetworks) {
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    util::Rng rng(seed);
    Network n = randomLinkSetNetwork(rng, /*randomWeights=*/true);
    const auto fn = std::make_shared<const net::RandomJoinExpected>(80.0);
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      if (i % 2 == 0) n = n.withLinkRateFunction(i, fn);
    }
    expectBitIdentical(n, serial_, parallel_,
                       "weighted-nonlinear seed " + std::to_string(seed));
  }
}

TEST_F(ParallelCorpus, PaperTopologies) {
  expectBitIdentical(net::fig1Network(), serial_, parallel_, "fig1");
  expectBitIdentical(net::fig2Network(true), serial_, parallel_,
                     "fig2 multi");
  expectBitIdentical(net::fig2Network(false), serial_, parallel_,
                     "fig2 single");
  expectBitIdentical(net::fig4Network(), serial_, parallel_, "fig4");
}

// Sharding past the default grain: thousands of active links, so the
// sweeps actually split across the pool without the grain override.
// Fault churn through the sharded solver: capacity deltas (down /
// degrade / repair via Network::setCapacity) followed by the O(links)
// capacity-refresh rebind. Every re-solve must stay bit-identical to
// serial at every thread count; run under TSan this also proves the
// concurrent sweeps stay race-free through repeated refreshes, including
// zero-capacity (failed) links that sever receivers outright.
TEST_F(ParallelCorpus, FaultChurnResolvesBitIdentically) {
  util::Rng rng(4242);
  net::RandomNetworkOptions opts;
  opts.sessions = 6;
  Network n = net::randomNetwork(rng, opts);
  std::vector<double> base;
  for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
    base.push_back(n.capacity(graph::LinkId{j}));
  }
  for (int step = 0; step < 24; ++step) {
    const graph::LinkId l{
        static_cast<std::uint32_t>(rng.below(n.linkCount()))};
    const double cap = step % 3 == 0   ? 0.0                  // down
                       : step % 3 == 1 ? 0.5 * base[l.value]  // degrade
                                       : base[l.value];       // repair
    n.setCapacity(l, cap);
    expectBitIdentical(n, serial_, parallel_,
                       "churn step " + std::to_string(step));
  }
}

TEST(MaxMinParallel, LargeBottleneckDefaultGrain) {
  const auto linear = net::singleBottleneckNetwork(1024, 100, 1000.0, 2.0);
  auto nonlinear = net::singleBottleneckNetwork(512, 50, 1000.0, 2.0);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(1e4);
  for (std::size_t i = 0; i < nonlinear.sessionCount(); ++i) {
    nonlinear = nonlinear.withLinkRateFunction(i, fn);
  }
  MaxMinOptions serialOptions;
  serialOptions.threads = 0;
  MaxMinSolver serial(serialOptions);
  MaxMinOptions parallelOptions;
  parallelOptions.threads = 4;  // default parallelGrain
  MaxMinSolver parallel(parallelOptions);
  const Network* instances[] = {&linear, &nonlinear};
  for (const Network* n : instances) {
    const MaxMinResult& want = serial.solve(*n);
    const MaxMinResult& got = parallel.solve(*n);
    EXPECT_EQ(got.rounds, want.rounds);
    for (const auto ref : n->receiverRefs()) {
      EXPECT_EQ(got.allocation.rate(ref), want.allocation.rate(ref));
    }
  }
}

TEST(MaxMinParallel, EnvFallbackResolvesThreadCount) {
  ::setenv("MCFAIR_THREADS", "3", 1);
  MaxMinSolver fromEnv;  // options.threads = -1
  EXPECT_EQ(fromEnv.threadCount(), 3u);
  ::setenv("MCFAIR_THREADS", "garbage", 1);
  MaxMinSolver invalid;
  EXPECT_EQ(invalid.threadCount(), 0u);
  ::unsetenv("MCFAIR_THREADS");
  MaxMinSolver unset;
  EXPECT_EQ(unset.threadCount(), 0u);
  MaxMinOptions explicitSerial;
  explicitSerial.threads = 0;
  EXPECT_EQ(MaxMinSolver(explicitSerial).threadCount(), 0u);
}

// The serial (threads = 0) steady state keeps its zero-allocation
// guarantee — same contract test_maxmin_zero_alloc pins for the default
// configuration, re-checked here under an explicit threads = 0.
TEST(MaxMinParallelAlloc, SerialSteadyStateAllocatesNothing) {
  const auto n = net::singleBottleneckNetwork(64, 6, 1000.0, 2.0);
  MaxMinOptions options;
  options.threads = 0;
  options.validate.enabled = 0;  // the MCFAIR_VALIDATE oracle allocates
  MaxMinSolver solver(options);
  solver.bind(n);
  (void)solver.solve();  // warm-up builds workspace capacity
  const std::size_t before = g_allocations;
  (void)solver.solveAllocation();
  (void)solver.solve();
  EXPECT_EQ(g_allocations - before, 0u);
}

// The sharded steady state is allocation-free too: the pool, the shard
// scratch, and the shard bounds all live in the solver workspace.
TEST(MaxMinParallelAlloc, ParallelSteadyStateAllocatesNothing) {
  auto n = net::singleBottleneckNetwork(256, 25, 1000.0, 2.0);
  MaxMinOptions options;
  options.threads = 4;
  options.parallelGrain = 1;
  options.validate.enabled = 0;  // the MCFAIR_VALIDATE oracle allocates
  MaxMinSolver solver(options);
  solver.bind(n);
  (void)solver.solve();  // warm-up
  const std::size_t before = g_allocations;
  (void)solver.solveAllocation();
  (void)solver.solve();
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  auto body = [&](std::size_t s) { hits[s].fetch_add(1); };
  pool.forEachShard(hits.size(), util::ShardFnRef(body));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesShardExceptionsAndStaysReusable) {
  util::ThreadPool pool(4);
  auto throwing = [&](std::size_t s) {
    if (s == 7) throw std::runtime_error("shard 7 failed");
  };
  EXPECT_THROW(pool.forEachShard(64, util::ShardFnRef(throwing)),
               std::runtime_error);
  // The barrier must have drained: the pool still runs new jobs.
  std::atomic<int> ran{0};
  auto counting = [&](std::size_t) { ran.fetch_add(1); };
  pool.forEachShard(32, util::ShardFnRef(counting));
  EXPECT_EQ(ran.load(), 32);
}

// The fault path is allocation-free end to end: setCapacity mutates the
// network in place, and the capacity-refresh rebind plus the sharded
// re-solve reuse the bound workspace — no per-fault heap traffic.
TEST(MaxMinParallelAlloc, FaultChurnStaysAllocationFree) {
  auto n = net::fig2Network(true);
  std::vector<double> base;
  for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
    base.push_back(n.capacity(graph::LinkId{j}));
  }
  MaxMinOptions options;
  options.threads = 2;
  options.parallelGrain = 1;
  options.validate.enabled = 0;  // the MCFAIR_VALIDATE oracle allocates
  MaxMinSolver solver(options);
  solver.bind(n);
  (void)solver.solve();  // warm-up builds workspace capacity
  const std::size_t before = g_allocations;
  for (std::uint32_t step = 0; step < 30; ++step) {
    const graph::LinkId l{step % static_cast<std::uint32_t>(n.linkCount())};
    const double cap = step % 3 == 0   ? 0.0
                       : step % 3 == 1 ? 0.5 * base[l.value]
                                       : base[l.value];
    n.setCapacity(l, cap);
    solver.bind(n);  // structure unchanged: O(links) refresh in place
    (void)solver.solveAllocation();
  }
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST(MaxMinParallelAlloc, NonlinearParallelSteadyStateAllocatesNothing) {
  auto n = net::fig2Network(true);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(100.0);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  MaxMinOptions options;
  options.threads = 2;
  options.parallelGrain = 1;
  options.validate.enabled = 0;  // the MCFAIR_VALIDATE oracle allocates
  MaxMinSolver solver(options);
  solver.bind(n);
  (void)solver.solve();
  const std::size_t before = g_allocations;
  (void)solver.solve();
  EXPECT_EQ(g_allocations - before, 0u);
}

}  // namespace
}  // namespace mcfair::fairness
