// Behavioral coverage of serve::FairshareService:
//
//  * exact queries match the reference oracle bit for bit and answer
//    from cache while the state is clean;
//  * degraded (budget-blown) answers are bitwise-equal to a direct
//    fairness::SampledSolver solve with the same options on the same
//    network — the acceptance criterion of the degradation path;
//  * the demote/promote hysteresis latches exactly at
//    degradeAfter/promoteAfter consecutive decisions and what-if
//    queries never shift it;
//  * every what-if matches the corresponding immutable-copy solve and
//    the live state is restored afterwards;
//  * deltas ride the base-capacity x fault-factor model, malformed
//    deltas return structured codes and land in the bounded quarantine
//    with the state untouched, and tryApplyDelta reports kBusy when the
//    lock is held (driven deterministically through the rebind hook).
#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "fairness/maxmin.hpp"
#include "fairness/sampled.hpp"
#include "net/topologies.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace mcfair::serve {
namespace {

constexpr double kUnbudgeted = 0.0;

void expectRatesEqual(const net::Network& shape,
                      const fairness::Allocation& a,
                      const fairness::Allocation& b) {
  for (const net::ReceiverRef ref : shape.receiverRefs()) {
    EXPECT_EQ(a.rate(ref), b.rate(ref))
        << "receiver (" << ref.session << ", " << ref.receiver << ")";
  }
}

TEST(FairshareService, ExactQueryMatchesOracleAndCaches) {
  FairshareService service(net::fig3aNetwork(false));
  const QueryResult q = service.query(kUnbudgeted);
  ASSERT_EQ(q.status, ServiceStatus::kOk);
  EXPECT_FALSE(q.degraded);
  EXPECT_EQ(q.revision, 0u);
  ASSERT_NE(q.rates, nullptr);
  expectRatesEqual(service.network(),
                   fairness::maxMinFairAllocation(service.network()),
                   *q.rates);
  // Clean state: the second query answers from the cached allocation.
  const QueryResult again = service.query(kUnbudgeted);
  EXPECT_EQ(again.rates, q.rates);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.exactAnswers, 2u);
  EXPECT_EQ(m.degradedAnswers, 0u);
  EXPECT_EQ(m.exactQuery.stats.count(), 2u);
  EXPECT_EQ(m.exactQuery.p50.count(), 2u);
  EXPECT_EQ(m.exactQuery.p999.count(), 2u);
}

TEST(FairshareService, DegradedAnswerIsBitwiseEqualToDirectSampledSolve) {
  ServiceOptions options;
  options.exactCostOverride = 10.0;  // every finite budget is blown
  options.degradeAfter = 1000;       // decide per query, never latch
  options.sampled.sampleFraction = 0.5;
  options.sampled.seed = 7;
  FairshareService service(
      net::singleBottleneckNetwork(12, 3, 40.0, 1.0), options);

  const QueryResult q = service.query(1e-6);
  ASSERT_EQ(q.status, ServiceStatus::kOk);
  EXPECT_TRUE(q.degraded);

  // The acceptance criterion: a direct SampledSolver with the same
  // options on the same network must produce the same estimate bit for
  // bit (the sample is deterministic in structure, seed, fraction).
  fairness::SampledSolver direct(options.sampled);
  (void)direct.solve(service.network());
  expectRatesEqual(service.network(), direct.estimateAllocation(), *q.rates);

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.degradedAnswers, 1u);
  EXPECT_EQ(m.degradedQuery.stats.count(), 1u);
}

TEST(FairshareService, UnbudgetedQueriesAreAlwaysExact) {
  ServiceOptions options;
  options.exactCostOverride = 10.0;
  FairshareService service(net::fig3aNetwork(false), options);
  EXPECT_FALSE(service.query(0.0).degraded);
  EXPECT_FALSE(service.query(-1.0).degraded);
  EXPECT_FALSE(
      service.query(std::numeric_limits<double>::infinity()).degraded);
  // A clean exact cache is free, so even a tiny budget affords it.
  EXPECT_FALSE(service.query(1e-9).degraded);
}

TEST(FairshareService, HysteresisDemotesAndPromotesOnExactStreaks) {
  ServiceOptions options;
  options.exactCostOverride = 1.0;
  options.degradeAfter = 2;
  options.promoteAfter = 2;
  FairshareService service(net::fig3aNetwork(false), options);

  // Dirty state + blown budget: degraded answers, mode latches on the
  // second consecutive one.
  EXPECT_TRUE(service.query(0.5).degraded);
  EXPECT_FALSE(service.degradedMode());
  EXPECT_TRUE(service.query(0.5).degraded);
  EXPECT_TRUE(service.degradedMode());
  EXPECT_EQ(service.metrics().demotions, 1u);

  // Affordable queries while degraded: still degraded until the streak
  // reaches promoteAfter; a blown budget in between resets it.
  EXPECT_TRUE(service.query(2.0).degraded);
  EXPECT_TRUE(service.query(0.5).degraded);  // resets the streak
  EXPECT_TRUE(service.query(2.0).degraded);
  EXPECT_TRUE(service.degradedMode());
  const QueryResult promoted = service.query(2.0);
  EXPECT_FALSE(promoted.degraded);  // the promoting query answers exact
  EXPECT_FALSE(service.degradedMode());
  EXPECT_EQ(service.metrics().promotions, 1u);
}

TEST(FairshareService, WhatIfsDoNotShiftTheHysteresis) {
  ServiceOptions options;
  options.exactCostOverride = 1.0;
  options.degradeAfter = 2;
  options.promoteAfter = 2;
  FairshareService service(net::fig3aNetwork(false), options);
  EXPECT_TRUE(service.query(0.5).degraded);
  EXPECT_TRUE(service.query(0.5).degraded);
  ASSERT_TRUE(service.degradedMode());

  // Affordable what-ifs answer exact but never count toward promotion.
  for (int i = 0; i < 5; ++i) {
    const QueryResult w =
        service.whatIfCapacity(graph::LinkId{0}, 8.0, 2.0);
    ASSERT_EQ(w.status, ServiceStatus::kOk);
    EXPECT_FALSE(w.degraded);
    EXPECT_TRUE(service.degradedMode());
  }
  // Real queries still need the full streak.
  EXPECT_TRUE(service.query(2.0).degraded);
  EXPECT_FALSE(service.query(2.0).degraded);
  EXPECT_FALSE(service.degradedMode());
}

TEST(FairshareService, WhatIfsMatchImmutableCopySolvesAndRestoreState) {
  FairshareService service(net::fig3aNetwork(false));
  const net::Network& live = service.network();
  const fairness::Allocation base = fairness::maxMinFairAllocation(live);

  {  // Capacity re-provisioning (in-place swap + restore).
    const QueryResult q =
        service.whatIfCapacity(graph::LinkId{0}, 8.0, kUnbudgeted);
    ASSERT_EQ(q.status, ServiceStatus::kOk);
    expectRatesEqual(live,
                     fairness::maxMinFairAllocation(
                         live.withCapacity(graph::LinkId{0}, 8.0)),
                     *q.rates);
    EXPECT_EQ(live.capacity(graph::LinkId{0}), 4.0);  // restored
    expectRatesEqual(live, base, *service.query(kUnbudgeted).rates);
  }
  {  // Receiver removal (the Section 2.5 question).
    const QueryResult q =
        service.whatIfWithoutReceiver(net::fig3RemovedReceiver());
    ASSERT_EQ(q.status, ServiceStatus::kOk);
    const net::Network shrunk =
        live.withoutReceiver(net::fig3RemovedReceiver());
    expectRatesEqual(shrunk, fairness::maxMinFairAllocation(shrunk),
                     *q.rates);
  }
  {  // Session-type change (Lemma 3).
    const QueryResult q =
        service.whatIfSessionType(2, net::SessionType::kSingleRate);
    ASSERT_EQ(q.status, ServiceStatus::kOk);
    const net::Network single =
        live.withSessionType(2, net::SessionType::kSingleRate);
    expectRatesEqual(single, fairness::maxMinFairAllocation(single),
                     *q.rates);
  }
  {  // Link-rate (redundancy) change (Lemma 4).
    const auto fn = std::make_shared<const net::ConstantFactor>(1.5);
    const QueryResult q = service.whatIfLinkRate(0, fn);
    ASSERT_EQ(q.status, ServiceStatus::kOk);
    const net::Network redundant = live.withLinkRateFunction(0, fn);
    expectRatesEqual(redundant, fairness::maxMinFairAllocation(redundant),
                     *q.rates);
  }
  // The live answer is unchanged after all four hypotheticals.
  expectRatesEqual(live, base, *service.query(kUnbudgeted).rates);
  EXPECT_EQ(service.revision(), 0u);
}

TEST(FairshareService, WhatIfErrorsReturnStructuredCodes) {
  FairshareService service(net::fig3aNetwork(false));
  EXPECT_EQ(service.whatIfCapacity(graph::LinkId{99}, 8.0, 0.0).status,
            ServiceStatus::kUnknownLink);
  EXPECT_EQ(service.whatIfCapacity(graph::LinkId{0}, -1.0, 0.0).status,
            ServiceStatus::kBadCapacity);
  EXPECT_EQ(service
                .whatIfCapacity(graph::LinkId{0},
                                std::numeric_limits<double>::infinity(), 0.0)
                .status,
            ServiceStatus::kBadCapacity);
  EXPECT_EQ(service.whatIfWithoutReceiver({99, 0}).status,
            ServiceStatus::kUnknownSession);
  // Removing a nonexistent receiver of a valid session is malformed.
  EXPECT_EQ(service.whatIfWithoutReceiver({0, 99}).status,
            ServiceStatus::kMalformed);
  EXPECT_EQ(service.whatIfSessionType(99, net::SessionType::kSingleRate)
                .status,
            ServiceStatus::kUnknownSession);
  EXPECT_EQ(service.whatIfLinkRate(0, nullptr).status,
            ServiceStatus::kMalformed);
  EXPECT_EQ(service.whatIfLinkRate(99,
                                   std::make_shared<const net::ConstantFactor>(
                                       2.0))
                .status,
            ServiceStatus::kUnknownSession);
  // Removing the only receiver of a unicast session is malformed.
  net::Network solo;
  const auto l = solo.addLink(5.0);
  solo.addSession(net::makeUnicastSession({l}));
  FairshareService soloService(std::move(solo));
  EXPECT_EQ(soloService.whatIfWithoutReceiver({0, 0}).status,
            ServiceStatus::kMalformed);
}

TEST(FairshareService, DeltasComposeBaseCapacityWithFaultFactor) {
  FairshareService service(net::fig3aNetwork(false));
  const graph::LinkId l0{0};
  const auto fault = [&](net::FaultKind kind, double factor) {
    return faultDelta(net::FaultEvent{0.0, kind, l0, factor});
  };

  ASSERT_EQ(service.applyDelta(setCapacityDelta(l0, 8.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 8.0);
  ASSERT_EQ(service.applyDelta(fault(net::FaultKind::kDegrade, 0.5)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 4.0);
  // Re-provisioning under an active fault keeps the factor applied.
  ASSERT_EQ(service.applyDelta(setCapacityDelta(l0, 6.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 3.0);
  ASSERT_EQ(service.applyDelta(fault(net::FaultKind::kLinkUp, 1.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 6.0);
  ASSERT_EQ(service.applyDelta(fault(net::FaultKind::kLinkDown, 1.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 0.0);
  ASSERT_EQ(service.applyDelta(fault(net::FaultKind::kLinkUp, 1.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.network().capacity(l0), 6.0);

  EXPECT_EQ(service.revision(), 6u);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.appliedDeltas, 6u);
  EXPECT_EQ(m.deltaApply.stats.count(), 6u);
  // The post-delta query reflects the final state exactly.
  expectRatesEqual(service.network(),
                   fairness::maxMinFairAllocation(service.network()),
                   *service.query(kUnbudgeted).rates);
}

TEST(FairshareService, JoinThenLeaveRoundTripsTheAllocation) {
  FairshareService service(net::fig3aNetwork(false));
  const std::vector<double> base =
      service.query(kUnbudgeted).rates->orderedRates();
  const std::vector<std::uint64_t> baseIds = service.sessionIds();

  net::Session extra;
  extra.name = "guest";
  extra.receivers.push_back(net::makeReceiver({graph::LinkId{0}}, "g1"));
  ASSERT_EQ(service.applyDelta(joinDelta(7, extra)), ServiceStatus::kOk);
  EXPECT_EQ(service.network().sessionCount(), 4u);
  EXPECT_EQ(service.sessionIds().back(), 7u);
  EXPECT_NE(service.query(kUnbudgeted).rates->orderedRates().size(),
            base.size());

  ASSERT_EQ(service.applyDelta(leaveDelta(7)), ServiceStatus::kOk);
  EXPECT_EQ(service.sessionIds(), baseIds);
  EXPECT_EQ(service.query(kUnbudgeted).rates->orderedRates(), base);
}

TEST(FairshareService, RejectionsQuarantineWithoutTouchingState) {
  FairshareService service(net::fig3aNetwork(false));
  const std::vector<double> base =
      service.query(kUnbudgeted).rates->orderedRates();
  const graph::LinkId l0{0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  net::Session dup;
  dup.receivers.push_back(net::makeReceiver({l0}));
  net::Session noReceivers;
  net::Session badSigma = dup;
  badSigma.maxRate = nan;
  net::Session badWeight = dup;
  badWeight.receivers[0].weight = -1.0;
  net::Session nonUniform = dup;
  nonUniform.type = net::SessionType::kSingleRate;
  nonUniform.receivers.push_back(net::makeReceiver({l0}));
  nonUniform.receivers[1].weight = 2.0;
  net::Session badLink = dup;
  badLink.receivers[0].dataPath = {graph::LinkId{99}};
  net::Session emptyPath;
  emptyPath.receivers.push_back(net::Receiver{});

  const std::vector<std::pair<Delta, ServiceStatus>> rejects = {
      {setCapacityDelta(graph::LinkId{99}, 5.0),
       ServiceStatus::kUnknownLink},
      {setCapacityDelta(l0, nan), ServiceStatus::kBadCapacity},
      {setCapacityDelta(l0, -2.0), ServiceStatus::kBadCapacity},
      {setCapacityDelta(l0, inf), ServiceStatus::kBadCapacity},
      {faultDelta({0.0, net::FaultKind::kDegrade, graph::LinkId{99}, 0.5}),
       ServiceStatus::kUnknownLink},
      {faultDelta({0.0, net::FaultKind::kDegrade, l0, 0.0}),
       ServiceStatus::kBadCapacity},
      {faultDelta({0.0, net::FaultKind::kDegrade, l0, nan}),
       ServiceStatus::kBadCapacity},
      {joinDelta(0, dup), ServiceStatus::kDuplicateSession},
      {joinDelta(10, noReceivers), ServiceStatus::kMalformed},
      {joinDelta(11, badSigma), ServiceStatus::kMalformed},
      {joinDelta(12, badWeight), ServiceStatus::kMalformed},
      {joinDelta(13, nonUniform), ServiceStatus::kMalformed},
      {joinDelta(14, badLink), ServiceStatus::kUnknownLink},
      {joinDelta(15, emptyPath), ServiceStatus::kMalformed},
      {leaveDelta(42), ServiceStatus::kUnknownSession},
  };
  for (const auto& [delta, expected] : rejects) {
    EXPECT_EQ(service.applyDelta(delta), expected)
        << serviceStatusName(expected);
  }

  EXPECT_EQ(service.revision(), 0u);
  EXPECT_EQ(service.metrics().rejectedDeltas, rejects.size());
  const auto held = service.quarantined();
  ASSERT_EQ(held.size(), rejects.size());
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].status, rejects[i].second) << "entry " << i;
    EXPECT_FALSE(held[i].detail.empty());
  }
  EXPECT_EQ(service.query(kUnbudgeted).rates->orderedRates(), base);

  // Removing the last session is refused.
  net::Network solo;
  const auto l = solo.addLink(5.0);
  solo.addSession(net::makeUnicastSession({l}));
  FairshareService soloService(std::move(solo));
  EXPECT_EQ(soloService.applyDelta(leaveDelta(0)), ServiceStatus::kMalformed);
}

TEST(FairshareService, QuarantineRingEvictsOldestAtCapacity) {
  ServiceOptions options;
  options.quarantineCapacity = 2;
  FairshareService service(net::fig3aNetwork(false), options);
  EXPECT_EQ(service.applyDelta(setCapacityDelta(graph::LinkId{99}, 5.0)),
            ServiceStatus::kUnknownLink);
  EXPECT_EQ(service.applyDelta(setCapacityDelta(graph::LinkId{0}, -1.0)),
            ServiceStatus::kBadCapacity);
  EXPECT_EQ(service.applyDelta(leaveDelta(42)),
            ServiceStatus::kUnknownSession);
  const auto held = service.quarantined();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0].status, ServiceStatus::kBadCapacity);
  EXPECT_EQ(held[1].status, ServiceStatus::kUnknownSession);
  EXPECT_EQ(service.metrics().rejectedDeltas, 3u);
}

TEST(FairshareService, TryApplyDeltaReportsBusyUnderContention) {
  std::mutex gate;
  std::condition_variable cv;
  bool hold = true;
  bool entered = false;

  ServiceOptions options;
  options.deltaRetries = 2;
  options.retryBackoffSeconds = 1e-5;
  options.rebindHook = [&](const Delta&) {
    std::unique_lock<std::mutex> lock(gate);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return !hold; });
  };
  FairshareService service(net::fig3aNetwork(false), options);

  std::thread blocker([&] {
    EXPECT_EQ(service.applyDelta(setCapacityDelta(graph::LinkId{0}, 5.0)),
              ServiceStatus::kOk);
  });
  {
    std::unique_lock<std::mutex> lock(gate);
    cv.wait(lock, [&] { return entered; });
  }
  // The service lock is held inside the blocked applyDelta: a bounded
  // tryApplyDelta must give up with kBusy, not block forever. The delta
  // is valid, so it is NOT quarantined.
  EXPECT_EQ(service.tryApplyDelta(setCapacityDelta(graph::LinkId{1}, 9.0)),
            ServiceStatus::kBusy);
  {
    std::lock_guard<std::mutex> lock(gate);
    hold = false;
  }
  cv.notify_all();
  blocker.join();

  EXPECT_EQ(service.metrics().busyRejections, 1u);
  EXPECT_TRUE(service.quarantined().empty());
  EXPECT_EQ(service.revision(), 1u);
  // Uncontended, the same delta now applies.
  EXPECT_EQ(service.tryApplyDelta(setCapacityDelta(graph::LinkId{1}, 9.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(service.revision(), 2u);
}

TEST(FairshareService, QueryIntoCopiesTheAnswerOut) {
  FairshareService service(net::fig3aNetwork(false));
  std::vector<double> rates;
  const QueryResult q = service.queryInto(kUnbudgeted, rates);
  ASSERT_EQ(q.status, ServiceStatus::kOk);
  EXPECT_EQ(q.rates, nullptr);  // the copy is the answer
  const net::Network& net = service.network();
  ASSERT_EQ(rates.size(), net.receiverCount());
  const fairness::Allocation oracle = fairness::maxMinFairAllocation(net);
  for (const net::ReceiverRef ref : net.receiverRefs()) {
    EXPECT_EQ(rates[net.flatIndex(ref)], oracle.rate(ref));
  }
}

TEST(FairshareService, ConstructorValidatesOptions) {
  const auto make = [](ServiceOptions options) {
    FairshareService service(net::fig3aNetwork(false), std::move(options));
  };
  ServiceOptions bad;
  bad.degradeAfter = 0;
  EXPECT_THROW(make(bad), PreconditionError);
  bad = {};
  bad.promoteAfter = 0;
  EXPECT_THROW(make(bad), PreconditionError);
  bad = {};
  bad.costEwmaAlpha = 0.0;
  EXPECT_THROW(make(bad), PreconditionError);
  bad = {};
  bad.quarantineCapacity = 0;
  EXPECT_THROW(make(bad), PreconditionError);
  EXPECT_THROW(FairshareService(net::Network{}, ServiceOptions{}),
               PreconditionError);
}

}  // namespace
}  // namespace mcfair::serve
