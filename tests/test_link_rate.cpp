// Tests for the session link-rate (redundancy) functions v_i.
#include <gtest/gtest.h>

#include <array>

#include "net/link_rate.hpp"
#include "util/error.hpp"

namespace mcfair::net {
namespace {

TEST(EfficientMax, ReturnsMax) {
  EfficientMax fn;
  const std::array<double, 3> rates{1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 3.0);
}

TEST(EfficientMax, SingleReceiver) {
  EfficientMax fn;
  const std::array<double, 1> rates{0.7};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 0.7);
}

TEST(EfficientMax, RedundancyIsOne) {
  EfficientMax fn;
  const std::array<double, 3> rates{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fn.redundancy(rates), 1.0);
}

TEST(EfficientMax, RejectsEmptyAndNegative) {
  EfficientMax fn;
  EXPECT_THROW(fn.linkRate({}), PreconditionError);
  const std::array<double, 1> bad{-0.5};
  EXPECT_THROW(fn.linkRate(bad), PreconditionError);
}

TEST(ConstantFactor, AppliesOnSharedLinksOnly) {
  ConstantFactor fn(2.0);
  const std::array<double, 2> shared{2.0, 1.0};
  EXPECT_DOUBLE_EQ(fn.linkRate(shared), 4.0);  // two receivers: factor on
  const std::array<double, 1> solo{2.0};
  EXPECT_DOUBLE_EQ(fn.linkRate(solo), 2.0);  // one receiver: efficient
}

TEST(ConstantFactor, RedundancyEqualsFactor) {
  ConstantFactor fn(3.5);
  const std::array<double, 3> rates{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(fn.redundancy(rates), 3.5);
}

TEST(ConstantFactor, RejectsFactorBelowOne) {
  EXPECT_THROW(ConstantFactor(0.5), PreconditionError);
}

TEST(ConstantFactor, FactorOneIsEfficient) {
  ConstantFactor fn(1.0);
  const std::array<double, 2> rates{1.0, 2.5};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 2.5);
}

TEST(RandomJoinExpected, AppendixBFormula) {
  // sigma=1, rates {0.5, 0.5}: E[U] = 1 - 0.25 = 0.75.
  RandomJoinExpected fn(1.0);
  const std::array<double, 2> rates{0.5, 0.5};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 0.75);
  EXPECT_DOUBLE_EQ(fn.redundancy(rates), 1.5);
}

TEST(RandomJoinExpected, FullRateReceiverTakesWholeLayer) {
  RandomJoinExpected fn(2.0);
  const std::array<double, 2> rates{2.0, 0.5};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 2.0);
}

TEST(RandomJoinExpected, SingleReceiverIsEfficient) {
  RandomJoinExpected fn(4.0);
  const std::array<double, 1> rates{1.0};
  EXPECT_DOUBLE_EQ(fn.linkRate(rates), 1.0);
}

TEST(RandomJoinExpected, BoundedByMaxTimesCount) {
  // E[U] >= max(rates) always; <= sigma always.
  RandomJoinExpected fn(1.0);
  const std::array<double, 4> rates{0.3, 0.2, 0.25, 0.1};
  const double u = fn.linkRate(rates);
  EXPECT_GE(u, 0.3);
  EXPECT_LE(u, 1.0);
}

TEST(RandomJoinExpected, RejectsRateAboveSigma) {
  RandomJoinExpected fn(1.0);
  const std::array<double, 1> rates{1.5};
  EXPECT_THROW(fn.linkRate(rates), PreconditionError);
}

TEST(RandomJoinExpected, RejectsBadSigma) {
  EXPECT_THROW(RandomJoinExpected(0.0), PreconditionError);
}

TEST(RandomJoinExpected, MonotoneInEachRate) {
  RandomJoinExpected fn(1.0);
  const std::array<double, 2> lo{0.2, 0.4};
  const std::array<double, 2> hi{0.3, 0.4};
  EXPECT_LT(fn.linkRate(lo), fn.linkRate(hi));
}

TEST(SharedEfficientMax, SingletonIsReused) {
  EXPECT_EQ(efficientMax().get(), efficientMax().get());
}

TEST(Redundancy, AllZeroRatesIsOne) {
  EfficientMax fn;
  const std::array<double, 2> rates{0.0, 0.0};
  EXPECT_DOUBLE_EQ(fn.redundancy(rates), 1.0);
}

}  // namespace
}  // namespace mcfair::net
