// Tests for the discrete-event queue.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.peek().has_value());
}

TEST(EventQueue, TimeOrdering) {
  EventQueue q;
  q.schedule(3.0, 30);
  q.schedule(1.0, 10);
  q.schedule(2.0, 20);
  EXPECT_EQ(q.pop()->payload, 10u);
  EXPECT_EQ(q.pop()->payload, 20u);
  EXPECT_EQ(q.pop()->payload, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(1.0, 3);
  EXPECT_EQ(q.pop()->payload, 1u);
  EXPECT_EQ(q.pop()->payload, 2u);
  EXPECT_EQ(q.pop()->payload, 3u);
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  q.schedule(5.0, 50);
  EXPECT_EQ(q.peek()->payload, 50u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop()->payload, 50u);
}

TEST(EventQueue, SequenceNumbersIncrease) {
  EventQueue q;
  const auto s1 = q.schedule(1.0, 0);
  const auto s2 = q.schedule(0.5, 0);
  EXPECT_LT(s1, s2);
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, 0), PreconditionError);
}

TEST(EventQueue, BatchSchedulingDispatchesInTimeOrder) {
  EventQueue q;
  const EventQueue::Pending batch[] = {{3.0, 30}, {1.0, 10}, {2.0, 20}};
  const auto first = q.scheduleAt(batch);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->payload, 10u);
  EXPECT_EQ(q.pop()->payload, 20u);
  EXPECT_EQ(q.pop()->payload, 30u);
}

TEST(EventQueue, BatchTiesBreakInBatchOrder) {
  EventQueue q;
  q.schedule(1.0, 1);
  const EventQueue::Pending batch[] = {{1.0, 2}, {1.0, 3}};
  EXPECT_EQ(q.scheduleAt(batch), 1u);  // sequences continue from schedule()
  EXPECT_EQ(q.pop()->payload, 1u);
  EXPECT_EQ(q.pop()->payload, 2u);
  EXPECT_EQ(q.pop()->payload, 3u);
}

TEST(EventQueue, EmptyBatchIsANoOp) {
  EventQueue q;
  EXPECT_EQ(q.scheduleAt({}), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BatchRejectsNegativeTime) {
  EventQueue q;
  const EventQueue::Pending batch[] = {{1.0, 1}, {-0.5, 2}};
  EXPECT_THROW(q.scheduleAt(batch), PreconditionError);
}

TEST(EventQueue, BuildFromMatchesBatchSchedulingPopOrder) {
  // The bulk-heapify constructor's contract: byte-identical pop order to
  // scheduleAt(batch) on a fresh queue — including equal-time ties,
  // which break in batch order on both paths.
  const EventQueue::Pending batch[] = {{3.0, 30}, {1.0, 10}, {2.0, 20},
                                       {1.0, 11}, {3.0, 31}, {2.0, 21}};
  EventQueue viaBatch;
  viaBatch.scheduleAt(batch);
  EventQueue viaBuild = EventQueue::buildFrom(batch);
  ASSERT_EQ(viaBuild.size(), viaBatch.size());
  while (!viaBatch.empty()) {
    const auto a = viaBatch.pop();
    const auto b = viaBuild.pop();
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->time, b->time);
    EXPECT_EQ(a->sequence, b->sequence);
    EXPECT_EQ(a->payload, b->payload);
  }
}

TEST(EventQueue, BuildFromContinuesSequencesForLaterScheduling) {
  const EventQueue::Pending batch[] = {{1.0, 1}, {2.0, 2}};
  EventQueue q = EventQueue::buildFrom(batch);
  // Sequences continue past the seeded batch, so later equal-time
  // events still lose ties to seeded ones (the sender's invariant).
  q.schedule(1.0, 3);
  EXPECT_EQ(q.pop()->payload, 1u);
  EXPECT_EQ(q.pop()->payload, 3u);
  EXPECT_EQ(q.pop()->payload, 2u);
}

TEST(EventQueue, BuildFromEmptyAndExtraCapacity) {
  EventQueue empty = EventQueue::buildFrom({});
  EXPECT_TRUE(empty.empty());
  const EventQueue::Pending batch[] = {{2.0, 2}, {1.0, 1}};
  EventQueue q = EventQueue::buildFrom(batch, 8);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop()->payload, 1u);
  EXPECT_EQ(q.pop()->payload, 2u);
}

TEST(EventQueue, BuildFromRejectsNegativeTime) {
  const EventQueue::Pending batch[] = {{1.0, 1}, {-0.25, 2}};
  EXPECT_THROW(EventQueue::buildFrom(batch), PreconditionError);
}

TEST(EventQueue, ReserveDoesNotDisturbPendingEvents) {
  EventQueue q;
  q.schedule(2.0, 2);
  q.schedule(1.0, 1);
  q.reserve(64);
  EXPECT_EQ(q.pop()->payload, 1u);
  EXPECT_EQ(q.pop()->payload, 2u);
}

TEST(EventQueue, InterleavedScheduling) {
  // Schedule during pops — the periodic-emitter pattern the sender uses.
  EventQueue q;
  q.schedule(1.0, 1);
  double lastTime = 0.0;
  int count = 0;
  while (count < 100) {
    const auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_GE(e->time, lastTime);
    lastTime = e->time;
    ++count;
    q.schedule(e->time + 1.0, 1);
  }
  EXPECT_DOUBLE_EQ(lastTime, 100.0);
}

}  // namespace
}  // namespace mcfair::sim
