// Robustness coverage of sim::SweepDriver's cell retry/backoff/
// quarantine machinery (SweepConfig::cellRetries / cellHook,
// SweepResult::failedCells): a cell whose every attempt throws is
// quarantined with empty accumulators while the rest of the fleet
// completes; a cell that fails once and then succeeds produces results
// bit-identical to a run that never failed (retries restart from clean
// accumulators); and the quarantine report is deterministic for every
// executor count.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/sweep.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

SweepConfig smallConfig() {
  SweepConfig config;
  const ScenarioSpec* steady = findScenario("steady-bottleneck");
  const ScenarioSpec* mesh = findScenario("meshed-backbone");
  EXPECT_NE(steady, nullptr);
  EXPECT_NE(mesh, nullptr);
  ScenarioSpec a = *steady;
  a.sessions = 12;
  ScenarioSpec b = *mesh;
  b.sessions = 10;
  b.receiversPerSession = 4;
  b.tailCapacityMin = 1.0;
  b.tailCapacityMax = 16.0;
  config.scenarios = {a, b};
  config.sampleFractions = {0.25, 1.0};
  config.runs = 2;
  config.seedBase = 11;
  config.threads = 1;
  return config;
}

void expectIdenticalCells(const SweepCell& a, const SweepCell& b) {
  ASSERT_EQ(a.scenario, b.scenario);
  ASSERT_EQ(a.sampleFraction, b.sampleFraction);
  ASSERT_EQ(a.observations, b.observations);
  for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
    EXPECT_EQ(a.metrics[m].stats.count(), b.metrics[m].stats.count());
    EXPECT_EQ(a.metrics[m].stats.mean(), b.metrics[m].stats.mean());
    EXPECT_EQ(a.metrics[m].stats.variance(), b.metrics[m].stats.variance());
    EXPECT_EQ(a.metrics[m].p50.value(), b.metrics[m].p50.value());
    EXPECT_EQ(a.metrics[m].p90.value(), b.metrics[m].p90.value());
  }
}

TEST(SweepRobustness, PersistentlyFailingCellIsQuarantined) {
  const SweepResult clean = runSweep(smallConfig());

  SweepConfig config = smallConfig();
  config.cellRetries = 3;
  config.cellHook = [](const std::string& scenario, double fraction,
                       std::size_t) {
    if (scenario == "meshed-backbone" && fraction == 0.25) {
      throw std::runtime_error("injected cell failure");
    }
  };
  const SweepResult result = runSweep(config);

  ASSERT_EQ(result.failedCells.size(), 1u);
  const FailedSweepCell& failed = result.failedCells.front();
  EXPECT_EQ(failed.scenario, "meshed-backbone");
  EXPECT_EQ(failed.sampleFraction, 0.25);
  EXPECT_EQ(failed.attempts, 3u);  // every attempt consumed
  EXPECT_NE(failed.error.find("injected cell failure"), std::string::npos);

  // The quarantined cell's accumulators are empty; every other cell is
  // bit-identical to the clean run — one bad cell never taints the fleet.
  ASSERT_EQ(result.cells.size(), clean.cells.size());
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const SweepCell& cell = result.cells[c];
    if (cell.scenario == "meshed-backbone" && cell.sampleFraction == 0.25) {
      EXPECT_EQ(cell.observations, 0u);
      for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
        EXPECT_EQ(cell.metrics[m].stats.count(), 0u);
      }
    } else {
      expectIdenticalCells(cell, clean.cells[c]);
    }
  }
}

TEST(SweepRobustness, RetriedCellMatchesACleanRunBitForBit) {
  const SweepResult clean = runSweep(smallConfig());

  SweepConfig config = smallConfig();
  config.cellRetries = 2;
  config.retryBackoffSeconds = 1e-6;
  // Fails every cell's first attempt: success must come from the retry,
  // and a partially-streamed first attempt must not pollute it. The
  // steady cells fail *mid-stream* semantics are covered by runCell
  // resetting the accumulators before each attempt.
  config.cellHook = [](const std::string&, double, std::size_t attempt) {
    if (attempt == 0) throw std::runtime_error("first attempt fails");
  };
  const SweepResult result = runSweep(config);

  EXPECT_TRUE(result.failedCells.empty());
  ASSERT_EQ(result.cells.size(), clean.cells.size());
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    expectIdenticalCells(result.cells[c], clean.cells[c]);
  }
}

TEST(SweepRobustness, QuarantineReportIsThreadCountInvariant) {
  SweepConfig config = smallConfig();
  config.cellRetries = 2;
  config.cellHook = [](const std::string& scenario, double,
                       std::size_t) {
    if (scenario == "steady-bottleneck") {
      throw std::invalid_argument("steady row down");
    }
  };
  SweepResult serial;
  for (const int threads : {1, 2, 4}) {
    config.threads = threads;
    const SweepResult result = runSweep(config);
    // Both steady cells quarantine, in cell (row-major) order.
    ASSERT_EQ(result.failedCells.size(), 2u) << threads << " threads";
    EXPECT_EQ(result.failedCells[0].sampleFraction, 0.25);
    EXPECT_EQ(result.failedCells[1].sampleFraction, 1.0);
    for (const FailedSweepCell& f : result.failedCells) {
      EXPECT_EQ(f.scenario, "steady-bottleneck");
      EXPECT_EQ(f.attempts, 2u);
      EXPECT_EQ(f.error, "steady row down");
    }
    if (threads == 1) {
      serial = result;
      continue;
    }
    ASSERT_EQ(result.cells.size(), serial.cells.size());
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
      expectIdenticalCells(result.cells[c], serial.cells[c]);
    }
  }
}

TEST(SweepRobustness, ConfigValidatesRetryKnobs) {
  SweepConfig config = smallConfig();
  config.cellRetries = 0;
  EXPECT_THROW(SweepDriver{config}, PreconditionError);
  config = smallConfig();
  config.retryBackoffSeconds = -1.0;
  EXPECT_THROW(SweepDriver{config}, PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
