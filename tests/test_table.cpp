// Tests for util::Table rendering and environment knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace mcfair::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.setPrecision(2);
  t.addRow({std::string("alpha"), 1.5});
  t.addRow({std::string("b"), 10.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.addRow({std::string("x,y"), std::string("q\"z")});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"q\"\"z\""), std::string::npos);
}

TEST(Table, CsvNumericPrecision) {
  Table t({"v"});
  t.setPrecision(3);
  t.addRow({1.23456});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({1.0}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({1.0});
  t.addRow({2.0});
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(EnvKnobs, EnvFlag) {
  ::setenv("MCFAIR_TEST_FLAG", "1", 1);
  EXPECT_TRUE(envFlag("MCFAIR_TEST_FLAG"));
  ::setenv("MCFAIR_TEST_FLAG", "0", 1);
  EXPECT_FALSE(envFlag("MCFAIR_TEST_FLAG"));
  ::unsetenv("MCFAIR_TEST_FLAG");
  EXPECT_FALSE(envFlag("MCFAIR_TEST_FLAG"));
}

TEST(EnvKnobs, EnvInt) {
  ::setenv("MCFAIR_TEST_INT", "42", 1);
  EXPECT_EQ(envInt("MCFAIR_TEST_INT", 7), 42);
  ::setenv("MCFAIR_TEST_INT", "junk", 1);
  EXPECT_EQ(envInt("MCFAIR_TEST_INT", 7), 7);
  ::unsetenv("MCFAIR_TEST_INT");
  EXPECT_EQ(envInt("MCFAIR_TEST_INT", 7), 7);
}

}  // namespace
}  // namespace mcfair::util
