// End-to-end tests for the routed-mesh scenario topologies
// (kScaleFreeGraph / kWaxman / kRandomRegular): structure and
// determinism, solver parity (incremental vs reference) and closed-loop
// engine parity (event vs reference vs fluid) on meshed-backbone
// populations at multiple seeds, and the DAG-routing proof — mesh
// scenarios are genuinely routed over a graph with cycles, not a tree
// re-encoding.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fairness/maxmin.hpp"
#include "graph/routing.hpp"
#include "sim/scenario.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

ScenarioSpec meshSpec(std::uint64_t seed) {
  const ScenarioSpec* base = findScenario("meshed-backbone");
  EXPECT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.seed = seed;
  return spec;
}

// The links of a receiver's data-path that live on the backbone graph
// (network link j < backbone.linkCount() is graph link j; tails follow).
std::vector<graph::LinkId> backbonePath(const Scenario& s,
                                        const net::Receiver& r) {
  std::vector<graph::LinkId> out;
  for (const graph::LinkId l : r.dataPath) {
    if (l.value < s.backbone.linkCount()) out.push_back(l);
  }
  return out;
}

TEST(ScenarioMesh, CatalogPresetsExist) {
  for (const char* name : {"meshed-backbone", "waxman-regional"}) {
    const ScenarioSpec* spec = findScenario(name);
    ASSERT_NE(spec, nullptr) << name;
    const Scenario s = buildScenario(*spec);
    EXPECT_EQ(s.network.sessionCount(), spec->sessions) << name;
    EXPECT_GT(s.backbone.nodeCount(), 0u) << name;
  }
  EXPECT_EQ(findScenario("meshed-backbone")->topology,
            ScenarioSpec::Topology::kScaleFreeGraph);
  EXPECT_EQ(findScenario("waxman-regional")->topology,
            ScenarioSpec::Topology::kWaxman);
}

TEST(ScenarioMesh, StructureAndLoadProportionalCapacities) {
  const ScenarioSpec spec = meshSpec(1);
  const Scenario s = buildScenario(spec);
  // One network link per backbone graph link (no tails in this preset).
  EXPECT_EQ(s.backbone.nodeCount(), spec.backboneNodes);
  EXPECT_EQ(s.network.linkCount(), s.backbone.linkCount());
  EXPECT_GT(s.backbone.linkCount(), s.backbone.nodeCount() - 1)
      << "m = 2 backbone must have cycles";
  ASSERT_EQ(s.senderNode.size(), spec.sessions);
  ASSERT_EQ(s.receiverNode.size(),
            spec.sessions * spec.receiversPerSession);

  // Capacity = backbonePerSession * crossing sessions, recomputed here
  // from the data-paths.
  std::vector<std::set<std::size_t>> crossing(s.network.linkCount());
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    for (const auto& r : s.network.session(i).receivers) {
      for (const graph::LinkId l : r.dataPath) crossing[l.value].insert(i);
    }
  }
  for (std::uint32_t l = 0; l < s.network.linkCount(); ++l) {
    const double expected =
        spec.backbonePerSession *
        static_cast<double>(std::max<std::size_t>(1, crossing[l].size()));
    EXPECT_DOUBLE_EQ(s.network.capacity(graph::LinkId{l}), expected)
        << "link " << l;
  }

  // Each receiver path is a simple backbone walk from its sender.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    for (const auto& r : s.network.session(i).receivers) {
      EXPECT_FALSE(r.dataPath.empty());
      EXPECT_NE(s.receiverNode[idx], s.senderNode[i]);
      ++idx;
    }
  }
}

TEST(ScenarioMesh, DeterministicExpansion) {
  for (const char* name : {"meshed-backbone", "waxman-regional"}) {
    ScenarioSpec spec = *findScenario(name);
    spec.sessions = 8;
    const Scenario a = buildScenario(spec);
    const Scenario b = buildScenario(spec);
    ASSERT_EQ(a.network.linkCount(), b.network.linkCount()) << name;
    for (std::uint32_t l = 0; l < a.network.linkCount(); ++l) {
      EXPECT_EQ(a.network.capacity(graph::LinkId{l}),
                b.network.capacity(graph::LinkId{l}));
    }
    for (std::size_t i = 0; i < a.network.sessionCount(); ++i) {
      for (std::size_t k = 0; k < a.network.session(i).receivers.size();
           ++k) {
        EXPECT_EQ(a.network.session(i).receivers[k].dataPath,
                  b.network.session(i).receivers[k].dataPath);
      }
    }
    spec.seed = 77;
    const Scenario c = buildScenario(spec);
    bool different = a.network.linkCount() != c.network.linkCount();
    for (std::uint32_t l = 0; !different && l < a.network.linkCount(); ++l) {
      different = a.network.capacity(graph::LinkId{l}) !=
                  c.network.capacity(graph::LinkId{l});
    }
    EXPECT_TRUE(different) << name << ": seed must reshape the mesh";
  }
}

TEST(ScenarioMesh, RandomRegularTopologyBuilds) {
  ScenarioSpec spec = meshSpec(1);
  spec.topology = ScenarioSpec::Topology::kRandomRegular;
  spec.backboneNodes = 24;
  spec.regularDegree = 4;
  spec.sessions = 8;
  const Scenario s = buildScenario(spec);
  EXPECT_EQ(s.backbone.linkCount(), 24u * 4u / 2u);
  EXPECT_EQ(s.network.sessionCount(), 8u);
}

// Solver parity on mesh populations: the incremental engine must agree
// with the reference solver on routed-mesh networks at several seeds.
TEST(ScenarioMesh, MaxMinSolverParityAcrossSeeds) {
  fairness::MaxMinSolver engine;
  for (const std::uint64_t seed : {1ull, 2ull, 5ull}) {
    const Scenario s = buildScenario(meshSpec(seed));
    const fairness::MaxMinResult& incremental = engine.solve(s.network);
    const fairness::MaxMinResult reference =
        fairness::solveMaxMinFairReference(s.network);
    for (const auto ref : s.network.receiverRefs()) {
      EXPECT_NEAR(incremental.allocation.rate(ref),
                  reference.allocation.rate(ref), 1e-7)
          << "seed " << seed << " receiver (" << ref.session << ","
          << ref.receiver << ")";
    }
    EXPECT_EQ(incremental.rounds, reference.rounds) << "seed " << seed;
  }
}

// Closed-loop engine parity on mesh scenarios: event-driven, reference,
// and fluid(-fallback) drivers must produce bit-identical trajectories.
TEST(ScenarioMesh, ClosedLoopEngineParityAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    ScenarioSpec spec = meshSpec(seed);
    spec.sessions = 10;
    spec.backboneNodes = 24;
    spec.duration = 150.0;
    spec.warmup = 40.0;
    const Scenario s = buildScenario(spec);
    const auto event = runClosedLoopSimulation(s.network, s.config);
    const auto reference =
        runClosedLoopSimulationReference(s.network, s.config);
    const auto fluid = runClosedLoopSimulationFluid(s.network, s.config);
    EXPECT_EQ(event.measuredRate, reference.measuredRate) << "seed " << seed;
    EXPECT_EQ(event.linkThroughput, reference.linkThroughput);
    EXPECT_EQ(event.measuredRate, fluid.measuredRate) << "seed " << seed;
    EXPECT_EQ(event.linkThroughput, fluid.linkThroughput);
  }
}

// The acceptance proof of real DAG routing: (a) at every probed seed NO
// single BFS tree of the backbone contains all routed data-paths (the
// scenario cannot be re-encoded as one tree), and (b) at a pinned seed
// there is a receiver whose data-path is not a subtree path of ANY
// single BFS tree — for every root, some link of the path is a non-tree
// edge.
TEST(ScenarioMesh, RoutedPathsAreNotATreeReEncoding) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Scenario s = buildScenario(meshSpec(seed));
    bool someTreeHoldsAll = false;
    for (std::uint32_t root = 0;
         root < s.backbone.nodeCount() && !someTreeHoldsAll; ++root) {
      const auto pred = graph::bfsPredecessors(s.backbone, graph::NodeId{root});
      std::set<std::uint32_t> tree;
      for (const auto enc : pred) {
        if (enc != 0) tree.insert(enc - 1);
      }
      bool holdsAll = true;
      for (std::size_t i = 0; holdsAll && i < s.network.sessionCount();
           ++i) {
        for (const auto& r : s.network.session(i).receivers) {
          for (const graph::LinkId l : backbonePath(s, r)) {
            if (tree.count(l.value) == 0) {
              holdsAll = false;
              break;
            }
          }
          if (!holdsAll) break;
        }
      }
      someTreeHoldsAll = holdsAll;
    }
    EXPECT_FALSE(someTreeHoldsAll)
        << "seed " << seed
        << ": all mesh data-paths fit one BFS tree — tree re-encoding";
  }
}

TEST(ScenarioMesh, SomeReceiverPathFitsNoSingleBfsTree) {
  // Pinned seed (verified property, deterministic expansion): at least
  // one routed path is not a subtree path of any single BFS tree.
  const Scenario s = buildScenario(meshSpec(2));
  std::size_t witnesses = 0;
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    for (const auto& r : s.network.session(i).receivers) {
      const auto path = backbonePath(s, r);
      bool fitsSomeTree = false;
      for (std::uint32_t root = 0;
           root < s.backbone.nodeCount() && !fitsSomeTree; ++root) {
        const auto pred =
            graph::bfsPredecessors(s.backbone, graph::NodeId{root});
        std::set<std::uint32_t> tree;
        for (const auto enc : pred) {
          if (enc != 0) tree.insert(enc - 1);
        }
        bool all = true;
        for (const graph::LinkId l : path) {
          if (tree.count(l.value) == 0) {
            all = false;
            break;
          }
        }
        fitsSomeTree = all;
      }
      if (!fitsSomeTree) ++witnesses;
    }
  }
  EXPECT_GE(witnesses, 1u)
      << "expected a receiver whose routed data-path no single BFS tree "
         "contains";
}

// How many sessions of the built network cross each backbone link.
std::vector<std::size_t> backboneCrossings(const Scenario& s) {
  std::vector<std::size_t> load(s.backbone.linkCount(), 0);
  for (std::size_t i = 0; i < s.network.sessionCount(); ++i) {
    std::set<std::uint32_t> crossed;
    for (const net::Receiver& r : s.network.session(i).receivers) {
      for (const graph::LinkId l : backbonePath(s, r)) {
        crossed.insert(l.value);
      }
    }
    for (const std::uint32_t l : crossed) ++load[l];
  }
  return load;
}

TEST(ScenarioMesh, LinkFlapPresetTargetsTheBusiestEdges) {
  const ScenarioSpec* spec = findScenario("link-flap");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->faults.kind, FaultAxis::Kind::kFlap);
  EXPECT_TRUE(spec->fluidFastForward);
  const Scenario s = buildScenario(*spec);
  // Two victims, three events each: down -> degrade -> up.
  ASSERT_EQ(s.config.faults.events.size(), 6u);
  std::set<std::uint32_t> victims;
  for (const net::FaultEvent& ev : s.config.faults.events) {
    EXPECT_LT(ev.link.value, s.backbone.linkCount());
    victims.insert(ev.link.value);
    if (ev.kind == net::FaultKind::kLinkDown) {
      EXPECT_EQ(ev.time, 600.0);
    } else if (ev.kind == net::FaultKind::kDegrade) {
      EXPECT_EQ(ev.time, 900.0);
      EXPECT_EQ(ev.factor, 0.5);
    } else {
      EXPECT_EQ(ev.time, 1200.0);
    }
  }
  EXPECT_EQ(victims.size(), 2u);
  // The victims really are the most-crossed backbone edges.
  const std::vector<std::size_t> load = backboneCrossings(s);
  std::size_t bystanderMax = 0;
  for (std::uint32_t l = 0; l < load.size(); ++l) {
    if (victims.count(l) == 0) {
      bystanderMax = std::max(bystanderMax, load[l]);
    }
  }
  for (const std::uint32_t v : victims) {
    EXPECT_GE(load[v], bystanderMax) << "victim " << v;
  }
  // Deterministic expansion: equal specs, equal schedules.
  const Scenario t = buildScenario(*spec);
  ASSERT_EQ(t.config.faults.events.size(), s.config.faults.events.size());
  for (std::size_t e = 0; e < s.config.faults.events.size(); ++e) {
    EXPECT_EQ(t.config.faults.events[e].link,
              s.config.faults.events[e].link);
    EXPECT_EQ(t.config.faults.events[e].time,
              s.config.faults.events[e].time);
  }
}

TEST(ScenarioMesh, BackbonePartitionPresetSurroundsTheHub) {
  const ScenarioSpec* spec = findScenario("backbone-partition");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->faults.kind, FaultAxis::Kind::kPartition);
  EXPECT_TRUE(spec->computeFairEpochs);
  const Scenario s = buildScenario(*spec);
  // The hub: highest-degree node of the backbone (lowest id on ties).
  graph::NodeId hub{0};
  std::size_t hubDegree = 0;
  for (std::uint32_t v = 0; v < s.backbone.nodeCount(); ++v) {
    const std::size_t d = s.backbone.neighbors(graph::NodeId{v}).size();
    if (d > hubDegree) {
      hubDegree = d;
      hub = graph::NodeId{v};
    }
  }
  // One down + one up event per incident edge, all touching the hub.
  ASSERT_EQ(s.config.faults.events.size(), 2 * hubDegree);
  for (const net::FaultEvent& ev : s.config.faults.events) {
    const auto [a, b] = s.backbone.endpoints(ev.link);
    EXPECT_TRUE(a == hub || b == hub);
    if (ev.kind == net::FaultKind::kLinkDown) {
      EXPECT_EQ(ev.time, 700.0);
    } else {
      EXPECT_EQ(ev.kind, net::FaultKind::kLinkUp);
      EXPECT_EQ(ev.time, 1400.0);
    }
  }
  // kPartition is rejected off-mesh.
  ScenarioSpec bad = *spec;
  bad.topology = ScenarioSpec::Topology::kSharedLink;
  EXPECT_THROW(buildScenario(bad), PreconditionError);
}

TEST(ScenarioMesh, RandomFaultAxisDrawsASchedule) {
  ScenarioSpec spec = meshSpec(9);
  spec.faults.kind = FaultAxis::Kind::kRandom;
  spec.faults.mtbf = 300.0;
  spec.faults.mttr = 50.0;
  const Scenario s = buildScenario(spec);
  EXPECT_FALSE(s.config.faults.events.empty());
  for (const net::FaultEvent& ev : s.config.faults.events) {
    EXPECT_GE(ev.time, 0.0);
    EXPECT_LT(ev.time, spec.duration);
    EXPECT_LT(ev.link.value, s.network.linkCount());
  }
  // Adding the fault axis must not reshuffle the population: the same
  // spec without faults builds an identical topology and session set.
  ScenarioSpec noFaults = spec;
  noFaults.faults.kind = FaultAxis::Kind::kNone;
  const Scenario p = buildScenario(noFaults);
  EXPECT_TRUE(structurallyEqual(s.network, p.network));
  ASSERT_EQ(s.config.sessions.size(), p.config.sessions.size());
  for (std::size_t i = 0; i < s.config.sessions.size(); ++i) {
    EXPECT_EQ(s.config.sessions[i].startTime,
              p.config.sessions[i].startTime);
    EXPECT_EQ(s.config.sessions[i].stopTime, p.config.sessions[i].stopTime);
  }
  EXPECT_TRUE(p.config.faults.empty());
}

TEST(ScenarioMesh, Validation) {
  ScenarioSpec spec = meshSpec(1);
  spec.meshEdgesPerNode = 0;
  EXPECT_THROW(buildScenario(spec), PreconditionError);
  spec = meshSpec(1);
  spec.meshEdgesPerNode = spec.backboneNodes;
  EXPECT_THROW(buildScenario(spec), PreconditionError);
  spec = meshSpec(1);
  spec.meshWeightJitter = -1.0;
  EXPECT_THROW(buildScenario(spec), PreconditionError);
  spec = meshSpec(1);
  spec.topology = ScenarioSpec::Topology::kRandomRegular;
  spec.backboneNodes = 5;
  spec.regularDegree = 3;  // odd product: no pairing exists
  EXPECT_THROW(buildScenario(spec), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
