// Tests for the graph dialect of the netfile format: parsing, routed
// path derivation, the write -> read round trip (structural equality
// independent of Network::identity()), and malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "net/netfile.hpp"
#include "util/rng.hpp"

namespace mcfair::net {
namespace {

using graph::LinkId;
using graph::NodeId;

TEST(NetfileGraph, ParsesAndRoutesHopCount) {
  // 0 -e0- 1 -e1- 2 and a direct chord 0 -e2- 2: hop routing takes the
  // chord to node 2 and e0 to node 1.
  const Network n = parseNetworkString(R"(
    nodes 3
    edge e0 0 1 10
    edge e1 1 2 7
    edge e2 0 2 4
    routing hops
    session video multi sigma=8
    sender video 0
    member video r1 1
    member video r2 2 weight=2
  )");
  EXPECT_EQ(n.linkCount(), 3u);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{1}), 7.0);
  ASSERT_EQ(n.sessionCount(), 1u);
  const Session& s = n.session(0);
  EXPECT_EQ(s.maxRate, 8.0);
  ASSERT_EQ(s.receivers.size(), 2u);
  EXPECT_EQ(s.receivers[0].dataPath, (std::vector<LinkId>{LinkId{0}}));
  EXPECT_EQ(s.receivers[1].dataPath, (std::vector<LinkId>{LinkId{2}}));
  EXPECT_DOUBLE_EQ(s.receivers[1].weight, 2.0);
}

TEST(NetfileGraph, WeightedRoutingUsesEdgeWeights) {
  // The chord is expensive, so weighted routing reaches node 2 through
  // node 1 even though the chord is hop-shorter.
  const Network n = parseNetworkString(R"(
    nodes 3
    edge e0 0 1 10
    edge e1 1 2 7
    edge e2 0 2 4 weight=5
    routing weighted
    session web multi
    sender web 0
    member web r 2
  )");
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
}

TEST(NetfileGraph, RoundTripIsStructurallyEqual) {
  util::Rng rng(31);
  const graph::Graph g = graph::scaleFreeGraph(rng, {16, 2, 1.0});
  graph::RouteOptions routing;
  routing.policy = graph::RoutePolicy::kWeighted;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    routing.weights.push_back(rng.uniform(0.5, 3.0));
  }
  std::vector<GraphSessionSpec> specs;
  for (int i = 0; i < 5; ++i) {
    GraphSessionSpec spec;
    spec.name = "S" + std::to_string(i);
    spec.type = i % 2 ? SessionType::kSingleRate : SessionType::kMultiRate;
    if (i == 1) spec.maxRate = rng.uniform(1.0, 9.0);
    if (i == 2) spec.redundancy = 1.75;
    spec.sender = NodeId{static_cast<std::uint32_t>(rng.below(16))};
    for (int k = 0; k < 1 + i % 3; ++k) {
      NodeId node{static_cast<std::uint32_t>(rng.below(16))};
      if (node == spec.sender) node = NodeId{(node.value + 1) % 16};
      // Single-rate sessions require uniform receiver weights.
      const double weight =
          (spec.type == SessionType::kMultiRate && k > 0)
              ? rng.uniform(0.5, 4.0)
              : 1.0;
      spec.members.push_back(
          {"r" + std::to_string(i) + "_" + std::to_string(k), node, weight});
    }
    specs.push_back(std::move(spec));
  }

  const Network direct = buildRoutedNetwork(g, routing, specs);
  std::ostringstream out;
  writeRoutedNetworkFile(out, g, routing, specs);
  const Network reparsed = parseNetworkString(out.str());
  EXPECT_TRUE(structurallyEqual(direct, reparsed)) << out.str();
  EXPECT_NE(direct.identity(), reparsed.identity())
      << "distinct structures must keep distinct identities";

  // Second round trip is a fixed point.
  const Network again = parseNetworkString(out.str());
  EXPECT_TRUE(structurallyEqual(reparsed, again));
}

TEST(NetfileGraph, RoundTripHopCount) {
  util::Rng rng(8);
  const graph::Graph g = graph::waxmanGraph(rng, {12, 0.6, 0.4, 2.5});
  std::vector<GraphSessionSpec> specs(1);
  specs[0].name = "S0";
  specs[0].sender = NodeId{0};
  specs[0].members = {{"a", NodeId{5}, 1.0}, {"b", NodeId{11}, 2.0}};
  const Network direct = buildRoutedNetwork(g, {}, specs);
  std::ostringstream out;
  writeRoutedNetworkFile(out, g, {}, specs);
  EXPECT_TRUE(structurallyEqual(direct, parseNetworkString(out.str())))
      << out.str();
}

TEST(NetfileGraph, StructurallyEqualDetectsDifferences) {
  const char* text = R"(
    nodes 2
    edge e0 0 1 10
    routing hops
    session s multi
    sender s 0
    member s r 1
  )";
  const Network a = parseNetworkString(text);
  EXPECT_TRUE(structurallyEqual(a, a));
  const Network b = a.withCapacity(LinkId{0}, 11.0);
  EXPECT_FALSE(structurallyEqual(a, b));
  const Network c = a.withSessionType(0, SessionType::kSingleRate);
  EXPECT_FALSE(structurallyEqual(a, c));
  // Probes outside a link-rate function's domain must not escape:
  // RandomJoinExpected(1.0) rejects rates above sigma = 1, yet the
  // comparison still returns (equal to itself, different from the
  // efficient default).
  const Network d = a.withLinkRateFunction(
      0, std::make_shared<const RandomJoinExpected>(1.0));
  EXPECT_TRUE(structurallyEqual(d, d));
  EXPECT_FALSE(structurallyEqual(a, d));
}

TEST(NetfileGraph, RejectsMalformedInput) {
  // Mixing dialects.
  EXPECT_THROW(parseNetworkString("link l1 5\nnodes 3\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 5\nlink l1 5\n"),
               NetfileError);
  // Edges before nodes / out-of-range nodes / self edges.
  EXPECT_THROW(parseNetworkString("edge e0 0 1 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 2 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 1 1 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 0\n"), NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5\nedge e0 1 0 5\n"),
      NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5 weight=-1\n"),
      NetfileError);
  // NaN never satisfies a positivity check, and hostile node counts are
  // bounded — both must surface as NetfileError with a line number, not
  // escape as a different exception (or an allocation attempt).
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 nan\n"),
               NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5 weight=nan\n"),
      NetfileError);
  EXPECT_THROW(parseNetworkString("link l1 nan\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 4294967296\n"), NetfileError);
  // Routing typos / duplicates.
  EXPECT_THROW(parseNetworkString("nodes 2\nrouting fastest\n"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nrouting hops\nrouting hops\n"),
               NetfileError);
  // Sessions without sender / without members / unknown session.
  EXPECT_THROW(parseNetworkString(R"(
    nodes 2
    edge e0 0 1 5
    session s multi
    member s r 1
  )"),
               NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
    nodes 2
    edge e0 0 1 5
    session s multi
    sender s 0
  )"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nsender ghost 0\n"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nmember ghost r 1\n"),
               NetfileError);
  // Unreachable member (no edges at all).
  EXPECT_THROW(parseNetworkString(R"(
    nodes 3
    edge e0 0 1 5
    session s multi
    sender s 0
    member s r 2
  )"),
               NetfileError);
  // Flat dialect still validates as before.
  EXPECT_THROW(parseNetworkString("link l1 5\nreceiver ghost r l1\n"),
               NetfileError);
}

}  // namespace
}  // namespace mcfair::net
