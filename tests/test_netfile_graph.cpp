// Tests for the graph dialect of the netfile format: parsing, routed
// path derivation, the write -> read round trip (structural equality
// independent of Network::identity()), and malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "net/netfile.hpp"
#include "util/rng.hpp"

namespace mcfair::net {
namespace {

using graph::LinkId;
using graph::NodeId;

TEST(NetfileGraph, ParsesAndRoutesHopCount) {
  // 0 -e0- 1 -e1- 2 and a direct chord 0 -e2- 2: hop routing takes the
  // chord to node 2 and e0 to node 1.
  const Network n = parseNetworkString(R"(
    nodes 3
    edge e0 0 1 10
    edge e1 1 2 7
    edge e2 0 2 4
    routing hops
    session video multi sigma=8
    sender video 0
    member video r1 1
    member video r2 2 weight=2
  )");
  EXPECT_EQ(n.linkCount(), 3u);
  EXPECT_DOUBLE_EQ(n.capacity(LinkId{1}), 7.0);
  ASSERT_EQ(n.sessionCount(), 1u);
  const Session& s = n.session(0);
  EXPECT_EQ(s.maxRate, 8.0);
  ASSERT_EQ(s.receivers.size(), 2u);
  EXPECT_EQ(s.receivers[0].dataPath, (std::vector<LinkId>{LinkId{0}}));
  EXPECT_EQ(s.receivers[1].dataPath, (std::vector<LinkId>{LinkId{2}}));
  EXPECT_DOUBLE_EQ(s.receivers[1].weight, 2.0);
}

TEST(NetfileGraph, WeightedRoutingUsesEdgeWeights) {
  // The chord is expensive, so weighted routing reaches node 2 through
  // node 1 even though the chord is hop-shorter.
  const Network n = parseNetworkString(R"(
    nodes 3
    edge e0 0 1 10
    edge e1 1 2 7
    edge e2 0 2 4 weight=5
    routing weighted
    session web multi
    sender web 0
    member web r 2
  )");
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            (std::vector<LinkId>{LinkId{0}, LinkId{1}}));
}

TEST(NetfileGraph, RoundTripIsStructurallyEqual) {
  util::Rng rng(31);
  const graph::Graph g = graph::scaleFreeGraph(rng, {16, 2, 1.0});
  graph::RouteOptions routing;
  routing.policy = graph::RoutePolicy::kWeighted;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    routing.weights.push_back(rng.uniform(0.5, 3.0));
  }
  std::vector<GraphSessionSpec> specs;
  for (int i = 0; i < 5; ++i) {
    GraphSessionSpec spec;
    spec.name = "S" + std::to_string(i);
    spec.type = i % 2 ? SessionType::kSingleRate : SessionType::kMultiRate;
    if (i == 1) spec.maxRate = rng.uniform(1.0, 9.0);
    if (i == 2) spec.linkRate = LinkRateSpec{"constant", 1.75};
    spec.sender = NodeId{static_cast<std::uint32_t>(rng.below(16))};
    for (int k = 0; k < 1 + i % 3; ++k) {
      NodeId node{static_cast<std::uint32_t>(rng.below(16))};
      if (node == spec.sender) node = NodeId{(node.value + 1) % 16};
      // Single-rate sessions require uniform receiver weights.
      const double weight =
          (spec.type == SessionType::kMultiRate && k > 0)
              ? rng.uniform(0.5, 4.0)
              : 1.0;
      spec.members.push_back(
          {"r" + std::to_string(i) + "_" + std::to_string(k), node, weight});
    }
    specs.push_back(std::move(spec));
  }

  const Network direct = buildRoutedNetwork(g, routing, specs);
  std::ostringstream out;
  writeRoutedNetworkFile(out, g, routing, specs);
  const Network reparsed = parseNetworkString(out.str());
  EXPECT_TRUE(structurallyEqual(direct, reparsed)) << out.str();
  EXPECT_NE(direct.identity(), reparsed.identity())
      << "distinct structures must keep distinct identities";

  // Second round trip is a fixed point.
  const Network again = parseNetworkString(out.str());
  EXPECT_TRUE(structurallyEqual(reparsed, again));
}

TEST(NetfileGraph, RoundTripHopCount) {
  util::Rng rng(8);
  const graph::Graph g = graph::waxmanGraph(rng, {12, 0.6, 0.4, 2.5});
  std::vector<GraphSessionSpec> specs(1);
  specs[0].name = "S0";
  specs[0].sender = NodeId{0};
  specs[0].members = {{"a", NodeId{5}, 1.0}, {"b", NodeId{11}, 2.0}};
  const Network direct = buildRoutedNetwork(g, {}, specs);
  std::ostringstream out;
  writeRoutedNetworkFile(out, g, {}, specs);
  EXPECT_TRUE(structurallyEqual(direct, parseNetworkString(out.str())))
      << out.str();
}

TEST(NetfileGraph, LinkRateRegistryRoundTrip) {
  // The full registry: efficient (nothing written), constant (legacy
  // redundancy= spelling) and randomjoin (linkrate=randomjoin:<sigma>)
  // all survive write -> read structurally intact.
  graph::Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 10.0);
  g.addLink(NodeId{1}, NodeId{2}, 10.0);
  std::vector<GraphSessionSpec> specs(3);
  for (int i = 0; i < 3; ++i) {
    specs[i].name = "S" + std::to_string(i);
    specs[i].sender = NodeId{0};
    specs[i].members = {{"a", NodeId{1}, 1.0}, {"b", NodeId{2}, 1.0}};
  }
  specs[1].linkRate = LinkRateSpec{"constant", 1.5};
  // sigma must dominate the equality probes' rates, so keep it >= 2.
  specs[2].linkRate = LinkRateSpec{"randomjoin", 8.0};
  specs[2].maxRate = 8.0;

  const Network direct = buildRoutedNetwork(g, {}, specs);
  std::ostringstream out;
  writeRoutedNetworkFile(out, g, {}, specs);
  EXPECT_NE(out.str().find("linkrate=randomjoin:8"), std::string::npos)
      << out.str();
  const Network reparsed = parseNetworkString(out.str());
  EXPECT_TRUE(structurallyEqual(direct, reparsed)) << out.str();

  // The reparsed function really is the Appendix B closed form, not a
  // lookalike: check a value max(X) cannot produce.
  const auto* fn = reparsed.session(2).linkRateFn.get();
  ASSERT_NE(fn, nullptr);
  const LinkRateSpec described = describeLinkRateFunction(fn);
  EXPECT_EQ(described, (LinkRateSpec{"randomjoin", 8.0}));
  const double rates[] = {4.0, 4.0};
  EXPECT_DOUBLE_EQ(fn->linkRate(rates), 8.0 * (1.0 - 0.5 * 0.5));
}

TEST(NetfileGraph, LinkRateSpellingsAreEquivalentAndExclusive) {
  const char* base = R"(
    nodes 2
    edge e0 0 1 10
    session s multi {OPT}
    sender s 0
    member s r 1
  )";
  auto withOption = [&](const std::string& opt) {
    std::string text = base;
    text.replace(text.find("{OPT}"), 5, opt);
    return text;
  };
  const Network legacy = parseNetworkString(withOption("redundancy=1.5"));
  const Network spelled =
      parseNetworkString(withOption("linkrate=constant:1.5"));
  EXPECT_TRUE(structurallyEqual(legacy, spelled));
  EXPECT_THROW(
      parseNetworkString(withOption("redundancy=1.5 linkrate=constant:2")),
      NetfileError);
  EXPECT_THROW(parseNetworkString(withOption("linkrate=bogus:2")),
               NetfileError);
  EXPECT_THROW(parseNetworkString(withOption("linkrate=randomjoin")),
               NetfileError);
  EXPECT_THROW(parseNetworkString(withOption("linkrate=randomjoin:0")),
               NetfileError);
  EXPECT_THROW(parseNetworkString(withOption("linkrate=constant:0.5")),
               NetfileError);
}

TEST(NetfileGraph, FaultScheduleRoundTrip) {
  graph::Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 10.0);
  g.addLink(NodeId{1}, NodeId{2}, 10.0);
  std::vector<GraphSessionSpec> specs(1);
  specs[0].name = "S0";
  specs[0].sender = NodeId{0};
  specs[0].members = {{"r", NodeId{2}, 1.0}};

  FaultSchedule schedule;
  schedule.events = {
      {600.0, FaultKind::kLinkDown, LinkId{1}},
      {900.5, FaultKind::kDegrade, LinkId{1}, 0.25},
      {1200.0, FaultKind::kLinkUp, LinkId{1}},
      {700.0, FaultKind::kLinkDown, LinkId{0}},
  };
  schedule.normalize(g.linkCount());

  std::ostringstream out;
  writeRoutedNetworkFile(out, g, {}, specs, &schedule);
  FaultSchedule reparsed;
  const Network n = parseNetworkString(out.str(), reparsed);
  EXPECT_EQ(n.linkCount(), 2u);
  ASSERT_EQ(reparsed.events.size(), schedule.events.size());
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(reparsed.events[i].time, schedule.events[i].time);
    EXPECT_EQ(reparsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(reparsed.events[i].link, schedule.events[i].link);
    EXPECT_DOUBLE_EQ(reparsed.events[i].factor,
                     schedule.events[i].factor);
  }

  // The schedule-less overload refuses to discard the dynamics.
  EXPECT_THROW(parseNetworkString(out.str()), NetfileError);
}

TEST(NetfileGraph, RejectsMalformedFaults) {
  const std::string base = R"(
    nodes 2
    edge e0 0 1 10
    session s multi
    sender s 0
    member s r 1
  )";
  FaultSchedule sink;
  // Valid shapes parse; flat dialect takes link names too.
  EXPECT_NO_THROW(
      parseNetworkString(base + "fault 5 down e0\nfault 6 up e0\n", sink));
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_NO_THROW(parseNetworkString(
      "link l1 5\nsession s multi\nreceiver s r l1\nfault 1 degrade l1 0.5\n",
      sink));
  // A fault may precede the edge it references.
  EXPECT_NO_THROW(parseNetworkString(
      "fault 1 down e0\n" + base, sink));
  EXPECT_THROW(parseNetworkString(base + "fault 5 down ghost\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault -1 down e0\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault nan down e0\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault 5 explode e0\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault 5 degrade e0\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault 5 degrade e0 0\n", sink),
               NetfileError);
  EXPECT_THROW(parseNetworkString(base + "fault 5 down e0 0.5\n", sink),
               NetfileError);
}

TEST(NetfileGraph, StructurallyEqualDetectsDifferences) {
  const char* text = R"(
    nodes 2
    edge e0 0 1 10
    routing hops
    session s multi
    sender s 0
    member s r 1
  )";
  const Network a = parseNetworkString(text);
  EXPECT_TRUE(structurallyEqual(a, a));
  const Network b = a.withCapacity(LinkId{0}, 11.0);
  EXPECT_FALSE(structurallyEqual(a, b));
  const Network c = a.withSessionType(0, SessionType::kSingleRate);
  EXPECT_FALSE(structurallyEqual(a, c));
  // Probes outside a link-rate function's domain must not escape:
  // RandomJoinExpected(1.0) rejects rates above sigma = 1, yet the
  // comparison still returns (equal to itself, different from the
  // efficient default).
  const Network d = a.withLinkRateFunction(
      0, std::make_shared<const RandomJoinExpected>(1.0));
  EXPECT_TRUE(structurallyEqual(d, d));
  EXPECT_FALSE(structurallyEqual(a, d));
}

TEST(NetfileGraph, RejectsMalformedInput) {
  // Mixing dialects.
  EXPECT_THROW(parseNetworkString("link l1 5\nnodes 3\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 5\nlink l1 5\n"),
               NetfileError);
  // Edges before nodes / out-of-range nodes / self edges.
  EXPECT_THROW(parseNetworkString("edge e0 0 1 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 2 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 1 1 5\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 0\n"), NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5\nedge e0 1 0 5\n"),
      NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5 weight=-1\n"),
      NetfileError);
  // NaN never satisfies a positivity check, and hostile node counts are
  // bounded — both must surface as NetfileError with a line number, not
  // escape as a different exception (or an allocation attempt).
  EXPECT_THROW(parseNetworkString("nodes 2\nedge e0 0 1 nan\n"),
               NetfileError);
  EXPECT_THROW(
      parseNetworkString("nodes 2\nedge e0 0 1 5 weight=nan\n"),
      NetfileError);
  EXPECT_THROW(parseNetworkString("link l1 nan\n"), NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 4294967296\n"), NetfileError);
  // Routing typos / duplicates.
  EXPECT_THROW(parseNetworkString("nodes 2\nrouting fastest\n"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nrouting hops\nrouting hops\n"),
               NetfileError);
  // Sessions without sender / without members / unknown session.
  EXPECT_THROW(parseNetworkString(R"(
    nodes 2
    edge e0 0 1 5
    session s multi
    member s r 1
  )"),
               NetfileError);
  EXPECT_THROW(parseNetworkString(R"(
    nodes 2
    edge e0 0 1 5
    session s multi
    sender s 0
  )"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nsender ghost 0\n"),
               NetfileError);
  EXPECT_THROW(parseNetworkString("nodes 2\nmember ghost r 1\n"),
               NetfileError);
  // Unreachable member (no edges at all).
  EXPECT_THROW(parseNetworkString(R"(
    nodes 3
    edge e0 0 1 5
    session s multi
    sender s 0
    member s r 2
  )"),
               NetfileError);
  // Flat dialect still validates as before.
  EXPECT_THROW(parseNetworkString("link l1 5\nreceiver ghost r l1\n"),
               NetfileError);
}

}  // namespace
}  // namespace mcfair::net
