// Tests for quantum join/leave schedules and random-join redundancy
// (Appendix B validation, Figure 5 machinery, Appendix E claim).
#include <gtest/gtest.h>

#include <cmath>

#include "layering/quantum.hpp"
#include "util/error.hpp"

namespace mcfair::layering {
namespace {

TEST(RandomJoinClosedForm, TwoEqualReceivers) {
  // sigma=1, a=(0.5,0.5): E[U] = 1-(0.5)^2 = 0.75, redundancy 1.5.
  EXPECT_DOUBLE_EQ(singleLayerRandomJoinExpectedUsage({0.5, 0.5}, 1.0), 0.75);
  EXPECT_DOUBLE_EQ(singleLayerRandomJoinRedundancy({0.5, 0.5}, 1.0), 1.5);
}

TEST(RandomJoinClosedForm, RedundancyBoundedBySigmaOverMax) {
  // Figure 5 observation: redundancy <= sigma / max(a) and approaches it
  // as receivers multiply.
  const double sigma = 1.0;
  const double z = 0.1;
  std::vector<double> rates;
  double prev = 0.0;
  for (int r = 1; r <= 200; ++r) {
    rates.push_back(z);
    const double red = singleLayerRandomJoinRedundancy(rates, sigma);
    EXPECT_LE(red, sigma / z + 1e-12);
    EXPECT_GE(red + 1e-12, prev);  // monotone in receiver count
    prev = red;
  }
  EXPECT_GT(prev, 0.95 * sigma / z);  // asymptotically reaches the bound
}

TEST(RandomJoinClosedForm, SingleReceiverIsEfficient) {
  EXPECT_DOUBLE_EQ(singleLayerRandomJoinRedundancy({0.3}, 1.0), 1.0);
}

TEST(RandomJoinClosedForm, EqualRatesMaximizeRedundancyGrowth) {
  // Section 3: "redundancy increases most rapidly ... when all receivers
  // receive at the same rate" (for a fixed efficient link rate).
  // Compare All-0.5 against 1st-0.5-rest-0.1 at equal receiver counts.
  for (std::size_t r = 2; r <= 50; ++r) {
    std::vector<double> equal(r, 0.5);
    std::vector<double> skewed(r, 0.1);
    skewed[0] = 0.5;  // same efficient link rate (max = 0.5)
    EXPECT_GE(singleLayerRandomJoinRedundancy(equal, 1.0),
              singleLayerRandomJoinRedundancy(skewed, 1.0));
  }
}

TEST(RandomJoinMonteCarlo, MatchesClosedForm) {
  util::Rng rng(1234);
  const std::vector<double> rates{0.3, 0.5, 0.2, 0.4};
  const double expected = singleLayerRandomJoinExpectedUsage(rates, 1.0);
  const double simulated =
      simulateRandomJoinUsage(rates, 1.0, /*packetsPerQuantum=*/100,
                              /*quanta=*/4000, rng);
  EXPECT_NEAR(simulated, expected, 0.01);
}

TEST(RandomJoinMonteCarlo, Validation) {
  util::Rng rng(1);
  EXPECT_THROW(simulateRandomJoinUsage({0.5}, 0.0, 10, 10, rng),
               PreconditionError);
  EXPECT_THROW(simulateRandomJoinUsage({0.5}, 1.0, 0, 10, rng),
               PreconditionError);
}

TEST(MultiLayer, FullyJoinedLayersCarryWholeRate) {
  // One receiver at the scheme top: usage = its rate exactly.
  const LayerScheme scheme = LayerScheme::exponential(3);  // cum 1,2,4
  EXPECT_DOUBLE_EQ(multiLayerRandomJoinExpectedUsage({4.0}, scheme), 4.0);
  EXPECT_DOUBLE_EQ(multiLayerRandomJoinRedundancy({4.0}, scheme), 1.0);
}

TEST(MultiLayer, PartialTopLayerUsesAppendixB) {
  // Receivers at 1.5 with layers (1,1,2): layer 1 full (1.0), layer 2
  // partial with remainders {0.5, 0.5}: 1*(1-0.25)=0.75. Total 1.75.
  const LayerScheme scheme = LayerScheme::exponential(3);
  const double u = multiLayerRandomJoinExpectedUsage({1.5, 1.5}, scheme);
  EXPECT_DOUBLE_EQ(u, 1.0 + 0.75);
}

TEST(MultiLayer, NeverWorseThanSingleLayer) {
  // Appendix E claim: splitting into layers never increases redundancy
  // beyond the single-layer case (same aggregate rate).
  util::Rng rng(99);
  const LayerScheme multi = LayerScheme::exponential(6);  // aggregate 32
  const double sigma = multi.cumulativeRate(multi.layerCount());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t r = 2 + rng.below(8);
    std::vector<double> rates;
    for (std::size_t k = 0; k < r; ++k) {
      rates.push_back(rng.uniform(0.05, sigma));
    }
    const double single = singleLayerRandomJoinExpectedUsage(rates, sigma);
    const double layered = multiLayerRandomJoinExpectedUsage(rates, multi);
    EXPECT_LE(layered, single + 1e-9)
        << "trial " << trial << " with " << r << " receivers";
  }
}

TEST(PrefixSchedule, AverageRatesConverge) {
  const std::vector<double> rates{0.33, 0.5, 0.91};
  const auto result = simulatePrefixSchedule(rates, 1.0,
                                             /*packetsPerQuantum=*/64,
                                             /*quanta=*/4000);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_NEAR(result.averageRates[k], rates[k], 0.02);
  }
}

TEST(PrefixSchedule, RedundancyIsOne) {
  // Nested prefixes: link packets = max receiver packets each quantum.
  const std::vector<double> rates{0.25, 0.5, 1.0};
  const auto result = simulatePrefixSchedule(rates, 1.0, 64, 500);
  EXPECT_NEAR(result.redundancy, 1.0, 1e-9);
  for (std::size_t q = 0; q < result.counts.size(); ++q) {
    std::size_t top = 0;
    for (std::size_t c : result.counts[q]) top = std::max(top, c);
    EXPECT_EQ(result.linkPackets[q], top);
  }
}

TEST(PrefixSchedule, FractionalRatesViaCarry) {
  // Rate 1/3 with 10-packet quanta: counts alternate 3,3,4 and average to
  // 10/3 per quantum (footnote 7's floor/ceil mechanism).
  const auto result = simulatePrefixSchedule({1.0 / 3.0}, 1.0, 10, 3000);
  EXPECT_NEAR(result.averageRates[0], 1.0 / 3.0, 1e-3);
  bool saw3 = false, saw4 = false;
  for (const auto& counts : result.counts) {
    if (counts[0] == 3) saw3 = true;
    if (counts[0] == 4) saw4 = true;
  }
  EXPECT_TRUE(saw3);
  EXPECT_TRUE(saw4);
}

TEST(MultiLayerSchedule, AverageRatesConverge) {
  const LayerScheme scheme = LayerScheme::exponential(4);  // cum 1,2,4,8
  const std::vector<double> rates{1.5, 3.0, 6.5};
  const auto r =
      simulateMultiLayerPrefixSchedule(rates, scheme, 100, 2000);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_NEAR(r.averageRates[k], rates[k], 0.02) << "receiver " << k;
  }
}

TEST(MultiLayerSchedule, RedundancyIsOne) {
  // Section 3's positive result in the multi-layer setting: nested
  // prefixes make the session's total link usage equal the top
  // receiver's rate.
  const LayerScheme scheme = LayerScheme::exponential(5);
  const std::vector<double> rates{0.7, 2.5, 5.0, 13.0};
  const auto r =
      simulateMultiLayerPrefixSchedule(rates, scheme, 200, 1000);
  EXPECT_NEAR(r.redundancy, 1.0, 1e-3);
  double total = 0.0;
  for (double u : r.layerLinkRates) total += u;
  EXPECT_NEAR(total, 13.0, 0.05);
}

TEST(MultiLayerSchedule, FullLayersCarryWholeRate) {
  const LayerScheme scheme = LayerScheme::exponential(3);  // rates 1,1,2
  const std::vector<double> rates{4.0};  // fully joined everywhere
  const auto r = simulateMultiLayerPrefixSchedule(rates, scheme, 50, 100);
  EXPECT_NEAR(r.layerLinkRates[0], 1.0, 1e-9);
  EXPECT_NEAR(r.layerLinkRates[1], 1.0, 1e-9);
  EXPECT_NEAR(r.layerLinkRates[2], 2.0, 1e-9);
}

TEST(MultiLayerSchedule, BeatsRandomJoins) {
  // The coordinated schedule's usage (== max rate) is strictly below the
  // random-join expectation for shared partial layers.
  const LayerScheme scheme = LayerScheme::exponential(4);
  const std::vector<double> rates{3.0, 3.0, 3.0};
  const auto coordinated =
      simulateMultiLayerPrefixSchedule(rates, scheme, 100, 500);
  const double random = multiLayerRandomJoinRedundancy(rates, scheme);
  EXPECT_LT(coordinated.redundancy, random);
  EXPECT_GT(random, 1.05);
}

TEST(MultiLayerSchedule, Validation) {
  const LayerScheme scheme = LayerScheme::exponential(2);
  EXPECT_THROW(simulateMultiLayerPrefixSchedule({5.0}, scheme, 10, 10),
               PreconditionError);
  EXPECT_THROW(simulateMultiLayerPrefixSchedule({1.0}, scheme, 0, 10),
               PreconditionError);
}

TEST(Quantum, InputValidation) {
  EXPECT_THROW(singleLayerRandomJoinRedundancy({}, 1.0), PreconditionError);
  EXPECT_THROW(singleLayerRandomJoinRedundancy({0.0}, 1.0),
               PreconditionError);
  EXPECT_THROW(singleLayerRandomJoinExpectedUsage({2.0}, 1.0),
               PreconditionError);
  EXPECT_THROW(simulatePrefixSchedule({2.0}, 1.0, 10, 10),
               PreconditionError);
}

}  // namespace
}  // namespace mcfair::layering
