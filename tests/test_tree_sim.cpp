// Tests for the multicast-tree simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/star.hpp"
#include "sim/tree_sim.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace mcfair::sim {
namespace {

TreeConfig quickTree(ProtocolKind kind) {
  TreeConfig c;
  c.branching = 3;
  c.depth = 3;
  c.layers = 6;
  c.protocol = kind;
  c.rootLossRate = 0.0001;
  c.perLinkLossRate = 0.02;
  c.totalPackets = 40000;
  c.seed = 21;
  return c;
}

TEST(TreeSim, ShapeAccounting) {
  TreeConfig c = quickTree(ProtocolKind::kDeterministic);
  const TreeResult r = runTreeSimulation(c);
  EXPECT_EQ(r.receivers, 9u);         // 3^(3-1)
  EXPECT_EQ(r.links, 1u + 3u + 9u);   // complete 3-ary link tree
}

TEST(TreeSim, DepthTwoMatchesStarStatistically) {
  // A depth-2 tree with branching N is exactly the Figure 7(b) star;
  // redundancy estimates must agree within combined confidence bounds.
  TreeConfig tc;
  tc.branching = 20;
  tc.depth = 2;
  tc.layers = 8;
  tc.protocol = ProtocolKind::kUncoordinated;
  tc.rootLossRate = 0.0001;
  tc.perLinkLossRate = 0.04;
  tc.totalPackets = 100000;
  util::RunningStats tree;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    tc.seed = s;
    tree.add(runTreeSimulation(tc).rootRedundancy);
  }
  StarConfig sc;
  sc.receivers = 20;
  sc.layers = 8;
  sc.protocol = ProtocolKind::kUncoordinated;
  sc.sharedLossRate = 0.0001;
  sc.independentLossRate = 0.04;
  sc.totalPackets = 100000;
  const auto star = estimateRedundancy(sc, 8);
  EXPECT_NEAR(tree.mean(), star.mean,
              3.0 * (tree.ci95HalfWidth() + star.ci95));
}

TEST(TreeSim, ZeroLossReachesTop) {
  TreeConfig c = quickTree(ProtocolKind::kDeterministic);
  c.rootLossRate = 0.0;
  c.perLinkLossRate = 0.0;
  const TreeResult r = runTreeSimulation(c);
  EXPECT_NEAR(r.meanLevel, 6.0, 0.2);
  EXPECT_NEAR(r.rootRedundancy, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.observedLossRate, 0.0);
}

TEST(TreeSim, EndToEndLossGrowsWithDepth) {
  // Loss compounds along the path: 1 - (1-p)^(depth-1) for subscribed
  // receivers (plus the tiny root loss).
  double prev = 0.0;
  for (const std::size_t depth : {2u, 3u, 4u, 5u}) {
    TreeConfig c = quickTree(ProtocolKind::kDeterministic);
    c.branching = 2;
    c.depth = depth;
    const TreeResult r = runTreeSimulation(c);
    EXPECT_GT(r.observedLossRate, prev);
    prev = r.observedLossRate;
    const double expected =
        1.0 - (1.0 - 0.0001) *
                  std::pow(1.0 - 0.02, static_cast<double>(depth - 1));
    EXPECT_NEAR(r.observedLossRate, expected, 0.01) << "depth " << depth;
  }
}

TEST(TreeSim, RedundancyAtLeastOne) {
  for (const auto kind :
       {ProtocolKind::kUncoordinated, ProtocolKind::kDeterministic,
        ProtocolKind::kCoordinated}) {
    const TreeResult r = runTreeSimulation(quickTree(kind));
    EXPECT_GE(r.rootRedundancy, 1.0) << protocolName(kind);
  }
}

TEST(TreeSim, SharedAncestorsCorrelateSiblings) {
  // Same total end-to-end loss, split differently: concentrating loss on
  // shared upper links correlates receivers and lowers redundancy
  // compared with leaf-only loss (the same end-to-end rate).
  TreeConfig shared = quickTree(ProtocolKind::kDeterministic);
  shared.branching = 4;
  shared.depth = 2;              // one shared root + leaves
  shared.rootLossRate = 0.05;    // loss mostly shared
  shared.perLinkLossRate = 0.001;
  TreeConfig leafy = shared;
  leafy.rootLossRate = 0.001;
  leafy.perLinkLossRate = 0.05;  // loss mostly independent
  util::RunningStats sharedStats, leafyStats;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    shared.seed = leafy.seed = s;
    sharedStats.add(runTreeSimulation(shared).rootRedundancy);
    leafyStats.add(runTreeSimulation(leafy).rootRedundancy);
  }
  EXPECT_LT(sharedStats.mean(), leafyStats.mean());
}

TEST(TreeSim, Reproducible) {
  const TreeConfig c = quickTree(ProtocolKind::kUncoordinated);
  const TreeResult a = runTreeSimulation(c);
  const TreeResult b = runTreeSimulation(c);
  EXPECT_EQ(a.rootForwarded, b.rootForwarded);
  EXPECT_EQ(a.maxDelivered, b.maxDelivered);
}

TEST(TreeSim, Validation) {
  TreeConfig c = quickTree(ProtocolKind::kCoordinated);
  c.branching = 0;
  EXPECT_THROW(runTreeSimulation(c), PreconditionError);
  c = quickTree(ProtocolKind::kCoordinated);
  c.depth = 0;
  EXPECT_THROW(runTreeSimulation(c), PreconditionError);
  c = quickTree(ProtocolKind::kCoordinated);
  c.branching = 8;
  c.depth = 6;  // 8^5 = 32768 leaves > 4096
  EXPECT_THROW(runTreeSimulation(c), PreconditionError);
  c = quickTree(ProtocolKind::kCoordinated);
  c.perLinkLossRate = 1.0;
  EXPECT_THROW(runTreeSimulation(c), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
