// Tests for the general-graph generators (graph/generators.hpp):
// connectivity, family-defining structure, determinism, validation.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/routing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::graph {
namespace {

bool connected(const Graph& g) {
  const auto pred = bfsPredecessors(g, NodeId{0});
  for (std::uint32_t v = 1; v < g.nodeCount(); ++v) {
    if (pred[v] == 0) return false;
  }
  return true;
}

std::vector<std::size_t> degrees(const Graph& g) {
  std::vector<std::size_t> d(g.nodeCount(), 0);
  for (std::uint32_t v = 0; v < g.nodeCount(); ++v) {
    d[v] = g.neighbors(NodeId{v}).size();
  }
  return d;
}

TEST(ScaleFreeGraph, StructureAndConnectivity) {
  util::Rng rng(1);
  const std::size_t n = 64, m = 2;
  const Graph g = scaleFreeGraph(rng, {n, m, 5.0});
  EXPECT_EQ(g.nodeCount(), n);
  // Every node past the seed adds exactly m edges.
  EXPECT_EQ(g.linkCount(), (n - m) * m);
  EXPECT_TRUE(connected(g));
  EXPECT_DOUBLE_EQ(g.capacity(LinkId{0}), 5.0);
  // Growers attach m times (seed nodes are only guaranteed the edge the
  // first grower brings), and preferential attachment produces a hub
  // well above the minimum.
  const auto d = degrees(g);
  std::size_t maxDeg = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    EXPECT_GE(d[v], v < m ? 1 : m) << "node " << v;
    maxDeg = std::max(maxDeg, d[v]);
  }
  EXPECT_GE(maxDeg, 4 * m) << "expected a preferential-attachment hub";
}

TEST(ScaleFreeGraph, WithCyclesForMAtLeastTwo) {
  util::Rng rng(2);
  const Graph g = scaleFreeGraph(rng, {32, 2, 1.0});
  EXPECT_GT(g.linkCount(), g.nodeCount() - 1) << "m = 2 must create cycles";
}

TEST(ScaleFreeGraph, DeterministicInSeed) {
  util::Rng a(9), b(9), c(10);
  const Graph ga = scaleFreeGraph(a, {24, 3, 1.0});
  const Graph gb = scaleFreeGraph(b, {24, 3, 1.0});
  const Graph gc = scaleFreeGraph(c, {24, 3, 1.0});
  ASSERT_EQ(ga.linkCount(), gb.linkCount());
  bool anyDifferent = ga.linkCount() != gc.linkCount();
  for (std::uint32_t l = 0; l < ga.linkCount(); ++l) {
    EXPECT_EQ(ga.endpoints(LinkId{l}), gb.endpoints(LinkId{l}));
    if (!anyDifferent && ga.endpoints(LinkId{l}) != gc.endpoints(LinkId{l})) {
      anyDifferent = true;
    }
  }
  EXPECT_TRUE(anyDifferent) << "different seeds should differ";
}

TEST(WaxmanGraph, ConnectedAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const Graph g = waxmanGraph(rng, {40, 0.5, 0.3, 2.0});
    EXPECT_EQ(g.nodeCount(), 40u);
    EXPECT_TRUE(connected(g)) << "seed " << seed;
    EXPECT_GE(g.linkCount(), 39u);
  }
  util::Rng a(3), b(3);
  const Graph ga = waxmanGraph(a, {30, 0.5, 0.3, 1.0});
  const Graph gb = waxmanGraph(b, {30, 0.5, 0.3, 1.0});
  ASSERT_EQ(ga.linkCount(), gb.linkCount());
  for (std::uint32_t l = 0; l < ga.linkCount(); ++l) {
    EXPECT_EQ(ga.endpoints(LinkId{l}), gb.endpoints(LinkId{l}));
  }
}

TEST(WaxmanGraph, SparseParametersStillConnect) {
  // alpha small enough that the probabilistic phase strands components;
  // the repair pass must stitch them.
  util::Rng rng(4);
  const Graph g = waxmanGraph(rng, {24, 0.05, 0.05, 1.0});
  EXPECT_TRUE(connected(g));
}

TEST(RandomRegularGraph, ExactDegreesSimpleAndConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const Graph g = randomRegularGraph(rng, {26, 3, 1.0, 200});
    EXPECT_TRUE(connected(g)) << "seed " << seed;
    for (const std::size_t d : degrees(g)) EXPECT_EQ(d, 3u);
    // Simple: no self-loops or parallel links.
    for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
      const auto [a, b] = g.endpoints(LinkId{l});
      EXPECT_NE(a, b);
      for (std::uint32_t m = l + 1; m < g.linkCount(); ++m) {
        EXPECT_NE(g.endpoints(LinkId{m}), g.endpoints(LinkId{l}));
      }
    }
  }
}

TEST(Generators, Validation) {
  util::Rng rng(1);
  EXPECT_THROW(scaleFreeGraph(rng, {4, 0, 1.0}), PreconditionError);
  EXPECT_THROW(scaleFreeGraph(rng, {3, 3, 1.0}), PreconditionError);
  EXPECT_THROW(scaleFreeGraph(rng, {8, 2, 0.0}), PreconditionError);
  EXPECT_THROW(waxmanGraph(rng, {1, 0.5, 0.3, 1.0}), PreconditionError);
  EXPECT_THROW(waxmanGraph(rng, {8, 0.0, 0.3, 1.0}), PreconditionError);
  EXPECT_THROW(waxmanGraph(rng, {8, 0.5, 0.0, 1.0}), PreconditionError);
  EXPECT_THROW(randomRegularGraph(rng, {8, 8, 1.0, 10}), PreconditionError);
  EXPECT_THROW(randomRegularGraph(rng, {5, 3, 1.0, 10}), PreconditionError);
}

}  // namespace
}  // namespace mcfair::graph
