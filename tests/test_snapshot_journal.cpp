// Crash-recovery coverage for the serving layer's persistence formats:
//
//  * net/snapshot.hpp — the binary network image must round-trip
//    bit-identically (including infinite capacities, a zero-capacity
//    faulted link, weights, sigma limits and every registry link-rate
//    family) and must reject *every* single-byte corruption and every
//    truncation rather than construct a half-parsed network.
//  * serve/journal.hpp — delta records round-trip exactly; replay
//    consumes complete records and stops silently at a torn tail.
//  * serve::FairshareService::recover — a snapshot plus a journal replay
//    reaches allocations EXPECT_EQ-identical to the uninterrupted
//    service (fuzzed over random delta streams, including mid-fault
//    capacities), and a journal truncated at *every* byte recovers the
//    state of the longest complete-record prefix (the kill-point test).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "fairness/maxmin.hpp"
#include "net/snapshot.hpp"
#include "net/topologies.hpp"
#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace mcfair::serve {
namespace {

using net::Network;
using net::SnapshotError;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

std::string readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// A network exercising every serialized feature at once: an infinite
// capacity, a zero-capacity (failed) link, non-unit weights, a finite
// sigma, a single-rate session and all three link-rate families.
Network richNetwork() {
  Network n;
  const auto l0 = n.addLink(4.0);
  const auto l1 = n.addLink(8.0);
  const auto l2 = n.addLink(3.0);
  const auto l3 = n.addLink(std::numeric_limits<double>::infinity());
  const auto l4 = n.addLink(5.0);
  n.setCapacity(l2, 0.0);  // down mid-fault at snapshot time

  net::Session s1;
  s1.name = "S1";
  s1.linkRateFn = std::make_shared<const net::ConstantFactor>(1.5);
  s1.receivers.push_back(net::makeReceiver({l0, l1}, "r1,1"));
  s1.receivers.push_back(net::makeReceiver({l0, l4}, "r1,2"));
  s1.receivers.back().weight = 2.5;
  n.addSession(s1);

  net::Session s2;
  s2.name = "S2";
  s2.type = net::SessionType::kSingleRate;
  s2.maxRate = 6.0;
  s2.receivers.push_back(net::makeReceiver({l1}, "r2,1"));
  s2.receivers.push_back(net::makeReceiver({l1, l3}, "r2,2"));
  for (auto& r : s2.receivers) r.weight = 2.0;
  n.addSession(s2);

  net::Session s3;
  s3.name = "S3";
  s3.maxRate = 9.5;
  s3.linkRateFn = std::make_shared<const net::RandomJoinExpected>(4.0);
  s3.receivers.push_back(net::makeReceiver({l2, l4}, "r3,1"));
  n.addSession(s3);
  return n;
}

void expectSameNetwork(const Network& a, const Network& b) {
  EXPECT_TRUE(net::structurallyEqual(a, b));
  ASSERT_EQ(a.linkCount(), b.linkCount());
  for (std::uint32_t j = 0; j < a.linkCount(); ++j) {
    EXPECT_EQ(a.capacity(graph::LinkId{j}), b.capacity(graph::LinkId{j}));
  }
  ASSERT_EQ(a.sessionCount(), b.sessionCount());
  for (std::size_t i = 0; i < a.sessionCount(); ++i) {
    const net::Session& sa = a.session(i);
    const net::Session& sb = b.session(i);
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.type, sb.type);
    EXPECT_EQ(sa.maxRate, sb.maxRate);  // bitwise, incl. infinity
    ASSERT_EQ(sa.receivers.size(), sb.receivers.size());
    for (std::size_t k = 0; k < sa.receivers.size(); ++k) {
      EXPECT_EQ(sa.receivers[k].name, sb.receivers[k].name);
      EXPECT_EQ(sa.receivers[k].weight, sb.receivers[k].weight);
      ASSERT_EQ(sa.receivers[k].dataPath.size(),
                sb.receivers[k].dataPath.size());
      for (std::size_t p = 0; p < sa.receivers[k].dataPath.size(); ++p) {
        EXPECT_EQ(sa.receivers[k].dataPath[p].value,
                  sb.receivers[k].dataPath[p].value);
      }
    }
  }
}

void expectSameAllocation(const Network& shape, const fairness::Allocation& a,
                          const fairness::Allocation& b) {
  for (const net::ReceiverRef ref : shape.receiverRefs()) {
    EXPECT_EQ(a.rate(ref), b.rate(ref))
        << "receiver (" << ref.session << ", " << ref.receiver << ")";
  }
}

TEST(NetworkSnapshot, RoundTripIsBitIdentical) {
  const Network original = richNetwork();
  const std::string bytes = net::networkSnapshotBytes(original);
  const Network loaded = net::networkFromSnapshotBytes(bytes);
  expectSameNetwork(original, loaded);
  // The loaded network drives the solver to the same answer bit for bit
  // (the 0-capacity link freezes r3,1 at rate 0 in both).
  expectSameAllocation(original, fairness::maxMinFairAllocation(original),
                       fairness::maxMinFairAllocation(loaded));
}

TEST(NetworkSnapshot, RejectsEverySingleByteCorruption) {
  const std::string bytes = net::networkSnapshotBytes(richNetwork());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    EXPECT_THROW((void)net::networkFromSnapshotBytes(mutated), SnapshotError)
        << "byte " << i << " of " << bytes.size();
  }
}

TEST(NetworkSnapshot, RejectsEveryTruncation) {
  const std::string bytes = net::networkSnapshotBytes(richNetwork());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)net::networkFromSnapshotBytes(bytes.substr(0, len)),
                 SnapshotError)
        << "length " << len << " of " << bytes.size();
  }
  EXPECT_THROW((void)net::networkFromSnapshotBytes(bytes + 'x'),
               SnapshotError);
}

TEST(NetworkSnapshot, RejectsUnserializableLinkRateFunction) {
  // A custom function outside the registry families cannot be described,
  // so the writer must refuse rather than emit a lossy image.
  class Custom final : public net::LinkRateFunction {
   public:
    double linkRate(std::span<const double> rates) const override {
      double s = 0.0;
      for (double r : rates) s += r;
      return s;
    }
  };
  Network n;
  const auto l = n.addLink(5.0);
  net::Session s;
  s.linkRateFn = std::make_shared<const Custom>();
  s.receivers.push_back(net::makeReceiver({l}));
  n.addSession(s);
  EXPECT_THROW((void)net::networkSnapshotBytes(n), SnapshotError);
}

// --- Delta codec. ---

std::vector<Delta> sampleDeltas() {
  net::Session join;
  join.name = "joiner";
  join.maxRate = 7.25;
  join.linkRateFn = std::make_shared<const net::ConstantFactor>(2.0);
  join.receivers.push_back(net::makeReceiver({graph::LinkId{0}}, "jr"));
  join.receivers.back().weight = 1.5;
  return {
      setCapacityDelta(graph::LinkId{3}, 6.125),
      faultDelta(net::FaultEvent{0.0, net::FaultKind::kLinkDown,
                                 graph::LinkId{1}, 1.0}),
      faultDelta(net::FaultEvent{0.0, net::FaultKind::kDegrade,
                                 graph::LinkId{2}, 0.375}),
      joinDelta(42, join),
      leaveDelta(42),
  };
}

TEST(DeltaCodec, RoundTripsEveryKind) {
  for (const Delta& d : sampleDeltas()) {
    const Delta back = decodeDelta(encodeDelta(d));
    EXPECT_EQ(back.kind, d.kind);
    EXPECT_EQ(back.link.value, d.link.value);
    EXPECT_EQ(back.capacity, d.capacity);
    EXPECT_EQ(back.fault, d.fault);
    EXPECT_EQ(back.factor, d.factor);
    EXPECT_EQ(back.sessionId, d.sessionId);
    if (d.kind == DeltaKind::kJoin) {
      EXPECT_EQ(back.session.name, d.session.name);
      EXPECT_EQ(back.session.maxRate, d.session.maxRate);
      ASSERT_EQ(back.session.receivers.size(), d.session.receivers.size());
      EXPECT_EQ(back.session.receivers[0].weight,
                d.session.receivers[0].weight);
    }
  }
}

TEST(DeltaCodec, RejectsMalformedPayloads) {
  EXPECT_THROW((void)decodeDelta(""), SnapshotError);
  EXPECT_THROW((void)decodeDelta("\x07"), SnapshotError);
  const std::string good = encodeDelta(sampleDeltas().front());
  EXPECT_THROW((void)decodeDelta(good.substr(0, good.size() - 1)),
               SnapshotError);
  EXPECT_THROW((void)decodeDelta(good + 'x'), SnapshotError);
}

// --- Journal replay and tearing. ---

TEST(Journal, MissingFileIsEmpty) {
  EXPECT_TRUE(readJournal(tempPath("journal_never_written.bin")).empty());
}

TEST(Journal, ReplaysCompleteRecordsAndStopsAtEveryTear) {
  const std::vector<Delta> deltas = sampleDeltas();
  const std::string path = tempPath("journal_tear.bin");
  {
    JournalWriter w;
    w.open(path, /*truncate=*/true);
    for (const Delta& d : deltas) w.append(d);
  }
  const std::string full = readBytes(path);

  // Record boundaries from the framing: [u32 size][payload][u64 fnv].
  std::vector<std::size_t> boundary = {0};
  for (const Delta& d : deltas) {
    boundary.push_back(boundary.back() + 4 + encodeDelta(d).size() + 8);
  }
  ASSERT_EQ(boundary.back(), full.size());

  const std::string torn = tempPath("journal_tear_cut.bin");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeBytes(torn, full.substr(0, cut));
    std::size_t complete = 0;
    while (complete + 1 < boundary.size() && boundary[complete + 1] <= cut) {
      ++complete;
    }
    const std::vector<Delta> got = readJournal(torn);
    ASSERT_EQ(got.size(), complete) << "cut at byte " << cut;
    for (std::size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(got[i].kind, deltas[i].kind);
    }
  }

  // A checksummed-but-corrupt tail record is also dropped silently.
  std::string corrupt = full;
  corrupt[boundary[boundary.size() - 2] + 6] ^=
      static_cast<char>(0xFF);  // inside the last record's payload
  writeBytes(torn, corrupt);
  EXPECT_EQ(readJournal(torn).size(), deltas.size() - 1);
}

// --- Service snapshot + journal recovery. ---

// Several links and sessions so joins/leaves/faults have room to play.
Network serviceBase() {
  Network n;
  const auto l0 = n.addLink(10.0);
  const auto l1 = n.addLink(6.0);
  const auto l2 = n.addLink(8.0);
  const auto l3 = n.addLink(12.0);
  const auto l4 = n.addLink(7.0);

  net::Session s1;
  s1.name = "S1";
  s1.receivers.push_back(net::makeReceiver({l0, l1}, "r1,1"));
  s1.receivers.push_back(net::makeReceiver({l0, l2}, "r1,2"));
  n.addSession(s1);

  net::Session s2;
  s2.name = "S2";
  s2.type = net::SessionType::kSingleRate;
  s2.maxRate = 5.0;
  s2.receivers.push_back(net::makeReceiver({l1, l3}, "r2,1"));
  s2.receivers.push_back(net::makeReceiver({l2, l3}, "r2,2"));
  n.addSession(s2);

  n.addSession(net::makeUnicastSession({l4}, net::kUnlimitedRate, "S3"));
  return n;
}

ServiceOptions recoveryOptions(const std::string& journalPath) {
  ServiceOptions options;
  options.journalPath = journalPath;
  options.sampled.sampleFraction = 0.5;
  options.sampled.seed = 99;
  return options;
}

Delta randomDelta(util::Rng& rng, const std::vector<std::uint64_t>& liveIds,
                  std::uint64_t& nextId, std::size_t linkCount) {
  const auto link = graph::LinkId{
      static_cast<std::uint32_t>(rng.below(linkCount))};
  switch (rng.below(8)) {
    case 0:
    case 1:
    case 2:
      return setCapacityDelta(link, rng.uniform(0.5, 20.0));
    case 3:
    case 4: {
      const std::uint64_t kind = rng.below(3);
      const net::FaultKind fk = kind == 0 ? net::FaultKind::kLinkDown
                                : kind == 1 ? net::FaultKind::kLinkUp
                                            : net::FaultKind::kDegrade;
      return faultDelta(
          net::FaultEvent{0.0, fk, link, rng.uniform(0.1, 1.0)});
    }
    case 5:
    case 6: {
      net::Session s;
      s.name = "j" + std::to_string(nextId);
      if (rng.bernoulli(0.5)) s.maxRate = rng.uniform(1.0, 10.0);
      const std::size_t receivers = 1 + rng.below(2);
      for (std::size_t k = 0; k < receivers; ++k) {
        const auto a = graph::LinkId{
            static_cast<std::uint32_t>(rng.below(linkCount))};
        auto b = graph::LinkId{
            static_cast<std::uint32_t>(rng.below(linkCount))};
        net::Receiver r = net::makeReceiver(a.value == b.value
                                                ? std::vector{a}
                                                : std::vector{a, b});
        r.weight = rng.uniform(0.5, 2.0);
        s.receivers.push_back(std::move(r));
      }
      return joinDelta(nextId++, std::move(s));
    }
    default:
      if (liveIds.size() > 1) {
        return leaveDelta(liveIds[rng.below(liveIds.size())]);
      }
      return setCapacityDelta(link, rng.uniform(0.5, 20.0));
  }
}

class ServiceRecoveryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The headline acceptance criterion: kill the process after any number
// of applied deltas (here: after all of them), recover from snapshot +
// journal, and the recovered service's allocations are EXPECT_EQ-equal
// to the uninterrupted one — including link capacities frozen mid-fault
// (kLinkDown leaves zero-capacity links in the live state).
TEST_P(ServiceRecoveryFuzz, ReplayedServiceMatchesLiveService) {
  const std::uint64_t seed = GetParam();
  const std::string tag = std::to_string(seed);
  const std::string snapPath = tempPath("svc_snap_" + tag + ".bin");
  const ServiceOptions options =
      recoveryOptions(tempPath("svc_journal_" + tag + ".bin"));

  FairshareService live(serviceBase(), options);
  live.saveSnapshot(snapPath);

  util::Rng rng(seed);
  std::uint64_t nextId = 100;
  for (std::size_t step = 0; step < 40; ++step) {
    const Delta d =
        randomDelta(rng, live.sessionIds(), nextId, live.network().linkCount());
    ASSERT_EQ(live.applyDelta(d), ServiceStatus::kOk) << "step " << step;
    if (step == 19 && seed % 2 == 1) {
      // Odd seeds compact mid-stream: snapshot + truncated journal.
      live.saveSnapshot(snapPath);
    }
  }

  const auto recovered = FairshareService::recover(snapPath, options);
  EXPECT_EQ(recovered->revision(), live.revision());
  EXPECT_EQ(recovered->sessionIds(), live.sessionIds());
  expectSameNetwork(live.network(), recovered->network());

  const QueryResult a = live.query(0.0);
  const QueryResult b = recovered->query(0.0);
  ASSERT_EQ(a.status, ServiceStatus::kOk);
  ASSERT_EQ(b.status, ServiceStatus::kOk);
  EXPECT_FALSE(a.degraded);
  EXPECT_FALSE(b.degraded);
  expectSameAllocation(live.network(), *a.rates, *b.rates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceRecoveryFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Kill-point sweep: truncate the journal at every byte (every record
// boundary and every mid-record tear) and verify recovery lands exactly
// on the longest complete-record prefix.
TEST(ServiceRecovery, KillPointAtEveryJournalByte) {
  const std::string snapPath = tempPath("svc_kill_snap.bin");
  const std::string journalPath = tempPath("svc_kill_journal.bin");
  ServiceOptions options = recoveryOptions(journalPath);

  net::Session join50;
  join50.name = "j50";
  join50.receivers.push_back(
      net::makeReceiver({graph::LinkId{0}, graph::LinkId{2}}, "j50r"));
  net::Session join51;
  join51.name = "j51";
  join51.maxRate = 3.5;
  join51.receivers.push_back(net::makeReceiver({graph::LinkId{3}}, "j51r"));

  const std::vector<Delta> deltas = {
      setCapacityDelta(graph::LinkId{0}, 3.25),
      faultDelta(net::FaultEvent{0.0, net::FaultKind::kLinkDown,
                                 graph::LinkId{1}, 1.0}),
      joinDelta(50, join50),
      setCapacityDelta(graph::LinkId{3}, 9.5),
      faultDelta(net::FaultEvent{0.0, net::FaultKind::kDegrade,
                                 graph::LinkId{2}, 0.5}),
      joinDelta(51, join51),
      leaveDelta(1),
      faultDelta(net::FaultEvent{0.0, net::FaultKind::kLinkUp,
                                 graph::LinkId{1}, 1.0}),
      setCapacityDelta(graph::LinkId{4}, 2.75),
      leaveDelta(50),
  };

  {
    FairshareService live(serviceBase(), options);
    live.saveSnapshot(snapPath);
    for (const Delta& d : deltas) {
      ASSERT_EQ(live.applyDelta(d), ServiceStatus::kOk);
    }
  }
  const std::string full = readBytes(journalPath);
  std::vector<std::size_t> boundary = {0};
  for (const Delta& d : deltas) {
    boundary.push_back(boundary.back() + 4 + encodeDelta(d).size() + 8);
  }
  ASSERT_EQ(boundary.back(), full.size());

  const std::string tornPath = tempPath("svc_kill_journal_cut.bin");
  ServiceOptions tornOptions = recoveryOptions(tornPath);
  const ServiceOptions noJournal = recoveryOptions("");

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeBytes(tornPath, full.substr(0, cut));
    std::size_t complete = 0;
    while (complete + 1 < boundary.size() && boundary[complete + 1] <= cut) {
      ++complete;
    }
    const auto recovered = FairshareService::recover(snapPath, tornOptions);
    // Reference: the same snapshot with the first `complete` deltas
    // re-applied through the normal path.
    const auto reference = FairshareService::recover(snapPath, noJournal);
    for (std::size_t i = 0; i < complete; ++i) {
      ASSERT_EQ(reference->applyDelta(deltas[i]), ServiceStatus::kOk);
    }
    ASSERT_EQ(recovered->revision(), reference->revision())
        << "cut at byte " << cut;
    EXPECT_EQ(recovered->sessionIds(), reference->sessionIds());
    expectSameNetwork(reference->network(), recovered->network());
    const QueryResult a = recovered->query(0.0);
    const QueryResult b = reference->query(0.0);
    expectSameAllocation(recovered->network(), *a.rates, *b.rates);
  }
}

TEST(ServiceRecovery, SnapshotCompactionTruncatesJournal) {
  const std::string snapPath = tempPath("svc_compact_snap.bin");
  const std::string journalPath = tempPath("svc_compact_journal.bin");
  FairshareService live(serviceBase(), recoveryOptions(journalPath));
  ASSERT_EQ(live.applyDelta(setCapacityDelta(graph::LinkId{0}, 4.0)),
            ServiceStatus::kOk);
  EXPECT_GT(readBytes(journalPath).size(), 0u);
  live.saveSnapshot(snapPath);
  EXPECT_EQ(readBytes(journalPath).size(), 0u);
  // The post-compaction journal keeps accepting records.
  ASSERT_EQ(live.applyDelta(setCapacityDelta(graph::LinkId{1}, 3.0)),
            ServiceStatus::kOk);
  EXPECT_EQ(readJournal(journalPath).size(), 1u);
}

TEST(ServiceRecovery, RejectsMissingOrCorruptSnapshotAndBadReplay) {
  EXPECT_THROW(
      (void)FairshareService::recover(tempPath("svc_no_such_snap.bin"),
                                      recoveryOptions("")),
      SnapshotError);

  const std::string snapPath = tempPath("svc_bad_snap.bin");
  const std::string journalPath = tempPath("svc_bad_journal.bin");
  {
    FairshareService live(serviceBase(), recoveryOptions(journalPath));
    live.saveSnapshot(snapPath);
  }
  std::string bytes = readBytes(snapPath);
  bytes[bytes.size() / 2] ^= static_cast<char>(0xFF);
  const std::string corruptPath = tempPath("svc_bad_snap_corrupt.bin");
  writeBytes(corruptPath, bytes);
  EXPECT_THROW(
      (void)FairshareService::recover(corruptPath, recoveryOptions("")),
      SnapshotError);

  // A checksummed journal record that no longer applies (unknown session
  // id) is a hard recovery error, not a silent skip.
  {
    JournalWriter w;
    w.open(journalPath, /*truncate=*/true);
    w.append(leaveDelta(999));
  }
  EXPECT_THROW((void)FairshareService::recover(
                   snapPath, recoveryOptions(journalPath)),
               SnapshotError);
}

}  // namespace
}  // namespace mcfair::serve
