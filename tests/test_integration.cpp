// Cross-module integration tests: each of the paper's experiment
// pipelines exercised end-to-end at reduced scale.
#include <gtest/gtest.h>

#include <cmath>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "fairness/properties.hpp"
#include "layering/fixed_layer.hpp"
#include "layering/quantum.hpp"
#include "markov/protocol_chain.hpp"
#include "net/topologies.hpp"
#include "sim/star.hpp"

namespace mcfair {
namespace {

TEST(Integration, Figure5Pipeline) {
  // The five curves of Figure 5 at R = 100 receivers; spot-check the
  // asymptotes the paper discusses.
  auto curve = [](double first, double rest, std::size_t r) {
    std::vector<double> rates(r, rest);
    rates[0] = first;
    return layering::singleLayerRandomJoinRedundancy(rates, 1.0);
  };
  EXPECT_NEAR(curve(0.1, 0.1, 100), (1.0 - std::pow(0.9, 100.0)) / 0.1,
              1e-9);
  EXPECT_GT(curve(0.1, 0.1, 100), 9.9);  // approaches 1/z = 10
  EXPECT_LT(curve(0.9, 0.9, 100), 1.2);  // approaches 1/0.9
  EXPECT_LT(curve(0.5, 0.1, 100), curve(0.1, 0.1, 100));
  EXPECT_LT(curve(0.9, 0.1, 100), curve(0.5, 0.1, 100));
}

TEST(Integration, Figure6PipelineSolverVsFormula) {
  const double c = 100.0;
  for (const double mOverN : {0.1, 1.0}) {
    const std::size_t n = 10;
    const auto m = static_cast<std::size_t>(mOverN * n);
    for (const double v : {1.0, 4.0, 10.0}) {
      const net::Network net = net::singleBottleneckNetwork(n, m, c, v);
      const auto a = fairness::maxMinFairAllocation(net);
      const double formula =
          c / (static_cast<double>(n - m) + static_cast<double>(m) * v);
      const double normalized = a.rate({0, 0}) / (c / n);
      EXPECT_NEAR(a.rate({0, 0}), formula, 1e-6);
      EXPECT_LE(normalized, 1.0 + 1e-9);
    }
  }
}

TEST(Integration, Figure8PipelineSmallScale) {
  // One Figure 8(a)-style point per protocol at reduced scale: ordering
  // and magnitude sanity (full scale lives in bench/).
  sim::StarConfig base;
  base.receivers = 20;
  base.layers = 8;
  base.sharedLossRate = 0.0001;
  base.independentLossRate = 0.04;
  base.totalPackets = 50000;
  base.seed = 3;

  std::map<sim::ProtocolKind, double> red;
  for (const auto kind :
       {sim::ProtocolKind::kUncoordinated, sim::ProtocolKind::kDeterministic,
        sim::ProtocolKind::kCoordinated}) {
    sim::StarConfig c = base;
    c.protocol = kind;
    red[kind] = sim::estimateRedundancy(c, 5).mean;
    EXPECT_GE(red[kind], 1.0);
    EXPECT_LT(red[kind], 6.0);  // paper: "below 5 for reasonable rates"
  }
  EXPECT_LT(red[sim::ProtocolKind::kCoordinated],
            red[sim::ProtocolKind::kUncoordinated]);
  EXPECT_LT(red[sim::ProtocolKind::kCoordinated], 2.5);  // paper's bound
}

TEST(Integration, RedundancyMeasurementFeedsFairnessModel) {
  // Close the loop the paper draws between Sections 3 and 4: measure a
  // protocol's shared-link redundancy in the simulator, plug it into the
  // fairness model as a ConstantFactor, and verify the max-min allocation
  // degrades exactly as Lemma 4 predicts.
  sim::StarConfig sc;
  sc.receivers = 20;
  sc.layers = 6;
  sc.protocol = sim::ProtocolKind::kUncoordinated;
  sc.sharedLossRate = 0.0001;
  sc.independentLossRate = 0.05;
  sc.totalPackets = 50000;
  const double measured = sim::estimateRedundancy(sc, 3).mean;
  ASSERT_GT(measured, 1.0);

  const net::Network efficient =
      net::singleBottleneckNetwork(10, 2, 100.0, 1.0);
  const net::Network redundant =
      net::singleBottleneckNetwork(10, 2, 100.0, measured);
  const auto aEff = fairness::maxMinFairAllocation(efficient).orderedRates();
  const auto aRed = fairness::maxMinFairAllocation(redundant).orderedRates();
  EXPECT_TRUE(fairness::minUnfavorable(aRed, aEff, 1e-6));
  EXPECT_LT(aRed.front(), aEff.front());
}

TEST(Integration, MarkovAnalysisOrdersLikeSimulator) {
  // Independent-loss sweep: both the chain and the simulator must agree
  // that redundancy grows with independent loss (Figure 8 shape).
  double prevChain = 0.0;
  double prevSim = 0.0;
  for (const double p : {0.01, 0.05, 0.1}) {
    markov::ProtocolChainConfig mc;
    mc.layers = 4;
    mc.protocol = sim::ProtocolKind::kUncoordinated;
    mc.sharedLoss = 0.0001;
    mc.receiverLoss = {p, p};
    const double chainRed = markov::analyzeProtocolChain(mc).redundancy;

    sim::StarConfig sc;
    sc.receivers = 2;
    sc.layers = 4;
    sc.protocol = sim::ProtocolKind::kUncoordinated;
    sc.sharedLossRate = 0.0001;
    sc.independentLossRate = p;
    sc.totalPackets = 100000;
    const double simRed = sim::estimateRedundancy(sc, 4).mean;

    EXPECT_GT(chainRed, prevChain);
    EXPECT_GT(simRed, prevSim * 0.95);  // simulator is noisy; allow slack
    prevChain = chainRed;
    prevSim = simRed;
  }
}

TEST(Integration, QuantumScheduleDeliversMaxMinRatesEfficiently) {
  // Section 3's positive result end-to-end: compute multi-rate max-min
  // rates, deliver them with prefix-coordinated joins/leaves, and verify
  // average rates and redundancy 1.
  const net::Network n = net::fig2Network(true);
  const auto alloc = fairness::maxMinFairAllocation(n);
  std::vector<double> rates;
  for (std::size_t k = 0; k < 3; ++k) rates.push_back(alloc.rate({0, k}));
  const double sigma = *std::max_element(rates.begin(), rates.end());
  const auto sched =
      layering::simulatePrefixSchedule(rates, sigma, 128, 2000);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_NEAR(sched.averageRates[k], rates[k], 0.05);
  }
  EXPECT_NEAR(sched.redundancy, 1.0, 1e-9);
}

TEST(Integration, FixedLayersBreakFairnessJoinsRestoreIt) {
  // Section 3 narrative in one test: fixed layers admit no max-min fair
  // allocation, but the (continuous) max-min rates exist and joins/leaves
  // can average to them.
  const auto ex = layering::sec3NonexistenceExample(6.0);
  const auto fixedResult =
      layering::analyzeFixedLayerAllocations(ex.network, ex.schemes);
  EXPECT_FALSE(fixedResult.maxMinFairIndex.has_value());

  const auto continuous = fairness::maxMinFairAllocation(ex.network);
  EXPECT_NEAR(continuous.rate({0, 0}), 3.0, 1e-9);
  EXPECT_NEAR(continuous.rate({1, 0}), 3.0, 1e-9);
  // Each receiver can average its 3.0 within its own layer span.
  const auto sched = layering::simulatePrefixSchedule({3.0}, 6.0, 60, 500);
  EXPECT_NEAR(sched.averageRates[0], 3.0, 0.05);
}

}  // namespace
}  // namespace mcfair
