// Tests for multicast tree construction.
#include <gtest/gtest.h>

#include <set>

#include "graph/tree.hpp"
#include "util/error.hpp"

namespace mcfair::graph {
namespace {

// Star: center 0, leaves 1..4.
Graph star() {
  Graph g;
  g.addNodes(5);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    g.addLink(NodeId{0}, NodeId{i}, 1.0);
  }
  return g;
}

TEST(MulticastTree, StarPaths) {
  const Graph g = star();
  const auto tree = buildShortestPathTree(
      g, NodeId{0}, {NodeId{1}, NodeId{3}});
  ASSERT_EQ(tree.receiverPaths.size(), 2u);
  EXPECT_EQ(tree.receiverPaths[0], (std::vector<LinkId>{LinkId{0}}));
  EXPECT_EQ(tree.receiverPaths[1], (std::vector<LinkId>{LinkId{2}}));
  EXPECT_EQ(tree.sessionLinks.size(), 2u);
}

TEST(MulticastTree, SharedPrefixCountedOnce) {
  // 0 - 1, then 1 - 2 and 1 - 3: both receivers share link 0.
  Graph g;
  g.addNodes(4);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  g.addLink(NodeId{1}, NodeId{2}, 1.0);
  g.addLink(NodeId{1}, NodeId{3}, 1.0);
  const auto tree =
      buildShortestPathTree(g, NodeId{0}, {NodeId{2}, NodeId{3}});
  EXPECT_EQ(tree.sessionLinks.size(), 3u);
  EXPECT_EQ(tree.receiverPaths[0].front(), (LinkId{0}));
  EXPECT_EQ(tree.receiverPaths[1].front(), (LinkId{0}));
}

TEST(MulticastTree, UnionIsTree) {
  // With cycles in the graph, the union of receiver paths must still be a
  // tree (single BFS predecessor per node).
  Graph g;
  g.addNodes(6);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  g.addLink(NodeId{0}, NodeId{2}, 1.0);
  g.addLink(NodeId{1}, NodeId{3}, 1.0);
  g.addLink(NodeId{2}, NodeId{3}, 1.0);  // cycle
  g.addLink(NodeId{3}, NodeId{4}, 1.0);
  g.addLink(NodeId{3}, NodeId{5}, 1.0);
  const auto tree = buildShortestPathTree(
      g, NodeId{0}, {NodeId{4}, NodeId{5}, NodeId{3}});
  // Receivers behind node 3 must all use the same path to node 3.
  const auto& p4 = tree.receiverPaths[0];
  const auto& p5 = tree.receiverPaths[1];
  const auto& p3 = tree.receiverPaths[2];
  ASSERT_EQ(p3.size(), 2u);
  ASSERT_EQ(p4.size(), 3u);
  EXPECT_TRUE(std::equal(p3.begin(), p3.end(), p4.begin()));
  EXPECT_TRUE(std::equal(p3.begin(), p3.end(), p5.begin()));
  // Tree link count = nodes spanned - 1.
  std::set<std::uint32_t> nodes;
  for (const auto& path : tree.receiverPaths) {
    for (LinkId l : path) {
      const auto [a, b] = g.endpoints(l);
      nodes.insert(a.value);
      nodes.insert(b.value);
    }
  }
  EXPECT_EQ(tree.sessionLinks.size(), nodes.size() - 1);
}

TEST(MulticastTree, UnreachableReceiverThrows) {
  Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  EXPECT_THROW(buildShortestPathTree(g, NodeId{0}, {NodeId{2}}), ModelError);
}

TEST(MulticastTree, ReceiverAtSenderRejected) {
  const Graph g = star();
  EXPECT_THROW(buildShortestPathTree(g, NodeId{0}, {NodeId{0}}),
               PreconditionError);
}

TEST(MulticastTree, NoReceiversRejected) {
  const Graph g = star();
  EXPECT_THROW(buildShortestPathTree(g, NodeId{0}, {}), PreconditionError);
}

}  // namespace
}  // namespace mcfair::graph
