// Tests for quantum-timescale interference (Section 5).
#include <gtest/gtest.h>

#include <numbers>

#include "layering/timescale.hpp"
#include "util/error.hpp"

namespace mcfair::layering {
namespace {

TEST(Timescale, SingleSessionWithinCapacityNeverOverloads) {
  const QuantumShare s{1.0, 2.0, 1.0, 0.0};
  const auto r = computeInterference({s}, 2.0, 100.0);
  EXPECT_DOUBLE_EQ(r.excessVolumeFraction, 0.0);
  EXPECT_DOUBLE_EQ(r.overloadTimeFraction, 0.0);
  EXPECT_NEAR(r.peakRate, 2.0, 1e-9);
}

TEST(Timescale, CoordinatedPhasesEliminateInterference) {
  // Two sessions, each average 1 at layer rate 2, capacity 2: duty 0.5
  // each. Same quantum, phases 0 and 0.5: perfect time division.
  const QuantumShare a{1.0, 2.0, 1.0, 0.0};
  const QuantumShare b{1.0, 2.0, 1.0, 0.5};
  const auto r = computeInterference({a, b}, 2.0, 200.0);
  EXPECT_NEAR(r.excessVolumeFraction, 0.0, 1e-6);
  EXPECT_NEAR(r.peakRate, 2.0, 1e-9);
}

TEST(Timescale, AlignedPhasesCollide) {
  // Same two sessions with identical phases: on-intervals coincide, the
  // instantaneous rate doubles capacity half the time.
  const QuantumShare a{1.0, 2.0, 1.0, 0.0};
  const QuantumShare b{1.0, 2.0, 1.0, 0.0};
  const auto r = computeInterference({a, b}, 2.0, 200.0);
  EXPECT_NEAR(r.overloadTimeFraction, 0.5, 0.01);
  // Excess: (4-2)*0.5 of time over offered 2 per unit -> 0.5.
  EXPECT_NEAR(r.excessVolumeFraction, 0.5, 0.01);
  EXPECT_NEAR(r.peakRate, 4.0, 1e-9);
}

TEST(Timescale, IncommensurateQuantaMatchRandomPhaseFormula) {
  // Quanta 1 and sqrt(2): overlap converges to the duty-cycle product.
  const QuantumShare a{1.0, 2.0, 1.0, 0.0};
  const QuantumShare b{1.0, 2.0, std::numbers::sqrt2, 0.3};
  const auto r = computeInterference({a, b}, 4.0, 5000.0, 5e-4);
  const double expected =
      expectedExcessVolumeFractionRandomPhases(a, b, 2.0);
  // Duty 0.5 * 0.5 = 0.25 of time at rate 4 over capacity 2: excess
  // rate 0.5, offered 2 -> 0.25.
  EXPECT_NEAR(expected, 0.25, 1e-12);
  const auto measured = computeInterference({a, b}, 2.0, 5000.0, 5e-4);
  EXPECT_NEAR(measured.excessVolumeFraction, expected, 0.02);
  static_cast<void>(r);
}

TEST(Timescale, LargeQuantaRatioDoesNotHelp) {
  // A 100x quanta ratio gives the same long-run interference as 2x —
  // the Section 5 concern: different timescales cannot coordinate.
  const QuantumShare base{1.0, 2.0, 1.0, 0.0};
  for (const double ratio : {2.0, 10.0, 100.0}) {
    const QuantumShare other{1.0, 2.0, ratio * std::numbers::sqrt2, 0.0};
    const auto r = computeInterference({base, other}, 2.0, 4000.0, 1e-3);
    EXPECT_NEAR(r.excessVolumeFraction, 0.25, 0.03) << "ratio " << ratio;
  }
}

TEST(Timescale, FormulaCoversSingleSessionOverload) {
  // One layer rate alone above capacity contributes its own term.
  const QuantumShare a{1.0, 4.0, 1.0, 0.0};   // duty 0.25, s=4
  const QuantumShare b{0.5, 1.0, 1.0, 0.0};   // duty 0.5, s=1
  // c=3: both on: 5-3=2 w.p. 0.125; a alone: 1 w.p. 0.125.
  const double expected = (2.0 * 0.125 + 1.0 * 0.125) / 1.5;
  EXPECT_NEAR(expectedExcessVolumeFractionRandomPhases(a, b, 3.0),
              expected, 1e-12);
}

TEST(Timescale, Validation) {
  const QuantumShare ok{1.0, 2.0, 1.0, 0.0};
  EXPECT_THROW(computeInterference({}, 1.0, 10.0), PreconditionError);
  EXPECT_THROW(computeInterference({ok}, 0.0, 10.0), PreconditionError);
  EXPECT_THROW(computeInterference({ok}, 1.0, 10.0, 20.0),
               PreconditionError);
  QuantumShare bad = ok;
  bad.layerRate = 0.5;  // below average
  EXPECT_THROW(computeInterference({bad}, 1.0, 10.0), PreconditionError);
  bad = ok;
  bad.phase = 2.0;
  EXPECT_THROW(computeInterference({bad}, 1.0, 10.0), PreconditionError);
}

}  // namespace
}  // namespace mcfair::layering
