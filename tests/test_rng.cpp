// Tests for util::Rng: determinism, distribution sanity, bounded sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace mcfair::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(29);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean failures before success: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sampleWithoutReplacement(20, 10);
    std::sort(s.begin(), s.end());
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
    EXPECT_EQ(s.size(), 10u);
    for (std::size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(41);
  auto s = rng.sampleWithoutReplacement(6, 6);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleUniformity) {
  // Every index should be chosen roughly equally often when sampling half.
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t v : rng.sampleWithoutReplacement(10, 5)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.02);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(53);
  // UniformRandomBitGenerator concept sanity.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace mcfair::util
