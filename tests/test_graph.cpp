// Tests for graph::Graph construction and validation.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "util/error.hpp"

namespace mcfair::graph {
namespace {

TEST(Graph, AddNodesAndLinks) {
  Graph g;
  const NodeId a = g.addNode("a");
  const NodeId b = g.addNode("b");
  EXPECT_EQ(g.nodeCount(), 2u);
  const LinkId l = g.addLink(a, b, 3.5);
  EXPECT_EQ(g.linkCount(), 1u);
  EXPECT_DOUBLE_EQ(g.capacity(l), 3.5);
  EXPECT_EQ(g.label(a), "a");
}

TEST(Graph, AddNodesBulk) {
  Graph g;
  const NodeId first = g.addNodes(5);
  EXPECT_EQ(first.value, 0u);
  EXPECT_EQ(g.nodeCount(), 5u);
  const NodeId next = g.addNodes(2);
  EXPECT_EQ(next.value, 5u);
}

TEST(Graph, EndpointsOrdered) {
  Graph g;
  g.addNodes(3);
  const LinkId l = g.addLink(NodeId{2}, NodeId{0}, 1.0);
  const auto [lo, hi] = g.endpoints(l);
  EXPECT_EQ(lo.value, 0u);
  EXPECT_EQ(hi.value, 2u);
}

TEST(Graph, NeighborsBothDirections) {
  Graph g;
  g.addNodes(3);
  const LinkId l01 = g.addLink(NodeId{0}, NodeId{1}, 1.0);
  const LinkId l12 = g.addLink(NodeId{1}, NodeId{2}, 1.0);
  const auto& n1 = g.neighbors(NodeId{1});
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].neighbor.value, 0u);
  EXPECT_EQ(n1[0].link, l01);
  EXPECT_EQ(n1[1].neighbor.value, 2u);
  EXPECT_EQ(n1[1].link, l12);
}

TEST(Graph, ParallelLinksAllowed) {
  Graph g;
  g.addNodes(2);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  g.addLink(NodeId{0}, NodeId{1}, 2.0);
  EXPECT_EQ(g.linkCount(), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g;
  g.addNodes(1);
  EXPECT_THROW(g.addLink(NodeId{0}, NodeId{0}, 1.0), PreconditionError);
}

TEST(Graph, RejectsNonPositiveCapacity) {
  Graph g;
  g.addNodes(2);
  EXPECT_THROW(g.addLink(NodeId{0}, NodeId{1}, 0.0), PreconditionError);
  EXPECT_THROW(g.addLink(NodeId{0}, NodeId{1}, -1.0), PreconditionError);
}

TEST(Graph, RejectsUnknownIds) {
  Graph g;
  g.addNodes(2);
  EXPECT_THROW(g.addLink(NodeId{0}, NodeId{9}, 1.0), ModelError);
  EXPECT_THROW(g.capacity(LinkId{0}), ModelError);
  EXPECT_THROW(g.neighbors(NodeId{5}), ModelError);
}

TEST(Graph, SetCapacity) {
  Graph g;
  g.addNodes(2);
  const LinkId l = g.addLink(NodeId{0}, NodeId{1}, 1.0);
  g.setCapacity(l, 9.0);
  EXPECT_DOUBLE_EQ(g.capacity(l), 9.0);
  EXPECT_THROW(g.setCapacity(l, -2.0), PreconditionError);
}

}  // namespace
}  // namespace mcfair::graph
