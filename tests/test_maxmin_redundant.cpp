// Solver tests with non-trivial redundancy functions: the bisection path
// against hand-computable cases, the Appendix B function inside the
// allocator, and interactions between redundancy and session types.
#include <gtest/gtest.h>

#include <memory>

#include "fairness/maxmin.hpp"
#include "fairness/ordering.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using graph::LinkId;
using net::Network;

TEST(RedundantSolver, ConstantFactorSharedBottleneck) {
  // 2-receiver multi-rate session (v=3) + unicast on a c=10 link:
  // fill: 3t + t = 10 -> t = 2.5.
  Network n;
  const LinkId l = n.addLink(10.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  s.linkRateFn = std::make_shared<const net::ConstantFactor>(3.0);
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({l}));
  const auto result = solveMaxMinFair(n);
  EXPECT_NEAR(result.allocation.rate({0, 0}), 2.5, 1e-9);
  EXPECT_NEAR(result.allocation.rate({1, 0}), 2.5, 1e-9);
  EXPECT_NEAR(result.usage.sessionLinkRate[0][0], 7.5, 1e-9);
  EXPECT_NEAR(result.usage.linkRate[0], 10.0, 1e-9);
}

TEST(RedundantSolver, AppendixBFunctionInsideAllocator) {
  // Two receivers random-joining within a layer of rate sigma=4 on a
  // c=3 link: u = 4(1-(1-a/4)^2) = 2a - a^2/4 = 3  =>  a = 4 - sqrt(4)
  // ... solve 2a - a^2/4 = 3: a^2 - 8a + 12 = 0 -> a = 2.
  Network n;
  const LinkId l = n.addLink(3.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  s.linkRateFn = std::make_shared<const net::RandomJoinExpected>(4.0);
  n.addSession(std::move(s));
  const auto result = solveMaxMinFair(n);
  EXPECT_NEAR(result.allocation.rate({0, 0}), 2.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({0, 1}), 2.0, 1e-6);
  EXPECT_NEAR(result.usage.linkRate[0], 3.0, 1e-6);
}

TEST(RedundantSolver, RandomJoinLessEfficientThanCoordinated) {
  // Same network, efficient vs random-join: random-join rates strictly
  // lower (Lemma 4 with the Appendix B v_i).
  Network efficient;
  const LinkId l = efficient.addLink(3.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  efficient.addSession(std::move(s));
  const Network randomJoin = efficient.withLinkRateFunction(
      0, std::make_shared<const net::RandomJoinExpected>(4.0));
  const auto ae = maxMinFairAllocation(efficient).orderedRates();
  const auto ar = maxMinFairAllocation(randomJoin).orderedRates();
  EXPECT_TRUE(strictlyMinUnfavorable(ar, ae, 1e-9));
  EXPECT_NEAR(ae.front(), 3.0, 1e-6);
  EXPECT_NEAR(ar.front(), 2.0, 1e-6);
}

TEST(RedundantSolver, SingleRateSessionWithRedundancy) {
  // Redundancy applies regardless of chi: a single-rate 2-receiver
  // session with v=2 on a c=8 link shared with a unicast:
  // 2t + t = 8 -> 8/3 each.
  Network n;
  const LinkId l = n.addLink(8.0);
  net::Session s;
  s.type = net::SessionType::kSingleRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  s.linkRateFn = std::make_shared<const net::ConstantFactor>(2.0);
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({l}));
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate({0, 1}), 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 8.0 / 3.0, 1e-9);
}

TEST(RedundantSolver, RedundancyOnlyWhereReceiversShareLinks) {
  // ConstantFactor affects only links carrying >= 2 of the session's
  // receivers; private tails stay efficient.
  Network n;
  const LinkId shared = n.addLink(100.0);
  const LinkId tail1 = n.addLink(2.0);
  const LinkId tail2 = n.addLink(6.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, tail1}),
                 net::makeReceiver({shared, tail2})};
  s.linkRateFn = std::make_shared<const net::ConstantFactor>(2.0);
  n.addSession(std::move(s));
  const auto result = solveMaxMinFair(n);
  // Tails bind individually: rates 2 and 6; shared link carries 2*6=12.
  EXPECT_NEAR(result.allocation.rate({0, 0}), 2.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({0, 1}), 6.0, 1e-6);
  EXPECT_NEAR(result.usage.sessionLinkRate[0][0], 12.0, 1e-6);
  EXPECT_NEAR(result.usage.sessionLinkRate[0][1], 2.0, 1e-6);
  EXPECT_NEAR(result.usage.sessionLinkRate[0][2], 6.0, 1e-6);
}

TEST(RedundantSolver, MixedLinearAndNonlinearSessions) {
  // One EfficientMax unicast, one ConstantFactor multi-rate, one
  // RandomJoinExpected multi-rate, all behind one c=12 link. The solver
  // must take the bisection path and produce a feasible allocation that
  // saturates the link.
  Network n;
  const LinkId l = n.addLink(12.0);
  n.addSession(net::makeUnicastSession({l}));
  net::Session cf;
  cf.type = net::SessionType::kMultiRate;
  cf.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  cf.linkRateFn = std::make_shared<const net::ConstantFactor>(2.0);
  n.addSession(std::move(cf));
  net::Session rj;
  rj.type = net::SessionType::kMultiRate;
  rj.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  rj.linkRateFn = std::make_shared<const net::RandomJoinExpected>(100.0);
  n.addSession(std::move(rj));
  const auto result = solveMaxMinFair(n);
  EXPECT_TRUE(isFeasible(n, result.allocation, 1e-6));
  EXPECT_NEAR(result.usage.linkRate[0], 12.0, 1e-5);
  // All receivers share one bottleneck and one filling level: equal
  // rates.
  const auto rates = result.allocation.orderedRates();
  EXPECT_NEAR(rates.front(), rates.back(), 1e-6);
}

TEST(RedundantSolver, FasterRedundancyGrowthLowersRates) {
  // Sweep v and confirm monotone rate decrease (Figure 6 viewed through
  // the solver, non-closed-form variant with 3 receivers).
  double prev = 1e9;
  for (const double v : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    Network n;
    const LinkId l = n.addLink(30.0);
    net::Session s;
    s.type = net::SessionType::kMultiRate;
    s.receivers = {net::makeReceiver({l}), net::makeReceiver({l}),
                   net::makeReceiver({l})};
    s.linkRateFn = std::make_shared<const net::ConstantFactor>(v);
    n.addSession(std::move(s));
    n.addSession(net::makeUnicastSession({l}));
    const double rate = maxMinFairAllocation(n).rate({0, 0});
    EXPECT_LT(rate, prev);
    EXPECT_NEAR(rate, 30.0 / (v + 1.0), 1e-9);
    prev = rate;
  }
}

}  // namespace
}  // namespace mcfair::fairness
