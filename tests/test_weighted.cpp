// Tests for weighted max-min fairness (Section 5: receiver rates weighted
// by inverse RTT approximate TCP-fairness).
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "util/error.hpp"

namespace mcfair::fairness {
namespace {

using graph::LinkId;
using net::Network;

Network twoUnicastWeighted(double w1, double w2, double capacity) {
  Network n;
  const LinkId l = n.addLink(capacity);
  net::Session s1 = net::makeUnicastSession({l}, net::kUnlimitedRate, "S1");
  s1.receivers[0].weight = w1;
  net::Session s2 = net::makeUnicastSession({l}, net::kUnlimitedRate, "S2");
  s2.receivers[0].weight = w2;
  n.addSession(std::move(s1));
  n.addSession(std::move(s2));
  return n;
}

TEST(Weighted, SplitProportionalToWeights) {
  const Network n = twoUnicastWeighted(1.0, 2.0, 9.0);
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 3.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 6.0, 1e-9);
}

TEST(Weighted, UnitWeightsMatchUnweightedSolver) {
  util::Rng rng(7);
  const Network n = net::randomNetwork(rng);
  // All weights default to 1; the result must equal the plain algorithm
  // (regression guard for the weighted code path).
  const auto a = maxMinFairAllocation(n);
  EXPECT_TRUE(isFeasible(n, a, 1e-6));
}

TEST(Weighted, InverseRttTcpStyle) {
  // Three flows with RTTs 10ms, 50ms, 100ms on a 100 unit link: weights
  // 1/rtt give rates proportional to 10:2:1.
  Network n;
  const LinkId l = n.addLink(100.0);
  for (const double rtt : {10.0, 50.0, 100.0}) {
    net::Session s = net::makeUnicastSession({l});
    s.receivers[0].weight = 1.0 / rtt;
    n.addSession(std::move(s));
  }
  const auto a = maxMinFairAllocation(n);
  const double total = 1.0 / 10 + 1.0 / 50 + 1.0 / 100;
  EXPECT_NEAR(a.rate({0, 0}), 100.0 * (0.1 / total), 1e-6);
  EXPECT_NEAR(a.rate({1, 0}), 100.0 * (0.02 / total), 1e-6);
  EXPECT_NEAR(a.rate({2, 0}), 100.0 * (0.01 / total), 1e-6);
}

TEST(Weighted, SigmaCapsApplyToRates) {
  // Heavy receiver capped at sigma=2: the rest goes to the light one.
  Network n;
  const LinkId l = n.addLink(10.0);
  net::Session heavy = net::makeUnicastSession({l}, /*maxRate=*/2.0);
  heavy.receivers[0].weight = 10.0;
  n.addSession(std::move(heavy));
  n.addSession(net::makeUnicastSession({l}));
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 2.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 8.0, 1e-9);
}

TEST(Weighted, MultiRateSessionMixedWeights) {
  // A multi-rate session with a heavy and a light receiver behind
  // separate tails plus a weighted unicast competitor on the shared hop.
  Network n;
  const LinkId shared = n.addLink(12.0);
  const LinkId tailA = n.addLink(100.0);
  const LinkId tailB = n.addLink(100.0);
  net::Session video;
  video.name = "video";
  video.type = net::SessionType::kMultiRate;
  video.receivers = {net::makeReceiver({shared, tailA}, "heavy"),
                     net::makeReceiver({shared, tailB}, "light")};
  video.receivers[0].weight = 3.0;
  video.receivers[1].weight = 1.0;
  n.addSession(std::move(video));
  net::Session web = net::makeUnicastSession({shared});
  web.receivers[0].weight = 1.0;
  n.addSession(std::move(web));
  // Filling: u_shared = max(3t, t) + t = 4t -> t = 3: rates 9, 3, 3.
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 9.0, 1e-6);
  EXPECT_NEAR(a.rate({0, 1}), 3.0, 1e-6);
  EXPECT_NEAR(a.rate({1, 0}), 3.0, 1e-6);
}

TEST(Weighted, FrozenHeavyReceiverStillShapesLinkRate) {
  // The heavy receiver freezes early on its slow tail; its frozen rate
  // must keep dominating the session link rate on the shared hop.
  Network n;
  const LinkId shared = n.addLink(10.0);
  const LinkId slowTail = n.addLink(4.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, slowTail}, "heavy"),
                 net::makeReceiver({shared}, "light")};
  s.receivers[0].weight = 8.0;
  s.receivers[1].weight = 1.0;
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));
  const auto result = solveMaxMinFair(n);
  // heavy freezes at 4 (tail); then u_shared = max(4, t) + t.
  // light and the unicast continue to t = 5... at t=5 u = max(4,5)+5 = 10.
  EXPECT_NEAR(result.allocation.rate({0, 0}), 4.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({0, 1}), 5.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({1, 0}), 5.0, 1e-6);
}

TEST(Weighted, SingleRateRequiresUniformWeights) {
  Network n;
  const LinkId l = n.addLink(5.0);
  net::Session s;
  s.type = net::SessionType::kSingleRate;
  s.receivers = {net::makeReceiver({l}), net::makeReceiver({l})};
  s.receivers[1].weight = 2.0;
  EXPECT_THROW(n.addSession(std::move(s)), PreconditionError);
}

TEST(Weighted, RejectsNonPositiveWeights) {
  Network n;
  const LinkId l = n.addLink(5.0);
  net::Session s = net::makeUnicastSession({l});
  s.receivers[0].weight = 0.0;
  EXPECT_THROW(n.addSession(std::move(s)), PreconditionError);
}

TEST(Weighted, ScalingAllWeightsIsInvariant) {
  // Multiplying every weight by a constant must not change the
  // allocation.
  util::Rng rng(11);
  net::RandomNetworkOptions opts;
  opts.singleRateProbability = 0.0;
  Network base = net::randomNetwork(rng, opts);
  // Assign deterministic non-uniform weights.
  // (Rebuild sessions with weights via what-if copies is not exposed, so
  // exercise two hand-built equivalents.)
  const Network a = twoUnicastWeighted(1.0, 3.0, 8.0);
  const Network b = twoUnicastWeighted(10.0, 30.0, 8.0);
  const auto ra = maxMinFairAllocation(a);
  const auto rb = maxMinFairAllocation(b);
  EXPECT_NEAR(ra.rate({0, 0}), rb.rate({0, 0}), 1e-6);
  EXPECT_NEAR(ra.rate({1, 0}), rb.rate({1, 0}), 1e-6);
}

TEST(Weighted, FeasibleAndSaturating) {
  // Weighted allocations still saturate a link (or sigma) per receiver.
  const Network n = twoUnicastWeighted(2.0, 5.0, 21.0);
  const auto result = solveMaxMinFair(n);
  EXPECT_TRUE(isFeasible(n, result.allocation, 1e-6));
  EXPECT_NEAR(result.usage.linkRate[0], 21.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({0, 0}), 6.0, 1e-6);
  EXPECT_NEAR(result.allocation.rate({1, 0}), 15.0, 1e-6);
}

}  // namespace
}  // namespace mcfair::fairness
