// Tests for the three protocol receivers' state machines.
#include <gtest/gtest.h>

#include "sim/receiver.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

TEST(JoinThreshold, PowersOfFour) {
  EXPECT_EQ(LayeredReceiver::joinThreshold(1), 1u);
  EXPECT_EQ(LayeredReceiver::joinThreshold(2), 4u);
  EXPECT_EQ(LayeredReceiver::joinThreshold(3), 16u);
  EXPECT_EQ(LayeredReceiver::joinThreshold(5), 256u);
}

TEST(ProtocolName, Names) {
  EXPECT_STREQ(protocolName(ProtocolKind::kUncoordinated), "Uncoordinated");
  EXPECT_STREQ(protocolName(ProtocolKind::kDeterministic), "Deterministic");
  EXPECT_STREQ(protocolName(ProtocolKind::kCoordinated), "Coordinated");
}

TEST(Receiver, ConstructionValidation) {
  EXPECT_THROW(LayeredReceiver(ProtocolKind::kDeterministic, 0),
               PreconditionError);
  EXPECT_THROW(LayeredReceiver(ProtocolKind::kDeterministic, 4, 5),
               PreconditionError);
  EXPECT_THROW(LayeredReceiver(ProtocolKind::kDeterministic, 4, 0),
               PreconditionError);
}

TEST(Receiver, LossLeavesButNeverBelowOne) {
  util::Rng rng(1);
  LayeredReceiver r(ProtocolKind::kDeterministic, 8, 3);
  r.onPacket(true, 0, rng);
  EXPECT_EQ(r.level(), 2u);
  r.onPacket(true, 0, rng);
  EXPECT_EQ(r.level(), 1u);
  r.onPacket(true, 0, rng);
  EXPECT_EQ(r.level(), 1u);  // floor at layer 1
  EXPECT_EQ(r.leaves(), 2u);
  EXPECT_EQ(r.congestionEvents(), 3u);
}

TEST(Deterministic, JoinsAtExactThreshold) {
  util::Rng rng(2);
  LayeredReceiver r(ProtocolKind::kDeterministic, 8);
  // Level 1 threshold = 1: first clean packet joins to 2.
  r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
  // Level 2 threshold = 4: three packets stay, fourth joins.
  for (int i = 0; i < 3; ++i) r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
  r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 3u);
  EXPECT_EQ(r.joins(), 2u);
}

TEST(Deterministic, LossResetsCleanRun) {
  util::Rng rng(3);
  LayeredReceiver r(ProtocolKind::kDeterministic, 8, 2);
  for (int i = 0; i < 3; ++i) r.onPacket(false, 0, rng);
  r.onPacket(true, 0, rng);  // back to level 1, run reset
  EXPECT_EQ(r.level(), 1u);
  // Needs a full fresh run at level 1 (threshold 1): one packet.
  r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
}

TEST(Deterministic, CapsAtMaxLayer) {
  util::Rng rng(4);
  LayeredReceiver r(ProtocolKind::kDeterministic, 2, 2);
  for (int i = 0; i < 100; ++i) r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
  EXPECT_EQ(r.joins(), 0u);
}

TEST(Uncoordinated, LevelOneJoinsImmediately) {
  // p = 1/threshold(1) = 1: the first clean packet always joins.
  util::Rng rng(5);
  LayeredReceiver r(ProtocolKind::kUncoordinated, 8);
  r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
}

TEST(Uncoordinated, GeometricJoinSpacing) {
  // At level 2 the join probability is 1/4 per clean packet: the average
  // number of clean packets to join should be ~4.
  util::Rng rng(6);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    LayeredReceiver r(ProtocolKind::kUncoordinated, 8, 2);
    int packets = 0;
    while (r.level() == 2) {
      r.onPacket(false, 0, rng);
      ++packets;
    }
    total += packets;
  }
  EXPECT_NEAR(total / trials, 4.0, 0.2);
}

TEST(Coordinated, JoinsOnlyAtEligibleSignal) {
  util::Rng rng(7);
  LayeredReceiver r(ProtocolKind::kCoordinated, 8, 2);
  // Non-signal packets never join.
  for (int i = 0; i < 50; ++i) r.onPacket(false, 0, rng);
  EXPECT_EQ(r.level(), 2u);
  // Signal below current level: no join.
  r.onPacket(false, 1, rng);
  EXPECT_EQ(r.level(), 2u);
  // Eligible signal with a clean interval: join.
  r.onPacket(false, 2, rng);
  EXPECT_EQ(r.level(), 3u);
}

TEST(Coordinated, LossPoisonsTheSyncInterval) {
  util::Rng rng(8);
  LayeredReceiver r(ProtocolKind::kCoordinated, 8, 3);
  r.onPacket(false, 3, rng);  // starts a clean interval, joins to 4
  EXPECT_EQ(r.level(), 4u);
  r.onPacket(true, 0, rng);  // loss: back to 3, interval poisoned
  EXPECT_EQ(r.level(), 3u);
  r.onPacket(false, 5, rng);  // eligible signal but interval dirty
  EXPECT_EQ(r.level(), 3u);
  r.onPacket(false, 5, rng);  // now clean since last signal: join
  EXPECT_EQ(r.level(), 4u);
}

TEST(Coordinated, FirstSignalJoinsWhenStartingClean) {
  util::Rng rng(9);
  LayeredReceiver r(ProtocolKind::kCoordinated, 4);
  r.onPacket(false, 1, rng);
  EXPECT_EQ(r.level(), 2u);
}

TEST(Coordinated, CapsAtMaxLayer) {
  util::Rng rng(10);
  LayeredReceiver r(ProtocolKind::kCoordinated, 3, 3);
  for (int i = 0; i < 10; ++i) r.onPacket(false, 2, rng);
  EXPECT_EQ(r.level(), 3u);
}

TEST(Receiver, CountersAccumulate) {
  util::Rng rng(11);
  LayeredReceiver r(ProtocolKind::kDeterministic, 8);
  r.onPacket(false, 0, rng);  // join
  r.onPacket(true, 0, rng);   // leave
  EXPECT_EQ(r.joins(), 1u);
  EXPECT_EQ(r.leaves(), 1u);
  EXPECT_EQ(r.congestionEvents(), 1u);
}

}  // namespace
}  // namespace mcfair::sim
