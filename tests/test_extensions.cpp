// Tests for the Section 5 extensions: leave latency, active-router
// coordination, and bursty shared loss.
#include <gtest/gtest.h>

#include "sim/star.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

StarConfig base(ProtocolKind kind) {
  StarConfig c;
  c.receivers = 10;
  c.layers = 6;
  c.protocol = kind;
  c.sharedLossRate = 0.0001;
  c.independentLossRate = 0.04;
  c.totalPackets = 40000;
  c.seed = 11;
  return c;
}

TEST(LeaveLatency, IncreasesRedundancy) {
  // Section 5: "long leave latencies will also increase redundancy".
  StarConfig c = base(ProtocolKind::kUncoordinated);
  const double none = estimateRedundancy(c, 5).mean;
  c.leaveLatency = 2.0;
  const double some = estimateRedundancy(c, 5).mean;
  c.leaveLatency = 10.0;
  const double lots = estimateRedundancy(c, 5).mean;
  EXPECT_GT(some, none);
  EXPECT_GT(lots, some);
}

TEST(LeaveLatency, ZeroMatchesBaseModel) {
  StarConfig c = base(ProtocolKind::kDeterministic);
  const StarResult without = runStarSimulation(c);
  c.leaveLatency = 0.0;
  const StarResult with = runStarSimulation(c);
  EXPECT_EQ(without.sharedLinkPackets, with.sharedLinkPackets);
  EXPECT_DOUBLE_EQ(without.redundancy, with.redundancy);
}

TEST(LeaveLatency, DoesNotAffectDeliveries) {
  // Lingering forwarding wastes the shared link but receivers already
  // left: delivered counts must not change.
  StarConfig c = base(ProtocolKind::kDeterministic);
  const StarResult without = runStarSimulation(c);
  c.leaveLatency = 5.0;
  const StarResult with = runStarSimulation(c);
  EXPECT_EQ(without.deliveredPackets, with.deliveredPackets);
  EXPECT_GE(with.sharedLinkPackets, without.sharedLinkPackets);
}

TEST(LeaveLatency, Validation) {
  StarConfig c = base(ProtocolKind::kDeterministic);
  c.leaveLatency = -1.0;
  EXPECT_THROW(runStarSimulation(c), PreconditionError);
}

TEST(ActiveRouter, RedundancyNearOne) {
  // The paper's conjecture: router-driven subscription makes redundancy
  // ~1 (up to the delivered-vs-forwarded loss inflation 1/(1-q)).
  StarConfig c = base(ProtocolKind::kActiveRouter);
  const StarResult r = runStarSimulation(c);
  const double q = 0.0001 + (1.0 - 0.0001) * 0.04;
  EXPECT_NEAR(r.redundancy, 1.0 / (1.0 - q), 0.02);
}

TEST(ActiveRouter, BeatsReceiverDrivenProtocols) {
  StarConfig cr = base(ProtocolKind::kActiveRouter);
  StarConfig cc = base(ProtocolKind::kCoordinated);
  cr.receivers = cc.receivers = 30;
  const double router = estimateRedundancy(cr, 5).mean;
  const double coordinated = estimateRedundancy(cc, 5).mean;
  EXPECT_LT(router, coordinated);
}

TEST(ActiveRouter, AllReceiversShareSubscription) {
  // With zero fanout loss all receivers deliver identical counts: there
  // is a single subscription state.
  StarConfig c = base(ProtocolKind::kActiveRouter);
  c.independentLossRate = 0.0;
  c.sharedLossRate = 0.01;
  const StarResult r = runStarSimulation(c);
  for (std::uint64_t d : r.deliveredPackets) {
    EXPECT_EQ(d, r.deliveredPackets.front());
  }
}

TEST(ActiveRouter, FanoutLossDoesNotTriggerLeaves) {
  // The router sits upstream of fanout links: heavy independent loss
  // must not drive the subscription down.
  StarConfig lossy = base(ProtocolKind::kActiveRouter);
  lossy.sharedLossRate = 0.0;
  lossy.independentLossRate = 0.2;
  const StarResult r = runStarSimulation(lossy);
  EXPECT_EQ(r.totalLeaves, 0u);
  EXPECT_NEAR(r.meanLevel, 6.0, 0.2);
}

TEST(BurstLoss, SameAverageDifferentStructure) {
  // Compare Bernoulli shared loss against a bursty model with the same
  // long-run average; both must run and produce sane redundancy.
  StarConfig c = base(ProtocolKind::kDeterministic);
  c.sharedLossRate = 0.02;
  c.independentLossRate = 0.0;
  const StarResult bern = runStarSimulation(c);

  StarConfig::BurstLoss burst;
  // fracBad = 0.01/(0.01+0.24) = 0.04; avg = 0.04 * 0.5 = 0.02.
  burst.goodToBad = 0.01;
  burst.badToGood = 0.24;
  burst.lossGood = 0.0;
  burst.lossBad = 0.5;
  c.sharedBurstLoss = burst;
  const StarResult bursty = runStarSimulation(c);
  EXPECT_GE(bern.redundancy, 1.0);
  EXPECT_GE(bursty.redundancy, 1.0);
  // Bursty losses cluster congestion events: fewer distinct backoffs, so
  // receivers hold higher subscriptions on average.
  EXPECT_GT(bursty.meanLevel, bern.meanLevel);
}

TEST(BurstLoss, SharedOnlyKeepsReceiversInSync) {
  // Burstiness on the shared link is still common to all receivers:
  // Deterministic receivers stay identical.
  StarConfig c = base(ProtocolKind::kDeterministic);
  c.independentLossRate = 0.0;
  StarConfig::BurstLoss burst;
  burst.goodToBad = 0.005;
  burst.badToGood = 0.1;
  burst.lossGood = 0.001;
  burst.lossBad = 0.3;
  c.sharedBurstLoss = burst;
  const StarResult r = runStarSimulation(c);
  for (std::uint64_t d : r.deliveredPackets) {
    EXPECT_EQ(d, r.deliveredPackets.front());
  }
}

TEST(Extensions, ProtocolNameCoversActiveRouter) {
  EXPECT_STREQ(protocolName(ProtocolKind::kActiveRouter), "ActiveRouter");
}

TEST(PriorityDropping, RaisesSubscriptionAndDelivery) {
  // Section 5 / [1]: sparing the base layers lets receivers ride higher
  // and deliver more at the same average shared loss.
  StarConfig uniform = base(ProtocolKind::kDeterministic);
  uniform.sharedLossRate = 0.03;
  uniform.independentLossRate = 0.0;
  StarConfig priority = uniform;
  priority.prioritySharedDropping = true;
  double uniLevel = 0.0, priLevel = 0.0;
  std::uint64_t uniDel = 0, priDel = 0;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    uniform.seed = priority.seed = s;
    const auto u = runStarSimulation(uniform);
    const auto p = runStarSimulation(priority);
    uniLevel += u.meanLevel;
    priLevel += p.meanLevel;
    uniDel += u.maxDelivered;
    priDel += p.maxDelivered;
  }
  EXPECT_GT(priLevel, uniLevel);
  EXPECT_GT(priDel, uniDel);
}

TEST(PriorityDropping, BaseLayerNeverDroppedByPriority) {
  // With priority dropping and no fanout loss, a receiver at level 1
  // never sees a congestion event (w(1) = 0).
  StarConfig c = base(ProtocolKind::kDeterministic);
  c.layers = 2;  // level cap keeps receivers cycling between 1 and 2
  c.sharedLossRate = 0.5;
  c.independentLossRate = 0.0;
  c.prioritySharedDropping = true;
  const auto r = runStarSimulation(c);
  // Congestion events can only come from layer-2 packets.
  EXPECT_GT(r.totalCongestionEvents, 0u);
  // Every receiver still delivers every layer-1 packet.
  for (std::uint64_t d : r.deliveredPackets) {
    EXPECT_GT(d, c.totalPackets / 4);
  }
}

TEST(PriorityDropping, ExclusiveWithBurstLoss) {
  StarConfig c = base(ProtocolKind::kDeterministic);
  c.prioritySharedDropping = true;
  c.sharedBurstLoss = StarConfig::BurstLoss{};
  EXPECT_THROW(runStarSimulation(c), PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
