// Tests for the layered sender: exact per-layer rates and ruler signals.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "sim/sender.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {
namespace {

TEST(RulerSignal, Sequence) {
  // 1-based layer-1 packet number n -> 1 + nu2(n), capped.
  EXPECT_EQ(LayeredSender::rulerSignalLevel(1, 7), 1u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(2, 7), 2u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(3, 7), 1u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(4, 7), 3u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(8, 7), 4u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(64, 7), 7u);
  EXPECT_EQ(LayeredSender::rulerSignalLevel(1024, 7), 7u);  // capped
}

TEST(RulerSignal, SpacingOfLevels) {
  // A signal of level >= i appears exactly every 2^(i-1) layer-1 packets.
  for (std::size_t i = 1; i <= 5; ++i) {
    std::uint64_t count = 0;
    const std::uint64_t window = 1 << 10;
    for (std::uint64_t n = 1; n <= window; ++n) {
      if (LayeredSender::rulerSignalLevel(n, 7) >= i) ++count;
    }
    EXPECT_EQ(count, window >> (i - 1)) << "level " << i;
  }
}

TEST(LayeredSender, LayerRatesExactOverWindow) {
  // Over T time units, layer k must emit T * rate_k packets (rate 1 for
  // layer 1, 2^(k-2) beyond).
  LayeredSender sender(layering::LayerScheme::exponential(5));
  std::map<std::size_t, int> counts;
  Packet last;
  // Cumulative rate is 16, so 16 * 64 packets cover ~64 time units.
  const int total = 16 * 64;
  for (int i = 0; i < total; ++i) {
    last = sender.next();
    counts[last.layer]++;
  }
  EXPECT_NEAR(last.time, 64.0, 1.0);
  EXPECT_NEAR(counts[1], 64, 1);
  EXPECT_NEAR(counts[2], 64, 1);
  EXPECT_NEAR(counts[3], 128, 1);
  EXPECT_NEAR(counts[4], 256, 1);
  EXPECT_NEAR(counts[5], 512, 1);
}

TEST(LayeredSender, EmissionTimesAreClosedForm) {
  // Every packet's time must equal layerEmissionTime(phase, period, n)
  // for its layer's n-th emission — the exactness contract the fluid
  // engine's analytic interval counts rely on. Checked with and without
  // phase jitter, comparing with EXPECT_EQ (bit equality), not NEAR.
  for (const bool jitter : {false, true}) {
    util::Rng rng(99);
    LayeredSender sender(layering::LayerScheme::exponential(5),
                         jitter ? &rng : nullptr);
    std::array<std::uint64_t, 5> count{};
    for (int i = 0; i < 5000; ++i) {
      const Packet p = sender.next();
      ++count[p.layer - 1];
      EXPECT_EQ(p.time,
                layerEmissionTime(sender.layerPhase(p.layer),
                                  sender.layerPeriod(p.layer),
                                  count[p.layer - 1]))
          << "layer " << p.layer << " emission " << count[p.layer - 1];
      EXPECT_EQ(sender.layerEmitted(p.layer), count[p.layer - 1]);
    }
  }
}

TEST(LayeredSender, LayerPeriodsMatchSchemeRates) {
  LayeredSender sender(layering::LayerScheme::exponential(6));
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(sender.layerPeriod(k), 1.0 / sender.scheme().layerRate(k));
    EXPECT_EQ(sender.layerPhase(k), 0.0);  // no jitter requested
  }
}

TEST(LayeredSender, TimesNonDecreasing) {
  LayeredSender sender(layering::LayerScheme::exponential(4));
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Packet p = sender.next();
    EXPECT_GE(p.time, prev);
    prev = p.time;
    EXPECT_EQ(p.sequence, static_cast<std::uint64_t>(i));
  }
}

TEST(LayeredSender, SyncOnlyOnLayerOne) {
  LayeredSender sender(layering::LayerScheme::exponential(6));
  int layer1Signals = 0;
  for (int i = 0; i < 5000; ++i) {
    const Packet p = sender.next();
    if (p.layer != 1) {
      EXPECT_EQ(p.syncLevel, 0u);
    } else {
      EXPECT_GE(p.syncLevel, 1u);
      EXPECT_LE(p.syncLevel, 5u);  // capped at layers-1
      ++layer1Signals;
    }
  }
  EXPECT_GT(layer1Signals, 0);
}

TEST(LayeredSender, SingleLayerNoSignals) {
  LayeredSender sender(layering::LayerScheme::exponential(1));
  for (int i = 0; i < 100; ++i) {
    const Packet p = sender.next();
    EXPECT_EQ(p.layer, 1u);
    EXPECT_EQ(p.syncLevel, 0u);
  }
}

TEST(LayeredSender, SignalLevelFrequencies) {
  // Among layer-1 packets, level g (below the cap) appears with frequency
  // 2^-g — the distribution the Markov analysis randomizes.
  LayeredSender sender(layering::LayerScheme::exponential(8));
  std::map<std::size_t, int> counts;
  int layer1 = 0;
  for (int i = 0; i < 128 * 1024; ++i) {
    const Packet p = sender.next();
    if (p.layer == 1) {
      ++layer1;
      counts[p.syncLevel]++;
    }
  }
  ASSERT_GT(layer1, 500);
  EXPECT_NEAR(static_cast<double>(counts[1]) / layer1, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[2]) / layer1, 0.25, 0.05);
}

}  // namespace
}  // namespace mcfair::sim
