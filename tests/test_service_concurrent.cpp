// Concurrency coverage of serve::FairshareService — the suite the CI
// ASan and TSan steps run: delta-applier threads (capacity, fault, join
// and leave mixes) race query threads (queryInto copies, what-ifs,
// metrics/introspection reads) through the service lock. Assertions from
// worker threads are avoided; outcomes funnel into atomics checked after
// the join, and the final state must match the reference oracle exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairness/maxmin.hpp"
#include "net/session.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace mcfair::serve {
namespace {

net::Network concurrencyBase() {
  net::Network n;
  const auto l0 = n.addLink(20.0);
  const auto l1 = n.addLink(14.0);
  const auto l2 = n.addLink(16.0);
  const auto l3 = n.addLink(24.0);
  const auto l4 = n.addLink(9.0);
  const auto l5 = n.addLink(11.0);

  net::Session s1;
  s1.name = "S1";
  s1.receivers.push_back(net::makeReceiver({l0, l1}, "r1,1"));
  s1.receivers.push_back(net::makeReceiver({l0, l2}, "r1,2"));
  n.addSession(s1);
  net::Session s2;
  s2.name = "S2";
  s2.type = net::SessionType::kSingleRate;
  s2.maxRate = 8.0;
  s2.receivers.push_back(net::makeReceiver({l1, l3}, "r2,1"));
  s2.receivers.push_back(net::makeReceiver({l2, l3}, "r2,2"));
  n.addSession(s2);
  n.addSession(net::makeUnicastSession({l4}, net::kUnlimitedRate, "S3"));
  n.addSession(net::makeUnicastSession({l5, l3}, 6.0, "S4"));
  return n;
}

TEST(FairshareServiceConcurrent, DeltaAppliersRaceQueriesSafely) {
  constexpr std::size_t kAppliers = 2;
  constexpr std::size_t kQueriers = 2;
  constexpr std::size_t kApplierIterations = 60;
  constexpr std::size_t kQuerierIterations = 80;

  ServiceOptions options;
  options.exactCostOverride = 1e-7;  // both answer modes get exercised
  options.degradeAfter = 3;
  options.promoteAfter = 2;
  options.sampled.sampleFraction = 0.5;
  options.sampled.seed = 17;
  FairshareService service(concurrencyBase(), options);

  std::atomic<std::uint64_t> applied{0};
  std::atomic<std::uint64_t> applyFailures{0};
  std::atomic<std::uint64_t> queryFailures{0};
  std::atomic<std::uint64_t> answers{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kAppliers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + t);
      const std::size_t links = service.network().linkCount();
      // Thread-disjoint session-id ranges keep join/leave pairs valid
      // without cross-thread coordination.
      const std::uint64_t idBase = 1000 * (t + 1);
      for (std::size_t i = 0; i < kApplierIterations; ++i) {
        const auto link = graph::LinkId{
            static_cast<std::uint32_t>(rng.below(links))};
        Delta d;
        switch (i % 4) {
          case 0:
            d = setCapacityDelta(link, rng.uniform(1.0, 30.0));
            break;
          case 1:
            d = faultDelta(net::FaultEvent{
                0.0,
                rng.bernoulli(0.5) ? net::FaultKind::kDegrade
                                   : net::FaultKind::kLinkUp,
                link, rng.uniform(0.2, 1.0)});
            break;
          case 2: {
            net::Session s;
            s.receivers.push_back(net::makeReceiver({link}));
            d = joinDelta(idBase + i, std::move(s));
            break;
          }
          default:
            d = leaveDelta(idBase + i - 1);  // the session joined last turn
            break;
        }
        // tryApplyDelta may report kBusy under contention; kBusy is a
        // legal outcome, anything else non-kOk is a bug. Busy joins must
        // not leave the paired leave dangling, so joins use the
        // blocking entry point.
        if (i % 4 == 2 || i % 4 == 3) {
          if (service.applyDelta(d) != ServiceStatus::kOk) ++applyFailures;
          ++applied;
        } else {
          const ServiceStatus s = service.tryApplyDelta(d);
          if (s == ServiceStatus::kOk) {
            ++applied;
          } else if (s != ServiceStatus::kBusy) {
            ++applyFailures;
          }
        }
      }
    });
  }
  for (std::size_t t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> rates;
      for (std::size_t i = 0; i < kQuerierIterations; ++i) {
        const double budget = (i % 3 == 0) ? 0.0 : 1e-9;
        const QueryResult q = service.queryInto(budget, rates);
        if (q.status != ServiceStatus::kOk || rates.empty()) {
          ++queryFailures;
        }
        for (const double r : rates) {
          if (!(r >= 0.0)) ++queryFailures;  // copies stay readable
        }
        ++answers;
        if (i % 7 == t) {
          const QueryResult w =
              service.whatIfCapacity(graph::LinkId{0}, 5.0, 0.0);
          if (w.status != ServiceStatus::kOk) ++queryFailures;
        }
        (void)service.degradedMode();
        (void)service.metrics();
        (void)service.revision();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(applyFailures.load(), 0u);
  EXPECT_EQ(queryFailures.load(), 0u);
  EXPECT_EQ(answers.load(), kQueriers * kQuerierIterations);

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.appliedDeltas, applied.load());
  EXPECT_EQ(service.revision(), applied.load());
  EXPECT_EQ(m.exactAnswers + m.degradedAnswers,
            m.exactQuery.stats.count() + m.degradedQuery.stats.count());

  // Quiesced, the service agrees with the reference oracle bit for bit.
  const QueryResult final = service.query(0.0);
  const fairness::Allocation oracle =
      fairness::maxMinFairAllocation(service.network());
  bool exact = true;
  for (const net::ReceiverRef ref : service.network().receiverRefs()) {
    exact = exact && final.rates->rate(ref) == oracle.rate(ref);
  }
  EXPECT_TRUE(final.degraded || exact);
  if (final.degraded) {
    // Still latched degraded from the race: promote and re-check.
    QueryResult promoted = final;
    for (int i = 0; i < 8 && promoted.degraded; ++i) {
      promoted = service.query(0.0);
    }
    ASSERT_FALSE(promoted.degraded);
    for (const net::ReceiverRef ref : service.network().receiverRefs()) {
      EXPECT_EQ(promoted.rates->rate(ref), oracle.rate(ref));
    }
  }
}

}  // namespace
}  // namespace mcfair::serve
