// Verifies the incremental engine's zero-allocation contract: once a
// MaxMinSolver is bound and has solved a network once, subsequent solves
// of same-shaped networks perform no heap allocation at all — the whole
// steady-state filling loop (and the usage write-out) runs out of the
// workspace built at bind time.
//
// The check instruments the global allocator for this test binary: every
// operator new bumps a counter, and the assertions read the counter delta
// across a solve call.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"

namespace {
// Atomic: operator new can run on pool worker threads too.
std::atomic<std::size_t> g_allocations{0};

// C11 aligned_alloc requires size to be a multiple of the alignment
// (glibc is lenient, macOS is not).
std::size_t roundUp(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  return (size + a - 1) / a * a;
}
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mcfair::fairness {
namespace {

// The MCFAIR_VALIDATE harness re-solves with the (allocating) reference
// oracle; the allocation contract under test is the solver's own, so
// this binary pins validation off regardless of the environment.
MaxMinOptions noValidate() {
  MaxMinOptions options;
  options.validate.enabled = 0;
  return options;
}

std::size_t allocationsDuring(MaxMinSolver& solver, bool withUsage) {
  const std::size_t before = g_allocations;
  if (withUsage) {
    (void)solver.solve();
  } else {
    (void)solver.solveAllocation();
  }
  return g_allocations - before;
}

TEST(MaxMinZeroAlloc, LinearPathSteadyStateAllocatesNothing) {
  const auto n = net::singleBottleneckNetwork(64, 6, 1000.0, 2.0);
  MaxMinSolver solver(noValidate());
  solver.bind(n);
  (void)solver.solve();  // warm-up: builds workspace capacity
  EXPECT_EQ(allocationsDuring(solver, /*withUsage=*/false), 0u);
  EXPECT_EQ(allocationsDuring(solver, /*withUsage=*/true), 0u);
}

TEST(MaxMinZeroAlloc, MixedSessionTypesAllocateNothing) {
  const auto n = net::fig2Network(false);  // single-rate step-7 path
  MaxMinSolver solver(noValidate());
  solver.bind(n);
  (void)solver.solve();
  EXPECT_EQ(allocationsDuring(solver, /*withUsage=*/true), 0u);
}

TEST(MaxMinZeroAlloc, NonlinearBisectionPathAllocatesNothing) {
  auto n = net::fig2Network(true);
  const auto fn = std::make_shared<const net::RandomJoinExpected>(100.0);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    n = n.withLinkRateFunction(i, fn);
  }
  MaxMinSolver solver(noValidate());
  solver.bind(n);
  (void)solver.solve();
  EXPECT_EQ(allocationsDuring(solver, /*withUsage=*/true), 0u);
}

TEST(MaxMinZeroAlloc, SigmaLimitedSessionsAllocateNothing) {
  net::Network n;
  const auto a = n.addLink(10.0);
  const auto b = n.addLink(4.0);
  n.addSession(net::makeUnicastSession({a}, /*maxRate=*/2.0));
  n.addSession(net::makeUnicastSession({a, b}, /*maxRate=*/3.5));
  n.addSession(net::makeUnicastSession({b}));
  MaxMinSolver solver(noValidate());
  solver.bind(n);
  (void)solver.solve();
  EXPECT_EQ(allocationsDuring(solver, /*withUsage=*/true), 0u);
}

TEST(MaxMinZeroAlloc, RebindSameStructureStaysWarm) {
  const auto n = net::singleBottleneckNetwork(32, 4, 500.0, 1.5);
  MaxMinSolver solver(noValidate());
  (void)solver.solve(n);
  // Re-solving through the bind(net) entry point must not rebuild the
  // workspace when the network is unchanged (identity short-circuit).
  const std::size_t before = g_allocations;
  (void)solver.solve(n);
  EXPECT_EQ(g_allocations - before, 0u);
}

}  // namespace
}  // namespace mcfair::fairness
