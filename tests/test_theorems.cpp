// Property-based verification of Theorem 1 and Theorem 2 on random
// networks.
#include <gtest/gtest.h>

#include <cmath>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"

namespace mcfair::fairness {
namespace {

using net::Network;
using net::ReceiverRef;
using net::SessionType;

class TheoremSeeds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Network allMultiRate() const {
    util::Rng rng(GetParam());
    net::RandomNetworkOptions opts;
    opts.singleRateProbability = 0.0;
    opts.sessions = 5;
    return net::randomNetwork(rng, opts);
  }
  Network mixed() const {
    util::Rng rng(GetParam() + 1000);
    net::RandomNetworkOptions opts;
    opts.singleRateProbability = 0.5;
    opts.sessions = 5;
    return net::randomNetwork(rng, opts);
  }
};

TEST_P(TheoremSeeds, Theorem1AllPropertiesHoldMultiRate) {
  // Theorem 1: the multi-rate max-min fair allocation is fully-utilized-
  // receiver-fair, same-path-receiver-fair, per-receiver-link-fair and
  // per-session-link-fair.
  const Network n = allMultiRate();
  const auto a = maxMinFairAllocation(n);
  for (const auto& [name, check] : checkAllProperties(n, a)) {
    EXPECT_TRUE(check.holds)
        << name << ": " << (check.violations.empty()
                                ? ""
                                : check.violations.front());
  }
}

TEST_P(TheoremSeeds, Theorem2aFullyUtilizedForMultiRateReceivers) {
  const Network n = mixed();
  const auto result = solveMaxMinFair(n);
  for (ReceiverRef r : n.allReceivers()) {
    if (n.session(r.session).type != SessionType::kMultiRate) continue;
    EXPECT_TRUE(isReceiverFullyUtilizedFair(n, result.allocation,
                                            result.usage, r))
        << "receiver (" << r.session << "," << r.receiver << ")";
  }
}

TEST_P(TheoremSeeds, Theorem2bPerReceiverLinkFairForMultiRateSessions) {
  const Network n = mixed();
  const auto result = solveMaxMinFair(n);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    if (n.session(i).type != SessionType::kMultiRate) continue;
    EXPECT_TRUE(isSessionPerReceiverLinkFair(n, result.allocation,
                                             result.usage, i))
        << "session " << i;
  }
}

TEST_P(TheoremSeeds, Theorem2cPerSessionLinkFairForAllSessions) {
  const Network n = mixed();
  const auto result = solveMaxMinFair(n);
  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    EXPECT_TRUE(isSessionPerSessionLinkFair(n, result.allocation,
                                            result.usage, i))
        << "session " << i;
  }
}

TEST_P(TheoremSeeds, Theorem2dSamePathBetweenMultiRateReceivers) {
  const Network n = mixed();
  const auto a = maxMinFairAllocation(n);
  const auto all = n.allReceivers();
  for (std::size_t x = 0; x < all.size(); ++x) {
    for (std::size_t y = x + 1; y < all.size(); ++y) {
      if (n.session(all[x].session).type != SessionType::kMultiRate ||
          n.session(all[y].session).type != SessionType::kMultiRate) {
        continue;
      }
      EXPECT_TRUE(arePairSamePathFair(n, a, all[x], all[y]));
    }
  }
}

TEST_P(TheoremSeeds, Theorem2eMultiRateAtLeastSingleRateOnSamePath) {
  // If a multi-rate receiver and a single-rate receiver share a data-path
  // then the multi-rate one is at sigma or receives at least as much.
  const Network n = mixed();
  const auto a = maxMinFairAllocation(n);
  const auto all = n.allReceivers();
  for (ReceiverRef x : all) {
    if (n.session(x.session).type != SessionType::kMultiRate) continue;
    const auto& px = n.session(x.session).receivers[x.receiver].dataPath;
    for (ReceiverRef y : all) {
      if (n.session(y.session).type != SessionType::kSingleRate) continue;
      const auto& py = n.session(y.session).receivers[y.receiver].dataPath;
      if (px != py) continue;
      const double sigma = n.session(x.session).maxRate;
      const bool atSigma =
          !std::isinf(sigma) && a.rate(x) >= sigma - 1e-6;
      EXPECT_TRUE(atSigma || a.rate(x) >= a.rate(y) - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcfair::fairness
