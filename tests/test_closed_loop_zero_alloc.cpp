// Verifies the event-driven closed-loop engine's allocation contract:
// every heap allocation happens during setup (SimCore construction, the
// event-queue seeding batch) or result materialization — the per-packet
// steady state allocates nothing. The check compares total allocation
// counts of two runs that differ only in duration: a 16x longer packet
// stream through the same network must allocate exactly as much as the
// short one, which is only possible if the packet loop itself is
// allocation-free.
//
// Same instrumentation idiom as test_maxmin_zero_alloc.cpp: this binary
// overrides the global allocator and counts calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/fault.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};

// C11 aligned_alloc requires size to be a multiple of the alignment
// (glibc is lenient, macOS is not).
std::size_t roundUp(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  return (size + a - 1) / a * a;
}
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   roundUp(size, align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mcfair::sim {
namespace {

std::size_t allocationsForDuration(const net::Network& n, double duration) {
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1});
  c.duration = duration;
  c.warmup = duration / 4.0;
  c.seed = 17;
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulation(n, c);
  const std::size_t after = g_allocations.load();
  // Use the result so the run cannot be elided.
  EXPECT_FALSE(r.measuredRate.empty());
  return after - before;
}

std::size_t fluidAllocationsForDuration(const net::Network& n,
                                        double duration) {
  ClosedLoopConfig c;
  c.sessions.assign(
      n.sessionCount(),
      ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 1});
  c.duration = duration;
  c.warmup = duration / 4.0;
  c.seed = 29;
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulationFluid(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_GT(r.fluidTime, 0.0) << "fluid mode must engage for this check";
  return after - before;
}

TEST(ClosedLoopZeroAlloc, PacketLoopAllocatesNothing) {
  net::Network n;
  const auto shared = n.addLink(8.0);
  const auto tailA = n.addLink(2.0);
  const auto tailB = n.addLink(6.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));

  // Warm up once (gtest and lazy runtime structures allocate on first
  // touch), then compare a short and a 16x longer run.
  (void)allocationsForDuration(n, 100.0);
  const std::size_t shortRun = allocationsForDuration(n, 100.0);
  const std::size_t longRun = allocationsForDuration(n, 1600.0);
  EXPECT_EQ(shortRun, longRun)
      << "per-packet steady state must not allocate";
  EXPECT_GT(shortRun, 0u);  // setup/result work is real
}

TEST(ClosedLoopZeroAlloc, FluidSteadyStateAllocatesNothing) {
  // The fluid engine's contract: the per-packet transient reuses the
  // event engine's allocation-free loop, the certificate scratch is
  // built once, and the closed-form advance itself is pure arithmetic
  // over preallocated arrays. A 16x longer horizon — which only grows
  // the analytically covered interval — must therefore allocate exactly
  // as much as the short one.
  net::Network n;
  const auto shared = n.addLink(64.0);  // ample: aggregate rate is 3 * 4
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  const auto tailA = n.addLink(16.0);
  const auto tailB = n.addLink(16.0);
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));
  n.addSession(net::makeUnicastSession({shared}));

  (void)fluidAllocationsForDuration(n, 100.0);
  const std::size_t shortRun = fluidAllocationsForDuration(n, 100.0);
  const std::size_t longRun = fluidAllocationsForDuration(n, 1600.0);
  EXPECT_EQ(shortRun, longRun)
      << "fluid steady state must not allocate";
  EXPECT_GT(shortRun, 0u);
}

// A run with `flaps` degrade/repair pairs on the shared link. The
// schedule vector is reserved up front, so the allocation count of the
// run is independent of the number of events IF the fault application
// path itself — capacity refresh, incremental re-solve, accumulator
// flush — is allocation-free.
std::size_t faultChurnAllocations(const net::Network& n,
                                  graph::LinkId victim, std::size_t flaps) {
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1});
  c.duration = 1600.0;
  c.warmup = 100.0;
  c.seed = 23;
  c.validate.enabled = 0;  // the paranoid checker may allocate
  c.faults.events.reserve(2 * flaps);
  for (std::size_t f = 0; f < flaps; ++f) {
    const double t = 200.0 + static_cast<double>(f) * 20.0;
    c.faults.events.push_back(
        {t, net::FaultKind::kDegrade, victim, 0.5});
    c.faults.events.push_back({t + 10.0, net::FaultKind::kLinkUp, victim});
  }
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulation(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_FALSE(r.measuredRate.empty());
  return after - before;
}

TEST(ClosedLoopZeroAlloc, FaultApplicationAllocatesNothing) {
  net::Network n;
  const auto shared = n.addLink(8.0);
  const auto tailA = n.addLink(2.0);
  const auto tailB = n.addLink(6.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));

  (void)faultChurnAllocations(n, shared, 4);
  const std::size_t few = faultChurnAllocations(n, shared, 4);
  const std::size_t many = faultChurnAllocations(n, shared, 64);
  EXPECT_EQ(few, many) << "fault application must not allocate";
  EXPECT_GT(few, 0u);
}

// The fluid hand-back path — token-bucket reconstruction, sender
// resync, queue re-seeding, and the post-repair re-engagement — runs on
// preallocated scratch. Two runs with the SAME fault schedule but an 8x
// longer horizon produce the same number of hand-backs and fluid
// intervals, so they must allocate exactly as much: the extra covered
// time is pure arithmetic.
std::size_t fluidFaultAllocations(const net::Network& n,
                                  graph::LinkId victim, double duration) {
  ClosedLoopConfig c;
  c.sessions.assign(
      n.sessionCount(),
      ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 1});
  c.duration = duration;
  c.warmup = 100.0;
  c.seed = 31;
  c.validate.enabled = 0;  // the paranoid checker may allocate
  c.faults.events = {{300.0, net::FaultKind::kDegrade, victim, 0.5},
                     {500.0, net::FaultKind::kLinkUp, victim}};
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulationFluid(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_GT(r.fluidTime, 0.0) << "fluid mode must engage for this check";
  EXPECT_GE(r.fluidIntervals.size(), 2u)
      << "the run must hand back at the fault and re-engage after repair";
  return after - before;
}

TEST(ClosedLoopZeroAlloc, FluidHandBackAllocatesNothing) {
  net::Network n;
  const auto shared = n.addLink(64.0);  // ample even at half capacity
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  const auto tailA = n.addLink(16.0);
  const auto tailB = n.addLink(16.0);
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));
  n.addSession(net::makeUnicastSession({shared}));

  (void)fluidFaultAllocations(n, shared, 800.0);
  const std::size_t shortRun = fluidFaultAllocations(n, shared, 800.0);
  const std::size_t longRun = fluidFaultAllocations(n, shared, 6400.0);
  EXPECT_EQ(shortRun, longRun)
      << "hand-back and re-engagement must not allocate per covered time";
  EXPECT_GT(shortRun, 0u);
}

// ---- component-parallel engine ------------------------------------------

// A 3-component network (one shared bottleneck + tails per component):
// the parallel engine's allocation contract mirrors the serial one —
// everything heap-side happens in setup (SimCore, partition, lanes,
// thread pool) or result materialization, never per packet. The
// ThreadPool and lane scratch are rebuilt per run, but their footprint
// is a function of the network alone, so short-vs-16x-longer EXPECT_EQ
// still isolates the packet loop.
net::Network parallelNetwork() {
  net::Network n;
  for (int comp = 0; comp < 3; ++comp) {
    const auto shared = n.addLink(8.0);
    const auto tailA = n.addLink(2.0);
    const auto tailB = n.addLink(6.0);
    net::Session s;
    s.type = net::SessionType::kMultiRate;
    s.receivers = {net::makeReceiver({shared, tailA}),
                   net::makeReceiver({shared, tailB})};
    n.addSession(std::move(s));
    n.addSession(net::makeUnicastSession({shared}));
  }
  return n;
}

std::size_t parallelAllocationsForDuration(const net::Network& n,
                                           double duration, int threads,
                                           std::uint64_t* rebuilds) {
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1});
  c.duration = duration;
  c.warmup = duration / 4.0;
  c.seed = 37;
  c.engineThreads = threads;
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulationParallel(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(r.engineComponents, 3u);
  if (rebuilds != nullptr) *rebuilds = r.partitionRebuilds;
  return after - before;
}

TEST(ClosedLoopZeroAlloc, ParallelPacketLoopAllocatesNothing) {
  const net::Network n = parallelNetwork();
  for (const int threads : {1, 4}) {
    (void)parallelAllocationsForDuration(n, 100.0, threads, nullptr);
    std::uint64_t rebuilds = 0;
    const std::size_t shortRun =
        parallelAllocationsForDuration(n, 100.0, threads, &rebuilds);
    const std::size_t longRun =
        parallelAllocationsForDuration(n, 1600.0, threads, nullptr);
    EXPECT_EQ(shortRun, longRun)
        << "parallel per-packet steady state must not allocate (T="
        << threads << ")";
    EXPECT_GT(shortRun, 0u);
    // One structural partition per run — packet-only steps never
    // recompute components.
    EXPECT_EQ(rebuilds, 1u);
  }
}

std::size_t parallelFaultChurnAllocations(const net::Network& n,
                                          graph::LinkId victim,
                                          std::size_t flaps,
                                          std::uint64_t* rebuilds) {
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 5, 1});
  c.duration = 1600.0;
  c.warmup = 100.0;
  c.seed = 43;
  c.engineThreads = 4;
  c.validate.enabled = 0;  // the paranoid checker may allocate
  c.faults.events.reserve(2 * flaps);
  for (std::size_t f = 0; f < flaps; ++f) {
    const double t = 200.0 + static_cast<double>(f) * 20.0;
    c.faults.events.push_back({t, net::FaultKind::kDegrade, victim, 0.5});
    c.faults.events.push_back({t + 10.0, net::FaultKind::kLinkUp, victim});
  }
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulationParallel(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(r.engineComponents, 3u);
  if (rebuilds != nullptr) *rebuilds = r.partitionRebuilds;
  return after - before;
}

TEST(ClosedLoopZeroAlloc, ParallelFaultApplicationAllocatesNothing) {
  // 64 degrade/repair flaps on one component's bottleneck versus 4: the
  // lane fault sub-schedules are carved out during setup (the counting
  // sort scales with the SCHEDULE, which is held fixed per comparison
  // by reserving up front and identical except in count), and applying
  // an event is a bucket reconfiguration — allocation-free. Faults are
  // capacity edits, so the structural partition is computed exactly
  // once per run through all 64 flaps.
  const net::Network n = parallelNetwork();
  const graph::LinkId victim{0};  // component 0's shared bottleneck

  (void)parallelFaultChurnAllocations(n, victim, 4, nullptr);
  std::uint64_t rebuilds = 0;
  const std::size_t few =
      parallelFaultChurnAllocations(n, victim, 4, &rebuilds);
  EXPECT_EQ(rebuilds, 1u);
  const std::size_t many =
      parallelFaultChurnAllocations(n, victim, 64, &rebuilds);
  EXPECT_EQ(rebuilds, 1u)
      << "a 64-flap schedule must not trigger partition rebuilds";
  // The event vector is reserved up front and the lane sub-schedules
  // are single sized-on-construction vectors, so the allocation CALL
  // count is flap-independent; any per-event allocation in the lane
  // fault path would break the equality 60 times over.
  EXPECT_EQ(many, few) << "parallel fault application must not allocate";
  EXPECT_GT(few, 0u);
}

// ---- speculative intra-component engine ----------------------------------

// The speculative engine's allocation contract: everything heap-side
// happens in SpecEngine setup — epoch bounds, double-buffered packet
// arenas, per-link position index, frozen-subscription tables, snapshot
// twins, thread pool — and the epoch loop (generate, sort, admit,
// receive, commit or rollback-and-replay) runs entirely on that
// preallocated storage. With the epoch COUNT pinned via
// speculativeEpochs, a 16x longer horizon only scales the arena capacity
// (same number of allocation calls, bigger blocks), so the total
// allocation-call count must be identical.
std::size_t speculativeAllocationsForDuration(const net::Network& n,
                                              double duration, int threads,
                                              ProtocolKind protocol,
                                              std::uint32_t layers,
                                              std::uint64_t* rollbacks) {
  ClosedLoopConfig c;
  c.sessions.assign(n.sessionCount(),
                    ClosedLoopSessionConfig{protocol, layers, 1});
  c.duration = duration;
  c.warmup = duration / 4.0;
  c.seed = 53;
  c.speculationThreads = threads;
  c.speculativeEpochs = 8;  // pin: auto-sizing would scale with duration
  const std::size_t before = g_allocations.load();
  const auto r = runClosedLoopSimulationSpeculative(n, c);
  const std::size_t after = g_allocations.load();
  EXPECT_GE(r.speculationEpochs, 8u);
  if (rollbacks != nullptr) *rollbacks = r.speculationRollbacks;
  return after - before;
}

TEST(ClosedLoopZeroAlloc, SpeculativeEpochLoopAllocatesNothing) {
  // Single-layer deterministic population: receiver levels never move,
  // so every epoch's frozen prediction holds and every epoch commits.
  // This is the pure speculate-and-commit steady state.
  net::Network n;
  const auto shared = n.addLink(8.0);
  const auto tailA = n.addLink(2.0);
  const auto tailB = n.addLink(6.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));

  for (const int threads : {1, 4}) {
    (void)speculativeAllocationsForDuration(
        n, 100.0, threads, ProtocolKind::kDeterministic, 1, nullptr);
    std::uint64_t rollbacks = ~0ull;
    const std::size_t shortRun = speculativeAllocationsForDuration(
        n, 100.0, threads, ProtocolKind::kDeterministic, 1, &rollbacks);
    EXPECT_EQ(rollbacks, 0u) << "single-layer populations cannot diverge";
    const std::size_t longRun = speculativeAllocationsForDuration(
        n, 1600.0, threads, ProtocolKind::kDeterministic, 1, nullptr);
    EXPECT_EQ(shortRun, longRun)
        << "speculative epoch loop must not allocate (T=" << threads << ")";
    EXPECT_GT(shortRun, 0u);
  }
}

TEST(ClosedLoopZeroAlloc, SpeculativeRollbackReplayAllocatesNothing) {
  // Multi-layer coordinated receivers change levels, so epochs diverge
  // and roll back: snapshot restore plus a serial replay through the
  // allocation-free per-packet core. Both runs execute 8 epochs with a
  // nonzero rollback count; equality proves the restore/replay path
  // itself never touches the heap.
  net::Network n;
  const auto shared = n.addLink(8.0);
  const auto tailA = n.addLink(2.0);
  const auto tailB = n.addLink(6.0);
  net::Session s;
  s.type = net::SessionType::kMultiRate;
  s.receivers = {net::makeReceiver({shared, tailA}),
                 net::makeReceiver({shared, tailB})};
  n.addSession(std::move(s));
  n.addSession(net::makeUnicastSession({shared}));

  (void)speculativeAllocationsForDuration(
      n, 100.0, 4, ProtocolKind::kCoordinated, 5, nullptr);
  std::uint64_t rollbacks = 0;
  const std::size_t shortRun = speculativeAllocationsForDuration(
      n, 100.0, 4, ProtocolKind::kCoordinated, 5, &rollbacks);
  EXPECT_GT(rollbacks, 0u) << "this shape must exercise the rollback path";
  const std::size_t longRun = speculativeAllocationsForDuration(
      n, 1600.0, 4, ProtocolKind::kCoordinated, 5, nullptr);
  EXPECT_EQ(shortRun, longRun)
      << "rollback restore and replay must not allocate";
  EXPECT_GT(shortRun, 0u);
}

}  // namespace
}  // namespace mcfair::sim
