// Tests for protocol event tracing.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/star.hpp"
#include "sim/trace.hpp"

namespace mcfair::sim {
namespace {

StarConfig traceConfig() {
  StarConfig c;
  c.receivers = 5;
  c.layers = 5;
  c.protocol = ProtocolKind::kDeterministic;
  c.sharedLossRate = 0.001;
  c.independentLossRate = 0.03;
  c.totalPackets = 20000;
  c.seed = 42;
  return c;
}

TEST(Trace, CountsMatchSimulationCounters) {
  CountingTraceSink sink;
  StarConfig c = traceConfig();
  c.trace = &sink;
  const StarResult r = runStarSimulation(c);
  EXPECT_EQ(sink.joins(), r.totalJoins);
  EXPECT_EQ(sink.leaves(), r.totalLeaves);
  EXPECT_EQ(sink.congestions(), r.totalCongestionEvents);
  EXPECT_GT(sink.joins(), 0u);
}

TEST(Trace, RecordingSinkPreservesOrderAndFields) {
  RecordingTraceSink sink;
  StarConfig c = traceConfig();
  c.trace = &sink;
  runStarSimulation(c);
  ASSERT_FALSE(sink.events().empty());
  double prev = 0.0;
  for (const auto& e : sink.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    EXPECT_LT(e.receiver, 5u);
    EXPECT_GE(e.level, 1u);
    EXPECT_LE(e.level, 5u);
  }
  // A leave event is always preceded by a congestion event at the same
  // time/packet for the same receiver.
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    const auto& e = sink.events()[i];
    if (e.kind != TraceEvent::Kind::kLeave) continue;
    ASSERT_GT(i, 0u);
    const auto& prevEvent = sink.events()[i - 1];
    EXPECT_EQ(prevEvent.kind, TraceEvent::Kind::kCongestion);
    EXPECT_EQ(prevEvent.packet, e.packet);
    EXPECT_EQ(prevEvent.receiver, e.receiver);
  }
}

TEST(Trace, RecordingSinkLimit) {
  RecordingTraceSink sink(/*limit=*/10);
  StarConfig c = traceConfig();
  c.trace = &sink;
  runStarSimulation(c);
  EXPECT_EQ(sink.events().size(), 10u);
  EXPECT_GT(sink.dropped(), 0u);
}

TEST(Trace, CsvSinkFormat) {
  std::ostringstream os;
  CsvTraceSink sink(os);
  sink.onEvent({TraceEvent::Kind::kJoin, 1.5, 3, 4, 99});
  sink.onEvent({TraceEvent::Kind::kCongestion, 2.0, 0, 1, 120});
  const std::string out = os.str();
  EXPECT_NE(out.find("time,kind,receiver,level,packet"),
            std::string::npos);
  EXPECT_NE(out.find("1.5,join,3,4,99"), std::string::npos);
  EXPECT_NE(out.find("2,congestion,0,1,120"), std::string::npos);
}

TEST(Trace, KindNames) {
  EXPECT_STREQ(traceKindName(TraceEvent::Kind::kJoin), "join");
  EXPECT_STREQ(traceKindName(TraceEvent::Kind::kLeave), "leave");
  EXPECT_STREQ(traceKindName(TraceEvent::Kind::kCongestion),
               "congestion");
}

TEST(Trace, RouterEventsUseSentinelIndex) {
  RecordingTraceSink sink;
  StarConfig c = traceConfig();
  c.protocol = ProtocolKind::kActiveRouter;
  c.sharedLossRate = 0.02;
  c.trace = &sink;
  runStarSimulation(c);
  ASSERT_FALSE(sink.events().empty());
  for (const auto& e : sink.events()) {
    EXPECT_EQ(e.receiver, c.receivers);  // all events come from the router
  }
}

TEST(Trace, NoSinkNoCrash) {
  StarConfig c = traceConfig();
  c.trace = nullptr;
  EXPECT_NO_THROW(runStarSimulation(c));
}

}  // namespace
}  // namespace mcfair::sim
