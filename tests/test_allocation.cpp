// Tests for allocations, link usage, feasibility.
#include <gtest/gtest.h>

#include "fairness/allocation.hpp"
#include "net/topologies.hpp"
#include "util/error.hpp"

namespace mcfair::fairness {
namespace {

using graph::LinkId;
using net::ReceiverRef;

TEST(Allocation, StartsAtZero) {
  const net::Network n = net::fig1Network();
  const Allocation a(n);
  for (ReceiverRef r : n.allReceivers()) EXPECT_EQ(a.rate(r), 0.0);
}

TEST(Allocation, SetAndGet) {
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({1, 1}, 2.5);
  EXPECT_DOUBLE_EQ(a.rate({1, 1}), 2.5);
  EXPECT_THROW(a.setRate({0, 0}, -1.0), PreconditionError);
  EXPECT_THROW(a.setRate({9, 0}, 1.0), std::out_of_range);
}

TEST(Allocation, OrderedRates) {
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({0, 0}, 3.0);
  a.setRate({1, 0}, 1.0);
  a.setRate({1, 1}, 2.0);
  const auto v = a.orderedRates();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
}

TEST(LinkUsage, Fig1PaperValues) {
  // The Figure 1 allocation: a11=a21=a31=1, a22=a32=2 must induce session
  // link rates l1:(0,0,2), l2:(1,2,0), l3:(0,2,2), l4:(1,1,1).
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({1, 0}, 1.0);
  a.setRate({1, 1}, 2.0);
  a.setRate({2, 0}, 1.0);
  a.setRate({2, 1}, 2.0);
  const LinkUsage u = computeLinkUsage(n, a);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[0][0], 0.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[1][0], 0.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[2][0], 2.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[0][1], 1.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[1][1], 2.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[2][1], 0.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[1][2], 2.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[2][2], 2.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[0][3], 1.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[1][3], 1.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[2][3], 1.0);
  // u_j: l3 and l4 fully utilized.
  EXPECT_DOUBLE_EQ(u.linkRate[2], 4.0);
  EXPECT_DOUBLE_EQ(u.linkRate[3], 3.0);
  EXPECT_DOUBLE_EQ(u.linkRate[0], 2.0);
  EXPECT_DOUBLE_EQ(u.linkRate[1], 3.0);
}

TEST(LinkUsage, RedundantSessionUsesFactor) {
  const net::Network n = net::fig4Network();
  Allocation a(n);
  for (ReceiverRef r : n.allReceivers()) a.setRate(r, 2.0);
  const LinkUsage u = computeLinkUsage(n, a);
  // Shared first hop l4 (index 3): u_{1,4} = 2 * max(2,2,2) = 4.
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[0][3], 4.0);
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[1][3], 2.0);
  EXPECT_DOUBLE_EQ(u.linkRate[3], 6.0);
  // Solo tails are efficient: u_{1,2} = 2.
  EXPECT_DOUBLE_EQ(u.sessionLinkRate[0][1], 2.0);
}

TEST(Feasibility, AcceptsValid) {
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({1, 0}, 1.0);
  a.setRate({1, 1}, 2.0);
  a.setRate({2, 0}, 1.0);
  a.setRate({2, 1}, 2.0);
  EXPECT_TRUE(isFeasible(n, a));
}

TEST(Feasibility, DetectsOverutilization) {
  const net::Network n = net::fig1Network();
  Allocation a(n);
  a.setRate({0, 0}, 10.0);  // l4 capacity is 3
  const auto report = checkFeasible(n, a);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Feasibility, DetectsSigmaViolation) {
  net::Network n;
  const LinkId l = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({l}, 2.0));
  Allocation a(n);
  a.setRate({0, 0}, 3.0);
  EXPECT_FALSE(isFeasible(n, a));
}

TEST(Feasibility, DetectsSingleRateMismatch) {
  const net::Network n = net::fig2Network(false);  // S1 single-rate
  Allocation a(n);
  a.setRate({0, 0}, 1.0);
  a.setRate({0, 1}, 2.0);  // unequal within single-rate session
  a.setRate({0, 2}, 1.0);
  const auto report = checkFeasible(n, a);
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, ZeroAllocationAlwaysFeasible) {
  const net::Network n = net::fig4Network();
  const Allocation a(n);
  EXPECT_TRUE(isFeasible(n, a));
}

}  // namespace
}  // namespace mcfair::fairness
