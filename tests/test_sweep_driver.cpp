// Tests for sim::SweepDriver (sim/sweep.hpp): grid shape, bit-identical
// aggregation across 1/2/4/8 executor threads and under forced
// MCFAIR_VALIDATE, the zero-error control column at fraction 1.0, the
// doubled observation stream of fault presets, and config validation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/sweep.hpp"
#include "util/error.hpp"

namespace mcfair::sim {
namespace {

SweepConfig smallConfig() {
  SweepConfig config;
  const ScenarioSpec* steady = findScenario("steady-bottleneck");
  const ScenarioSpec* mesh = findScenario("meshed-backbone");
  EXPECT_NE(steady, nullptr);
  EXPECT_NE(mesh, nullptr);
  ScenarioSpec a = *steady;
  a.sessions = 12;
  ScenarioSpec b = *mesh;
  b.sessions = 10;
  // Heterogeneous tails make the sampling errors nonzero, so the
  // bit-identity assertions below compare real floating-point streams
  // rather than trivially-equal zeros.
  b.receiversPerSession = 4;
  b.tailCapacityMin = 1.0;
  b.tailCapacityMax = 16.0;
  config.scenarios = {a, b};
  config.sampleFractions = {0.2, 0.5, 1.0};
  config.runs = 3;
  config.seedBase = 11;
  config.threads = 1;
  return config;
}

void expectIdenticalResults(const SweepResult& x, const SweepResult& y) {
  ASSERT_EQ(x.cells.size(), y.cells.size());
  for (std::size_t c = 0; c < x.cells.size(); ++c) {
    const SweepCell& a = x.cells[c];
    const SweepCell& b = y.cells[c];
    ASSERT_EQ(a.scenario, b.scenario);
    ASSERT_EQ(a.sampleFraction, b.sampleFraction);
    ASSERT_EQ(a.observations, b.observations);
    for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
      const MetricStream& ma = a.metrics[m];
      const MetricStream& mb = b.metrics[m];
      // Bitwise equality — the cell-owned aggregation must not depend on
      // executor count or claim order in any way.
      EXPECT_EQ(ma.stats.count(), mb.stats.count());
      EXPECT_EQ(ma.stats.mean(), mb.stats.mean());
      EXPECT_EQ(ma.stats.variance(), mb.stats.variance());
      EXPECT_EQ(ma.stats.min(), mb.stats.min());
      EXPECT_EQ(ma.stats.max(), mb.stats.max());
      EXPECT_EQ(ma.p50.value(), mb.p50.value());
      EXPECT_EQ(ma.p90.value(), mb.p90.value());
    }
  }
}

TEST(SweepDriver, GridShapeAndObservationCounts) {
  const SweepResult result = runSweep(smallConfig());
  ASSERT_EQ(result.scenarioCount, 2u);
  ASSERT_EQ(result.fractionCount, 3u);
  ASSERT_EQ(result.cells.size(), 6u);
  for (const SweepCell& cell : result.cells) {
    EXPECT_EQ(cell.observations, 3u) << cell.scenario;
    for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
      EXPECT_EQ(cell.metrics[m].stats.count(), cell.observations);
      EXPECT_EQ(cell.metrics[m].p50.count(), cell.observations);
    }
  }
  EXPECT_EQ(result.cell(1, 2).scenario, "meshed-backbone");
  EXPECT_EQ(result.cell(1, 2).sampleFraction, 1.0);
  EXPECT_NE(findCell(result, "steady-bottleneck", 0.5), nullptr);
  EXPECT_EQ(findCell(result, "steady-bottleneck", 0.7), nullptr);
  EXPECT_EQ(findCell(result, "no-such", 0.5), nullptr);
}

TEST(SweepDriver, ControlColumnHasExactlyZeroError) {
  const SweepResult result = runSweep(smallConfig());
  for (std::size_t si = 0; si < result.scenarioCount; ++si) {
    const SweepCell& control = result.cell(si, 2);
    ASSERT_EQ(control.sampleFraction, 1.0);
    EXPECT_EQ(control.metric(SweepMetric::kMeanReceiverError).stats.max(),
              0.0);
    EXPECT_EQ(control.metric(SweepMetric::kMaxReceiverError).stats.max(), 0.0);
    EXPECT_EQ(control.metric(SweepMetric::kMaxLinkError).stats.max(), 0.0);
    EXPECT_EQ(control.metric(SweepMetric::kSampledShare).stats.min(), 1.0);
  }
}

TEST(SweepDriver, BitIdenticalAcrossThreadCounts) {
  SweepConfig config = smallConfig();
  config.threads = 1;
  const SweepResult serial = runSweep(config);
  for (const int threads : {2, 4, 8}) {
    config.threads = threads;
    const SweepDriver driver(config);
    EXPECT_EQ(driver.threadCount(), static_cast<std::size_t>(threads));
    const SweepResult parallel = driver.run();
    expectIdenticalResults(serial, parallel);
  }
}

TEST(SweepDriver, BitIdenticalUnderForcedValidation) {
  SweepConfig config = smallConfig();
  config.validate.enabled = 0;
  const SweepResult plain = runSweep(config);
  config.validate.enabled = 1;  // paranoid oracle cross-checks on
  config.threads = 4;
  const SweepResult checked = runSweep(config);
  expectIdenticalResults(plain, checked);
}

TEST(SweepDriver, RepeatRunsAreIdentical) {
  const SweepDriver driver(smallConfig());
  expectIdenticalResults(driver.run(), driver.run());
}

TEST(SweepDriver, FaultPresetStreamsTwoObservationsPerReplica) {
  SweepConfig config;
  const ScenarioSpec* flap = findScenario("link-flap");
  ASSERT_NE(flap, nullptr);
  ScenarioSpec spec = *flap;
  spec.sessions = 10;
  config.scenarios = {spec};
  config.sampleFractions = {0.5, 1.0};
  config.runs = 2;
  config.threads = 1;
  const SweepResult result = runSweep(config);
  for (const SweepCell& cell : result.cells) {
    // One steady + one mid-fault observation per replica.
    EXPECT_EQ(cell.observations, 4u);
  }
  // The control column stays exactly zero through the refresh tier too.
  const SweepCell* control = findCell(result, "link-flap", 1.0);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->metric(SweepMetric::kMaxReceiverError).stats.max(), 0.0);

  config.solveMidFault = false;
  const SweepResult steadyOnly = runSweep(config);
  for (const SweepCell& cell : steadyOnly.cells) {
    EXPECT_EQ(cell.observations, 2u);
  }
}

TEST(SweepDriver, LargerSamplesEstimateNoWorseOnAverage) {
  SweepConfig config;
  const ScenarioSpec* mesh = findScenario("meshed-backbone");
  ASSERT_NE(mesh, nullptr);
  ScenarioSpec spec = *mesh;
  spec.sessions = 16;
  // Heterogeneous receivers: on the symmetric preset the HT-scaled
  // estimate is exact at every fraction and the comparison would be
  // the vacuous 0 <= 0.
  spec.receiversPerSession = 6;
  spec.tailCapacityMin = 1.0;
  spec.tailCapacityMax = 16.0;
  config.scenarios = {spec};
  config.sampleFractions = {0.05, 0.5};
  config.runs = 12;
  config.threads = 2;
  const SweepResult result = runSweep(config);
  const double small =
      result.cell(0, 0).metric(SweepMetric::kMeanReceiverError).stats.mean();
  const double large =
      result.cell(0, 1).metric(SweepMetric::kMeanReceiverError).stats.mean();
  EXPECT_GT(small, 0.0);  // the thin sample genuinely errs here
  EXPECT_LE(large, small);
}

TEST(SweepDriver, RejectsBadConfig) {
  SweepConfig config = smallConfig();
  config.runs = 0;
  EXPECT_THROW(SweepDriver{config}, PreconditionError);
  config = smallConfig();
  config.sampleFractions = {};
  EXPECT_THROW(SweepDriver{config}, PreconditionError);
  config = smallConfig();
  config.sampleFractions = {0.5, 1.25};
  EXPECT_THROW(SweepDriver{config}, PreconditionError);
}

}  // namespace
}  // namespace mcfair::sim
