// util::ThreadPool contract tests, written to be meaningful under TSan
// (the CI tsan job runs this binary): the spin-then-block wakeup path is
// hammered with thousands of back-to-back generations — exactly the
// pattern where a worker leaves the spin loop concurrently with the
// publisher bumping the generation — plus the exception, reuse, and
// inline-execution paths.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace mcfair::util {
namespace {

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  constexpr std::size_t kShards = 257;
  std::vector<std::atomic<int>> hits(kShards);
  auto fn = [&](std::size_t s) {
    hits[s].fetch_add(1, std::memory_order_relaxed);
  };
  pool.forEachShard(kShards, fn);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(ThreadPool, BackToBackGenerationsHitSpinAndBlockPaths) {
  // Many tiny submissions in a tight loop: workers that spun catch the
  // next generation without sleeping; workers that blocked take the
  // condvar path. Both must agree on the totals. A second pool with the
  // spin disabled pins the pure-blocking path explicitly.
  for (const std::size_t spin : {ThreadPool::kDefaultSpin, std::size_t{0}}) {
    ThreadPool pool(4, spin);
    std::atomic<std::uint64_t> total{0};
    constexpr std::uint64_t kRounds = 2000;
    constexpr std::size_t kShards = 8;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      auto fn = [&](std::size_t s) {
        total.fetch_add(s + 1, std::memory_order_relaxed);
      };
      pool.forEachShard(kShards, fn);
    }
    EXPECT_EQ(total.load(), kRounds * (kShards * (kShards + 1) / 2))
        << "spin=" << spin;
  }
}

TEST(ThreadPool, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workerCount(), 1u);
  std::vector<std::size_t> order;
  auto fn = [&](std::size_t s) { order.push_back(s); };
  pool.forEachShard(5, fn);
  std::vector<std::size_t> expected(5);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroShardsIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  auto fn = [&](std::size_t) { ran = true; };
  pool.forEachShard(0, fn);
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ShardExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    auto throwing = [&](std::size_t s) {
      if (s == 3) throw std::runtime_error("boom");
    };
    EXPECT_THROW(pool.forEachShard(64, throwing), std::runtime_error);
    std::atomic<std::size_t> count{0};
    auto counting = [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    };
    pool.forEachShard(16, counting);
    EXPECT_EQ(count.load(), 16u);
  }
}

TEST(ThreadPool, ConcurrentShardsSeeDistinctIndices) {
  // Every shard writes to its own slot; TSan would flag any aliasing.
  ThreadPool pool(4);
  constexpr std::size_t kShards = 512;
  std::vector<std::size_t> slot(kShards, 0);
  auto fn = [&](std::size_t s) { slot[s] = s + 1; };
  pool.forEachShard(kShards, fn);
  for (std::size_t s = 0; s < kShards; ++s) EXPECT_EQ(slot[s], s + 1);
}

TEST(ThreadPool, NestedSubmitFromWorkerOnDistinctPools) {
  // Submissions from INSIDE a worker are legal as long as they target a
  // DIFFERENT pool (one job slot per pool: nesting on the same pool
  // would deadlock). This is the shape a parallel driver takes when a
  // shard fans out again — hammer it for many rounds so TSan sees the
  // outer wakeup path race against inner submissions.
  ThreadPool outer(4);
  std::vector<std::unique_ptr<ThreadPool>> inner;
  for (int s = 0; s < 4; ++s) inner.push_back(std::make_unique<ThreadPool>(2));

  constexpr std::size_t kRounds = 200;
  constexpr std::size_t kInnerShards = 16;
  std::atomic<std::size_t> total{0};
  for (std::size_t round = 0; round < kRounds; ++round) {
    auto outerFn = [&](std::size_t s) {
      auto innerFn = [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      };
      inner[s]->forEachShard(kInnerShards, innerFn);
    };
    outer.forEachShard(inner.size(), outerFn);
  }
  EXPECT_EQ(total.load(), kRounds * inner.size() * kInnerShards);
}

TEST(ThreadPool, NestedSubmitPropagatesInnerExceptions) {
  // An exception thrown by an inner pool's shard must surface through
  // the outer shard, and both pools must stay reusable afterwards.
  ThreadPool outer(3);
  std::vector<std::unique_ptr<ThreadPool>> inner;
  for (int s = 0; s < 3; ++s) inner.push_back(std::make_unique<ThreadPool>(2));

  for (int round = 0; round < 25; ++round) {
    auto outerThrowing = [&](std::size_t s) {
      auto innerFn = [&](std::size_t is) {
        if (s == 1 && is == 3) throw std::runtime_error("inner boom");
      };
      inner[s]->forEachShard(8, innerFn);
    };
    EXPECT_THROW(outer.forEachShard(inner.size(), outerThrowing),
                 std::runtime_error);

    std::atomic<std::size_t> count{0};
    auto outerCounting = [&](std::size_t s) {
      auto innerFn = [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      };
      inner[s]->forEachShard(8, innerFn);
    };
    outer.forEachShard(inner.size(), outerCounting);
    EXPECT_EQ(count.load(), inner.size() * 8u);
  }
}

}  // namespace
}  // namespace mcfair::util
