// Max-min solver on classic unicast configurations (sanity against the
// textbook behaviour of progressive filling, Bertsekas & Gallagher).
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "net/network.hpp"

namespace mcfair::fairness {
namespace {

using graph::LinkId;
using net::Network;

TEST(MaxMinUnicast, EqualShareOnSingleLink) {
  Network n;
  const LinkId l = n.addLink(6.0);
  for (int i = 0; i < 3; ++i) n.addSession(net::makeUnicastSession({l}));
  const auto result = solveMaxMinFair(n);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.allocation.rate({i, 0}), 2.0, 1e-9);
  }
  EXPECT_NEAR(result.usage.linkRate[0], 6.0, 1e-9);
}

TEST(MaxMinUnicast, TandemBottlenecks) {
  // S1: {l1}, S2: {l1,l2}, S3: {l2}; c1=1, c2=2.
  // Progressive filling: S1=S2=0.5 (l1 saturates), then S3=1.5.
  Network n;
  const LinkId l1 = n.addLink(1.0);
  const LinkId l2 = n.addLink(2.0);
  n.addSession(net::makeUnicastSession({l1}, net::kUnlimitedRate, "S1"));
  n.addSession(net::makeUnicastSession({l1, l2}, net::kUnlimitedRate, "S2"));
  n.addSession(net::makeUnicastSession({l2}, net::kUnlimitedRate, "S3"));
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 0.5, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 0.5, 1e-9);
  EXPECT_NEAR(a.rate({2, 0}), 1.5, 1e-9);
}

TEST(MaxMinUnicast, SigmaCapReleasesBandwidth) {
  // Three sessions on one link of capacity 9; one is capped at 1.
  Network n;
  const LinkId l = n.addLink(9.0);
  n.addSession(net::makeUnicastSession({l}, 1.0));
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  const auto a = maxMinFairAllocation(n);
  EXPECT_NEAR(a.rate({0, 0}), 1.0, 1e-9);
  EXPECT_NEAR(a.rate({1, 0}), 4.0, 1e-9);
  EXPECT_NEAR(a.rate({2, 0}), 4.0, 1e-9);
}

TEST(MaxMinUnicast, AllSigmaCappedLeavesSlack) {
  Network n;
  const LinkId l = n.addLink(100.0);
  n.addSession(net::makeUnicastSession({l}, 2.0));
  n.addSession(net::makeUnicastSession({l}, 3.0));
  const auto result = solveMaxMinFair(n);
  EXPECT_NEAR(result.allocation.rate({0, 0}), 2.0, 1e-9);
  EXPECT_NEAR(result.allocation.rate({1, 0}), 3.0, 1e-9);
  EXPECT_LT(result.usage.linkRate[0], 100.0);
}

TEST(MaxMinUnicast, FiveSessionChain) {
  // Links l0..l3 with capacities 4, 3, 2, 1; session i crosses links
  // i..3 (nested). The receiver crossing everything is limited by l3.
  Network n;
  const std::array<double, 4> caps{4.0, 3.0, 2.0, 1.0};
  std::vector<LinkId> links;
  for (double c : caps) links.push_back(n.addLink(c));
  for (std::size_t i = 0; i < 4; ++i) {
    n.addSession(net::makeUnicastSession(
        std::vector<LinkId>(links.begin() + static_cast<long>(i),
                            links.end())));
  }
  // Fill: all 4 rise; l3 (cap 1, 4 crossings) binds at 0.25 -> everyone
  // freezes at 0.25 since every session crosses l3.
  const auto a = maxMinFairAllocation(n);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.rate({i, 0}), 0.25, 1e-9);
  }
}

TEST(MaxMinUnicast, ParkingLot) {
  // The classic parking-lot: long session over l0,l1,l2 (all capacity 1)
  // against one short session per link. Equal split 0.5 everywhere.
  Network n;
  std::vector<LinkId> links{n.addLink(1.0), n.addLink(1.0), n.addLink(1.0)};
  n.addSession(net::makeUnicastSession({links[0], links[1], links[2]}));
  for (const LinkId l : links) n.addSession(net::makeUnicastSession({l}));
  const auto a = maxMinFairAllocation(n);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.rate({i, 0}), 0.5, 1e-9);
  }
}

TEST(MaxMinUnicast, UnicastTypeIrrelevant) {
  // A unicast session behaves the same whether labeled single- or
  // multi-rate (Section 2).
  Network n;
  const LinkId l = n.addLink(3.0);
  n.addSession(net::makeUnicastSession({l}));
  n.addSession(net::makeUnicastSession({l}));
  const auto base = maxMinFairAllocation(n);
  const auto flipped = maxMinFairAllocation(
      n.withSessionType(0, net::SessionType::kSingleRate));
  EXPECT_NEAR(base.rate({0, 0}), flipped.rate({0, 0}), 1e-9);
  EXPECT_NEAR(base.rate({1, 0}), flipped.rate({1, 0}), 1e-9);
}

TEST(MaxMinUnicast, EmptyNetwork) {
  Network n;
  n.addLink(1.0);
  const auto result = solveMaxMinFair(n);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(MaxMinUnicast, ResultIsFeasibleAndSaturating) {
  // Every unconstrained-by-sigma receiver must cross a fully utilized
  // link (unicast fairness property 1).
  Network n;
  const LinkId l0 = n.addLink(5.0);
  const LinkId l1 = n.addLink(2.0);
  const LinkId l2 = n.addLink(7.0);
  n.addSession(net::makeUnicastSession({l0, l1}));
  n.addSession(net::makeUnicastSession({l1, l2}));
  n.addSession(net::makeUnicastSession({l0, l2}));
  const auto result = solveMaxMinFair(n);
  EXPECT_TRUE(isFeasible(n, result.allocation, 1e-7));
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& path = n.session(i).receivers[0].dataPath;
    bool saturated = false;
    for (const LinkId l : path) {
      if (result.usage.linkRate[l.value] >= n.capacity(l) - 1e-6) {
        saturated = true;
      }
    }
    EXPECT_TRUE(saturated) << "session " << i;
  }
}

}  // namespace
}  // namespace mcfair::fairness
