// Tests for multi-sender sessions (Section 5 extension).
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"
#include "fairness/properties.hpp"
#include "net/topologies.hpp"
#include "util/error.hpp"

namespace mcfair::net {
namespace {

using graph::LinkId;
using graph::NodeId;

// Line: s0 - a - b - s1, receivers at a and b.
graph::Graph line() {
  graph::Graph g;
  g.addNodes(4);
  g.addLink(NodeId{0}, NodeId{1}, 10.0);  // l0: s0-a
  g.addLink(NodeId{1}, NodeId{2}, 10.0);  // l1: a-b
  g.addLink(NodeId{2}, NodeId{3}, 10.0);  // l2: b-s1
  return g;
}

TEST(MultiSender, ReceiversPickNearestSender) {
  RoutedMultiSenderSpec spec;
  spec.senders = {NodeId{0}, NodeId{3}};
  spec.receivers = {NodeId{1}, NodeId{2}};
  spec.name = "S";
  const Network n = fromGraphMultiSender(line(), {spec});
  // Receiver at a is one hop from s0; receiver at b one hop from s1.
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            (std::vector<LinkId>{LinkId{0}}));
  EXPECT_EQ(n.session(0).receivers[1].dataPath,
            (std::vector<LinkId>{LinkId{2}}));
}

TEST(MultiSender, TieBreaksTowardEarlierSender) {
  graph::Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 5.0);  // l0: sA-r
  g.addLink(NodeId{2}, NodeId{1}, 5.0);  // l1: sB-r
  RoutedMultiSenderSpec spec;
  spec.senders = {NodeId{0}, NodeId{2}};
  spec.receivers = {NodeId{1}};
  const Network n = fromGraphMultiSender(g, {spec});
  EXPECT_EQ(n.session(0).receivers[0].dataPath,
            (std::vector<LinkId>{LinkId{0}}));
}

TEST(MultiSender, SingleSenderMatchesFromGraph) {
  graph::Graph g = line();
  RoutedMultiSenderSpec multi;
  multi.senders = {NodeId{0}};
  multi.receivers = {NodeId{2}, NodeId{3}};
  RoutedSessionSpec single;
  single.sender = NodeId{0};
  single.receivers = {NodeId{2}, NodeId{3}};
  const Network a = fromGraphMultiSender(g, {multi});
  const Network b = fromGraph(g, {single});
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(a.session(0).receivers[k].dataPath,
              b.session(0).receivers[k].dataPath);
  }
}

TEST(MultiSender, SecondSenderRelievesSharedBottleneck) {
  // One sender: both receivers share the thin first hop. Adding a second
  // sender next to receiver b reroutes it, and the max-min rates rise.
  graph::Graph g;
  g.addNodes(5);
  g.addLink(NodeId{0}, NodeId{1}, 4.0);   // l0: thin shared first hop
  g.addLink(NodeId{1}, NodeId{2}, 10.0);  // l1: to receiver a
  g.addLink(NodeId{1}, NodeId{3}, 10.0);  // l2: to receiver b
  g.addLink(NodeId{4}, NodeId{3}, 10.0);  // l3: second sender near b
  RoutedMultiSenderSpec one;
  one.senders = {NodeId{0}};
  one.receivers = {NodeId{2}, NodeId{3}};
  RoutedMultiSenderSpec two = one;
  two.senders = {NodeId{0}, NodeId{4}};
  const auto aOne = fairness::maxMinFairAllocation(
      fromGraphMultiSender(g, {one}));
  const auto aTwo = fairness::maxMinFairAllocation(
      fromGraphMultiSender(g, {two}));
  // With one sender, u_{l0} = max(r_a, r_b): both rise to 4 together
  // (multicast shares the hop). With the second sender, b leaves l0 and
  // both reach 10 (their tails).
  EXPECT_NEAR(aOne.rate({0, 0}), 4.0, 1e-9);
  EXPECT_NEAR(aOne.rate({0, 1}), 4.0, 1e-9);
  EXPECT_NEAR(aTwo.rate({0, 0}), 4.0, 1e-9);
  EXPECT_NEAR(aTwo.rate({0, 1}), 10.0, 1e-9);
}

TEST(MultiSender, FairnessMachineryApplies) {
  // Theorem 1 properties hold for the multi-sender multi-rate session's
  // max-min allocation (the model is sender-agnostic).
  graph::Graph g = line();
  RoutedMultiSenderSpec spec;
  spec.senders = {NodeId{0}, NodeId{3}};
  spec.receivers = {NodeId{1}, NodeId{2}};
  RoutedSessionSpec cross;
  cross.sender = NodeId{0};
  cross.receivers = {NodeId{2}};
  cross.name = "unicast";
  Network n = fromGraphMultiSender(g, {spec});
  // Add unicast cross traffic sharing l0 and l1.
  n.addSession(makeUnicastSession(
      {LinkId{0}, LinkId{1}}, kUnlimitedRate, "x"));
  const auto a = fairness::maxMinFairAllocation(n);
  for (const auto& [name, check] : fairness::checkAllProperties(n, a)) {
    EXPECT_TRUE(check.holds) << name;
  }
}

TEST(MultiSender, Validation) {
  graph::Graph g = line();
  RoutedMultiSenderSpec noSenders;
  noSenders.receivers = {NodeId{1}};
  EXPECT_THROW(fromGraphMultiSender(g, {noSenders}), PreconditionError);
  RoutedMultiSenderSpec noReceivers;
  noReceivers.senders = {NodeId{0}};
  EXPECT_THROW(fromGraphMultiSender(g, {noReceivers}), PreconditionError);
  graph::Graph disconnected;
  disconnected.addNodes(3);
  disconnected.addLink(NodeId{0}, NodeId{1}, 1.0);
  RoutedMultiSenderSpec unreachable;
  unreachable.senders = {NodeId{0}};
  unreachable.receivers = {NodeId{2}};
  EXPECT_THROW(fromGraphMultiSender(disconnected, {unreachable}),
               ModelError);
}

}  // namespace
}  // namespace mcfair::net
