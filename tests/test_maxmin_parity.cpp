// Randomized parity tests: the incremental filling engine behind
// solveMaxMinFair must reproduce the retained reference implementation
// (solveMaxMinFairReference, the original per-round rebuild) on every
// network, within the solver tolerance. Four families x many seeds cover
// the closed-form path, mixed session types, the weighted (non-unit)
// path, and the nonlinear bisection path.
#include <gtest/gtest.h>

#include <memory>

#include "fairness/maxmin.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"

namespace mcfair::fairness {
namespace {

using net::Network;

// Rates agree within `tol`; both solvers are deterministic, so this is
// run once per network. The shared engine instance is rebound across
// networks, which also exercises workspace reuse on changing shapes.
void expectParity(const Network& n, MaxMinSolver& engine, double tol,
                  const std::string& label) {
  const MaxMinResult& incremental = engine.solve(n);
  const MaxMinResult reference = solveMaxMinFairReference(n);
  for (const auto ref : n.receiverRefs()) {
    EXPECT_NEAR(incremental.allocation.rate(ref), reference.allocation.rate(ref),
                tol)
        << label << ": receiver (" << ref.session << "," << ref.receiver
        << ")";
  }
  for (std::uint32_t j = 0; j < n.linkCount(); ++j) {
    EXPECT_NEAR(incremental.usage.linkRate[j], reference.usage.linkRate[j],
                tol * 10)
        << label << ": link " << j;
  }
  EXPECT_EQ(incremental.rounds, reference.rounds) << label;
}

// A generator complementing net::randomNetwork: arbitrary link-set
// data-paths (not tree-routed), optional non-unit weights, optional
// finite sigma. Exercises path shapes the routed generator cannot.
Network randomLinkSetNetwork(util::Rng& rng, bool randomWeights) {
  Network n;
  const std::size_t links = 3 + rng.below(8);
  std::vector<graph::LinkId> ids;
  for (std::size_t j = 0; j < links; ++j) {
    ids.push_back(n.addLink(rng.uniform(1.0, 12.0)));
  }
  const std::size_t sessions = 1 + rng.below(5);
  for (std::size_t i = 0; i < sessions; ++i) {
    net::Session s;
    s.type = rng.bernoulli(0.4) ? net::SessionType::kSingleRate
                                : net::SessionType::kMultiRate;
    if (rng.bernoulli(0.3)) s.maxRate = rng.uniform(0.5, 6.0);
    const std::size_t receivers = 1 + rng.below(4);
    const double sharedWeight = rng.uniform(0.25, 4.0);
    for (std::size_t k = 0; k < receivers; ++k) {
      std::vector<graph::LinkId> path;
      const std::size_t hops = 1 + rng.below(std::min<std::size_t>(links, 4));
      for (std::size_t h = 0; h < hops; ++h) {
        path.push_back(ids[rng.below(links)]);
      }
      auto r = net::makeReceiver(std::move(path));
      if (randomWeights) {
        // Single-rate sessions require uniform weights.
        r.weight = s.type == net::SessionType::kSingleRate
                       ? sharedWeight
                       : rng.uniform(0.25, 4.0);
      }
      s.receivers.push_back(std::move(r));
    }
    n.addSession(std::move(s));
  }
  return n;
}

TEST(MaxMinParity, RoutedRandomNetworks) {
  MaxMinSolver engine;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    util::Rng rng(seed);
    net::RandomNetworkOptions opts;
    opts.sessions = 2 + seed % 5;
    opts.singleRateProbability = 0.4;
    const Network n = net::randomNetwork(rng, opts);
    expectParity(n, engine, 1e-6, "routed seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, LinkSetNetworks) {
  MaxMinSolver engine;
  for (std::uint64_t seed = 100; seed < 160; ++seed) {
    util::Rng rng(seed);
    const Network n = randomLinkSetNetwork(rng, /*randomWeights=*/false);
    expectParity(n, engine, 1e-6, "linkset seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, WeightedNetworks) {
  MaxMinSolver engine;
  for (std::uint64_t seed = 200; seed < 240; ++seed) {
    util::Rng rng(seed);
    const Network n = randomLinkSetNetwork(rng, /*randomWeights=*/true);
    expectParity(n, engine, 1e-6, "weighted seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, WeightedNonlinearNetworks) {
  // Non-unit weights AND a nonlinear v_i together: the bisection path
  // with weighted upper bounds (capacity/weight keys) and weighted
  // active rates in the group gathers.
  MaxMinSolver engine;
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    util::Rng rng(seed);
    Network base = randomLinkSetNetwork(rng, /*randomWeights=*/true);
    Network n = std::move(base);
    const auto fn = std::make_shared<const net::RandomJoinExpected>(80.0);
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      if (i % 2 == 0) n = n.withLinkRateFunction(i, fn);
    }
    expectParity(n, engine, 1e-6,
                 "weighted-nonlinear seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, NonlinearBisectionPath) {
  MaxMinSolver engine;
  for (std::uint64_t seed = 300; seed < 330; ++seed) {
    util::Rng rng(seed);
    net::RandomNetworkOptions opts;
    opts.sessions = 2 + seed % 4;
    opts.singleRateProbability = 0.3;
    Network n = net::randomNetwork(rng, opts);
    // RandomJoinExpected is monotone but not rate-linear: it forces the
    // bisection path on every session it is applied to.
    const auto fn = std::make_shared<const net::RandomJoinExpected>(50.0);
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      if (i % 2 == 0) n = n.withLinkRateFunction(i, fn);
    }
    expectParity(n, engine, 1e-6, "nonlinear seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, ConstantFactorRedundancy) {
  MaxMinSolver engine;
  for (std::uint64_t seed = 400; seed < 430; ++seed) {
    util::Rng rng(seed);
    net::RandomNetworkOptions opts;
    opts.sessions = 2 + seed % 4;
    Network n = net::randomNetwork(rng, opts);
    for (std::size_t i = 0; i < n.sessionCount(); ++i) {
      if (i % 2 == 1) {
        n = n.withLinkRateFunction(
            i, std::make_shared<const net::ConstantFactor>(
                   rng.uniform(1.0, 2.5)));
      }
    }
    expectParity(n, engine, 1e-6, "constfactor seed " + std::to_string(seed));
  }
}

TEST(MaxMinParity, PaperTopologies) {
  MaxMinSolver engine;
  expectParity(net::fig1Network(), engine, 1e-9, "fig1");
  expectParity(net::fig2Network(true), engine, 1e-9, "fig2 multi");
  expectParity(net::fig2Network(false), engine, 1e-9, "fig2 single");
  expectParity(net::fig3aNetwork(false), engine, 1e-9, "fig3a");
  expectParity(net::fig3bNetwork(false), engine, 1e-9, "fig3b");
  expectParity(net::fig4Network(), engine, 1e-9, "fig4");
  expectParity(net::singleBottleneckNetwork(64, 6, 1000.0, 2.0), engine,
               1e-9, "bottleneck");
}

}  // namespace
}  // namespace mcfair::fairness
