// Tests for fairness::SampledSolver (fairness/sampled.hpp): the
// fraction-1.0 control is bit-identical to the exact solver, the sample
// is deterministic per seed and repaired for full session/link coverage,
// capacity-only rebinds match a fresh bind bitwise, and the error bounds
// hold — and shrink with sample size in expectation — over a randomized
// 50-network suite of tree / BA-mesh / Waxman scenario topologies
// including the scale-free hub-bottleneck stress.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "fairness/sampled.hpp"
#include "net/topologies.hpp"
#include "sim/scenario.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::fairness {
namespace {

using net::Network;
using net::ReceiverRef;

// A weighted shared-bottleneck star: `sessions` sessions cross one
// backbone link and private tails; weights and tail capacities vary, and
// every other session carries a ConstantFactor link-rate function so the
// sampled slope model's factor path is exercised.
Network weightedStar(std::size_t sessions, std::size_t receiversPerSession,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  Network n;
  const graph::LinkId shared = n.addLink(2.0 * static_cast<double>(sessions));
  for (std::size_t i = 0; i < sessions; ++i) {
    net::Session s;
    s.type = net::SessionType::kMultiRate;
    s.name = "S" + std::to_string(i);
    if (i % 2 == 1) s.linkRateFn = std::make_shared<net::ConstantFactor>(1.3);
    for (std::size_t k = 0; k < receiversPerSession; ++k) {
      const graph::LinkId tail = n.addLink(rng.uniform(0.5, 4.0));
      net::Receiver r;
      r.dataPath = {shared, tail};
      r.weight = rng.uniform(0.5, 2.0);
      s.receivers.push_back(std::move(r));
    }
    n.addSession(std::move(s));
  }
  return n;
}

void expectBitIdentical(const Network& n, const MaxMinResult& exact,
                        SampledSolver& sampled) {
  const MaxMinResult& approx = sampled.solve(n);
  EXPECT_EQ(approx.rounds, exact.rounds);
  const Allocation& estimate = sampled.estimateAllocation();
  for (const ReceiverRef ref : n.receiverRefs()) {
    EXPECT_EQ(estimate.rate(ref), exact.allocation.rate(ref))
        << "session " << ref.session << " receiver " << ref.receiver;
  }
  const SampledErrorReport report = sampled.errorReport(exact);
  EXPECT_EQ(report.meanReceiverError, 0.0);
  EXPECT_EQ(report.maxReceiverError, 0.0);
  EXPECT_EQ(report.maxLinkError, 0.0);
  EXPECT_EQ(report.sampledReceivers, report.totalReceivers);
}

TEST(SampledSolver, FullFractionBitIdenticalOnWeightedStar) {
  const Network n = weightedStar(12, 4, 99);
  MaxMinSolver exact;
  const MaxMinResult& reference = exact.solve(n);

  SampledOptions options;
  options.sampleFraction = 1.0;
  SampledSolver sampled(options);
  expectBitIdentical(n, reference, sampled);
}

TEST(SampledSolver, FullFractionBitIdenticalOnScenarioTopologies) {
  for (const char* name :
       {"scale-free-backbone", "meshed-backbone", "waxman-regional"}) {
    const sim::ScenarioSpec* base = sim::findScenario(name);
    ASSERT_NE(base, nullptr) << name;
    sim::ScenarioSpec spec = *base;
    spec.sessions = 24;
    spec.seed = 5;
    const sim::Scenario scenario = sim::buildScenario(spec);

    MaxMinSolver exact;
    const MaxMinResult& reference = exact.solve(scenario.network);
    SampledOptions options;
    options.sampleFraction = 1.0;
    SampledSolver sampled(options);
    expectBitIdentical(scenario.network, reference, sampled);
  }
}

TEST(SampledSolver, SampleIsDeterministicPerSeed) {
  const Network n = weightedStar(16, 6, 3);
  SampledOptions options;
  options.sampleFraction = 0.3;
  options.seed = 17;

  SampledSolver a(options);
  SampledSolver b(options);
  a.solve(n);
  b.solve(n);
  EXPECT_EQ(a.sampledReceiverCount(), b.sampledReceiverCount());
  for (const ReceiverRef ref : n.receiverRefs()) {
    EXPECT_EQ(a.sampled(ref), b.sampled(ref));
  }
  const Allocation& ea = a.estimateAllocation();
  const Allocation& eb = b.estimateAllocation();
  for (const ReceiverRef ref : n.receiverRefs()) {
    EXPECT_EQ(ea.rate(ref), eb.rate(ref));
  }

  // A different seed draws a different sample (overwhelmingly likely on
  // 96 receivers at fraction 0.3).
  options.seed = 18;
  SampledSolver c(options);
  c.solve(n);
  bool anyDifference = false;
  for (const ReceiverRef ref : n.receiverRefs()) {
    if (a.sampled(ref) != c.sampled(ref)) anyDifference = true;
  }
  EXPECT_TRUE(anyDifference);
}

TEST(SampledSolver, CoverageRepairKeepsEverySessionAndLink) {
  // A fraction this small would naturally leave most sessions and links
  // empty; the repair pass must restore the floor everywhere.
  const Network n = weightedStar(20, 5, 8);
  SampledOptions options;
  options.sampleFraction = 0.01;
  options.seed = 2;
  SampledSolver sampled(options);
  sampled.bind(n);

  for (std::size_t i = 0; i < n.sessionCount(); ++i) {
    std::size_t inSample = 0;
    for (std::size_t k = 0; k < n.session(i).receivers.size(); ++k) {
      if (sampled.sampled({i, k})) ++inSample;
    }
    EXPECT_GE(inSample, 1u) << "session " << i;
  }
  for (std::size_t j = 0; j < n.linkCount(); ++j) {
    const auto onLink =
        n.receiversOnLink(graph::LinkId{static_cast<std::uint32_t>(j)});
    // Shared links must keep a witness; private tails are exempt.
    if (onLink.size() < 2) continue;
    std::size_t witnesses = 0;
    for (const ReceiverRef ref : onLink) {
      if (sampled.sampled(ref)) ++witnesses;
    }
    EXPECT_GE(witnesses, 1u) << "link " << j;
  }
  // Sampling must actually thin the population: the tails' lone
  // receivers may no longer be force-included wholesale.
  EXPECT_LT(sampled.sampledReceiverCount(), n.receiverCount() / 2);
}

TEST(SampledSolver, CapacityRefreshMatchesFreshBind) {
  Network n = weightedStar(10, 4, 21);
  SampledOptions options;
  options.sampleFraction = 0.4;
  options.seed = 6;

  SampledSolver incremental(options);
  incremental.solve(n);

  // Fault churn: degrade the shared link, kill one tail, repair both.
  const std::vector<std::pair<std::uint32_t, double>> churn = {
      {0, 8.0}, {3, 0.0}, {0, 20.0}, {3, 1.5}};
  for (const auto& [link, capacity] : churn) {
    n.setCapacity(graph::LinkId{link}, capacity);
    incremental.solve(n);
    const Allocation& fast = incremental.estimateAllocation();

    SampledSolver fresh(options);
    fresh.solve(n);
    const Allocation& slow = fresh.estimateAllocation();
    for (const ReceiverRef ref : n.receiverRefs()) {
      EXPECT_EQ(fast.rate(ref), slow.rate(ref))
          << "link " << link << " capacity " << capacity;
    }
  }
}

TEST(SampledSolver, EstimateRespectsSessionCeilings) {
  const Network n = weightedStar(14, 5, 30);
  SampledOptions options;
  options.sampleFraction = 0.25;
  options.seed = 4;
  SampledSolver sampled(options);
  sampled.solve(n);
  const Allocation& estimate = sampled.estimateAllocation();
  for (const ReceiverRef ref : n.receiverRefs()) {
    const double rate = estimate.rate(ref);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, n.session(ref.session).maxRate);
    EXPECT_TRUE(std::isfinite(rate));
  }
}

TEST(SampledSolver, RejectsOutOfRangeFraction) {
  SampledOptions options;
  options.sampleFraction = 0.0;
  EXPECT_THROW(SampledSolver{options}, PreconditionError);
  options.sampleFraction = 1.5;
  EXPECT_THROW(SampledSolver{options}, PreconditionError);
}

TEST(SampledSolver, EnvFallbackDefaultsToQuarter) {
  // Only meaningful when the variable is absent from the environment —
  // skip silently under an externally-set MCFAIR_SAMPLE_FRAC.
  if (std::getenv("MCFAIR_SAMPLE_FRAC") != nullptr) GTEST_SKIP();
  SampledSolver sampled;
  EXPECT_EQ(sampled.sampleFraction(), 0.25);
}

// The error-vs-sample-size suite: 50 randomized scenario networks across
// the three routed/stressed topology families of the catalog. For every
// network the error at fraction 0.5 and at 0.05 is measured against the
// exact oracle; each must be bounded, and the mean over the suite must
// not increase with the sample size (monotone in expectation — single
// networks may invert, the aggregate must not).
TEST(SampledSolver, ErrorBoundsOverRandomizedSuite) {
  const char* families[] = {"scale-free-backbone", "meshed-backbone",
                            "waxman-regional"};
  double sumSmall = 0.0;  // fraction 0.05
  double sumLarge = 0.0;  // fraction 0.5
  std::size_t networks = 0;

  for (std::size_t trial = 0; trial < 50; ++trial) {
    const sim::ScenarioSpec* base = sim::findScenario(families[trial % 3]);
    ASSERT_NE(base, nullptr);
    sim::ScenarioSpec spec = *base;
    spec.seed = 1000 + trial;
    spec.sessions = 20 + (trial % 4) * 8;
    spec.receiversPerSession = 6;
    // Heterogeneous private tails: without them the load-proportionally
    // provisioned populations are symmetric and the HT-scaled estimate
    // is exact at every fraction (zero error proves nothing here).
    spec.tailCapacityMin = 1.0;
    spec.tailCapacityMax = 16.0;
    // Every third network stresses the hub bottleneck: few backbone
    // nodes, many sessions forced across the same high-degree edges.
    if (trial % 3 == 0) {
      spec.backboneNodes = 12;
      spec.sessions = 48;
    }
    const sim::Scenario scenario = sim::buildScenario(spec);

    MaxMinSolver exact;
    const MaxMinResult& reference = exact.solve(scenario.network);

    double errs[2] = {0.0, 0.0};
    const double fractions[2] = {0.05, 0.5};
    for (int fi = 0; fi < 2; ++fi) {
      SampledOptions options;
      options.sampleFraction = fractions[fi];
      options.seed = spec.seed;
      SampledSolver sampled(options);
      sampled.solve(scenario.network);
      const SampledErrorReport report = sampled.errorReport(reference);

      EXPECT_TRUE(std::isfinite(report.meanReceiverError));
      EXPECT_TRUE(std::isfinite(report.maxReceiverError));
      EXPECT_TRUE(std::isfinite(report.maxLinkError));
      EXPECT_GE(report.maxReceiverError, report.meanReceiverError);
      // Loose absolute bounds: the estimate may be off, never absurd.
      EXPECT_LT(report.meanReceiverError, 2.0) << spec.name << spec.seed;
      EXPECT_LT(report.maxLinkError, 5.0) << spec.name << spec.seed;
      EXPECT_GE(report.sampledReceivers, scenario.network.sessionCount());
      EXPECT_LE(report.sampledReceivers, report.totalReceivers);
      errs[fi] = report.meanReceiverError;
    }
    sumSmall += errs[0];
    sumLarge += errs[1];
    ++networks;
  }

  ASSERT_EQ(networks, 50u);
  // Monotone in expectation: half the receivers must estimate no worse
  // on average than one receiver in twenty.
  EXPECT_LE(sumLarge, sumSmall) << "mean err(0.5)=" << sumLarge / 50.0
                                << " mean err(0.05)=" << sumSmall / 50.0;
}

}  // namespace
}  // namespace mcfair::fairness
