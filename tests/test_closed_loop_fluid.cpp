// Parity and behavior tests for the fluid fast-forward engine
// (runClosedLoopSimulationFluid): wherever its steady-state certificate
// engages, the closed-form advance must reproduce the per-packet engines
// EXACTLY — same delivered counts, link counters, level integrals, and
// bin timelines, compared with EXPECT_EQ, not EXPECT_NEAR. Where the
// certificate cannot hold (endogenous congestion, exogenous loss) the
// engine must keep executing per-packet, making it trivially identical
// — including every RNG draw — and must say so via fluidTime == 0.
#include <gtest/gtest.h>

#include <string>

#include "net/network.hpp"
#include "net/topologies.hpp"
#include "sim/closed_loop.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {
namespace {

void expectIdentical(const ClosedLoopResult& a, const ClosedLoopResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.measuredRate, b.measuredRate) << label;
  EXPECT_EQ(a.linkThroughput, b.linkThroughput) << label;
  EXPECT_EQ(a.linkDropRate, b.linkDropRate) << label;
  EXPECT_EQ(a.sessionLinkRate, b.sessionLinkRate) << label;
  EXPECT_EQ(a.meanLevel, b.meanLevel) << label;
  EXPECT_EQ(a.binRates, b.binRates) << label;
}

// An uncongested shared backbone: N sessions of `layers` exponential
// layers (aggregate rate 2^(layers-1)) against capacity with headroom.
net::Network uncongestedBackbone(std::size_t sessions, std::size_t layers,
                                 double headroom = 1.5) {
  net::Network n;
  const double agg = static_cast<double>(std::uint64_t{1} << (layers - 1));
  const auto backbone =
      n.addLink(agg * headroom * static_cast<double>(sessions));
  for (std::size_t i = 0; i < sessions; ++i) {
    n.addSession(net::makeUnicastSession({backbone}));
  }
  return n;
}

TEST(ClosedLoopFluid, EngagesAfterClimbAndMatchesBothEngines) {
  // Receivers start at level 1 and climb to the top layer per packet —
  // the per-packet transient — after which the certificate holds and the
  // rest of the run is closed out analytically. Bins and staggered
  // lifetimes exercise the measurement splits and the interval sweep.
  net::Network n = uncongestedBackbone(32, 4);
  ClosedLoopConfig c;
  c.sessions.assign(
      32, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 1});
  c.sessions[3].startTime = 50.0;
  c.sessions[9].stopTime = 300.0;
  c.duration = 400.0;
  c.warmup = 100.0;
  c.rateBinWidth = 37.0;
  c.seed = 21;

  const auto fluid = runClosedLoopSimulationFluid(n, c);
  EXPECT_GT(fluid.fluidTime, 0.0) << "certificate should engage";
  EXPECT_GT(fluid.fluidPackets, 0u);
  expectIdentical(fluid, runClosedLoopSimulation(n, c), "vs event");
  expectIdentical(fluid, runClosedLoopSimulationReference(n, c), "vs ref");
}

TEST(ClosedLoopFluid, ConfigFlagRoutesThroughTheEventEntryPoint) {
  net::Network n = uncongestedBackbone(8, 3);
  ClosedLoopConfig c;
  c.sessions.assign(
      8, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 3});
  c.duration = 300.0;
  c.warmup = 50.0;
  c.fluidFastForward = true;
  const auto viaFlag = runClosedLoopSimulation(n, c);
  const auto direct = runClosedLoopSimulationFluid(n, c);
  EXPECT_GT(viaFlag.fluidTime, 0.0);
  EXPECT_EQ(viaFlag.fluidTime, direct.fluidTime);
  EXPECT_EQ(viaFlag.fluidPackets, direct.fluidPackets);
  expectIdentical(viaFlag, direct, "flag vs direct");
}

TEST(ClosedLoopFluid, BornAbsorbingPopulationIsClosedOutEntirely) {
  // initialLevel == layers: absorbing from construction, so the very
  // first event already passes the certificate and every packet of the
  // run is accounted analytically.
  net::Network n = uncongestedBackbone(16, 4);
  ClosedLoopConfig c;
  c.sessions.assign(
      16, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 4, 4});
  c.duration = 250.0;
  c.warmup = 50.0;
  c.seed = 3;
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  // The switch happens at the first pending packet, so (almost) the
  // whole horizon is covered and zero packets were executed.
  EXPECT_GT(fluid.fluidTime, c.duration - 1.0);
  EXPECT_GT(fluid.fluidPackets, 0u);
  expectIdentical(fluid, runClosedLoopSimulationReference(n, c), "vs ref");
}

TEST(ClosedLoopFluid, BornAbsorbingArrivalsSplitTheCertificateIntervals) {
  // Sessions arriving and departing mid-run while the fluid mode is
  // already engaged: the certificate must prove the no-drop bound across
  // every lifetime boundary (load steps up at each arrival).
  net::Network n = uncongestedBackbone(12, 3, 2.0);
  ClosedLoopConfig c;
  c.sessions.assign(
      12, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 3});
  for (std::size_t i = 0; i < 6; ++i) {
    c.sessions[i].startTime = 40.0 * static_cast<double>(i + 1);
  }
  c.sessions[7].stopTime = 160.0;
  c.sessions[8].stopTime = 90.0;
  c.duration = 400.0;
  c.warmup = 20.0;
  c.rateBinWidth = 50.0;
  c.seed = 77;
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  EXPECT_GT(fluid.fluidTime, c.duration - 1.0) << "should engage at once";
  expectIdentical(fluid, runClosedLoopSimulation(n, c), "vs event");
  expectIdentical(fluid, runClosedLoopSimulationReference(n, c), "vs ref");
}

TEST(ClosedLoopFluid, RandomizedEligiblePopulationsStayExact) {
  constexpr ProtocolKind kKinds[] = {ProtocolKind::kUncoordinated,
                                     ProtocolKind::kDeterministic,
                                     ProtocolKind::kCoordinated};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed * 1471);
    const std::size_t sessions = 4 + rng.below(12);
    const std::size_t layers = 2 + rng.below(3);
    net::Network n = uncongestedBackbone(sessions, layers,
                                         1.3 + rng.uniform01());
    ClosedLoopConfig c;
    c.duration = 300.0;
    c.warmup = 80.0;
    c.seed = seed;
    if (seed % 2 == 0) c.rateBinWidth = 20.0 + rng.uniform(0.0, 40.0);
    for (std::size_t i = 0; i < sessions; ++i) {
      ClosedLoopSessionConfig sc;
      sc.protocol = kKinds[rng.below(3)];
      sc.layers = layers;
      if (rng.bernoulli(0.3)) sc.stopTime = rng.uniform(150.0, 280.0);
      c.sessions.push_back(sc);
    }
    const auto fluid = runClosedLoopSimulationFluid(n, c);
    EXPECT_GT(fluid.fluidTime, 0.0) << "seed " << seed;
    expectIdentical(fluid, runClosedLoopSimulation(n, c),
                    "event seed " + std::to_string(seed));
    expectIdentical(fluid, runClosedLoopSimulationReference(n, c),
                    "ref seed " + std::to_string(seed));
  }
}

TEST(ClosedLoopFluid, SteadyFluidPresetEngagesAtScale) {
  const ScenarioSpec* base = findScenario("steady-fluid");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 400;
  const Scenario s = buildScenario(spec);
  const auto fluid = runScenario(s);  // preset opts into the fluid mode
  EXPECT_GT(fluid.fluidTime, spec.duration - 1.0);
  expectIdentical(fluid,
                  runClosedLoopSimulationReference(s.network, s.config),
                  "steady-fluid N=400");
}

TEST(ClosedLoopFluid, CongestionKeepsThePerPacketPath) {
  // mega-merge oversubscribes its backbone 2:1 — the rate condition
  // R <= c can never hold, so the certificate must never engage and the
  // trajectory must be the event engine's, bit for bit.
  const ScenarioSpec* base = findScenario("mega-merge");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.sessions = 200;
  const Scenario s = buildScenario(spec);
  const auto fluid = runClosedLoopSimulationFluid(s.network, s.config);
  EXPECT_EQ(fluid.fluidTime, 0.0);
  EXPECT_EQ(fluid.fluidPackets, 0u);
  expectIdentical(fluid, runClosedLoopSimulation(s.network, s.config),
                  "congested mega-merge");
}

TEST(ClosedLoopFluid, ExogenousLossDisarmsFluidAndPreservesRngStreams) {
  // Per-packet Bernoulli / Gilbert-Elliott draws must all happen, so the
  // fluid mode stays disarmed and the runs — including every loss-RNG
  // draw — are identical to the event engine by construction.
  for (const auto kind :
       {LossSpec::Kind::kBernoulli, LossSpec::Kind::kGilbertElliott}) {
    net::Network n = uncongestedBackbone(8, 3);
    ClosedLoopConfig c;
    c.sessions.assign(
        8, ClosedLoopSessionConfig{ProtocolKind::kCoordinated, 3, 3});
    c.duration = 200.0;
    c.warmup = 50.0;
    c.seed = 13;
    LossSpec loss;
    loss.kind = kind;
    loss.rate = 0.02;
    c.linkLoss = [loss](graph::LinkId) { return makeLossModel(loss); };
    const auto fluid = runClosedLoopSimulationFluid(n, c);
    EXPECT_EQ(fluid.fluidTime, 0.0);
    expectIdentical(fluid, runClosedLoopSimulation(n, c),
                    kind == LossSpec::Kind::kBernoulli ? "bernoulli"
                                                       : "gilbert-elliott");
  }
}

TEST(ClosedLoopFluid, FairEpochsAndGapAgreeAcrossEngines) {
  // The fair-epoch reference and fairnessGap are engine-independent
  // post-processing; run them through the fluid path once end to end.
  net::Network n = uncongestedBackbone(6, 3);
  ClosedLoopConfig c;
  c.sessions.assign(
      6, ClosedLoopSessionConfig{ProtocolKind::kDeterministic, 3, 3});
  c.sessions[2].startTime = 60.0;
  c.duration = 240.0;
  c.warmup = 20.0;
  c.computeFairEpochs = true;
  const auto fluid = runClosedLoopSimulationFluid(n, c);
  const auto event = runClosedLoopSimulation(n, c);
  ASSERT_EQ(fluid.fairEpochs.size(), event.fairEpochs.size());
  for (std::size_t e = 0; e < fluid.fairEpochs.size(); ++e) {
    EXPECT_EQ(fluid.fairEpochs[e].begin, event.fairEpochs[e].begin);
    EXPECT_EQ(fluid.fairEpochs[e].end, event.fairEpochs[e].end);
    EXPECT_EQ(fluid.fairEpochs[e].sessions, event.fairEpochs[e].sessions);
    EXPECT_EQ(fluid.fairEpochs[e].fairRate, event.fairEpochs[e].fairRate);
  }
}

}  // namespace
}  // namespace mcfair::sim
