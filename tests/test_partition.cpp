// SessionPartitioner unit tests: link-set connected components must be
// correct (sessions sharing any link share a component, transitively),
// deterministically numbered (by smallest session index), CSR-ordered,
// and cached on the network's structure identity — capacity edits and
// fault-style reconfigurations must never trigger a rebuild, structural
// mutation must.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/session.hpp"
#include "sim/partition.hpp"

namespace mcfair::sim {
namespace {

std::vector<std::uint32_t> toVector(std::span<const std::uint32_t> s) {
  return {s.begin(), s.end()};
}

TEST(Partition, DisjointSessionsGetDistinctComponents) {
  net::Network n;
  const auto a = n.addLink(10.0);
  const auto b = n.addLink(10.0);
  const auto c = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({a}));
  n.addSession(net::makeUnicastSession({b}));
  n.addSession(net::makeUnicastSession({c}));

  SessionPartitioner p;
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(part.componentCount, 3u);
  // Numbered by smallest session index: session i -> component i here.
  EXPECT_EQ(part.componentOf, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(part.linkComponent, (std::vector<std::uint32_t>{0, 1, 2}));
  for (std::uint32_t comp = 0; comp < 3; ++comp) {
    EXPECT_EQ(toVector(part.sessionsOf(comp)),
              (std::vector<std::uint32_t>{comp}));
  }
}

TEST(Partition, SharedLinksMergeTransitively) {
  // Session 0 crosses {a, b}, session 1 crosses {b, c}, session 2
  // crosses {c}: all three collapse into one component even though
  // sessions 0 and 2 share no link directly. Session 3 on {d} stays
  // separate.
  net::Network n;
  const auto a = n.addLink(10.0);
  const auto b = n.addLink(10.0);
  const auto c = n.addLink(10.0);
  const auto d = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({a, b}));
  n.addSession(net::makeUnicastSession({b, c}));
  n.addSession(net::makeUnicastSession({c}));
  n.addSession(net::makeUnicastSession({d}));

  SessionPartitioner p;
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(part.componentCount, 2u);
  EXPECT_EQ(part.componentOf, (std::vector<std::uint32_t>{0, 0, 0, 1}));
  EXPECT_EQ(part.linkComponent, (std::vector<std::uint32_t>{0, 0, 0, 1}));
  EXPECT_EQ(toVector(part.sessionsOf(0)),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(toVector(part.sessionsOf(1)), (std::vector<std::uint32_t>{3}));
}

TEST(Partition, MultiReceiverSessionsUnionAllReceiverPaths) {
  // A multicast session whose receivers take different paths unions the
  // whole path union: receivers on {a} and {b} tie links a and b
  // together, so a second session on {b} joins the first's component.
  net::Network n;
  const auto a = n.addLink(10.0);
  const auto b = n.addLink(10.0);
  net::Session multicast;
  multicast.receivers.push_back(net::makeReceiver({a}));
  multicast.receivers.push_back(net::makeReceiver({b}));
  n.addSession(std::move(multicast));
  n.addSession(net::makeUnicastSession({b}));

  SessionPartitioner p;
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(part.componentCount, 1u);
  EXPECT_EQ(part.componentOf, (std::vector<std::uint32_t>{0, 0}));
}

TEST(Partition, OrphanLinksStayUnattached) {
  net::Network n;
  const auto used = n.addLink(10.0);
  n.addLink(10.0);  // no session ever crosses it
  n.addSession(net::makeUnicastSession({used}));

  SessionPartitioner p;
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(part.componentCount, 1u);
  ASSERT_EQ(part.linkComponent.size(), 2u);
  EXPECT_EQ(part.linkComponent[0], 0u);
  EXPECT_EQ(part.linkComponent[1], SessionPartition::kUnattached);
}

TEST(Partition, ComponentIdsFollowSmallestSessionIndex) {
  // Links are created in an order unrelated to session order; component
  // numbering must still follow the smallest session index, not link ids
  // or union order.
  net::Network n;
  const auto x = n.addLink(10.0);
  const auto y = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({y}));  // session 0 -> component 0
  n.addSession(net::makeUnicastSession({x}));  // session 1 -> component 1

  SessionPartitioner p;
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(part.componentOf, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(part.linkComponent, (std::vector<std::uint32_t>{1, 0}));
}

TEST(Partition, CachesOnStructureIdentity) {
  net::Network n;
  const auto a = n.addLink(10.0);
  const auto b = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({a}));
  n.addSession(net::makeUnicastSession({b}));

  SessionPartitioner p;
  EXPECT_EQ(p.rebuilds(), 0u);
  p.ensure(n);
  EXPECT_EQ(p.rebuilds(), 1u);
  p.ensure(n);
  EXPECT_EQ(p.rebuilds(), 1u) << "identical structure must hit the cache";

  // Capacity edits (what fault reconfiguration does) preserve the
  // structure identity: still no rebuild.
  n.setCapacity(a, 0.0);
  n.setCapacity(a, 10.0);
  p.ensure(n);
  EXPECT_EQ(p.rebuilds(), 1u);

  // Structural mutation invalidates the cache.
  const auto c = n.addLink(10.0);
  n.addSession(net::makeUnicastSession({b, c}));
  const SessionPartition& part = p.ensure(n);
  EXPECT_EQ(p.rebuilds(), 2u);
  EXPECT_EQ(part.componentCount, 2u);
  EXPECT_EQ(part.componentOf, (std::vector<std::uint32_t>{0, 1, 1}));
}

TEST(Partition, RebuildAfterMutationIsConsistent) {
  // Growing the network reuses the partitioner's scratch; the rebuilt
  // partition must match a fresh partitioner's bit for bit.
  net::Network n;
  std::vector<graph::LinkId> links;
  for (int j = 0; j < 8; ++j) links.push_back(n.addLink(4.0));
  for (int i = 0; i < 8; ++i) {
    n.addSession(net::makeUnicastSession({links[i % 4], links[4 + i % 4]}));
  }
  SessionPartitioner warm;
  warm.ensure(n);
  n.addSession(net::makeUnicastSession({links[0], links[1]}));
  const SessionPartition& reused = warm.ensure(n);

  SessionPartitioner fresh;
  const SessionPartition& scratch = fresh.ensure(n);
  EXPECT_EQ(reused.componentCount, scratch.componentCount);
  EXPECT_EQ(reused.componentOf, scratch.componentOf);
  EXPECT_EQ(reused.linkComponent, scratch.linkComponent);
  EXPECT_EQ(reused.sessionsBegin, scratch.sessionsBegin);
  EXPECT_EQ(reused.sessions, scratch.sessions);
}

}  // namespace
}  // namespace mcfair::sim
