// Tests for shortest-path routing.
#include <gtest/gtest.h>

#include "graph/routing.hpp"
#include "util/error.hpp"

namespace mcfair::graph {
namespace {

// Builds: 0 - 1 - 2 - 3 plus a shortcut 0 - 3 through node 4 (two hops)
// and a direct long-capacity edge 1 - 3.
Graph diamond() {
  Graph g;
  g.addNodes(5);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);  // l0
  g.addLink(NodeId{1}, NodeId{2}, 1.0);  // l1
  g.addLink(NodeId{2}, NodeId{3}, 1.0);  // l2
  g.addLink(NodeId{0}, NodeId{4}, 1.0);  // l3
  g.addLink(NodeId{4}, NodeId{3}, 1.0);  // l4
  g.addLink(NodeId{1}, NodeId{3}, 1.0);  // l5
  return g;
}

TEST(ShortestPath, TrivialSameNode) {
  Graph g;
  g.addNodes(2);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  const auto p = shortestPath(g, NodeId{0}, NodeId{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hopCount(), 0u);
  EXPECT_EQ(p->nodes.size(), 1u);
}

TEST(ShortestPath, PicksFewestHops) {
  const Graph g = diamond();
  const auto p = shortestPath(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hopCount(), 2u);  // 0-1-3 or 0-4-3
}

TEST(ShortestPath, PathIsConsistent) {
  const Graph g = diamond();
  const auto p = shortestPath(g, NodeId{0}, NodeId{2});
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->nodes.size(), p->links.size() + 1);
  EXPECT_EQ(p->nodes.front(), (NodeId{0}));
  EXPECT_EQ(p->nodes.back(), (NodeId{2}));
  // Each link must connect consecutive nodes.
  for (std::size_t i = 0; i < p->links.size(); ++i) {
    const auto [a, b] = g.endpoints(p->links[i]);
    const NodeId u = p->nodes[i];
    const NodeId v = p->nodes[i + 1];
    EXPECT_TRUE((a == u && b == v) || (a == v && b == u));
  }
}

TEST(ShortestPath, UnreachableIsNullopt) {
  Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  EXPECT_FALSE(shortestPath(g, NodeId{0}, NodeId{2}).has_value());
}

TEST(ShortestPath, Deterministic) {
  const Graph g = diamond();
  const auto p1 = shortestPath(g, NodeId{0}, NodeId{3});
  const auto p2 = shortestPath(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->links, p2->links);
}

TEST(WeightedShortestPath, PrefersLightPath) {
  const Graph g = diamond();
  // Make the 2-hop route 0-1-3 expensive on its last edge (l5).
  std::vector<double> w(g.linkCount(), 1.0);
  w[5] = 10.0;
  const auto p = shortestPathWeighted(g, NodeId{0}, NodeId{3}, w);
  ASSERT_TRUE(p.has_value());
  // Cheapest is 0-4-3 (cost 2).
  ASSERT_EQ(p->links.size(), 2u);
  EXPECT_EQ(p->links[0], (LinkId{3}));
  EXPECT_EQ(p->links[1], (LinkId{4}));
}

TEST(WeightedShortestPath, RejectsNegativeWeights) {
  const Graph g = diamond();
  std::vector<double> w(g.linkCount(), 1.0);
  w[0] = -0.5;
  EXPECT_THROW(shortestPathWeighted(g, NodeId{0}, NodeId{3}, w),
               PreconditionError);
}

TEST(WeightedShortestPath, RejectsWrongWeightCount) {
  const Graph g = diamond();
  EXPECT_THROW(shortestPathWeighted(g, NodeId{0}, NodeId{3}, {1.0}),
               PreconditionError);
}

TEST(BfsPredecessors, EncodesTree) {
  const Graph g = diamond();
  const auto pred = bfsPredecessors(g, NodeId{0});
  EXPECT_EQ(pred[0], 0u);           // root has no predecessor
  EXPECT_EQ(pred[1], 0u + 1);       // reached via l0
  EXPECT_EQ(pred[4], 3u + 1);       // reached via l3
}

}  // namespace
}  // namespace mcfair::graph
