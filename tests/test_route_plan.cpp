// Tests for the routing-policy layer (graph/route_plan.hpp): policy
// semantics, per-source caching, tie-break rules, and the guarantee that
// the tree-era entry points refitted onto it (buildShortestPathTree,
// net::fromGraph) kept producing bit-identical structures.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/route_plan.hpp"
#include "graph/routing.hpp"
#include "graph/tree.hpp"
#include "net/topologies.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::graph {
namespace {

// 0 - 1 - 2 - 3 plus a two-hop shortcut 0 - 4 - 3 and a chord 1 - 3.
Graph diamond() {
  Graph g;
  g.addNodes(5);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);  // l0
  g.addLink(NodeId{1}, NodeId{2}, 1.0);  // l1
  g.addLink(NodeId{2}, NodeId{3}, 1.0);  // l2
  g.addLink(NodeId{0}, NodeId{4}, 1.0);  // l3
  g.addLink(NodeId{4}, NodeId{3}, 1.0);  // l4
  g.addLink(NodeId{1}, NodeId{3}, 1.0);  // l5
  return g;
}

TEST(RoutePlan, HopCountMatchesBfsPredecessorsExactly) {
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = scaleFreeGraph(
        rng, {static_cast<std::size_t>(8 + trial), 2, 1.0});
    RoutePlan plan(g);
    for (std::uint32_t src = 0; src < g.nodeCount(); src += 3) {
      const auto expected = bfsPredecessors(g, NodeId{src});
      const std::uint32_t* actual = plan.predecessors(NodeId{src});
      for (std::uint32_t v = 0; v < g.nodeCount(); ++v) {
        ASSERT_EQ(actual[v], expected[v])
            << "trial " << trial << " src " << src << " node " << v;
      }
    }
  }
}

TEST(RoutePlan, DistributionTreeIsBitIdenticalToBuildShortestPathTree) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = waxmanGraph(rng, {12, 0.6, 0.4, 1.0});
    const NodeId sender{static_cast<std::uint32_t>(rng.below(12))};
    std::vector<NodeId> receivers;
    for (std::uint32_t v = 0; v < g.nodeCount(); ++v) {
      if (NodeId{v} != sender && rng.bernoulli(0.4)) {
        receivers.push_back(NodeId{v});
      }
    }
    if (receivers.empty()) receivers.push_back(NodeId{sender.value ? 0u : 1u});
    const MulticastTree a = buildShortestPathTree(g, sender, receivers);
    RoutePlan plan(g);
    const MulticastTree b = plan.distributionTree(sender, receivers);
    EXPECT_EQ(a.sender, b.sender);
    ASSERT_EQ(a.receiverPaths.size(), b.receiverPaths.size());
    for (std::size_t k = 0; k < a.receiverPaths.size(); ++k) {
      EXPECT_EQ(a.receiverPaths[k], b.receiverPaths[k]) << "receiver " << k;
    }
    EXPECT_EQ(a.sessionLinks, b.sessionLinks);
  }
}

TEST(RoutePlan, CachesOneTreePerDistinctSource) {
  const Graph g = diamond();
  RoutePlan plan(g);
  EXPECT_EQ(plan.builtSourceCount(), 0u);
  plan.ensureSource(NodeId{0});
  plan.ensureSource(NodeId{0});
  (void)plan.path(NodeId{0}, NodeId{3});
  EXPECT_EQ(plan.builtSourceCount(), 1u);
  (void)plan.path(NodeId{2}, NodeId{0});
  EXPECT_EQ(plan.builtSourceCount(), 2u);
}

TEST(RoutePlan, WeightedMatchesShortestPathWeighted) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = scaleFreeGraph(rng, {10, 2, 1.0});
    std::vector<double> w;
    for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
      w.push_back(1.0 + rng.below(4));
    }
    RoutePlan plan(g, {RoutePolicy::kWeighted, w});
    for (int pair = 0; pair < 6; ++pair) {
      const NodeId from{static_cast<std::uint32_t>(rng.below(10))};
      const NodeId to{static_cast<std::uint32_t>(rng.below(10))};
      const auto p = shortestPathWeighted(g, from, to, w);
      ASSERT_TRUE(p.has_value());  // generated graphs are connected
      EXPECT_EQ(p->links, plan.path(from, to));
    }
  }
}

TEST(RoutePlan, WeightedTieBreakPrefersLowestNodeId) {
  // Two equal-cost two-hop routes 0-1-3 and 0-2-3: the plan must route
  // through node 1.
  Graph g;
  g.addNodes(4);
  const LinkId l01 = g.addLink(NodeId{0}, NodeId{1}, 1.0);
  const LinkId l02 = g.addLink(NodeId{0}, NodeId{2}, 1.0);
  g.addLink(NodeId{2}, NodeId{3}, 1.0);
  const LinkId l13 = g.addLink(NodeId{1}, NodeId{3}, 1.0);
  RoutePlan plan(g, {RoutePolicy::kWeighted, {}});
  const auto path = plan.path(NodeId{0}, NodeId{3});
  EXPECT_EQ(path, (std::vector<LinkId>{l01, l13}));
  (void)l02;
}

TEST(RoutePlan, WeightedTieBreakPrefersLowestLinkIdBetweenParallels) {
  Graph g;
  g.addNodes(2);
  const LinkId first = g.addLink(NodeId{0}, NodeId{1}, 1.0);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);  // parallel, same weight
  RoutePlan plan(g, {RoutePolicy::kWeighted, {}});
  EXPECT_EQ(plan.path(NodeId{0}, NodeId{1}), (std::vector<LinkId>{first}));
}

TEST(RoutePlan, ReachabilityAndErrors) {
  Graph g;
  g.addNodes(3);
  g.addLink(NodeId{0}, NodeId{1}, 1.0);
  RoutePlan plan(g);
  EXPECT_TRUE(plan.reachable(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(plan.reachable(NodeId{0}, NodeId{0}));
  EXPECT_FALSE(plan.reachable(NodeId{0}, NodeId{2}));
  EXPECT_TRUE(plan.path(NodeId{0}, NodeId{0}).empty());
  EXPECT_THROW(plan.path(NodeId{0}, NodeId{2}), ModelError);
  EXPECT_THROW(plan.distributionTree(NodeId{0}, {}), PreconditionError);
  EXPECT_THROW(plan.distributionTree(NodeId{0}, {NodeId{0}}),
               PreconditionError);
  EXPECT_THROW(plan.distributionTree(NodeId{0}, {NodeId{2}}), ModelError);
  EXPECT_THROW(RoutePlan(g, {RoutePolicy::kWeighted, {1.0, 2.0}}),
               PreconditionError);
  EXPECT_THROW(RoutePlan(g, {RoutePolicy::kWeighted, {-2.0}}),
               PreconditionError);
}

TEST(RoutePlan, AppendPathAppends) {
  const Graph g = diamond();
  RoutePlan plan(g);
  std::vector<LinkId> out{LinkId{99}};
  plan.appendPath(NodeId{0}, NodeId{2}, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (LinkId{99}));
  EXPECT_EQ(out[1], (LinkId{0}));
  EXPECT_EQ(out[2], (LinkId{1}));
}

TEST(RoutePlan, FromGraphWrapperEqualsRoutedBuilder) {
  util::Rng rng(5);
  const Graph g = scaleFreeGraph(rng, {14, 2, 3.0});
  std::vector<net::RoutedSessionSpec> specs;
  for (int i = 0; i < 4; ++i) {
    net::RoutedSessionSpec spec;
    spec.sender = NodeId{static_cast<std::uint32_t>(rng.below(14))};
    for (int k = 0; k < 3; ++k) {
      NodeId r{static_cast<std::uint32_t>(rng.below(14))};
      if (r == spec.sender) r = NodeId{(r.value + 1) % 14};
      spec.receivers.push_back(r);
    }
    spec.name = "S" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  const net::Network a = net::fromGraph(g, specs);
  RoutePlan plan(g);
  const net::Network b = net::fromGraphRouted(plan, specs);
  EXPECT_TRUE(net::structurallyEqual(a, b));
  // Shared senders are routed off one cached tree.
  EXPECT_LE(plan.builtSourceCount(), specs.size());
}

}  // namespace
}  // namespace mcfair::graph
