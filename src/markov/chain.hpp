// Generic finite discrete-time Markov chains built from a transition
// kernel by reachability, with exact (dense LU) or iterative stationary
// solution depending on chain size.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace mcfair::markov {

/// A finite DTMC over opaque 64-bit state encodings.
class MarkovChain {
 public:
  using State = std::uint64_t;
  /// Returns the successor distribution of a state. Probabilities must be
  /// non-negative and sum to 1 (within 1e-9); duplicate successors are
  /// aggregated.
  using Kernel =
      std::function<std::vector<std::pair<State, double>>(State)>;

  /// Explores every state reachable from `initial` (throws ModelError when
  /// more than `maxStates` states are found) and fixes the transition
  /// structure.
  static MarkovChain build(State initial, const Kernel& kernel,
                           std::size_t maxStates = 200000);

  std::size_t stateCount() const noexcept { return states_.size(); }

  /// The explored states in discovery order.
  const std::vector<State>& states() const noexcept { return states_; }

  /// Stationary distribution (one entry per state, discovery order). Uses
  /// a dense LU solve for chains up to `denseLimit` states and damped
  /// power iteration beyond. Assumes the reachable chain is a single
  /// recurrent class (true for the protocol chains: every state reaches
  /// the all-level-1 state through losses).
  std::vector<double> stationary(std::size_t denseLimit = 1200,
                                 double tol = 1e-12,
                                 std::size_t maxIterations = 200000) const;

  /// Expectation of `f` under a distribution returned by stationary().
  double expectation(const std::vector<double>& pi,
                     const std::function<double(State)>& f) const;

 private:
  struct Arc {
    std::uint32_t to;
    double probability;
  };
  std::vector<State> states_;
  std::unordered_map<State, std::uint32_t> index_;
  std::vector<std::vector<Arc>> arcs_;  // outgoing, per state
};

}  // namespace mcfair::markov
