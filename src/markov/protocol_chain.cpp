#include "markov/protocol_chain.hpp"

#include <algorithm>
#include <cmath>

#include "markov/chain.hpp"
#include "util/error.hpp"

namespace mcfair::markov {

namespace {

using sim::LayeredReceiver;
using sim::ProtocolKind;
using State = MarkovChain::State;

// Per-receiver encoding: 16 bits = level (4 bits, value 1..15) << 12 |
// aux (12 bits). aux = clean-run counter (Deterministic) or
// clean-since-sync flag (Coordinated); unused otherwise.
constexpr std::uint64_t kReceiverBits = 16;
constexpr std::uint64_t kAuxMask = 0x0fff;

struct ReceiverState {
  std::size_t level = 1;
  std::uint64_t aux = 0;
};

std::uint64_t pack(ReceiverState r) {
  return (static_cast<std::uint64_t>(r.level) << 12) | (r.aux & kAuxMask);
}

ReceiverState unpack(std::uint64_t bits) {
  return ReceiverState{static_cast<std::size_t>(bits >> 12),
                       bits & kAuxMask};
}

ReceiverState getReceiver(State s, std::size_t j) {
  return unpack((s >> (j * kReceiverBits)) & 0xffff);
}

State setReceiver(State s, std::size_t j, ReceiverState r) {
  const std::uint64_t shift = j * kReceiverBits;
  return (s & ~(std::uint64_t{0xffff} << shift)) | (pack(r) << shift);
}

// Cumulative rate of a subscription level in the exponential scheme
// (layer-1 rate = 1): 2^(level-1).
double cumulativeRate(std::size_t level) {
  return std::ldexp(1.0, static_cast<int>(level) - 1);
}

// Mirrors sim::LayeredReceiver::onCongestion.
ReceiverState afterLoss(ReceiverState r) {
  if (r.level > 1) --r.level;
  r.aux = 0;  // counter reset; clean-since-sync flag = false
  return r;
}

// Branch = (probability, next receiver state).
using Branch = std::pair<double, ReceiverState>;

// Clean-packet outcomes for one receiver; mirrors
// sim::LayeredReceiver::onPacket's clean paths.
std::vector<Branch> cleanOutcomes(ReceiverState r, ProtocolKind kind,
                                  std::size_t layers, std::size_t packetLayer,
                                  std::size_t signal) {
  switch (kind) {
    case ProtocolKind::kUncoordinated: {
      if (r.level >= layers) return {{1.0, r}};
      const double q =
          1.0 / static_cast<double>(LayeredReceiver::joinThreshold(r.level));
      ReceiverState joined = r;
      ++joined.level;
      if (q >= 1.0) return {{1.0, joined}};
      return {{q, joined}, {1.0 - q, r}};
    }
    case ProtocolKind::kDeterministic: {
      if (r.level >= layers) {
        r.aux = 0;  // counter is irrelevant at the top level — canonicalize
        return {{1.0, r}};
      }
      ++r.aux;
      if (r.aux >= LayeredReceiver::joinThreshold(r.level)) {
        ++r.level;
        r.aux = 0;
      }
      return {{1.0, r}};
    }
    case ProtocolKind::kCoordinated: {
      // aux bit 0 = clean-since-sync.
      if (packetLayer == 1 && signal >= r.level) {
        if ((r.aux & 1) != 0 && r.level < layers) ++r.level;
        r.aux = 1;
      }
      return {{1.0, r}};
    }
    case ProtocolKind::kActiveRouter:
      break;  // rejected by analyzeProtocolChain's validation
  }
  return {{1.0, r}};
}

}  // namespace

ProtocolChainAnalysis analyzeProtocolChain(
    const ProtocolChainConfig& config) {
  const std::size_t n = config.receiverLoss.size();
  MCFAIR_REQUIRE(n >= 1 && n <= 4,
                 "protocol chain supports 1..4 receivers");
  MCFAIR_REQUIRE(config.layers >= 1 && config.layers <= 15,
                 "layers must be in 1..15");
  MCFAIR_REQUIRE(config.protocol != sim::ProtocolKind::kActiveRouter,
                 "the chain models receiver-driven protocols; ActiveRouter "
                 "reduces to a single Deterministic receiver");
  MCFAIR_REQUIRE(config.sharedLoss >= 0.0 && config.sharedLoss < 1.0,
                 "shared loss must be in [0,1)");
  for (double p : config.receiverLoss) {
    MCFAIR_REQUIRE(p >= 0.0 && p < 1.0, "receiver loss must be in [0,1)");
  }
  const std::size_t m = config.layers;

  // Layer emission probabilities: rate 1 for layer 1, 2^(k-2) for k>=2;
  // total 2^(m-1).
  std::vector<double> layerProb(m + 1, 0.0);
  const double total = std::ldexp(1.0, static_cast<int>(m) - 1);
  layerProb[1] = 1.0 / total;
  for (std::size_t k = 2; k <= m; ++k) {
    layerProb[k] = std::ldexp(1.0, static_cast<int>(k) - 2) / total;
  }

  // Ruler signal-level distribution for layer-1 packets.
  std::vector<std::pair<std::size_t, double>> signalDist;
  if (config.protocol == ProtocolKind::kCoordinated && m > 1) {
    const std::size_t gMax = m - 1;
    for (std::size_t g = 1; g < gMax; ++g) {
      signalDist.emplace_back(g, std::ldexp(1.0, -static_cast<int>(g)));
    }
    signalDist.emplace_back(
        gMax, std::ldexp(1.0, -static_cast<int>(gMax) + 1));
  } else {
    signalDist.emplace_back(0, 1.0);
  }

  const MarkovChain::Kernel kernel = [&](State s) {
    std::vector<std::pair<State, double>> out;
    for (std::size_t layer = 1; layer <= m; ++layer) {
      const double pLayer = layerProb[layer];
      const auto& signals =
          (layer == 1) ? signalDist
                       : decltype(signalDist){{std::size_t{0}, 1.0}};
      for (const auto& [signal, pSignal] : signals) {
        for (int shared = 0; shared < 2; ++shared) {
          const double pShared =
              shared ? config.sharedLoss : 1.0 - config.sharedLoss;
          if (pShared == 0.0) continue;
          // Per-receiver branch lists, then cross product.
          std::vector<std::vector<Branch>> perReceiver(n);
          for (std::size_t j = 0; j < n; ++j) {
            const ReceiverState r = getReceiver(s, j);
            if (r.level < layer) {
              perReceiver[j] = {{1.0, r}};  // not subscribed: unseen
            } else if (shared) {
              perReceiver[j] = {{1.0, afterLoss(r)}};
            } else {
              const double pf = config.receiverLoss[j];
              auto clean = cleanOutcomes(r, config.protocol, m, layer,
                                         signal);
              std::vector<Branch> branches;
              if (pf > 0.0) branches.emplace_back(pf, afterLoss(r));
              for (auto& [pc, rs] : clean) {
                branches.emplace_back((1.0 - pf) * pc, rs);
              }
              perReceiver[j] = std::move(branches);
            }
          }
          // Cross product.
          std::vector<std::pair<State, double>> combos{
              {State{0}, pLayer * pSignal * pShared}};
          for (std::size_t j = 0; j < n; ++j) {
            std::vector<std::pair<State, double>> nextCombos;
            nextCombos.reserve(combos.size() * perReceiver[j].size());
            for (const auto& [st, pr] : combos) {
              for (const auto& [pb, rs] : perReceiver[j]) {
                nextCombos.emplace_back(setReceiver(st, j, rs), pr * pb);
              }
            }
            combos.swap(nextCombos);
          }
          out.insert(out.end(), combos.begin(), combos.end());
        }
      }
    }
    return out;
  };

  // Initial state: every receiver at level 1; Coordinated starts clean.
  State init = 0;
  for (std::size_t j = 0; j < n; ++j) {
    ReceiverState r;
    r.level = 1;
    r.aux = config.protocol == ProtocolKind::kCoordinated ? 1 : 0;
    init = setReceiver(init, j, r);
  }

  const MarkovChain chain = MarkovChain::build(init, kernel);
  const std::vector<double> pi = chain.stationary();

  ProtocolChainAnalysis result;
  result.stateCount = chain.stateCount();
  result.subscriptionRate.assign(n, 0.0);
  result.deliveredRate.assign(n, 0.0);
  result.meanLevel.assign(n, 0.0);

  result.forwardedRate = chain.expectation(pi, [&](State s) {
    std::size_t top = 1;
    for (std::size_t j = 0; j < n; ++j) {
      top = std::max(top, getReceiver(s, j).level);
    }
    return cumulativeRate(top);
  });
  for (std::size_t j = 0; j < n; ++j) {
    result.subscriptionRate[j] = chain.expectation(pi, [&](State s) {
      return cumulativeRate(getReceiver(s, j).level);
    });
    result.meanLevel[j] = chain.expectation(pi, [&](State s) {
      return static_cast<double>(getReceiver(s, j).level);
    });
    const double endToEnd =
        config.sharedLoss +
        (1.0 - config.sharedLoss) * config.receiverLoss[j];
    result.deliveredRate[j] = result.subscriptionRate[j] * (1.0 - endToEnd);
  }
  // Level distributions (per receiver and of the max).
  result.levelDistribution.assign(n, std::vector<double>(m, 0.0));
  result.maxLevelDistribution.assign(m, 0.0);
  const auto& states = chain.states();
  for (std::size_t s = 0; s < states.size(); ++s) {
    std::size_t topLevel = 1;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t level = getReceiver(states[s], j).level;
      result.levelDistribution[j][level - 1] += pi[s];
      topLevel = std::max(topLevel, level);
    }
    result.maxLevelDistribution[topLevel - 1] += pi[s];
  }

  const double best =
      *std::max_element(result.deliveredRate.begin(),
                        result.deliveredRate.end());
  result.redundancy = best > 0.0 ? result.forwardedRate / best : 1.0;
  return result;
}

}  // namespace mcfair::markov
