// Exact Markov analysis of the Section 4 protocols on the Figure 7(a)
// modified-star topology (small receiver counts).
//
// Per-packet-slot chain. Modeling choices (documented in DESIGN.md):
//  * The emitted packet's layer is randomized in proportion to layer
//    rates (the simulator interleaves layers deterministically; the
//    randomization removes the schedule phase from the state).
//  * The Coordinated sender's ruler signal level is likewise randomized
//    with the ruler's level frequencies: P(g)=2^-g for g < M-1 and
//    P(M-1)=2^-(M-2).
//  * Loss is Bernoulli: shared loss (probability ps, common to all
//    subscribed receivers per packet) then independent per-receiver
//    fanout loss — exactly the simulator's model.
//
// Receiver state-update logic mirrors sim::LayeredReceiver exactly, so
// simulator and analysis agree up to the two randomizations above (tests
// cross-validate them statistically).
//
// The paper's headline analytical finding reproduced here: redundancy is
// highest when receivers' end-to-end loss rates are equal.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/receiver.hpp"

namespace mcfair::markov {

/// Model parameters. Receiver count = receiverLoss.size() (1..4; the
/// state space is exponential in it).
struct ProtocolChainConfig {
  std::size_t layers = 4;
  sim::ProtocolKind protocol = sim::ProtocolKind::kCoordinated;
  /// Loss probability on the shared link.
  double sharedLoss = 0.0;
  /// Independent loss probability on each receiver's fanout link.
  std::vector<double> receiverLoss;
};

/// Stationary quantities derived from the chain.
struct ProtocolChainAnalysis {
  /// Definition 3 redundancy of the session on the shared link:
  /// forwardedRate / max_j deliveredRate[j].
  double redundancy = 1.0;
  /// E[aggregate rate of the union of joined layers] — the session's
  /// expected link rate on the shared link.
  double forwardedRate = 0.0;
  /// E[cumulative rate of receiver j's subscription].
  std::vector<double> subscriptionRate;
  /// subscriptionRate[j] * (1 - end-to-end loss rate of j).
  std::vector<double> deliveredRate;
  /// E[subscription level of receiver j].
  std::vector<double> meanLevel;
  /// P(receiver j's level == l), indexed [j][l-1]; rows sum to 1.
  std::vector<std::vector<double>> levelDistribution;
  /// P(max level over receivers == l), indexed [l-1]; sums to 1 and
  /// satisfies sum_l P(max=l) * 2^(l-1) == forwardedRate.
  std::vector<double> maxLevelDistribution;
  std::size_t stateCount = 0;
};

/// Builds and solves the chain. Throws ModelError when the state space
/// exceeds internal limits (e.g. Deterministic protocol with many layers).
ProtocolChainAnalysis analyzeProtocolChain(const ProtocolChainConfig& config);

}  // namespace mcfair::markov
