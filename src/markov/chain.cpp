#include "markov/chain.hpp"

#include <cmath>
#include <deque>

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace mcfair::markov {

MarkovChain MarkovChain::build(State initial, const Kernel& kernel,
                               std::size_t maxStates) {
  MCFAIR_REQUIRE(kernel != nullptr, "kernel must be callable");
  MarkovChain chain;
  std::deque<State> frontier;
  auto intern = [&](State s) -> std::uint32_t {
    auto [it, inserted] =
        chain.index_.emplace(s, static_cast<std::uint32_t>(
                                    chain.states_.size()));
    if (inserted) {
      chain.states_.push_back(s);
      chain.arcs_.emplace_back();
      frontier.push_back(s);
      if (chain.states_.size() > maxStates) {
        throw ModelError("MarkovChain::build: state space exceeds " +
                         std::to_string(maxStates) + " states");
      }
    }
    return it->second;
  };
  intern(initial);
  while (!frontier.empty()) {
    const State s = frontier.front();
    frontier.pop_front();
    const std::uint32_t from = chain.index_.at(s);
    double total = 0.0;
    // Aggregate duplicate successors through a local map.
    std::unordered_map<State, double> merged;
    for (const auto& [to, p] : kernel(s)) {
      MCFAIR_REQUIRE(p >= 0.0, "transition probabilities must be >= 0");
      if (p == 0.0) continue;
      merged[to] += p;
      total += p;
    }
    if (std::fabs(total - 1.0) > 1e-9) {
      throw ModelError("MarkovChain::build: outgoing probability of state " +
                       std::to_string(s) + " sums to " +
                       std::to_string(total));
    }
    chain.arcs_[from].reserve(merged.size());
    for (const auto& [to, p] : merged) {
      // intern() may reallocate arcs_; resolve the index before touching
      // the row.
      const std::uint32_t toIndex = intern(to);
      chain.arcs_[from].push_back(Arc{toIndex, p});
    }
  }
  return chain;
}

std::vector<double> MarkovChain::stationary(std::size_t denseLimit,
                                            double tol,
                                            std::size_t maxIterations) const {
  const std::size_t n = states_.size();
  MCFAIR_REQUIRE(n > 0, "chain has no states");
  if (n == 1) return {1.0};

  if (n <= denseLimit) {
    linalg::Matrix p(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Arc& a : arcs_[i]) p(i, a.to) += a.probability;
    }
    return linalg::stationaryDistribution(p);
  }

  // Damped power iteration: pi' = (pi P + pi)/2 removes periodicity
  // without changing the fixed point.
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t it = 0; it < maxIterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double mass = pi[i];
      if (mass == 0.0) continue;
      for (const Arc& a : arcs_[i]) next[a.to] += mass * a.probability;
    }
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = 0.5 * (next[i] + pi[i]);
      diff += std::fabs(next[i] - pi[i]);
    }
    pi.swap(next);
    if (diff < tol) return pi;
  }
  throw NumericError("MarkovChain::stationary: power iteration did not "
                     "converge");
}

double MarkovChain::expectation(const std::vector<double>& pi,
                                const std::function<double(State)>& f) const {
  MCFAIR_REQUIRE(pi.size() == states_.size(),
                 "distribution size must match state count");
  double e = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    e += pi[i] * f(states_[i]);
  }
  return e;
}

}  // namespace mcfair::markov
