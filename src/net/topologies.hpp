// Canonical networks: the paper's worked examples (Figures 1-4), the
// shared-bottleneck model behind Figure 6, graph-derived networks, and a
// random-network generator for property-based tests.
#pragma once

#include <cstdint>

#include "graph/generators.hpp"
#include "graph/route_plan.hpp"
#include "graph/tree.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace mcfair::net {

/// Figure 1: three sessions over four links (c = 5, 7, 4, 3).
/// Multi-rate max-min allocation: a_{1,1}=a_{2,1}=a_{3,1}=1,
/// a_{2,2}=a_{3,2}=2, with session link rates l1:(0:0:2), l2:(1:2:0),
/// l3:(0:2:2), l4:(1:1:1); l3 and l4 fully utilized.
Network fig1Network();

/// Figure 2: S1 (three receivers) + unicast S2 sharing r1,1's path, links
/// c = 5, 2, 3, 6, sigma = 100.
/// With S1 single-rate the max-min allocation is a_1 = 2, a_2 = 3 and three
/// of the four fairness properties fail; with S1 multi-rate it is
/// a_{1,1} = a_{2,1} = 2.5, a_{1,2} = 2, a_{1,3} = 3 and all hold.
/// `s1MultiRate` selects the variant.
Network fig2Network(bool s1MultiRate);

/// Link ids of fig2Network in the paper's numbering l1..l4 (value 0..3).
/// l1 = shared bottleneck (c=5), l2 = r1,2 tail (c=2), l3 = r1,3 tail
/// (c=3), l4 = first hop (c=6).
struct Fig2Links {
  graph::LinkId l1{0}, l2{1}, l3{2}, l4{3};
};

/// Figure 3(a) phenomenon (reconstruction; the figure's exact labels are
/// not recoverable from the available scan, the *phenomenon* is preserved):
/// removing receiver r_{3,2} DEcreases r_{3,1}'s max-min fair rate.
/// Three multi-rate sessions; links lA (c=4): {r1,1, r3,2},
/// lB (c=12): {r1,1, r2,1, r3,1}.
/// Before removal: a_{1,1}=2, a_{2,1}=5, a_{3,1}=5, a_{3,2}=2.
/// After removal:  a_{1,1}=4, a_{2,1}=4, a_{3,1}=4.
Network fig3aNetwork(bool receiverRemoved);

/// Figure 3(b) phenomenon: removing r_{3,2} INcreases r_{3,1}'s rate.
/// Links lA (c=2): {r2,1, r3,2}, lB (c=4): {r2,1, r1,1},
/// lC (c=12): {r1,1, r3,1}.
/// Before removal: a_{1,1}=3, a_{2,1}=1, a_{3,1}=9, a_{3,2}=1.
/// After removal:  a_{1,1}=2, a_{2,1}=2, a_{3,1}=10.
Network fig3bNetwork(bool receiverRemoved);

/// The receiver removed in the Figure 3 experiments (r_{3,2}).
ReceiverRef fig3RemovedReceiver();

/// Figure 4: the Figure 2 topology with S1 multi-rate but carrying a
/// constant redundancy factor of 2 on links shared by several of its
/// receivers. Max-min allocation: every receiver at rate 2; u_{1,4} = 4 on
/// the shared first hop, so per-session-link-fairness fails for S2.
Network fig4Network();

/// The shared-bottleneck model behind Figure 6: n sessions constrained by
/// one link of capacity c; m of them are multi-rate sessions with
/// `receiversPerMulti` (>= 2) receivers and constant redundancy v on the
/// bottleneck; the rest are unicast. All receivers' max-min rates equal
/// c / ((n - m) + m v).
Network singleBottleneckNetwork(std::size_t n, std::size_t m, double c,
                                double v, std::size_t receiversPerMulti = 2);

/// Specification of one session to route over a Graph.
struct RoutedSessionSpec {
  graph::NodeId sender;
  std::vector<graph::NodeId> receivers;
  SessionType type = SessionType::kMultiRate;
  double maxRate = kUnlimitedRate;
  LinkRateFunctionPtr linkRateFn;  // null -> EfficientMax
  std::string name;
};

/// The primary graph -> Network builder: link capacities are copied from
/// the plan's graph and each session's receiver data-paths are read off
/// the routing plan (one cached shortest-path tree per distinct sender,
/// so S sessions over K distinct senders cost K tree builds, not S).
/// Works on any connected substrate — trees, BA m >= 2 meshes, Waxman
/// graphs — because the fairness model only ever consumes the resulting
/// per-receiver link sets. Throws ModelError when a receiver is
/// unreachable under the plan's policy.
Network fromGraphRouted(graph::RoutePlan& plan,
                        const std::vector<RoutedSessionSpec>& specs);

/// Convenience wrapper over fromGraphRouted with hop-count routing —
/// the historical tree-only entry point, bit-identical to the networks
/// it produced when it built one BFS tree per session itself.
Network fromGraph(const graph::Graph& g,
                  const std::vector<RoutedSessionSpec>& specs);

/// A session with several senders (the Section 5 extension: "extend
/// definitions of fairness to multicast sessions with multiple
/// senders"). Each receiver is served by its nearest sender (hop count;
/// ties break toward the earlier sender in the list), as in anycast /
/// shortest-path source selection. Because the fairness model consumes
/// only per-receiver data-paths, the max-min machinery applies
/// unchanged.
struct RoutedMultiSenderSpec {
  std::vector<graph::NodeId> senders;
  std::vector<graph::NodeId> receivers;
  SessionType type = SessionType::kMultiRate;
  double maxRate = kUnlimitedRate;
  LinkRateFunctionPtr linkRateFn;  // null -> EfficientMax
  std::string name;
};

/// Builds a Network where each spec may have multiple senders. Throws
/// ModelError when a receiver is unreachable from every sender.
Network fromGraphMultiSender(const graph::Graph& g,
                             const std::vector<RoutedMultiSenderSpec>& specs);

/// Knobs for randomNetwork().
struct RandomNetworkOptions {
  std::size_t nodes = 12;
  /// Extra links beyond a random spanning tree (adds path diversity).
  std::size_t extraLinks = 8;
  std::size_t sessions = 4;
  std::size_t maxReceiversPerSession = 4;
  double minCapacity = 1.0;
  double maxCapacity = 10.0;
  /// Probability a session is single-rate.
  double singleRateProbability = 0.5;
  /// Probability a session has a finite sigma_i (drawn uniformly in
  /// [sigmaMin, sigmaMax]).
  double finiteMaxRateProbability = 0.3;
  double sigmaMin = 0.5;
  double sigmaMax = 5.0;
};

/// Generates a random connected network with routed sessions. Receivers
/// and senders are placed on distinct nodes per session. Deterministic in
/// `rng`.
Network randomNetwork(util::Rng& rng, const RandomNetworkOptions& opts = {});

}  // namespace mcfair::net
