#include "net/topologies.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcfair::net {

namespace {
using graph::LinkId;

Session session(std::string name, SessionType type, double maxRate,
                std::vector<Receiver> receivers,
                LinkRateFunctionPtr fn = nullptr) {
  Session s;
  s.name = std::move(name);
  s.type = type;
  s.maxRate = maxRate;
  s.receivers = std::move(receivers);
  s.linkRateFn = std::move(fn);
  return s;
}
}  // namespace

Network fig1Network() {
  // Topology (reconstructed from the figure's capacities, session link
  // rates and the fairness arguments in Section 2.1):
  //   X1, X2 --l2--> A;  X3 --l1--> A;  A --l4--> B;  A --l3--> C.
  //   r1,1, r2,1, r3,1 behind l4; r2,2, r3,2 behind l3.
  Network n;
  const LinkId l1 = n.addLink(5);  // X3's first hop
  const LinkId l2 = n.addLink(7);  // X1/X2's first hop
  const LinkId l3 = n.addLink(4);  // branch to r2,2 / r3,2
  const LinkId l4 = n.addLink(3);  // branch to r1,1 / r2,1 / r3,1
  n.addSession(session("S1", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({l2, l4}, "r1,1")}));
  n.addSession(session("S2", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({l2, l4}, "r2,1"),
                        makeReceiver({l2, l3}, "r2,2")}));
  n.addSession(session("S3", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({l1, l4}, "r3,1"),
                        makeReceiver({l1, l3}, "r3,2")}));
  return n;
}

Network fig2Network(bool s1MultiRate) {
  // X1, X2 --l4--> A; A --l1--> (r1,1, r2,1); A --l2--> r1,2;
  // A --l3--> r1,3. sigma_1 = sigma_2 = 100.
  Network n;
  const LinkId l1 = n.addLink(5);
  const LinkId l2 = n.addLink(2);
  const LinkId l3 = n.addLink(3);
  const LinkId l4 = n.addLink(6);
  n.addSession(session(
      "S1", s1MultiRate ? SessionType::kMultiRate : SessionType::kSingleRate,
      100.0,
      {makeReceiver({l4, l1}, "r1,1"), makeReceiver({l4, l2}, "r1,2"),
       makeReceiver({l4, l3}, "r1,3")}));
  n.addSession(session("S2", SessionType::kMultiRate, 100.0,
                       {makeReceiver({l4, l1}, "r2,1")}));
  return n;
}

Network fig3aNetwork(bool receiverRemoved) {
  Network n;
  const LinkId lA = n.addLink(4);
  const LinkId lB = n.addLink(12);
  n.addSession(session("S1", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({lA, lB}, "r1,1")}));
  n.addSession(session("S2", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({lB}, "r2,1")}));
  std::vector<Receiver> s3 = {makeReceiver({lB}, "r3,1")};
  if (!receiverRemoved) s3.push_back(makeReceiver({lA}, "r3,2"));
  n.addSession(
      session("S3", SessionType::kMultiRate, kUnlimitedRate, std::move(s3)));
  return n;
}

Network fig3bNetwork(bool receiverRemoved) {
  Network n;
  const LinkId lA = n.addLink(2);
  const LinkId lB = n.addLink(4);
  const LinkId lC = n.addLink(12);
  n.addSession(session("S1", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({lB, lC}, "r1,1")}));
  n.addSession(session("S2", SessionType::kMultiRate, kUnlimitedRate,
                       {makeReceiver({lA, lB}, "r2,1")}));
  std::vector<Receiver> s3 = {makeReceiver({lC}, "r3,1")};
  if (!receiverRemoved) s3.push_back(makeReceiver({lA}, "r3,2"));
  n.addSession(
      session("S3", SessionType::kMultiRate, kUnlimitedRate, std::move(s3)));
  return n;
}

ReceiverRef fig3RemovedReceiver() { return ReceiverRef{2, 1}; }

Network fig4Network() {
  // Figure 2's topology; S1 multi-rate with redundancy factor 2 on links
  // shared by several of its receivers (here: the first hop l4).
  Network n = fig2Network(/*s1MultiRate=*/true);
  return n.withLinkRateFunction(0, std::make_shared<const ConstantFactor>(2.0));
}

Network singleBottleneckNetwork(std::size_t n, std::size_t m, double c,
                                double v, std::size_t receiversPerMulti) {
  MCFAIR_REQUIRE(n >= 1 && m <= n, "need m <= n sessions");
  MCFAIR_REQUIRE(receiversPerMulti >= 2,
                 "multi-rate sessions need >= 2 receivers for redundancy "
                 "to apply on the shared link");
  Network net;
  const LinkId shared = net.addLink(c);
  const auto redundant = std::make_shared<const ConstantFactor>(v);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < m) {
      std::vector<Receiver> rs;
      for (std::size_t k = 0; k < receiversPerMulti; ++k) {
        // Each receiver also has a private fat tail link so receivers are
        // distinct paths; the shared link is the sole binding constraint.
        const LinkId tail = net.addLink(1e9);
        rs.push_back(makeReceiver({shared, tail}));
      }
      net.addSession(session("M" + std::to_string(i),
                             SessionType::kMultiRate, kUnlimitedRate,
                             std::move(rs), redundant));
    } else {
      net.addSession(makeUnicastSession({shared}, kUnlimitedRate,
                                        "U" + std::to_string(i)));
    }
  }
  return net;
}

Network fromGraphRouted(graph::RoutePlan& plan,
                        const std::vector<RoutedSessionSpec>& specs) {
  const graph::Graph& g = plan.graph();
  Network n;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    n.addLink(g.capacity(LinkId{l}));
  }
  for (const auto& spec : specs) {
    const auto tree = plan.distributionTree(spec.sender, spec.receivers);
    std::vector<Receiver> receivers;
    receivers.reserve(spec.receivers.size());
    for (std::size_t k = 0; k < spec.receivers.size(); ++k) {
      receivers.push_back(makeReceiver(tree.receiverPaths[k]));
    }
    n.addSession(session(spec.name, spec.type, spec.maxRate,
                         std::move(receivers), spec.linkRateFn));
  }
  return n;
}

Network fromGraph(const graph::Graph& g,
                  const std::vector<RoutedSessionSpec>& specs) {
  graph::RoutePlan plan(g);  // hop-count: the historical BFS trees
  return fromGraphRouted(plan, specs);
}

Network fromGraphMultiSender(const graph::Graph& g,
                             const std::vector<RoutedMultiSenderSpec>& specs) {
  Network n;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    n.addLink(g.capacity(LinkId{l}));
  }
  for (const auto& spec : specs) {
    MCFAIR_REQUIRE(!spec.senders.empty(),
                   "a multi-sender session needs at least one sender");
    MCFAIR_REQUIRE(!spec.receivers.empty(),
                   "a session needs at least one receiver");
    std::vector<Receiver> receivers;
    receivers.reserve(spec.receivers.size());
    for (graph::NodeId r : spec.receivers) {
      // Nearest sender by hop count; earlier senders win ties.
      std::optional<graph::Path> best;
      for (graph::NodeId s : spec.senders) {
        MCFAIR_REQUIRE(r != s, "receiver cannot sit on a sender node");
        auto path = graph::shortestPath(g, s, r);
        if (path && (!best || path->hopCount() < best->hopCount())) {
          best = std::move(path);
        }
      }
      if (!best) {
        throw ModelError("receiver node " + std::to_string(r.value) +
                         " is unreachable from every sender");
      }
      receivers.push_back(makeReceiver(best->links));
    }
    n.addSession(session(spec.name, spec.type, spec.maxRate,
                         std::move(receivers), spec.linkRateFn));
  }
  return n;
}

Network randomNetwork(util::Rng& rng, const RandomNetworkOptions& opts) {
  MCFAIR_REQUIRE(opts.nodes >= 2, "need at least two nodes");
  MCFAIR_REQUIRE(opts.sessions >= 1, "need at least one session");
  MCFAIR_REQUIRE(opts.maxReceiversPerSession >= 1,
                 "sessions need at least one receiver");
  MCFAIR_REQUIRE(opts.nodes > opts.maxReceiversPerSession,
                 "session members must fit on distinct nodes");

  graph::Graph g;
  g.addNodes(opts.nodes);
  // Random spanning tree: attach each node i>0 to a uniformly random
  // earlier node — guarantees connectivity.
  for (std::uint32_t i = 1; i < opts.nodes; ++i) {
    const auto parent = static_cast<std::uint32_t>(rng.below(i));
    g.addLink(graph::NodeId{i}, graph::NodeId{parent},
              rng.uniform(opts.minCapacity, opts.maxCapacity));
  }
  for (std::size_t e = 0; e < opts.extraLinks; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(opts.nodes));
    auto b = static_cast<std::uint32_t>(rng.below(opts.nodes));
    if (a == b) b = (b + 1) % opts.nodes;
    g.addLink(graph::NodeId{a}, graph::NodeId{b},
              rng.uniform(opts.minCapacity, opts.maxCapacity));
  }

  std::vector<RoutedSessionSpec> specs;
  for (std::size_t s = 0; s < opts.sessions; ++s) {
    const std::size_t nReceivers =
        1 + rng.below(opts.maxReceiversPerSession);
    // Sender + receivers on distinct nodes.
    const auto members =
        rng.sampleWithoutReplacement(opts.nodes, nReceivers + 1);
    RoutedSessionSpec spec;
    spec.sender = graph::NodeId{static_cast<std::uint32_t>(members[0])};
    for (std::size_t k = 1; k < members.size(); ++k) {
      spec.receivers.push_back(
          graph::NodeId{static_cast<std::uint32_t>(members[k])});
    }
    spec.type = rng.bernoulli(opts.singleRateProbability)
                    ? SessionType::kSingleRate
                    : SessionType::kMultiRate;
    if (rng.bernoulli(opts.finiteMaxRateProbability)) {
      spec.maxRate = rng.uniform(opts.sigmaMin, opts.sigmaMax);
    }
    spec.name = "S" + std::to_string(s + 1);
    specs.push_back(std::move(spec));
  }
  return fromGraph(g, specs);
}

}  // namespace mcfair::net
