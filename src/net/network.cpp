#include "net/network.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace mcfair::net {

std::uint64_t Network::nextIdentity() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Only the move assignment enumerates the data members; the other
// special members delegate to it, so a future member addition has one
// place to go wrong instead of four.
Network& Network::operator=(Network&& other) noexcept {
  if (this != &other) {
    capacities_ = std::move(other.capacities_);
    sessions_ = std::move(other.sessions_);
    linkIndex_ = std::move(other.linkIndex_);
    receiverIndex_ = std::move(other.receiverIndex_);
    receiverOffsets_ = std::move(other.receiverOffsets_);
    receiverCount_ = other.receiverCount_;
    identity_ = other.identity_;
    structureIdentity_ = other.structureIdentity_;
    other.receiverCount_ = 0;
    other.identity_ = nextIdentity();
    other.structureIdentity_ = nextIdentity();
  }
  return *this;
}

Network::Network(Network&& other) noexcept { *this = std::move(other); }

Network::Network(const Network& other)
    : capacities_(other.capacities_),
      sessions_(other.sessions_),
      linkIndex_(other.linkIndex_),
      receiverIndex_(other.receiverIndex_),
      receiverOffsets_(other.receiverOffsets_),
      receiverCount_(other.receiverCount_) {}

Network& Network::operator=(const Network& other) {
  if (this != &other) {
    Network tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Receiver makeReceiver(std::vector<graph::LinkId> path, std::string name) {
  Receiver r;
  r.dataPath = std::move(path);
  r.name = std::move(name);
  return r;
}

Session makeUnicastSession(std::vector<graph::LinkId> path, double maxRate,
                           std::string name) {
  Session s;
  s.type = SessionType::kMultiRate;  // a unicast session behaves identically
                                     // under either type (Section 2)
  s.maxRate = maxRate;
  s.receivers.push_back(makeReceiver(std::move(path)));
  s.name = std::move(name);
  return s;
}

graph::LinkId Network::addLink(double capacity) {
  MCFAIR_REQUIRE(capacity > 0.0, "link capacity must be positive");
  const graph::LinkId id{static_cast<std::uint32_t>(capacities_.size())};
  capacities_.push_back(capacity);
  linkIndex_.emplace_back();
  identity_ = nextIdentity();
  structureIdentity_ = nextIdentity();
  return id;
}

std::size_t Network::addSession(Session s) {
  MCFAIR_REQUIRE(!s.receivers.empty(), "a session needs >= 1 receiver");
  MCFAIR_REQUIRE(s.maxRate > 0.0, "maximum desired rate must be positive");
  if (s.type == SessionType::kSingleRate) {
    // A single-rate session delivers one rate to everyone; per-receiver
    // weights would contradict that.
    for (const Receiver& r : s.receivers) {
      MCFAIR_REQUIRE(r.weight == s.receivers.front().weight,
                     "single-rate sessions require uniform receiver "
                     "weights");
    }
  }
  if (!s.linkRateFn) s.linkRateFn = efficientMax();
  const std::size_t idx = sessions_.size();
  for (std::size_t k = 0; k < s.receivers.size(); ++k) {
    auto& path = s.receivers[k].dataPath;
    MCFAIR_REQUIRE(!path.empty(), "receiver data-path must be non-empty");
    MCFAIR_REQUIRE(s.receivers[k].weight > 0.0,
                   "receiver weights must be positive");
    std::sort(path.begin(), path.end());
    path.erase(std::unique(path.begin(), path.end()), path.end());
    for (graph::LinkId l : path) checkLink(l);
    for (graph::LinkId l : path) {
      linkIndex_[l.value].push_back(ReceiverRef{idx, k});
    }
  }
  for (std::size_t k = 0; k < s.receivers.size(); ++k) {
    receiverIndex_.push_back(ReceiverRef{idx, k});
  }
  if (receiverOffsets_.empty()) receiverOffsets_.push_back(0);
  receiverOffsets_.push_back(receiverCount_ + s.receivers.size());
  receiverCount_ += s.receivers.size();
  sessions_.push_back(std::move(s));
  identity_ = nextIdentity();
  structureIdentity_ = nextIdentity();
  return idx;
}

double Network::capacity(graph::LinkId l) const {
  checkLink(l);
  return capacities_[l.value];
}

const Session& Network::session(std::size_t i) const {
  checkSessionIndex(i);
  return sessions_[i];
}

std::span<const ReceiverRef> Network::receiversOnLink(graph::LinkId l) const {
  checkLink(l);
  return linkIndex_[l.value];
}

std::vector<ReceiverRef> Network::sessionReceiversOnLink(
    std::size_t i, graph::LinkId l) const {
  checkSessionIndex(i);
  checkLink(l);
  std::vector<ReceiverRef> out;
  for (ReceiverRef ref : linkIndex_[l.value]) {
    if (ref.session == i) out.push_back(ref);
  }
  return out;
}

bool Network::onLink(ReceiverRef ref, graph::LinkId l) const {
  checkSessionIndex(ref.session);
  checkLink(l);
  const auto& path = sessions_[ref.session].receivers.at(ref.receiver).dataPath;
  return std::binary_search(path.begin(), path.end(), l);
}

std::vector<graph::LinkId> Network::sessionDataPath(std::size_t i) const {
  checkSessionIndex(i);
  std::vector<graph::LinkId> out;
  for (const Receiver& r : sessions_[i].receivers) {
    out.insert(out.end(), r.dataPath.begin(), r.dataPath.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ReceiverRef> Network::allReceivers() const {
  return {receiverIndex_.begin(), receiverIndex_.end()};
}

std::size_t Network::receiverOffset(std::size_t i) const {
  if (i == sessions_.size()) return receiverCount_;
  checkSessionIndex(i);
  return receiverOffsets_[i];
}

Network Network::withSessionType(std::size_t i, SessionType type) const {
  checkSessionIndex(i);
  Network copy = *this;
  copy.sessions_[i].type = type;
  return copy;
}

Network Network::withLinkRateFunction(std::size_t i,
                                      LinkRateFunctionPtr fn) const {
  checkSessionIndex(i);
  MCFAIR_REQUIRE(fn != nullptr, "link rate function must be non-null");
  Network copy = *this;
  copy.sessions_[i].linkRateFn = std::move(fn);
  return copy;
}

Network Network::withoutReceiver(ReceiverRef ref) const {
  checkSessionIndex(ref.session);
  const auto& sess = sessions_[ref.session];
  MCFAIR_REQUIRE(ref.receiver < sess.receivers.size(),
                 "receiver index out of range");
  MCFAIR_REQUIRE(sess.receivers.size() > 1,
                 "cannot remove the last receiver of a session");
  Network copy = *this;
  auto& receivers = copy.sessions_[ref.session].receivers;
  receivers.erase(receivers.begin() +
                  static_cast<std::ptrdiff_t>(ref.receiver));
  copy.receiverCount_ -= 1;
  copy.reindex();
  return copy;
}

void Network::setCapacity(graph::LinkId l, double capacity) {
  checkLink(l);
  MCFAIR_REQUIRE(capacity >= 0.0,
                 "setCapacity requires a non-negative capacity "
                 "(0 models a failed link)");
  capacities_[l.value] = capacity;
  identity_ = nextIdentity();
  // structureIdentity_ deliberately unchanged: the shape is intact.
}

Network Network::withCapacity(graph::LinkId l, double capacity) const {
  checkLink(l);
  MCFAIR_REQUIRE(capacity > 0.0, "link capacity must be positive");
  Network copy = *this;
  copy.capacities_[l.value] = capacity;
  return copy;
}

void Network::checkSessionIndex(std::size_t i) const {
  if (i >= sessions_.size()) {
    throw ModelError("session index " + std::to_string(i) +
                     " out of range (network has " +
                     std::to_string(sessions_.size()) + " sessions)");
  }
}

void Network::checkLink(graph::LinkId l) const {
  if (l.value >= capacities_.size()) {
    throw ModelError("link id " + std::to_string(l.value) +
                     " out of range (network has " +
                     std::to_string(capacities_.size()) + " links)");
  }
}

void Network::reindex() {
  identity_ = nextIdentity();
  structureIdentity_ = nextIdentity();
  for (auto& list : linkIndex_) list.clear();
  receiverIndex_.clear();
  receiverOffsets_.assign(1, 0);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    for (std::size_t k = 0; k < sessions_[i].receivers.size(); ++k) {
      receiverIndex_.push_back(ReceiverRef{i, k});
      for (graph::LinkId l : sessions_[i].receivers[k].dataPath) {
        linkIndex_[l.value].push_back(ReceiverRef{i, k});
      }
    }
    receiverOffsets_.push_back(receiverIndex_.size());
  }
}

bool structurallyEqual(const Network& a, const Network& b) {
  if (a.linkCount() != b.linkCount() ||
      a.sessionCount() != b.sessionCount()) {
    return false;
  }
  for (std::uint32_t l = 0; l < a.linkCount(); ++l) {
    if (a.capacity(graph::LinkId{l}) != b.capacity(graph::LinkId{l})) {
      return false;
    }
  }
  // Rate-set probes that distinguish the shipped link-rate families:
  // shared-link pairs expose ConstantFactor's v and (at several scales)
  // RandomJoinExpected's sigma-dependent curve, the singleton stays
  // efficient under both. A probe outside a function's domain (e.g.
  // RandomJoinExpected with sigma < max rate) throws; two functions
  // compare equal on such a probe only when both reject it — so
  // functions whose domain excludes every probe (RandomJoinExpected
  // with sigma < 1/16) are told apart by rejection pattern alone.
  static constexpr double kPair[] = {1.0, 2.0};
  static constexpr double kSolo[] = {1.5};
  static constexpr double kTriple[] = {0.25, 0.5, 1.0};
  static constexpr double kSmallPair[] = {0.25, 0.5};
  static constexpr double kTinyPair[] = {0.03125, 0.0625};
  const auto probeEqual = [](const LinkRateFunction& fa,
                             const LinkRateFunction& fb,
                             std::span<const double> rates) {
    double va = 0.0, vb = 0.0;
    bool oka = true, okb = true;
    try {
      va = fa.linkRate(rates);
    } catch (const std::exception&) {
      oka = false;
    }
    try {
      vb = fb.linkRate(rates);
    } catch (const std::exception&) {
      okb = false;
    }
    return oka == okb && (!oka || va == vb);
  };
  for (std::size_t i = 0; i < a.sessionCount(); ++i) {
    const Session& sa = a.session(i);
    const Session& sb = b.session(i);
    if (sa.type != sb.type || sa.maxRate != sb.maxRate ||
        sa.name != sb.name ||
        sa.receivers.size() != sb.receivers.size()) {
      return false;
    }
    for (const auto probe : {std::span<const double>(kPair),
                             std::span<const double>(kSolo),
                             std::span<const double>(kTriple),
                             std::span<const double>(kSmallPair),
                             std::span<const double>(kTinyPair)}) {
      if (!probeEqual(*sa.linkRateFn, *sb.linkRateFn, probe)) return false;
    }
    for (std::size_t k = 0; k < sa.receivers.size(); ++k) {
      const Receiver& ra = sa.receivers[k];
      const Receiver& rb = sb.receivers[k];
      if (ra.dataPath != rb.dataPath || ra.weight != rb.weight ||
          ra.name != rb.name) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mcfair::net
