#include "net/link_rate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::net {

namespace {
double maxOf(std::span<const double> rates) {
  MCFAIR_REQUIRE(!rates.empty(), "link rate of an empty receiver set");
  double m = 0.0;
  for (double r : rates) {
    MCFAIR_REQUIRE(r >= 0.0, "receiver rates must be non-negative");
    m = std::max(m, r);
  }
  return m;
}
}  // namespace

double LinkRateFunction::redundancy(std::span<const double> rates) const {
  const double m = maxOf(rates);
  if (m == 0.0) return 1.0;
  return linkRate(rates) / m;
}

double EfficientMax::linkRate(std::span<const double> rates) const {
  return maxOf(rates);
}

ConstantFactor::ConstantFactor(double factor) : factor_(factor) {
  MCFAIR_REQUIRE(factor >= 1.0, "redundancy factor must be >= 1");
}

double ConstantFactor::linkRate(std::span<const double> rates) const {
  const double m = maxOf(rates);
  return rates.size() >= 2 ? factor_ * m : m;
}

RandomJoinExpected::RandomJoinExpected(double sigma) : sigma_(sigma) {
  MCFAIR_REQUIRE(sigma > 0.0, "layer rate sigma must be positive");
}

double RandomJoinExpected::linkRate(std::span<const double> rates) const {
  const double m = maxOf(rates);
  MCFAIR_REQUIRE(m <= sigma_ * (1.0 + 1e-12),
                 "receiver rate exceeds layer rate sigma");
  double survive = 1.0;  // probability a given packet is wanted by nobody
  for (double r : rates) survive *= 1.0 - std::min(r, sigma_) / sigma_;
  return sigma_ * (1.0 - survive);
}

LinkRateFunctionPtr efficientMax() {
  static const auto instance = std::make_shared<const EfficientMax>();
  return instance;
}

LinkRateFunctionPtr makeLinkRateFunction(const LinkRateSpec& spec) {
  if (spec.family == "efficient") {
    return nullptr;
  }
  if (spec.family == "constant") {
    MCFAIR_REQUIRE(std::isfinite(spec.param) && spec.param >= 1.0,
                   "constant link-rate factor must be finite and >= 1");
    return std::make_shared<const ConstantFactor>(spec.param);
  }
  if (spec.family == "randomjoin") {
    MCFAIR_REQUIRE(std::isfinite(spec.param) && spec.param > 0.0,
                   "randomjoin layer rate sigma must be finite and positive");
    return std::make_shared<const RandomJoinExpected>(spec.param);
  }
  MCFAIR_REQUIRE(false,
                 "unknown link-rate family '" + spec.family +
                     "' (registry: efficient, constant, randomjoin)");
  return nullptr;
}

LinkRateSpec describeLinkRateFunction(const LinkRateFunction* fn) {
  if (fn == nullptr || dynamic_cast<const EfficientMax*>(fn) != nullptr) {
    return LinkRateSpec{};
  }
  if (const auto* c = dynamic_cast<const ConstantFactor*>(fn)) {
    return LinkRateSpec{"constant", c->factor()};
  }
  if (const auto* r = dynamic_cast<const RandomJoinExpected*>(fn)) {
    return LinkRateSpec{"randomjoin", r->sigma()};
  }
  MCFAIR_REQUIRE(false,
                 "link-rate function outside the named registry families "
                 "cannot be described (or serialized)");
  return LinkRateSpec{};
}

}  // namespace mcfair::net
