#include "net/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcfair::net {

void FaultSchedule::normalize(std::size_t linkCount) {
  for (const FaultEvent& e : events) {
    MCFAIR_REQUIRE(std::isfinite(e.time) && e.time >= 0.0,
                   "fault event times must be finite and >= 0");
    MCFAIR_REQUIRE(e.link.value < linkCount,
                   "fault event references a link outside the network");
    MCFAIR_REQUIRE(e.kind != FaultKind::kDegrade ||
                       (std::isfinite(e.factor) && e.factor > 0.0),
                   "degrade events need a positive finite factor");
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.link.value != b.link.value) {
                return a.link.value < b.link.value;
              }
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

FaultSchedule randomFaultSchedule(std::size_t linkCount, double horizon,
                                  const RandomFaultOptions& options,
                                  std::uint64_t seed) {
  MCFAIR_REQUIRE(options.mtbf > 0.0 && options.mttr > 0.0,
                 "mtbf and mttr must be positive");
  MCFAIR_REQUIRE(std::isfinite(horizon) && horizon >= 0.0,
                 "fault horizon must be finite and >= 0");
  MCFAIR_REQUIRE(options.degradeFactor >= 0.0 &&
                     options.degradeFactor < 1.0,
                 "degradeFactor must lie in [0, 1) (0 = full link-down)");
  FaultSchedule schedule;
  util::Rng root(seed);
  // One child stream per link, split in link order, so adding links to
  // the tail of a network cannot reshuffle earlier links' processes.
  for (std::size_t l = 0; l < linkCount; ++l) {
    util::Rng rng = root.split();
    double t = 0.0;
    while (true) {
      // Exponential inverse transform; 1 - u avoids log(0).
      t += -options.mtbf * std::log(1.0 - rng.uniform01());
      if (t >= horizon) break;
      FaultEvent down;
      down.time = t;
      down.link = graph::LinkId{static_cast<std::uint32_t>(l)};
      if (options.degradeFactor > 0.0) {
        down.kind = FaultKind::kDegrade;
        down.factor = options.degradeFactor;
      } else {
        down.kind = FaultKind::kLinkDown;
      }
      schedule.events.push_back(down);
      t += -options.mttr * std::log(1.0 - rng.uniform01());
      if (t >= horizon) break;
      FaultEvent up;
      up.time = t;
      up.kind = FaultKind::kLinkUp;
      up.link = down.link;
      schedule.events.push_back(up);
    }
  }
  schedule.normalize(linkCount);
  return schedule;
}

}  // namespace mcfair::net
