// Network — the tuple N = (G, {S_1..S_m}, tau, chi) of the paper.
//
// The fairness machinery never needs node positions, only (a) link
// capacities and (b) each receiver's data-path as a set of links, so a
// Network stores exactly that. Use fromTrees()/topologies.hpp to derive
// data-paths from a Graph via multicast routing, or add paths explicitly
// to reproduce the paper's hand-drawn examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/session.hpp"

namespace mcfair::net {

/// The network model consumed by the max-min solver and property checkers.
class Network {
 public:
  Network() = default;
  // Identity travels with the contents on move; the gutted source gets a
  // fresh one so a cache bound to it cannot mistake it for the original.
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;
  // Copies are distinct structures: they get a fresh identity so caches
  // keyed on identity() never confuse a copy for the original.
  Network(const Network& other);
  Network& operator=(const Network& other);

  /// Adds a link with the given positive capacity; returns its id l_j.
  graph::LinkId addLink(double capacity);

  /// Adds a session. Validates: at least one receiver, non-empty
  /// data-paths referencing existing links, positive maxRate. Data-paths
  /// are normalized to sorted unique link sets. A null linkRateFn is
  /// replaced by EfficientMax. Returns the session index i.
  std::size_t addSession(Session s);

  std::size_t linkCount() const noexcept { return capacities_.size(); }
  std::size_t sessionCount() const noexcept { return sessions_.size(); }

  double capacity(graph::LinkId l) const;
  const Session& session(std::size_t i) const;

  /// Total number of receivers over all sessions.
  std::size_t receiverCount() const noexcept { return receiverCount_; }

  /// R_j: receivers (across sessions) whose data-path includes l_j,
  /// ordered by (session, receiver). A view into the link index; valid
  /// until the network is mutated.
  std::span<const ReceiverRef> receiversOnLink(graph::LinkId l) const;

  /// R_{i,j}: receivers of session i whose data-path includes l_j.
  std::vector<ReceiverRef> sessionReceiversOnLink(std::size_t i,
                                                  graph::LinkId l) const;

  /// True when receiver `ref`'s data-path includes l_j.
  bool onLink(ReceiverRef ref, graph::LinkId l) const;

  /// The session data-path: union of its receivers' data-paths, sorted.
  std::vector<graph::LinkId> sessionDataPath(std::size_t i) const;

  /// All receivers in (session, receiver) order — a view into a cached
  /// index, valid until the network is mutated. Prefer this over
  /// allReceivers() on hot paths.
  std::span<const ReceiverRef> receiverRefs() const noexcept {
    return receiverIndex_;
  }

  /// All receivers in (session, receiver) order (owned copy).
  std::vector<ReceiverRef> allReceivers() const;

  /// Flat receiver numbering: receiverOffset(i) + k indexes r_{i,k} in
  /// [0, receiverCount()). receiverOffset(sessionCount()) == count.
  std::size_t receiverOffset(std::size_t i) const;

  /// Flat index of `ref` under the receiverOffset numbering.
  std::size_t flatIndex(ReceiverRef ref) const {
    return receiverOffset(ref.session) + ref.receiver;
  }

  /// Process-unique id of this network's current structure. Changes on
  /// every mutation (addLink/addSession) and differs between copies, so
  /// an equal identity guarantees an identical structure — the max-min
  /// solver uses it to skip rebinding an unchanged network.
  std::uint64_t identity() const noexcept { return identity_; }

  /// Process-unique id of the network's *shape*: the links, sessions and
  /// data-paths, but not the capacity values. setCapacity() preserves it
  /// while every structural mutation (addLink/addSession/reindex) and
  /// every copy changes it. An equal structureIdentity guarantees that
  /// only capacities can differ — the max-min solver uses it to take the
  /// O(links) capacity-refresh rebind instead of a full rebuild.
  std::uint64_t structureIdentity() const noexcept {
    return structureIdentity_;
  }

  // --- What-if copies used by the Lemma/Corollary experiments. ---

  /// Copy with session i's type replaced.
  Network withSessionType(std::size_t i, SessionType type) const;

  /// Copy with session i's link-rate function replaced (non-null).
  Network withLinkRateFunction(std::size_t i, LinkRateFunctionPtr fn) const;

  /// Copy with receiver (i,k) removed. The session must keep at least one
  /// receiver.
  Network withoutReceiver(ReceiverRef ref) const;

  /// Copy with link capacity replaced.
  Network withCapacity(graph::LinkId l, double capacity) const;

  // --- Fault delta path (see net/fault.hpp). ---

  /// Replaces a link's capacity in place. Unlike addLink/withCapacity,
  /// a zero capacity is allowed here — it models a failed (down) link;
  /// the max-min solver freezes every receiver crossing it at rate 0.
  /// Bumps identity() (allocations change) but not structureIdentity()
  /// (the session/link shape is untouched), so a bound MaxMinSolver
  /// refreshes only its capacity-derived arrays on the next bind —
  /// O(links), allocation-free — instead of rebuilding its workspace.
  void setCapacity(graph::LinkId l, double capacity);

 private:
  void checkSessionIndex(std::size_t i) const;
  void checkLink(graph::LinkId l) const;
  void reindex();
  static std::uint64_t nextIdentity() noexcept;

  std::vector<double> capacities_;
  std::vector<Session> sessions_;
  std::vector<std::vector<ReceiverRef>> linkIndex_;  // R_j per link
  std::vector<ReceiverRef> receiverIndex_;           // all refs, flat order
  std::vector<std::size_t> receiverOffsets_;         // session -> flat base
  std::size_t receiverCount_ = 0;
  std::uint64_t identity_ = nextIdentity();
  std::uint64_t structureIdentity_ = nextIdentity();
};

/// True when two networks describe the same model: equal link
/// capacities, sessions (type, sigma, name) and receivers (data-path,
/// weight, name), position by position. Link-rate functions are
/// compared behaviorally on a small probe of rate sets; a probe outside
/// a function's domain counts as equal only when both functions reject
/// it. This is exact for the shipped families at practical parameters —
/// functions whose domain excludes every probe (RandomJoinExpected with
/// sigma < 1/16) are distinguished by rejection pattern only.
/// identity() plays no part, so copies and independently built
/// structures (e.g. a netfile round-trip) compare equal.
bool structurallyEqual(const Network& a, const Network& b);

}  // namespace mcfair::net
