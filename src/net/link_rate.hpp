// Session link-rate (redundancy) functions v_i — Section 3.1 of the paper.
//
// Given the set of rates {a_{i,k} : r_{i,k} in R_{i,j}} of a session's
// receivers whose data-paths traverse link l_j, a LinkRateFunction returns
// the bandwidth u_{i,j} the session consumes on that link. The paper's
// Section 2 assumes the efficient value u_{i,j} = max{a_{i,k}}; Section 3
// generalizes to arbitrary v_i with v_i(X) >= max(X) to model the
// redundancy of imperfectly-coordinated layered join/leave schedules.
//
// Implementations must be (a) monotone non-decreasing in every rate and
// (b) bounded below by max(X); the max-min solver's bisection relies on
// monotonicity, and the paper's model requires u_{i,j} >= a_{i,k}.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace mcfair::net {

/// Abstract session link-rate function v_i (Section 3.1).
class LinkRateFunction {
 public:
  virtual ~LinkRateFunction() = default;

  /// Bandwidth used on a link by a session whose receivers crossing that
  /// link have the given rates. `rates` is non-empty; all entries >= 0.
  /// Implementations must be safe for concurrent linkRate() calls
  /// (stateless, or internally synchronized): the solver's parallel mode
  /// (fairness::MaxMinOptions::threads / MCFAIR_THREADS) evaluates v_i
  /// from multiple worker threads. Every function shipped here is
  /// immutable after construction and trivially satisfies this.
  virtual double linkRate(std::span<const double> rates) const = 0;

  /// The redundancy of the function for a given rate set:
  /// v(X) / max(X) (Definition 3). Returns 1 for an all-zero rate set.
  double redundancy(std::span<const double> rates) const;
};

/// The efficient (Section 2) link rate: u = max(X); redundancy 1.
class EfficientMax final : public LinkRateFunction {
 public:
  double linkRate(std::span<const double> rates) const override;
};

/// Constant-factor redundancy v (used by Figure 4, Figure 6 and Lemma 4):
/// u = v * max(X) when the link is shared by two or more of the session's
/// receivers, u = max(X) when a single receiver uses it (redundancy arises
/// from imperfect coordination *between* receivers, so a solo receiver's
/// link is always efficient).
class ConstantFactor final : public LinkRateFunction {
 public:
  /// `factor` >= 1.
  explicit ConstantFactor(double factor);

  double linkRate(std::span<const double> rates) const override;
  double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

/// The expected link rate under uncoordinated (random) joins within a
/// single layer of aggregate rate sigma — the Appendix B closed form:
///   E[U] = sigma * (1 - prod_t (1 - a_t / sigma)).
/// Requires every rate <= sigma.
class RandomJoinExpected final : public LinkRateFunction {
 public:
  /// `sigma` > 0 is the layer transmission rate.
  explicit RandomJoinExpected(double sigma);

  double linkRate(std::span<const double> rates) const override;
  double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
};

/// Shared-ownership handle used by Session; EfficientMax by default.
using LinkRateFunctionPtr = std::shared_ptr<const LinkRateFunction>;

/// The process-wide EfficientMax instance.
LinkRateFunctionPtr efficientMax();

/// A named, one-parameter link-rate family — the serializable handle the
/// netfile format uses. The registry:
///
///   family       param            instantiates
///   "efficient"  ignored          (none: Session's default, u = max X)
///   "constant"   factor >= 1      ConstantFactor(factor)
///   "randomjoin" sigma > 0        RandomJoinExpected(sigma)
struct LinkRateSpec {
  std::string family = "efficient";
  double param = 1.0;

  bool efficient() const noexcept { return family == "efficient"; }
  friend bool operator==(const LinkRateSpec&, const LinkRateSpec&) = default;
};

/// Instantiates a registry family; "efficient" yields null (Session
/// treats a null linkRateFn as the efficient max). Throws
/// util::PreconditionError on an unknown family name or an out-of-range
/// parameter.
LinkRateFunctionPtr makeLinkRateFunction(const LinkRateSpec& spec);

/// The inverse: recovers the LinkRateSpec of a function instantiated by
/// makeLinkRateFunction (null and EfficientMax both map back to
/// "efficient"). Throws util::PreconditionError for a function outside
/// the named families — i.e. one the text format cannot express.
LinkRateSpec describeLinkRateFunction(const LinkRateFunction* fn);

}  // namespace mcfair::net
