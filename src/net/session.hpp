// Sessions and receivers — the paper's Table 1 vocabulary.
//
// A session S_i = (X_i, {r_{i,1}, ..., r_{i,k_i}}) has one sender and at
// least one receiver. Its type chi(S_i) is single-rate (all receivers must
// receive at the same rate) or multi-rate (rates chosen independently, as
// layered multicast permits). sigma_i is the session's maximum desired
// rate. Each receiver's data-path is the set of links carrying data from
// the sender to it.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/link_rate.hpp"

namespace mcfair::net {

/// chi(S_i): the session type (Section 2).
enum class SessionType {
  kSingleRate,  ///< all receivers receive at one uniform rate
  kMultiRate,   ///< receiver rates are independent (layered delivery)
};

/// sigma_i = infinity: the session never self-limits.
inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

/// One receiver r_{i,k} and its data-path.
struct Receiver {
  /// Links on the path from the sender, stored sorted and deduplicated
  /// (the fairness model treats the data-path as a set). Never empty.
  std::vector<graph::LinkId> dataPath;
  /// Diagnostic label, e.g. "r2,1".
  std::string name;
  /// Weight for weighted max-min fairness (Section 5 of the paper:
  /// "a receiver's rate is weighted by the inverse of round trip time"
  /// approximates TCP-fairness). The solver maximizes min(rate/weight)
  /// lexicographically; weight 1 everywhere gives plain max-min
  /// fairness. Must be positive.
  double weight = 1.0;
};

/// One session S_i.
struct Session {
  SessionType type = SessionType::kMultiRate;
  /// Maximum desired rate sigma_i (0 < sigma_i <= infinity).
  double maxRate = kUnlimitedRate;
  std::vector<Receiver> receivers;
  /// Session link-rate function v_i (Section 3.1); EfficientMax gives the
  /// Section 2 model. Never null once added to a Network.
  LinkRateFunctionPtr linkRateFn;
  /// Diagnostic label, e.g. "S1".
  std::string name;
};

/// Identifies receiver r_{i,k} as (session index i, receiver index k).
struct ReceiverRef {
  std::size_t session = 0;
  std::size_t receiver = 0;
  friend bool operator==(ReceiverRef, ReceiverRef) = default;
  friend auto operator<=>(ReceiverRef, ReceiverRef) = default;
};

/// Convenience builder for a receiver from an arbitrary link list.
Receiver makeReceiver(std::vector<graph::LinkId> path, std::string name = "");

/// Convenience builder for a unicast session (one receiver).
Session makeUnicastSession(std::vector<graph::LinkId> path,
                           double maxRate = kUnlimitedRate,
                           std::string name = "");

}  // namespace mcfair::net
