// Compact binary snapshot of a Network — the fast load/replicate form
// of the netfile graph the always-on service persists.
//
// The text netfile (net/netfile.hpp) is the human-facing format; a
// long-lived serving process wants a byte-exact, cheap-to-parse image
// instead. A snapshot stores exactly what Network holds — link
// capacities, sessions (type, sigma, registry link-rate family,
// receivers with weights and data-paths) — as fixed-width
// little-endian integers, with doubles written as their raw IEEE-754
// bit patterns (bit_cast to uint64), so a write -> read round trip is
// bit-identical for every value including infinities. Link-rate
// functions are restricted to the named LinkRateSpec registry families,
// the same expressiveness boundary the text format has.
//
// Layout: magic 'MCFS', format version, the payload described above,
// then an FNV-1a checksum of everything before it. readNetworkSnapshot
// verifies the checksum and bounds-checks every read; any truncation or
// corruption throws SnapshotError rather than constructing a
// half-parsed network.
//
// The snapshotio helpers are shared with the service's delta journal
// (serve/journal.hpp), which frames the same primitives into an
// append-only record stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "net/network.hpp"

namespace mcfair::net {

/// Snapshot read failure: truncated input, checksum mismatch, version
/// or range violations. The message names the failing field.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes `net` (structure + current capacities). Throws
/// SnapshotError when a session's link-rate function is outside the
/// LinkRateSpec registry families (the binary format, like the text
/// one, cannot express it).
void writeNetworkSnapshot(std::ostream& out, const Network& net);

/// Parses a snapshot produced by writeNetworkSnapshot. The result is
/// structurallyEqual() to the written network and every double is
/// bit-identical. Throws SnapshotError on any malformed input.
Network readNetworkSnapshot(std::istream& in);

/// Convenience wrappers over an in-memory byte buffer.
std::string networkSnapshotBytes(const Network& net);
Network networkFromSnapshotBytes(const std::string& bytes);

namespace snapshotio {

// --- Little-endian primitive writers (append to a byte buffer). ---

void putU8(std::string& out, std::uint8_t v);
void putU32(std::string& out, std::uint32_t v);
void putU64(std::string& out, std::uint64_t v);
/// Raw IEEE-754 bits; round-trips every value including inf/NaN.
void putF64(std::string& out, double v);
/// Length-prefixed (u32) byte string.
void putString(std::string& out, const std::string& s);

/// FNV-1a 64-bit checksum of a byte range.
std::uint64_t fnv1a(const char* data, std::size_t size) noexcept;

/// Bounds-checked reader over a byte buffer; every accessor throws
/// SnapshotError (naming `what`) instead of reading past the end.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Cursor(const std::string& bytes)
      : Cursor(bytes.data(), bytes.size()) {}

  std::uint8_t u8(const char* what);
  std::uint32_t u32(const char* what);
  std::uint64_t u64(const char* what);
  double f64(const char* what);
  std::string str(const char* what);

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  const char* take(std::size_t n, const char* what);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace snapshotio

}  // namespace mcfair::net
