// Text format for describing networks — lets the fairshare CLI (and
// tests) build models without writing C++.
//
// Two mutually exclusive dialects share one parser ('#' starts a
// comment; blank lines are ignored; one directive per line).
//
// Flat dialect — links and explicit per-receiver data-paths:
//
//   link <name> <capacity>
//   session <name> <multi|single> [sigma=<rate>] [redundancy=<factor>]
//   receiver <session> <name> <link>[,<link>...] [weight=<w>]
//
// Example:
//
//   # one bottleneck, a layered video session and a web flow
//   link backbone 10
//   link dsl 1
//   session video multi sigma=8
//   receiver video home backbone,dsl
//   receiver video office backbone weight=2
//   session web multi
//   receiver web w1 backbone
//
// Graph dialect — a general graph plus routing metadata; data-paths are
// *derived* by the routing-policy layer (graph/route_plan.hpp), so the
// file stays valid as a description of meshed topologies where several
// paths exist between any two nodes:
//
//   nodes <count>
//   edge <name> <nodeA> <nodeB> <capacity> [weight=<w>]
//   routing <hops|weighted>
//   session <name> <multi|single> [sigma=<rate>] [redundancy=<factor>]
//   sender <session> <node>
//   member <session> <name> <node> [weight=<w>]
//
// Example:
//
//   nodes 4
//   edge e0 0 1 10
//   edge e1 1 2 10
//   edge e2 0 2 10 weight=0.5
//   edge e3 2 3 5
//   routing weighted
//   session video multi sigma=8
//   sender video 0
//   member video home 3
//
// `routing hops` (the default when the directive is omitted) routes on
// hop count; `routing weighted` runs Dijkstra on the edges' `weight=`
// attributes (default 1) with the documented lowest-node-id tie-break.
// `redundancy=v` installs a ConstantFactor link-rate function (Section
// 3.1) on the session; sessions default to efficient (v = 1).
//
// writeRoutedNetworkFile() serializes graph + routing + sessions in the
// graph dialect such that parsing the output reconstructs a
// structurallyEqual() Network (see buildRoutedNetwork).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/route_plan.hpp"
#include "net/network.hpp"

namespace mcfair::net {

/// Parse failure; the message contains the 1-based line number.
class NetfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a network description (either dialect) from a stream. Throws
/// NetfileError on malformed input (unknown directives, duplicate or
/// missing names, unparsable numbers, receivers before their session,
/// empty sessions, mixed dialects, out-of-range nodes, unreachable
/// members).
Network parseNetworkFile(std::istream& in);

/// Convenience wrapper over a string.
Network parseNetworkString(const std::string& text);

/// One session of the graph dialect — the serializable subset of a
/// routed session (redundancy is restricted to the ConstantFactor
/// family the text format can express).
struct GraphSessionSpec {
  std::string name;
  SessionType type = SessionType::kMultiRate;
  double maxRate = kUnlimitedRate;
  /// ConstantFactor redundancy; 1 = efficient (no function written).
  double redundancy = 1.0;
  graph::NodeId sender;
  struct Member {
    std::string name;
    graph::NodeId node;
    double weight = 1.0;
  };
  std::vector<Member> members;
};

/// Builds the Network a graph-dialect file describes: one network link
/// per graph link (capacities copied) and per-member data-paths routed
/// by a RoutePlan over `routing`. Shared by the parser; call it
/// directly to skip the text round-trip. Throws ModelError when a
/// member is unreachable from its sender.
Network buildRoutedNetwork(const graph::Graph& g,
                           const graph::RouteOptions& routing,
                           const std::vector<GraphSessionSpec>& sessions);

/// Serializes graph + routing + sessions in the graph dialect.
/// parseNetworkFile() on the output yields a Network structurallyEqual
/// to buildRoutedNetwork(g, routing, sessions). Names must be non-empty
/// single tokens (no whitespace or '#'); numbers are written with
/// max_digits10 precision so capacities and weights survive exactly.
void writeRoutedNetworkFile(std::ostream& out, const graph::Graph& g,
                            const graph::RouteOptions& routing,
                            const std::vector<GraphSessionSpec>& sessions);

}  // namespace mcfair::net
