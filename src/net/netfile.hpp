// Text format for describing networks — lets the fairshare CLI (and
// tests) build models without writing C++.
//
// Two mutually exclusive dialects share one parser ('#' starts a
// comment; blank lines are ignored; one directive per line).
//
// Flat dialect — links and explicit per-receiver data-paths:
//
//   link <name> <capacity>
//   session <name> <multi|single> [sigma=<rate>] [redundancy=<factor>]
//           [linkrate=<family>[:<param>]]
//   receiver <session> <name> <link>[,<link>...] [weight=<w>]
//   fault <time> <down|up|degrade> <link> [factor]
//
// Example:
//
//   # one bottleneck, a layered video session and a web flow
//   link backbone 10
//   link dsl 1
//   session video multi sigma=8
//   receiver video home backbone,dsl
//   receiver video office backbone weight=2
//   session web multi
//   receiver web w1 backbone
//
// Graph dialect — a general graph plus routing metadata; data-paths are
// *derived* by the routing-policy layer (graph/route_plan.hpp), so the
// file stays valid as a description of meshed topologies where several
// paths exist between any two nodes:
//
//   nodes <count>
//   edge <name> <nodeA> <nodeB> <capacity> [weight=<w>]
//   routing <hops|weighted>
//   session <name> <multi|single> [sigma=<rate>] [redundancy=<factor>]
//           [linkrate=<family>[:<param>]]
//   sender <session> <node>
//   member <session> <name> <node> [weight=<w>]
//   fault <time> <down|up|degrade> <edge> [factor]
//
// Example:
//
//   nodes 4
//   edge e0 0 1 10
//   edge e1 1 2 10
//   edge e2 0 2 10 weight=0.5
//   edge e3 2 3 5
//   routing weighted
//   session video multi sigma=8
//   sender video 0
//   member video home 3
//
// `routing hops` (the default when the directive is omitted) routes on
// hop count; `routing weighted` runs Dijkstra on the edges' `weight=`
// attributes (default 1) with the documented lowest-node-id tie-break.
//
// Link-rate (Section 3.1 redundancy) functions are named through the
// LinkRateSpec registry (net/link_rate.hpp):
// `linkrate=constant:1.5` installs ConstantFactor(1.5),
// `linkrate=randomjoin:8` installs RandomJoinExpected(sigma = 8), and
// `linkrate=efficient` is the default (no function). `redundancy=v` is
// the legacy spelling of `linkrate=constant:v`; the two options are
// mutually exclusive on one session.
//
// `fault` directives (both dialects) accumulate a net::FaultSchedule —
// time-ordered capacity overrides on named links/edges, with `factor`
// required for (and only for) `degrade`. Because a schedule is dynamics,
// not structure, it is returned through the parseNetworkFile overload
// taking a FaultSchedule out-parameter; the schedule-less overloads
// REJECT files containing fault directives rather than silently
// dropping them.
//
// writeRoutedNetworkFile() serializes graph + routing + sessions (and
// optionally a fault schedule) in the graph dialect such that parsing
// the output reconstructs a structurallyEqual() Network (see
// buildRoutedNetwork) and an equal schedule.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/route_plan.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"

namespace mcfair::net {

/// Parse failure; the message contains the 1-based line number.
class NetfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a network description (either dialect) from a stream. Throws
/// NetfileError on malformed input (unknown directives, duplicate or
/// missing names, unparsable numbers, receivers before their session,
/// empty sessions, mixed dialects, out-of-range nodes, unreachable
/// members, fault directives referencing unknown links). Files with
/// fault directives require the `faults` overload — the schedule-less
/// form throws rather than silently discarding dynamics.
Network parseNetworkFile(std::istream& in);

/// As above, additionally collecting `fault` directives into `faults`
/// (normalized; empty when the file has none).
Network parseNetworkFile(std::istream& in, FaultSchedule& faults);

/// Convenience wrappers over a string.
Network parseNetworkString(const std::string& text);
Network parseNetworkString(const std::string& text, FaultSchedule& faults);

/// One session of the graph dialect — the serializable subset of a
/// routed session (link-rate functions are restricted to the named
/// LinkRateSpec registry families the text format can express).
struct GraphSessionSpec {
  std::string name;
  SessionType type = SessionType::kMultiRate;
  double maxRate = kUnlimitedRate;
  /// Registry link-rate family; "efficient" = no function written.
  LinkRateSpec linkRate;
  graph::NodeId sender;
  struct Member {
    std::string name;
    graph::NodeId node;
    double weight = 1.0;
  };
  std::vector<Member> members;
};

/// Builds the Network a graph-dialect file describes: one network link
/// per graph link (capacities copied) and per-member data-paths routed
/// by a RoutePlan over `routing`. Shared by the parser; call it
/// directly to skip the text round-trip. Throws ModelError when a
/// member is unreachable from its sender.
Network buildRoutedNetwork(const graph::Graph& g,
                           const graph::RouteOptions& routing,
                           const std::vector<GraphSessionSpec>& sessions);

/// Serializes graph + routing + sessions in the graph dialect.
/// parseNetworkFile() on the output yields a Network structurallyEqual
/// to buildRoutedNetwork(g, routing, sessions). Names must be non-empty
/// single tokens (no whitespace or '#'); numbers are written with
/// max_digits10 precision so capacities, weights, link-rate parameters
/// and fault times survive exactly. When `faults` is given, its events
/// are appended as `fault` directives (edge names are the written
/// `e<index>` names), so the write -> read round trip also reproduces
/// the schedule.
void writeRoutedNetworkFile(std::ostream& out, const graph::Graph& g,
                            const graph::RouteOptions& routing,
                            const std::vector<GraphSessionSpec>& sessions,
                            const FaultSchedule* faults = nullptr);

}  // namespace mcfair::net
