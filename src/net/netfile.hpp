// Text format for describing networks — lets the fairshare CLI (and
// tests) build models without writing C++.
//
// Grammar (one directive per line; '#' starts a comment; blank lines are
// ignored):
//
//   link <name> <capacity>
//   session <name> <multi|single> [sigma=<rate>] [redundancy=<factor>]
//   receiver <session> <name> <link>[,<link>...] [weight=<w>]
//
// Example:
//
//   # one bottleneck, a layered video session and a web flow
//   link backbone 10
//   link dsl 1
//   session video multi sigma=8
//   receiver video home backbone,dsl
//   receiver video office backbone weight=2
//   session web multi
//   receiver web w1 backbone
//
// `redundancy=v` installs a ConstantFactor link-rate function (Section
// 3.1) on the session; sessions default to efficient (v = 1).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "net/network.hpp"

namespace mcfair::net {

/// Parse failure; the message contains the 1-based line number.
class NetfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a network description from a stream. Throws NetfileError on
/// malformed input (unknown directives, duplicate or missing names,
/// unparsable numbers, receivers before their session, empty sessions).
Network parseNetworkFile(std::istream& in);

/// Convenience wrapper over a string.
Network parseNetworkString(const std::string& text);

}  // namespace mcfair::net
