#include "net/netfile.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace mcfair::net {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw NetfileError("netfile:" + std::to_string(line) + ": " + msg);
}

double parseNumber(std::size_t line, const std::string& token,
                   const char* what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("cannot parse ") + what + " from '" + token +
                   "'");
  }
}

std::uint32_t parseNode(std::size_t line, const std::string& token,
                        std::size_t nodeCount) {
  unsigned long v = 0;
  try {
    std::size_t consumed = 0;
    v = std::stoul(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
  } catch (const std::exception&) {
    fail(line, "cannot parse node id from '" + token + "'");
  }
  if (v >= nodeCount) {
    fail(line, "node id " + token + " out of range (graph has " +
                   std::to_string(nodeCount) + " nodes)");
  }
  return static_cast<std::uint32_t>(v);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> out;
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

// Recognizes "key=value" and returns value, or nullopt.
std::optional<std::string> keyValue(const std::string& token,
                                    const std::string& key) {
  if (token.size() > key.size() + 1 &&
      token.compare(0, key.size(), key) == 0 && token[key.size()] == '=') {
    return token.substr(key.size() + 1);
  }
  return std::nullopt;
}

struct PendingSession {
  Session session;
  std::size_t declaredAtLine = 0;
  // Registry link-rate family as parsed ("efficient" = none); the graph
  // dialect rebuilds the function from this via GraphSessionSpec.
  LinkRateSpec linkRate;
  // Graph dialect only: the sender node and one routed node per
  // receiver already pushed onto session.receivers (whose dataPaths
  // stay empty until finalization routes them).
  bool senderSet = false;
  graph::NodeId senderNode;
  std::vector<graph::NodeId> memberNodes;
};

// Which dialect the directives seen so far commit the file to.
enum class Dialect { kUnset, kFlat, kGraph };

// --- Shared graph-dialect construction core (parser + public
// buildRoutedNetwork must never diverge, or the documented write ->
// read round trip breaks). ---

Network networkWithGraphLinks(const graph::Graph& g) {
  Network n;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    n.addLink(g.capacity(graph::LinkId{l}));
  }
  return n;
}

Session routeSession(graph::RoutePlan& plan, const GraphSessionSpec& spec) {
  Session s;
  s.name = spec.name;
  s.type = spec.type;
  s.maxRate = spec.maxRate;
  if (!spec.linkRate.efficient()) {
    s.linkRateFn = makeLinkRateFunction(spec.linkRate);
  }
  for (const GraphSessionSpec::Member& m : spec.members) {
    Receiver r;
    r.name = m.name;
    r.weight = m.weight;
    r.dataPath = plan.path(spec.sender, m.node);
    s.receivers.push_back(std::move(r));
  }
  return s;
}

// A fault directive awaiting name resolution (link/edge names may be
// declared after the fault line; both maps are only complete at EOF).
struct PendingFault {
  std::size_t line = 0;
  double time = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  std::string linkName;
  double factor = 1.0;
};

Network parseNetworkFileImpl(std::istream& in, FaultSchedule* faults) {
  Network network;  // flat dialect builds into this directly
  std::map<std::string, graph::LinkId> links;
  // Order-preserving pending sessions.
  std::vector<std::pair<std::string, PendingSession>> sessions;
  auto findSession = [&](const std::string& name) -> PendingSession* {
    for (auto& [n, s] : sessions) {
      if (n == name) return &s;
    }
    return nullptr;
  };

  Dialect dialect = Dialect::kUnset;
  auto commit = [&](Dialect wanted, std::size_t line,
                    const std::string& directive) {
    if (dialect == Dialect::kUnset) {
      dialect = wanted;
    } else if (dialect != wanted) {
      fail(line, "'" + directive + "' mixes the " +
                     (wanted == Dialect::kGraph ? "graph" : "flat") +
                     " dialect into a " +
                     (dialect == Dialect::kGraph ? "graph" : "flat") +
                     " file (nodes/edge/sender/member cannot be combined "
                     "with link/receiver)");
    }
  };

  std::vector<PendingFault> pendingFaults;

  // Graph dialect state.
  bool nodesDeclared = false;
  graph::Graph g;
  std::vector<double> edgeWeights;
  std::map<std::string, graph::LinkId> edges;
  bool routingDeclared = false;
  graph::RouteOptions routing;

  std::string raw;
  std::size_t lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "link") {
      commit(Dialect::kFlat, lineNo, directive);
      if (tokens.size() != 3) {
        fail(lineNo, "expected: link <name> <capacity>");
      }
      if (links.count(tokens[1]) != 0) {
        fail(lineNo, "duplicate link name '" + tokens[1] + "'");
      }
      const double capacity = parseNumber(lineNo, tokens[2], "capacity");
      if (!(capacity > 0.0) || !std::isfinite(capacity)) {
        fail(lineNo, "capacity must be finite and positive");
      }
      links.emplace(tokens[1], network.addLink(capacity));
    } else if (directive == "nodes") {
      commit(Dialect::kGraph, lineNo, directive);
      if (tokens.size() != 2) fail(lineNo, "expected: nodes <count>");
      if (nodesDeclared) fail(lineNo, "duplicate nodes directive");
      const double count = parseNumber(lineNo, tokens[1], "node count");
      // Bounded so a short hostile file cannot demand gigabytes (and so
      // the count always fits the uint32 NodeId space).
      constexpr double kMaxNodes = 1 << 20;
      if (!(count >= 1.0) || count != static_cast<double>(
                                          static_cast<std::size_t>(count))) {
        fail(lineNo, "node count must be a positive integer");
      }
      if (count > kMaxNodes) {
        fail(lineNo, "node count exceeds the format limit (2^20)");
      }
      g.addNodes(static_cast<std::size_t>(count));
      nodesDeclared = true;
    } else if (directive == "edge") {
      commit(Dialect::kGraph, lineNo, directive);
      if (!nodesDeclared) fail(lineNo, "declare nodes before edges");
      if (tokens.size() < 5 || tokens.size() > 6) {
        fail(lineNo,
             "expected: edge <name> <nodeA> <nodeB> <capacity> "
             "[weight=<w>]");
      }
      if (edges.count(tokens[1]) != 0) {
        fail(lineNo, "duplicate edge name '" + tokens[1] + "'");
      }
      const std::uint32_t a = parseNode(lineNo, tokens[2], g.nodeCount());
      const std::uint32_t b = parseNode(lineNo, tokens[3], g.nodeCount());
      if (a == b) fail(lineNo, "edge endpoints must be distinct");
      const double capacity = parseNumber(lineNo, tokens[4], "capacity");
      if (!(capacity > 0.0) || !std::isfinite(capacity)) {
        fail(lineNo, "capacity must be finite and positive");
      }
      double weight = 1.0;
      if (tokens.size() == 6) {
        const auto w = keyValue(tokens[5], "weight");
        if (!w) fail(lineNo, "unknown edge option '" + tokens[5] + "'");
        weight = parseNumber(lineNo, *w, "weight");
        if (!(weight >= 0.0) || !std::isfinite(weight)) {
          fail(lineNo, "edge weight must be finite and >= 0");
        }
      }
      edges.emplace(tokens[1],
                    g.addLink(graph::NodeId{a}, graph::NodeId{b}, capacity));
      edgeWeights.push_back(weight);
    } else if (directive == "routing") {
      commit(Dialect::kGraph, lineNo, directive);
      if (tokens.size() != 2) {
        fail(lineNo, "expected: routing <hops|weighted>");
      }
      if (routingDeclared) fail(lineNo, "duplicate routing directive");
      if (tokens[1] == "hops") {
        routing.policy = graph::RoutePolicy::kHopCount;
      } else if (tokens[1] == "weighted") {
        routing.policy = graph::RoutePolicy::kWeighted;
      } else {
        fail(lineNo, "routing must be 'hops' or 'weighted', got '" +
                         tokens[1] + "'");
      }
      routingDeclared = true;
    } else if (directive == "session") {
      if (tokens.size() < 3) {
        fail(lineNo,
             "expected: session <name> <multi|single> [sigma=..] "
             "[redundancy=..]");
      }
      if (findSession(tokens[1]) != nullptr) {
        fail(lineNo, "duplicate session name '" + tokens[1] + "'");
      }
      PendingSession pending;
      pending.declaredAtLine = lineNo;
      pending.session.name = tokens[1];
      if (tokens[2] == "multi") {
        pending.session.type = SessionType::kMultiRate;
      } else if (tokens[2] == "single") {
        pending.session.type = SessionType::kSingleRate;
      } else {
        fail(lineNo, "session type must be 'multi' or 'single', got '" +
                         tokens[2] + "'");
      }
      bool linkRateSeen = false;
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        if (const auto sigma = keyValue(tokens[t], "sigma")) {
          pending.session.maxRate = parseNumber(lineNo, *sigma, "sigma");
          if (!(pending.session.maxRate > 0.0)) {
            fail(lineNo, "sigma must be positive");
          }
        } else if (const auto red = keyValue(tokens[t], "redundancy")) {
          // Legacy spelling of linkrate=constant:<v>.
          if (linkRateSeen) {
            fail(lineNo, "session has more than one link-rate option");
          }
          linkRateSeen = true;
          const double v = parseNumber(lineNo, *red, "redundancy");
          if (!(v >= 1.0) || !std::isfinite(v)) {
            fail(lineNo, "redundancy must be finite and >= 1");
          }
          if (v > 1.0) pending.linkRate = LinkRateSpec{"constant", v};
        } else if (const auto lr = keyValue(tokens[t], "linkrate")) {
          if (linkRateSeen) {
            fail(lineNo, "session has more than one link-rate option");
          }
          linkRateSeen = true;
          const auto colon = lr->find(':');
          LinkRateSpec spec;
          spec.family = lr->substr(0, colon);
          if (colon != std::string::npos) {
            spec.param = parseNumber(lineNo, lr->substr(colon + 1),
                                     "link-rate parameter");
          } else if (spec.family != "efficient") {
            fail(lineNo, "link-rate family '" + spec.family +
                             "' needs ':<param>'");
          }
          // Instantiate now so unknown families and out-of-range
          // parameters fail with this line number.
          try {
            pending.session.linkRateFn = makeLinkRateFunction(spec);
          } catch (const std::exception& e) {
            fail(lineNo, e.what());
          }
          pending.linkRate = spec;
        } else {
          fail(lineNo, "unknown session option '" + tokens[t] + "'");
        }
      }
      if (pending.linkRate.family == "constant") {
        pending.session.linkRateFn =
            std::make_shared<const ConstantFactor>(pending.linkRate.param);
      }
      sessions.emplace_back(tokens[1], std::move(pending));
    } else if (directive == "sender") {
      commit(Dialect::kGraph, lineNo, directive);
      if (!nodesDeclared) fail(lineNo, "declare nodes before senders");
      if (tokens.size() != 3) {
        fail(lineNo, "expected: sender <session> <node>");
      }
      PendingSession* pending = findSession(tokens[1]);
      if (pending == nullptr) {
        fail(lineNo, "sender references unknown session '" + tokens[1] +
                         "' (declare the session first)");
      }
      if (pending->senderSet) {
        fail(lineNo, "session '" + tokens[1] + "' already has a sender");
      }
      pending->senderNode =
          graph::NodeId{parseNode(lineNo, tokens[2], g.nodeCount())};
      pending->senderSet = true;
    } else if (directive == "member") {
      commit(Dialect::kGraph, lineNo, directive);
      if (!nodesDeclared) fail(lineNo, "declare nodes before members");
      if (tokens.size() < 4) {
        fail(lineNo, "expected: member <session> <name> <node> "
                     "[weight=..]");
      }
      PendingSession* pending = findSession(tokens[1]);
      if (pending == nullptr) {
        fail(lineNo, "member references unknown session '" + tokens[1] +
                         "' (declare the session first)");
      }
      Receiver receiver;
      receiver.name = tokens[2];
      const graph::NodeId node{parseNode(lineNo, tokens[3], g.nodeCount())};
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        if (const auto w = keyValue(tokens[t], "weight")) {
          receiver.weight = parseNumber(lineNo, *w, "weight");
          if (!(receiver.weight > 0.0) || !std::isfinite(receiver.weight)) {
            fail(lineNo, "weight must be finite and positive");
          }
        } else {
          fail(lineNo, "unknown member option '" + tokens[t] + "'");
        }
      }
      pending->session.receivers.push_back(std::move(receiver));
      pending->memberNodes.push_back(node);
    } else if (directive == "receiver") {
      commit(Dialect::kFlat, lineNo, directive);
      if (tokens.size() < 4) {
        fail(lineNo,
             "expected: receiver <session> <name> <link,link,...> "
             "[weight=..]");
      }
      PendingSession* pending = findSession(tokens[1]);
      if (pending == nullptr) {
        fail(lineNo, "receiver references unknown session '" + tokens[1] +
                         "' (declare the session first)");
      }
      Receiver receiver;
      receiver.name = tokens[2];
      std::stringstream pathStream(tokens[3]);
      std::string linkName;
      while (std::getline(pathStream, linkName, ',')) {
        const auto it = links.find(linkName);
        if (it == links.end()) {
          fail(lineNo, "unknown link '" + linkName + "'");
        }
        receiver.dataPath.push_back(it->second);
      }
      if (receiver.dataPath.empty()) {
        fail(lineNo, "receiver needs at least one link");
      }
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        if (const auto w = keyValue(tokens[t], "weight")) {
          receiver.weight = parseNumber(lineNo, *w, "weight");
          if (!(receiver.weight > 0.0) || !std::isfinite(receiver.weight)) {
            fail(lineNo, "weight must be finite and positive");
          }
        } else {
          fail(lineNo, "unknown receiver option '" + tokens[t] + "'");
        }
      }
      pending->session.receivers.push_back(std::move(receiver));
    } else if (directive == "fault") {
      // Dynamics, not structure: legal in both dialects, but only when
      // the caller supplied somewhere for the schedule to go.
      if (faults == nullptr) {
        fail(lineNo,
             "fault directives require the parseNetworkFile overload "
             "taking a FaultSchedule (refusing to discard dynamics)");
      }
      if (tokens.size() < 4 || tokens.size() > 5) {
        fail(lineNo, "expected: fault <time> <down|up|degrade> <link> "
                     "[factor]");
      }
      PendingFault f;
      f.line = lineNo;
      f.time = parseNumber(lineNo, tokens[1], "fault time");
      if (!(f.time >= 0.0) || !std::isfinite(f.time)) {
        fail(lineNo, "fault time must be finite and >= 0");
      }
      if (tokens[2] == "down") {
        f.kind = FaultKind::kLinkDown;
      } else if (tokens[2] == "up") {
        f.kind = FaultKind::kLinkUp;
      } else if (tokens[2] == "degrade") {
        f.kind = FaultKind::kDegrade;
      } else {
        fail(lineNo, "fault kind must be 'down', 'up' or 'degrade', got '" +
                         tokens[2] + "'");
      }
      if (f.kind == FaultKind::kDegrade) {
        if (tokens.size() != 5) {
          fail(lineNo, "degrade needs a capacity factor");
        }
        f.factor = parseNumber(lineNo, tokens[4], "capacity factor");
        if (!(f.factor > 0.0) || !std::isfinite(f.factor)) {
          fail(lineNo, "capacity factor must be finite and > 0");
        }
      } else if (tokens.size() == 5) {
        fail(lineNo, "only degrade takes a factor");
      }
      f.linkName = tokens[3];
      pendingFaults.push_back(std::move(f));
    } else {
      fail(lineNo, "unknown directive '" + directive + "'");
    }
  }

  // Resolve fault link names now that both name maps are complete (a
  // fault may legally precede the link/edge it references).
  auto resolveFaults = [&](const std::map<std::string, graph::LinkId>& names,
                           std::size_t linkCount, const char* what) {
    if (faults == nullptr) return;
    for (const PendingFault& f : pendingFaults) {
      const auto it = names.find(f.linkName);
      if (it == names.end()) {
        fail(f.line, std::string("fault references unknown ") + what +
                         " '" + f.linkName + "'");
      }
      faults->events.push_back(
          FaultEvent{f.time, f.kind, it->second, f.factor});
    }
    // The per-directive checks above make normalize() unfailable for
    // parser-built schedules; translate anyway so a future invariant
    // surfaces as a structured parse error, never an assert.
    try {
      faults->normalize(linkCount);
    } catch (const std::exception& e) {
      throw NetfileError(std::string("netfile: invalid fault schedule: ") +
                         e.what());
    }
  };

  if (dialect == Dialect::kGraph) {
    routing.weights =
        routing.policy == graph::RoutePolicy::kWeighted
            ? edgeWeights
            : std::vector<double>{};
    Network routed = networkWithGraphLinks(g);
    graph::RoutePlan plan(g, routing);
    for (auto& [name, pending] : sessions) {
      if (!pending.senderSet) {
        fail(pending.declaredAtLine,
             "session '" + name + "' has no sender");
      }
      if (pending.session.receivers.empty()) {
        fail(pending.declaredAtLine,
             "session '" + name + "' has no members");
      }
      GraphSessionSpec spec;
      spec.name = pending.session.name;
      spec.type = pending.session.type;
      spec.maxRate = pending.session.maxRate;
      spec.linkRate = pending.linkRate;
      spec.sender = pending.senderNode;
      for (std::size_t k = 0; k < pending.memberNodes.size(); ++k) {
        spec.members.push_back({pending.session.receivers[k].name,
                                pending.memberNodes[k],
                                pending.session.receivers[k].weight});
      }
      try {
        routed.addSession(routeSession(plan, spec));
      } catch (const std::exception& e) {
        fail(pending.declaredAtLine,
             "session '" + name + "' is invalid: " + e.what());
      }
    }
    resolveFaults(edges, g.linkCount(), "edge");
    return routed;
  }

  for (auto& [name, pending] : sessions) {
    if (pending.session.receivers.empty()) {
      fail(pending.declaredAtLine,
           "session '" + name + "' has no receivers");
    }
    try {
      network.addSession(std::move(pending.session));
    } catch (const std::exception& e) {
      fail(pending.declaredAtLine,
           "session '" + name + "' is invalid: " + e.what());
    }
  }
  resolveFaults(links, network.linkCount(), "link");
  return network;
}

}  // namespace

Network parseNetworkFile(std::istream& in) {
  return parseNetworkFileImpl(in, nullptr);
}

Network parseNetworkFile(std::istream& in, FaultSchedule& faults) {
  faults.events.clear();
  return parseNetworkFileImpl(in, &faults);
}

Network parseNetworkString(const std::string& text) {
  std::istringstream in(text);
  return parseNetworkFile(in);
}

Network parseNetworkString(const std::string& text, FaultSchedule& faults) {
  std::istringstream in(text);
  return parseNetworkFile(in, faults);
}

Network buildRoutedNetwork(const graph::Graph& g,
                           const graph::RouteOptions& routing,
                           const std::vector<GraphSessionSpec>& sessions) {
  Network n = networkWithGraphLinks(g);
  graph::RoutePlan plan(g, routing);
  for (const GraphSessionSpec& spec : sessions) {
    n.addSession(routeSession(plan, spec));
  }
  return n;
}

namespace {

// A serializable name: one non-empty token with no whitespace or '#'.
void checkToken(const std::string& name, const char* what) {
  MCFAIR_REQUIRE(!name.empty(), std::string(what) + " name must be non-empty");
  for (const char c : name) {
    MCFAIR_REQUIRE(!std::isspace(static_cast<unsigned char>(c)) && c != '#',
                   std::string(what) + " name '" + name +
                       "' must be a single token without '#'");
  }
}

std::string number(double v) {
  std::ostringstream ss;
  ss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return ss.str();
}

}  // namespace

void writeRoutedNetworkFile(std::ostream& out, const graph::Graph& g,
                            const graph::RouteOptions& routing,
                            const std::vector<GraphSessionSpec>& sessions,
                            const FaultSchedule* faults) {
  const bool weighted = routing.policy == graph::RoutePolicy::kWeighted;
  MCFAIR_REQUIRE(routing.weights.empty() ||
                     routing.weights.size() == g.linkCount(),
                 "one route weight per link is required");
  out << "nodes " << g.nodeCount() << "\n";
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    const auto [a, b] = g.endpoints(graph::LinkId{l});
    out << "edge e" << l << " " << a.value << " " << b.value << " "
        << number(g.capacity(graph::LinkId{l}));
    if (weighted && !routing.weights.empty() && routing.weights[l] != 1.0) {
      out << " weight=" << number(routing.weights[l]);
    }
    out << "\n";
  }
  out << "routing " << (weighted ? "weighted" : "hops") << "\n";
  for (const GraphSessionSpec& spec : sessions) {
    checkToken(spec.name, "session");
    out << "session " << spec.name << " "
        << (spec.type == SessionType::kSingleRate ? "single" : "multi");
    if (spec.maxRate != kUnlimitedRate) {
      out << " sigma=" << number(spec.maxRate);
    }
    if (spec.linkRate.family == "constant" && spec.linkRate.param > 1.0) {
      // The legacy spelling, kept so existing files stay byte-stable.
      out << " redundancy=" << number(spec.linkRate.param);
    } else if (!spec.linkRate.efficient()) {
      // Validates the family name and parameter range up front.
      (void)makeLinkRateFunction(spec.linkRate);
      out << " linkrate=" << spec.linkRate.family << ":"
          << number(spec.linkRate.param);
    }
    out << "\n";
    out << "sender " << spec.name << " " << spec.sender.value << "\n";
    for (const GraphSessionSpec::Member& m : spec.members) {
      checkToken(m.name, "member");
      out << "member " << spec.name << " " << m.name << " " << m.node.value;
      if (m.weight != 1.0) out << " weight=" << number(m.weight);
      out << "\n";
    }
  }
  if (faults != nullptr) {
    for (const FaultEvent& ev : faults->events) {
      g.checkLink(ev.link);
      out << "fault " << number(ev.time) << " ";
      switch (ev.kind) {
        case FaultKind::kLinkDown:
          out << "down";
          break;
        case FaultKind::kLinkUp:
          out << "up";
          break;
        case FaultKind::kDegrade:
          out << "degrade";
          break;
      }
      out << " e" << ev.link.value;
      if (ev.kind == FaultKind::kDegrade) {
        out << " " << number(ev.factor);
      }
      out << "\n";
    }
  }
}

}  // namespace mcfair::net
