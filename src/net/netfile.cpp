#include "net/netfile.hpp"

#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace mcfair::net {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw NetfileError("netfile:" + std::to_string(line) + ": " + msg);
}

double parseNumber(std::size_t line, const std::string& token,
                   const char* what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("cannot parse ") + what + " from '" + token +
                   "'");
  }
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> out;
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

// Recognizes "key=value" and returns value, or nullopt.
std::optional<std::string> keyValue(const std::string& token,
                                    const std::string& key) {
  if (token.size() > key.size() + 1 &&
      token.compare(0, key.size(), key) == 0 && token[key.size()] == '=') {
    return token.substr(key.size() + 1);
  }
  return std::nullopt;
}

struct PendingSession {
  Session session;
  std::size_t declaredAtLine = 0;
};

}  // namespace

Network parseNetworkFile(std::istream& in) {
  Network network;
  std::map<std::string, graph::LinkId> links;
  // Order-preserving pending sessions.
  std::vector<std::pair<std::string, PendingSession>> sessions;
  auto findSession = [&](const std::string& name) -> PendingSession* {
    for (auto& [n, s] : sessions) {
      if (n == name) return &s;
    }
    return nullptr;
  };

  std::string raw;
  std::size_t lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "link") {
      if (tokens.size() != 3) {
        fail(lineNo, "expected: link <name> <capacity>");
      }
      if (links.count(tokens[1]) != 0) {
        fail(lineNo, "duplicate link name '" + tokens[1] + "'");
      }
      const double capacity = parseNumber(lineNo, tokens[2], "capacity");
      if (capacity <= 0.0) fail(lineNo, "capacity must be positive");
      links.emplace(tokens[1], network.addLink(capacity));
    } else if (directive == "session") {
      if (tokens.size() < 3) {
        fail(lineNo,
             "expected: session <name> <multi|single> [sigma=..] "
             "[redundancy=..]");
      }
      if (findSession(tokens[1]) != nullptr) {
        fail(lineNo, "duplicate session name '" + tokens[1] + "'");
      }
      PendingSession pending;
      pending.declaredAtLine = lineNo;
      pending.session.name = tokens[1];
      if (tokens[2] == "multi") {
        pending.session.type = SessionType::kMultiRate;
      } else if (tokens[2] == "single") {
        pending.session.type = SessionType::kSingleRate;
      } else {
        fail(lineNo, "session type must be 'multi' or 'single', got '" +
                         tokens[2] + "'");
      }
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        if (const auto sigma = keyValue(tokens[t], "sigma")) {
          pending.session.maxRate = parseNumber(lineNo, *sigma, "sigma");
          if (pending.session.maxRate <= 0.0) {
            fail(lineNo, "sigma must be positive");
          }
        } else if (const auto red = keyValue(tokens[t], "redundancy")) {
          const double v = parseNumber(lineNo, *red, "redundancy");
          if (v < 1.0) fail(lineNo, "redundancy must be >= 1");
          pending.session.linkRateFn =
              std::make_shared<const ConstantFactor>(v);
        } else {
          fail(lineNo, "unknown session option '" + tokens[t] + "'");
        }
      }
      sessions.emplace_back(tokens[1], std::move(pending));
    } else if (directive == "receiver") {
      if (tokens.size() < 4) {
        fail(lineNo,
             "expected: receiver <session> <name> <link,link,...> "
             "[weight=..]");
      }
      PendingSession* pending = findSession(tokens[1]);
      if (pending == nullptr) {
        fail(lineNo, "receiver references unknown session '" + tokens[1] +
                         "' (declare the session first)");
      }
      Receiver receiver;
      receiver.name = tokens[2];
      std::stringstream pathStream(tokens[3]);
      std::string linkName;
      while (std::getline(pathStream, linkName, ',')) {
        const auto it = links.find(linkName);
        if (it == links.end()) {
          fail(lineNo, "unknown link '" + linkName + "'");
        }
        receiver.dataPath.push_back(it->second);
      }
      if (receiver.dataPath.empty()) {
        fail(lineNo, "receiver needs at least one link");
      }
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        if (const auto w = keyValue(tokens[t], "weight")) {
          receiver.weight = parseNumber(lineNo, *w, "weight");
          if (receiver.weight <= 0.0) {
            fail(lineNo, "weight must be positive");
          }
        } else {
          fail(lineNo, "unknown receiver option '" + tokens[t] + "'");
        }
      }
      pending->session.receivers.push_back(std::move(receiver));
    } else {
      fail(lineNo, "unknown directive '" + directive + "'");
    }
  }

  for (auto& [name, pending] : sessions) {
    if (pending.session.receivers.empty()) {
      fail(pending.declaredAtLine,
           "session '" + name + "' has no receivers");
    }
    try {
      network.addSession(std::move(pending.session));
    } catch (const std::exception& e) {
      fail(pending.declaredAtLine,
           "session '" + name + "' is invalid: " + e.what());
    }
  }
  return network;
}

Network parseNetworkString(const std::string& text) {
  std::istringstream in(text);
  return parseNetworkFile(in);
}

}  // namespace mcfair::net
