// Fault injection: deterministic link failure / repair / degradation
// schedules threaded through the routing layer, the max-min solver and
// all three closed-loop engines.
//
// The paper studies fairness under *loss*; this module adds the
// structural counterpart — the topology itself changing under the
// protocols. A FaultSchedule is a time-ordered list of capacity
// overrides: each event *sets* a link's capacity factor (down = 0,
// up = 1, degrade = factor), so schedules are trivially composable and
// replayable from any prefix. Consumers:
//
//  - net::Network::setCapacity applies one event's effect in place;
//    a bound MaxMinSolver then re-solves through its O(links),
//    allocation-free capacity-refresh rebind.
//  - sim::ClosedLoopConfig::faults drives the closed-loop engines: at
//    each fault boundary the token bucket of the affected link is
//    reconfigured in place (identically in the reference, event and
//    fluid drivers, preserving bit-exact parity), and the fluid engine
//    hands back to per-packet execution with exact bucket-state
//    reconstruction.
//  - sim::ScenarioSpec::faults (FaultAxis) expands named presets such
//    as link-flap and backbone-partition into concrete schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mcfair::net {

/// What a fault event does to its link.
enum class FaultKind {
  kLinkDown,  ///< capacity factor becomes 0 (all packets dropped)
  kLinkUp,    ///< capacity factor restored to 1 (full repair)
  kDegrade,   ///< capacity factor becomes `factor` (partial failure)
};

/// One scheduled capacity override. Events *set* the link's factor —
/// they do not stack — so any prefix of a schedule fully determines the
/// network state at its end.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  graph::LinkId link;
  /// kDegrade only: the new capacity factor (> 0; a value > 1 models a
  /// temporary upgrade). Ignored for kLinkDown (0) and kLinkUp (1).
  double factor = 1.0;

  /// The capacity factor this event leaves on the link.
  double appliedFactor() const noexcept {
    switch (kind) {
      case FaultKind::kLinkDown:
        return 0.0;
      case FaultKind::kLinkUp:
        return 1.0;
      case FaultKind::kDegrade:
        return factor;
    }
    return 1.0;
  }
};

/// A deterministic fault schedule: events sorted by (time, link, kind).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// Sorts the events into canonical order and validates them against a
  /// link count: times must be finite and >= 0, link ids in range,
  /// degrade factors > 0. Throws util::PreconditionError otherwise.
  void normalize(std::size_t linkCount);
};

/// Parameters of the seeded random fault process.
struct RandomFaultOptions {
  /// Mean time between failures per link (exponential).
  double mtbf = 400.0;
  /// Mean time to repair per link (exponential).
  double mttr = 60.0;
  /// When > 0 and < 1, each failure degrades to this factor instead of
  /// taking the link fully down.
  double degradeFactor = 0.0;
};

/// Draws an independent alternating fail/repair renewal process for each
/// link over [0, horizon): exponential up-times with mean `mtbf`,
/// exponential down-times with mean `mttr`. Deterministic in the seed.
FaultSchedule randomFaultSchedule(std::size_t linkCount, double horizon,
                                  const RandomFaultOptions& options,
                                  std::uint64_t seed);

}  // namespace mcfair::net
