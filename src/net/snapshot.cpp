#include "net/snapshot.hpp"

#include <bit>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "net/link_rate.hpp"

namespace mcfair::net {

namespace snapshotio {

void putU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void putF64(std::string& out, double v) {
  putU64(out, std::bit_cast<std::uint64_t>(v));
}

void putString(std::string& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint64_t fnv1a(const char* data, std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* Cursor::take(std::size_t n, const char* what) {
  if (n > size_ - pos_) {
    throw SnapshotError(std::string("snapshot truncated reading ") + what);
  }
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Cursor::u8(const char* what) {
  return static_cast<std::uint8_t>(*take(1, what));
}

std::uint32_t Cursor::u32(const char* what) {
  const char* p = take(4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Cursor::u64(const char* what) {
  const char* p = take(8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double Cursor::f64(const char* what) {
  return std::bit_cast<double>(u64(what));
}

std::string Cursor::str(const char* what) {
  const std::uint32_t n = u32(what);
  if (n > remaining()) {
    throw SnapshotError(std::string("snapshot truncated reading ") + what);
  }
  const char* p = take(n, what);
  return std::string(p, n);
}

}  // namespace snapshotio

namespace {

using namespace snapshotio;

constexpr std::uint32_t kMagic = 0x5346434du;  // "MCFS" little-endian
constexpr std::uint32_t kVersion = 1;

// A hostile count field must never drive a multi-gigabyte resize before
// the (bounds-checked) element reads catch the truncation; each element
// of the counted groups below occupies at least one byte.
void checkCount(std::uint64_t count, std::uint64_t limit, const char* what) {
  if (count > limit) {
    throw SnapshotError(std::string("snapshot ") + what +
                        " count out of range");
  }
}

}  // namespace

std::string networkSnapshotBytes(const Network& net) {
  std::string out;
  putU32(out, kMagic);
  putU32(out, kVersion);

  putU32(out, static_cast<std::uint32_t>(net.linkCount()));
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    putF64(out, net.capacity(graph::LinkId{static_cast<std::uint32_t>(j)}));
  }

  putU32(out, static_cast<std::uint32_t>(net.sessionCount()));
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    const Session& s = net.session(i);
    LinkRateSpec spec;
    try {
      spec = describeLinkRateFunction(s.linkRateFn.get());
    } catch (const std::exception& e) {
      throw SnapshotError("snapshot cannot express session '" + s.name +
                          "' link-rate function: " + e.what());
    }
    putString(out, s.name);
    putU8(out, s.type == SessionType::kSingleRate ? 1 : 0);
    putF64(out, s.maxRate);
    putString(out, spec.family);
    putF64(out, spec.param);
    putU32(out, static_cast<std::uint32_t>(s.receivers.size()));
    for (const Receiver& r : s.receivers) {
      putString(out, r.name);
      putF64(out, r.weight);
      putU32(out, static_cast<std::uint32_t>(r.dataPath.size()));
      for (const graph::LinkId l : r.dataPath) putU32(out, l.value);
    }
  }

  putU64(out, fnv1a(out.data(), out.size()));
  return out;
}

void writeNetworkSnapshot(std::ostream& out, const Network& net) {
  const std::string bytes = networkSnapshotBytes(net);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SnapshotError("snapshot write failed");
}

Network networkFromSnapshotBytes(const std::string& bytes) {
  if (bytes.size() < 8 + 8) throw SnapshotError("snapshot too short");
  const std::size_t payload = bytes.size() - 8;
  Cursor trailer(bytes.data() + payload, 8);
  if (trailer.u64("checksum") != fnv1a(bytes.data(), payload)) {
    throw SnapshotError("snapshot checksum mismatch");
  }

  Cursor in(bytes.data(), payload);
  if (in.u32("magic") != kMagic) throw SnapshotError("snapshot bad magic");
  const std::uint32_t version = in.u32("version");
  if (version != kVersion) {
    throw SnapshotError("snapshot unsupported version " +
                        std::to_string(version));
  }

  Network net;
  const std::uint32_t linkCount = in.u32("link count");
  checkCount(linkCount, in.remaining() / 8, "link");
  for (std::uint32_t j = 0; j < linkCount; ++j) {
    const double capacity = in.f64("link capacity");
    if (!(capacity >= 0.0)) {
      throw SnapshotError("snapshot link capacity out of range");
    }
    // addLink rejects 0 (a structural link is always provisioned > 0)
    // but a faulted link legally snapshots at capacity 0: add at a
    // placeholder and set the real value through the fault path.
    if (capacity > 0.0) {
      net.addLink(capacity);
    } else {
      const graph::LinkId l = net.addLink(1.0);
      net.setCapacity(l, 0.0);
    }
  }

  const std::uint32_t sessionCount = in.u32("session count");
  checkCount(sessionCount, in.remaining(), "session");
  for (std::uint32_t i = 0; i < sessionCount; ++i) {
    Session s;
    s.name = in.str("session name");
    const std::uint8_t type = in.u8("session type");
    if (type > 1) throw SnapshotError("snapshot bad session type");
    s.type = type == 1 ? SessionType::kSingleRate : SessionType::kMultiRate;
    s.maxRate = in.f64("session sigma");
    LinkRateSpec spec;
    spec.family = in.str("link-rate family");
    spec.param = in.f64("link-rate parameter");
    try {
      s.linkRateFn = makeLinkRateFunction(spec);
    } catch (const std::exception& e) {
      throw SnapshotError(std::string("snapshot bad link-rate spec: ") +
                          e.what());
    }
    const std::uint32_t receiverCount = in.u32("receiver count");
    checkCount(receiverCount, in.remaining(), "receiver");
    for (std::uint32_t k = 0; k < receiverCount; ++k) {
      Receiver r;
      r.name = in.str("receiver name");
      r.weight = in.f64("receiver weight");
      const std::uint32_t pathLen = in.u32("data-path length");
      checkCount(pathLen, in.remaining() / 4, "data-path link");
      for (std::uint32_t p = 0; p < pathLen; ++p) {
        const std::uint32_t link = in.u32("data-path link id");
        if (link >= linkCount) {
          throw SnapshotError("snapshot data-path link id out of range");
        }
        r.dataPath.push_back(graph::LinkId{link});
      }
      s.receivers.push_back(std::move(r));
    }
    try {
      net.addSession(std::move(s));
    } catch (const std::exception& e) {
      throw SnapshotError(std::string("snapshot invalid session: ") +
                          e.what());
    }
  }

  if (!in.done()) throw SnapshotError("snapshot trailing bytes");
  return net;
}

Network readNetworkSnapshot(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw SnapshotError("snapshot read failed");
  return networkFromSnapshotBytes(buf.str());
}

}  // namespace mcfair::net
