// Human-readable reports for solved networks: receiver rates, per-link
// session rates and utilization, and fairness-property verdicts. Used by
// the bench binaries and the fairshare CLI example.
#pragma once

#include <iosfwd>
#include <string>

#include "fairness/allocation.hpp"

namespace mcfair::fairness {

/// Formatting options for printAllocationReport.
struct ReportOptions {
  /// Digits after the decimal point.
  int precision = 3;
  /// Also emit CSV blocks after each table.
  bool csv = false;
  /// Skip the fairness-property table.
  bool skipProperties = false;
};

/// Display name of receiver r_{i,k} ("r2,1" when unnamed).
std::string receiverDisplayName(const net::Network& net,
                                net::ReceiverRef ref);

/// Display name of session i ("S3" when unnamed).
std::string sessionDisplayName(const net::Network& net, std::size_t i);

/// Prints the full report for one network/allocation pair: receiver
/// rates, link usage (u_{i,j}, u_j, full?), and the four fairness
/// properties with their first violation each.
void printAllocationReport(std::ostream& os, const std::string& title,
                           const net::Network& net, const Allocation& a,
                           const ReportOptions& options = {});

}  // namespace mcfair::fairness
