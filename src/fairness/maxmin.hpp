// Max-min fair allocation solver — the paper's Appendix A algorithm,
// generalized to arbitrary monotone session link-rate functions v_i.
//
// Progressive filling: all active receivers' rates rise uniformly from 0;
// a receiver freezes when some link on its data-path reaches capacity or
// its session's sigma_i is reached; when a single-rate session loses any
// receiver, the whole session freezes (step 7 of the algorithm), keeping
// its rates equal. With chi all-multi-rate / all-single-rate / mixed this
// produces the (unique) multi-rate / single-rate / mixed max-min fair
// allocation (Lemma 5 and Corollary 5 of the technical report).
//
// For the Section 2 model (v_i = max) each round's increment has a closed
// form; for general v_i (Section 3.1 redundancy functions) the increment
// is found by bisection on the monotone feasibility predicate. Both paths
// are implemented; the closed form is used automatically whenever every
// session's v_i declares itself rate-linear.
//
// Weighted max-min fairness (the paper's Section 5 suggestion for
// approximating TCP-fairness by weighting receiver rates with inverse
// round-trip times) is supported through Receiver::weight: active
// receivers fill at rate weight * level, so the solver maximizes
// min(rate/weight) lexicographically. Unit weights recover the paper's
// algorithm exactly.
//
// Two implementations share this interface:
//  * MaxMinSolver — the incremental filling engine. It builds a flat
//    CSR-style link->receiver adjacency and per-link accumulators
//    (frozen-rate constant part, active slope sum, active count) once at
//    bind() time, then updates only the links on a freezing receiver's
//    data-path as the filling progresses. All scratch buffers live in the
//    solver, so repeated solves on same-shaped networks perform no heap
//    allocation in the filling loop. solveMaxMinFair() runs this engine.
//  * solveMaxMinFairReference — the original per-round rebuild, retained
//    as the independent oracle for the randomized parity tests. Both
//    produce identical allocations within MaxMinOptions::tolerance.
#pragma once

#include <cstddef>
#include <memory>

#include "fairness/allocation.hpp"
#include "util/validate.hpp"

namespace mcfair::fairness {

/// Solver knobs.
struct MaxMinOptions {
  /// Absolute convergence tolerance on rates (bisection width).
  double tolerance = 1e-10;
  /// Slack within which a link counts as fully utilized when deciding
  /// which receivers freeze. Scales with capacity magnitude internally.
  double saturationSlack = 1e-7;
  /// Hard cap on bisection iterations per round.
  std::size_t maxBisectionSteps = 200;
  /// Worker threads for the per-link sweeps of large solves (the linear
  /// accumulator/saturation scan and the nonlinear feasibleAt bisection).
  /// 0 or 1 = serial; -1 (default) = read the MCFAIR_THREADS environment
  /// variable (unset/invalid -> serial). With T > 1 the solver owns a
  /// reusable util::ThreadPool of T executors (spawned lazily at bind()
  /// once a network is large enough to ever shard) and splits the
  /// active-link set across them with load-aware contiguous chunking.
  /// Results are bit-identical to the serial path: every per-link
  /// computation is the same arithmetic, and all shard outputs merge in
  /// active-list order. Custom LinkRateFunction implementations must
  /// tolerate concurrent linkRate() calls in this mode (see
  /// net/link_rate.hpp); all shipped functions do.
  int threads = -1;
  /// Minimum active-link count before a sweep is sharded; below it the
  /// sweep runs single-shard on the calling thread. Tuning/testing knob
  /// (tests set 1 to force sharding on small networks).
  std::size_t parallelGrain = 64;
  /// Paranoid cross-checking (see util/validate.hpp): when resolved on,
  /// every solve() re-runs the reference oracle on the bound network and
  /// throws NumericError if the incremental rates deviate beyond the
  /// parity tolerance. Orders of magnitude slower — CI/debug only. The
  /// default (-1) follows the MCFAIR_VALIDATE environment variable.
  util::ValidateOptions validate;
};

/// Result of the solver: the allocation plus the usage it induces and the
/// number of filling rounds taken.
struct MaxMinResult {
  Allocation allocation;
  LinkUsage usage;
  std::size_t rounds = 0;
};

/// Computes the max-min fair allocation of `net`. Throws NumericError if
/// the filling fails to make progress (cannot happen for well-formed
/// monotone v_i; guards against faulty user-provided functions).
MaxMinResult solveMaxMinFair(const net::Network& net,
                             const MaxMinOptions& options = {});

/// Convenience: solveMaxMinFair(...).allocation.
Allocation maxMinFairAllocation(const net::Network& net,
                                const MaxMinOptions& options = {});

/// The original solver (per-round link-view rebuild, O(links x receivers)
/// per round). Retained as the reference oracle for parity tests and as
/// the baseline for the perf benchmarks; use solveMaxMinFair otherwise.
MaxMinResult solveMaxMinFairReference(const net::Network& net,
                                      const MaxMinOptions& options = {});

/// Reusable incremental progressive-filling engine.
///
/// Typical churn loop (closed-loop simulation, what-if sweeps):
///
///   MaxMinSolver solver;
///   for (const net::Network& variant : scenarios) {
///     const MaxMinResult& r = solver.solve(variant);  // workspace reused
///     ...
///   }
///
/// bind() captures a raw pointer to the network: the network must outlive
/// the binding and must not be mutated between bind() and solve(). After
/// the first solve on a given shape, subsequent solves reuse every buffer
/// — the steady-state filling loop performs zero heap allocations. This
/// holds in parallel mode too: the worker pool and all per-shard scratch
/// are built once (construction/bind), so threaded steady-state re-solves
/// also allocate nothing.
class MaxMinSolver {
 public:
  explicit MaxMinSolver(MaxMinOptions options = {});
  ~MaxMinSolver();
  MaxMinSolver(MaxMinSolver&&) noexcept;
  MaxMinSolver& operator=(MaxMinSolver&&) noexcept;

  /// Builds the CSR adjacency and per-link accumulators for `net`.
  /// Rebinds are tiered: an unchanged identity() is a no-op; an
  /// unchanged structureIdentity() (only capacities changed, e.g. via
  /// Network::setCapacity on a fault) refreshes the capacity-derived
  /// arrays in place — O(links), allocation-free; anything else does
  /// the full workspace rebuild.
  void bind(const net::Network& net);

  /// True once bind() has been called.
  bool bound() const noexcept;

  /// Solves the bound network from scratch. The returned reference is
  /// owned by the solver and is invalidated by the next bind()/solve().
  const MaxMinResult& solve();

  /// bind(net) + solve().
  const MaxMinResult& solve(const net::Network& net);

  /// Runs the filling only, skipping the O(sessions x links) usage
  /// materialization — the fast path when only rates are needed.
  const Allocation& solveAllocation();

  /// bind(net) + solveAllocation().
  const Allocation& solveAllocation(const net::Network& net);

  /// Moves the last result out of the solver (no copy of the dense usage
  /// matrix). The solver must solve again before the result is readable;
  /// meant for transient solvers that are discarded right after.
  MaxMinResult takeResult();

  const MaxMinOptions& options() const noexcept { return options_; }

  /// Resolved executor count for the sharded sweeps (after applying the
  /// MCFAIR_THREADS fallback): 0 or 1 means serial.
  std::size_t threadCount() const noexcept;

 private:
  struct Engine;
  MaxMinOptions options_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace mcfair::fairness
