// Max-min fair allocation solver — the paper's Appendix A algorithm,
// generalized to arbitrary monotone session link-rate functions v_i.
//
// Progressive filling: all active receivers' rates rise uniformly from 0;
// a receiver freezes when some link on its data-path reaches capacity or
// its session's sigma_i is reached; when a single-rate session loses any
// receiver, the whole session freezes (step 7 of the algorithm), keeping
// its rates equal. With chi all-multi-rate / all-single-rate / mixed this
// produces the (unique) multi-rate / single-rate / mixed max-min fair
// allocation (Lemma 5 and Corollary 5 of the technical report).
//
// For the Section 2 model (v_i = max) each round's increment has a closed
// form; for general v_i (Section 3.1 redundancy functions) the increment
// is found by bisection on the monotone feasibility predicate. Both paths
// are implemented; the closed form is used automatically whenever every
// session's v_i declares itself rate-linear.
//
// Weighted max-min fairness (the paper's Section 5 suggestion for
// approximating TCP-fairness by weighting receiver rates with inverse
// round-trip times) is supported through Receiver::weight: active
// receivers fill at rate weight * level, so the solver maximizes
// min(rate/weight) lexicographically. Unit weights recover the paper's
// algorithm exactly.
#pragma once

#include <cstddef>

#include "fairness/allocation.hpp"

namespace mcfair::fairness {

/// Solver knobs.
struct MaxMinOptions {
  /// Absolute convergence tolerance on rates (bisection width).
  double tolerance = 1e-10;
  /// Slack within which a link counts as fully utilized when deciding
  /// which receivers freeze. Scales with capacity magnitude internally.
  double saturationSlack = 1e-7;
  /// Hard cap on bisection iterations per round.
  std::size_t maxBisectionSteps = 200;
};

/// Result of the solver: the allocation plus the usage it induces and the
/// number of filling rounds taken.
struct MaxMinResult {
  Allocation allocation;
  LinkUsage usage;
  std::size_t rounds = 0;
};

/// Computes the max-min fair allocation of `net`. Throws NumericError if
/// the filling fails to make progress (cannot happen for well-formed
/// monotone v_i; guards against faulty user-provided functions).
MaxMinResult solveMaxMinFair(const net::Network& net,
                             const MaxMinOptions& options = {});

/// Convenience: solveMaxMinFair(...).allocation.
Allocation maxMinFairAllocation(const net::Network& net,
                                const MaxMinOptions& options = {});

}  // namespace mcfair::fairness
