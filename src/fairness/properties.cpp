#include "fairness/properties.hpp"

#include <cmath>

namespace mcfair::fairness {

namespace {

bool linkFullyUtilized(const net::Network& net, const LinkUsage& usage,
                       graph::LinkId l, const PropertyOptions& opt) {
  const double c = net.capacity(l);
  return usage.linkRate[l.value] >= c - opt.utilizationTol * std::max(1.0, c);
}

bool atMaxRate(const net::Network& net, const Allocation& a,
               net::ReceiverRef ref, const PropertyOptions& opt) {
  const double sigma = net.session(ref.session).maxRate;
  return !std::isinf(sigma) && a.rate(ref) >= sigma - opt.rateTol;
}

std::string rname(const net::Network& net, net::ReceiverRef ref) {
  const auto& r = net.session(ref.session).receivers[ref.receiver];
  if (!r.name.empty()) return r.name;
  return "r" + std::to_string(ref.session + 1) + "," +
         std::to_string(ref.receiver + 1);
}

std::string sname(const net::Network& net, std::size_t i) {
  const auto& s = net.session(i);
  return s.name.empty() ? "S" + std::to_string(i + 1) : s.name;
}

}  // namespace

bool isReceiverFullyUtilizedFair(const net::Network& net, const Allocation& a,
                                 const LinkUsage& usage, net::ReceiverRef ref,
                                 const PropertyOptions& opt) {
  if (atMaxRate(net, a, ref, opt)) return true;
  const double myRate = a.rate(ref);
  const auto& path =
      net.session(ref.session).receivers[ref.receiver].dataPath;
  for (graph::LinkId l : path) {
    if (!linkFullyUtilized(net, usage, l, opt)) continue;
    bool topRated = true;
    for (net::ReceiverRef other : net.receiversOnLink(l)) {
      if (a.rate(other) > myRate + opt.rateTol) {
        topRated = false;
        break;
      }
    }
    if (topRated) return true;
  }
  return false;
}

bool arePairSamePathFair(const net::Network& net, const Allocation& a,
                         net::ReceiverRef x, net::ReceiverRef y,
                         const PropertyOptions& opt) {
  const auto& px = net.session(x.session).receivers[x.receiver].dataPath;
  const auto& py = net.session(y.session).receivers[y.receiver].dataPath;
  if (px != py) return true;  // paths are normalized sorted sets
  const double ax = a.rate(x);
  const double ay = a.rate(y);
  if (std::fabs(ax - ay) <= opt.rateTol) return true;
  // Unequal: the lower one must be pinned at its session's sigma.
  const net::ReceiverRef lower = ax < ay ? x : y;
  return atMaxRate(net, a, lower, opt);
}

bool isSessionPerReceiverLinkFair(const net::Network& net,
                                  const Allocation& a, const LinkUsage& usage,
                                  std::size_t session,
                                  const PropertyOptions& opt) {
  const auto& sess = net.session(session);
  for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
    const net::ReceiverRef ref{session, k};
    if (atMaxRate(net, a, ref, opt)) continue;
    bool found = false;
    for (graph::LinkId l : sess.receivers[k].dataPath) {
      if (!linkFullyUtilized(net, usage, l, opt)) continue;
      const double mine = usage.sessionLinkRate[session][l.value];
      bool topSession = true;
      for (std::size_t i2 = 0; i2 < net.sessionCount(); ++i2) {
        if (usage.sessionLinkRate[i2][l.value] > mine + opt.rateTol) {
          topSession = false;
          break;
        }
      }
      if (topSession) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool isSessionPerSessionLinkFair(const net::Network& net, const Allocation& a,
                                 const LinkUsage& usage, std::size_t session,
                                 const PropertyOptions& opt) {
  const auto& sess = net.session(session);
  bool allAtSigma = true;
  for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
    if (!atMaxRate(net, a, {session, k}, opt)) {
      allAtSigma = false;
      break;
    }
  }
  if (allAtSigma) return true;
  for (graph::LinkId l : net.sessionDataPath(session)) {
    if (!linkFullyUtilized(net, usage, l, opt)) continue;
    const double mine = usage.sessionLinkRate[session][l.value];
    bool topSession = true;
    for (std::size_t i2 = 0; i2 < net.sessionCount(); ++i2) {
      if (usage.sessionLinkRate[i2][l.value] > mine + opt.rateTol) {
        topSession = false;
        break;
      }
    }
    if (topSession) return true;
  }
  return false;
}

PropertyCheck checkFullyUtilizedReceiverFairness(const net::Network& net,
                                                 const Allocation& a,
                                                 const PropertyOptions& opt) {
  return checkFullyUtilizedReceiverFairness(net, a, computeLinkUsage(net, a),
                                            opt);
}

PropertyCheck checkFullyUtilizedReceiverFairness(const net::Network& net,
                                                 const Allocation& a,
                                                 const LinkUsage& usage,
                                                 const PropertyOptions& opt) {
  PropertyCheck out;
  for (net::ReceiverRef ref : net.receiverRefs()) {
    if (!isReceiverFullyUtilizedFair(net, a, usage, ref, opt)) {
      out.holds = false;
      out.violations.push_back(
          rname(net, ref) +
          ": no fully utilized link on its data-path where it is top-rated, "
          "and not at sigma");
    }
  }
  return out;
}

PropertyCheck checkSamePathReceiverFairness(const net::Network& net,
                                            const Allocation& a,
                                            const PropertyOptions& opt) {
  PropertyCheck out;
  const auto all = net.allReceivers();
  for (std::size_t x = 0; x < all.size(); ++x) {
    for (std::size_t y = x + 1; y < all.size(); ++y) {
      if (!arePairSamePathFair(net, a, all[x], all[y], opt)) {
        out.holds = false;
        out.violations.push_back(rname(net, all[x]) + " and " +
                                 rname(net, all[y]) +
                                 ": identical data-paths but unequal rates "
                                 "with neither pinned at sigma");
      }
    }
  }
  return out;
}

PropertyCheck checkPerReceiverLinkFairness(const net::Network& net,
                                           const Allocation& a,
                                           const PropertyOptions& opt) {
  return checkPerReceiverLinkFairness(net, a, computeLinkUsage(net, a), opt);
}

PropertyCheck checkPerReceiverLinkFairness(const net::Network& net,
                                           const Allocation& a,
                                           const LinkUsage& usage,
                                           const PropertyOptions& opt) {
  PropertyCheck out;
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    if (!isSessionPerReceiverLinkFair(net, a, usage, i, opt)) {
      out.holds = false;
      out.violations.push_back(
          sname(net, i) +
          ": some receiver's path has no fully utilized link where the "
          "session's link rate is maximal");
    }
  }
  return out;
}

PropertyCheck checkPerSessionLinkFairness(const net::Network& net,
                                          const Allocation& a,
                                          const PropertyOptions& opt) {
  return checkPerSessionLinkFairness(net, a, computeLinkUsage(net, a), opt);
}

PropertyCheck checkPerSessionLinkFairness(const net::Network& net,
                                          const Allocation& a,
                                          const LinkUsage& usage,
                                          const PropertyOptions& opt) {
  PropertyCheck out;
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    if (!isSessionPerSessionLinkFair(net, a, usage, i, opt)) {
      out.holds = false;
      out.violations.push_back(
          sname(net, i) +
          ": no fully utilized link on the session data-path where the "
          "session's link rate is maximal");
    }
  }
  return out;
}

std::vector<std::pair<std::string, PropertyCheck>> checkAllProperties(
    const net::Network& net, const Allocation& a,
    const PropertyOptions& opt) {
  const LinkUsage usage = computeLinkUsage(net, a);
  return {
      {"fully-utilized-receiver-fairness",
       checkFullyUtilizedReceiverFairness(net, a, usage, opt)},
      {"same-path-receiver-fairness",
       checkSamePathReceiverFairness(net, a, opt)},
      {"per-receiver-link-fairness",
       checkPerReceiverLinkFairness(net, a, usage, opt)},
      {"per-session-link-fairness",
       checkPerSessionLinkFairness(net, a, usage, opt)},
  };
}

}  // namespace mcfair::fairness
