#include "fairness/report.hpp"

#include <ostream>

#include "fairness/properties.hpp"
#include "util/table.hpp"

namespace mcfair::fairness {

std::string receiverDisplayName(const net::Network& net,
                                net::ReceiverRef ref) {
  const auto& r = net.session(ref.session).receivers[ref.receiver];
  if (!r.name.empty()) return r.name;
  return "r" + std::to_string(ref.session + 1) + "," +
         std::to_string(ref.receiver + 1);
}

std::string sessionDisplayName(const net::Network& net, std::size_t i) {
  const auto& s = net.session(i);
  return s.name.empty() ? "S" + std::to_string(i + 1) : s.name;
}

void printAllocationReport(std::ostream& os, const std::string& title,
                           const net::Network& net, const Allocation& a,
                           const ReportOptions& options) {
  auto show = [&](const std::string& heading, const util::Table& table) {
    os << "\n== " << heading << " ==\n";
    table.print(os);
    if (options.csv) {
      os << "\n-- CSV --\n";
      table.printCsv(os);
    }
  };

  util::Table rates({"receiver", "rate a_{i,k}"});
  rates.setPrecision(options.precision);
  for (const auto ref : net.allReceivers()) {
    rates.addRow({receiverDisplayName(net, ref), a.rate(ref)});
  }
  show(title + " — receiver rates", rates);

  const auto usage = computeLinkUsage(net, a);
  std::vector<std::string> headers{"link", "capacity"};
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    headers.push_back("u_" + sessionDisplayName(net, i));
  }
  headers.push_back("u_j");
  headers.push_back("full?");
  util::Table links(headers);
  links.setPrecision(options.precision);
  for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
    std::vector<util::Cell> row{"l" + std::to_string(j + 1),
                                net.capacity(graph::LinkId{j})};
    for (std::size_t i = 0; i < net.sessionCount(); ++i) {
      row.emplace_back(usage.sessionLinkRate[i][j]);
    }
    row.emplace_back(usage.linkRate[j]);
    row.emplace_back(std::string(
        usage.linkRate[j] >= net.capacity(graph::LinkId{j}) - 1e-6
            ? "yes"
            : "no"));
    links.addRow(std::move(row));
  }
  show(title + " — link usage", links);

  if (options.skipProperties) return;
  util::Table props({"fairness property", "holds", "violations"});
  for (const auto& [name, check] : checkAllProperties(net, a)) {
    props.addRow({name, std::string(check.holds ? "yes" : "NO"),
                  check.violations.empty() ? std::string("-")
                                           : check.violations.front()});
  }
  show(title + " — fairness properties", props);
}

}  // namespace mcfair::fairness
