// The min-unfavorable ordering over allocations (Definition 2) and the
// Lemma 2 threshold characterization.
//
// For ordered (ascending) vectors X, Y of equal length, X <=_m Y
// ("X is min-unfavorable to Y") iff no index has x_i > y_i, or every index
// i with x_i > y_i is preceded by some j < i with x_j < y_j. The max-min
// fair allocation is the unique maximum of <=_m among feasible allocations
// (Lemma 1), which is how the paper compares the "level" of max-min
// fairness across session-type and redundancy changes (Lemmas 3-4,
// Corollary 1).
#pragma once

#include <optional>
#include <vector>

namespace mcfair::fairness {

/// Comparison outcome under the min-unfavorable relation.
enum class MinUnfavorableOrder {
  kEqual,      ///< X == Y (within tolerance)
  kLess,       ///< X <_m Y: Y is strictly "more max-min fair"
  kGreater,    ///< Y <_m X
  kIncomparable,  ///< cannot happen for exact ordered vectors; may appear
                  ///< when tolerance collapses distinct entries
};

/// True when X <=_m Y. Inputs must be ascending and of equal length
/// (throws PreconditionError otherwise). Comparisons use absolute
/// tolerance `tol` (x > y means x > y + tol).
bool minUnfavorable(const std::vector<double>& x,
                    const std::vector<double>& y, double tol = 1e-9);

/// True when X <_m Y, i.e. minUnfavorable(x,y) and the vectors differ by
/// more than `tol` somewhere.
bool strictlyMinUnfavorable(const std::vector<double>& x,
                            const std::vector<double>& y, double tol = 1e-9);

/// Classifies the pair under <=_m.
MinUnfavorableOrder compareMinUnfavorable(const std::vector<double>& x,
                                          const std::vector<double>& y,
                                          double tol = 1e-9);

/// Lemma 2: X <_m Y iff there is a threshold x0 such that for all z < x0
/// the number of entries <= z in X is >= that in Y, and strictly more
/// entries of X are <= x0 than of Y. Returns such an x0 when X <_m Y,
/// std::nullopt otherwise. Exact comparison (no tolerance): Lemma 2 is a
/// combinatorial statement, used by tests to cross-validate the relation.
std::optional<double> lemma2Threshold(const std::vector<double>& x,
                                      const std::vector<double>& y);

/// Count of entries <= z (exact).
std::size_t countAtOrBelow(const std::vector<double>& sorted, double z);

}  // namespace mcfair::fairness
