#include "fairness/ordering.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::fairness {

namespace {
void checkOrderedPair(const std::vector<double>& x,
                      const std::vector<double>& y) {
  MCFAIR_REQUIRE(x.size() == y.size(),
                 "min-unfavorability compares vectors of equal length");
  MCFAIR_REQUIRE(std::is_sorted(x.begin(), x.end()),
                 "X must be ordered ascending");
  MCFAIR_REQUIRE(std::is_sorted(y.begin(), y.end()),
                 "Y must be ordered ascending");
}
}  // namespace

bool minUnfavorable(const std::vector<double>& x,
                    const std::vector<double>& y, double tol) {
  checkOrderedPair(x, y);
  bool sawXBelowY = false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > y[i] + tol && !sawXBelowY) return false;
    if (x[i] < y[i] - tol) sawXBelowY = true;
  }
  return true;
}

bool strictlyMinUnfavorable(const std::vector<double>& x,
                            const std::vector<double>& y, double tol) {
  if (!minUnfavorable(x, y, tol)) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i] - y[i]) > tol) return true;
  }
  return false;
}

MinUnfavorableOrder compareMinUnfavorable(const std::vector<double>& x,
                                          const std::vector<double>& y,
                                          double tol) {
  const bool xy = minUnfavorable(x, y, tol);
  const bool yx = minUnfavorable(y, x, tol);
  if (xy && yx) return MinUnfavorableOrder::kEqual;
  if (xy) return MinUnfavorableOrder::kLess;
  if (yx) return MinUnfavorableOrder::kGreater;
  return MinUnfavorableOrder::kIncomparable;
}

std::size_t countAtOrBelow(const std::vector<double>& sorted, double z) {
  return static_cast<std::size_t>(
      std::upper_bound(sorted.begin(), sorted.end(), z) - sorted.begin());
}

std::optional<double> lemma2Threshold(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  checkOrderedPair(x, y);
  // Candidate thresholds are the entries of X and Y: the counting
  // functions only change there. Check each candidate x0 for the Lemma 2
  // conditions.
  std::vector<double> candidates;
  candidates.reserve(x.size() + y.size());
  candidates.insert(candidates.end(), x.begin(), x.end());
  candidates.insert(candidates.end(), y.begin(), y.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (double x0 : candidates) {
    if (countAtOrBelow(x, x0) <= countAtOrBelow(y, x0)) continue;
    bool dominatesBelow = true;
    // For all z < x0 it suffices to check z just below each candidate
    // value <= x0 — i.e., at the candidate values strictly below x0 and
    // immediately before them. Counting functions are right-continuous
    // step functions, so check at every candidate c < x0.
    for (double c : candidates) {
      if (c >= x0) break;
      if (countAtOrBelow(x, c) < countAtOrBelow(y, c)) {
        dominatesBelow = false;
        break;
      }
    }
    if (dominatesBelow) return x0;
  }
  return std::nullopt;
}

}  // namespace mcfair::fairness
