// Direct verification of max-min fairness (Definition 1), independent of
// the construction algorithm.
//
// An allocation is max-min fair iff it is feasible and no receiver's rate
// can be raised in any feasible alternative without lowering some
// receiver whose (original) rate is no larger. For monotone session
// link-rate functions this has an exact finite test: to raise receiver r
// by delta, the most permissive alternative keeps every receiver with
// rate <= a(r) unchanged and releases ALL bandwidth held by strictly
// higher-rated receivers (setting them to zero minimizes usage, and any
// other allowed alternative uses at least as much on every link). If even
// that alternative is infeasible, no feasible improvement exists.
//
// This gives the library a solver-independent certificate: tests verify
// the progressive-filling solver against it, and users can certify
// allocations produced elsewhere.
#pragma once

#include <string>
#include <vector>

#include "fairness/allocation.hpp"

namespace mcfair::fairness {

/// Options for the verifier.
struct VerifyOptions {
  /// The rate increase attempted for each receiver.
  double delta = 1e-6;
  /// Tolerances forwarded to the feasibility check and to rate
  /// comparisons.
  double tol = 1e-9;
};

/// One way an allocation fails Definition 1.
struct MaxMinViolation {
  net::ReceiverRef receiver;
  /// Human-readable explanation.
  std::string reason;
};

/// Returns every receiver whose rate could be raised by options.delta in
/// some feasible alternative without lowering an equal-or-lower-rated
/// receiver — empty iff the allocation is max-min fair (up to delta).
/// Also reports infeasibility of the allocation itself.
std::vector<MaxMinViolation> findMaxMinViolations(
    const net::Network& net, const Allocation& a,
    const VerifyOptions& options = {});

/// Convenience: findMaxMinViolations(...).empty().
bool isMaxMinFair(const net::Network& net, const Allocation& a,
                  const VerifyOptions& options = {});

}  // namespace mcfair::fairness
