// The four desirable fairness properties of Section 2.1, with
// per-receiver / per-session / per-pair granularity (needed by Theorem 2,
// which scopes each property to the multi-rate sessions of a mixed
// network) and whole-network checks with human-readable violation reports.
//
// Property 1 (fully-utilized-receiver-fairness): each receiver is at
//   sigma_i or crosses a fully utilized link on which no receiver (of any
//   session) outrates it.
// Property 2 (same-path-receiver-fairness): receivers with identical
//   data-paths have equal rates unless the lower one is at its sigma.
// Property 3 (per-receiver-link-fairness): for each receiver, some fully
//   utilized link on its path gives its session at least as much link rate
//   as any other session (or the receiver is at sigma_i).
// Property 4 (per-session-link-fairness): as Property 3 but only somewhere
//   on the session's data-path (weaker).
#pragma once

#include <string>
#include <vector>

#include "fairness/allocation.hpp"

namespace mcfair::fairness {

/// Result of a property check over a network.
struct PropertyCheck {
  bool holds = true;
  std::vector<std::string> violations;
};

/// Comparison slacks for the property predicates.
struct PropertyOptions {
  /// Absolute slack for rate comparisons (a <= b means a <= b + rateTol).
  double rateTol = 1e-6;
  /// Relative-to-capacity slack for "fully utilized".
  double utilizationTol = 1e-6;
};

// --- Granular predicates -------------------------------------------------

/// Property 1 for one receiver.
bool isReceiverFullyUtilizedFair(const net::Network& net, const Allocation& a,
                                 const LinkUsage& usage, net::ReceiverRef ref,
                                 const PropertyOptions& opt = {});

/// Property 2 for one pair of receivers. Pairs with different data-paths
/// are vacuously fair.
bool arePairSamePathFair(const net::Network& net, const Allocation& a,
                         net::ReceiverRef x, net::ReceiverRef y,
                         const PropertyOptions& opt = {});

/// Property 3 for one session.
bool isSessionPerReceiverLinkFair(const net::Network& net,
                                  const Allocation& a, const LinkUsage& usage,
                                  std::size_t session,
                                  const PropertyOptions& opt = {});

/// Property 4 for one session.
bool isSessionPerSessionLinkFair(const net::Network& net, const Allocation& a,
                                 const LinkUsage& usage, std::size_t session,
                                 const PropertyOptions& opt = {});

// --- Whole-network checks ------------------------------------------------
//
// Each check has two forms: one that derives the link usage itself, and
// one that takes a precomputed LinkUsage so several checks over the same
// allocation share a single computeLinkUsage pass (checkAllProperties
// uses the latter).

PropertyCheck checkFullyUtilizedReceiverFairness(
    const net::Network& net, const Allocation& a,
    const PropertyOptions& opt = {});
PropertyCheck checkFullyUtilizedReceiverFairness(
    const net::Network& net, const Allocation& a, const LinkUsage& usage,
    const PropertyOptions& opt = {});

PropertyCheck checkSamePathReceiverFairness(const net::Network& net,
                                            const Allocation& a,
                                            const PropertyOptions& opt = {});

PropertyCheck checkPerReceiverLinkFairness(const net::Network& net,
                                           const Allocation& a,
                                           const PropertyOptions& opt = {});
PropertyCheck checkPerReceiverLinkFairness(const net::Network& net,
                                           const Allocation& a,
                                           const LinkUsage& usage,
                                           const PropertyOptions& opt = {});

PropertyCheck checkPerSessionLinkFairness(const net::Network& net,
                                          const Allocation& a,
                                          const PropertyOptions& opt = {});
PropertyCheck checkPerSessionLinkFairness(const net::Network& net,
                                          const Allocation& a,
                                          const LinkUsage& usage,
                                          const PropertyOptions& opt = {});

/// All four property names with their check results, in paper order.
/// Computes the link usage once and shares it across the checks.
std::vector<std::pair<std::string, PropertyCheck>> checkAllProperties(
    const net::Network& net, const Allocation& a,
    const PropertyOptions& opt = {});

}  // namespace mcfair::fairness
