#include "fairness/allocation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::fairness {

Allocation::Allocation(const net::Network& net) {
  offsets_.reserve(net.sessionCount() + 1);
  offsets_.push_back(0);
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    offsets_.push_back(offsets_.back() + net.session(i).receivers.size());
  }
  rates_.assign(offsets_.back(), 0.0);
}

std::size_t Allocation::flatIndexChecked(net::ReceiverRef ref) const {
  if (ref.session >= sessionCount() ||
      ref.receiver >= offsets_[ref.session + 1] - offsets_[ref.session]) {
    throw std::out_of_range("Allocation: receiver reference out of range");
  }
  return offsets_[ref.session] + ref.receiver;
}

double Allocation::rate(net::ReceiverRef ref) const {
  return rates_[flatIndexChecked(ref)];
}

void Allocation::setRate(net::ReceiverRef ref, double rate) {
  MCFAIR_REQUIRE(rate >= 0.0, "receiver rates must be non-negative");
  rates_[flatIndexChecked(ref)] = rate;
}

std::span<const double> Allocation::sessionRates(std::size_t i) const {
  if (i >= sessionCount()) {
    throw std::out_of_range("Allocation: session index out of range");
  }
  return {rates_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

std::vector<double> Allocation::orderedRates() const {
  std::vector<double> out(rates_.begin(), rates_.end());
  std::sort(out.begin(), out.end());
  return out;
}

LinkUsage computeLinkUsage(const net::Network& net, const Allocation& a) {
  LinkUsage usage;
  std::vector<double> scratch;
  computeLinkUsageInto(net, a, usage, scratch);
  return usage;
}

void computeLinkUsageInto(const net::Network& net, const Allocation& a,
                          LinkUsage& out, std::vector<double>& scratch) {
  out.sessionLinkRate.resize(net.sessionCount());
  for (auto& row : out.sessionLinkRate) row.assign(net.linkCount(), 0.0);
  out.linkRate.assign(net.linkCount(), 0.0);
  // Gather per-link, per-session rate sets from the link index, then apply
  // each session's v_i.
  for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
    const graph::LinkId l{j};
    const auto refs = net.receiversOnLink(l);
    std::size_t pos = 0;
    while (pos < refs.size()) {
      const std::size_t i = refs[pos].session;
      scratch.clear();
      while (pos < refs.size() && refs[pos].session == i) {
        scratch.push_back(a.rate(refs[pos]));
        ++pos;
      }
      const double u = net.session(i).linkRateFn->linkRate(scratch);
      out.sessionLinkRate[i][j] = u;
      out.linkRate[j] += u;
    }
  }
}

FeasibilityReport checkFeasible(const net::Network& net, const Allocation& a,
                                double tol) {
  FeasibilityReport report;
  auto fail = [&](std::string msg) {
    report.feasible = false;
    report.violations.push_back(std::move(msg));
  };

  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    const auto& sess = net.session(i);
    const auto& rates = a.sessionRates(i);
    for (std::size_t k = 0; k < rates.size(); ++k) {
      if (rates[k] < -tol) {
        fail("receiver (" + std::to_string(i) + "," + std::to_string(k) +
             ") has negative rate");
      }
      if (rates[k] > sess.maxRate + tol) {
        fail("receiver (" + std::to_string(i) + "," + std::to_string(k) +
             ") exceeds sigma_i = " + std::to_string(sess.maxRate));
      }
    }
    if (sess.type == net::SessionType::kSingleRate) {
      const auto [lo, hi] = std::minmax_element(rates.begin(), rates.end());
      if (*hi - *lo > tol) {
        fail("single-rate session " + std::to_string(i) +
             " has unequal receiver rates");
      }
    }
  }

  const LinkUsage usage = computeLinkUsage(net, a);
  for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
    const double c = net.capacity(graph::LinkId{j});
    if (usage.linkRate[j] > c + tol) {
      fail("link " + std::to_string(j) + " overutilized: u=" +
           std::to_string(usage.linkRate[j]) + " > c=" + std::to_string(c));
    }
  }
  return report;
}

bool isFeasible(const net::Network& net, const Allocation& a, double tol) {
  return checkFeasible(net, a, tol).feasible;
}

}  // namespace mcfair::fairness
