#include "fairness/maxmin.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mcfair::fairness {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Returns the slope s such that u_{i,j} = s * top whenever `top` is at
// least every other rate in the set, or nullopt when v_i is not of that
// form. Recognizes the two rate-linear functions shipped with the library;
// user-defined functions fall back to bisection.
std::optional<double> topRateSlope(const net::LinkRateFunction& fn,
                                   std::size_t receiversOnLink) {
  if (dynamic_cast<const net::EfficientMax*>(&fn) != nullptr) return 1.0;
  if (const auto* cf = dynamic_cast<const net::ConstantFactor*>(&fn)) {
    return receiversOnLink >= 2 ? cf->factor() : 1.0;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Reference implementation: rebuilds every link view each round. Kept as the
// independent oracle for the parity tests and the perf baseline.
// ---------------------------------------------------------------------------

// Per-round view of one link: the frozen rates per session plus the number
// of active receivers per session, enough to evaluate u_j(level) cheaply.
struct LinkView {
  struct SessionGroup {
    std::size_t session;
    std::vector<double> frozenRates;
    /// Weights of the group's active receivers: each contributes rate
    /// weight * level while filling.
    std::vector<double> activeWeights;
  };
  std::vector<SessionGroup> groups;
  double capacity = 0.0;
  bool hasActive = false;
};

double linkUsageAt(const net::Network& net, const LinkView& view,
                   double level) {
  double u = 0.0;
  std::vector<double> rates;
  for (const auto& g : view.groups) {
    rates.assign(g.frozenRates.begin(), g.frozenRates.end());
    for (double w : g.activeWeights) rates.push_back(w * level);
    u += net.session(g.session).linkRateFn->linkRate(rates);
  }
  return u;
}

}  // namespace

MaxMinResult solveMaxMinFairReference(const net::Network& net,
                                      const MaxMinOptions& options) {
  MCFAIR_REQUIRE(options.tolerance > 0.0, "tolerance must be positive");
  MaxMinResult result{Allocation(net), LinkUsage{}, 0};
  if (net.receiverCount() == 0 || net.linkCount() == 0) {
    result.usage = computeLinkUsage(net, result.allocation);
    return result;
  }

  const auto receivers = net.allReceivers();
  std::vector<bool> frozen(receivers.size(), false);
  // Flat receiver index: offsets[i] + k for receiver r_{i,k}.
  std::vector<std::size_t> offsets(net.sessionCount() + 1, 0);
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    offsets[i + 1] = offsets[i] + net.session(i).receivers.size();
  }
  auto flat = [&](net::ReceiverRef ref) {
    return offsets[ref.session] + ref.receiver;
  };
  auto weightOf = [&](net::ReceiverRef ref) {
    return net.session(ref.session).receivers[ref.receiver].weight;
  };
  // Weighted max-min: each active receiver's rate is weight * level, so
  // the filling maximizes min(rate/weight) lexicographically. With unit
  // weights this is the paper's Appendix A algorithm verbatim.
  bool unitWeights = true;
  for (const auto& ref : receivers) {
    if (weightOf(ref) != 1.0) {
      unitWeights = false;
      break;
    }
  }

  double level = 0.0;
  const std::size_t maxRounds = net.receiverCount() + 2;

  while (true) {
    // Collect active receivers; freeze any already at sigma.
    std::vector<net::ReceiverRef> active;
    for (const auto& ref : receivers) {
      if (frozen[flat(ref)]) continue;
      const double sigma = net.session(ref.session).maxRate;
      if (level * weightOf(ref) >= sigma) {  // exact: can reach, not pass
        frozen[flat(ref)] = true;
        result.allocation.setRate(ref, sigma);
        continue;
      }
      active.push_back(ref);
    }
    if (active.empty()) break;
    if (++result.rounds > maxRounds) {
      throw NumericError(
          "solveMaxMinFair: filling failed to terminate; check that custom "
          "link-rate functions are monotone with v(X) >= max(X)");
    }

    // Build per-link views restricted to links with at least one receiver.
    std::vector<LinkView> views(net.linkCount());
    bool allLinear = true;
    for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
      const graph::LinkId l{j};
      const auto refs = net.receiversOnLink(l);
      if (refs.empty()) continue;
      LinkView& view = views[j];
      view.capacity = net.capacity(l);
      std::size_t pos = 0;
      while (pos < refs.size()) {
        LinkView::SessionGroup g;
        g.session = refs[pos].session;
        std::size_t total = 0;
        while (pos < refs.size() && refs[pos].session == g.session) {
          if (frozen[flat(refs[pos])]) {
            g.frozenRates.push_back(result.allocation.rate(refs[pos]));
          } else {
            g.activeWeights.push_back(weightOf(refs[pos]));
          }
          ++total;
          ++pos;
        }
        if (!g.activeWeights.empty()) {
          view.hasActive = true;
          if (!unitWeights ||
              !topRateSlope(*net.session(g.session).linkRateFn, total)) {
            allLinear = false;
          }
        }
        view.groups.push_back(std::move(g));
      }
    }

    // Upper bound on this round's increment: sigma caps and raw capacity
    // (u_j >= w * level for a crossing active receiver, so the level
    // cannot exceed any crossed capacity divided by the weight).
    double hi = kInf;
    for (const auto& ref : active) {
      const double w = weightOf(ref);
      hi = std::min(hi, net.session(ref.session).maxRate / w - level);
      for (graph::LinkId l :
           net.session(ref.session).receivers[ref.receiver].dataPath) {
        hi = std::min(hi, net.capacity(l) / w - level);
      }
    }
    hi = std::max(hi, 0.0);

    // The largest feasible increment.
    double delta;
    if (allLinear) {
      delta = hi;
      for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
        const LinkView& view = views[j];
        if (!view.hasActive) continue;
        // u_j(level+d) = constPart + slopeSum * (level+d).
        double constPart = 0.0;
        double slopeSum = 0.0;
        for (const auto& g : view.groups) {
          const auto& fn = *net.session(g.session).linkRateFn;
          const std::size_t total =
              g.frozenRates.size() + g.activeWeights.size();
          if (!g.activeWeights.empty()) {
            // Unit weights on this path: active receivers carry the top
            // rate of the session on this link (frozen rates froze at
            // lower levels).
            slopeSum += *topRateSlope(fn, total);
          } else {
            constPart += fn.linkRate(g.frozenRates);
          }
        }
        if (slopeSum > 0.0) {
          delta = std::min(delta,
                           (view.capacity - constPart) / slopeSum - level);
        }
      }
      delta = std::max(delta, 0.0);
    } else {
      auto feasibleAt = [&](double d) {
        for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
          const LinkView& view = views[j];
          if (!view.hasActive) continue;
          const double slack = 1e-12 * std::max(1.0, view.capacity);
          if (linkUsageAt(net, view, level + d) > view.capacity + slack) {
            return false;
          }
        }
        return true;
      };
      if (hi == 0.0 || feasibleAt(hi)) {
        delta = hi;
      } else {
        double lo = 0.0;
        double up = hi;
        std::size_t steps = 0;
        while (up - lo > options.tolerance &&
               steps++ < options.maxBisectionSteps) {
          const double mid = 0.5 * (lo + up);
          (feasibleAt(mid) ? lo : up) = mid;
        }
        delta = lo;
      }
    }

    level += delta;

    // Freeze: receivers at sigma, and all active receivers crossing a
    // saturated link.
    std::size_t frozenThisRound = 0;
    auto freezeAt = [&](net::ReceiverRef ref, double rate) {
      if (frozen[flat(ref)]) return;
      frozen[flat(ref)] = true;
      result.allocation.setRate(ref, rate);
      ++frozenThisRound;
    };

    std::vector<bool> saturated(net.linkCount(), false);
    for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
      const LinkView& view = views[j];
      if (!view.hasActive) continue;
      const double slack =
          options.saturationSlack * std::max(1.0, view.capacity);
      saturated[j] = linkUsageAt(net, view, level) >= view.capacity - slack;
    }
    for (const auto& ref : active) {
      const auto& sess = net.session(ref.session);
      const double w = weightOf(ref);
      const double sigmaSlack =
          options.saturationSlack * std::max(1.0, std::isinf(sess.maxRate)
                                                      ? 1.0
                                                      : sess.maxRate);
      if (!std::isinf(sess.maxRate) &&
          level * w >= sess.maxRate - sigmaSlack) {
        freezeAt(ref, sess.maxRate);
        continue;
      }
      for (graph::LinkId l : sess.receivers[ref.receiver].dataPath) {
        if (saturated[l.value]) {
          freezeAt(ref, level * w);
          break;
        }
      }
    }

    // Guard against stalls from a badly-conditioned custom v_i: force the
    // receivers on the most-utilized active link to freeze.
    if (frozenThisRound == 0) {
      double worst = -kInf;
      std::uint32_t worstLink = 0;
      for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
        if (!views[j].hasActive) continue;
        const double headroom =
            views[j].capacity - linkUsageAt(net, views[j], level);
        if (-headroom > worst) {
          worst = -headroom;
          worstLink = j;
        }
      }
      for (const auto& ref : active) {
        if (net.onLink(ref, graph::LinkId{worstLink})) {
          freezeAt(ref, level * weightOf(ref));
        }
      }
      if (frozenThisRound == 0) {
        throw NumericError("solveMaxMinFair: no receiver could be frozen");
      }
    }

    // Step 7: a single-rate session freezes as a unit.
    for (const auto& ref : active) {
      if (frozen[flat(ref)]) continue;
      const auto& sess = net.session(ref.session);
      if (sess.type != net::SessionType::kSingleRate) continue;
      bool anyFrozen = false;
      for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
        if (frozen[offsets[ref.session] + k]) {
          anyFrozen = true;
          break;
        }
      }
      if (anyFrozen) freezeAt(ref, level * weightOf(ref));
    }

    // Active receivers that remain continue at `level` into the next
    // round; record their provisional rate so usage queries mid-run (and
    // the final write-out below) are consistent.
    for (const auto& ref : active) {
      if (!frozen[flat(ref)]) {
        result.allocation.setRate(ref, level * weightOf(ref));
      }
    }
  }

  result.usage = computeLinkUsage(net, result.allocation);
  return result;
}

// ---------------------------------------------------------------------------
// Incremental engine.
//
// All per-network structure (link->receiver adjacency in CSR form, session
// groups per link, per-receiver data-paths with back-pointers into the
// groups, freeze-level orderings) is built once in bind(). During the
// filling loop the only per-round work is:
//   * advancing lazy pointers over the pre-sorted sigma orderings,
//   * reading the minimum link-saturation level off a lazy min-heap
//     (linear path) or bisecting over the compact active-link list
//     (nonlinear path),
//   * a saturation sweep over active links (O(1) per link on the linear
//     path), and
//   * for each receiver that freezes, recomputing the accumulators of the
//     links on its data-path only.
// Every buffer is preallocated in bind(); the loop allocates nothing.
// ---------------------------------------------------------------------------

struct MaxMinSolver::Engine {
  const net::Network* net = nullptr;
  std::uint64_t boundIdentity = 0;   // 0 = never bound
  std::uint64_t boundStructure = 0;  // structureIdentity() of that bind

  // ---- static structure, rebuilt by bind() ----
  std::size_t nSessions = 0;
  std::size_t nLinks = 0;
  std::size_t nReceivers = 0;

  // Per receiver, flat (session-major) index.
  std::vector<std::size_t> sessionOf;
  std::vector<double> weight;
  std::vector<double> sigma;            // sigma_i copied per receiver
  std::vector<double> sigmaLevel;       // sigma_i / w: exact-freeze level
  std::vector<double> sigmaSlackLevel;  // (sigma_i - slack_i) / w
  std::vector<std::size_t> pathBegin;   // nReceivers + 1
  std::vector<std::uint32_t> pathLink;
  std::vector<std::uint32_t> pathGroup;  // group index per path slot

  // Link -> receiver adjacency (flat ids), receivers grouped by session.
  std::vector<std::size_t> adjBegin;  // nLinks + 1
  std::vector<std::uint32_t> adj;

  // R_{i,j} session groups, stored in link order.
  struct Group {
    std::size_t session = 0;
    std::size_t begin = 0, end = 0;  // adj range
    double slope = 0.0;              // top-rate slope; valid when linear
    bool linear = false;
    std::size_t active = 0;  // dynamic: unfrozen receivers in the group
  };
  std::vector<Group> groups;
  std::vector<std::size_t> groupBegin;  // nLinks + 1

  // Per link.
  std::vector<double> capacity;
  std::vector<double> satSlack;      // saturationSlack * max(1, c_j)
  std::vector<double> satThreshold;  // capacity[j] - satSlack[j]
  std::vector<double> bisectSlack;   // 1e-12 * max(1, c_j)

  std::vector<char> sessionSingleRate;
  bool unitWeights = true;

  // Freeze-level orderings (ascending; lazy frozen-skipping pointers).
  std::vector<std::uint32_t> sigmaOrder;       // by sigmaLevel
  std::vector<std::uint32_t> sigmaSlackOrder;  // by sigmaSlackLevel, finite
  struct CapKey {
    double key;  // c_j / w for one (receiver, path-link) pair
    std::uint32_t receiver;
  };
  std::vector<CapKey> capOrder;  // by key

  // Session link-rate function kinds, resolved once at bind() so neither
  // bind() nor the filling loop pays a dynamic_cast per group per round.
  enum class FnKind : std::uint8_t { kMax, kConstFactor, kOther };
  std::vector<FnKind> fnKind;    // per session
  std::vector<double> fnFactor;  // per session; ConstantFactor only

  // ---- dynamic state, reset by solve() ----
  std::vector<char> frozen;
  std::vector<double> rate;
  std::vector<double> linkConst;   // sum of fully-frozen groups' v_i values
  std::vector<double> linkSlope;   // sum of active linear groups' slopes
  std::vector<std::uint32_t> linkActive;
  std::vector<char> linkNonlinear;  // has an active unrecognized group
  std::vector<std::uint32_t> linkVersion;
  std::vector<std::uint32_t> activeLinks;  // compact, unordered
  std::vector<std::uint32_t> activeLinkPos;
  // Dense mirrors of the linear saturation-scan inputs, parallel to
  // activeLinks: slot idx holds (linkConst, linkSlope,
  // capacity - satSlack) of link activeLinks[idx]. The per-round linear
  // scan then reads three contiguous arrays with no indirection and no
  // branch in the loop body — a flat, vectorization-friendly sweep —
  // instead of gathering through activeLinks into the per-link arrays.
  // Maintained by recomputeLink (scatter via activeLinkPos) and the
  // freeze-time swap-remove, i.e. O(affected links) per freeze.
  std::vector<double> denseConst;
  std::vector<double> denseSlope;
  std::vector<double> denseThresh;
  struct Cand {
    double key;  // level at which the link saturates
    std::uint32_t link;
    std::uint32_t version;
  };
  std::vector<Cand> heap;  // lazy min-heap on key
  std::vector<std::uint32_t> dirtyLinks;
  std::vector<char> linkDirty;
  std::vector<std::uint32_t> satLinks;
  std::vector<std::size_t> sessActive;
  std::vector<std::size_t> sessFrozen;
  std::vector<std::uint32_t> pendingSingle;
  std::vector<char> singleQueued;
  std::size_t nonlinearActiveGroups = 0;
  std::size_t activeReceivers = 0;
  std::size_t sigmaPtr = 0;
  std::size_t sigmaSlackPtr = 0;
  std::size_t capPtr = 0;
  std::size_t frozenThisRound = 0;
  double level = 0.0;

  std::vector<double> gather;  // rate-set scratch for v_i calls
  bool usageZeroed = false;    // usage rows hold only stale group cells

  // ---- parallel mode ----
  // Resolved executor count (0/1 = serial) and the reusable pool. The
  // sharded sweeps split a work list (activeLinks or dirtyLinks) into
  // `threads` contiguous ranges; each range writes only per-shard scratch
  // (shardGather for v_i gathers, shardSat for saturation candidates) or
  // per-link slots, and shard outputs merge in list order afterwards —
  // which is what makes the parallel path bit-identical to the serial
  // one. Boundaries are load-aware: ranges are cut so each shard carries
  // an equal share of summed per-link cost (1 + receivers on the link),
  // which balances the bottleneck-heavy links of scale-free topologies.
  std::size_t threads = 0;
  std::unique_ptr<util::ThreadPool> pool;
  std::vector<std::size_t> shardBounds;            // threads + 1 slots
  std::vector<std::vector<double>> shardGather;    // one per shard
  std::vector<std::vector<std::uint32_t>> shardSat;
  // Group-farm scratch for the single-bottleneck feasibility probe (see
  // solve()): the active links' group ids in list order, and the
  // per-group usage values the serial per-link reduction consumes.
  std::vector<std::uint32_t> farmGroups;
  std::vector<double> farmUsage;

  std::optional<MaxMinResult> result;

  static constexpr std::uint32_t kNoPos =
      std::numeric_limits<std::uint32_t>::max();

  void bind(const net::Network& network, const MaxMinOptions& options);
  const MaxMinResult& solve(const MaxMinOptions& options, bool withUsage);

 private:
  // The capacity-only rebind (structureIdentity unchanged, e.g. a fault
  // applied via Network::setCapacity): refreshes every capacity-derived
  // array in place — O(links + pathSlots), allocation-free.
  void refreshCapacities(const net::Network& network,
                         const MaxMinOptions& options);
  void writeUsage();
  void resetDynamicState(const MaxMinOptions& options);
  void freeze(std::uint32_t f, double frozenRate);
  void flushDirtyLinks(const MaxMinOptions& options);
  void heapPush(std::uint32_t j);
  double heapMinKey();
  double nextSigmaMin();
  double nextCapMin();
  // v_i evaluation of one group at `lv`, frozen rates first (matching the
  // reference's gather order so nonlinear v_i see identical inputs).
  double groupUsageAt(const Group& g, double lv, std::vector<double>& rs);
  double linkUsageFullAt(std::uint32_t j, double lv,
                         std::vector<double>& rs);
  // Load model for the sharded sweeps: per-link cost ~ 1 + receivers on
  // the link (gather/eval work scales with adjacency size).
  double linkSweepCost(std::uint32_t j) const {
    return 1.0 + static_cast<double>(adjBegin[j + 1] - adjBegin[j]);
  }
  void recomputeLink(std::uint32_t j, std::vector<double>& rs);
  // Partitions [0, n) into load-balanced contiguous shards (boundaries
  // land in shardBounds) and returns the shard count: 1 when the pool is
  // absent or n is below the grain. `costAt(idx)` weights the load-aware
  // boundaries. The plan stays valid until the next plan, so sweeps that
  // repeat over an unchanged work list (the bisection probes of one
  // round) plan once and run many times.
  template <typename Cost>
  std::size_t planShards(std::size_t n, const MaxMinOptions& options,
                         Cost&& costAt);
  // Runs body(shard, begin, end) over the planned partition; a 1-shard
  // plan runs inline on the calling thread. Shard outputs must be merged
  // by the caller in ascending shard order.
  template <typename Body>
  void runPlanned(std::size_t shards, std::size_t n, Body&& body);
  // planShards + runPlanned for one-shot sweeps.
  template <typename Cost, typename Body>
  std::size_t shardedSweep(std::size_t n, const MaxMinOptions& options,
                           Cost&& costAt, Body&& body);
};

template <typename Cost>
std::size_t MaxMinSolver::Engine::planShards(std::size_t n,
                                             const MaxMinOptions& options,
                                             Cost&& costAt) {
  if (threads <= 1 || pool == nullptr || n < options.parallelGrain ||
      n < 2) {
    return 1;
  }
  const std::size_t shards = std::min(threads, n);
  double total = 0.0;
  for (std::size_t idx = 0; idx < n; ++idx) total += costAt(idx);
  shardBounds[0] = 0;
  std::size_t cut = 0;
  double acc = 0.0;
  for (std::size_t idx = 0; idx < n && cut + 1 < shards; ++idx) {
    acc += costAt(idx);
    while (cut + 1 < shards &&
           acc >= total * static_cast<double>(cut + 1) /
                      static_cast<double>(shards)) {
      shardBounds[++cut] = idx + 1;
    }
  }
  while (cut < shards) shardBounds[++cut] = n;
  return shards;
}

template <typename Body>
void MaxMinSolver::Engine::runPlanned(std::size_t shards, std::size_t n,
                                      Body&& body) {
  if (shards <= 1) {
    body(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  auto task = [&](std::size_t s) { body(s, shardBounds[s], shardBounds[s + 1]); };
  pool->forEachShard(shards, util::ShardFnRef(task));
}

template <typename Cost, typename Body>
std::size_t MaxMinSolver::Engine::shardedSweep(std::size_t n,
                                               const MaxMinOptions& options,
                                               Cost&& costAt, Body&& body) {
  const std::size_t shards = planShards(n, options, costAt);
  runPlanned(shards, n, body);
  return shards;
}

void MaxMinSolver::Engine::bind(const net::Network& network,
                                const MaxMinOptions& options) {
  if (boundIdentity == network.identity()) {
    // Identical structure (identities are process-unique and bumped on
    // every mutation): the CSR workspace is already correct.
    net = &network;
    return;
  }
  if (boundStructure != 0 &&
      boundStructure == network.structureIdentity() && result.has_value()) {
    // Same shape, different capacities (Network::setCapacity — the fault
    // delta path): only the capacity-derived arrays need refreshing.
    refreshCapacities(network, options);
    return;
  }
  net = &network;
  nSessions = network.sessionCount();
  nLinks = network.linkCount();
  nReceivers = network.receiverCount();

  sessionOf.resize(nReceivers);
  weight.resize(nReceivers);
  sigma.resize(nReceivers);
  sigmaLevel.resize(nReceivers);
  sigmaSlackLevel.resize(nReceivers);
  sessionSingleRate.resize(nSessions);
  unitWeights = true;

  const auto refs = network.receiverRefs();
  std::size_t totalPathSlots = 0;
  for (std::size_t f = 0; f < nReceivers; ++f) {
    const auto ref = refs[f];
    const auto& sess = network.session(ref.session);
    const auto& rcv = sess.receivers[ref.receiver];
    sessionOf[f] = ref.session;
    weight[f] = rcv.weight;
    if (rcv.weight != 1.0) unitWeights = false;
    sigma[f] = sess.maxRate;
    sigmaLevel[f] = sess.maxRate / rcv.weight;
    if (std::isinf(sess.maxRate)) {
      sigmaSlackLevel[f] = kInf;
    } else {
      const double slack =
          options.saturationSlack * std::max(1.0, sess.maxRate);
      sigmaSlackLevel[f] = (sess.maxRate - slack) / rcv.weight;
    }
    totalPathSlots += rcv.dataPath.size();
  }
  for (std::size_t i = 0; i < nSessions; ++i) {
    sessionSingleRate[i] =
        network.session(i).type == net::SessionType::kSingleRate ? 1 : 0;
  }

  // Resolve each session's v_i kind once. Sessions typically share a few
  // function instances (efficientMax() is a singleton), so a tiny
  // pointer-keyed cache avoids re-running dynamic_cast per session, let
  // alone per group per round.
  fnKind.resize(nSessions);
  fnFactor.assign(nSessions, 1.0);
  {
    struct CacheEntry {
      const net::LinkRateFunction* fn;
      FnKind kind;
      double factor;
    };
    std::vector<CacheEntry> cache;
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto* fn = network.session(i).linkRateFn.get();
      const CacheEntry* hit = nullptr;
      for (const auto& e : cache) {
        if (e.fn == fn) {
          hit = &e;
          break;
        }
      }
      if (hit == nullptr) {
        CacheEntry e{fn, FnKind::kOther, 1.0};
        if (dynamic_cast<const net::EfficientMax*>(fn) != nullptr) {
          e.kind = FnKind::kMax;
        } else if (const auto* cf =
                       dynamic_cast<const net::ConstantFactor*>(fn)) {
          e.kind = FnKind::kConstFactor;
          e.factor = cf->factor();
        }
        cache.push_back(e);
        hit = &cache.back();
      }
      fnKind[i] = hit->kind;
      fnFactor[i] = hit->factor;
    }
  }

  // Receiver data-paths, CSR.
  pathBegin.resize(nReceivers + 1);
  pathLink.resize(totalPathSlots);
  pathGroup.assign(totalPathSlots, 0);
  {
    std::size_t pos = 0;
    for (std::size_t f = 0; f < nReceivers; ++f) {
      pathBegin[f] = pos;
      const auto ref = refs[f];
      for (graph::LinkId l :
           network.session(ref.session).receivers[ref.receiver].dataPath) {
        pathLink[pos++] = l.value;
      }
    }
    pathBegin[nReceivers] = pos;
  }

  // Link adjacency and session groups. The per-session top-rate slope is
  // resolved here, once, instead of dynamic_cast-ing every round.
  adjBegin.resize(nLinks + 1);
  adj.clear();
  adj.reserve(totalPathSlots);
  groups.clear();
  groupBegin.resize(nLinks + 1);
  capacity.resize(nLinks);
  satSlack.resize(nLinks);
  satThreshold.resize(nLinks);
  bisectSlack.resize(nLinks);
  std::size_t maxGroupSize = 1;
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    const graph::LinkId l{j};
    adjBegin[j] = adj.size();
    groupBegin[j] = groups.size();
    capacity[j] = network.capacity(l);
    satSlack[j] = options.saturationSlack * std::max(1.0, capacity[j]);
    satThreshold[j] = capacity[j] - satSlack[j];
    bisectSlack[j] = 1e-12 * std::max(1.0, capacity[j]);
    const auto onLink = network.receiversOnLink(l);
    std::size_t pos = 0;
    while (pos < onLink.size()) {
      Group g;
      g.session = onLink[pos].session;
      g.begin = adj.size();
      while (pos < onLink.size() && onLink[pos].session == g.session) {
        adj.push_back(
            static_cast<std::uint32_t>(network.flatIndex(onLink[pos])));
        ++pos;
      }
      g.end = adj.size();
      switch (fnKind[g.session]) {
        case FnKind::kMax:
          g.linear = true;
          g.slope = 1.0;
          break;
        case FnKind::kConstFactor:
          g.linear = true;
          g.slope = g.end - g.begin >= 2 ? fnFactor[g.session] : 1.0;
          break;
        case FnKind::kOther:
          g.linear = false;
          g.slope = 0.0;
          break;
      }
      maxGroupSize = std::max(maxGroupSize, g.end - g.begin);
      groups.push_back(g);
    }
  }
  adjBegin[nLinks] = adj.size();
  groupBegin[nLinks] = groups.size();

  // Back-pointers: for each (receiver, path-link) slot, the group that
  // holds the receiver on that link — freezing updates only these.
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1]; ++gi) {
      const Group& g = groups[gi];
      for (std::size_t s = g.begin; s < g.end; ++s) {
        const std::uint32_t f = adj[s];
        // Locate link j in receiver f's (sorted) data-path.
        const std::size_t lo = pathBegin[f];
        const std::size_t hi = pathBegin[f + 1];
        const auto* first = pathLink.data() + lo;
        const auto* last = pathLink.data() + hi;
        const auto* it = std::lower_bound(first, last, j);
        pathGroup[lo + static_cast<std::size_t>(it - first)] =
            static_cast<std::uint32_t>(gi);
      }
    }
  }

  // Freeze-level orderings (ties broken by index for determinism). When
  // every sigma is unlimited the order is irrelevant — skip the sort.
  sigmaOrder.resize(nReceivers);
  bool anyFiniteSigma = false;
  for (std::size_t f = 0; f < nReceivers; ++f) {
    sigmaOrder[f] = static_cast<std::uint32_t>(f);
    if (!std::isinf(sigmaLevel[f])) anyFiniteSigma = true;
  }
  if (anyFiniteSigma) {
    std::sort(sigmaOrder.begin(), sigmaOrder.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (sigmaLevel[a] != sigmaLevel[b]) {
                  return sigmaLevel[a] < sigmaLevel[b];
                }
                return a < b;
              });
  }
  sigmaSlackOrder.clear();
  sigmaSlackOrder.reserve(nReceivers);
  for (std::uint32_t f = 0; f < nReceivers; ++f) {
    if (!std::isinf(sigmaSlackLevel[f])) sigmaSlackOrder.push_back(f);
  }
  std::sort(sigmaSlackOrder.begin(), sigmaSlackOrder.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (sigmaSlackLevel[a] != sigmaSlackLevel[b]) {
                return sigmaSlackLevel[a] < sigmaSlackLevel[b];
              }
              return a < b;
            });
  // The capacity/weight ordering feeds the nonlinear path's upper bound.
  // With unit weights and only rate-linear groups, every round takes the
  // closed form, so skip building it (nonlinearActiveGroups can only
  // decrease during a solve and unitWeights is static).
  bool anyNonlinearGroup = false;
  for (const Group& g : groups) {
    if (!g.linear) {
      anyNonlinearGroup = true;
      break;
    }
  }
  capOrder.clear();
  if (!unitWeights || anyNonlinearGroup) {
    capOrder.reserve(totalPathSlots);
    for (std::size_t f = 0; f < nReceivers; ++f) {
      for (std::size_t s = pathBegin[f]; s < pathBegin[f + 1]; ++s) {
        capOrder.push_back(CapKey{capacity[pathLink[s]] / weight[f],
                                  static_cast<std::uint32_t>(f)});
      }
    }
    std::sort(capOrder.begin(), capOrder.end(),
              [](const CapKey& a, const CapKey& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.receiver < b.receiver;
              });
  }

  // Dynamic buffers: size once here so solve() never allocates.
  frozen.resize(nReceivers);
  rate.resize(nReceivers);
  linkConst.resize(nLinks);
  linkSlope.resize(nLinks);
  linkActive.resize(nLinks);
  linkNonlinear.resize(nLinks);
  linkVersion.resize(nLinks);
  activeLinks.reserve(nLinks);
  activeLinkPos.resize(nLinks);
  denseConst.resize(nLinks);
  denseSlope.resize(nLinks);
  denseThresh.resize(nLinks);
  // One heap entry per link at the start of a solve plus at most one per
  // (receiver, path-link) freeze update over the whole filling.
  heap.reserve(nLinks + totalPathSlots + 1);
  dirtyLinks.reserve(nLinks);
  linkDirty.resize(nLinks);
  satLinks.reserve(nLinks);
  sessActive.resize(nSessions);
  sessFrozen.resize(nSessions);
  pendingSingle.reserve(nSessions);
  singleQueued.resize(nSessions);
  gather.reserve(maxGroupSize);
  farmGroups.reserve(groups.size());
  farmUsage.resize(groups.size());
  // Per-shard scratch (slot 0 doubles as the serial single-shard slot):
  // sized here so the sharded sweeps never allocate inside solve().
  const std::size_t shardSlots = std::max<std::size_t>(threads, 1);
  shardBounds.resize(threads + 1);
  shardGather.resize(shardSlots);
  for (auto& rs : shardGather) rs.reserve(maxGroupSize);
  shardSat.resize(shardSlots);
  for (auto& out : shardSat) out.reserve(nLinks);
  // Spawn the pool lazily, and only for networks whose sweep lists can
  // actually reach the sharding grain: transient solvers on small
  // networks (and thread_local cached ones that never see a big bind)
  // then never pay for threads-1 idle OS threads.
  if (threads > 1 && pool == nullptr && nLinks >= options.parallelGrain) {
    pool = std::make_unique<util::ThreadPool>(threads);
  }

  // Reuse the result object when the shape matches; otherwise rebuild.
  bool shapeMatches = result.has_value() &&
                      result->allocation.sessionCount() == nSessions;
  for (std::size_t i = 0; shapeMatches && i < nSessions; ++i) {
    shapeMatches = result->allocation.sessionRates(i).size() ==
                   network.session(i).receivers.size();
  }
  if (!shapeMatches) {
    result.emplace(MaxMinResult{Allocation(network), LinkUsage{}, 0});
  }
  usageZeroed = false;
  boundIdentity = network.identity();
  boundStructure = network.structureIdentity();
}

void MaxMinSolver::Engine::refreshCapacities(const net::Network& network,
                                             const MaxMinOptions& options) {
  net = &network;
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    capacity[j] = network.capacity(graph::LinkId{j});
    satSlack[j] = options.saturationSlack * std::max(1.0, capacity[j]);
    satThreshold[j] = capacity[j] - satSlack[j];
    bisectSlack[j] = 1e-12 * std::max(1.0, capacity[j]);
  }
  // capOrder keys are capacity-dependent; re-derive and re-sort in place
  // (std::sort allocates nothing, and the (key, receiver) comparator is a
  // total order, so the result is identical to a full rebuild's).
  if (!capOrder.empty()) {
    std::size_t pos = 0;
    for (std::size_t f = 0; f < nReceivers; ++f) {
      for (std::size_t s = pathBegin[f]; s < pathBegin[f + 1]; ++s) {
        capOrder[pos++] = CapKey{capacity[pathLink[s]] / weight[f],
                                 static_cast<std::uint32_t>(f)};
      }
    }
    std::sort(capOrder.begin(), capOrder.end(),
              [](const CapKey& a, const CapKey& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.receiver < b.receiver;
              });
  }
  boundIdentity = network.identity();
}

void MaxMinSolver::Engine::resetDynamicState(const MaxMinOptions& options) {
  std::fill(frozen.begin(), frozen.end(), char{0});
  std::fill(rate.begin(), rate.end(), 0.0);
  std::fill(linkVersion.begin(), linkVersion.end(), 0u);
  std::fill(linkDirty.begin(), linkDirty.end(), char{0});
  std::fill(singleQueued.begin(), singleQueued.end(), char{0});
  std::fill(sessFrozen.begin(), sessFrozen.end(), std::size_t{0});
  for (std::size_t i = 0; i < nSessions; ++i) {
    sessActive[i] = net->session(i).receivers.size();
  }
  nonlinearActiveGroups = 0;
  for (auto& g : groups) {
    g.active = g.end - g.begin;
    if (!g.linear) ++nonlinearActiveGroups;
  }
  activeLinks.clear();
  heap.clear();
  dirtyLinks.clear();
  satLinks.clear();
  pendingSingle.clear();
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    linkActive[j] =
        static_cast<std::uint32_t>(adjBegin[j + 1] - adjBegin[j]);
    if (linkActive[j] > 0) {
      activeLinkPos[j] = static_cast<std::uint32_t>(activeLinks.size());
      activeLinks.push_back(j);
    } else {
      activeLinkPos[j] = kNoPos;
      linkConst[j] = 0.0;
      linkSlope[j] = 0.0;
      linkNonlinear[j] = 0;
    }
  }
  // Initial accumulator scan, sharded across the pool: each link's
  // (const, slope, nonlinear) triple is written by exactly one shard.
  shardedSweep(
      activeLinks.size(), options,
      [&](std::size_t idx) { return linkSweepCost(activeLinks[idx]); },
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<double>& rs = shardGather[shard];
        for (std::size_t idx = begin; idx < end; ++idx) {
          recomputeLink(activeLinks[idx], rs);
        }
      });
  // Serial merge: saturation-level candidates enter the lazy min-heap in
  // active-list order, exactly as the serial path pushes them.
  for (const std::uint32_t j : activeLinks) heapPush(j);
  activeReceivers = nReceivers;
  sigmaPtr = 0;
  sigmaSlackPtr = 0;
  capPtr = 0;
  frozenThisRound = 0;
  level = 0.0;
}

double MaxMinSolver::Engine::groupUsageAt(const Group& g, double lv,
                                          std::vector<double>& rs) {
  rs.clear();
  for (std::size_t s = g.begin; s < g.end; ++s) {
    const std::uint32_t f = adj[s];
    if (frozen[f]) rs.push_back(rate[f]);
  }
  for (std::size_t s = g.begin; s < g.end; ++s) {
    const std::uint32_t f = adj[s];
    if (!frozen[f]) rs.push_back(weight[f] * lv);
  }
  return net->session(g.session).linkRateFn->linkRate(rs);
}

double MaxMinSolver::Engine::linkUsageFullAt(std::uint32_t j, double lv,
                                             std::vector<double>& rs) {
  double u = 0.0;
  for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1]; ++gi) {
    u += groupUsageAt(groups[gi], lv, rs);
  }
  return u;
}

void MaxMinSolver::Engine::recomputeLink(std::uint32_t j,
                                         std::vector<double>& rs) {
  double constPart = 0.0;
  double slopeSum = 0.0;
  bool nonlinear = false;
  for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1]; ++gi) {
    const Group& g = groups[gi];
    if (g.active > 0) {
      if (g.linear) {
        slopeSum += g.slope;
      } else {
        nonlinear = true;
      }
    } else {
      // Fully frozen group: contributes a constant v_i of its frozen
      // rates (gathered in adjacency order, like the reference).
      rs.clear();
      for (std::size_t s = g.begin; s < g.end; ++s) {
        rs.push_back(rate[adj[s]]);
      }
      constPart += net->session(g.session).linkRateFn->linkRate(rs);
    }
  }
  linkConst[j] = constPart;
  linkSlope[j] = slopeSum;
  linkNonlinear[j] = nonlinear ? 1 : 0;
  // Scatter into the dense scan mirrors (every link recomputed here is
  // in the active list; shard-safe — each dirty link is recomputed by
  // exactly one shard and owns its slot).
  const std::uint32_t pos = activeLinkPos[j];
  denseConst[pos] = constPart;
  denseSlope[pos] = slopeSum;
  denseThresh[pos] = satThreshold[j];
}

void MaxMinSolver::Engine::heapPush(std::uint32_t j) {
  const double key = (linkNonlinear[j] || linkSlope[j] <= 0.0)
                         ? kInf
                         : (capacity[j] - linkConst[j]) / linkSlope[j];
  heap.push_back(Cand{key, j, linkVersion[j]});
  std::push_heap(heap.begin(), heap.end(),
                 [](const Cand& a, const Cand& b) { return a.key > b.key; });
}

double MaxMinSolver::Engine::heapMinKey() {
  const auto later = [](const Cand& a, const Cand& b) {
    return a.key > b.key;
  };
  while (!heap.empty()) {
    const Cand& top = heap.front();
    if (linkActive[top.link] > 0 && top.version == linkVersion[top.link]) {
      return top.key;
    }
    std::pop_heap(heap.begin(), heap.end(), later);
    heap.pop_back();
  }
  return kInf;
}

double MaxMinSolver::Engine::nextSigmaMin() {
  while (sigmaPtr < sigmaOrder.size() && frozen[sigmaOrder[sigmaPtr]]) {
    ++sigmaPtr;
  }
  return sigmaPtr < sigmaOrder.size() ? sigmaLevel[sigmaOrder[sigmaPtr]]
                                      : kInf;
}

double MaxMinSolver::Engine::nextCapMin() {
  while (capPtr < capOrder.size() && frozen[capOrder[capPtr].receiver]) {
    ++capPtr;
  }
  return capPtr < capOrder.size() ? capOrder[capPtr].key : kInf;
}

void MaxMinSolver::Engine::freeze(std::uint32_t f, double frozenRate) {
  frozen[f] = 1;
  rate[f] = frozenRate;
  ++frozenThisRound;
  --activeReceivers;
  const std::size_t sess = sessionOf[f];
  --sessActive[sess];
  ++sessFrozen[sess];
  if (sessionSingleRate[sess] && sessActive[sess] > 0 &&
      !singleQueued[sess]) {
    singleQueued[sess] = 1;
    pendingSingle.push_back(static_cast<std::uint32_t>(sess));
  }
  for (std::size_t s = pathBegin[f]; s < pathBegin[f + 1]; ++s) {
    const std::uint32_t j = pathLink[s];
    Group& g = groups[pathGroup[s]];
    --g.active;
    if (g.active == 0 && !g.linear) --nonlinearActiveGroups;
    --linkActive[j];
    if (!linkDirty[j]) {
      linkDirty[j] = 1;
      dirtyLinks.push_back(j);
    }
    if (linkActive[j] == 0) {
      // Swap-remove from the compact active-link list, mirrored on the
      // dense scan arrays so slot idx keeps describing activeLinks[idx].
      const std::uint32_t pos = activeLinkPos[j];
      const std::uint32_t lastLink = activeLinks.back();
      const auto lastPos =
          static_cast<std::uint32_t>(activeLinks.size() - 1);
      activeLinks[pos] = lastLink;
      activeLinkPos[lastLink] = pos;
      denseConst[pos] = denseConst[lastPos];
      denseSlope[pos] = denseSlope[lastPos];
      denseThresh[pos] = denseThresh[lastPos];
      activeLinks.pop_back();
      activeLinkPos[j] = kNoPos;
    }
  }
}

void MaxMinSolver::Engine::flushDirtyLinks(const MaxMinOptions& options) {
  // Accumulator recompute of the dirtied links, sharded (each dirty link
  // appears once, so its slots are written by exactly one shard)...
  shardedSweep(
      dirtyLinks.size(), options,
      [&](std::size_t idx) { return linkSweepCost(dirtyLinks[idx]); },
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<double>& rs = shardGather[shard];
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::uint32_t j = dirtyLinks[idx];
          if (linkActive[j] > 0) recomputeLink(j, rs);
        }
      });
  // ...then a serial merge of the fresh saturation-level candidates into
  // the global lazy min-heap, in dirty order (the serial push sequence).
  for (const std::uint32_t j : dirtyLinks) {
    linkDirty[j] = 0;
    if (linkActive[j] == 0) continue;  // no longer constrains the filling
    ++linkVersion[j];
    heapPush(j);
  }
  dirtyLinks.clear();
}

// Materializes u_{i,j}/u_j from the final frozen rates using the group
// structure: only cells with receivers are touched, so repeated solves do
// not re-zero the dense sessions x links matrix.
void MaxMinSolver::Engine::writeUsage() {
  LinkUsage& usage = result->usage;
  usage.sessionLinkRate.resize(nSessions);
  if (!usageZeroed) {
    for (auto& row : usage.sessionLinkRate) row.assign(nLinks, 0.0);
    usageZeroed = true;
  }
  usage.linkRate.assign(nLinks, 0.0);
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1]; ++gi) {
      const Group& g = groups[gi];
      gather.clear();
      for (std::size_t s = g.begin; s < g.end; ++s) {
        gather.push_back(rate[adj[s]]);
      }
      const double u =
          net->session(g.session).linkRateFn->linkRate(gather);
      usage.sessionLinkRate[g.session][j] = u;
      usage.linkRate[j] += u;
    }
  }
}

const MaxMinResult& MaxMinSolver::Engine::solve(const MaxMinOptions& options,
                                                bool withUsage) {
  MCFAIR_REQUIRE(net != nullptr, "MaxMinSolver::solve before bind");
  MaxMinResult& out = *result;
  out.rounds = 0;
  if (nReceivers == 0 || nLinks == 0) {
    if (withUsage) {
      std::vector<double> scratch;
      computeLinkUsageInto(*net, out.allocation, out.usage, scratch);
      usageZeroed = true;
    }
    return out;
  }

  resetDynamicState(options);
  const std::size_t maxRounds = nReceivers + 2;

  while (true) {
    // Freeze receivers whose sigma is exactly reachable at this level.
    {
      double sigMin;
      while ((sigMin = nextSigmaMin()) <= level) {
        const std::uint32_t f = sigmaOrder[sigmaPtr];
        freeze(f, sigma[f]);
        ++sigmaPtr;
      }
    }
    flushDirtyLinks(options);
    if (activeReceivers == 0) break;
    if (++out.rounds > maxRounds) {
      throw NumericError(
          "solveMaxMinFair: filling failed to terminate; check that custom "
          "link-rate functions are monotone with v(X) >= max(X)");
    }

    const bool linear = unitWeights && nonlinearActiveGroups == 0;
    double delta;
    if (linear) {
      // Closed form: the next event is the smallest of the remaining
      // sigma levels and the link saturation levels off the heap.
      delta = std::min(nextSigmaMin(), heapMinKey()) - level;
      delta = std::max(delta, 0.0);
    } else {
      // Upper bound from sigma caps and raw capacities (lazy pointers
      // over the static orderings), then bisection on feasibility over
      // the active links only.
      double hi = std::min(nextSigmaMin(), nextCapMin()) - level;
      hi = std::max(hi, 0.0);
      // Single-bottleneck farm detection: link-granular shards treat
      // each link as indivisible, so one heavy bottleneck (a mega-merge
      // shape — thousands of receiver groups on a single link) caps the
      // speedup at ~2x no matter the thread count. When one link
      // carries at least half the sweep cost, farm the GROUP list
      // instead: every active link's groups, in active-list order, cut
      // by per-group cost — which splits the heavy link's receiver
      // range across shards.
      double sweepTotal = 0.0;
      double sweepMax = 0.0;
      for (const std::uint32_t j : activeLinks) {
        const double c = linkSweepCost(j);
        sweepTotal += c;
        sweepMax = std::max(sweepMax, c);
      }
      bool farm = threads > 1 && pool != nullptr &&
                  sweepMax * 2.0 >= sweepTotal;
      std::size_t farmShards = 1;
      if (farm) {
        farmGroups.clear();
        for (const std::uint32_t j : activeLinks) {
          for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1];
               ++gi) {
            farmGroups.push_back(static_cast<std::uint32_t>(gi));
          }
        }
        farmShards =
            planShards(farmGroups.size(), options, [&](std::size_t idx) {
              const Group& g = groups[farmGroups[idx]];
              return 1.0 + static_cast<double>(g.end - g.begin);
            });
        farm = farmShards > 1;
      }
      // Sharded feasibility sweep: shards combine by AND (one crossing
      // link anywhere makes the level infeasible), so claim order cannot
      // affect the verdict; the `infeasible` flag doubles as an early-out
      // hint for the other shards. activeLinks and the per-link costs are
      // fixed for the whole round, so the partition is planned once here
      // and reused by every bisection probe. (The farm plan, when
      // engaged, owns shardBounds instead — only one plan is live.)
      const std::size_t feasibilityShards =
          farm ? 1
               : planShards(activeLinks.size(), options,
                            [&](std::size_t idx) {
                              return linkSweepCost(activeLinks[idx]);
                            });
      auto feasibleAt = [&](double d) {
        const double lv = level + d;
        if (farm) {
          // Evaluate every group independently (disjoint farmUsage
          // slots; groupUsageAt is side-effect-free), then reduce each
          // link serially in ascending group order — the exact
          // left-to-right association linkUsageFullAt uses, so the
          // verdict is bit-identical to the serial probe.
          runPlanned(
              farmShards, farmGroups.size(),
              [&](std::size_t shard, std::size_t begin, std::size_t end) {
                std::vector<double>& rs = shardGather[shard];
                for (std::size_t idx = begin; idx < end; ++idx) {
                  const std::uint32_t gi = farmGroups[idx];
                  farmUsage[gi] = groupUsageAt(groups[gi], lv, rs);
                }
              });
          for (const std::uint32_t j : activeLinks) {
            double u = 0.0;
            for (std::size_t gi = groupBegin[j]; gi < groupBegin[j + 1];
                 ++gi) {
              u += farmUsage[gi];
            }
            if (u > capacity[j] + bisectSlack[j]) return false;
          }
          return true;
        }
        std::atomic<bool> infeasible{false};
        runPlanned(
            feasibilityShards, activeLinks.size(),
            [&](std::size_t shard, std::size_t begin, std::size_t end) {
              std::vector<double>& rs = shardGather[shard];
              for (std::size_t idx = begin; idx < end; ++idx) {
                if (infeasible.load(std::memory_order_relaxed)) return;
                const std::uint32_t j = activeLinks[idx];
                if (linkUsageFullAt(j, lv, rs) >
                    capacity[j] + bisectSlack[j]) {
                  infeasible.store(true, std::memory_order_relaxed);
                  return;
                }
              }
            });
        return !infeasible.load(std::memory_order_relaxed);
      };
      if (hi == 0.0 || feasibleAt(hi)) {
        delta = hi;
      } else {
        double lo = 0.0;
        double up = hi;
        std::size_t steps = 0;
        while (up - lo > options.tolerance &&
               steps++ < options.maxBisectionSteps) {
          const double mid = 0.5 * (lo + up);
          (feasibleAt(mid) ? lo : up) = mid;
        }
        delta = lo;
      }
    }

    level += delta;
    frozenThisRound = 0;

    // Saturation snapshot over active links, taken before any freezing so
    // it reflects the same state the reference evaluates. Shards collect
    // their candidates into per-shard buffers; concatenating those in
    // shard order reproduces the serial scan order exactly (shards are
    // contiguous ranges of the active list).
    satLinks.clear();
    std::size_t usedShards;
    if (linear) {
      // Flat sweep over the dense mirrors: three contiguous loads, one
      // fused compare, and a branchless compaction (store the candidate
      // unconditionally, advance the cursor by the comparison result).
      // No gather through activeLinks, no branch in the loop body — the
      // compiler can vectorize the whole scan.
      usedShards = shardedSweep(
          activeLinks.size(), options, [](std::size_t) { return 1.0; },
          [&](std::size_t shard, std::size_t begin, std::size_t end) {
            std::vector<std::uint32_t>& out = shardSat[shard];
            out.resize(end - begin);  // within bind()-reserved capacity
            const double lv = level;
            const double* cst = denseConst.data();
            const double* slp = denseSlope.data();
            const double* thr = denseThresh.data();
            const std::uint32_t* lk = activeLinks.data();
            std::uint32_t* dst = out.data();
            std::size_t count = 0;
            for (std::size_t idx = begin; idx < end; ++idx) {
              dst[count] = lk[idx];
              count += static_cast<std::size_t>(
                  cst[idx] + slp[idx] * lv >= thr[idx]);
            }
            out.resize(count);
          });
    } else {
      usedShards = shardedSweep(
          activeLinks.size(), options,
          [&](std::size_t idx) { return linkSweepCost(activeLinks[idx]); },
          [&](std::size_t shard, std::size_t begin, std::size_t end) {
            std::vector<double>& rs = shardGather[shard];
            std::vector<std::uint32_t>& out = shardSat[shard];
            out.clear();
            for (std::size_t idx = begin; idx < end; ++idx) {
              const std::uint32_t j = activeLinks[idx];
              if (linkUsageFullAt(j, level, rs) >= satThreshold[j]) {
                out.push_back(j);
              }
            }
          });
    }
    for (std::size_t s = 0; s < usedShards; ++s) {
      satLinks.insert(satLinks.end(), shardSat[s].begin(), shardSat[s].end());
    }

    // Receivers within saturation slack of sigma freeze at sigma (takes
    // precedence over link freezing, like the reference).
    while (sigmaSlackPtr < sigmaSlackOrder.size()) {
      const std::uint32_t f = sigmaSlackOrder[sigmaSlackPtr];
      if (frozen[f]) {
        ++sigmaSlackPtr;
        continue;
      }
      if (sigmaSlackLevel[f] <= level) {
        freeze(f, sigma[f]);
        ++sigmaSlackPtr;
        continue;
      }
      break;
    }

    // Every active receiver crossing a saturated link freezes at the
    // current level.
    for (const std::uint32_t j : satLinks) {
      for (std::size_t s = adjBegin[j]; s < adjBegin[j + 1]; ++s) {
        const std::uint32_t f = adj[s];
        if (!frozen[f]) freeze(f, level * weight[f]);
      }
    }

    // Guard against stalls from a badly-conditioned custom v_i: force the
    // receivers on the most-utilized active link to freeze. (Scans links
    // in ascending id order to match the reference's tie-breaking.)
    if (frozenThisRound == 0) {
      double worst = -kInf;
      std::uint32_t worstLink = 0;
      for (std::uint32_t j = 0; j < nLinks; ++j) {
        if (linkActive[j] == 0) continue;
        const double headroom =
            capacity[j] - linkUsageFullAt(j, level, gather);
        if (-headroom > worst) {
          worst = -headroom;
          worstLink = j;
        }
      }
      for (std::size_t s = adjBegin[worstLink];
           s < adjBegin[worstLink + 1]; ++s) {
        const std::uint32_t f = adj[s];
        if (!frozen[f]) freeze(f, level * weight[f]);
      }
      if (frozenThisRound == 0) {
        throw NumericError("solveMaxMinFair: no receiver could be frozen");
      }
    }

    // Step 7: a single-rate session freezes as a unit.
    for (const std::uint32_t sess : pendingSingle) {
      const std::size_t base = net->receiverOffset(sess);
      const std::size_t count = net->session(sess).receivers.size();
      for (std::size_t k = 0; k < count; ++k) {
        const auto f = static_cast<std::uint32_t>(base + k);
        if (!frozen[f]) freeze(f, level * weight[f]);
      }
    }
    pendingSingle.clear();
  }

  const auto refs = net->receiverRefs();
  for (std::size_t f = 0; f < nReceivers; ++f) {
    out.allocation.setRate(refs[f], rate[f]);
  }
  if (withUsage) writeUsage();
  return out;
}

MaxMinSolver::MaxMinSolver(MaxMinOptions options)
    : options_(options), engine_(std::make_unique<Engine>()) {
  MCFAIR_REQUIRE(options_.tolerance > 0.0, "tolerance must be positive");
  const std::size_t resolved =
      options_.threads < 0
          ? util::ThreadPool::threadCountFromEnv("MCFAIR_THREADS")
          : std::min<std::size_t>(
                static_cast<std::size_t>(options_.threads), 256);
  engine_->threads = resolved;
  // The pool itself is spawned lazily by bind() (first network that can
  // shard) and then lives for the solver's lifetime; per-solve submits
  // are allocation-free.
}

MaxMinSolver::~MaxMinSolver() = default;
MaxMinSolver::MaxMinSolver(MaxMinSolver&&) noexcept = default;
MaxMinSolver& MaxMinSolver::operator=(MaxMinSolver&&) noexcept = default;

void MaxMinSolver::bind(const net::Network& net) {
  engine_->bind(net, options_);
}

bool MaxMinSolver::bound() const noexcept { return engine_->net != nullptr; }

std::size_t MaxMinSolver::threadCount() const noexcept {
  return engine_->threads;
}

namespace {

// MCFAIR_VALIDATE harness: re-solve with the independent reference
// oracle and require the incremental rates to agree within the parity
// tolerance (the same bound the randomized parity suite enforces).
void validateAgainstReference(const net::Network& net,
                              const MaxMinResult& got,
                              const MaxMinOptions& options) {
  // The oracle rebuilds its link views every round — O(links x
  // receivers) per round. Cap the cross-check to instances where that
  // stays affordable, so MCFAIR_VALIDATE=1 CI sweeps do not turn the
  // large stress tests into hour-long runs.
  constexpr std::size_t kMaxValidateCells = std::size_t{1} << 16;
  if (net.receiverCount() * net.linkCount() > kMaxValidateCells) return;
  MaxMinOptions refOptions = options;
  refOptions.validate.enabled = 0;  // the oracle is not re-validated
  const MaxMinResult ref = solveMaxMinFairReference(net, refOptions);
  if (got.rounds != ref.rounds) {
    throw NumericError(
        "MCFAIR_VALIDATE: incremental solver took " +
        std::to_string(got.rounds) + " rounds, reference took " +
        std::to_string(ref.rounds));
  }
  for (const auto r : net.receiverRefs()) {
    const double a = got.allocation.rate(r);
    const double b = ref.allocation.rate(r);
    const double tol = 1e-6 * std::max(1.0, std::abs(b));
    if (!(std::abs(a - b) <= tol)) {
      throw NumericError(
          "MCFAIR_VALIDATE: incremental max-min rate for receiver (" +
          std::to_string(r.session) + "," + std::to_string(r.receiver) +
          ") is " + std::to_string(a) + ", reference oracle says " +
          std::to_string(b));
    }
  }
}

}  // namespace

const MaxMinResult& MaxMinSolver::solve() {
  const MaxMinResult& r = engine_->solve(options_, /*withUsage=*/true);
  if (options_.validate.resolve() && options_.validate.solverOptimality) {
    validateAgainstReference(*engine_->net, r, options_);
  }
  return r;
}

const MaxMinResult& MaxMinSolver::solve(const net::Network& net) {
  bind(net);
  return solve();
}

const Allocation& MaxMinSolver::solveAllocation() {
  const MaxMinResult& r = engine_->solve(options_, /*withUsage=*/false);
  if (options_.validate.resolve() && options_.validate.solverOptimality) {
    validateAgainstReference(*engine_->net, r, options_);
  }
  return r.allocation;
}

const Allocation& MaxMinSolver::solveAllocation(const net::Network& net) {
  bind(net);
  return solveAllocation();
}

MaxMinResult MaxMinSolver::takeResult() {
  MCFAIR_REQUIRE(engine_->result.has_value(),
                 "MaxMinSolver::takeResult before any solve");
  MaxMinResult out = std::move(*engine_->result);
  // The workspace no longer owns a result: force a full rebind so the
  // next solve re-creates it.
  engine_->result.reset();
  engine_->boundIdentity = 0;
  engine_->boundStructure = 0;
  return out;
}

namespace {

// One engine per thread amortizes workspace building across the one-shot
// calls that dominate the tests and what-if sweeps. A user-provided v_i
// could re-enter (it is virtual); fall back to a fresh solver then. The
// cache is also skipped for networks whose workspace would be large (the
// dense sessions x links usage matrix dominates), so a long-lived thread
// never silently retains more than a few MB after one big solve.
// The callback receives the solver plus whether it is a transient
// instance (discarded on return) — transient callers may move internals
// out instead of copying.
template <typename Fn>
auto withThreadLocalSolver(const net::Network& net,
                           const MaxMinOptions& options, Fn&& fn) {
  thread_local MaxMinSolver solver;
  thread_local bool busy = false;
  constexpr std::size_t kMaxCachedUsageCells = 1u << 18;  // 2 MB of rates
  const MaxMinOptions& cached = solver.options();
  if (busy || net.sessionCount() * net.linkCount() > kMaxCachedUsageCells ||
      options.tolerance != cached.tolerance ||
      options.saturationSlack != cached.saturationSlack ||
      options.maxBisectionSteps != cached.maxBisectionSteps ||
      options.threads != cached.threads ||
      options.parallelGrain != cached.parallelGrain ||
      options.validate.resolve() != cached.validate.resolve() ||
      options.validate.solverOptimality !=
          cached.validate.solverOptimality) {
    MaxMinSolver fresh(options);
    return fn(fresh, /*transient=*/true);
  }
  busy = true;
  try {
    auto result = fn(solver, /*transient=*/false);
    busy = false;
    return result;
  } catch (...) {
    busy = false;
    throw;
  }
}

}  // namespace

MaxMinResult solveMaxMinFair(const net::Network& net,
                             const MaxMinOptions& options) {
  MCFAIR_REQUIRE(options.tolerance > 0.0, "tolerance must be positive");
  return withThreadLocalSolver(
      net, options, [&](MaxMinSolver& s, bool transient) -> MaxMinResult {
        const MaxMinResult& r = s.solve(net);
        if (transient) return s.takeResult();  // move, don't copy
        return r;
      });
}

Allocation maxMinFairAllocation(const net::Network& net,
                                const MaxMinOptions& options) {
  MCFAIR_REQUIRE(options.tolerance > 0.0, "tolerance must be positive");
  return withThreadLocalSolver(
      net, options, [&](MaxMinSolver& s, bool transient) -> Allocation {
        const Allocation& a = s.solveAllocation(net);
        if (transient) return std::move(s.takeResult().allocation);
        return a;
      });
}

}  // namespace mcfair::fairness
