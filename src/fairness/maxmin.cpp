#include "fairness/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "util/error.hpp"

namespace mcfair::fairness {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-round view of one link: the frozen rates per session plus the number
// of active receivers per session, enough to evaluate u_j(level) cheaply.
struct LinkView {
  struct SessionGroup {
    std::size_t session;
    std::vector<double> frozenRates;
    /// Weights of the group's active receivers: each contributes rate
    /// weight * level while filling.
    std::vector<double> activeWeights;
  };
  std::vector<SessionGroup> groups;
  double capacity = 0.0;
  bool hasActive = false;
};

// Returns the slope s such that u_{i,j} = s * top whenever `top` is at
// least every other rate in the set, or nullopt when v_i is not of that
// form. Recognizes the two rate-linear functions shipped with the library;
// user-defined functions fall back to bisection.
std::optional<double> topRateSlope(const net::LinkRateFunction& fn,
                                   std::size_t receiversOnLink) {
  if (dynamic_cast<const net::EfficientMax*>(&fn) != nullptr) return 1.0;
  if (const auto* cf = dynamic_cast<const net::ConstantFactor*>(&fn)) {
    return receiversOnLink >= 2 ? cf->factor() : 1.0;
  }
  return std::nullopt;
}

double linkUsageAt(const net::Network& net, const LinkView& view,
                   double level) {
  double u = 0.0;
  std::vector<double> rates;
  for (const auto& g : view.groups) {
    rates.assign(g.frozenRates.begin(), g.frozenRates.end());
    for (double w : g.activeWeights) rates.push_back(w * level);
    u += net.session(g.session).linkRateFn->linkRate(rates);
  }
  return u;
}

}  // namespace

MaxMinResult solveMaxMinFair(const net::Network& net,
                             const MaxMinOptions& options) {
  MCFAIR_REQUIRE(options.tolerance > 0.0, "tolerance must be positive");
  MaxMinResult result{Allocation(net), LinkUsage{}, 0};
  if (net.receiverCount() == 0 || net.linkCount() == 0) {
    result.usage = computeLinkUsage(net, result.allocation);
    return result;
  }

  const auto receivers = net.allReceivers();
  std::vector<bool> frozen(receivers.size(), false);
  // Flat receiver index: offsets[i] + k for receiver r_{i,k}.
  std::vector<std::size_t> offsets(net.sessionCount() + 1, 0);
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    offsets[i + 1] = offsets[i] + net.session(i).receivers.size();
  }
  auto flat = [&](net::ReceiverRef ref) {
    return offsets[ref.session] + ref.receiver;
  };
  auto weightOf = [&](net::ReceiverRef ref) {
    return net.session(ref.session).receivers[ref.receiver].weight;
  };
  // Weighted max-min: each active receiver's rate is weight * level, so
  // the filling maximizes min(rate/weight) lexicographically. With unit
  // weights this is the paper's Appendix A algorithm verbatim.
  bool unitWeights = true;
  for (const auto& ref : receivers) {
    if (weightOf(ref) != 1.0) {
      unitWeights = false;
      break;
    }
  }

  double level = 0.0;
  const std::size_t maxRounds = net.receiverCount() + 2;

  while (true) {
    // Collect active receivers; freeze any already at sigma.
    std::vector<net::ReceiverRef> active;
    for (const auto& ref : receivers) {
      if (frozen[flat(ref)]) continue;
      const double sigma = net.session(ref.session).maxRate;
      if (level * weightOf(ref) >= sigma) {  // exact: can reach, not pass
        frozen[flat(ref)] = true;
        result.allocation.setRate(ref, sigma);
        continue;
      }
      active.push_back(ref);
    }
    if (active.empty()) break;
    if (++result.rounds > maxRounds) {
      throw NumericError(
          "solveMaxMinFair: filling failed to terminate; check that custom "
          "link-rate functions are monotone with v(X) >= max(X)");
    }

    // Build per-link views restricted to links with at least one receiver.
    std::vector<LinkView> views(net.linkCount());
    bool allLinear = true;
    for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
      const graph::LinkId l{j};
      const auto& refs = net.receiversOnLink(l);
      if (refs.empty()) continue;
      LinkView& view = views[j];
      view.capacity = net.capacity(l);
      std::size_t pos = 0;
      while (pos < refs.size()) {
        LinkView::SessionGroup g;
        g.session = refs[pos].session;
        std::size_t total = 0;
        while (pos < refs.size() && refs[pos].session == g.session) {
          if (frozen[flat(refs[pos])]) {
            g.frozenRates.push_back(result.allocation.rate(refs[pos]));
          } else {
            g.activeWeights.push_back(weightOf(refs[pos]));
          }
          ++total;
          ++pos;
        }
        if (!g.activeWeights.empty()) {
          view.hasActive = true;
          if (!unitWeights ||
              !topRateSlope(*net.session(g.session).linkRateFn, total)) {
            allLinear = false;
          }
        }
        view.groups.push_back(std::move(g));
      }
    }

    // Upper bound on this round's increment: sigma caps and raw capacity
    // (u_j >= w * level for a crossing active receiver, so the level
    // cannot exceed any crossed capacity divided by the weight).
    double hi = kInf;
    for (const auto& ref : active) {
      const double w = weightOf(ref);
      hi = std::min(hi, net.session(ref.session).maxRate / w - level);
      for (graph::LinkId l :
           net.session(ref.session).receivers[ref.receiver].dataPath) {
        hi = std::min(hi, net.capacity(l) / w - level);
      }
    }
    hi = std::max(hi, 0.0);

    // The largest feasible increment.
    double delta;
    if (allLinear) {
      delta = hi;
      for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
        const LinkView& view = views[j];
        if (!view.hasActive) continue;
        // u_j(level+d) = constPart + slopeSum * (level+d).
        double constPart = 0.0;
        double slopeSum = 0.0;
        for (const auto& g : view.groups) {
          const auto& fn = *net.session(g.session).linkRateFn;
          const std::size_t total =
              g.frozenRates.size() + g.activeWeights.size();
          if (!g.activeWeights.empty()) {
            // Unit weights on this path: active receivers carry the top
            // rate of the session on this link (frozen rates froze at
            // lower levels).
            slopeSum += *topRateSlope(fn, total);
          } else {
            constPart += fn.linkRate(g.frozenRates);
          }
        }
        if (slopeSum > 0.0) {
          delta = std::min(delta,
                           (view.capacity - constPart) / slopeSum - level);
        }
      }
      delta = std::max(delta, 0.0);
    } else {
      auto feasibleAt = [&](double d) {
        for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
          const LinkView& view = views[j];
          if (!view.hasActive) continue;
          const double slack = 1e-12 * std::max(1.0, view.capacity);
          if (linkUsageAt(net, view, level + d) > view.capacity + slack) {
            return false;
          }
        }
        return true;
      };
      if (hi == 0.0 || feasibleAt(hi)) {
        delta = hi;
      } else {
        double lo = 0.0;
        double up = hi;
        std::size_t steps = 0;
        while (up - lo > options.tolerance &&
               steps++ < options.maxBisectionSteps) {
          const double mid = 0.5 * (lo + up);
          (feasibleAt(mid) ? lo : up) = mid;
        }
        delta = lo;
      }
    }

    level += delta;

    // Freeze: receivers at sigma, and all active receivers crossing a
    // saturated link.
    std::size_t frozenThisRound = 0;
    auto freezeAt = [&](net::ReceiverRef ref, double rate) {
      if (frozen[flat(ref)]) return;
      frozen[flat(ref)] = true;
      result.allocation.setRate(ref, rate);
      ++frozenThisRound;
    };

    std::vector<bool> saturated(net.linkCount(), false);
    for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
      const LinkView& view = views[j];
      if (!view.hasActive) continue;
      const double slack =
          options.saturationSlack * std::max(1.0, view.capacity);
      saturated[j] = linkUsageAt(net, view, level) >= view.capacity - slack;
    }
    for (const auto& ref : active) {
      const auto& sess = net.session(ref.session);
      const double w = weightOf(ref);
      const double sigmaSlack =
          options.saturationSlack * std::max(1.0, std::isinf(sess.maxRate)
                                                      ? 1.0
                                                      : sess.maxRate);
      if (!std::isinf(sess.maxRate) &&
          level * w >= sess.maxRate - sigmaSlack) {
        freezeAt(ref, sess.maxRate);
        continue;
      }
      for (graph::LinkId l : sess.receivers[ref.receiver].dataPath) {
        if (saturated[l.value]) {
          freezeAt(ref, level * w);
          break;
        }
      }
    }

    // Guard against stalls from a badly-conditioned custom v_i: force the
    // receivers on the most-utilized active link to freeze.
    if (frozenThisRound == 0) {
      double worst = -kInf;
      std::uint32_t worstLink = 0;
      for (std::uint32_t j = 0; j < net.linkCount(); ++j) {
        if (!views[j].hasActive) continue;
        const double headroom =
            views[j].capacity - linkUsageAt(net, views[j], level);
        if (-headroom > worst) {
          worst = -headroom;
          worstLink = j;
        }
      }
      for (const auto& ref : active) {
        if (net.onLink(ref, graph::LinkId{worstLink})) {
          freezeAt(ref, level * weightOf(ref));
        }
      }
      if (frozenThisRound == 0) {
        throw NumericError("solveMaxMinFair: no receiver could be frozen");
      }
    }

    // Step 7: a single-rate session freezes as a unit.
    for (const auto& ref : active) {
      if (frozen[flat(ref)]) continue;
      const auto& sess = net.session(ref.session);
      if (sess.type != net::SessionType::kSingleRate) continue;
      bool anyFrozen = false;
      for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
        if (frozen[offsets[ref.session] + k]) {
          anyFrozen = true;
          break;
        }
      }
      if (anyFrozen) freezeAt(ref, level * weightOf(ref));
    }

    // Active receivers that remain continue at `level` into the next
    // round; record their provisional rate so usage queries mid-run (and
    // the final write-out below) are consistent.
    for (const auto& ref : active) {
      if (!frozen[flat(ref)]) {
        result.allocation.setRate(ref, level * weightOf(ref));
      }
    }
  }

  result.usage = computeLinkUsage(net, result.allocation);
  return result;
}

Allocation maxMinFairAllocation(const net::Network& net,
                                const MaxMinOptions& options) {
  return solveMaxMinFair(net, options).allocation;
}

}  // namespace mcfair::fairness
