#include "fairness/sampled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "net/link_rate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mcfair::fairness {

namespace {

constexpr double kErrorFloor = 1e-12;
constexpr std::size_t kUnsampled = std::numeric_limits<std::size_t>::max();

double resolveFraction(double requested) {
  if (requested < 0.0) {
    const double env = util::envDouble("MCFAIR_SAMPLE_FRAC", 0.25);
    return (env > 0.0 && env <= 1.0) ? env : 0.25;
  }
  MCFAIR_REQUIRE(requested > 0.0 && requested <= 1.0,
                 "SampledOptions::sampleFraction must be in (0, 1]");
  return requested;
}

// The initial-fill slope a receiver group (the receivers of one session
// crossing one link) contributes to the link's accumulator when every
// member is active at level lambda: u = slope * lambda. EfficientMax and
// any unknown (possibly nonlinear) family contribute max-weight; the
// rate-linear ConstantFactor applies its factor exactly when the subset
// shares the link between two or more receivers (see net/link_rate.hpp).
double groupSlope(double maxWeight, std::size_t members,
                  const net::ConstantFactor* cf) noexcept {
  if (members == 0) return 0.0;
  if (cf != nullptr && members >= 2) return cf->factor() * maxWeight;
  return maxWeight;
}

}  // namespace

SampledErrorReport compareAllocations(const net::Network& net,
                                      const Allocation& estimate,
                                      const MaxMinResult& exact) {
  SampledErrorReport report;
  report.totalReceivers = net.receiverCount();

  // Normalized fair-rate error: |estimate - exact| relative to the mean
  // exact rate, so sessions whose fair share happens to be tiny do not
  // dominate via near-zero denominators.
  double rateSum = 0.0;
  for (const net::ReceiverRef ref : net.receiverRefs()) {
    rateSum += exact.allocation.rate(ref);
  }
  const std::size_t n = net.receiverCount();
  const double scale =
      n == 0 ? 0.0 : rateSum / static_cast<double>(n);
  const double denom = std::max(scale, kErrorFloor);

  double errSum = 0.0;
  for (const net::ReceiverRef ref : net.receiverRefs()) {
    const double e =
        std::abs(estimate.rate(ref) - exact.allocation.rate(ref)) / denom;
    errSum += e;
    report.maxReceiverError = std::max(report.maxReceiverError, e);
  }
  report.meanReceiverError = n == 0 ? 0.0 : errSum / static_cast<double>(n);

  // Max-over-links relative usage error against the exact result's usage.
  const LinkUsage estUsage = computeLinkUsage(net, estimate);
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    const graph::LinkId link{static_cast<std::uint32_t>(j)};
    if (net.receiversOnLink(link).empty()) continue;
    const double e = std::abs(estUsage.linkRate[j] - exact.usage.linkRate[j]) /
                     std::max(net.capacity(link), kErrorFloor);
    report.maxLinkError = std::max(report.maxLinkError, e);
  }
  return report;
}

struct SampledSolver::Impl {
  double fraction = 0.25;
  std::size_t minPerLink = 1;

  const net::Network* source = nullptr;
  std::uint64_t boundIdentity = 0;
  std::uint64_t boundStructure = 0;
  bool bound = false;

  net::Network sampledNet;
  MaxMinSolver inner;
  const MaxMinResult* lastResult = nullptr;

  // Flat source-receiver index -> sampled? / index within the sampled
  // session (kUnsampled when out of sample).
  std::vector<char> sampledFlat;
  std::vector<std::size_t> sampledIndex;
  std::size_t sampledCount = 0;

  // Per source link: s_j / S_j, the sampled-over-full slope ratio.
  // Structure-plus-seed-only, so a capacity refresh keeps it cached.
  std::vector<double> scale;

  std::optional<Allocation> estimate;
  std::vector<double> linkLevel;  // scratch of estimateAllocation()

  explicit Impl(const MaxMinOptions& solverOptions) : inner(solverOptions) {}

  void drawSample(const net::Network& net, std::uint64_t seed);
  void buildSampledNetwork(const net::Network& net);
  void refreshCapacities(const net::Network& net);
};

// Selects the sample from structure + seed alone (never from capacities),
// so a capacity-only rebind provably keeps the same receivers and a
// refreshed binding matches a fresh one bitwise.
void SampledSolver::Impl::drawSample(const net::Network& net,
                                     std::uint64_t seed) {
  const std::size_t n = net.receiverCount();
  std::vector<double> priority(n);
  util::Rng rng(seed);
  for (std::size_t f = 0; f < n; ++f) priority[f] = rng.uniform01();

  sampledFlat.assign(n, 0);
  for (std::size_t f = 0; f < n; ++f) {
    if (priority[f] < fraction) sampledFlat[f] = 1;
  }

  const auto better = [&](std::size_t a, std::size_t b) {
    return priority[a] < priority[b] ||
           (priority[a] == priority[b] && a < b);
  };

  // Repair pass 1: every session keeps at least one sampled receiver
  // (an empty session would be unrepresentable in the sub-network).
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    const std::size_t base = net.receiverOffset(i);
    const std::size_t count = net.session(i).receivers.size();
    std::size_t best = kUnsampled;
    bool any = false;
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t f = base + k;
      if (sampledFlat[f] != 0) {
        any = true;
        break;
      }
      if (best == kUnsampled || better(f, best)) best = f;
    }
    if (!any) sampledFlat[best] = 1;
  }

  // Repair pass 2: every *shared* link (two or more crossing receivers —
  // the contention constraints) keeps its stratification floor of
  // min(minPerLink, |R_j|) witnesses, filled lowest-priority-first, so no
  // constraint — in particular no scale-free hub bottleneck — drops out.
  // Single-receiver links (private tails) are exempt: forcing their lone
  // receiver in would make every tailed topology sample at 100%, and the
  // expansion clamps an unsampled receiver against a solo link's exact
  // capacity anyway (better information than any witness).
  std::vector<std::size_t> candidates;
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    const auto onLink =
        net.receiversOnLink(graph::LinkId{static_cast<std::uint32_t>(j)});
    if (onLink.size() < 2) continue;
    const std::size_t need = std::min(minPerLink, onLink.size());
    std::size_t have = 0;
    candidates.clear();
    for (const net::ReceiverRef ref : onLink) {
      const std::size_t f = net.flatIndex(ref);
      if (sampledFlat[f] != 0) {
        ++have;
      } else {
        candidates.push_back(f);
      }
    }
    if (have >= need) continue;
    std::sort(candidates.begin(), candidates.end(), better);
    for (std::size_t c = 0; c < candidates.size() && have < need; ++c) {
      sampledFlat[candidates[c]] = 1;
      ++have;
    }
  }

  sampledIndex.assign(n, kUnsampled);
  sampledCount = 0;
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    const std::size_t base = net.receiverOffset(i);
    const std::size_t count = net.session(i).receivers.size();
    std::size_t next = 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (sampledFlat[base + k] != 0) {
        sampledIndex[base + k] = next++;
        ++sampledCount;
      }
    }
  }
}

void SampledSolver::Impl::buildSampledNetwork(const net::Network& net) {
  // Per-link slope ratio s_j / S_j under the solver's accumulator model.
  // Computed before scaling so a fully-sampled link divides two equal
  // doubles — exactly 1.0 — and the scaled capacity below is bitwise the
  // source capacity (the fraction-1.0 == exact guarantee rests on this).
  scale.assign(net.linkCount(), 1.0);
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    const auto onLink =
        net.receiversOnLink(graph::LinkId{static_cast<std::uint32_t>(j)});
    double full = 0.0;
    double sampled = 0.0;
    std::size_t idx = 0;
    while (idx < onLink.size()) {
      const std::size_t i = onLink[idx].session;
      const net::Session& sess = net.session(i);
      double fullMax = 0.0, sampMax = 0.0;
      std::size_t fullCnt = 0, sampCnt = 0;
      for (; idx < onLink.size() && onLink[idx].session == i; ++idx) {
        const double w = sess.receivers[onLink[idx].receiver].weight;
        fullMax = std::max(fullMax, w);
        ++fullCnt;
        if (sampledFlat[net.flatIndex(onLink[idx])] != 0) {
          sampMax = std::max(sampMax, w);
          ++sampCnt;
        }
      }
      const auto* cf =
          dynamic_cast<const net::ConstantFactor*>(sess.linkRateFn.get());
      full += groupSlope(fullMax, fullCnt, cf);
      sampled += groupSlope(sampMax, sampCnt, cf);
    }
    scale[j] = full > 0.0 ? sampled / full : 1.0;
  }

  net::Network sub;
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    // addLink rejects non-positive capacities but a faulted source link
    // may already sit at 0; route every value through setCapacity, whose
    // contract allows dead links.
    const graph::LinkId link{static_cast<std::uint32_t>(j)};
    sub.addLink(1.0);
    sub.setCapacity(link, net.capacity(link) * scale[j]);
  }
  for (std::size_t i = 0; i < net.sessionCount(); ++i) {
    const net::Session& sess = net.session(i);
    net::Session picked;
    picked.type = sess.type;
    picked.maxRate = sess.maxRate;
    picked.linkRateFn = sess.linkRateFn;
    picked.name = sess.name;
    const std::size_t base = net.receiverOffset(i);
    for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
      if (sampledFlat[base + k] != 0) picked.receivers.push_back(sess.receivers[k]);
    }
    sub.addSession(std::move(picked));
  }
  sampledNet = std::move(sub);
}

void SampledSolver::Impl::refreshCapacities(const net::Network& net) {
  // The sample and the slope ratios depend only on structure + seed, so a
  // capacity-only change re-scales in place. setCapacity preserves the
  // sub-network's structureIdentity, which keeps the inner solver on its
  // O(links) allocation-free refresh tier.
  for (std::size_t j = 0; j < net.linkCount(); ++j) {
    const graph::LinkId link{static_cast<std::uint32_t>(j)};
    sampledNet.setCapacity(link, net.capacity(link) * scale[j]);
  }
}

SampledSolver::SampledSolver(SampledOptions options)
    : options_(std::move(options)),
      impl_(std::make_unique<Impl>(options_.solver)) {
  impl_->fraction = resolveFraction(options_.sampleFraction);
  impl_->minPerLink = std::max<std::size_t>(options_.minPerLink, 1);
}

SampledSolver::~SampledSolver() = default;
SampledSolver::SampledSolver(SampledSolver&&) noexcept = default;
SampledSolver& SampledSolver::operator=(SampledSolver&&) noexcept = default;

void SampledSolver::bind(const net::Network& net) {
  Impl& im = *impl_;
  if (im.bound && net.identity() == im.boundIdentity) {
    im.source = &net;  // same structure and capacities; nothing to do
    return;
  }
  if (im.bound && net.structureIdentity() == im.boundStructure) {
    im.refreshCapacities(net);
  } else {
    im.drawSample(net, options_.seed);
    im.buildSampledNetwork(net);
    im.estimate.emplace(net);
  }
  im.source = &net;
  im.boundIdentity = net.identity();
  im.boundStructure = net.structureIdentity();
  im.bound = true;
  im.lastResult = nullptr;
}

bool SampledSolver::bound() const noexcept { return impl_->bound; }

const MaxMinResult& SampledSolver::solve() {
  Impl& im = *impl_;
  MCFAIR_REQUIRE(im.bound, "SampledSolver::solve before bind");
  im.lastResult = &im.inner.solve(im.sampledNet);
  return *im.lastResult;
}

const MaxMinResult& SampledSolver::solve(const net::Network& net) {
  bind(net);
  return solve();
}

const Allocation& SampledSolver::estimateAllocation() {
  Impl& im = *impl_;
  MCFAIR_REQUIRE(im.lastResult != nullptr,
                 "SampledSolver::estimateAllocation before solve");
  const net::Network& net = *im.source;
  const Allocation& solved = im.lastResult->allocation;

  // Observed fair level per link: the max rate/weight among the sampled
  // receivers crossing it; -1 marks an unwitnessed link. The shared-link
  // stratification floor guarantees an unwitnessed link on a receiver's
  // data-path has that receiver as its only crosser, so its constraint is
  // exactly rate <= capacity (every shipped v_i is the identity on a
  // one-element rate set) and the expansion clamps against it directly.
  im.linkLevel.assign(net.linkCount(), -1.0);
  for (const net::ReceiverRef ref : im.sampledNet.receiverRefs()) {
    const net::Receiver& r =
        im.sampledNet.session(ref.session).receivers[ref.receiver];
    const double level = solved.rate(ref) / r.weight;
    for (const graph::LinkId l : r.dataPath) {
      im.linkLevel[l.value] = std::max(im.linkLevel[l.value], level);
    }
  }

  Allocation& out = *im.estimate;
  for (const net::ReceiverRef ref : net.receiverRefs()) {
    const std::size_t f = net.flatIndex(ref);
    if (im.sampledFlat[f] != 0) {
      out.setRate(ref, solved.rate({ref.session, im.sampledIndex[f]}));
      continue;
    }
    const net::Session& sess = net.session(ref.session);
    const net::Receiver& r = sess.receivers[ref.receiver];
    double level = std::numeric_limits<double>::infinity();
    double soloCap = std::numeric_limits<double>::infinity();
    for (const graph::LinkId l : r.dataPath) {
      if (im.linkLevel[l.value] >= 0.0) {
        level = std::min(level, im.linkLevel[l.value]);
      } else {
        soloCap = std::min(soloCap, net.capacity(l));
      }
    }
    out.setRate(ref, std::min({sess.maxRate, r.weight * level, soloCap}));
  }
  return out;
}

SampledErrorReport SampledSolver::errorReport(const MaxMinResult& exact) {
  const Allocation& estimate = estimateAllocation();
  SampledErrorReport report =
      compareAllocations(*impl_->source, estimate, exact);
  report.sampledReceivers = impl_->sampledCount;
  return report;
}

const net::Network& SampledSolver::sampledNetwork() const {
  MCFAIR_REQUIRE(impl_->bound, "SampledSolver::sampledNetwork before bind");
  return impl_->sampledNet;
}

bool SampledSolver::sampled(net::ReceiverRef ref) const {
  MCFAIR_REQUIRE(impl_->bound, "SampledSolver::sampled before bind");
  return impl_->sampledFlat[impl_->source->flatIndex(ref)] != 0;
}

std::size_t SampledSolver::sampledReceiverCount() const noexcept {
  return impl_->sampledCount;
}

std::size_t SampledSolver::totalReceiverCount() const noexcept {
  return impl_->bound ? impl_->source->receiverCount() : 0;
}

double SampledSolver::sampleFraction() const noexcept {
  return impl_->fraction;
}

}  // namespace mcfair::fairness
