#include "fairness/verify.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mcfair::fairness {

namespace {

// Builds the most permissive feasible-candidate for raising `target` by
// `delta`: strictly higher-rated receivers release everything (their
// whole single-rate sessions if applicable), equal-or-lower ones keep
// their rates, and the target (plus single-rate siblings) takes the
// raise.
Allocation mostPermissiveRaise(const net::Network& net, const Allocation& a,
                               net::ReceiverRef target, double delta,
                               double tol) {
  const double pivot = a.rate(target);
  Allocation b(net);
  for (const auto ref : net.allReceivers()) {
    const double rate = a.rate(ref);
    b.setRate(ref, rate > pivot + tol ? 0.0 : rate);
  }
  const auto& sess = net.session(target.session);
  if (sess.type == net::SessionType::kSingleRate) {
    // Raising one receiver of a single-rate session raises them all
    // (their rates are equal to the pivot by feasibility).
    for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
      b.setRate({target.session, k}, pivot + delta);
    }
  } else {
    b.setRate(target, pivot + delta);
  }
  return b;
}

}  // namespace

std::vector<MaxMinViolation> findMaxMinViolations(
    const net::Network& net, const Allocation& a,
    const VerifyOptions& options) {
  MCFAIR_REQUIRE(options.delta > 0.0, "delta must be positive");
  std::vector<MaxMinViolation> out;

  const auto base = checkFeasible(net, a, options.tol);
  if (!base.feasible) {
    out.push_back(MaxMinViolation{
        net::ReceiverRef{0, 0},
        "allocation is not feasible: " + base.violations.front()});
    return out;
  }

  for (const auto ref : net.allReceivers()) {
    const auto& sess = net.session(ref.session);
    // A receiver pinned at sigma cannot be raised; Definition 1 is
    // satisfied for it by feasibility alone.
    if (!std::isinf(sess.maxRate) &&
        a.rate(ref) + options.delta > sess.maxRate + options.tol) {
      continue;
    }
    const Allocation candidate =
        mostPermissiveRaise(net, a, ref, options.delta, options.tol);
    if (isFeasible(net, candidate, options.tol)) {
      out.push_back(MaxMinViolation{
          ref,
          "rate can be raised by " + std::to_string(options.delta) +
              " without lowering any equal-or-lower-rated receiver"});
    }
  }
  return out;
}

bool isMaxMinFair(const net::Network& net, const Allocation& a,
                  const VerifyOptions& options) {
  return findMaxMinViolations(net, a, options).empty();
}

}  // namespace mcfair::fairness
