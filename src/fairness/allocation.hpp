// Receiver-rate allocations and derived link usage (Section 2).
//
// An Allocation assigns a rate a_{i,k} to every receiver of a Network.
// LinkUsage materializes the session link rates u_{i,j} = v_i({a_{i,k}})
// and link rates u_j = sum_i u_{i,j} induced by an allocation.
#pragma once

#include <span>
#include <vector>

#include "net/network.hpp"

namespace mcfair::fairness {

/// Rates a_{i,k}, indexed [session][receiver]. Shapes always match the
/// Network the allocation was created from. Storage is one flat
/// session-major array, so copying an allocation costs two heap blocks
/// regardless of session count.
class Allocation {
 public:
  /// All-zero allocation shaped like `net`.
  explicit Allocation(const net::Network& net);

  double rate(net::ReceiverRef ref) const;
  void setRate(net::ReceiverRef ref, double rate);

  /// Rates of session i in receiver order.
  std::span<const double> sessionRates(std::size_t i) const;

  /// All rates sorted ascending — the "ordered vector" of Definition 2.
  std::vector<double> orderedRates() const;

  std::size_t sessionCount() const noexcept { return offsets_.size() - 1; }

 private:
  std::size_t flatIndexChecked(net::ReceiverRef ref) const;

  std::vector<double> rates_;         // flat, session-major
  std::vector<std::size_t> offsets_;  // sessionCount() + 1 entries
};

/// u_{i,j} and u_j for an allocation.
struct LinkUsage {
  /// sessionLinkRate[i][j] = u_{i,j}; 0 when R_{i,j} is empty.
  std::vector<std::vector<double>> sessionLinkRate;
  /// linkRate[j] = u_j = sum_i u_{i,j}.
  std::vector<double> linkRate;
};

/// Computes u_{i,j} = v_i({a_{i,k} : r_{i,k} in R_{i,j}}) and u_j.
LinkUsage computeLinkUsage(const net::Network& net, const Allocation& a);

/// Same, writing into `out` and gathering rate sets into `scratch`. When
/// `out` and `scratch` retain capacity from a previous call on an
/// identically-shaped network, performs no heap allocation — the solver's
/// steady-state path relies on this.
void computeLinkUsageInto(const net::Network& net, const Allocation& a,
                          LinkUsage& out, std::vector<double>& scratch);

/// Reasons an allocation can be infeasible, for diagnostics.
struct FeasibilityReport {
  bool feasible = true;
  std::vector<std::string> violations;
};

/// Checks feasibility (Section 2): 0 <= a_{i,k} <= sigma_i, u_j <= c_j,
/// and all receivers of a single-rate session share one rate. `tol` is the
/// absolute slack allowed on each comparison.
FeasibilityReport checkFeasible(const net::Network& net, const Allocation& a,
                                double tol = 1e-9);

/// Convenience: checkFeasible(...).feasible.
bool isFeasible(const net::Network& net, const Allocation& a,
                double tol = 1e-9);

}  // namespace mcfair::fairness
