// Sampled approximate max-min fairness — admission-control estimation.
//
// At the ROADMAP's million-receiver scale nobody solves the max-min
// allocation exactly; production admission control estimates it from a
// *sample* of receivers (cf. the heyp-agents intradc Monte-Carlo study
// referenced in PAPERS.md/ROADMAP.md). SampledSolver implements that
// estimator against this library's exact incremental solver as oracle:
//
//  1. Per-link stratified receiver sample. Every receiver draws one
//     deterministic uniform priority from the seed and is included when
//     priority < sampleFraction; then a repair pass walks sessions and
//     links in id order and force-includes lowest-priority receivers
//     wherever a session — or a *shared* link (two or more crossing
//     receivers) — would otherwise fall below its floor of sampled
//     receivers (SampledOptions::minPerLink). Every contention
//     constraint therefore keeps at least one witness — the hub
//     bottlenecks of scale-free backbones (the Sreenivasan et al.
//     setting in PAPERS.md) can never silently drop out. Private
//     single-receiver links are exempt (forcing their lone receiver in
//     would defeat sampling on tailed topologies); the expansion clamps
//     against their exact capacity instead.
//  2. Horvitz-Thompson-style accumulator scaling. The sampled
//     sub-network keeps every link, but a link that lost receivers would
//     under-count its contention: with the solver's linear accumulator
//     model u_j(level) ~= S_j * level (S_j = the sum of per-session
//     group slopes the CSR accumulators hold at the start of a fill),
//     the sampled fill sees s_j <= S_j. Scaling the link capacity by the
//     inverse inclusion ratio, c'_j = c_j * (s_j / S_j), makes the
//     sampled constraint s_j * level <= c'_j equivalent to the
//     HT-expanded estimate (S_j / s_j) * s_j * level <= c_j, so
//     first-order saturation levels are unbiased. (Higher rounds — the
//     frozen-rate constant parts, nonlinear v_i — are where the sampling
//     error the docs/SWEEPS.md methodology quantifies comes from.)
//  3. Expansion. estimateAllocation() returns a full-network-shaped
//     allocation: sampled receivers carry their solved rates, an
//     unsampled receiver gets min(sigma_i, w_r * min over its witnessed
//     data-path links of the link's observed fair level, min over its
//     unwitnessed links of the raw capacity), where a link's observed
//     fair level is the max rate/weight among the sampled receivers
//     crossing it — exactly the per-link estimate an admission
//     controller would quote a joining receiver. (An unwitnessed link is
//     necessarily private to that receiver, so its raw capacity is its
//     exact constraint.)
//
// At sampleFraction 1.0 the sample is everything, every scale factor is
// exactly 1.0, and the estimate is bit-identical to the exact solver
// (tests/test_sampled_solver.cpp pins ==).
//
// The solver reuses MaxMinSolver's bind/refresh tiers: the sampled
// sub-network is built once per structure, and capacity-only changes of
// the source network (fault churn via net::Network::setCapacity) re-scale
// in place and ride the inner solver's O(links) capacity-refresh rebind —
// steady-state re-solves allocate nothing.
#pragma once

#include <cstdint>
#include <memory>

#include "fairness/maxmin.hpp"

namespace mcfair::fairness {

/// Knobs of the sampled estimator.
struct SampledOptions {
  /// Receiver inclusion probability in (0, 1]. The default -1 reads the
  /// MCFAIR_SAMPLE_FRAC environment variable (unset/invalid -> 0.25).
  double sampleFraction = -1.0;
  /// Seed of the deterministic sampling draw. Equal (network structure,
  /// seed, fraction) triples always select the same receivers.
  std::uint64_t seed = 1;
  /// Stratification floor: every *shared* link (>= 2 crossing
  /// receivers) keeps at least min(minPerLink, receivers-on-link)
  /// sampled witnesses, and every session keeps at least one sampled
  /// receiver. Private single-receiver links are exempt — their exact
  /// capacity clamps the expansion directly. 0 is promoted to 1: the
  /// sampled network must represent every contention constraint.
  std::size_t minPerLink = 1;
  /// Forwarded to the inner exact solver run on the sampled sub-network
  /// (tolerance, threads, validation — see MaxMinOptions).
  MaxMinOptions solver;
};

/// Error of a sampled estimate against the exact allocation. All errors
/// are exactly 0.0 at sampleFraction 1.0.
struct SampledErrorReport {
  /// Mean / max over all receivers of |estimate - exact| normalized by
  /// the mean exact rate (the "normalized fair-rate error": relative to
  /// the population's typical rate, so near-zero fair rates do not blow
  /// the ratio up).
  double meanReceiverError = 0.0;
  double maxReceiverError = 0.0;
  /// Max over populated links of |usage(estimate) - usage(exact)| / c_j
  /// — the worst relative capacity misprediction the estimate implies.
  double maxLinkError = 0.0;
  std::size_t sampledReceivers = 0;
  std::size_t totalReceivers = 0;
};

/// Compares a full-network-shaped estimate against the exact result.
/// `exact` must carry the usage of its allocation (MaxMinSolver::solve
/// materializes it).
SampledErrorReport compareAllocations(const net::Network& net,
                                      const Allocation& estimate,
                                      const MaxMinResult& exact);

/// The sampled approximate max-min solver. Same bind/solve discipline as
/// MaxMinSolver: the bound source network must outlive the binding and
/// stay unmutated between bind() and solve()/estimateAllocation().
class SampledSolver {
 public:
  explicit SampledSolver(SampledOptions options = {});
  ~SampledSolver();
  SampledSolver(SampledSolver&&) noexcept;
  SampledSolver& operator=(SampledSolver&&) noexcept;

  /// Draws the sample and builds the scaled sub-network. Tiered like
  /// MaxMinSolver::bind: an unchanged identity() is a no-op; an
  /// unchanged structureIdentity() (capacity-only changes, e.g. faults
  /// via Network::setCapacity) keeps the sample and re-scales the
  /// sub-network capacities in place — O(links), allocation-free, riding
  /// the inner solver's capacity-refresh rebind; anything else
  /// re-samples and rebuilds.
  void bind(const net::Network& net);

  bool bound() const noexcept;

  /// Solves the sampled sub-network. The result is shaped like the
  /// sample (sampled receivers only); owned by the solver, invalidated
  /// by the next bind()/solve().
  const MaxMinResult& solve();

  /// bind(net) + solve().
  const MaxMinResult& solve(const net::Network& net);

  /// Expands the last solve() into a full-network-shaped allocation
  /// (sampled receivers: solved rate; unsampled: the per-link
  /// fair-level estimate described above). Requires a prior solve();
  /// owned by the solver, invalidated by the next bind()/solve().
  const Allocation& estimateAllocation();

  /// estimateAllocation() compared against the exact result (which must
  /// stem from the same source network), with the sample counts filled
  /// in. Requires a prior solve().
  SampledErrorReport errorReport(const MaxMinResult& exact);

  /// The sampled sub-network of the current binding (every link, the
  /// sampled receivers, capacities scaled by s_j / S_j).
  const net::Network& sampledNetwork() const;

  /// True when receiver `ref` of the source network is in the sample.
  bool sampled(net::ReceiverRef ref) const;

  std::size_t sampledReceiverCount() const noexcept;
  std::size_t totalReceiverCount() const noexcept;

  /// The resolved inclusion probability (env applied).
  double sampleFraction() const noexcept;

  const SampledOptions& options() const noexcept { return options_; }

 private:
  struct Impl;
  SampledOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcfair::fairness
