#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95HalfWidth() const noexcept {
  if (n_ < 2) return 0.0;
  return tCritical95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double tCritical95(std::size_t df) noexcept {
  // Exact two-sided 0.975 quantiles for small df, then the normal limit.
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double quantile(std::vector<double> xs, double q) {
  MCFAIR_REQUIRE(!xs.empty(), "quantile of empty sample");
  MCFAIR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(xs.size()) - 1.0,
                       std::floor(q * static_cast<double>(xs.size()))));
  return xs[idx];
}

}  // namespace mcfair::util
