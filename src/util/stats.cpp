#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95HalfWidth() const noexcept {
  if (n_ < 2) return 0.0;
  return tCritical95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  MCFAIR_REQUIRE(q > 0.0 && q < 1.0, "P2Quantile order must be in (0,1)");
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  // Piecewise-parabolic (P²) height adjustment for marker i moved by d.
  return height_[i] +
         d / (pos_[i + 1] - pos_[i - 1]) *
             ((pos_[i] - pos_[i - 1] + d) * (height_[i + 1] - height_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              (pos_[i + 1] - pos_[i] - d) * (height_[i] - height_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::linear(int i, int d) const noexcept {
  return height_[i] + static_cast<double>(d) *
                          (height_[i + d] - height_[i]) /
                          (pos_[i + d] - pos_[i]);
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    // Warm-up: keep the first five observations sorted in height_.
    std::size_t i = count_++;
    while (i > 0 && height_[i - 1] > x) {
      height_[i] = height_[i - 1];
      --i;
    }
    height_[i] = x;
    if (count_ == 5) {
      for (int m = 0; m < 5; ++m) pos_[m] = m + 1;
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x < height_[1]) {
    k = 0;
  } else if (x < height_[2]) {
    k = 1;
  } else if (x < height_[3]) {
    k = 2;
  } else if (x <= height_[4]) {
    k = 3;
  } else {
    height_[4] = x;
    k = 3;
  }
  ++count_;
  for (int m = k + 1; m < 5; ++m) pos_[m] += 1.0;
  for (int m = 0; m < 5; ++m) desired_[m] += increment_[m];

  // Nudge the three middle markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const int sign = d >= 0.0 ? 1 : -1;
      double h = parabolic(i, sign);
      if (height_[i - 1] < h && h < height_[i + 1]) {
        height_[i] = h;
      } else {
        height_[i] = linear(i, sign);
      }
      pos_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank quantile over the sorted warm-up buffer (the
    // same convention as util::quantile).
    const auto idx = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(count_) - 1.0,
        std::floor(q_ * static_cast<double>(count_))));
    return height_[idx];
  }
  return height_[2];
}

double tCritical95(std::size_t df) noexcept {
  // Exact two-sided 0.975 quantiles for small df, then the normal limit.
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double quantile(std::vector<double> xs, double q) {
  MCFAIR_REQUIRE(!xs.empty(), "quantile of empty sample");
  MCFAIR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(xs.size()) - 1.0,
                       std::floor(q * static_cast<double>(xs.size()))));
  return xs[idx];
}

}  // namespace mcfair::util
