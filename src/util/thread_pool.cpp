#include "util/thread_pool.hpp"

#include <cstdlib>

namespace mcfair::util {

namespace {

// One iteration of polite busy-waiting: tell the core we are spinning so
// a hyper-threaded sibling (or the power governor) can make progress.
inline void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::size_t spinIterations)
    : spinIterations_(spinIterations) {
  if (workers <= 1) return;
  spawned_.reserve(workers - 1);
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    spawned_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  for (std::thread& t : spawned_) t.join();
}

void ThreadPool::forEachShard(std::size_t shardCount, ShardFnRef fn) {
  if (shardCount == 0) return;
  if (spawned_.empty() || shardCount == 1) {
    for (std::size_t s = 0; s < shardCount; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    shardCount_ = shardCount;
    nextShard_.store(0, std::memory_order_relaxed);
    pending_ = shardCount;
    firstError_ = nullptr;
    // Release: a worker whose spin observes the new generation must also
    // observe the job slot written above once it takes the mutex (the
    // mutex already guarantees that; the release pairs with the spin's
    // acquire for the wakeup decision itself).
    generation_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_all();

  // The calling thread is an executor too.
  std::size_t completed = 0;
  for (;;) {
    const std::size_t s = nextShard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= shardCount) break;
    runShard(fn, s);
    ++completed;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  pending_ -= completed;
  // Return only once every shard ran AND no worker still holds the job
  // (a worker that woke late must not touch nextShard_ after this call
  // returns — the callable and the next job's counter would be stale).
  done_.wait(lock, [this] { return pending_ == 0 && insideJob_ == 0; });
  job_ = nullptr;
  if (firstError_ != nullptr) {
    std::exception_ptr error = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::beginShards(std::size_t shardCount, ShardFnRef fn) {
  asyncJob_ = fn;
  asyncShards_ = shardCount;
  asyncActive_ = true;
  // Small or serial jobs are parked instead of published: finishShards
  // runs them inline, matching forEachShard's serial fast path (in
  // particular, exceptions propagate immediately and in shard order).
  asyncPublished_ = !(shardCount <= 1 || spawned_.empty());
  if (!asyncPublished_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &*asyncJob_;
    shardCount_ = shardCount;
    nextShard_.store(0, std::memory_order_relaxed);
    pending_ = shardCount;
    firstError_ = nullptr;
    generation_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_all();
}

void ThreadPool::finishShards() {
  if (!asyncActive_) return;
  asyncActive_ = false;
  if (!asyncPublished_) {
    const ShardFnRef fn = *asyncJob_;
    const std::size_t n = asyncShards_;
    for (std::size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  // Join the published job exactly like forEachShard's calling thread:
  // claim remaining shards, drain the barrier, rethrow the first error.
  const ShardFnRef& fn = *asyncJob_;
  std::size_t completed = 0;
  for (;;) {
    const std::size_t s = nextShard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= asyncShards_) break;
    runShard(fn, s);
    ++completed;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  pending_ -= completed;
  done_.wait(lock, [this] { return pending_ == 0 && insideJob_ == 0; });
  job_ = nullptr;
  if (firstError_ != nullptr) {
    std::exception_ptr error = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

// Executes one shard, converting a throw into the recorded first error
// (first in claim order wins deterministically enough for diagnostics;
// the serial path rethrows the genuinely first one). A throwing shard
// still counts as completed so the completion barrier drains; remaining
// shards are drained without running by fast-forwarding the claim
// counter, matching the serial semantics of stopping at the failure.
void ThreadPool::runShard(const ShardFnRef& fn, std::size_t shard) {
  try {
    fn(shard);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (firstError_ == nullptr) firstError_ = std::current_exception();
    // Claim every remaining shard: the fetch_add loops see an exhausted
    // counter and exit, and pending_ is drained below by the claimers'
    // completed counts plus this adjustment.
    const std::size_t already =
        nextShard_.exchange(shardCount_, std::memory_order_relaxed);
    if (already < shardCount_) pending_ -= shardCount_ - already;
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    // Spin-then-block: between back-to-back sweeps (the solver's filling
    // loop submits one per round) the next generation usually lands
    // within the spin budget, so the worker picks it up without paying
    // the condvar sleep/wake latency. The bound keeps an idle pool off
    // the CPU: after spinIterations_ polls the worker parks below, and
    // the mutex-guarded predicate re-checks everything the spin saw.
    for (std::size_t spin = 0; spin < spinIterations_; ++spin) {
      if (stopping_.load(std::memory_order_acquire) ||
          generation_.load(std::memory_order_acquire) != seenGeneration) {
        break;
      }
      cpuRelax();
    }
    const ShardFnRef* job = nullptr;
    std::size_t shardCount = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) !=
                   seenGeneration;
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      seenGeneration = generation_.load(std::memory_order_relaxed);
      // The job may already have drained if every shard was claimed
      // before this worker woke; pending_ == 0 keeps it out of the
      // claim loop entirely.
      if (job_ == nullptr || pending_ == 0) continue;
      job = job_;
      shardCount = shardCount_;
      ++insideJob_;
    }
    std::size_t completed = 0;
    for (;;) {
      const std::size_t s =
          nextShard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shardCount) break;
      runShard(*job, s);
      ++completed;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ -= completed;
      --insideJob_;
      if (pending_ == 0 && insideJob_ == 0) done_.notify_all();
    }
  }
}

std::size_t ThreadPool::threadCountFromEnv(const char* var,
                                           std::size_t fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0) return fallback;
  return value > 256 ? 256 : static_cast<std::size_t>(value);
}

}  // namespace mcfair::util
