// Streaming statistics and confidence intervals for experiment outputs.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace mcfair::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; used by the simulator to aggregate
/// per-replica redundancy measurements as in the paper's Figure 8 ("each
/// point plotted is the mean of 30 experiments").
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const noexcept;

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Half-width of the two-sided 95% confidence interval for the mean,
  /// using Student-t critical values (exact table for small n, normal
  /// approximation beyond). 0 when fewer than two observations.
  double ci95HalfWidth() const noexcept;

  /// Minimum / maximum observed; undefined when empty.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac,
/// CACM 1985): five markers track the target quantile in O(1) memory and
/// O(1) time per observation, with no retention of the sample.
///
/// The sweep fleet (sim::SweepDriver) aggregates thousands of runs per
/// grid cell through these: add() never allocates, so the steady-state
/// aggregation path is heap-free regardless of run count. Until five
/// observations have arrived the estimate is exact (sorted-sample
/// lookup); beyond that it is the classic piecewise-parabolic
/// approximation, whose error the docs/SWEEPS.md methodology page
/// quantifies. Fully deterministic: equal observation sequences produce
/// bit-equal estimates.
class P2Quantile {
 public:
  /// Tracks the q-quantile, q in (0, 1).
  explicit P2Quantile(double q = 0.5);

  /// Adds one observation. Never allocates.
  void add(double x) noexcept;

  /// Current estimate; 0 when empty, exact for fewer than 5 samples.
  double value() const noexcept;

  std::size_t count() const noexcept { return count_; }
  double order() const noexcept { return q_; }

 private:
  double parabolic(int i, double d) const noexcept;
  double linear(int i, int d) const noexcept;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> height_{};    // marker heights (sorted)
  std::array<double, 5> pos_{};       // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increment_{}; // desired-position increments
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
double tCritical95(std::size_t df) noexcept;

/// Arithmetic mean of a vector; 0 when empty.
double mean(const std::vector<double>& xs) noexcept;

/// Population-weighted quantile (nearest-rank); q in [0,1].
/// Requires non-empty input.
double quantile(std::vector<double> xs, double q);

}  // namespace mcfair::util
