// Streaming statistics and confidence intervals for experiment outputs.
#pragma once

#include <cstddef>
#include <vector>

namespace mcfair::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; used by the simulator to aggregate
/// per-replica redundancy measurements as in the paper's Figure 8 ("each
/// point plotted is the mean of 30 experiments").
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const noexcept;

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Half-width of the two-sided 95% confidence interval for the mean,
  /// using Student-t critical values (exact table for small n, normal
  /// approximation beyond). 0 when fewer than two observations.
  double ci95HalfWidth() const noexcept;

  /// Minimum / maximum observed; undefined when empty.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
double tCritical95(std::size_t df) noexcept;

/// Arithmetic mean of a vector; 0 when empty.
double mean(const std::vector<double>& xs) noexcept;

/// Population-weighted quantile (nearest-rank); q in [0,1].
/// Requires non-empty input.
double quantile(std::vector<double> xs, double q);

}  // namespace mcfair::util
