// Fixed-width text tables and CSV emission for benchmark/figure output.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// Table class renders the series both as an aligned console table (for the
// human) and as CSV (for replotting).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mcfair::util {

/// One table cell: text or number (numbers get consistent formatting).
using Cell = std::variant<std::string, double>;

/// A simple column-oriented table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Must have exactly as many cells as there are headers.
  void addRow(std::vector<Cell> row);

  /// Number of data rows.
  std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Sets the number of digits after the decimal point for numeric cells
  /// (default 4).
  void setPrecision(int digits) noexcept { precision_ = digits; }

  /// Renders as an aligned, pipe-separated console table.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180 style quoting for text cells).
  void printCsv(std::ostream& os) const;

 private:
  std::string format(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Convenience: prints `title`, the table, and (when `csv` is true, e.g. set
/// from the MCFAIR_CSV environment variable) the CSV form, to stdout.
void printTitled(const std::string& title, const Table& table,
                 bool csv = false);

/// True when the environment variable `name` is set to a non-empty,
/// non-"0" value. Used by bench binaries for output / workload knobs —
/// notably MCFAIR_CSV, which additionally prints every bench table as
/// CSV (see printTitled).
bool envFlag(const char* name) noexcept;

/// Integer environment knob with default; returns `fallback` when unset or
/// unparsable. Notably MCFAIR_RUNS, the seed count of the seed-averaged
/// bench tables (default 10). The full knob catalog is tabulated in the
/// top-level README.
long envInt(const char* name, long fallback) noexcept;

/// Floating-point environment knob with default; returns `fallback` when
/// unset or unparsable. Notably MCFAIR_SAMPLE_FRAC, the default receiver
/// inclusion probability of fairness::SampledSolver.
double envDouble(const char* name, double fallback) noexcept;

}  // namespace mcfair::util
