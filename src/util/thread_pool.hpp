// Fixed-size worker pool for sharded per-link sweeps.
//
// The pool is built once (spawning workerCount() - 1 threads; the caller
// of forEachShard acts as the remaining executor) and reused across many
// submissions: a submission publishes a borrowed callable plus a shard
// count, wakes the workers, and blocks until every shard has run. Shards
// are claimed through an atomic counter, so which executor runs which
// shard is nondeterministic — callers that need deterministic results
// must make each shard's work depend only on its shard index (fixed data
// ranges, per-shard scratch), which is exactly how fairness::MaxMinSolver
// uses it.
//
// The steady-state submit path performs no heap allocation: the callable
// is borrowed by reference (it must outlive the forEachShard call, which
// is trivially true since the call blocks), and all coordination state is
// a handful of atomics plus one mutex/condvar pair.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace mcfair::util {

/// Non-owning reference to a `void(std::size_t shard)` callable — the
/// pool's submit currency. Building one allocates nothing.
class ShardFnRef {
 public:
  template <typename Fn>
  ShardFnRef(Fn& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(&fn), call_([](void* ctx, std::size_t shard) {
          (*static_cast<Fn*>(ctx))(shard);
        }) {}

  void operator()(std::size_t shard) const { call_(ctx_, shard); }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t);
};

class ThreadPool {
 public:
  /// Bounded busy-wait iterations a worker performs on the submission
  /// generation before falling back to the condition variable. The
  /// solver's filling loop submits sweeps back to back, so the next job
  /// usually arrives within the spin window and the worker skips the
  /// sleep/wake round trip entirely; an idle pool still parks on the
  /// condvar after the bound, so it never burns a core while the caller
  /// does serial work.
  static constexpr std::size_t kDefaultSpin = 1 << 12;

  /// A pool with `workers` executors total. `workers <= 1` spawns no
  /// threads at all: forEachShard then runs every shard inline on the
  /// calling thread (still in shard order 0..n-1). `spinIterations`
  /// bounds the pre-sleep busy wait (0 = block immediately).
  explicit ThreadPool(std::size_t workers,
                      std::size_t spinIterations = kDefaultSpin);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors participating in forEachShard (spawned threads + the
  /// calling thread). Always >= 1.
  std::size_t workerCount() const noexcept { return spawned_.size() + 1; }

  /// Runs fn(0) .. fn(shardCount - 1) across the executors and returns
  /// once all shards completed. The calling thread participates. Shards
  /// are claimed dynamically; fn must be safe to call concurrently for
  /// distinct shard indices. No heap allocation on the success path. If
  /// a shard throws, remaining unclaimed shards are skipped and the
  /// first captured exception is rethrown here, after the completion
  /// barrier (the pool stays reusable).
  void forEachShard(std::size_t shardCount, ShardFnRef fn);

  /// Pipelined submission: beginShards publishes the job to the spawned
  /// workers and returns immediately WITHOUT the calling thread claiming
  /// any shard, so the caller can overlap serial work (sorting the next
  /// epoch, taking a snapshot) with the workers' progress. finishShards
  /// then joins the claim loop, blocks on the completion barrier, and
  /// rethrows the first captured shard exception — exactly
  /// forEachShard's contract, split in two. The referenced callable and
  /// its data must stay valid until finishShards returns. With no
  /// spawned workers (workers <= 1) beginShards merely parks the job and
  /// finishShards runs every shard inline in order, so pipelined callers
  /// degrade gracefully to serial. At most one begun job may be
  /// outstanding per pool; forEachShard must not be called between the
  /// two (the job slot is single).
  void beginShards(std::size_t shardCount, ShardFnRef fn);
  void finishShards();

  /// Parses a thread-count environment variable (e.g. MCFAIR_THREADS).
  /// Unset, empty, non-numeric, or negative values yield `fallback`;
  /// results are clamped to [0, 256].
  static std::size_t threadCountFromEnv(const char* var,
                                        std::size_t fallback = 0);

 private:
  void workerLoop();
  void runShard(const ShardFnRef& fn, std::size_t shard);

  std::vector<std::thread> spawned_;
  std::size_t spinIterations_ = kDefaultSpin;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // Job slot, published under mutex_ and torn down when pending_ drains.
  const ShardFnRef* job_ = nullptr;
  std::size_t shardCount_ = 0;
  std::atomic<std::size_t> nextShard_{0};
  std::size_t pending_ = 0;    // shards not yet finished, guarded by mutex_
  std::size_t insideJob_ = 0;  // workers holding the job, guarded by mutex_
  std::exception_ptr firstError_;  // guarded by mutex_
  // generation_ / stopping_ are written under mutex_ (the condvar
  // protocol needs that) but additionally read lock-free by the workers'
  // bounded pre-sleep spin — hence atomics.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stopping_{false};
  // Pipelined-submission state (beginShards/finishShards). The callable
  // is copied into asyncJob_ so the published job_ pointer stays valid
  // after beginShards returns; only the caller thread touches these.
  std::optional<ShardFnRef> asyncJob_;
  std::size_t asyncShards_ = 0;
  bool asyncActive_ = false;     // a begun job awaits finishShards
  bool asyncPublished_ = false;  // workers saw it (vs. parked-for-inline)
};

}  // namespace mcfair::util
