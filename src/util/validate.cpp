#include "util/validate.hpp"

#include <cstdlib>
#include <cstring>

namespace mcfair::util {

bool validateEnv() noexcept {
  static const bool enabled = [] {
    const char* v = std::getenv("MCFAIR_VALIDATE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

bool ValidateOptions::resolve() const noexcept {
  if (enabled == 0) return false;
  if (enabled > 0) return true;
  return validateEnv();
}

}  // namespace mcfair::util
