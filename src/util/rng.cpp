#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace mcfair::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is a fixed point of xoshiro; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

std::uint64_t Rng::geometric(double p) noexcept {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse transform: floor(ln(U)/ln(1-p)).
  const double u = 1.0 - uniform01();  // in (0,1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::split() noexcept {
  // A fresh generator seeded from this stream; streams are effectively
  // independent for simulation purposes.
  return Rng((*this)());
}

}  // namespace mcfair::util
