// Opt-in paranoid invariant checking (the MCFAIR_VALIDATE harness).
//
// Every fault application and incremental re-solve has a slow, obviously
// correct counterpart: the reference max-min oracle, a from-scratch
// token-bucket replay, a fresh routing build. ValidateOptions lets a run
// cross-check the fast paths against those oracles after every step —
// far too slow for production, ideal for CI: the Debug and sanitizer
// jobs export MCFAIR_VALIDATE=1, so every existing test sweep doubles as
// a self-checking harness.
//
// Resolution: each consumer holds a ValidateOptions; `enabled` is a
// tri-state where -1 defers to the MCFAIR_VALIDATE environment variable
// (read once per process), 0 forces off (the zero-allocation tests pin
// this — validation allocates freely) and 1 forces on.
#pragma once

namespace mcfair::util {

/// Which invariants to check when validation is enabled. All default on;
/// consumers ignore the flags that do not apply to them.
struct ValidateOptions {
  /// -1 = follow MCFAIR_VALIDATE, 0 = off, 1 = on.
  int enabled = -1;

  /// MaxMinSolver: after every incremental solve, re-solve with the
  /// reference oracle and require bit-identical rates.
  bool solverOptimality = true;
  /// Closed-loop engines: after every fault and fluid hand-back, check
  /// per-link accumulator conservation and token-bucket bounds.
  bool linkConservation = true;
  /// Fluid hand-back: cross-check the bounded bucket replay against a
  /// full replay from the hand-over point (must match bit for bit).
  bool bucketReplay = true;
  /// RoutePlan: after applyEdgeMask, rebuild every cached tree from
  /// scratch under the same mask and require identical predecessors.
  bool routingConsistency = true;

  /// The effective on/off switch.
  bool resolve() const noexcept;
};

/// True when the MCFAIR_VALIDATE environment variable is set to a value
/// other than "" or "0" (cached after the first call).
bool validateEnv() noexcept;

}  // namespace mcfair::util
