// Error handling primitives for the mcfair library.
//
// Following the C++ Core Guidelines (I.5/I.6, E.2): precondition violations
// and invalid arguments throw exceptions derived from std::logic_error /
// std::runtime_error so callers can distinguish programmer error from
// environmental failure.
#pragma once

#include <stdexcept>
#include <string>

namespace mcfair {

/// Thrown when an argument violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a model object is internally inconsistent (e.g. a session
/// references a link that does not exist in the network).
class ModelError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numeric routine fails to converge or produces an
/// out-of-tolerance result.
class NumericError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throwPrecondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace mcfair

/// Precondition check that throws PreconditionError with location context.
/// Used at public API boundaries; internal invariants use assert().
#define MCFAIR_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::mcfair::detail::throwPrecondition(#expr, __FILE__, __LINE__, msg);  \
    }                                                                       \
  } while (false)
