// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna), seeded via SplitMix64;
// it is much faster than std::mt19937_64 and has no measurable bias for
// our use (Bernoulli losses, uniform picks, subset sampling).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mcfair::util {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a seed. Equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Geometric number of failures before first success, success prob p in
  /// (0,1]. Mean (1-p)/p.
  std::uint64_t geometric(double p) noexcept;

  /// Samples k distinct indices out of [0, n) uniformly (Floyd's algorithm).
  /// Result is unsorted. Requires k <= n.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator; useful for giving each
  /// simulation replica its own stream.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace mcfair::util
