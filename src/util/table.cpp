#include "util/table.hpp"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace mcfair::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MCFAIR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<Cell> row) {
  MCFAIR_REQUIRE(row.size() == headers_.size(),
                 "row width must match header count");
  rows_.push_back(std::move(row));
}

std::string Table::format(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rendered) line(r);
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
    } else {
      os << '"';
      for (char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    }
  };
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    emit(headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      emit(format(row[i]));
    }
    os << '\n';
  }
}

void printTitled(const std::string& title, const Table& table, bool csv) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  if (csv) {
    std::cout << "\n-- CSV --\n";
    table.printCsv(std::cout);
  }
}

bool envFlag(const char* name) noexcept {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

long envInt(const char* name, long fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double envDouble(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace mcfair::util
