// Quantum-based join/leave schedules (Section 3) and random-join
// redundancy (Definition 3, Appendix B, Figures 5 and Appendix E).
//
// A receiver with fair packet rate a obtains its long-term average rate
// from a layer of rate sigma by receiving a * dt of the sigma * dt packets
// transmitted per quantum dt. If receivers within a session take nested
// prefixes of each quantum's packets, the shared link carries only
// max_k(a_k) * dt packets (redundancy 1); if each receiver instead picks
// its packets uniformly at random, the link carries the union, with
// expectation sigma * (1 - prod_k (1 - a_k/sigma)) (Appendix B).
#pragma once

#include <cstddef>
#include <vector>

#include "layering/layers.hpp"
#include "util/rng.hpp"

namespace mcfair::layering {

/// Closed-form Appendix B redundancy of a single layer of rate `sigma`
/// shared by receivers with the given fair rates (all in [0, sigma],
/// max > 0): E[U] / max(rates).
double singleLayerRandomJoinRedundancy(const std::vector<double>& rates,
                                       double sigma);

/// Closed-form expected link rate E[U] for the same model.
double singleLayerRandomJoinExpectedUsage(const std::vector<double>& rates,
                                          double sigma);

/// Monte-Carlo estimate of the same quantity: simulates `quanta` quanta of
/// `packetsPerQuantum` packets; each receiver picks round(a_k/sigma * P)
/// packets uniformly without replacement; the link carries the union.
/// Converges to the closed form as quanta grows (Appendix B validation).
double simulateRandomJoinUsage(const std::vector<double>& rates, double sigma,
                               std::size_t packetsPerQuantum,
                               std::size_t quanta, util::Rng& rng);

/// Expected link usage when the session's data is split over the layers of
/// `scheme` (Appendix E model): every receiver fully joins the layers its
/// rate covers and random-joins within the next layer for the remainder.
/// A layer crossed by any fully-joined receiver carries its whole rate;
/// a layer with only partial receivers carries the Appendix B expectation.
double multiLayerRandomJoinExpectedUsage(const std::vector<double>& rates,
                                         const LayerScheme& scheme);

/// multiLayerRandomJoinExpectedUsage / max(rates).
double multiLayerRandomJoinRedundancy(const std::vector<double>& rates,
                                      const LayerScheme& scheme);

/// Deterministic prefix (sender-coordinated) schedule: receiver k receives
/// the first floor/ceil mix of a_k*dt packets each quantum so its average
/// rate converges to a_k exactly. Returns per-quantum per-receiver packet
/// counts and verifies the nesting invariant: link packets per quantum =
/// max_k(count_k), i.e. redundancy 1.
struct PrefixScheduleResult {
  /// counts[q][k]: packets receiver k takes in quantum q.
  std::vector<std::vector<std::size_t>> counts;
  /// Link packets per quantum (= max over receivers).
  std::vector<std::size_t> linkPackets;
  /// Long-term average rate per receiver (packets per quantum / dt=1).
  std::vector<double> averageRates;
  /// Total link packets / (quanta * max average count) — converges to 1.
  double redundancy = 1.0;
};
PrefixScheduleResult simulatePrefixSchedule(const std::vector<double>& rates,
                                            double sigma,
                                            std::size_t packetsPerQuantum,
                                            std::size_t quanta);

/// Multi-layer coordinated schedule: each receiver fully joins the
/// layers its fair rate covers and takes a nested prefix of the next
/// layer's packets for the remainder — Section 3's "precisely timed
/// joins and leaves" in the general layered setting. Per-quantum link
/// packets are computed per layer: a layer carried for any receiver
/// costs its full per-quantum budget when some receiver takes all of it,
/// else the max prefix taken.
struct MultiLayerScheduleResult {
  /// Long-term average rate per receiver.
  std::vector<double> averageRates;
  /// Average link rate consumed per layer (same units as rates).
  std::vector<double> layerLinkRates;
  /// Sum of layerLinkRates / max receiver rate — the session redundancy
  /// (exactly 1 thanks to prefix nesting).
  double redundancy = 1.0;
};
MultiLayerScheduleResult simulateMultiLayerPrefixSchedule(
    const std::vector<double>& rates, const LayerScheme& scheme,
    std::size_t packetsPerUnitRate, std::size_t quanta);

}  // namespace mcfair::layering
