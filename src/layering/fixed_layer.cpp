#include "layering/fixed_layer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mcfair::layering {

namespace {

// Definition 1 check restricted to a finite feasible set: `candidate` is
// max-min fair iff for every alternative where some receiver's rate rises,
// another receiver with original rate <= that receiver's original rate
// sees its rate fall.
bool isMaxMinFairWithin(const std::vector<fairness::Allocation>& rates,
                        const std::vector<net::ReceiverRef>& receivers,
                        std::size_t candidate, double tol) {
  const auto& a = rates[candidate];
  for (std::size_t alt = 0; alt < rates.size(); ++alt) {
    if (alt == candidate) continue;
    const auto& b = rates[alt];
    for (const auto& rk : receivers) {
      if (b.rate(rk) > a.rate(rk) + tol) {
        // Some receiver improved; require a witness r' with
        // a(r') <= a(rk) whose rate decreased.
        bool witness = false;
        for (const auto& rp : receivers) {
          if (rp == rk) continue;
          if (a.rate(rp) <= a.rate(rk) + tol &&
              b.rate(rp) < a.rate(rp) - tol) {
            witness = true;
            break;
          }
        }
        if (!witness) return false;
      }
    }
  }
  return true;
}

}  // namespace

FixedLayerAnalysis analyzeFixedLayerAllocations(
    const net::Network& net, const std::vector<LayerScheme>& schemes,
    double tol) {
  MCFAIR_REQUIRE(schemes.size() == net.sessionCount(),
                 "one layer scheme per session is required");
  const auto receivers = net.allReceivers();
  MCFAIR_REQUIRE(receivers.size() <= 14,
                 "exhaustive fixed-layer enumeration is exponential; use a "
                 "smaller example");

  // Enumerate level assignments with a mixed-radix counter.
  std::vector<std::size_t> radix;
  radix.reserve(receivers.size());
  for (const auto& ref : receivers) {
    radix.push_back(schemes[ref.session].layerCount() + 1);
  }

  FixedLayerAnalysis out;
  std::vector<std::size_t> levels(receivers.size(), 0);
  while (true) {
    // Build the induced allocation and keep it when feasible.
    fairness::Allocation alloc(net);
    bool admissible = true;
    for (std::size_t r = 0; r < receivers.size(); ++r) {
      const auto& ref = receivers[r];
      const double rate = schemes[ref.session].cumulativeRate(levels[r]);
      if (rate > net.session(ref.session).maxRate + tol) {
        admissible = false;
        break;
      }
      alloc.setRate(ref, rate);
    }
    if (admissible && fairness::isFeasible(net, alloc, tol)) {
      out.feasible.push_back(FixedLayerAllocation{levels, alloc});
    }
    // Next assignment.
    std::size_t pos = 0;
    while (pos < levels.size() && ++levels[pos] == radix[pos]) {
      levels[pos] = 0;
      ++pos;
    }
    if (pos == levels.size()) break;
  }

  std::vector<fairness::Allocation> rateSets;
  rateSets.reserve(out.feasible.size());
  for (const auto& f : out.feasible) rateSets.push_back(f.rates);
  for (std::size_t c = 0; c < out.feasible.size(); ++c) {
    if (isMaxMinFairWithin(rateSets, receivers, c, tol)) {
      out.maxMinFairIndex = c;
      break;
    }
  }
  return out;
}

Sec3Example sec3NonexistenceExample(double capacity) {
  MCFAIR_REQUIRE(capacity > 0.0, "capacity must be positive");
  Sec3Example ex;
  const auto link = ex.network.addLink(capacity);
  ex.network.addSession(net::makeUnicastSession({link}, net::kUnlimitedRate,
                                                "S1"));
  ex.network.addSession(net::makeUnicastSession({link}, net::kUnlimitedRate,
                                                "S2"));
  ex.schemes.push_back(LayerScheme::uniform(3, capacity / 3.0));
  ex.schemes.push_back(LayerScheme::uniform(2, capacity / 2.0));
  return ex;
}

}  // namespace mcfair::layering
