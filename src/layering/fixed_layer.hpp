// Fixed-layer allocations — the Section 3 impossibility result.
//
// When each receiver must pick a subscription level and hold it for the
// whole session, the feasible allocations form a finite set and a max-min
// fair allocation "might not even exist". This module enumerates the
// feasible level assignments of a small network whose sessions use fixed
// LayerSchemes, and searches that set for a max-min fair element by
// applying Definition 1 pairwise against every alternative.
#pragma once

#include <optional>
#include <vector>

#include "fairness/allocation.hpp"
#include "layering/layers.hpp"
#include "net/network.hpp"

namespace mcfair::layering {

/// One feasible fixed-layer outcome: each receiver's subscription level
/// and the induced rate vector.
struct FixedLayerAllocation {
  /// levels[flat receiver index] in [0, M_i].
  std::vector<std::size_t> levels;
  fairness::Allocation rates;
};

/// Result of the exhaustive search.
struct FixedLayerAnalysis {
  std::vector<FixedLayerAllocation> feasible;
  /// Index into `feasible` of the max-min fair allocation per Definition 1
  /// restricted to the feasible set, when one exists.
  std::optional<std::size_t> maxMinFairIndex;
};

/// Enumerates every feasible assignment of subscription levels (one
/// LayerScheme per session, applying to all its receivers) and tests each
/// for max-min fairness within the feasible set.
///
/// Session link rates use the session's v_i on the induced receiver rates
/// (EfficientMax by default: a shared link carries the union of joined
/// layers = the max cumulative rate). Exponential in receiver count — use
/// on small examples only (receiverCount <= ~12). sigma_i caps apply: a
/// level is admissible only if its cumulative rate is <= sigma_i.
FixedLayerAnalysis analyzeFixedLayerAllocations(
    const net::Network& net, const std::vector<LayerScheme>& schemes,
    double tol = 1e-9);

/// The paper's single-link example: capacity c, S1 with three layers of
/// rate c/3 each, S2 with two layers of rate c/2 each. Its feasible set is
/// {(0,0),(0,c/2),(0,c),(c/3,0),(c/3,c/2),(2c/3,0),(c,0)} and none of its
/// elements is max-min fair.
struct Sec3Example {
  net::Network network;
  std::vector<LayerScheme> schemes;
};
Sec3Example sec3NonexistenceExample(double capacity = 6.0);

}  // namespace mcfair::layering
