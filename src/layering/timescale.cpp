#include "layering/timescale.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::layering {

namespace {

void checkShare(const QuantumShare& s) {
  MCFAIR_REQUIRE(s.averageRate > 0.0, "average rate must be positive");
  MCFAIR_REQUIRE(s.layerRate >= s.averageRate,
                 "layer rate must be >= average rate");
  MCFAIR_REQUIRE(s.quantum > 0.0, "quantum must be positive");
  MCFAIR_REQUIRE(s.phase >= 0.0 && s.phase < s.quantum,
                 "phase must lie within the quantum");
}

// Instantaneous rate of a share at time t.
double rateAt(const QuantumShare& s, double t) {
  const double pos = std::fmod(t, s.quantum);
  const double onLength = s.dutyCycle() * s.quantum;
  // On-window [phase, phase + onLength) wraps around the quantum edge.
  double offset = pos - s.phase;
  if (offset < 0.0) offset += s.quantum;
  return offset < onLength ? s.layerRate : 0.0;
}

}  // namespace

InterferenceResult computeInterference(const std::vector<QuantumShare>& shares,
                                       double capacity, double horizon,
                                       double dt) {
  MCFAIR_REQUIRE(!shares.empty(), "need at least one share");
  MCFAIR_REQUIRE(capacity > 0.0, "capacity must be positive");
  MCFAIR_REQUIRE(horizon > 0.0 && dt > 0.0 && dt < horizon,
                 "need 0 < dt < horizon");
  for (const auto& s : shares) checkShare(s);

  InterferenceResult out;
  double offered = 0.0;
  double excess = 0.0;
  double overloadTime = 0.0;
  const auto steps = static_cast<std::size_t>(horizon / dt);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt;
    double total = 0.0;
    for (const auto& s : shares) total += rateAt(s, t);
    offered += total * dt;
    if (total > capacity) {
      overloadTime += dt;
      excess += (total - capacity) * dt;
    }
    out.peakRate = std::max(out.peakRate, total);
  }
  out.overloadTimeFraction =
      overloadTime / (static_cast<double>(steps) * dt);
  out.excessVolumeFraction = offered > 0.0 ? excess / offered : 0.0;
  return out;
}

double expectedExcessVolumeFractionRandomPhases(const QuantumShare& a,
                                                const QuantumShare& b,
                                                double capacity) {
  checkShare(a);
  checkShare(b);
  MCFAIR_REQUIRE(capacity > 0.0, "capacity must be positive");
  const double da = a.dutyCycle();
  const double db = b.dutyCycle();
  // Four joint on/off states with independence across incommensurate
  // timescales; excess in each state is (rate - c)+.
  auto plus = [](double x) { return x > 0.0 ? x : 0.0; };
  const double excessRate =
      plus(a.layerRate + b.layerRate - capacity) * da * db +
      plus(a.layerRate - capacity) * da * (1.0 - db) +
      plus(b.layerRate - capacity) * (1.0 - da) * db;
  const double offeredRate = a.averageRate + b.averageRate;
  return offeredRate > 0.0 ? excessRate / offeredRate : 0.0;
}

}  // namespace mcfair::layering
