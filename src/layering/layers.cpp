#include "layering/layers.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcfair::layering {

LayerScheme::LayerScheme(std::vector<double> rates)
    : rates_(std::move(rates)) {
  MCFAIR_REQUIRE(!rates_.empty(), "a layer scheme needs at least one layer");
  cumulative_.reserve(rates_.size() + 1);
  cumulative_.push_back(0.0);
  for (double r : rates_) {
    MCFAIR_REQUIRE(r > 0.0, "layer rates must be positive");
    cumulative_.push_back(cumulative_.back() + r);
  }
}

LayerScheme LayerScheme::exponential(std::size_t layers) {
  MCFAIR_REQUIRE(layers >= 1, "need at least one layer");
  std::vector<double> rates;
  rates.reserve(layers);
  rates.push_back(1.0);  // cumulative 2^0 = 1
  double cum = 1.0;
  for (std::size_t i = 2; i <= layers; ++i) {
    const double target = cum * 2.0;  // cumulative 2^(i-1)
    rates.push_back(target - cum);
    cum = target;
  }
  return LayerScheme(std::move(rates));
}

LayerScheme LayerScheme::uniform(std::size_t layers, double rate) {
  MCFAIR_REQUIRE(layers >= 1, "need at least one layer");
  MCFAIR_REQUIRE(rate > 0.0, "layer rate must be positive");
  return LayerScheme(std::vector<double>(layers, rate));
}

double LayerScheme::layerRate(std::size_t level) const {
  MCFAIR_REQUIRE(level >= 1 && level <= rates_.size(),
                 "layer level out of range");
  return rates_[level - 1];
}

double LayerScheme::cumulativeRate(std::size_t level) const {
  MCFAIR_REQUIRE(level <= rates_.size(), "layer level out of range");
  return cumulative_[level];
}

std::size_t LayerScheme::levelForRate(double rate) const {
  MCFAIR_REQUIRE(rate >= 0.0, "rate must be non-negative");
  // Largest level with cumulative <= rate.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(),
                                   rate);
  return static_cast<std::size_t>(it - cumulative_.begin()) - 1;
}

std::vector<double> LayerScheme::availableRates() const { return cumulative_; }

}  // namespace mcfair::layering
