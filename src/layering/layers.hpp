// Layer schemes for layered multicast (Section 3).
//
// Data is split into M ordered layers L_1..L_M carried on separate
// multicast groups; a receiver "joined up to" layer i receives the sum of
// the rates of layers 1..i. The congestion-control protocols of Section 4
// use the exponential scheme of [19] (Vicisano et al.): the aggregate rate
// of layers 1..i equals 2^(i-1).
#pragma once

#include <cstddef>
#include <vector>

namespace mcfair::layering {

/// An ordered set of layer rates.
class LayerScheme {
 public:
  /// `rates[k]` is the rate of layer L_{k+1}; all rates must be positive.
  explicit LayerScheme(std::vector<double> rates);

  /// The exponential scheme with M layers: cumulative rate of layers 1..i
  /// is 2^(i-1) (layer rates 1, 1, 2, 4, ..., 2^(M-2)).
  static LayerScheme exponential(std::size_t layers);

  /// M layers of equal rate.
  static LayerScheme uniform(std::size_t layers, double rate);

  std::size_t layerCount() const noexcept { return rates_.size(); }

  /// Rate of layer `level` (1-based).
  double layerRate(std::size_t level) const;

  /// Aggregate rate received when joined up to `level` (0 => 0).
  double cumulativeRate(std::size_t level) const;

  /// The largest level whose cumulative rate is <= `rate` (may be 0).
  std::size_t levelForRate(double rate) const;

  /// All cumulative rates [cum(0)=0, cum(1), ..., cum(M)] — the finite set
  /// of steady receiving rates available without joins/leaves.
  std::vector<double> availableRates() const;

 private:
  std::vector<double> rates_;
  std::vector<double> cumulative_;  // cumulative_[i] = sum of first i rates
};

}  // namespace mcfair::layering
