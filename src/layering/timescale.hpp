// Sharing between sessions that measure fairness on different
// timescales (Section 5: "it is also unclear whether bandwidth can be
// shared fairly by sessions that ... use different quanta").
//
// A session delivering average rate a from a layer of rate sigma via
// quantum scheduling transmits ON-OFF: within each quantum of length q
// it is "on" (at rate sigma) for a fraction a/sigma of the quantum. Two
// such sessions can each fit their AVERAGE within a link of capacity c
// while their instantaneous sum exceeds c whenever their on-phases
// overlap. This module quantifies that interference: the fraction of
// offered volume arriving while the aggregate instantaneous rate
// exceeds capacity (volume that must be buffered or dropped).
//
// Headline results (verified by tests and the timescale bench):
//  * equal quanta + coordinated phases can eliminate interference
//    entirely (time-division within the quantum);
//  * sessions on different (incommensurate) timescales cannot — their
//    overlap converges to the product of duty cycles, independent of the
//    quanta ratio.
#pragma once

#include <vector>

namespace mcfair::layering {

/// One on-off session.
struct QuantumShare {
  /// Long-term average rate (packets per time unit).
  double averageRate = 1.0;
  /// Layer transmission rate while "on" (>= averageRate).
  double layerRate = 2.0;
  /// Quantum length.
  double quantum = 1.0;
  /// Start of the on-phase within each quantum, in [0, quantum).
  double phase = 0.0;

  /// Fraction of each quantum spent "on".
  double dutyCycle() const { return averageRate / layerRate; }
};

/// Result of the interference computation.
struct InterferenceResult {
  /// Fraction of time the aggregate instantaneous rate exceeds capacity.
  double overloadTimeFraction = 0.0;
  /// Excess volume (integral of (aggregate - c)+ over time) divided by
  /// the total offered volume — the share of traffic that cannot be
  /// carried without buffering.
  double excessVolumeFraction = 0.0;
  /// Peak aggregate instantaneous rate observed.
  double peakRate = 0.0;
};

/// Numerically integrates the aggregate on-off process over `horizon`
/// time units with step `dt`. Deterministic; phases are taken from the
/// shares. Requires positive capacity, horizon and dt and valid shares.
InterferenceResult computeInterference(const std::vector<QuantumShare>& shares,
                                       double capacity, double horizon,
                                       double dt = 1e-3);

/// Closed form for TWO sessions with independent uniformly-random
/// phases (equivalently, incommensurate quanta observed over a long
/// horizon): the on-phases overlap with probability d1*d2, so
///   E[excess volume fraction] =
///     (s1+s2-c)+ * d1*d2 / (a1+a2)            when s1,s2 <= c,
/// with additional single-session terms when one layer rate alone
/// exceeds capacity.
double expectedExcessVolumeFractionRandomPhases(const QuantumShare& a,
                                                const QuantumShare& b,
                                                double capacity);

}  // namespace mcfair::layering
