#include "layering/quantum.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::layering {

namespace {
double maxRate(const std::vector<double>& rates) {
  MCFAIR_REQUIRE(!rates.empty(), "need at least one receiver rate");
  double m = 0.0;
  for (double r : rates) {
    MCFAIR_REQUIRE(r >= 0.0, "rates must be non-negative");
    m = std::max(m, r);
  }
  MCFAIR_REQUIRE(m > 0.0, "at least one rate must be positive");
  return m;
}
}  // namespace

double singleLayerRandomJoinExpectedUsage(const std::vector<double>& rates,
                                          double sigma) {
  MCFAIR_REQUIRE(sigma > 0.0, "sigma must be positive");
  double survive = 1.0;
  for (double r : rates) {
    MCFAIR_REQUIRE(r >= 0.0 && r <= sigma * (1.0 + 1e-12),
                   "rates must lie in [0, sigma]");
    survive *= 1.0 - std::min(r, sigma) / sigma;
  }
  return sigma * (1.0 - survive);
}

double singleLayerRandomJoinRedundancy(const std::vector<double>& rates,
                                       double sigma) {
  return singleLayerRandomJoinExpectedUsage(rates, sigma) / maxRate(rates);
}

double simulateRandomJoinUsage(const std::vector<double>& rates, double sigma,
                               std::size_t packetsPerQuantum,
                               std::size_t quanta, util::Rng& rng) {
  MCFAIR_REQUIRE(sigma > 0.0, "sigma must be positive");
  MCFAIR_REQUIRE(packetsPerQuantum > 0 && quanta > 0,
                 "need positive quantum size and count");
  std::vector<char> wanted(packetsPerQuantum);
  double totalLinkPackets = 0.0;
  for (std::size_t q = 0; q < quanta; ++q) {
    std::fill(wanted.begin(), wanted.end(), 0);
    for (double r : rates) {
      const auto take = static_cast<std::size_t>(std::llround(
          std::min(r, sigma) / sigma * static_cast<double>(packetsPerQuantum)));
      for (std::size_t idx :
           rng.sampleWithoutReplacement(packetsPerQuantum, take)) {
        wanted[idx] = 1;
      }
    }
    totalLinkPackets += static_cast<double>(
        std::count(wanted.begin(), wanted.end(), 1));
  }
  // Convert packets/quantum back to a rate: sigma corresponds to
  // packetsPerQuantum packets.
  return totalLinkPackets / static_cast<double>(quanta) /
         static_cast<double>(packetsPerQuantum) * sigma;
}

double multiLayerRandomJoinExpectedUsage(const std::vector<double>& rates,
                                         const LayerScheme& scheme) {
  const double top = maxRate(rates);
  MCFAIR_REQUIRE(top <= scheme.cumulativeRate(scheme.layerCount()) *
                            (1.0 + 1e-12),
                 "max rate exceeds the scheme's aggregate rate");
  double usage = 0.0;
  for (std::size_t level = 1; level <= scheme.layerCount(); ++level) {
    const double below = scheme.cumulativeRate(level - 1);
    const double rate = scheme.layerRate(level);
    bool anyFull = false;
    std::vector<double> partial;
    for (double r : rates) {
      if (r >= below + rate) {
        anyFull = true;
        break;
      }
      if (r > below) partial.push_back(r - below);
    }
    if (anyFull) {
      usage += rate;  // a fully-joined receiver pulls the whole layer
    } else if (!partial.empty()) {
      usage += singleLayerRandomJoinExpectedUsage(partial, rate);
    }
  }
  return usage;
}

double multiLayerRandomJoinRedundancy(const std::vector<double>& rates,
                                      const LayerScheme& scheme) {
  return multiLayerRandomJoinExpectedUsage(rates, scheme) / maxRate(rates);
}

PrefixScheduleResult simulatePrefixSchedule(const std::vector<double>& rates,
                                            double sigma,
                                            std::size_t packetsPerQuantum,
                                            std::size_t quanta) {
  MCFAIR_REQUIRE(sigma > 0.0, "sigma must be positive");
  MCFAIR_REQUIRE(packetsPerQuantum > 0 && quanta > 0,
                 "need positive quantum size and count");
  const double top = maxRate(rates);
  MCFAIR_REQUIRE(top <= sigma * (1.0 + 1e-12),
                 "rates must lie within the layer rate");

  PrefixScheduleResult out;
  out.counts.resize(quanta);
  out.linkPackets.resize(quanta);
  out.averageRates.assign(rates.size(), 0.0);

  // Error-accumulator per receiver: take floor(a/sigma*P) packets per
  // quantum, plus one extra whenever the fractional part accumulates past
  // one packet (footnote 7 of the paper: "periodically receive the
  // ceiling to come arbitrarily close").
  std::vector<double> carry(rates.size(), 0.0);
  std::vector<double> received(rates.size(), 0.0);
  for (std::size_t q = 0; q < quanta; ++q) {
    out.counts[q].resize(rates.size());
    std::size_t linkMax = 0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
      const double ideal =
          std::min(rates[k], sigma) / sigma * static_cast<double>(packetsPerQuantum);
      carry[k] += ideal;
      const auto take = static_cast<std::size_t>(std::floor(carry[k]));
      carry[k] -= static_cast<double>(take);
      out.counts[q][k] = take;
      received[k] += static_cast<double>(take);
      linkMax = std::max(linkMax, take);
    }
    // Prefix nesting: every receiver takes the *first* take_k packets, so
    // the link forwards exactly max_k(take_k) packets.
    out.linkPackets[q] = linkMax;
  }
  double totalLink = 0.0;
  for (std::size_t p : out.linkPackets) totalLink += static_cast<double>(p);
  double maxAvg = 0.0;
  for (std::size_t k = 0; k < rates.size(); ++k) {
    out.averageRates[k] = received[k] / static_cast<double>(quanta) /
                          static_cast<double>(packetsPerQuantum) * sigma;
    maxAvg = std::max(maxAvg, received[k]);
  }
  out.redundancy = maxAvg > 0.0 ? totalLink / maxAvg : 1.0;
  return out;
}

MultiLayerScheduleResult simulateMultiLayerPrefixSchedule(
    const std::vector<double>& rates, const LayerScheme& scheme,
    std::size_t packetsPerUnitRate, std::size_t quanta) {
  MCFAIR_REQUIRE(packetsPerUnitRate > 0 && quanta > 0,
                 "need positive packet density and quantum count");
  const double top = maxRate(rates);
  MCFAIR_REQUIRE(top <= scheme.cumulativeRate(scheme.layerCount()) *
                            (1.0 + 1e-12),
                 "max rate exceeds the scheme's aggregate rate");

  MultiLayerScheduleResult out;
  out.averageRates.assign(rates.size(), 0.0);
  out.layerLinkRates.assign(scheme.layerCount(), 0.0);

  // Per receiver: full layers + fractional demand from the next layer,
  // realized with a floor/carry accumulator per quantum (footnote 7).
  std::vector<double> carry(rates.size(), 0.0);
  std::vector<double> received(rates.size(), 0.0);
  std::vector<double> layerPackets(scheme.layerCount(), 0.0);
  for (std::size_t q = 0; q < quanta; ++q) {
    // Per layer, the link must carry the largest prefix taken by any
    // receiver this quantum (prefix nesting).
    std::vector<std::size_t> layerMax(scheme.layerCount(), 0);
    for (std::size_t k = 0; k < rates.size(); ++k) {
      const std::size_t full = scheme.levelForRate(rates[k]);
      double got = 0.0;
      for (std::size_t level = 1; level <= full; ++level) {
        const auto packets = static_cast<std::size_t>(std::llround(
            scheme.layerRate(level) *
            static_cast<double>(packetsPerUnitRate)));
        layerMax[level - 1] = std::max(layerMax[level - 1], packets);
        got += static_cast<double>(packets);
      }
      if (full < scheme.layerCount()) {
        const double want = rates[k] - scheme.cumulativeRate(full);
        carry[k] += want * static_cast<double>(packetsPerUnitRate);
        const auto take = static_cast<std::size_t>(std::floor(carry[k]));
        carry[k] -= static_cast<double>(take);
        layerMax[full] = std::max(layerMax[full], take);
        got += static_cast<double>(take);
      }
      received[k] += got;
    }
    for (std::size_t l = 0; l < scheme.layerCount(); ++l) {
      layerPackets[l] += static_cast<double>(layerMax[l]);
    }
  }
  double totalLink = 0.0;
  for (std::size_t l = 0; l < scheme.layerCount(); ++l) {
    out.layerLinkRates[l] = layerPackets[l] / static_cast<double>(quanta) /
                            static_cast<double>(packetsPerUnitRate);
    totalLink += layerPackets[l];
  }
  double maxReceived = 0.0;
  for (std::size_t k = 0; k < rates.size(); ++k) {
    out.averageRates[k] = received[k] / static_cast<double>(quanta) /
                          static_cast<double>(packetsPerUnitRate);
    maxReceived = std::max(maxReceived, received[k]);
  }
  out.redundancy = maxReceived > 0.0 ? totalLink / maxReceived : 1.0;
  return out;
}

}  // namespace mcfair::layering
