// Minimal dense linear algebra: row-major matrix and LU solve.
//
// Sized for the Markov-chain analysis in src/markov (a few thousand states
// at most); not a general-purpose BLAS.
#pragma once

#include <cstddef>
#include <vector>

namespace mcfair::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// Element access (unchecked in release; asserted in debug).
  double& operator()(std::size_t r, std::size_t c) noexcept;
  double operator()(std::size_t r, std::size_t c) const noexcept;

  /// Matrix product this * rhs. Requires cols() == rhs.rows().
  Matrix multiply(const Matrix& rhs) const;

  /// Transpose.
  Matrix transposed() const;

  /// Max-abs element (for convergence checks).
  double maxAbs() const noexcept;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Requires A square, b.size() == A.rows(). Throws NumericError when A is
/// numerically singular.
std::vector<double> solveLinear(Matrix a, std::vector<double> b);

/// Stationary distribution pi of a row-stochastic transition matrix P:
/// solves pi P = pi, sum(pi) = 1 via the linear system (P^T - I) pi = 0 with
/// one row replaced by the normalization constraint. Requires P square with
/// rows summing to 1 within `rowSumTol`.
std::vector<double> stationaryDistribution(const Matrix& p,
                                           double rowSumTol = 1e-9);

}  // namespace mcfair::linalg
