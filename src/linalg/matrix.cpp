#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>

#include "util/error.hpp"

namespace mcfair::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  MCFAIR_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) noexcept {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const noexcept {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  MCFAIR_REQUIRE(cols_ == rhs.rows_, "inner dimensions must agree");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::maxAbs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::vector<double> solveLinear(Matrix a, std::vector<double> b) {
  MCFAIR_REQUIRE(a.rows() == a.cols(), "solveLinear needs a square matrix");
  MCFAIR_REQUIRE(b.size() == a.rows(), "rhs size must match matrix order");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw NumericError("solveLinear: matrix is numerically singular");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

std::vector<double> stationaryDistribution(const Matrix& p, double rowSumTol) {
  MCFAIR_REQUIRE(p.rows() == p.cols(), "transition matrix must be square");
  const std::size_t n = p.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += p(i, j);
    if (std::fabs(s - 1.0) > rowSumTol) {
      throw PreconditionError("stationaryDistribution: row " +
                              std::to_string(i) + " sums to " +
                              std::to_string(s) + ", not 1");
    }
  }
  // (P^T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = p(j, i) - (i == j ? 1.0 : 0.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  b[n - 1] = 1.0;
  auto pi = solveLinear(std::move(a), std::move(b));
  // Clamp tiny negatives from roundoff and renormalize.
  double total = 0.0;
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-9) v = 0.0;
    if (v < 0.0) throw NumericError("stationaryDistribution: negative mass");
    total += v;
  }
  if (total <= 0.0) throw NumericError("stationaryDistribution: zero mass");
  for (double& v : pi) v /= total;
  return pi;
}

}  // namespace mcfair::linalg
