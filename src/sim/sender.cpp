#include "sim/sender.hpp"

#include <bit>

#include "util/error.hpp"

namespace mcfair::sim {

LayeredSender::LayeredSender(layering::LayerScheme scheme,
                             util::Rng* phaseJitter)
    : scheme_(std::move(scheme)) {
  const std::size_t layers = scheme_.layerCount();
  phase_.resize(layers);
  period_.resize(layers);
  emittedPerLayer_.assign(layers, 0);
  // One pending emission per layer at any time: seed the queue with the
  // bulk-heapify constructor (single allocation, one make_heap) — the
  // pop order is pinned byte-identical to batch scheduling.
  std::vector<EventQueue::Pending> initial;
  initial.reserve(layers);
  for (std::size_t k = 1; k <= layers; ++k) {
    const double period = 1.0 / scheme_.layerRate(k);
    period_[k - 1] = period;
    phase_[k - 1] =
        phaseJitter != nullptr ? phaseJitter->uniform01() * period : 0.0;
    initial.push_back(
        EventQueue::Pending{layerEmissionTime(phase_[k - 1], period, 1), k});
  }
  queue_ = EventQueue::buildFrom(initial);
  resyncBatch_.reserve(layers);
}

void LayeredSender::resync(const std::vector<std::uint64_t>& countsPerLayer) {
  const std::size_t layers = scheme_.layerCount();
  MCFAIR_REQUIRE(countsPerLayer.size() == layers,
                 "resync needs one emission count per layer");
  emitted_ = 0;
  resyncBatch_.clear();
  for (std::size_t k = 1; k <= layers; ++k) {
    const std::uint64_t n = countsPerLayer[k - 1];
    emittedPerLayer_[k - 1] = n;
    emitted_ += n;
    resyncBatch_.push_back(EventQueue::Pending{
        layerEmissionTime(phase_[k - 1], period_[k - 1], n + 1), k});
  }
  // layer1Count_ drives the ruler signal; with a single layer next()
  // never touches it, mirroring which we leave it alone here too.
  if (layers > 1) layer1Count_ = countsPerLayer[0];
  // Same seeding discipline as construction: one pending emission per
  // layer, admitted as one batch in ascending layer order.
  queue_.clear();
  queue_.scheduleAt(resyncBatch_);
}

Packet LayeredSender::next() {
  const auto e = queue_.pop();
  MCFAIR_REQUIRE(e.has_value(), "sender queue unexpectedly empty");
  const auto layer = static_cast<std::size_t>(e->payload);
  Packet p;
  p.sequence = emitted_++;
  p.layer = layer;
  p.time = e->time;
  ++emittedPerLayer_[layer - 1];
  if (layer == 1 && scheme_.layerCount() > 1) {
    ++layer1Count_;
    p.syncLevel = rulerSignalLevel(layer1Count_, scheme_.layerCount() - 1);
  }
  // Schedule this layer's next emission at its closed-form position.
  queue_.schedule(layerEmissionTime(phase_[layer - 1], period_[layer - 1],
                                    emittedPerLayer_[layer - 1] + 1),
                  e->payload);
  return p;
}

std::size_t LayeredSender::rulerSignalLevel(std::uint64_t n,
                                            std::size_t maxLevel) {
  MCFAIR_REQUIRE(n >= 1, "packet numbering is 1-based");
  MCFAIR_REQUIRE(maxLevel >= 1, "maxLevel must be >= 1");
  const auto nu2 = static_cast<std::size_t>(std::countr_zero(n));
  return std::min(1 + nu2, maxLevel);
}

}  // namespace mcfair::sim
